// Scenario: a multi-tenant image-classification service.
//
// Twelve CNN functions (VGG / ResNet / DenseNet / MobileNet / Inception /
// Xception variants) share a two-node cluster under a bursty Azure-like
// arrival pattern. The example runs the same workload through all four
// systems (OpenWhisk, Pagurus, Tetris, Optimus) and prints the service-time
// and start-type comparison, then zooms into one request that Optimus served
// by transforming an idle neighbor's model.

#include <cstdio>

#include "src/sim/simulator.h"
#include "src/workload/azure.h"
#include "src/zoo/registry.h"

int main() {
  using namespace optimus;

  // The service's model catalog: the CNN half of the representative zoo.
  const ModelRegistry registry = RepresentativeModels();
  std::vector<Model> models;
  std::vector<std::string> names;
  for (const std::string& name : RepresentativeModelNames()) {
    const Model model = registry.Build(name);
    if (model.family() != "bert") {
      names.push_back(name);
      models.push_back(model);
    }
  }
  std::printf("image-classification catalog: %zu models\n", models.size());

  AzureTraceOptions trace_options;
  trace_options.horizon_seconds = 2.0 * 3600;
  trace_options.seed = 99;
  const Trace trace = GenerateAzureTrace(names, trace_options);
  std::printf("workload: %zu requests over 2 hours (Azure-like patterns)\n\n", trace.size());

  const AnalyticCostModel costs;
  std::printf("%-12s %12s %8s %11s %8s\n", "system", "service(s)", "cold%", "transform%",
              "warm%");
  SimResult optimus_result;
  for (const SystemType system : {SystemType::kOpenWhisk, SystemType::kPagurus,
                                  SystemType::kTetris, SystemType::kOptimus}) {
    SimConfig config;
    config.system = system;
    config.num_nodes = 2;
    config.containers_per_node = 4;
    config.placement.kind =
        system == SystemType::kOptimus ? BalancerKind::kModelSharing : BalancerKind::kHash;
    SimResult result = RunSimulation(models, trace, config, costs);
    std::printf("%-12s %12.3f %7.2f%% %10.2f%% %7.2f%%\n", SystemTypeName(system),
                result.AvgServiceTime(), 100.0 * result.FractionOf(StartType::kCold),
                100.0 * result.FractionOf(StartType::kTransform),
                100.0 * result.FractionOf(StartType::kWarm));
    if (system == SystemType::kOptimus) {
      optimus_result = std::move(result);
    }
  }

  // Show one transformed request end to end.
  for (const RequestRecord& record : optimus_result.records) {
    if (record.start == StartType::kTransform) {
      std::printf(
          "\nexample transformed request: function=%s arrived t=%.1fs\n"
          "  wait %.3fs + init %.3fs + transform %.3fs + compute %.3fs = %.3fs total\n",
          record.function.c_str(), record.arrival, record.wait, record.init, record.load,
          record.compute, record.ServiceTime());
      break;
    }
  }
  return 0;
}
