// Scenario: the REST gateway of §7 over real loopback sockets.
//
// Starts the Optimus HTTP service on an ephemeral port, deploys models by
// POSTing their serialized files, and serves inference requests through
// HTTP — exactly the client workflow of the paper's Listing 1
// (deploy_model / inference), with transformation visible in the responses.

#include <cstdio>

#include "src/gateway/service.h"
#include "src/graph/serialization.h"
#include "src/zoo/vgg.h"

namespace {

std::string BodyOf(const optimus::Model& model) {
  const optimus::ModelFile file = optimus::SerializeModel(model);
  return std::string(file.begin(), file.end());
}

}  // namespace

int main() {
  using namespace optimus;

  AnalyticCostModel costs;
  PlatformOptions options;
  options.containers_per_node = 2;

  // A scripted virtual clock so the demo's idle thresholds fire instantly.
  double now = 0.0;
  OptimusHttpService service(&costs, options, [&now] { return now; });
  service.Start(/*port=*/0);
  std::printf("optimus gateway listening on 127.0.0.1:%u\n\n", service.port());

  VggOptions quarter;
  quarter.width_multiplier = 0.25;

  auto post = [&](const std::string& target, const std::string& body) {
    const HttpResponse response = HttpFetch(service.port(), "POST", target, body);
    std::printf("POST %-22s -> %d\n%s\n", target.c_str(), response.status,
                response.body.c_str());
  };

  post("/deploy?name=vgg11", BodyOf(BuildVgg(11, quarter)));
  post("/deploy?name=vgg16", BodyOf(BuildVgg(16, quarter)));
  post("/deploy?name=vgg19", BodyOf(BuildVgg(19, quarter)));

  post("/invoke?name=vgg11", "0.5,0.5,0.5,0.5");  // Cold.
  now = 1.0;
  post("/invoke?name=vgg16", "0.5,0.5,0.5,0.5");  // Cold (second slot).
  now = 120.0;
  post("/invoke?name=vgg19", "0.5,0.5,0.5,0.5");  // Transform from a donor.
  now = 121.0;
  post("/invoke?name=vgg19", "0.5,0.5,0.5,0.5");  // Warm.

  const HttpResponse stats = HttpFetch(service.port(), "GET", "/stats");
  std::printf("GET /stats -> %d\n%s", stats.status, stats.body.c_str());

  service.Stop();
  return 0;
}
