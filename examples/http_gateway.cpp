// Scenario: the REST gateway of §7 over real loopback sockets.
//
// Starts the Optimus HTTP service on an ephemeral port, deploys models by
// POSTing their serialized files, and serves inference requests through
// HTTP — exactly the client workflow of the paper's Listing 1
// (deploy_model / inference), with transformation visible in the responses.
//
// Cluster knobs (README "cluster quick-start"):
//   --nodes=N                      number of worker nodes (default 1)
//   --balancer=<hash|load_based|model_sharing>
//                                  placement policy for function->node routing
//   --tenant-rate=R                per-tenant admission: R requests/sec per
//                                  tenant= attribute (default 0 = disabled)
//
// With --nodes>=2 the script also walks the operational surface from
// DESIGN.md §16: GET /healthz, POST /nodes/<id>/drain, POST /nodes/<id>/revive.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/gateway/service.h"
#include "src/graph/serialization.h"
#include "src/zoo/vgg.h"

namespace {

std::string BodyOf(const optimus::Model& model) {
  const optimus::ModelFile file = optimus::SerializeModel(model);
  return std::string(file.begin(), file.end());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace optimus;

  AnalyticCostModel costs;
  PlatformOptions options;
  options.containers_per_node = 2;
  GatewayOptions gateway;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--nodes=", 0) == 0) {
      options.num_nodes = std::atoi(arg.c_str() + 8);
    } else if (arg.rfind("--balancer=", 0) == 0) {
      if (!ParseBalancerKind(arg.substr(11), &options.placement.kind)) {
        std::fprintf(stderr, "unknown balancer '%s'\n", arg.substr(11).c_str());
        return 1;
      }
    } else if (arg.rfind("--tenant-rate=", 0) == 0) {
      gateway.tenant_rate = std::atof(arg.c_str() + 14);
    } else {
      std::fprintf(stderr,
                   "usage: http_gateway [--nodes=N] "
                   "[--balancer=hash|load_based|model_sharing] [--tenant-rate=R]\n");
      return 1;
    }
  }
  std::printf("placement: %s over %d node(s)\n", BalancerKindId(options.placement.kind),
              options.num_nodes);

  // A scripted virtual clock so the demo's idle thresholds fire instantly.
  double now = 0.0;
  OptimusHttpService service(&costs, options, gateway, [&now] { return now; });
  service.Start(/*port=*/0);
  std::printf("optimus gateway listening on 127.0.0.1:%u\n\n", service.port());

  VggOptions quarter;
  quarter.width_multiplier = 0.25;

  auto post = [&](const std::string& target, const std::string& body) {
    const HttpResponse response = HttpFetch(service.port(), "POST", target, body);
    std::printf("POST %-22s -> %d\n%s\n", target.c_str(), response.status,
                response.body.c_str());
  };

  post("/deploy?name=vgg11", BodyOf(BuildVgg(11, quarter)));
  post("/deploy?name=vgg16", BodyOf(BuildVgg(16, quarter)));
  post("/deploy?name=vgg19", BodyOf(BuildVgg(19, quarter)));

  post("/invoke?name=vgg11", "0.5,0.5,0.5,0.5");  // Cold.
  now = 1.0;
  post("/invoke?name=vgg16", "0.5,0.5,0.5,0.5");  // Cold (second slot).
  now = 120.0;
  post("/invoke?name=vgg19", "0.5,0.5,0.5,0.5");  // Transform from a donor.
  now = 121.0;
  post("/invoke?name=vgg19", "0.5,0.5,0.5,0.5");  // Warm.

  auto get = [&](const std::string& target) {
    const HttpResponse response = HttpFetch(service.port(), "GET", target);
    std::printf("GET  %-22s -> %d\n%s\n", target.c_str(), response.status,
                response.body.c_str());
  };

  if (options.num_nodes >= 2) {
    // Operational surface (DESIGN.md §16): kill a node, watch /healthz
    // degrade while invokes keep landing on the survivors, then revive it.
    get("/healthz");
    post("/nodes/1/drain?grace=0", "");
    now = 122.0;
    post("/invoke?name=vgg19", "0.5,0.5,0.5,0.5");  // Re-homed off node 1.
    get("/healthz");
    post("/nodes/1/revive", "");
    get("/healthz");
  }

  if (gateway.tenant_rate > 0.0) {
    // Burst one tenant past its bucket: the tail of the burst sheds with
    // 429 + Retry-After while a second tenant stays admitted.
    for (int i = 0; i < 3; ++i) {
      post("/invoke?name=vgg11&tenant=alice", "0.5,0.5,0.5,0.5");
    }
    post("/invoke?name=vgg11&tenant=bob", "0.5,0.5,0.5,0.5");
  }

  const HttpResponse stats = HttpFetch(service.port(), "GET", "/stats");
  std::printf("GET /stats -> %d\n%s", stats.status, stats.body.c_str());

  service.Stop();
  return 0;
}
