// Scenario: transformer serving (paper §5.2).
//
// Demonstrates the four transformer transformation cases on real (scaled)
// BERT instances:
//   1. different sizes         — BERT-Base-like -> BERT-Mini-like
//      (Reshape Q/K/V/O, Reduce surplus attention blocks),
//   2. different vocabularies  — cased -> uncased (Reshape the embedding),
//   3. same structure          — weight Replace only,
//   4. different task heads    — sequence classification -> question
//      answering (Add the extra dense head).
// Each transformation is executed with the meta-operators and verified to
// serve exactly what a scratch-loaded destination would.

#include <cstdio>

#include "src/core/transformer.h"
#include "src/runtime/inference.h"
#include "src/zoo/bert.h"

namespace {

optimus::BertConfig ScaledConfig(const char* name, int layers, int64_t hidden,
                                 int64_t vocab, optimus::BertTask task) {
  optimus::BertConfig config;
  config.name = name;
  config.num_layers = layers;
  config.hidden = hidden;
  config.heads = 2;
  config.intermediate = hidden * 4;
  config.vocab_size = vocab;
  config.max_position = 64;
  config.task = task;
  return config;
}

void RunCase(const char* label, const optimus::Model& source_model,
             const optimus::Model& dest_model) {
  using namespace optimus;
  static AnalyticCostModel costs;
  static Transformer transformer(&costs);
  Loader loader(&costs);

  ModelInstance container = loader.Instantiate(source_model, 1);
  const ModelInstance destination = loader.Instantiate(dest_model, 2);
  const TransformPlan& plan =
      transformer.cache().GetOrPlan(container.model, destination.model);
  const TransformOutcome outcome = transformer.TransformOrLoad(&container, destination.model);

  const std::vector<float> tokens(16, 0.2f);
  const bool serves_destination =
      RunInference(container, tokens) == RunInference(destination, tokens);
  std::printf(
      "%s\n  %s -> %s\n"
      "  plan: Replace=%d Reshape=%d Reduce=%d Add=%d Edge=%d, est. %.3fs (scratch %.3fs)\n"
      "  path: %s; serves destination function: %s\n\n",
      label, source_model.name().c_str(), dest_model.name().c_str(),
      plan.CountOf(MetaOpKind::kReplace), plan.CountOf(MetaOpKind::kReshape),
      plan.CountOf(MetaOpKind::kReduce), plan.CountOf(MetaOpKind::kAdd),
      plan.CountOf(MetaOpKind::kEdge), plan.total_cost, outcome.decision.scratch_cost,
      outcome.decision.use_transform ? "transform" : "scratch (safeguard)",
      serves_destination ? "yes" : "NO");
}

}  // namespace

int main() {
  using namespace optimus;

  // Scaled-down stand-ins for the BERT zoo (fast to materialize; use the
  // canonical BertBaseConfig()/BertMiniConfig() for full scale).
  const Model base = BuildBert(ScaledConfig("bert_base_s", 4, 128, 2048, BertTask::kNone));
  const Model mini = BuildBert(ScaledConfig("bert_mini_s", 2, 64, 2048, BertTask::kNone));
  const Model cased = BuildBert(ScaledConfig("bert_cased_s", 4, 128, 1792, BertTask::kNone));
  Model base_twin = base;
  base_twin.set_name("bert_base_s_v2");
  const Model sc = BuildBert(
      ScaledConfig("bert_sc_s", 4, 128, 2048, BertTask::kSequenceClassification));
  const Model qa =
      BuildBert(ScaledConfig("bert_qa_s", 4, 128, 2048, BertTask::kQuestionAnswering));

  std::printf("=== Inter-function transformer transformation (paper §5.2) ===\n\n");
  RunCase("Case 1: size change (Reshape projections, Reduce attention blocks)", base, mini);
  RunCase("Case 1b: growing back (Add attention blocks)", mini, base);
  RunCase("Case 2: vocabulary change (Reshape the token embedding)", base, cased);
  RunCase("Case 3: same structure, new weights (Replace only)", base, base_twin);
  RunCase("Case 4: task-head change SC -> QA (Add the extra dense head)", sc, qa);
  return 0;
}
