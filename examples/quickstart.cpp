// Quickstart: the core Optimus flow in ~60 lines.
//
//  1. Build two structurally similar models (VGG16 and VGG19).
//  2. Load VGG16 into a "container" (a ModelInstance).
//  3. Plan an inter-function transformation VGG16 -> VGG19 with the linear
//     group planner and inspect the plan.
//  4. Execute the plan with the five meta-operators; the container now holds
//     VGG19 and serves its requests, bit-identical to a scratch load.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart

#include <cstdio>
#include <vector>

#include "src/core/transformer.h"
#include "src/runtime/inference.h"
#include "src/zoo/vgg.h"

int main() {
  using namespace optimus;

  // Quarter-width VGGs keep the demo fast; drop width_multiplier for the
  // full 138M/144M-parameter models.
  VggOptions options;
  options.width_multiplier = 0.25;
  const Model vgg16 = BuildVgg(16, options);
  const Model vgg19 = BuildVgg(19, options);

  const AnalyticCostModel costs;
  Loader loader(&costs);

  // A warm container currently serving VGG16.
  LoadBreakdown breakdown;
  ModelInstance container = loader.Instantiate(vgg16, /*weight_seed=*/1, &breakdown);
  std::printf("loaded %s: %zu ops, %.1fM params\n", container.model.name().c_str(),
              container.model.NumOps(),
              static_cast<double>(container.model.ParamCount()) / 1e6);
  std::printf("  calibrated load latency: %.3fs (structure %.0f%%, weights %.0f%%)\n",
              breakdown.Total(), 100.0 * breakdown.structure / breakdown.Total(),
              100.0 * breakdown.weights / breakdown.Total());

  // The destination function's model (weights stand in for its model file).
  const ModelInstance destination = loader.Instantiate(vgg19, /*weight_seed=*/2);

  // Plan the transformation (linear-complexity group planner, §4.4 Module 2+).
  const TransformPlan plan =
      PlanTransform(container.model, destination.model, costs, PlannerKind::kGroup);
  std::printf("\nplan: %s\n", plan.ToString().c_str());
  std::printf("  estimated transformation cost: %.3fs vs scratch load %.3fs\n", plan.total_cost,
              costs.ScratchLoadCost(destination.model));

  // Execute with the safeguard (§4.4 Module 3).
  Transformer transformer(&costs);
  const TransformOutcome outcome = transformer.TransformOrLoad(&container, destination.model);
  std::printf("\nsafeguard chose: %s\n",
              outcome.decision.use_transform ? "transform" : "scratch load");
  std::printf("container now holds: %s (identical to destination: %s)\n",
              container.model.name().c_str(),
              container.model.Identical(destination.model) ? "yes" : "no");

  // Serve a request from the transformed container.
  const std::vector<float> image_summary(8, 0.4f);
  const std::vector<float> probabilities = RunInference(container, image_summary);
  std::printf("inference: %zu-class output, argmax class = %d\n", probabilities.size(),
              ArgMax(probabilities));
  return 0;
}
