// Scenario: the §7 prototype end to end, in process.
//
// An OptimusPlatform instance plays gateway + scheduler: three CNN functions
// and two BERT functions are Deploy()ed (plans pre-computed and cached at
// registration), then a 30-minute request script is replayed through
// Invoke(). Every request is served from a real container with real weights;
// the log shows warm starts, inter-function transformations (with the donor),
// and cold starts as containers go idle and expire.

#include <cstdio>

#include "src/core/platform.h"
#include "src/zoo/bert.h"
#include "src/zoo/resnet.h"
#include "src/zoo/vgg.h"

namespace {

optimus::Model Quarter(optimus::Model (*builder)(int, const optimus::VggOptions&), int depth) {
  optimus::VggOptions options;
  options.width_multiplier = 0.25;
  return builder(depth, options);
}

}  // namespace

int main() {
  using namespace optimus;

  AnalyticCostModel costs;
  PlatformOptions options;
  options.num_nodes = 1;
  options.containers_per_node = 3;
  OptimusPlatform platform(&costs, options);

  // Deploy the catalog (quarter-width for a fast demo).
  platform.Deploy("vgg11", Quarter(&BuildVgg, 11));
  platform.Deploy("vgg16", Quarter(&BuildVgg, 16));
  platform.Deploy("vgg19", Quarter(&BuildVgg, 19));
  {
    BertConfig tiny = BertTinyConfig();
    tiny.vocab_size = 2048;  // Scaled-down vocabulary for the demo.
    platform.Deploy("bert_tiny", BuildBert(tiny));
    BertConfig mini = BertMiniConfig();
    mini.vocab_size = 2048;
    platform.Deploy("bert_mini", BuildBert(mini));
  }
  std::printf("deployed %zu functions; plan cache holds %zu strategies\n\n",
              platform.NumFunctions(), platform.plan_cache().Size());

  // A request script: (time, function). The node has 3 container slots for
  // 5 functions, so transformations kick in once slots fill and idle.
  const struct {
    double t;
    const char* function;
  } script[] = {
      {0.0, "vgg16"},      {5.0, "vgg16"},      {10.0, "bert_tiny"}, {20.0, "vgg11"},
      {95.0, "vgg19"},     {100.0, "vgg19"},    {180.0, "bert_mini"}, {185.0, "vgg19"},
      {260.0, "vgg16"},    {265.0, "bert_mini"}, {340.0, "bert_tiny"}, {1200.0, "vgg11"},
  };

  const std::vector<float> input(8, 0.4f);
  std::printf("%8s %-11s %-10s %-24s %14s\n", "time(s)", "function", "start", "donor",
              "est latency(s)");
  for (const auto& request : script) {
    const InvokeResult result = platform.Invoke(request.function, input, request.t);
    std::printf("%8.0f %-11s %-10s %-24s %14.3f\n", request.t, request.function,
                StartTypeName(result.start),
                result.donor_function.empty() ? "-" : result.donor_function.c_str(),
                result.estimated_latency);
  }

  std::printf(
      "\ntotals: %zu warm, %zu transformed, %zu cold over %zu requests; %zu containers live\n",
      platform.WarmStarts(), platform.Transforms(), platform.ColdStarts(), std::size(script),
      platform.NumLiveContainers());
  return 0;
}
