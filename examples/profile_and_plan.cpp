// Scenario: offline profiling (paper §4.4 Module 1) and online refresh (§6).
//
// Profiles the meta-operator data paths on *this* machine, builds a
// MeasuredCostModel from the fit, and compares the transformation decisions
// it produces against the paper-calibrated analytic model. Ends with an
// online Refresh() to show profile updates at runtime.

#include <cstdio>

#include "src/core/transformer.h"
#include "src/runtime/profiler.h"
#include "src/zoo/mobilenet.h"
#include "src/zoo/resnet.h"

int main() {
  using namespace optimus;

  std::printf("profiling meta-operator data paths on this machine...\n");
  const CostProfile profile = ProfileMachine(/*repetitions=*/5);
  std::printf("%s\n\n", profile.ToString().c_str());

  MeasuredCostModel measured(profile);
  AnalyticCostModel analytic;

  ResNetOptions narrow;
  narrow.width_multiplier = 0.5;
  Model r18 = BuildResNet(18, narrow);
  r18.set_name("resnet18_half");
  Model r34 = BuildResNet(34, narrow);
  r34.set_name("resnet34_half");
  MobileNetOptions mobile_options;
  mobile_options.width_multiplier = 0.5;
  const Model mobilenet = BuildMobileNet(mobile_options);

  const struct {
    const Model* source;
    const Model* dest;
  } cases[] = {{&r18, &r34}, {&r34, &r18}, {&mobilenet, &r18}};

  std::printf("%-32s %16s %16s %10s\n", "case", "measured est(s)", "analytic est(s)",
              "agree?");
  for (const auto& pair : cases) {
    Transformer measured_transformer(&measured);
    Transformer analytic_transformer(&analytic);
    const TransformDecision with_measured =
        measured_transformer.Decide(*pair.source, *pair.dest);
    const TransformDecision with_analytic =
        analytic_transformer.Decide(*pair.source, *pair.dest);
    std::printf("%-32s %16.4f %16.4f %10s\n",
                (pair.source->name() + " -> " + pair.dest->name()).c_str(),
                with_measured.ChosenCost(), with_analytic.ChosenCost(),
                with_measured.use_transform == with_analytic.use_transform ? "yes" : "no");
  }

  std::printf("\nonline profiling refresh (§6)...\n");
  measured.Refresh(/*repetitions=*/2);
  std::printf("refreshed weight-assign throughput: %.2f GB/s\n",
              1e-9 / measured.profile().weight_assign_per_byte);
  return 0;
}
