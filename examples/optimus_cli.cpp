// optimus_cli — a command-line tool over the library's public API.
//
// Commands:
//   zoo                          list the representative model catalog
//   describe <model>             print a model's operation graph
//   plan <source> <dest>         plan a transformation (group planner) and
//                                print the strategy + safeguard verdict
//   matrix                       print the 21x21 transformation-cost matrix
//   simulate <system>            run the Azure-like workload through a system
//                                (openwhisk | pagurus | tetris | optimus)
//   export-trace <path>          write the Azure-like workload to a CSV file
//
// With no arguments, prints usage and runs `zoo`.

#include <cstdio>
#include <cstring>
#include <string>

#include "src/core/plan_io.h"
#include "src/core/transformer.h"
#include "src/graph/serialization.h"
#include "src/sim/simulator.h"
#include "src/workload/azure.h"
#include "src/workload/trace_io.h"
#include "src/zoo/registry.h"

namespace optimus {
namespace {

int Usage() {
  std::printf(
      "usage: optimus_cli <command> [args]\n"
      "  zoo                      list representative models\n"
      "  describe <model>         print a model's operation graph\n"
      "  plan <source> <dest>     plan source -> dest and print the strategy\n"
      "  matrix                   21x21 transformation cost matrix (seconds)\n"
      "  simulate <system>        run the Azure-like workload (openwhisk|pagurus|tetris|optimus)\n"
      "  export-trace <path>      write the Azure-like workload as CSV\n");
  return 2;
}

int CmdZoo() {
  const ModelRegistry registry = RepresentativeModels();
  std::printf("%-20s %-12s %10s %12s %8s\n", "model", "family", "ops", "params(M)", "MiB");
  for (const std::string& name : RepresentativeModelNames()) {
    const Model model = registry.Build(name);
    std::printf("%-20s %-12s %10zu %12.1f %8.0f\n", name.c_str(), model.family().c_str(),
                model.NumOps(), static_cast<double>(model.ParamCount()) / 1e6,
                static_cast<double>(model.WeightBytes()) / (1024.0 * 1024.0));
  }
  return 0;
}

int CmdDescribe(const std::string& name) {
  const ModelRegistry registry = RepresentativeModels();
  if (!registry.Has(name)) {
    std::fprintf(stderr, "unknown model '%s' (try `optimus_cli zoo`)\n", name.c_str());
    return 1;
  }
  std::printf("%s", DescribeModel(registry.Build(name)).c_str());
  return 0;
}

int CmdPlan(const std::string& source_name, const std::string& dest_name) {
  const ModelRegistry registry = RepresentativeModels();
  if (!registry.Has(source_name) || !registry.Has(dest_name)) {
    std::fprintf(stderr, "unknown model (try `optimus_cli zoo`)\n");
    return 1;
  }
  AnalyticCostModel costs;
  Transformer transformer(&costs);
  const Model source = registry.Build(source_name);
  const Model dest = registry.Build(dest_name);
  const TransformPlan& plan = transformer.cache().GetOrPlan(source, dest);
  const TransformDecision decision = transformer.Decide(source, dest);
  std::printf("%s\n", plan.ToString().c_str());
  std::printf("planning took %.3f ms\n", 1e3 * plan.planning_seconds);
  std::printf("estimated execution: %.3fs; scratch load: %.3fs; safeguard: %s\n",
              decision.transform_cost, decision.scratch_cost,
              decision.use_transform ? "TRANSFORM" : "LOAD FROM SCRATCH");
  std::printf("\nserialized strategy:\n%s", SerializePlan(plan).c_str());
  return 0;
}

int CmdMatrix() {
  AnalyticCostModel costs;
  Transformer transformer(&costs);
  const ModelRegistry registry = RepresentativeModels();
  const auto names = RepresentativeModelNames();
  std::printf("%-18s", "from\\to");
  for (size_t j = 0; j < names.size(); ++j) {
    std::printf(" %5zu", j + 1);
  }
  std::printf("\n");
  std::vector<Model> models;
  for (const std::string& name : names) {
    models.push_back(registry.Build(name));
  }
  for (size_t i = 0; i < models.size(); ++i) {
    std::printf("%2zu %-15.15s", i + 1, names[i].c_str());
    for (size_t j = 0; j < models.size(); ++j) {
      if (i == j) {
        std::printf("     -");
        continue;
      }
      std::printf(" %5.2f", transformer.Decide(models[i], models[j]).ChosenCost());
    }
    std::printf("\n");
  }
  return 0;
}

int CmdSimulate(const std::string& system_name) {
  SystemType system;
  if (system_name == "openwhisk") {
    system = SystemType::kOpenWhisk;
  } else if (system_name == "pagurus") {
    system = SystemType::kPagurus;
  } else if (system_name == "tetris") {
    system = SystemType::kTetris;
  } else if (system_name == "optimus") {
    system = SystemType::kOptimus;
  } else {
    std::fprintf(stderr, "unknown system '%s'\n", system_name.c_str());
    return 1;
  }
  const ModelRegistry registry = RepresentativeModels();
  std::vector<Model> models;
  std::vector<std::string> names = RepresentativeModelNames();
  for (const std::string& name : names) {
    models.push_back(registry.Build(name));
  }
  AzureTraceOptions trace_options;
  trace_options.horizon_seconds = 2.0 * 3600;
  const Trace trace = GenerateAzureTrace(names, trace_options);

  SimConfig config;
  config.system = system;
  config.num_nodes = 2;
  config.containers_per_node = 6;
  config.placement.kind =
      system == SystemType::kOptimus ? BalancerKind::kModelSharing : BalancerKind::kHash;
  AnalyticCostModel costs;
  const SimResult result = RunSimulation(models, trace, config, costs);
  std::printf("%s on Azure-like workload (%zu requests):\n", SystemTypeName(system),
              trace.size());
  std::printf("  avg service %.3fs (p50 %.3fs, p95 %.3fs, p99 %.3fs)\n",
              result.AvgServiceTime(), result.ServiceTimePercentile(0.5),
              result.ServiceTimePercentile(0.95), result.ServiceTimePercentile(0.99));
  std::printf("  start mix: %.1f%% warm, %.1f%% transform, %.1f%% cold\n",
              100.0 * result.FractionOf(StartType::kWarm),
              100.0 * result.FractionOf(StartType::kTransform),
              100.0 * result.FractionOf(StartType::kCold));
  return 0;
}

int CmdExportTrace(const std::string& path) {
  AzureTraceOptions trace_options;
  trace_options.horizon_seconds = 2.0 * 3600;
  const Trace trace = GenerateAzureTrace(RepresentativeModelNames(), trace_options);
  WriteTraceCsvFile(path, trace);
  std::printf("wrote %zu invocations to %s\n", trace.size(), path.c_str());
  return 0;
}

}  // namespace
}  // namespace optimus

int main(int argc, char** argv) {
  using namespace optimus;
  if (argc < 2) {
    Usage();
    std::printf("\n");
    return CmdZoo();
  }
  const std::string command = argv[1];
  try {
    if (command == "zoo") {
      return CmdZoo();
    }
    if (command == "describe" && argc >= 3) {
      return CmdDescribe(argv[2]);
    }
    if (command == "plan" && argc >= 4) {
      return CmdPlan(argv[2], argv[3]);
    }
    if (command == "matrix") {
      return CmdMatrix();
    }
    if (command == "simulate" && argc >= 3) {
      return CmdSimulate(argv[2]);
    }
    if (command == "export-trace" && argc >= 3) {
      return CmdExportTrace(argv[2]);
    }
  } catch (const std::exception& error) {
    std::fprintf(stderr, "error: %s\n", error.what());
    return 1;
  }
  return Usage();
}
