#!/usr/bin/env bash
# Formats every C++ source with the repo's .clang-format.
#
#   scripts/format.sh           rewrite files in place
#   scripts/format.sh --check   verify only (exit non-zero on violations),
#                               as the CI format job runs it
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "error: $CLANG_FORMAT not found (set CLANG_FORMAT to override)" >&2
  exit 1
fi

MODE=(-i)
if [[ "${1:-}" == "--check" ]]; then
  MODE=(--dry-run --Werror)
fi

find src tests bench examples \
  \( -name '*.cc' -o -name '*.h' -o -name '*.cpp' \) -print0 |
  xargs -0 "$CLANG_FORMAT" "${MODE[@]}"
