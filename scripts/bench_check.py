#!/usr/bin/env python3
"""Benchmark regression gate: compare BENCH_*.json medians against thresholds.

Usage (what the CI perf job runs):

    python3 scripts/bench_check.py BENCH_micro_ops.json BENCH_warm_parallel.json \
        BENCH_placement.json

Each input file is an artifact written by bench/bench_util.h's DumpScalarSeries /
DumpRegistryPercentiles: {"schema": "optimus-bench/N", "bench": "<name>",
"git_sha": "...", "series": [{"name", "labels", "count", "p50", ...}, ...]}.

bench/thresholds.json holds the gates. Every check names a bench, a series,
and a label set; the checker finds the matching series entry and requires
`min <= entry[metric]` and/or `entry[metric] <= max`. A check whose bench was
passed on the command line but whose series cannot be found is an error too —
renaming a series must not silently disable its gate. Checks for benches NOT
among the inputs are skipped (so the tool works on a single file locally).

Exit status: 0 = all gates hold, 1 = at least one violation (or a malformed /
unmatched input), 2 = usage error.

Re-baselining (see also the "docs" block in bench/thresholds.json): when a
deliberate change moves a number, run the affected bench with --smoke, inspect
the new medians with `--print`, and update the bound keeping the headroom
policy documented there. Never tighten a bound in the same PR that changes the
code being measured — land the code change first, then ratchet.
"""

import argparse
import json
import os
import sys

SCHEMA_PREFIX = "optimus-bench/"
MIN_SCHEMA_VERSION = 2


def load_artifact(path):
    """Parses and validates one BENCH_*.json artifact."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    schema = data.get("schema", "")
    if not schema.startswith(SCHEMA_PREFIX):
        raise ValueError(f"{path}: unrecognized schema {schema!r} "
                         f"(expected {SCHEMA_PREFIX}N)")
    try:
        version = int(schema[len(SCHEMA_PREFIX):])
    except ValueError as error:
        raise ValueError(f"{path}: malformed schema version in {schema!r}") from error
    if version < MIN_SCHEMA_VERSION:
        raise ValueError(f"{path}: schema version {version} predates the "
                         f"git_sha/series format (need >= {MIN_SCHEMA_VERSION})")
    for key in ("bench", "git_sha", "series"):
        if key not in data:
            raise ValueError(f"{path}: missing required key {key!r}")
    if not isinstance(data["series"], list):
        raise ValueError(f"{path}: 'series' must be a list")
    return data


def find_entry(artifact, series, labels):
    """Returns the unique series entry matching name + exact label set."""
    matches = [entry for entry in artifact["series"]
               if entry.get("name") == series and entry.get("labels", {}) == labels]
    if not matches:
        return None
    if len(matches) > 1:
        raise ValueError(f"ambiguous: {len(matches)} entries match "
                         f"{series} {labels}")
    return matches[0]


def format_labels(labels):
    if not labels:
        return "{}"
    return "{" + ", ".join(f"{k}={v}" for k, v in sorted(labels.items())) + "}"


def run_checks(artifacts, thresholds):
    """Evaluates every applicable gate; returns (passes, violations)."""
    passes, violations = [], []
    for check in thresholds["checks"]:
        bench = check["bench"]
        if bench not in artifacts:
            continue  # That bench was not run; local single-file use is fine.
        artifact = artifacts[bench]
        where = f"{bench}: {check['series']} {format_labels(check.get('labels', {}))}"
        try:
            entry = find_entry(artifact, check["series"], check.get("labels", {}))
        except ValueError as error:
            violations.append(f"{where}: {error}")
            continue
        if entry is None:
            violations.append(f"{where}: series not found in artifact "
                              "(renamed without updating bench/thresholds.json?)")
            continue
        metric = check.get("metric", "p50")
        if metric not in entry:
            violations.append(f"{where}: entry has no metric {metric!r}")
            continue
        value = entry[metric]
        bounds = []
        ok = True
        if "min" in check:
            bounds.append(f">= {check['min']}")
            ok = ok and value >= check["min"]
        if "max" in check:
            bounds.append(f"<= {check['max']}")
            ok = ok and value <= check["max"]
        if not bounds:
            violations.append(f"{where}: check has neither 'min' nor 'max'")
            continue
        line = f"{where}: {metric}={value:.6g} (want {' and '.join(bounds)})"
        if ok:
            passes.append(line)
        else:
            violations.append(line + f" -- {check.get('note', 'regression')}")
    return passes, violations


def print_medians(artifacts):
    for bench, artifact in sorted(artifacts.items()):
        print(f"== {bench} (git_sha={artifact['git_sha']}, "
              f"schema={artifact['schema']})")
        for entry in artifact["series"]:
            print(f"  {entry['name']} {format_labels(entry.get('labels', {}))}: "
                  f"p50={entry.get('p50', float('nan')):.6g} "
                  f"count={entry.get('count', 0)}")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="+", metavar="BENCH_*.json",
                        help="benchmark artifacts to check")
    parser.add_argument("--thresholds",
                        default=os.path.join(os.path.dirname(os.path.dirname(
                            os.path.abspath(__file__))), "bench", "thresholds.json"),
                        help="thresholds file (default: bench/thresholds.json "
                             "next to this script)")
    parser.add_argument("--print", dest="print_medians", action="store_true",
                        help="print every series median (for re-baselining) "
                             "instead of only the gated ones")
    args = parser.parse_args(argv)

    with open(args.thresholds, "r", encoding="utf-8") as handle:
        thresholds = json.load(handle)
    if "checks" not in thresholds:
        print(f"error: {args.thresholds} has no 'checks' list", file=sys.stderr)
        return 2

    artifacts = {}
    failed_load = False
    for path in args.artifacts:
        try:
            artifact = load_artifact(path)
        except (OSError, ValueError, json.JSONDecodeError) as error:
            print(f"FAIL {error}", file=sys.stderr)
            failed_load = True
            continue
        bench = artifact["bench"]
        if bench in artifacts:
            print(f"FAIL duplicate artifact for bench {bench!r}: {path}",
                  file=sys.stderr)
            failed_load = True
            continue
        artifacts[bench] = artifact

    if args.print_medians:
        print_medians(artifacts)

    passes, violations = run_checks(artifacts, thresholds)
    for line in passes:
        print(f"PASS {line}")
    for line in violations:
        print(f"FAIL {line}", file=sys.stderr)
    checked = {check["bench"] for check in thresholds["checks"]}
    for bench in sorted(set(artifacts) - checked):
        print(f"note: bench {bench!r} has no thresholds configured")

    if violations or failed_load:
        print(f"\n{len(violations)} gate violation(s). See bench/thresholds.json "
              "for the re-baselining policy.", file=sys.stderr)
        return 1
    print(f"\nAll {len(passes)} benchmark gate(s) hold.")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
