#!/usr/bin/env python3
"""Validate Prometheus text exposition format (version 0.0.4).

Used by CI to check the gateway's /metrics endpoint: the response must parse
line-by-line as valid exposition text, every sample must belong to a family
announced by a # TYPE line, summaries must carry quantile series plus _sum and
_count, and counter values must be non-negative integers.

Usage:
  check_prometheus.py [FILE]               # FILE or stdin
  check_prometheus.py --require NAME ...   # additionally assert families exist

Exits 0 when valid, 1 on any violation (all violations are printed).
"""

import argparse
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
# name{labels} value  — labels block is optional; values include +Inf/NaN.
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?"
    r" (?P<value>[-+]?(?:[0-9]*\.?[0-9]+(?:[eE][-+]?[0-9]+)?|Inf|NaN))"
    r"(?: [0-9]+)?$"
)
LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\["\\n])*)"')


def base_family(name: str) -> str:
    """Strips summary/histogram sample suffixes to the announced family name."""
    for suffix in ("_sum", "_count", "_max", "_bucket"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate(text: str):
    errors = []
    types = {}  # family -> type
    helps = set()
    seen_series = set()
    samples = []  # (family, name, labels_text, value)

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP ") :].split(" ", 1)
            if not parts or not METRIC_NAME.match(parts[0]):
                errors.append(f"line {lineno}: malformed HELP line: {line!r}")
            elif parts[0] in helps:
                errors.append(f"line {lineno}: duplicate HELP for {parts[0]}")
            else:
                helps.add(parts[0])
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE ") :].split(" ")
            if len(parts) != 2 or not METRIC_NAME.match(parts[0]):
                errors.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            name, metric_type = parts
            if metric_type not in ("counter", "gauge", "summary", "histogram", "untyped"):
                errors.append(f"line {lineno}: unknown metric type {metric_type!r}")
            elif name in types:
                errors.append(f"line {lineno}: duplicate TYPE for {name}")
            else:
                types[name] = metric_type
            continue
        if line.startswith("#"):
            continue  # Other comments are legal.

        match = SAMPLE_LINE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparseable sample line: {line!r}")
            continue
        name = match.group("name")
        labels_text = match.group("labels") or ""
        if labels_text:
            inner = labels_text[1:-1]
            consumed = ",".join(
                f'{k}="{v}"' for k, v in LABEL_PAIR.findall(labels_text)
            )
            if inner != consumed:
                errors.append(f"line {lineno}: malformed labels {labels_text!r}")
            for label_name, _ in LABEL_PAIR.findall(labels_text):
                if not LABEL_NAME.match(label_name):
                    errors.append(f"line {lineno}: bad label name {label_name!r}")
        family = base_family(name)
        if family not in types and name in types:
            family = name  # e.g. a family genuinely named *_sum.
        if family not in types:
            errors.append(f"line {lineno}: sample {name!r} has no # TYPE announcement")
            continue
        series_key = (name, labels_text)
        if series_key in seen_series:
            errors.append(f"line {lineno}: duplicate series {name}{labels_text}")
        seen_series.add(series_key)
        samples.append((family, name, labels_text, match.group("value")))

    by_family = {}
    for family, name, labels_text, value in samples:
        by_family.setdefault(family, []).append((name, labels_text, value))

    for family, metric_type in types.items():
        family_samples = by_family.get(family, [])
        if not family_samples:
            errors.append(f"family {family}: TYPE announced but no samples")
            continue
        if metric_type == "counter":
            for name, labels_text, value in family_samples:
                if value in ("NaN", "+Inf", "-Inf") or float(value) < 0:
                    errors.append(
                        f"family {family}: counter sample {name}{labels_text} = {value}"
                    )
        if metric_type == "summary":
            names = {name for name, _, _ in family_samples}
            if f"{family}_sum" not in names:
                errors.append(f"family {family}: summary missing {family}_sum")
            if f"{family}_count" not in names:
                errors.append(f"family {family}: summary missing {family}_count")
            quantiles = [
                labels_text
                for name, labels_text, _ in family_samples
                if name == family
            ]
            if not quantiles:
                errors.append(f"family {family}: summary has no quantile series")
            for labels_text in quantiles:
                if 'quantile="' not in labels_text:
                    errors.append(
                        f"family {family}: series {labels_text!r} lacks a quantile label"
                    )

    return errors, types


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", nargs="?", help="exposition text file (default: stdin)")
    parser.add_argument(
        "--require",
        nargs="*",
        default=[],
        help="metric family names that must be present",
    )
    args = parser.parse_args()

    if args.file:
        with open(args.file, "r", encoding="utf-8") as handle:
            text = handle.read()
    else:
        text = sys.stdin.read()

    errors, types = validate(text)
    for name in args.require:
        if name not in types:
            errors.append(f"required metric family {name!r} not exposed")

    if errors:
        for error in errors:
            print(f"check_prometheus: {error}", file=sys.stderr)
        return 1
    print(
        f"check_prometheus: OK — {len(types)} families "
        f"({sum(1 for t in types.values() if t == 'summary')} summaries)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
