#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, then every
# figure/table benchmark. Mirrors what CI would run.
set -euo pipefail
cd "$(dirname "$0")/.."
cmake -B build -G Ninja
cmake --build build
ctest --test-dir build --output-on-failure
for b in build/bench/bench_*; do
  echo "==================== $b"
  "$b"
done
