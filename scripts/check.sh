#!/usr/bin/env bash
# Full verification: configure, build, run the test suite, then every
# figure/table benchmark. Mirrors the CI matrix via environment variables:
#
#   BUILD_TYPE   CMake build type (default Release)
#   SANITIZE    passed to -DOPTIMUS_SANITIZE, e.g. address,undefined or thread
#   BUILD_DIR   build directory (default: build, or build-<sanitizers>)
#   SKIP_BENCH  set to 1 to stop after the test suite (sanitized benches are slow)
#   OPTIMUS_FAULTS  fault-injection spec (src/common/fault.h) inherited by every
#               test/tool run below — e.g. "executor.step=prob:0.01@7" hardens
#               the whole suite against injected transform failures, and
#               "node.revoke=prob:0.005@3;tenant.quota_exhausted=nth:50"
#               layers node churn + tenant-quota rejections on top. The chaos
#               sweep arms its own seeded faults regardless.
#
# Examples:
#   scripts/check.sh                                  # tier-1: Release + ctest + benches
#   SANITIZE=thread SKIP_BENCH=1 scripts/check.sh     # the CI TSan job, locally
#   OPTIMUS_FAULTS="node.revoke=prob:0.01@9" scripts/check.sh  # churn-hardened suite
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_TYPE="${BUILD_TYPE:-Release}"
SANITIZE="${SANITIZE:-}"
if [[ -n "$SANITIZE" ]]; then
  BUILD_DIR="${BUILD_DIR:-build-${SANITIZE//,/-}}"
else
  BUILD_DIR="${BUILD_DIR:-build}"
fi

CONFIGURE=(cmake -B "$BUILD_DIR" -DCMAKE_BUILD_TYPE="$BUILD_TYPE")
# Prefer Ninja when available and the build dir is not already configured with
# another generator; fall back to the default generator (Unix Makefiles).
if command -v ninja >/dev/null 2>&1 && [[ ! -f "$BUILD_DIR/CMakeCache.txt" ]]; then
  CONFIGURE+=(-G Ninja)
fi
if [[ -n "$SANITIZE" ]]; then
  CONFIGURE+=(-DOPTIMUS_SANITIZE="$SANITIZE")
fi

"${CONFIGURE[@]}"
cmake --build "$BUILD_DIR" -j
ctest --test-dir "$BUILD_DIR" --output-on-failure

# Seeded chaos smoke: randomized fault schedules over the invoke/transform
# path; exits non-zero on any DESIGN.md §11 invariant violation. Also prints
# latency-percentile/drift summaries and asserts span accounting balances.
"$BUILD_DIR"/tools/optimus_chaos --smoke

# Node-churn storm smoke (DESIGN.md §16): 30% kill/revive cycles with counter
# reconciliation and container-integrity checks; counters-only output, so the
# fixed-seed sweep is bit-reproducible (CI diffs two runs).
"$BUILD_DIR"/tools/optimus_chaos --smoke --storm

# Forecast-driven warming smoke (DESIGN.md §17): manual warming cycles under
# the warming.prefetch fault; the speculation ledger must reconcile exactly
# and never perturb the reactive start counters.
"$BUILD_DIR"/tools/optimus_chaos --smoke --warming

# Telemetry endpoint smoke (DESIGN.md §12): a real gateway must serve
# /metrics as valid Prometheus exposition text and /trace as Chrome
# trace_event JSON with the expected span taxonomy.
"$BUILD_DIR"/tools/optimus_trace --selftest \
  --out "$BUILD_DIR"/trace-selftest.json --metrics-out "$BUILD_DIR"/metrics-selftest.txt
python3 scripts/check_prometheus.py "$BUILD_DIR"/metrics-selftest.txt \
  --require optimus_starts_total optimus_invoke_seconds optimus_phase_seconds \
  optimus_cost_drift_ratio optimus_trace_spans_opened_total
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$BUILD_DIR"/trace-selftest.json

if [[ "${SKIP_BENCH:-0}" == "1" ]]; then
  exit 0
fi
for b in "$BUILD_DIR"/bench/bench_*; do
  echo "==================== $b"
  "$b"
done
