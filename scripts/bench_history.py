#!/usr/bin/env python3
"""Longitudinal benchmark diff: one table across many BENCH_*.json artifacts.

scripts/bench_check.py gates a single run against static thresholds; nothing
diffs the per-run artifacts the CI perf job uploads *over time*. This tool
closes that gap: feed it the same BENCH_*.json files from several commits
(e.g. downloaded `bench-results-<sha>` artifacts) and it renders one table per
series — one column per commit, in input order — for a chosen metric, with
the relative delta of the newest column against the oldest.

    python3 scripts/bench_history.py old/BENCH_micro_ops.json \
        mid/BENCH_micro_ops.json new/BENCH_micro_ops.json
    python3 scripts/bench_history.py --metric p99 --format csv run*/BENCH_*.json

Artifacts sharing a git_sha (several benches from one commit) land in the same
column. Series are keyed by (bench, name, labels); a series missing from some
commit renders as "-" in that column rather than erroring, so the table stays
usable across runs that added or renamed benchmarks.

    --metric   p50 (default), mean, p95, p99, max, count
    --format   md (default) or csv
    --selftest fabricates two fake commits in a temp dir and checks the table

Exit status: 0 on success (the tool reports, it does not gate — thresholds
stay bench_check.py's job), 1 on malformed input, 2 on usage error.
"""

import argparse
import json
import os
import sys
import tempfile

SCHEMA_PREFIX = "optimus-bench/"
MIN_SCHEMA_VERSION = 2
METRICS = ("p50", "mean", "p95", "p99", "max", "count")


def load_artifact(path):
    """Parses one BENCH_*.json artifact; raises ValueError when malformed."""
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    schema = data.get("schema", "")
    if not schema.startswith(SCHEMA_PREFIX):
        raise ValueError(f"{path}: unrecognized schema {schema!r}")
    try:
        version = int(schema[len(SCHEMA_PREFIX):])
    except ValueError as error:
        raise ValueError(f"{path}: malformed schema version {schema!r}") from error
    if version < MIN_SCHEMA_VERSION:
        raise ValueError(f"{path}: schema version {version} predates the "
                         f"git_sha/series format (need >= {MIN_SCHEMA_VERSION})")
    for key in ("bench", "git_sha", "series"):
        if key not in data:
            raise ValueError(f"{path}: missing required key {key!r}")
    if not isinstance(data["series"], list):
        raise ValueError(f"{path}: 'series' must be a list")
    return data


def series_key(bench, entry):
    labels = entry.get("labels", {}) or {}
    label_str = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return (bench, entry.get("name", "?"), label_str)


def short_sha(sha):
    return sha[:10] if len(sha) > 10 else sha


def collect(paths, metric):
    """Returns (sha_order, {series_key: {sha: value}})."""
    sha_order = []
    table = {}
    for path in paths:
        data = load_artifact(path)
        sha = data["git_sha"]
        if sha not in sha_order:
            sha_order.append(sha)
        for entry in data["series"]:
            key = series_key(data["bench"], entry)
            if metric not in entry:
                raise ValueError(f"{path}: series {key[1]!r} has no {metric!r} field")
            cells = table.setdefault(key, {})
            if sha in cells:
                raise ValueError(f"{path}: duplicate series {key} for commit "
                                 f"{short_sha(sha)} — same artifact fed twice?")
            cells[sha] = entry[metric]
    return sha_order, table


def format_value(value):
    if value is None:
        return "-"
    if isinstance(value, float) and not value.is_integer():
        return f"{value:.6g}"
    return str(int(value))


def format_delta(first, last):
    """Relative change of the newest column vs the oldest, when both exist."""
    if first is None or last is None:
        return "-"
    if first == 0:
        return "-" if last == 0 else "inf"
    return f"{(last - first) / first * 100.0:+.1f}%"


def render_rows(sha_order, table, metric):
    header = ["bench", "series", "labels"] + [short_sha(s) for s in sha_order]
    if len(sha_order) > 1:
        header.append(f"Δ{metric}")
    rows = [header]
    for key in sorted(table):
        cells = table[key]
        values = [cells.get(sha) for sha in sha_order]
        row = list(key) + [format_value(v) for v in values]
        if len(sha_order) > 1:
            row.append(format_delta(values[0], values[-1]))
        rows.append(row)
    return rows


def emit_md(rows, out):
    widths = [max(len(row[i]) for row in rows) for i in range(len(rows[0]))]
    for index, row in enumerate(rows):
        out.write("| " + " | ".join(cell.ljust(widths[i])
                                    for i, cell in enumerate(row)) + " |\n")
        if index == 0:
            out.write("|" + "|".join("-" * (w + 2) for w in widths) + "|\n")


def emit_csv(rows, out):
    for row in rows:
        out.write(",".join('"' + cell.replace('"', '""') + '"'
                           if ("," in cell or '"' in cell) else cell
                           for cell in row) + "\n")


def run(paths, metric, fmt, out):
    sha_order, table = collect(paths, metric)
    if not table:
        raise ValueError("no series found in any input")
    rows = render_rows(sha_order, table, metric)
    if fmt == "csv":
        emit_csv(rows, out)
    else:
        out.write(f"Benchmark history — metric: {metric}, "
                  f"{len(sha_order)} commit(s), {len(table)} series\n\n")
        emit_md(rows, out)


def fake_artifact(directory, bench, sha, p50_by_name):
    series = [{"name": name, "labels": {"mode": "smoke"}, "count": 100,
               "mean": p50 * 1.1, "p50": p50, "p95": p50 * 2,
               "p99": p50 * 3, "max": p50 * 4}
              for name, p50 in p50_by_name.items()]
    path = os.path.join(directory, f"BENCH_{bench}_{sha}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump({"schema": "optimus-bench/2", "git_sha": sha,
                   "bench": bench, "series": series}, handle)
    return path


def selftest():
    import io
    with tempfile.TemporaryDirectory() as tmp:
        old = fake_artifact(tmp, "micro", "aaaaaaaaaaaaaaaa",
                            {"warm_start_us": 100.0, "transform_us": 50.0})
        new = fake_artifact(tmp, "micro", "bbbbbbbbbbbbbbbb",
                            {"warm_start_us": 80.0, "renamed_us": 7.0})
        buffer = io.StringIO()
        run([old, new], "p50", "md", buffer)
        text = buffer.getvalue()
        assert "aaaaaaaaaa" in text and "bbbbbbbbbb" in text, text
        assert "-20.0%" in text, text       # 100 -> 80
        assert text.count(" - ") >= 2, text  # series missing on one side
        buffer = io.StringIO()
        run([old, new], "p99", "csv", buffer)
        assert "300" in buffer.getvalue(), buffer.getvalue()  # p99 = 3 * p50
        # Feeding the same artifact twice must be rejected, not double-counted.
        try:
            run([old, old], "p50", "md", io.StringIO())
        except ValueError:
            pass
        else:
            raise AssertionError("duplicate artifact was not rejected")
    print("bench_history selftest OK")


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("artifacts", nargs="*", help="BENCH_*.json files, oldest first")
    parser.add_argument("--metric", default="p50", choices=METRICS)
    parser.add_argument("--format", default="md", choices=("md", "csv"))
    parser.add_argument("--selftest", action="store_true")
    args = parser.parse_args(argv)
    if args.selftest:
        selftest()
        return 0
    if not args.artifacts:
        parser.error("no artifacts given (or use --selftest)")
    try:
        run(args.artifacts, args.metric, args.format, sys.stdout)
    except (ValueError, OSError, json.JSONDecodeError) as error:
        print(f"bench_history: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
