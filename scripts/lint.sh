#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over every C++ source under src/.
#
#   scripts/lint.sh               lint src/ using build/compile_commands.json
#   BUILD_DIR=build-x lint.sh     use another build dir's compilation database
#
# The compilation database is produced by any CMake configure (the top-level
# CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS); if the build dir is missing
# this script configures it first. Findings are errors (WarningsAsErrors: '*'
# in .clang-tidy), so a non-zero exit means the lint job should fail.
#
# When clang-tidy is not installed the script skips with exit 0 so that
# developer machines without LLVM can still run scripts/check.sh; CI installs
# clang-tidy explicitly and therefore always gets the real run.
set -euo pipefail
cd "$(dirname "$0")/.."

CLANG_TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$CLANG_TIDY" >/dev/null 2>&1; then
  echo "lint.sh: $CLANG_TIDY not found; skipping (CI installs it)" >&2
  exit 0
fi

BUILD_DIR="${BUILD_DIR:-build}"
if [[ ! -f "$BUILD_DIR/compile_commands.json" ]]; then
  cmake -B "$BUILD_DIR" -S .
fi

mapfile -t SOURCES < <(find src -name '*.cc' | sort)
echo "lint.sh: ${#SOURCES[@]} sources, database $BUILD_DIR/compile_commands.json"

JOBS="$(nproc 2>/dev/null || echo 4)"
printf '%s\n' "${SOURCES[@]}" |
  xargs -P "$JOBS" -n 1 "$CLANG_TIDY" -p "$BUILD_DIR" --quiet
echo "lint.sh: clean"
