// optimus_trace: fetch request traces from a running Optimus gateway.
//
// Drains the gateway's /trace endpoint (Chrome trace_event JSON) and writes
// the document to stdout or a file, ready to load in chrome://tracing or
// Perfetto. With --demo, no gateway is needed: the tool spins up an
// in-process platform, deploys two VGG variants, runs a cold start and a
// traced transform-triggering invoke, and exports that trace — a one-command
// way to see the plan-lookup / meta-op / inference span taxonomy.
//
// With --selftest, the tool starts a real gateway on an ephemeral loopback
// port, deploys two VGG variants over POST /deploy, drives a cold start, a
// transform, and a warm start over POST /invoke (virtual clock, every request
// traced), then scrapes GET /metrics and GET /trace over the socket — the CI
// smoke that proves both observability endpoints serve well-formed payloads.
//
// Exits 0 on success, 1 on fetch/serve errors, 2 on usage errors.
//
// Examples:
//   optimus_trace --port 8080                 # drain a live gateway
//   optimus_trace --port 8080 --out trace.json
//   optimus_trace --demo --out demo.json      # self-contained demo trace
//   optimus_trace --selftest --out trace.json --metrics-out metrics.txt

#include <atomic>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/core/platform.h"
#include "src/gateway/http.h"
#include "src/gateway/service.h"
#include "src/graph/serialization.h"
#include "src/runtime/cost_model.h"
#include "src/telemetry/trace.h"
#include "src/zoo/vgg.h"

namespace {

using namespace optimus;  // NOLINT(google-build-using-namespace): small CLI tool.

struct Options {
  uint16_t port = 0;
  std::string out;          // Empty = stdout.
  std::string metrics_out;  // --selftest: where the /metrics scrape lands.
  bool demo = false;
  bool selftest = false;
  bool metrics = false;  // Also dump /metrics to stderr (live mode only).
};

void PrintUsage() {
  std::cout << "Usage: optimus_trace [options]\n"
               "  --port P     drain GET /trace from the gateway on 127.0.0.1:P\n"
               "  --out FILE   write the trace JSON to FILE instead of stdout\n"
               "  --metrics    also fetch /metrics and print it to stderr\n"
               "  --demo       no gateway: run a traced transform in-process and\n"
               "               export its spans (plan_lookup, meta-ops, inference)\n"
               "  --selftest   start a gateway on an ephemeral port, drive cold/\n"
               "               transform/warm invokes over HTTP, scrape /metrics\n"
               "               (--metrics-out FILE) and /trace (--out FILE)\n"
               "  --metrics-out FILE  /metrics destination for --selftest\n";
}

int WriteDocument(const Options& options, const std::string& json) {
  if (options.out.empty()) {
    std::cout << json;
    return 0;
  }
  std::ofstream file(options.out, std::ios::trunc);
  if (!file) {
    std::cerr << "optimus_trace: cannot open " << options.out << " for writing\n";
    return 1;
  }
  file << json;
  std::cerr << "wrote " << json.size() << " bytes to " << options.out << "\n";
  return 0;
}

// A self-contained traced transform: cold-start vgg11 on a one-slot node,
// then invoke vgg16 after the idle threshold so the donor is repurposed.
int RunDemo(const Options& options) {
  AnalyticCostModel costs;
  PlatformOptions platform_options;
  platform_options.num_nodes = 1;
  platform_options.containers_per_node = 1;
  OptimusPlatform platform(&costs, platform_options);
  VggOptions vgg;
  vgg.width_multiplier = 0.25;
  platform.Deploy("vgg11", BuildVgg(11, vgg));
  platform.Deploy("vgg16", BuildVgg(16, vgg));
  const std::vector<float> input(8, 0.5f);

  platform.Invoke("vgg11", input, 0.0);
  auto cold_trace = platform.traces().StartTrace("vgg11-cold");
  // Expire the container so the second vgg11 trace shows a scratch load too.
  platform.Invoke("vgg11", input, 1000.0, cold_trace.get());
  platform.traces().Finish(std::move(cold_trace));

  auto trace = platform.traces().StartTrace("vgg16-transform");
  const InvokeResult result = platform.Invoke("vgg16", input, 1100.0, trace.get());
  platform.traces().Finish(std::move(trace));
  std::cerr << "demo invoke: start=" << static_cast<int>(result.start)
            << " donor=" << result.donor_function
            << " spans=" << platform.traces().SpansOpened() << "\n";

  return WriteDocument(options, telemetry::ExportChromeTrace(platform.traces().Drain()));
}

// Starts a real gateway on loopback, drives a cold -> transform -> warm
// sequence over HTTP with a virtual clock, then scrapes both observability
// endpoints. Returns nonzero if any step misbehaves.
int RunSelftest(const Options& options) {
  AnalyticCostModel costs;
  PlatformOptions platform_options;
  platform_options.num_nodes = 1;
  platform_options.containers_per_node = 1;
  platform_options.trace_sample_period = 1;  // Trace every request.
  std::atomic<double> now{0.0};
  OptimusHttpService service(&costs, platform_options, [&now] { return now.load(); });
  service.Start(/*port=*/0, /*num_workers=*/2);
  const uint16_t port = service.port();
  std::cerr << "selftest gateway on 127.0.0.1:" << port << "\n";

  int failures = 0;
  const auto expect = [&failures](bool ok, const std::string& what) {
    if (!ok) {
      std::cerr << "selftest FAIL: " << what << "\n";
      ++failures;
    }
  };

  VggOptions vgg;
  vgg.width_multiplier = 0.25;
  for (const auto& [name, depth] : {std::pair<const char*, int>{"vgg11", 11}, {"vgg16", 16}}) {
    const ModelFile file = SerializeModel(BuildVgg(depth, vgg));
    const HttpResponse deploy = HttpFetch(port, "POST", std::string("/deploy?name=") + name,
                                          std::string(file.begin(), file.end()));
    expect(deploy.status == 200, std::string("deploy ") + name);
  }

  const HttpResponse cold = HttpFetch(port, "POST", "/invoke?name=vgg11", "0.5,0.5,0.5,0.5");
  expect(cold.status == 200 && cold.body.find("start=Cold") != std::string::npos,
         "cold invoke of vgg11");
  now.store(100.0);  // Past the idle threshold: vgg11's container is a donor.
  const HttpResponse transform =
      HttpFetch(port, "POST", "/invoke?name=vgg16", "0.5,0.5,0.5,0.5");
  expect(transform.status == 200 && transform.body.find("start=Transform") != std::string::npos,
         "transform invoke of vgg16 (body: " + transform.body.substr(0, 120) + ")");
  const HttpResponse warm = HttpFetch(port, "POST", "/invoke?name=vgg16", "0.5,0.5,0.5,0.5");
  expect(warm.status == 200 && warm.body.find("start=Warm") != std::string::npos,
         "warm invoke of vgg16");

  // Exercise the forecast-driven warming surface so the optimus_warming_*
  // metric families register before the /metrics scrape below.
  const HttpResponse enable = HttpFetch(port, "POST", "/warming/enable");
  expect(enable.status == 200 && enable.body.find("\"enabled\":true") != std::string::npos,
         "POST /warming/enable");
  now.store(200.0);
  const HttpResponse cycle = HttpFetch(port, "POST", "/warming/run");
  expect(cycle.status == 200 && cycle.body.find("\"executed\":") != std::string::npos,
         "POST /warming/run");
  const HttpResponse warming = HttpFetch(port, "GET", "/warming");
  expect(warming.status == 200 && warming.body.find("\"cycles\":") != std::string::npos,
         "GET /warming reports cycle count");

  const HttpResponse metrics = HttpFetch(port, "GET", "/metrics");
  expect(metrics.status == 200, "/metrics status");
  expect(metrics.content_type.find("text/plain") != std::string::npos, "/metrics content type");
  expect(metrics.body.find("# TYPE optimus_starts_total counter") != std::string::npos,
         "/metrics exposes optimus_starts_total");
  expect(metrics.body.find("optimus_invoke_seconds") != std::string::npos,
         "/metrics exposes optimus_invoke_seconds");
  expect(metrics.body.find("optimus_warming_cycles_total") != std::string::npos,
         "/metrics exposes optimus_warming_cycles_total");

  const HttpResponse trace = HttpFetch(port, "GET", "/trace");
  expect(trace.status == 200, "/trace status");
  expect(trace.content_type.find("application/json") != std::string::npos,
         "/trace content type");
  expect(trace.body.find("\"ph\":\"X\"") != std::string::npos, "/trace has span events");
  expect(trace.body.find("plan_lookup") != std::string::npos, "/trace has plan_lookup span");
  expect(trace.body.find("inference") != std::string::npos, "/trace has inference span");

  const auto& collector = service.platform().traces();
  expect(collector.SpansOpened() == collector.SpansClosed(),
         "span accounting reconciles (opened == closed)");
  service.Stop();

  if (!options.metrics_out.empty()) {
    std::ofstream file(options.metrics_out, std::ios::trunc);
    file << metrics.body;
  }
  const int write_status = options.out.empty() ? 0 : WriteDocument(options, trace.body);
  std::cerr << "selftest: " << (failures == 0 ? "OK" : "FAILED") << "\n";
  return failures == 0 ? write_status : 1;
}

int RunFetch(const Options& options) {
  try {
    const HttpResponse response = HttpFetch(options.port, "GET", "/trace");
    if (response.status != 200) {
      std::cerr << "optimus_trace: GET /trace returned " << response.status << "\n";
      return 1;
    }
    if (options.metrics) {
      const HttpResponse metrics = HttpFetch(options.port, "GET", "/metrics");
      std::cerr << metrics.body;
    }
    return WriteDocument(options, response.body);
  } catch (const std::exception& error) {
    std::cerr << "optimus_trace: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    }
    if (arg == "--demo") {
      options.demo = true;
    } else if (arg == "--selftest") {
      options.selftest = true;
    } else if (arg == "--metrics-out" && i + 1 < argc) {
      options.metrics_out = argv[++i];
    } else if (arg == "--metrics") {
      options.metrics = true;
    } else if (arg == "--port" && i + 1 < argc) {
      options.port = static_cast<uint16_t>(std::stoi(argv[++i]));
    } else if (arg == "--out" && i + 1 < argc) {
      options.out = argv[++i];
    } else {
      std::cerr << "optimus_trace: unknown option '" << arg << "'\n";
      PrintUsage();
      return 2;
    }
  }
  if (options.demo) {
    return RunDemo(options);
  }
  if (options.selftest) {
    return RunSelftest(options);
  }
  if (options.port == 0) {
    std::cerr << "optimus_trace: --port or --demo required\n";
    PrintUsage();
    return 2;
  }
  return RunFetch(options);
}
