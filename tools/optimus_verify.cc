// optimus_verify: static verification sweep over the model zoo and cached
// plan files (DESIGN.md §10).
//
// For every ordered model pair in the chosen set (optionally sampled), plans
// the transformation with each requested planner and statically verifies the
// plan: symbolic application must reproduce the destination graph through
// well-formed intermediates, and the claimed costs must be sound against the
// analytic cost model. Every model's own graph invariants are checked too,
// and plan files produced by PlanCache::Save can be re-verified offline.
//
// Exits 0 when the sweep is clean, 1 on any violation, 2 on usage errors.
//
// Examples:
//   optimus_verify                                   # representative set, both planners
//   optimus_verify --set bert --planners group
//   optimus_verify --set imgclsmob --count 40 --sample 200
//   optimus_verify --save-plans plans.txt            # then:
//   optimus_verify --plans plans.txt

#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "src/analysis/verifier.h"
#include "src/common/rng.h"
#include "src/core/plan_io.h"
#include "src/core/planner.h"
#include "src/runtime/cost_model.h"
#include "src/zoo/registry.h"

namespace {

using namespace optimus;  // NOLINT(google-build-using-namespace): small CLI tool.

struct Options {
  std::string set = "representative";
  int count = 0;  // 0 = the set's default size.
  std::vector<PlannerKind> planners{PlannerKind::kBasic, PlannerKind::kGroup};
  size_t sample = 0;  // 0 = every ordered pair.
  uint64_t seed = 2024;
  std::vector<std::string> plan_files;
  std::string save_plans;
  bool quiet = false;
};

void PrintUsage() {
  std::cout << "Usage: optimus_verify [options]\n"
               "  --set NAME        representative (default) | bert | imgclsmob | nas\n"
               "  --count N         catalog size for imgclsmob/nas sets\n"
               "  --planners LIST   comma-separated subset of basic,group (default both)\n"
               "  --sample N        verify N randomly sampled ordered pairs instead of all\n"
               "  --seed S          sampling seed (default 2024)\n"
               "  --plans FILE      verify a plan file (repeatable; plans whose models are\n"
               "                    in the set are fully verified, others shape-checked)\n"
               "  --save-plans FILE write every swept plan to FILE (PlanCache format)\n"
               "  --quiet           print violations and the final summary only\n";
}

bool ParsePlanners(const std::string& list, std::vector<PlannerKind>* planners) {
  planners->clear();
  size_t begin = 0;
  while (begin <= list.size()) {
    const size_t comma = list.find(',', begin);
    const std::string token =
        list.substr(begin, comma == std::string::npos ? std::string::npos : comma - begin);
    if (token == "basic") {
      planners->push_back(PlannerKind::kBasic);
    } else if (token == "group") {
      planners->push_back(PlannerKind::kGroup);
    } else {
      return false;
    }
    if (comma == std::string::npos) {
      break;
    }
    begin = comma + 1;
  }
  return !planners->empty();
}

ModelRegistry BuildRegistry(const Options& options) {
  if (options.set == "representative") {
    return RepresentativeModels();
  }
  if (options.set == "bert") {
    return BertZoo();
  }
  if (options.set == "imgclsmob") {
    return options.count > 0 ? ImgclsmobZoo(options.count) : ImgclsmobZoo();
  }
  if (options.set == "nas") {
    return NasBenchZoo(options.count > 0 ? options.count : 30, 2024);
  }
  throw std::invalid_argument("unknown model set '" + options.set + "'");
}

struct SweepStats {
  size_t models_checked = 0;
  size_t plans_checked = 0;
  size_t violations = 0;
};

void Report(const std::string& what, const std::string& summary, SweepStats* stats) {
  ++stats->violations;
  std::cerr << "VIOLATION " << what << "\n  " << summary << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << flag << " requires an argument\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--set") {
      options.set = next("--set");
    } else if (arg == "--count") {
      options.count = std::atoi(next("--count"));
    } else if (arg == "--planners") {
      if (!ParsePlanners(next("--planners"), &options.planners)) {
        std::cerr << "--planners expects a comma-separated subset of basic,group\n";
        return 2;
      }
    } else if (arg == "--sample") {
      options.sample = static_cast<size_t>(std::atoll(next("--sample")));
    } else if (arg == "--seed") {
      options.seed = static_cast<uint64_t>(std::atoll(next("--seed")));
    } else if (arg == "--plans") {
      options.plan_files.push_back(next("--plans"));
    } else if (arg == "--save-plans") {
      options.save_plans = next("--save-plans");
    } else if (arg == "--quiet") {
      options.quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else {
      std::cerr << "unknown argument '" << arg << "'\n";
      PrintUsage();
      return 2;
    }
  }

  ModelRegistry registry;
  try {
    registry = BuildRegistry(options);
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return 2;
  }

  const AnalyticCostModel costs;
  SweepStats stats;

  // Build every model once; check its graph invariants on the way in.
  const std::vector<std::string> names = registry.Names();
  std::map<std::string, Model> models;
  for (const std::string& name : names) {
    Model model = registry.Build(name);
    const GraphCheckResult check = VerifyModel(model);
    ++stats.models_checked;
    if (!check.ok()) {
      Report("model '" + name + "'", check.Summary(), &stats);
    }
    models.emplace(name, std::move(model));
  }
  if (!options.quiet) {
    std::cout << "checked " << stats.models_checked << " models from set '" << options.set
              << "'\n";
  }

  // Assemble the ordered pairs to sweep.
  std::vector<std::pair<const Model*, const Model*>> pairs;
  if (options.sample == 0) {
    for (const auto& [from_name, from] : models) {
      for (const auto& [to_name, to] : models) {
        if (from_name != to_name) {
          pairs.emplace_back(&from, &to);
        }
      }
    }
  } else {
    Rng rng(options.seed);
    const auto pick = [&]() -> const Model* {
      const std::string& name =
          names[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(names.size()) - 1))];
      return &models.at(name);
    };
    while (pairs.size() < options.sample) {
      const Model* from = pick();
      const Model* to = pick();
      if (from != to) {
        pairs.emplace_back(from, to);
      }
    }
  }

  std::vector<TransformPlan> swept_plans;
  for (const PlannerKind planner : options.planners) {
    for (const auto& [from, to] : pairs) {
      TransformPlan plan;
      const std::string what = std::string(PlannerKindName(planner)) + " plan '" + from->name() +
                               "' -> '" + to->name() + "'";
      try {
        plan = PlanTransform(*from, *to, costs, planner);
      } catch (const std::exception& e) {
        Report(what, std::string("planning failed: ") + e.what(), &stats);
        continue;
      }
      const PlanVerifyResult result = VerifyPlan(*from, *to, plan, costs);
      ++stats.plans_checked;
      if (!result.ok()) {
        Report(what, result.Summary(), &stats);
      } else if (!options.save_plans.empty() && planner == options.planners.front()) {
        swept_plans.push_back(std::move(plan));
      }
    }
    if (!options.quiet) {
      std::cout << "swept " << pairs.size() << " pairs with the " << PlannerKindName(planner)
                << " planner\n";
    }
  }

  if (!options.save_plans.empty()) {
    WritePlansToFile(options.save_plans, swept_plans);
    if (!options.quiet) {
      std::cout << "saved " << swept_plans.size() << " plans to " << options.save_plans << "\n";
    }
  }

  // Cached plan files: full verification when both endpoint models are in the
  // registry, model-free shape checks otherwise.
  for (const std::string& path : options.plan_files) {
    std::vector<TransformPlan> plans;
    try {
      plans = ReadPlansFromFile(path);
    } catch (const std::exception& e) {
      Report("plan file " + path, e.what(), &stats);
      continue;
    }
    size_t full = 0;
    size_t shape_only = 0;
    for (const TransformPlan& plan : plans) {
      const std::string what =
          "cached plan '" + plan.source_name + "' -> '" + plan.dest_name + "' (" + path + ")";
      auto from = models.find(plan.source_name);
      auto to = models.find(plan.dest_name);
      PlanVerifyResult result;
      if (from != models.end() && to != models.end()) {
        result = VerifyPlan(from->second, to->second, plan, costs);
        ++full;
      } else {
        result = VerifyPlanShape(plan);
        ++shape_only;
      }
      ++stats.plans_checked;
      if (!result.ok()) {
        Report(what, result.Summary(), &stats);
      }
    }
    if (!options.quiet) {
      std::cout << "verified " << plans.size() << " cached plans from " << path << " (" << full
                << " against models, " << shape_only << " shape-only)\n";
    }
  }

  std::cout << "optimus_verify: " << stats.models_checked << " models, " << stats.plans_checked
            << " plans, " << stats.violations << " violations\n";
  return stats.violations == 0 ? 0 : 1;
}
