// Seeded chaos harness for the failure-hardened invoke/transform path
// (DESIGN.md §11).
//
// For each seed, deploys a small zoo onto a fresh platform, arms seeded
// probabilistic faults across the loader / executor / plan-cache / transform
// points, drives a randomized request stream, and asserts the §11 invariants:
//
//   * every request either returns bit-correct output (identical to a clean
//     scratch load of the function) or a typed error from the taxonomy;
//   * no container is ever left half-transformed (CheckContainerIntegrity);
//   * the platform's counters reconcile with the injected-fault log
//     (fault::FireCounts): every executor/donor fire is charged as exactly
//     one transform failure, fallbacks never exceed failures, and the
//     warm/transform/cold counters sum to the successful requests.
//
// A second pass per seed drives the HTTP gateway dispatcher under gateway
// faults (drops, transient load failures) and checks the HTTP status
// taxonomy plus the shed/retry/drop counters.
//
// --storm switches to the node-churn sweep (DESIGN.md §16): a multi-node
// platform absorbs repeated kill/revive cycles (~30% of nodes per cycle,
// mixed zero-grace kills and graceful drains) plus the seeded `node.revoke`
// fault, and the pass asserts that no request is lost or duplicated, that
// the lifecycle counters reconcile exactly with the revokes issued and the
// fault log, and that CheckContainerIntegrity stays clean across every
// cycle. Storm output is counters-only (no wall-clock telemetry), so a
// fixed seed is bit-reproducible: CI runs the sweep twice and diffs stdout.
//
// --warming switches to the forecast-driven warming sweep (DESIGN.md §17):
// manual warming cycles interleave with a skewed request stream while the
// `warming.prefetch` fault aborts a random subset of speculative orders, and
// the pass asserts that the warming bucket reconciles exactly, that
// speculation never perturbs the reactive start counters, and that no
// container is left half-transformed.
//
// Usage: optimus_chaos [--seeds N] [--requests M] [--smoke] [--storm] [--warming]
// Exits non-zero on the first invariant violation.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "src/common/fault.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/core/platform.h"
#include "src/gateway/service.h"
#include "src/zoo/mobilenet.h"
#include "src/zoo/vgg.h"

namespace optimus {
namespace {

int g_violations = 0;

#define CHAOS_CHECK(condition, ...)                         \
  do {                                                      \
    if (!(condition)) {                                     \
      std::fprintf(stderr, "VIOLATION [%s]: ", #condition); \
      std::fprintf(stderr, __VA_ARGS__);                    \
      std::fprintf(stderr, "\n");                           \
      ++g_violations;                                       \
    }                                                       \
  } while (0)

Model ScaledVgg(int depth) {
  VggOptions options;
  options.width_multiplier = 0.25;
  return BuildVgg(depth, options);
}

Model ScaledMobileNet() {
  MobileNetOptions options;
  options.width_multiplier = 0.25;
  return BuildMobileNet(options);
}

struct Zoo {
  std::vector<std::string> names;
  std::vector<Model> models;

  void Add(const std::string& name, Model model) {
    names.push_back(name);
    models.push_back(std::move(model));
  }
};

Zoo MakeZoo() {
  Zoo zoo;
  zoo.Add("vgg11", ScaledVgg(11));
  zoo.Add("vgg16", ScaledVgg(16));
  zoo.Add("mobilenet", ScaledMobileNet());
  return zoo;
}

PlatformOptions ChaosPlatformOptions() {
  PlatformOptions options;
  options.num_nodes = 1;
  options.containers_per_node = 2;  // Fewer slots than functions: transforms happen.
  options.warm_plan_cache = false;  // Plan lazily so cache.plan faults are reachable.
  return options;
}

// Bit-exact reference output per function, from clean scratch loads.
std::map<std::string, std::vector<float>> ReferenceOutputs(const Zoo& zoo,
                                                           const std::vector<float>& input) {
  PlatformOptions options = ChaosPlatformOptions();
  options.containers_per_node = static_cast<int>(zoo.names.size());
  AnalyticCostModel costs;
  OptimusPlatform reference(&costs, options);
  std::map<std::string, std::vector<float>> outputs;
  for (size_t i = 0; i < zoo.names.size(); ++i) {
    reference.Deploy(zoo.names[i], zoo.models[i]);
    outputs[zoo.names[i]] =
        reference.Invoke(zoo.names[i], input, static_cast<double>(i)).output;
  }
  return outputs;
}

// Latency-percentile and cost-drift summary over the registry's histograms —
// the fault-injected passes double as a telemetry soak, so surface what the
// distributions actually recorded.
void PrintTelemetrySummary(const char* pass, uint64_t seed,
                           const telemetry::MetricsRegistry& metrics) {
  metrics.VisitHistograms([pass, seed](const std::string& name, const telemetry::Labels& labels,
                                       const telemetry::HistogramSnapshot& snapshot) {
    if (snapshot.count == 0) {
      return;
    }
    std::string series = name;
    for (const auto& [key, value] : labels) {
      series += " " + key + "=" + value;
    }
    std::printf("seed %llu %s telemetry: %-46s count=%-5llu p50=%.3g p95=%.3g p99=%.3g "
                "max=%.3g\n",
                (unsigned long long)seed, pass, series.c_str(),
                (unsigned long long)snapshot.count, snapshot.Percentile(0.5),
                snapshot.Percentile(0.95), snapshot.Percentile(0.99), snapshot.max_seconds);
  });
}

// After a fault-injected run the span books must balance: RAII spans close on
// exception unwind, so opened == closed even when transforms abort mid-plan.
void CheckSpanAccounting(const char* pass, uint64_t seed, const telemetry::TraceCollector& traces) {
  CHAOS_CHECK(traces.SpansOpened() == traces.SpansClosed(),
              "seed %llu %s: %llu spans opened but %llu closed", (unsigned long long)seed, pass,
              (unsigned long long)traces.SpansOpened(), (unsigned long long)traces.SpansClosed());
  CHAOS_CHECK(traces.TracesCompleted() <= traces.TracesStarted(),
              "seed %llu %s: %llu traces completed > %llu started", (unsigned long long)seed,
              pass, (unsigned long long)traces.TracesCompleted(),
              (unsigned long long)traces.TracesStarted());
}

std::string PlatformFaultSpec(uint64_t seed) {
  // The per-step probability is low because a plan evaluates the executor
  // point dozens of times: ~2% per step still aborts roughly half the
  // transforms while letting the other half complete and serve output.
  return "executor.step=prob:0.02@" + std::to_string(seed) +
         ";transform.donor=prob:0.03@" + std::to_string(seed + 1) +
         ";loader.load=prob:0.04@" + std::to_string(seed + 2) +
         ";cache.plan=prob:0.10@" + std::to_string(seed + 3) +
         ";cache.verify=prob:0.05@" + std::to_string(seed + 4) +
         ";placement.rebalance=prob:0.50@" + std::to_string(seed + 8);
}

// Drives TryInvoke directly and reconciles platform counters against the
// injected-fault log.
void RunPlatformPass(uint64_t seed, int requests, const Zoo& zoo,
                     const std::map<std::string, std::vector<float>>& reference) {
  AnalyticCostModel costs;
  OptimusPlatform platform(&costs, ChaosPlatformOptions());
  for (size_t i = 0; i < zoo.names.size(); ++i) {
    platform.Deploy(zoo.names[i], zoo.models[i]);
  }

  fault::ScopedFaults faults(PlatformFaultSpec(seed));
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 1);
  const std::vector<float> input(8, 0.5f);

  size_t ok = 0;
  size_t not_found = 0;
  size_t unavailable = 0;
  for (int i = 0; i < requests; ++i) {
    // Every 17th request targets an unregistered function (typed NOT_FOUND);
    // the rest pick a zoo function at random. Time advances enough that
    // containers go idle and transformations fire.
    const bool unknown = i % 17 == 16;
    const std::string& function =
        unknown ? static_cast<const std::string&>("no_such_fn")
                : zoo.names[static_cast<size_t>(
                      rng.UniformInt(0, static_cast<int64_t>(zoo.names.size()) - 1))];
    const double now = static_cast<double>(i) * 25.0;
    InvokeResult result;
    // Trace every request: fault-injected invokes are exactly where span
    // accounting (RAII close on unwind) earns its keep.
    auto trace = platform.traces().StartTrace(function);
    const Status status = platform.TryInvoke(function, input, now, &result, trace.get());
    platform.traces().Finish(std::move(trace));
    if (status.ok()) {
      ++ok;
      CHAOS_CHECK(!unknown, "seed %llu request %d: unknown function succeeded",
                  (unsigned long long)seed, i);
      const auto it = reference.find(function);
      CHAOS_CHECK(it != reference.end() && result.output == it->second,
                  "seed %llu request %d (%s): output differs from scratch reference",
                  (unsigned long long)seed, i, function.c_str());
    } else {
      // Every failure must be typed, with a message, and from the codes the
      // invoke path documents.
      CHAOS_CHECK(!status.message().empty(), "seed %llu request %d: untyped empty error",
                  (unsigned long long)seed, i);
      switch (status.code()) {
        case ErrorCode::kNotFound:
          ++not_found;
          CHAOS_CHECK(unknown, "seed %llu request %d (%s): spurious NOT_FOUND",
                      (unsigned long long)seed, i, function.c_str());
          break;
        case ErrorCode::kUnavailable:
          ++unavailable;
          break;
        default:
          CHAOS_CHECK(false, "seed %llu request %d: unexpected code %s",
                      (unsigned long long)seed, i, ErrorCodeName(status.code()));
      }
    }
    if (i % 25 == 24) {
      const std::vector<std::string> violations = platform.CheckContainerIntegrity();
      CHAOS_CHECK(violations.empty(), "seed %llu request %d: %s", (unsigned long long)seed, i,
                  violations.empty() ? "" : violations.front().c_str());
    }
    // Periodic placement recomputes under the placement.rebalance fault: a
    // failed recompute must leave the previous table serving (requests keep
    // succeeding) and be charged to the failure counter reconciled below.
    if (i % 20 == 19) {
      const uint64_t version_before = platform.PlacementVersion();
      if (!platform.RebalanceNow("manual")) {
        CHAOS_CHECK(platform.PlacementVersion() == version_before,
                    "seed %llu request %d: failed rebalance swapped the table",
                    (unsigned long long)seed, i);
      }
    }
  }

  // Final integrity sweep: no container may be left half-transformed.
  for (const std::string& violation : platform.CheckContainerIntegrity()) {
    CHAOS_CHECK(false, "seed %llu: %s", (unsigned long long)seed, violation.c_str());
  }

  // Counter reconciliation against the injected-fault log.
  const PlatformCounters counters = platform.counters();
  const uint64_t step_fires = fault::Fires("executor.step");
  const uint64_t donor_fires = fault::Fires("transform.donor");
  const uint64_t load_fires = fault::Fires("loader.load");
  const uint64_t plan_fires = fault::Fires("cache.plan");
  const uint64_t verify_fires = fault::Fires("cache.verify");

  CHAOS_CHECK(counters.warm_starts + counters.transforms + counters.cold_starts == ok,
              "seed %llu: start counters %zu+%zu+%zu != %zu successes",
              (unsigned long long)seed, counters.warm_starts, counters.transforms,
              counters.cold_starts, ok);
  CHAOS_CHECK(counters.failed_invokes == not_found + unavailable,
              "seed %llu: failed_invokes=%zu but observed %zu errors",
              (unsigned long long)seed, counters.failed_invokes, not_found + unavailable);
  // Every executor/donor fire aborts exactly one transform; the only other
  // causes of a transform failure are load/plan/verify fires inside
  // TransformOrLoad.
  CHAOS_CHECK(counters.transform_failures >= step_fires + donor_fires,
              "seed %llu: %zu transform failures < %llu executor+donor fires",
              (unsigned long long)seed, counters.transform_failures,
              (unsigned long long)(step_fires + donor_fires));
  CHAOS_CHECK(counters.transform_failures <=
                  step_fires + donor_fires + load_fires + plan_fires + verify_fires,
              "seed %llu: %zu transform failures exceed %llu injected faults",
              (unsigned long long)seed, counters.transform_failures,
              (unsigned long long)(step_fires + donor_fires + load_fires + plan_fires +
                                   verify_fires));
  CHAOS_CHECK(counters.transform_fallbacks <= counters.transform_failures,
              "seed %llu: more fallbacks (%zu) than failures (%zu)",
              (unsigned long long)seed, counters.transform_fallbacks,
              counters.transform_failures);
  CHAOS_CHECK(platform.plan_cache().ExecutionFailures() <= counters.transform_failures,
              "seed %llu: quarantine charged %zu > %zu transform failures",
              (unsigned long long)seed, platform.plan_cache().ExecutionFailures(),
              counters.transform_failures);
  CHAOS_CHECK(unavailable <= load_fires,
              "seed %llu: %zu UNAVAILABLE errors but only %llu loader fires",
              (unsigned long long)seed, unavailable, (unsigned long long)load_fires);
  // Every placement.rebalance fire is exactly one failed recompute, and every
  // failed recompute traces back to a fire.
  CHAOS_CHECK(platform.placement().RebalanceFailures() == fault::Fires("placement.rebalance"),
              "seed %llu: %zu rebalance failures but %llu placement.rebalance fires",
              (unsigned long long)seed, platform.placement().RebalanceFailures(),
              (unsigned long long)fault::Fires("placement.rebalance"));

  CheckSpanAccounting("platform", seed, platform.traces());

  std::printf(
      "seed %llu platform: ok=%zu notfound=%zu unavailable=%zu warm=%zu transform=%zu "
      "cold=%zu tfail=%zu tfallback=%zu quarantined=%zu fires[step=%llu donor=%llu "
      "load=%llu plan=%llu verify=%llu] spans=%llu\n",
      (unsigned long long)seed, ok, not_found, unavailable, counters.warm_starts,
      counters.transforms, counters.cold_starts, counters.transform_failures,
      counters.transform_fallbacks, platform.plan_cache().QuarantinedPairs(),
      (unsigned long long)step_fires, (unsigned long long)donor_fires,
      (unsigned long long)load_fires, (unsigned long long)plan_fires,
      (unsigned long long)verify_fires, (unsigned long long)platform.traces().SpansOpened());
  PrintTelemetrySummary("platform", seed, platform.metrics());
}

// Drives the gateway dispatcher (no sockets) and checks the HTTP taxonomy.
void RunGatewayPass(uint64_t seed, int requests, const Zoo& zoo) {
  AnalyticCostModel costs;
  GatewayOptions gateway;
  gateway.max_retries = 2;
  gateway.retry_backoff = 0.0005;
  gateway.jitter_seed = seed;
  OptimusHttpService service(&costs, ChaosPlatformOptions(), gateway);
  // Trace every request through the gateway's own sampling path.
  service.platform().traces().set_sample_period(1);
  for (size_t i = 0; i < zoo.names.size(); ++i) {
    service.platform().Deploy(zoo.names[i], zoo.models[i]);
  }

  fault::ScopedFaults faults("gateway.drop=prob:0.05@" + std::to_string(seed + 5) +
                             ";loader.load=prob:0.05@" + std::to_string(seed + 6) +
                             ";executor.step=prob:0.05@" + std::to_string(seed + 7));
  Rng rng(seed * 0x2545f4914f6cdd1dULL + 7);
  std::map<int, size_t> statuses;
  for (int i = 0; i < requests; ++i) {
    HttpRequest request;
    request.method = "POST";
    request.path = "/invoke";
    const bool unknown = i % 11 == 10;
    request.query["name"] =
        unknown ? "no_such_fn"
                : zoo.names[static_cast<size_t>(
                      rng.UniformInt(0, static_cast<int64_t>(zoo.names.size()) - 1))];
    request.body = "0.5,0.5,0.5,0.5";
    const HttpResponse response = service.Handle(request);
    ++statuses[response.status];
    const bool allowed = response.status == 200 || response.status == 404 ||
                         response.status == 429 || response.status == 503 ||
                         response.status == 504;
    CHAOS_CHECK(allowed, "seed %llu gateway request %d: unexpected status %d",
                (unsigned long long)seed, i, response.status);
    if (response.status == 200) {
      CHAOS_CHECK(response.body.find("output=") != std::string::npos,
                  "seed %llu gateway request %d: 200 without output", (unsigned long long)seed,
                  i);
      CHAOS_CHECK(!unknown, "seed %llu gateway request %d: unknown function got 200",
                  (unsigned long long)seed, i);
    } else {
      CHAOS_CHECK(response.body.find("\"error\"") != std::string::npos,
                  "seed %llu gateway request %d: non-JSON error body", (unsigned long long)seed,
                  i);
    }
  }

  // Reconcile the gateway counters: every injected drop is a 503; the
  // sequential driver can never saturate the gateway.
  CHAOS_CHECK(service.Drops() == fault::Fires("gateway.drop"),
              "seed %llu: drops=%zu but %llu drop fires", (unsigned long long)seed,
              service.Drops(), (unsigned long long)fault::Fires("gateway.drop"));
  CHAOS_CHECK(service.Drops() <= statuses[503],
              "seed %llu: %zu drops but only %zu 503s", (unsigned long long)seed,
              service.Drops(), statuses[503]);
  CHAOS_CHECK(service.Sheds() == 0, "seed %llu: sequential driver was shed %zu times",
              (unsigned long long)seed, service.Sheds());
  for (const std::string& violation : service.platform().CheckContainerIntegrity()) {
    CHAOS_CHECK(false, "seed %llu gateway: %s", (unsigned long long)seed, violation.c_str());
  }

  CheckSpanAccounting("gateway", seed, service.platform().traces());

  std::printf("seed %llu gateway: 200=%zu 404=%zu 503=%zu 504=%zu retries=%zu drops=%zu "
              "spans=%llu\n",
              (unsigned long long)seed, statuses[200], statuses[404], statuses[503],
              statuses[504], service.Retries(), service.Drops(),
              (unsigned long long)service.platform().traces().SpansOpened());
  PrintTelemetrySummary("gateway", seed, service.platform().metrics());
}

// Node-churn storm (DESIGN.md §16): kill ~30% of a multi-node pool per
// cycle (alternating zero-grace kills with graceful drains), keep serving
// through the outage, revive everything, and reconcile the lifecycle
// counters against the exact revokes/revives issued plus the seeded
// `node.revoke` fault log. Output is counters-only so a fixed seed is
// bit-identical run to run.
void RunStormPass(uint64_t seed, int requests, const Zoo& zoo,
                  const std::map<std::string, std::vector<float>>& reference) {
  PlatformOptions options;
  options.num_nodes = 5;
  options.containers_per_node = 2;
  options.route_fallback_breadth = 2;
  options.warm_plan_cache = false;
  AnalyticCostModel costs;
  OptimusPlatform platform(&costs, options);
  for (size_t i = 0; i < zoo.names.size(); ++i) {
    platform.Deploy(zoo.names[i], zoo.models[i]);
  }

  // Low probability: the scheduled cycles below are the main churn driver;
  // the fault point adds surprise zero-grace revocations of the routed node
  // mid-invoke (the request fails retryable UNAVAILABLE).
  fault::ScopedFaults faults("node.revoke=prob:0.01@" + std::to_string(seed + 9));
  Rng rng(seed * 0x6c62272e07bb0143ULL + 13);
  const std::vector<float> input(8, 0.5f);

  // ceil(0.3 * num_nodes) nodes revoked per cycle — the 30%-kill storm.
  const int kills_per_cycle = (options.num_nodes * 3 + 9) / 10;
  const int cycles = 3;
  const int phase = std::max(1, requests / (cycles * 3));
  const double kGrace = 50.0;  // Two request-steps of virtual time.

  size_t ok = 0;
  size_t unavailable = 0;
  size_t storm_revokes = 0;  // Accepted scheduled RevokeNode calls.
  size_t storm_revives = 0;  // Accepted ReviveNode calls.
  double now = 0.0;
  int request_index = 0;

  auto serve = [&](int count) {
    for (int i = 0; i < count && request_index < requests; ++i, ++request_index) {
      const std::string& function = zoo.names[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(zoo.names.size()) - 1))];
      now = static_cast<double>(request_index) * 25.0;
      InvokeResult result;
      const Status status = platform.TryInvoke(function, input, now, &result);
      if (status.ok()) {
        ++ok;
        const auto it = reference.find(function);
        CHAOS_CHECK(it != reference.end() && result.output == it->second,
                    "seed %llu storm request %d (%s): output differs from scratch reference",
                    (unsigned long long)seed, request_index, function.c_str());
      } else {
        // The only legal failure under pure churn is the retryable
        // UNAVAILABLE a mid-invoke revocation raises.
        CHAOS_CHECK(status.code() == ErrorCode::kUnavailable,
                    "seed %llu storm request %d: unexpected code %s", (unsigned long long)seed,
                    request_index, ErrorCodeName(status.code()));
        ++unavailable;
      }
    }
  };

  for (int cycle = 0; cycle < cycles; ++cycle) {
    serve(phase);

    // Kill kills_per_cycle distinct accepting nodes: even picks die on the
    // spot (zero grace — containers reclaimed immediately), odd picks drain.
    int killed = 0;
    for (int attempt = 0; attempt < options.num_nodes * 4 && killed < kills_per_cycle;
         ++attempt) {
      const int node =
          static_cast<int>(rng.UniformInt(0, static_cast<int64_t>(options.num_nodes) - 1));
      if (platform.NodeState(node) != NodeLifecycle::kUp &&
          platform.NodeState(node) != NodeLifecycle::kReviving) {
        continue;
      }
      const bool hard_kill = killed % 2 == 0;
      const size_t live_before = platform.NumLiveContainers();
      const size_t reclaimed_before = platform.counters().reclaimed_containers;
      if (platform.RevokeNode(node, hard_kill ? 0.0 : kGrace, now)) {
        ++storm_revokes;
        ++killed;
        if (hard_kill) {
          // A zero-grace kill reclaims exactly the node's containers —
          // nothing else changed between the two snapshots.
          const size_t reclaimed = platform.counters().reclaimed_containers - reclaimed_before;
          CHAOS_CHECK(live_before - platform.NumLiveContainers() == reclaimed,
                      "seed %llu cycle %d: kill of node %d reclaimed %zu containers but "
                      "%zu disappeared",
                      (unsigned long long)seed, cycle, node, reclaimed,
                      live_before - platform.NumLiveContainers());
        }
      }
    }
    CHAOS_CHECK(killed == kills_per_cycle, "seed %llu cycle %d: only revoked %d of %d nodes",
                (unsigned long long)seed, cycle, killed, kills_per_cycle);

    // Serve through the outage (graceful drains finalize as the clock passes
    // their deadline), then bring every Down node back.
    serve(phase);
    for (int node = 0; node < options.num_nodes; ++node) {
      if (platform.NodeState(node) == NodeLifecycle::kDown && platform.ReviveNode(node)) {
        ++storm_revives;
      }
    }
    serve(phase);

    const std::vector<std::string> violations = platform.CheckContainerIntegrity();
    CHAOS_CHECK(violations.empty(), "seed %llu cycle %d: %s", (unsigned long long)seed, cycle,
                violations.empty() ? "" : violations.front().c_str());
  }
  serve(requests - request_index);

  // Settle: revive any node the fault point killed after the last cycle's
  // sweep, then one far-future invoke finalizes every outstanding drain.
  for (int node = 0; node < options.num_nodes; ++node) {
    if (platform.NodeState(node) == NodeLifecycle::kDown && platform.ReviveNode(node)) {
      ++storm_revives;
    }
  }
  {
    InvokeResult result;
    now += kGrace * 2;
    const Status status = platform.TryInvoke(zoo.names[0], input, now, &result);
    if (status.ok()) {
      ++ok;
    } else {
      ++unavailable;
    }
  }

  const PlatformCounters counters = platform.counters();
  const uint64_t revoke_fires = fault::Fires("node.revoke");

  // Zero lost or duplicated invokes: every request is exactly one success or
  // one typed failure, and the start counters sum to the successes.
  CHAOS_CHECK(ok + unavailable == static_cast<size_t>(requests) + 1,
              "seed %llu storm: %zu ok + %zu unavailable != %d requests",
              (unsigned long long)seed, ok, unavailable, requests + 1);
  CHAOS_CHECK(counters.warm_starts + counters.transforms + counters.cold_starts == ok,
              "seed %llu storm: start counters %zu+%zu+%zu != %zu successes",
              (unsigned long long)seed, counters.warm_starts, counters.transforms,
              counters.cold_starts, ok);
  CHAOS_CHECK(counters.failed_invokes == unavailable,
              "seed %llu storm: failed_invokes=%zu but observed %zu errors",
              (unsigned long long)seed, counters.failed_invokes, unavailable);
  // With no loader/executor faults armed, the only source of UNAVAILABLE is
  // the node.revoke fault — exactly one error per fire.
  CHAOS_CHECK(unavailable == revoke_fires,
              "seed %llu storm: %zu UNAVAILABLE errors but %llu node.revoke fires",
              (unsigned long long)seed, unavailable, (unsigned long long)revoke_fires);
  // Every revocation is either a scheduled storm kill or a fault fire (the
  // fault revokes the freshly-routed — hence accepting — node, so its
  // RevokeNode always lands).
  CHAOS_CHECK(counters.node_revocations == storm_revokes + revoke_fires,
              "seed %llu storm: node_revocations=%zu != %zu scheduled + %llu fault fires",
              (unsigned long long)seed, counters.node_revocations, storm_revokes,
              (unsigned long long)revoke_fires);
  CHAOS_CHECK(counters.node_revives == storm_revives,
              "seed %llu storm: node_revives=%zu != %zu issued", (unsigned long long)seed,
              counters.node_revives, storm_revives);
  // Everything revived and every drain finalized: the pool is whole again.
  CHAOS_CHECK(platform.DrainingNodes() == 0, "seed %llu storm: %d nodes still draining",
              (unsigned long long)seed, platform.DrainingNodes());
  CHAOS_CHECK(platform.AcceptingNodes() == options.num_nodes,
              "seed %llu storm: only %d of %d nodes accepting after revival",
              (unsigned long long)seed, platform.AcceptingNodes(), options.num_nodes);
  for (const std::string& violation : platform.CheckContainerIntegrity()) {
    CHAOS_CHECK(false, "seed %llu storm: %s", (unsigned long long)seed, violation.c_str());
  }

  // Counters-only line: virtual-time determinism makes this bit-identical
  // for a fixed seed (CI diffs two runs).
  std::printf(
      "seed %llu storm: ok=%zu unavailable=%zu warm=%zu transform=%zu cold=%zu "
      "revocations=%zu revives=%zu reclaimed=%zu rerouted=%zu fires[revoke=%llu] "
      "accepting=%d draining=%d version=%llu\n",
      (unsigned long long)seed, ok, unavailable, counters.warm_starts, counters.transforms,
      counters.cold_starts, counters.node_revocations, counters.node_revives,
      counters.reclaimed_containers, counters.rerouted_invokes,
      (unsigned long long)revoke_fires, platform.AcceptingNodes(), platform.DrainingNodes(),
      (unsigned long long)platform.PlacementVersion());
}

// --warming: the forecast-driven warming sweep (DESIGN.md §17). Manual
// WarmNow cadence (interval 0 — no background thread) keeps the pass
// deterministic in virtual time; the armed `warming.prefetch` fault aborts a
// random subset of speculative orders. Asserts the warming bucket reconciles
// exactly (every order lands in prewarms/skipped/failures, every pre-warm
// ends as a hit, waste, or a still-live container), that speculation never
// perturbs the reactive start counters, and that no container is left
// half-transformed. Counters-only output, bit-reproducible per seed.
void RunWarmingPass(uint64_t seed, int requests, const Zoo& zoo,
                    const std::map<std::string, std::vector<float>>& reference) {
  PlatformOptions options;
  options.num_nodes = 2;
  options.containers_per_node = 2;
  options.warm_plan_cache = false;
  options.warming.enabled = true;
  options.warming.interval = 0.0;  // Cycles only via the manual WarmNow below.
  AnalyticCostModel costs;
  OptimusPlatform platform(&costs, options);
  for (size_t i = 0; i < zoo.names.size(); ++i) {
    platform.Deploy(zoo.names[i], zoo.models[i]);
  }

  fault::ScopedFaults faults("warming.prefetch=prob:0.2@" + std::to_string(seed + 17));
  Rng rng(seed * 0x9e3779b97f4a7c15ULL + 29);
  const std::vector<float> input(8, 0.5f);

  size_t ok = 0;
  size_t cycles_run = 0;
  double now = 0.0;
  for (int i = 0; i < requests; ++i) {
    // Skewed mix: one function takes ~2/3 of traffic so the forecaster has a
    // clear winner to pre-warm; the tail keeps transforms flowing.
    const size_t pick =
        rng.UniformInt(0, 5) < 4
            ? 0
            : static_cast<size_t>(
                  rng.UniformInt(1, static_cast<int64_t>(zoo.names.size()) - 1));
    const std::string& function = zoo.names[pick];
    // Steps wider than a third of the keep-alive window: tail functions
    // expire between arrivals, so the forecaster has real cold starts to
    // prevent and the sweep exercises every pre-warm path, not just skips.
    now = static_cast<double>(i) * 250.0;
    InvokeResult result;
    const Status status = platform.TryInvoke(function, input, now, &result);
    // The prefetch fault only aborts speculative orders — foreground invokes
    // must be untouched.
    CHAOS_CHECK(status.ok(), "seed %llu warming request %d (%s): unexpected %s",
                (unsigned long long)seed, i, function.c_str(), ErrorCodeName(status.code()));
    if (status.ok()) {
      ++ok;
      const auto it = reference.find(function);
      CHAOS_CHECK(it != reference.end() && result.output == it->second,
                  "seed %llu warming request %d (%s): output differs from scratch reference",
                  (unsigned long long)seed, i, function.c_str());
    }
    if (i % 10 == 9) {
      platform.WarmNow(now + 1.0);
      ++cycles_run;
      const std::vector<std::string> violations = platform.CheckContainerIntegrity();
      CHAOS_CHECK(violations.empty(), "seed %llu warming cycle %zu: %s",
                  (unsigned long long)seed, cycles_run,
                  violations.empty() ? "" : violations.front().c_str());
    }
  }

  const PlatformCounters counters = platform.counters();
  const uint64_t prefetch_fires = fault::Fires("warming.prefetch");
  const size_t prewarms =
      counters.warming_prewarms_cold + counters.warming_prewarms_transform;

  CHAOS_CHECK(counters.warming_cycles == cycles_run,
              "seed %llu warming: %zu cycles counted, %zu WarmNow calls",
              (unsigned long long)seed, counters.warming_cycles, cycles_run);
  // Every planned order lands in exactly one bucket.
  CHAOS_CHECK(prewarms + counters.warming_skipped + counters.warming_failures ==
                  counters.warming_orders,
              "seed %llu warming: %zu prewarms + %zu skipped + %zu failures != %zu orders",
              (unsigned long long)seed, prewarms, counters.warming_skipped,
              counters.warming_failures, counters.warming_orders);
  CHAOS_CHECK(counters.warming_orders <=
                  counters.warming_cycles *
                      static_cast<size_t>(options.warming.budget.max_orders_per_cycle),
              "seed %llu warming: %zu orders exceed %zu cycles x %d budget",
              (unsigned long long)seed, counters.warming_orders, counters.warming_cycles,
              options.warming.budget.max_orders_per_cycle);
  // Each prefetch fire is charged as a warming failure (other failure paths
  // need un-armed transform faults, so fires bound the count from below).
  CHAOS_CHECK(counters.warming_failures >= prefetch_fires,
              "seed %llu warming: failures=%zu < %llu warming.prefetch fires",
              (unsigned long long)seed, counters.warming_failures,
              (unsigned long long)prefetch_fires);
  CHAOS_CHECK(counters.transform_failures == 0,
              "seed %llu warming: prefetch faults leaked into transform_failures=%zu",
              (unsigned long long)seed, counters.transform_failures);
  // Speculation has its own bucket: the reactive start counters still sum to
  // the successful invokes.
  CHAOS_CHECK(counters.warm_starts + counters.transforms + counters.cold_starts == ok,
              "seed %llu warming: start counters %zu+%zu+%zu != %zu successes",
              (unsigned long long)seed, counters.warm_starts, counters.transforms,
              counters.cold_starts, ok);
  // Pre-warm conservation: issued == consumed + expired + still-live.
  CHAOS_CHECK(prewarms == counters.warming_hits + counters.warming_waste +
                              platform.PrewarmedContainers(),
              "seed %llu warming: %zu prewarms != %zu hits + %zu waste + %zu live",
              (unsigned long long)seed, prewarms, counters.warming_hits,
              counters.warming_waste, platform.PrewarmedContainers());
  for (const std::string& violation : platform.CheckContainerIntegrity()) {
    CHAOS_CHECK(false, "seed %llu warming: %s", (unsigned long long)seed, violation.c_str());
  }

  std::printf(
      "seed %llu warming: ok=%zu warm=%zu transform=%zu cold=%zu cycles=%zu orders=%zu "
      "prewarms[cold=%zu transform=%zu] hits=%zu waste=%zu skipped=%zu failures=%zu "
      "fires[prefetch=%llu] live_prewarmed=%zu\n",
      (unsigned long long)seed, ok, counters.warm_starts, counters.transforms,
      counters.cold_starts, counters.warming_cycles, counters.warming_orders,
      counters.warming_prewarms_cold, counters.warming_prewarms_transform,
      counters.warming_hits, counters.warming_waste, counters.warming_skipped,
      counters.warming_failures, (unsigned long long)prefetch_fires,
      platform.PrewarmedContainers());
}

}  // namespace
}  // namespace optimus

int main(int argc, char** argv) {
  int seeds = 10;
  int requests = 120;
  bool storm = false;
  bool warming = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seeds") == 0 && i + 1 < argc) {
      seeds = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--requests") == 0 && i + 1 < argc) {
      requests = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      seeds = 3;
      requests = 40;
    } else if (std::strcmp(argv[i], "--storm") == 0) {
      storm = true;
    } else if (std::strcmp(argv[i], "--warming") == 0) {
      warming = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seeds N] [--requests M] [--smoke] [--storm] [--warming]\n",
                   argv[0]);
      return 2;
    }
  }
  if (seeds < 1 || requests < 1) {
    std::fprintf(stderr, "optimus_chaos: --seeds and --requests must be >= 1\n");
    return 2;
  }

  const optimus::Zoo zoo = optimus::MakeZoo();
  const std::vector<float> input(8, 0.5f);
  const auto reference = optimus::ReferenceOutputs(zoo, input);

  for (int s = 0; s < seeds; ++s) {
    const uint64_t seed = 1000u + static_cast<uint64_t>(s) * 31u;
    if (storm) {
      // Storm mode is its own sweep: counters-only output, bit-reproducible
      // for a fixed seed (the regular passes print wall-clock telemetry).
      optimus::RunStormPass(seed, requests, zoo, reference);
      continue;
    }
    if (warming) {
      optimus::RunWarmingPass(seed, requests, zoo, reference);
      continue;
    }
    optimus::RunPlatformPass(seed, requests, zoo, reference);
    optimus::RunGatewayPass(seed, requests / 2, zoo);
  }

  if (optimus::g_violations > 0) {
    std::fprintf(stderr, "optimus_chaos: %d invariant violation(s)\n", optimus::g_violations);
    return 1;
  }
  std::printf("optimus_chaos: %d seeds x %d requests, all invariants held\n", seeds, requests);
  return 0;
}
