#include "src/baselines/systems.h"

#include <limits>

namespace optimus {

const char* SystemTypeName(SystemType type) {
  switch (type) {
    case SystemType::kOpenWhisk:
      return "OpenWhisk";
    case SystemType::kPagurus:
      return "Pagurus";
    case SystemType::kTetris:
      return "Tetris";
    case SystemType::kOptimus:
      return "Optimus";
  }
  return "Unknown";
}

namespace {

// Small fixed cost Pagurus pays to swap the container's package set.
constexpr double kPagurusRepackage = 0.05;
// Per-shared-operation cost of Tetris' address mapping.
constexpr double kTetrisMapPerOp = 0.0001;

double FullLoadCost(const Model& model, const PolicyContext& context) {
  return context.costs->ScratchLoadCost(model) + context.profile.DeviceTransferCost(model);
}

class OpenWhiskPolicy final : public StartupPolicy {
 public:
  explicit OpenWhiskPolicy(const PolicyContext& context) : context_(context) {}

  StartupResult Acquire(const StartupRequest& request) override {
    StartupResult result;
    result.type = StartType::kCold;
    result.init_seconds = context_.profile.InitCost();
    result.load_seconds = FullLoadCost(*request.dest, context_);
    return result;
  }

  SystemType Type() const override { return SystemType::kOpenWhisk; }

 private:
  PolicyContext context_;
};

class PagurusPolicy final : public StartupPolicy {
 public:
  explicit PagurusPolicy(const PolicyContext& context) : context_(context) {}

  StartupResult Acquire(const StartupRequest& request) override {
    StartupResult result;
    result.load_seconds = FullLoadCost(*request.dest, context_);
    if (!request.donors.empty() && !request.has_free_slot) {
      // Repurpose an idle container: the sandbox and ML runtime are alive, so
      // only the package delta and the model load remain.
      result.type = StartType::kTransform;
      result.init_seconds = kPagurusRepackage;
      result.donor = request.donors.front();
    } else {
      result.type = StartType::kCold;
      result.init_seconds = context_.profile.InitCost();
    }
    return result;
  }

  SystemType Type() const override { return SystemType::kPagurus; }

 private:
  PolicyContext context_;
};

class TetrisPolicy final : public StartupPolicy {
 public:
  explicit TetrisPolicy(const PolicyContext& context) : context_(context) {}

  StartupResult Acquire(const StartupRequest& request) override {
    StartupResult result;
    // Tensor sharing requires identical type, shape, AND weights. Weights are
    // per-function, so only a resident container of the same function lets
    // the new container map every tensor; otherwise nothing can be shared and
    // the load runs in full.
    bool same_function_resident = false;
    for (const std::string& resident : request.resident_functions) {
      if (resident == request.dest->name()) {
        same_function_resident = true;
        break;
      }
    }
    const bool runtime_resident = !request.resident_functions.empty();
    result.init_seconds = context_.profile.sandbox_init + context_.profile.gpu_runtime_init +
                          (runtime_resident ? 0.0 : context_.profile.runtime_init);
    if (same_function_resident) {
      result.type = StartType::kTransform;
      result.load_seconds =
          context_.costs->DeserializeCost(request.dest->WeightBytes()) +
          kTetrisMapPerOp * static_cast<double>(request.dest->NumOps());
    } else {
      result.type = StartType::kCold;
      result.load_seconds = FullLoadCost(*request.dest, context_);
    }
    return result;
  }

  SystemType Type() const override { return SystemType::kTetris; }

 private:
  PolicyContext context_;
};

class OptimusPolicy final : public StartupPolicy {
 public:
  explicit OptimusPolicy(const PolicyContext& context)
      : context_(context), cache_(context.costs, context.planner) {}

  StartupResult Acquire(const StartupRequest& request) override {
    StartupResult result;
    const double scratch = FullLoadCost(*request.dest, context_);

    // Pick the donor whose cached transformation plan is cheapest. Donors are
    // only consumed when the node is full; with a free slot a fresh container
    // preserves the donors' warm state for their own functions.
    Container* best_donor = nullptr;
    double best_cost = std::numeric_limits<double>::infinity();
    const std::vector<Container*> no_donors;
    for (Container* donor : request.has_free_slot ? no_donors : request.donors) {
      auto it = context_.repository->find(donor->function);
      if (it == context_.repository->end()) {
        continue;
      }
      const TransformPlan& plan = cache_.GetOrPlan(*it->second, *request.dest);
      if (plan.total_cost < best_cost) {
        best_cost = plan.total_cost;
        best_donor = donor;
      }
    }

    if (best_donor != nullptr) {
      result.donor = best_donor;
      // Safeguard (§4.4 Module 3): if the plan is slower than loading the
      // model from scratch inside the donor container, load from scratch.
      if (best_cost < scratch) {
        result.type = StartType::kTransform;
        result.load_seconds = best_cost + context_.profile.DeviceTransferCost(*request.dest);
      } else {
        result.type = StartType::kCold;
        result.load_seconds = scratch;
      }
      result.init_seconds = 0.0;  // The donor's sandbox and runtime are warm.
      return result;
    }

    result.type = StartType::kCold;
    result.init_seconds = context_.profile.InitCost();
    result.load_seconds = scratch;
    return result;
  }

  SystemType Type() const override { return SystemType::kOptimus; }

  PlanCache& cache() { return cache_; }

 private:
  PolicyContext context_;
  PlanCache cache_;
};

}  // namespace

std::unique_ptr<StartupPolicy> MakeStartupPolicy(SystemType type, const PolicyContext& context) {
  switch (type) {
    case SystemType::kOpenWhisk:
      return std::make_unique<OpenWhiskPolicy>(context);
    case SystemType::kPagurus:
      return std::make_unique<PagurusPolicy>(context);
    case SystemType::kTetris:
      return std::make_unique<TetrisPolicy>(context);
    case SystemType::kOptimus:
      return std::make_unique<OptimusPolicy>(context);
  }
  return nullptr;
}

}  // namespace optimus
