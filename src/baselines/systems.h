// Container-startup policies for the four compared systems (paper §8.1):
//
//  * OpenWhisk — every miss starts a new container from scratch: sandbox +
//    runtime init, then a full model load.
//  * Pagurus — inter-function container sharing at the *package* level: a
//    sufficiently idle container of another function is repurposed, saving
//    sandbox + runtime init, but the new model still loads from scratch.
//  * Tetris — tensor sharing: a new container maps the runtime and any
//    operations identical (type, shape, and weights) to ones already resident
//    on the node, paying load cost only for the rest. Sharing requires exact
//    weight identity, which across different functions rarely holds — the
//    limitation §2.1 calls out.
//  * Optimus — inter-function *model transformation*: a donor container's
//    model is transformed via the cached meta-operator plan, with the
//    safeguard falling back to a scratch load when transformation is slower.

#ifndef OPTIMUS_SRC_BASELINES_SYSTEMS_H_
#define OPTIMUS_SRC_BASELINES_SYSTEMS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/container/container.h"
#include "src/core/plan_cache.h"
#include "src/runtime/cost_model.h"

namespace optimus {

enum class SystemType : uint8_t {
  kOpenWhisk = 0,
  kPagurus,
  kTetris,
  kOptimus,
};

const char* SystemTypeName(SystemType type);

// What the policy sees when a warm start is unavailable.
struct StartupRequest {
  // The destination function's model (structure-only).
  const Model* dest = nullptr;
  // §4.2 transformation donors: idle-threshold-exceeded containers of other
  // functions on the node.
  std::vector<Container*> donors;
  // Functions of every container currently on the node (for Tetris sharing).
  std::vector<std::string> resident_functions;
  // Whether the node can launch a new container without evicting. Donor
  // repurposing is reserved for full nodes: consuming an idle container while
  // capacity is free would destroy warm state its owner may still use.
  bool has_free_slot = false;
};

struct StartupResult {
  StartType type = StartType::kCold;
  double init_seconds = 0.0;  // Sandbox/runtime (and GPU) initialization.
  double load_seconds = 0.0;  // Model load / transformation latency.
  // Donor container to repurpose, or nullptr to start a new container.
  Container* donor = nullptr;
};

// A system's container-acquisition policy, consulted after a warm-start miss.
class StartupPolicy {
 public:
  virtual ~StartupPolicy() = default;

  virtual StartupResult Acquire(const StartupRequest& request) = 0;
  virtual SystemType Type() const = 0;
};

// Shared context the policies draw on. `repository` maps function name to its
// (structure-only) model; the map and the pointed-to models must outlive the
// policy. Pointer values let many functions alias one model structure (the
// million-function simulation regime) without duplicating Model storage.
struct PolicyContext {
  const std::map<std::string, const Model*>* repository = nullptr;
  const CostModel* costs = nullptr;
  SystemProfile profile;
  PlannerKind planner = PlannerKind::kGroup;
};

std::unique_ptr<StartupPolicy> MakeStartupPolicy(SystemType type, const PolicyContext& context);

}  // namespace optimus

#endif  // OPTIMUS_SRC_BASELINES_SYSTEMS_H_
