// Transformation planning (paper §4.4, Modules 2 and 2+).
//
// Three planners share a common mapping-to-plan lowering:
//  * kBruteForce — factorial enumeration; exact; only for tiny models (tests).
//  * kBasic      — Munkres over the Riesen-Bunke cost matrix; optimal
//                  assignment in O((n+m)^3) (Module 2).
//  * kGroup      — the paper's linear-complexity group-based heuristic:
//                  group ops by type, match sequentially within groups in
//                  model depth order (Module 2+). O(n+m).

#ifndef OPTIMUS_SRC_CORE_PLANNER_H_
#define OPTIMUS_SRC_CORE_PLANNER_H_

#include "src/core/meta_op.h"
#include "src/runtime/cost_model.h"

namespace optimus {

enum class PlannerKind : uint8_t {
  kBruteForce = 0,
  kBasic,
  kGroup,
};

const char* PlannerKindName(PlannerKind kind);

// Lowers a mapping to a full plan: Reshape/Replace for matched pairs, Reduce
// and Add for the rest, and the Edge operations reconciling the data flows.
TransformPlan PlanFromMapping(const Model& source, const Model& dest, const CostModel& costs,
                              const OpMapping& mapping);

// Plans a transformation from `source` to `dest` with the chosen planner.
// The returned plan records its own planning wall time.
TransformPlan PlanTransform(const Model& source, const Model& dest, const CostModel& costs,
                            PlannerKind kind = PlannerKind::kGroup);

// Model editing distance D(A, B) used by the load balancer (§5.1): the total
// estimated cost of the (group-planned) transformation.
double ModelEditDistance(const Model& a, const Model& b, const CostModel& costs);

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_PLANNER_H_
