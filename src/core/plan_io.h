// Transformation-plan serialization.
//
// The paper's prototype stores model-to-model transformation plans next to
// the models in the repository (§7, "model-to-model transformation planning
// [is] stored with the models in JSON format"). This module provides a
// stable textual encoding for TransformPlan plus save/load of a whole
// PlanCache, so planning done at registration survives process restarts.

#ifndef OPTIMUS_SRC_CORE_PLAN_IO_H_
#define OPTIMUS_SRC_CORE_PLAN_IO_H_

#include <iosfwd>
#include <string>

#include "src/core/meta_op.h"

namespace optimus {

// Serializes a plan to a line-oriented textual form.
std::string SerializePlan(const TransformPlan& plan);

// Parses SerializePlan output. Throws std::runtime_error on malformed input.
TransformPlan DeserializePlan(const std::string& text);

// Writes/reads one plan per record to/from a stream ("---" separated).
void WritePlans(std::ostream& out, const std::vector<TransformPlan>& plans);
std::vector<TransformPlan> ReadPlans(std::istream& in);

// Convenience file wrappers.
void WritePlansToFile(const std::string& path, const std::vector<TransformPlan>& plans);
std::vector<TransformPlan> ReadPlansFromFile(const std::string& path);

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_PLAN_IO_H_
