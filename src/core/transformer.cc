#include "src/core/transformer.h"

#include <string>

#include "src/common/fault.h"

namespace optimus {

Transformer::Transformer(const CostModel* costs, PlannerKind planner,
                         telemetry::MetricsRegistry* metrics)
    : costs_(costs), loader_(costs), cache_(costs, planner, metrics) {
  if (metrics == nullptr) {
    return;
  }
  loader_.set_metrics(metrics);
  for (int k = 0; k < kNumMetaOpKinds; ++k) {
    const std::string kind = MetaOpKindName(static_cast<MetaOpKind>(k));
    meta_op_seconds_[static_cast<size_t>(k)] =
        &metrics->GetHistogram("optimus_meta_op_seconds", {{"kind", kind}},
                               "Wall seconds spent per meta-operator kind per transform");
    meta_op_drift_[static_cast<size_t>(k)] =
        &metrics->GetHistogram("optimus_cost_drift_ratio", {{"phase", "meta_op_" + kind}},
                               "Actual wall seconds / cost-model prediction");
  }
  transform_drift_ = &metrics->GetHistogram("optimus_cost_drift_ratio", {{"phase", "transform"}},
                                            "Actual wall seconds / cost-model prediction");
  arena_repacks_ = &metrics->GetCounter("optimus_arena_repacks_total", {},
                                        "Post-transform arena compactions");
  predicted_seconds_ = &metrics->GetGauge("optimus_cost_predicted_seconds",
                                          {{"phase", "transform"}},
                                          "Accumulated cost-model predictions");
  actual_seconds_ = &metrics->GetGauge("optimus_cost_actual_seconds", {{"phase", "transform"}},
                                       "Accumulated measured wall seconds");
}

void Transformer::RecordExecution(const TransformPlan& plan,
                                  const TransformExecutionStats& stats) {
  if (transform_drift_ == nullptr) {
    return;
  }
  for (size_t k = 0; k < static_cast<size_t>(kNumMetaOpKinds); ++k) {
    if (stats.count_by_kind[k] == 0) {
      continue;
    }
    meta_op_seconds_[k]->Observe(stats.seconds_by_kind[k]);
    const double predicted = plan.CostOf(static_cast<MetaOpKind>(k));
    if (predicted > 0.0) {
      meta_op_drift_[k]->Observe(stats.seconds_by_kind[k] / predicted);
    }
  }
  if (plan.total_cost > 0.0) {
    transform_drift_->Observe(stats.total_seconds / plan.total_cost);
  }
  predicted_seconds_->Add(plan.total_cost);
  actual_seconds_->Add(stats.total_seconds);
}

TransformDecision Transformer::Decide(const Model& source, const Model& dest,
                                      telemetry::TraceContext* trace) {
  TransformDecision decision;
  decision.scratch_cost = costs_->ScratchLoadCost(dest);
  if (cache_.Quarantined(source.name(), dest.name())) {
    // Negative cache: the pair kept failing at execution time; don't risk
    // another container on it.
    decision.quarantined = true;
    decision.transform_cost = decision.scratch_cost;
    return decision;
  }
  decision.transform_cost = cache_.GetOrPlan(source, dest, trace).total_cost;
  decision.use_transform = decision.transform_cost < decision.scratch_cost;
  return decision;
}

TransformOutcome Transformer::TransformOrLoad(ModelInstance* instance, const Model& dest,
                                              telemetry::TraceContext* trace) {
  TransformOutcome outcome;
  outcome.decision = Decide(instance->model, dest, trace);
  if (outcome.decision.use_transform) {
    // Capture the name now: a mid-plan failure leaves instance->model
    // half-mutated, but the quarantine is keyed by the pre-transform pair.
    const std::string source_name = instance->model.name();
    try {
      fault::MaybeInject("transform.donor");
      const TransformPlan& plan = cache_.GetOrPlan(instance->model, dest, trace);
      outcome.execution = ExecutePlan(instance, dest, plan, trace);
      RecordExecution(plan, outcome.execution);
      // Bump allocation strands the pre-transform weights in the arena;
      // compact once the dead bytes dominate the live set.
      if (instance->MaybeRepack() && arena_repacks_ != nullptr) {
        arena_repacks_->Inc();
      }
    } catch (...) {
      cache_.ReportExecutionFailure(source_name, dest.name());
      throw;
    }
  } else {
    // Safeguard: load the destination from scratch, as traditional systems do.
    // The container's arena survives the reload: Instantiate resets it and the
    // old model's views are only ever overwritten, never read, before the
    // assignment destroys them.
    *instance =
        loader_.Instantiate(dest, /*weight_seed=*/1, /*breakdown=*/nullptr, trace, instance->arena);
  }
  return outcome;
}

}  // namespace optimus
