#include "src/core/transformer.h"

#include "src/common/fault.h"

namespace optimus {

TransformDecision Transformer::Decide(const Model& source, const Model& dest) {
  TransformDecision decision;
  decision.scratch_cost = costs_->ScratchLoadCost(dest);
  if (cache_.Quarantined(source.name(), dest.name())) {
    // Negative cache: the pair kept failing at execution time; don't risk
    // another container on it.
    decision.quarantined = true;
    decision.transform_cost = decision.scratch_cost;
    return decision;
  }
  decision.transform_cost = cache_.GetOrPlan(source, dest).total_cost;
  decision.use_transform = decision.transform_cost < decision.scratch_cost;
  return decision;
}

TransformOutcome Transformer::TransformOrLoad(ModelInstance* instance, const Model& dest) {
  TransformOutcome outcome;
  outcome.decision = Decide(instance->model, dest);
  if (outcome.decision.use_transform) {
    // Capture the name now: a mid-plan failure leaves instance->model
    // half-mutated, but the quarantine is keyed by the pre-transform pair.
    const std::string source_name = instance->model.name();
    try {
      fault::MaybeInject("transform.donor");
      const TransformPlan& plan = cache_.GetOrPlan(instance->model, dest);
      outcome.execution = ExecutePlan(instance, dest, plan);
    } catch (...) {
      cache_.ReportExecutionFailure(source_name, dest.name());
      throw;
    }
  } else {
    // Safeguard: load the destination from scratch, as traditional systems do.
    *instance = loader_.Instantiate(dest);
  }
  return outcome;
}

}  // namespace optimus
