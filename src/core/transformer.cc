#include "src/core/transformer.h"

namespace optimus {

TransformDecision Transformer::Decide(const Model& source, const Model& dest) {
  TransformDecision decision;
  decision.transform_cost = cache_.GetOrPlan(source, dest).total_cost;
  decision.scratch_cost = costs_->ScratchLoadCost(dest);
  decision.use_transform = decision.transform_cost < decision.scratch_cost;
  return decision;
}

TransformOutcome Transformer::TransformOrLoad(ModelInstance* instance, const Model& dest) {
  TransformOutcome outcome;
  outcome.decision = Decide(instance->model, dest);
  if (outcome.decision.use_transform) {
    const TransformPlan& plan = cache_.GetOrPlan(instance->model, dest);
    outcome.execution = ExecutePlan(instance, dest, plan);
  } else {
    // Safeguard: load the destination from scratch, as traditional systems do.
    *instance = loader_.Instantiate(dest);
  }
  return outcome;
}

}  // namespace optimus
