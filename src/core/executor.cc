#include "src/core/executor.h"

#include <map>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "src/common/fault.h"
#include "src/common/stopwatch.h"
#include "src/tensor/tensor_ops.h"

namespace optimus {

namespace {

// Accumulates wall time into a per-kind slot, and — when tracing — records a
// span per step carrying the plan's predicted cost next to the measured one.
class KindTimer {
 public:
  KindTimer(TransformExecutionStats* stats, telemetry::TraceContext* trace,
            const TransformPlan& plan)
      : stats_(stats), trace_(trace) {
    if (trace_ == nullptr) {
      return;
    }
    // Index the plan's predicted per-step costs by (kind, source, dest) so
    // each executed step can report prediction vs. reality. Built only for
    // the ~1/64 sampled requests — the untraced path never touches it.
    for (const MetaOp& step : plan.steps) {
      if (step.kind == MetaOpKind::kEdge) {
        continue;
      }
      predicted_[Key{step.kind, step.source_id, step.dest_id}] += step.cost;
    }
  }

  template <typename Body>
  void Time(MetaOpKind kind, OpId source_id, OpId dest_id, Body&& body) {
    double predicted = 0.0;
    if (trace_ != nullptr) {
      auto it = predicted_.find(Key{kind, source_id, dest_id});
      predicted = it != predicted_.end() ? it->second : 0.0;
    }
    TimeWithPrediction(kind, predicted, std::forward<Body>(body));
  }

  // Edge steps carry their own cost on the step record.
  template <typename Body>
  void TimeStep(const MetaOp& step, Body&& body) {
    TimeWithPrediction(step.kind, step.cost, std::forward<Body>(body));
  }

 private:
  using Key = std::tuple<MetaOpKind, OpId, OpId>;

  template <typename Body>
  void TimeWithPrediction(MetaOpKind kind, double predicted, Body&& body) {
    telemetry::ScopedSpan span(trace_, MetaOpKindName(kind), "meta_op");
    Stopwatch watch;
    body();
    const double elapsed = watch.ElapsedSeconds();
    stats_->seconds_by_kind[static_cast<size_t>(kind)] += elapsed;
    stats_->count_by_kind[static_cast<size_t>(kind)] += 1;
    stats_->total_seconds += elapsed;
    span.Arg("predicted_s", predicted);
    span.Arg("actual_s", elapsed);
  }

  TransformExecutionStats* stats_;
  telemetry::TraceContext* trace_;
  std::map<Key, double> predicted_;
};

}  // namespace

TransformExecutionStats ExecutePlan(ModelInstance* instance, const Model& dest,
                                    const TransformPlan& plan,
                                    telemetry::TraceContext* trace) {
  TransformExecutionStats stats;
  KindTimer timer(&stats, trace, plan);
  Model& source = instance->model;
  TensorArena* const arena = instance->arena.get();
  if (!plan.source_name.empty() && plan.source_name != source.name()) {
    throw std::runtime_error("ExecutePlan: plan was computed for source '" + plan.source_name +
                             "' but the container holds '" + source.name() + "'");
  }

  Model result(dest.name(), dest.family());

  // Matched ops carry over: Reshape adjusts structure in place (crop / pad of
  // resident weight storage), Replace overwrites the weights with the
  // destination function's.
  for (const auto& [src_id, dst_id] : plan.mapping.matched) {
    if (!source.HasOp(src_id)) {
      throw std::runtime_error("ExecutePlan: plan references missing source op " +
                               std::to_string(src_id));
    }
    const Operation& dst_op = dest.op(dst_id);
    Operation op = std::move(source.mutable_op(src_id));
    if (op.kind != dst_op.kind) {
      throw std::runtime_error("ExecutePlan: matched ops of different kinds");
    }
    if (!(op.attrs == dst_op.attrs)) {
      fault::MaybeInject("executor.step");
      timer.Time(MetaOpKind::kReshape, src_id, dst_id, [&] {
        op.attrs = dst_op.attrs;
        const std::vector<Shape> target_shapes = WeightShapesFor(op.kind, op.attrs);
        for (size_t i = 0; i < op.weights.size() && i < target_shapes.size(); ++i) {
          if (op.weights[i].shape() != target_shapes[i] &&
              !ResizeToShapeInPlace(&op.weights[i], target_shapes[i])) {
            op.weights[i] = ResizeToShape(op.weights[i], target_shapes[i], arena);
          }
        }
      });
    }
    if (OpKindHasWeights(op.kind) && !dst_op.weights.empty()) {
      fault::MaybeInject("executor.step");
      timer.Time(MetaOpKind::kReplace, src_id, dst_id, [&] {
        // Zero-copy Replace (DESIGN.md §14): deployed weights are immutable
        // for the life of the process, so the container aliases the
        // destination model's tensors instead of copying them — a pointer
        // swap per weight. Any later in-place mutation refuses on the alias
        // and falls back to a copy into the arena.
        op.weights.clear();
        op.weights.reserve(dst_op.weights.size());
        for (const Tensor& weight : dst_op.weights) {
          op.weights.push_back(Tensor::AliasOf(weight));
        }
      });
    }
    op.id = dst_id;
    result.AddOpWithId(std::move(op));
  }

  // Reduce: drop source ops with no destination counterpart. The actual
  // storage release happens when the old model is replaced below.
  for (const OpId src_id : plan.mapping.reduced) {
    fault::MaybeInject("executor.step");
    timer.Time(MetaOpKind::kReduce, src_id, kInvalidOpId, [&] { source.RemoveOp(src_id); });
  }

  // Add: materialize brand-new destination ops (structure + weights).
  for (const OpId dst_id : plan.mapping.added) {
    fault::MaybeInject("executor.step");
    timer.Time(MetaOpKind::kAdd, kInvalidOpId, dst_id, [&] {
      Operation op;
      const Operation& dst_op = dest.op(dst_id);
      op.id = dst_id;
      op.kind = dst_op.kind;
      op.attrs = dst_op.attrs;
      op.weights.reserve(dst_op.weights.size());
      for (const Tensor& weight : dst_op.weights) {
        // Same zero-copy rationale as Replace: new ops alias the deployed
        // model's immutable weights.
        op.weights.push_back(Tensor::AliasOf(weight));
      }
      result.AddOpWithId(std::move(op));
    });
  }

  // Edge: start from the surviving (projected) source edges, then apply the
  // planned additions/removals.
  std::map<OpId, OpId> src_to_dst;
  for (const auto& [src_id, dst_id] : plan.mapping.matched) {
    src_to_dst[src_id] = dst_id;
  }
  for (const Edge& edge : source.edges()) {
    auto from = src_to_dst.find(edge.first);
    auto to = src_to_dst.find(edge.second);
    if (from != src_to_dst.end() && to != src_to_dst.end()) {
      result.AddEdge(from->second, to->second);
    }
  }
  for (const MetaOp& step : plan.steps) {
    if (step.kind != MetaOpKind::kEdge) {
      continue;
    }
    fault::MaybeInject("executor.step");
    timer.TimeStep(step, [&] {
      if (step.edge_add) {
        result.AddEdge(step.edge.first, step.edge.second);
      } else {
        result.RemoveEdge(step.edge.first, step.edge.second);
      }
    });
  }

  instance->model = std::move(result);
  return stats;
}

}  // namespace optimus
