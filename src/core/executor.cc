#include "src/core/executor.h"

#include <stdexcept>
#include <utility>

#include "src/common/fault.h"
#include "src/common/stopwatch.h"
#include "src/tensor/tensor_ops.h"

namespace optimus {

namespace {

// Accumulates wall time into a per-kind slot.
class KindTimer {
 public:
  explicit KindTimer(TransformExecutionStats* stats) : stats_(stats) {}

  template <typename Body>
  void Time(MetaOpKind kind, Body&& body) {
    Stopwatch watch;
    body();
    const double elapsed = watch.ElapsedSeconds();
    stats_->seconds_by_kind[static_cast<size_t>(kind)] += elapsed;
    stats_->count_by_kind[static_cast<size_t>(kind)] += 1;
    stats_->total_seconds += elapsed;
  }

 private:
  TransformExecutionStats* stats_;
};

}  // namespace

TransformExecutionStats ExecutePlan(ModelInstance* instance, const Model& dest,
                                    const TransformPlan& plan) {
  TransformExecutionStats stats;
  KindTimer timer(&stats);
  Model& source = instance->model;
  if (!plan.source_name.empty() && plan.source_name != source.name()) {
    throw std::runtime_error("ExecutePlan: plan was computed for source '" + plan.source_name +
                             "' but the container holds '" + source.name() + "'");
  }

  Model result(dest.name(), dest.family());

  // Matched ops carry over: Reshape adjusts structure in place (crop / pad of
  // resident weight storage), Replace overwrites the weights with the
  // destination function's.
  for (const auto& [src_id, dst_id] : plan.mapping.matched) {
    if (!source.HasOp(src_id)) {
      throw std::runtime_error("ExecutePlan: plan references missing source op " +
                               std::to_string(src_id));
    }
    const Operation& dst_op = dest.op(dst_id);
    Operation op = std::move(source.mutable_op(src_id));
    if (op.kind != dst_op.kind) {
      throw std::runtime_error("ExecutePlan: matched ops of different kinds");
    }
    if (!(op.attrs == dst_op.attrs)) {
      fault::MaybeInject("executor.step");
      timer.Time(MetaOpKind::kReshape, [&] {
        op.attrs = dst_op.attrs;
        const std::vector<Shape> target_shapes = WeightShapesFor(op.kind, op.attrs);
        for (size_t i = 0; i < op.weights.size() && i < target_shapes.size(); ++i) {
          if (op.weights[i].shape() != target_shapes[i]) {
            op.weights[i] = ResizeToShape(op.weights[i], target_shapes[i]);
          }
        }
      });
    }
    if (OpKindHasWeights(op.kind) && !dst_op.weights.empty()) {
      fault::MaybeInject("executor.step");
      timer.Time(MetaOpKind::kReplace, [&] {
        if (op.weights.size() != dst_op.weights.size()) {
          op.AllocateWeights();
        }
        for (size_t i = 0; i < op.weights.size(); ++i) {
          OverwriteTensor(dst_op.weights[i], &op.weights[i]);
        }
      });
    }
    op.id = dst_id;
    result.AddOpWithId(std::move(op));
  }

  // Reduce: drop source ops with no destination counterpart. The actual
  // storage release happens when the old model is replaced below.
  for (const OpId src_id : plan.mapping.reduced) {
    fault::MaybeInject("executor.step");
    timer.Time(MetaOpKind::kReduce, [&] { source.RemoveOp(src_id); });
  }

  // Add: materialize brand-new destination ops (structure + weights).
  for (const OpId dst_id : plan.mapping.added) {
    fault::MaybeInject("executor.step");
    timer.Time(MetaOpKind::kAdd, [&] {
      Operation op;
      const Operation& dst_op = dest.op(dst_id);
      op.id = dst_id;
      op.kind = dst_op.kind;
      op.attrs = dst_op.attrs;
      op.weights.reserve(dst_op.weights.size());
      for (const Tensor& weight : dst_op.weights) {
        op.weights.push_back(CopyTensor(weight));
      }
      result.AddOpWithId(std::move(op));
    });
  }

  // Edge: start from the surviving (projected) source edges, then apply the
  // planned additions/removals.
  std::map<OpId, OpId> src_to_dst;
  for (const auto& [src_id, dst_id] : plan.mapping.matched) {
    src_to_dst[src_id] = dst_id;
  }
  for (const Edge& edge : source.edges()) {
    auto from = src_to_dst.find(edge.first);
    auto to = src_to_dst.find(edge.second);
    if (from != src_to_dst.end() && to != src_to_dst.end()) {
      result.AddEdge(from->second, to->second);
    }
  }
  for (const MetaOp& step : plan.steps) {
    if (step.kind != MetaOpKind::kEdge) {
      continue;
    }
    fault::MaybeInject("executor.step");
    timer.Time(MetaOpKind::kEdge, [&] {
      if (step.edge_add) {
        result.AddEdge(step.edge.first, step.edge.second);
      } else {
        result.RemoveEdge(step.edge.first, step.edge.second);
      }
    });
  }

  instance->model = std::move(result);
  return stats;
}

}  // namespace optimus
