#include "src/core/cost_matrix.h"

namespace optimus {

double SubstitutionCost(const Operation& src, const Operation& dst, const CostModel& costs) {
  if (src.kind != dst.kind) {
    return kForbiddenCost;
  }
  double cost = 0.0;
  if (!(src.attrs == dst.attrs)) {
    cost += costs.ReshapeCost(src.kind, src.attrs, dst.attrs);
  }
  // The destination function's weights always differ from the source's, so a
  // Replace follows every kept weighted op.
  cost += costs.ReplaceCost(dst.kind, dst.attrs);
  return cost;
}

TransformCostMatrix BuildCostMatrix(const Model& source, const Model& dest,
                                    const CostModel& costs) {
  TransformCostMatrix matrix;
  matrix.source_ids = source.TopologicalOrder();
  matrix.dest_ids = dest.TopologicalOrder();
  const size_t n = matrix.n();
  const size_t m = matrix.m();
  const size_t size = n + m;
  matrix.costs.assign(size, std::vector<double>(size, kForbiddenCost));

  for (size_t i = 0; i < n; ++i) {
    const Operation& src_op = source.op(matrix.source_ids[i]);
    // Substitutions.
    for (size_t j = 0; j < m; ++j) {
      matrix.costs[i][j] = SubstitutionCost(src_op, dest.op(matrix.dest_ids[j]), costs);
    }
    // Deletion diagonal.
    matrix.costs[i][m + i] = costs.ReduceCost();
  }
  for (size_t j = 0; j < m; ++j) {
    const Operation& dst_op = dest.op(matrix.dest_ids[j]);
    // Insertion diagonal.
    matrix.costs[n + j][j] = costs.AddCost(dst_op.kind, dst_op.attrs);
  }
  // Bottom-right block: epsilon-to-epsilon, zero cost.
  for (size_t j = 0; j < m; ++j) {
    for (size_t i = 0; i < n; ++i) {
      matrix.costs[n + j][m + i] = 0.0;
    }
  }
  return matrix;
}

}  // namespace optimus
