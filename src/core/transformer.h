// High-level inter-function model transformation with the safeguard
// (paper §4.4, Module 3).
//
// Transformer is the in-container "scheduler service" of §7: given a warm but
// idle container holding the source model and a destination function's model,
// it reads the cached transformation strategy and either executes it or —
// when transformation would be slower than a scratch load — falls back to
// loading the destination from scratch, guaranteeing worst-case parity with
// traditional systems.
//
// Failure semantics (DESIGN.md §11): the paper's safeguard only covers the
// case where transformation would be *slow*; this layer also covers the case
// where it *fails*. A pair that has exhausted its execution retry budget in
// the PlanCache quarantine is routed to the scratch path up front, and a plan
// that throws mid-execution is charged to the quarantine before the error
// propagates — the caller owns destroying the now-poisoned container.

#ifndef OPTIMUS_SRC_CORE_TRANSFORMER_H_
#define OPTIMUS_SRC_CORE_TRANSFORMER_H_

#include "src/core/executor.h"
#include "src/core/plan_cache.h"
#include "src/runtime/loader.h"

namespace optimus {

// The safeguard's verdict for a candidate transformation.
struct TransformDecision {
  bool use_transform = false;
  bool quarantined = false;     // Pair rejected by the execution quarantine.
  double transform_cost = 0.0;  // Estimated plan-execution cost (seconds).
  double scratch_cost = 0.0;    // Estimated scratch-load cost (seconds).

  // Latency the chosen path is expected to take.
  double ChosenCost() const { return use_transform ? transform_cost : scratch_cost; }
};

// Outcome of TransformOrLoad.
struct TransformOutcome {
  TransformDecision decision;
  TransformExecutionStats execution;  // Only populated when transformed.
};

class Transformer {
 public:
  // With a registry (DESIGN.md §12) the transformer reports per-meta-op-kind
  // execution latency and predicted-vs-actual cost drift, and wires the
  // scratch-load path's metrics through its loader; with none, only the plan
  // cache's privately-owned registry exists and the rest is skipped.
  Transformer(const CostModel* costs, PlannerKind planner = PlannerKind::kGroup,
              telemetry::MetricsRegistry* metrics = nullptr);

  // Safeguard check: compares the (cached) plan cost against the destination's
  // scratch-load cost. Quarantined pairs never choose the transform path (the
  // cached plan is not even consulted, so a latched planning failure for a
  // quarantined pair cannot surface here). A non-null `trace` records the
  // plan-lookup span.
  TransformDecision Decide(const Model& source, const Model& dest,
                           telemetry::TraceContext* trace = nullptr);

  // Transforms `instance` (holding `source`) into `dest`, or scratch-loads
  // `dest` when the safeguard (or the quarantine) rejects the transformation.
  // On success instance->model ends Identical() to dest.
  //
  // On a mid-plan execution failure (including the "transform.donor" and
  // "executor.step" fault points) the failure is reported to the plan cache's
  // quarantine and the exception propagates with *instance poisoned — the
  // caller must discard the container and fall back to a fresh scratch load.
  TransformOutcome TransformOrLoad(ModelInstance* instance, const Model& dest,
                                   telemetry::TraceContext* trace = nullptr);

  PlanCache& cache() { return cache_; }
  const PlanCache& cache() const { return cache_; }
  const Loader& loader() const { return loader_; }
  const CostModel& costs() const { return *costs_; }

 private:
  // Feeds one executed plan's per-kind timings and drift into the registry.
  void RecordExecution(const TransformPlan& plan, const TransformExecutionStats& stats);

  const CostModel* costs_;
  Loader loader_;
  PlanCache cache_;
  // Per-kind series, indexed by MetaOpKind; null without a registry.
  std::array<telemetry::Histogram*, kNumMetaOpKinds> meta_op_seconds_{};
  std::array<telemetry::Histogram*, kNumMetaOpKinds> meta_op_drift_{};
  telemetry::Histogram* transform_drift_ = nullptr;
  telemetry::Counter* arena_repacks_ = nullptr;
  telemetry::Gauge* predicted_seconds_ = nullptr;
  telemetry::Gauge* actual_seconds_ = nullptr;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_TRANSFORMER_H_
