// Planning-strategy cache (paper §4.4, Module 3 "planning strategy caching").
//
// When a new model registers in the global repository, Optimus plans its
// transformations against the existing models and caches the strategies, so
// an online transformation only reads the cached plan — no planning on the
// request path.

#ifndef OPTIMUS_SRC_CORE_PLAN_CACHE_H_
#define OPTIMUS_SRC_CORE_PLAN_CACHE_H_

#include <map>
#include <string>
#include <utility>

#include "src/core/planner.h"

namespace optimus {

class PlanCache {
 public:
  explicit PlanCache(const CostModel* costs, PlannerKind planner = PlannerKind::kGroup)
      : costs_(costs), planner_(planner) {}

  // Returns the cached plan for (source, dest), planning and caching it on a
  // miss. Keyed by model name; models are assumed immutable once registered.
  const TransformPlan& GetOrPlan(const Model& source, const Model& dest);

  // Pre-plans `model` against every model in `repository` (both directions),
  // as the paper does at model-registration time.
  template <typename ModelRange>
  void WarmFor(const Model& model, const ModelRange& repository) {
    for (const Model& other : repository) {
      if (other.name() == model.name()) {
        continue;
      }
      GetOrPlan(other, model);
      GetOrPlan(model, other);
    }
  }

  bool Contains(const std::string& source_name, const std::string& dest_name) const {
    return plans_.count({source_name, dest_name}) > 0;
  }

  // Persists all cached strategies to a file / restores them (the §7 design
  // stores plans with the models; restoring avoids re-planning on restart).
  // Load merges into the cache, keyed by the plans' source/dest names.
  void Save(const std::string& path) const;
  void Load(const std::string& path);

  size_t Size() const { return plans_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }

 private:
  const CostModel* costs_;
  PlannerKind planner_;
  std::map<std::pair<std::string, std::string>, TransformPlan> plans_;
  size_t hits_ = 0;
  size_t misses_ = 0;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_PLAN_CACHE_H_
