// Planning-strategy cache (paper §4.4, Module 3 "planning strategy caching").
//
// When a new model registers in the global repository, Optimus plans its
// transformations against the existing models and caches the strategies, so
// an online transformation only reads the cached plan — no planning on the
// request path.
//
// Thread safety: every member is safe to call concurrently. The key space is
// split across a fixed number of shards, each guarded by its own mutex, so
// lookups for unrelated (source, dest) pairs never contend. Each entry
// carries a "planning in flight" latch: the first thread to request a pair
// plans it while later requesters block on the latch instead of re-planning,
// so a pair is planned exactly once no matter how many threads race for it.
// Plans are immutable once published, which is what makes the returned
// references stable (entries are heap-allocated and never removed).
// Exception: Load() overwrites plans in place and must not race with readers
// holding references into the cache.

#ifndef OPTIMUS_SRC_CORE_PLAN_CACHE_H_
#define OPTIMUS_SRC_CORE_PLAN_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/core/planner.h"

namespace optimus {

class PlanCache {
 public:
  explicit PlanCache(const CostModel* costs, PlannerKind planner = PlannerKind::kGroup);

  // Returns the cached plan for (source, dest), planning and caching it on a
  // miss. Keyed by model name; models are assumed immutable once registered.
  // Concurrent callers for the same pair block until the single in-flight
  // planning completes; a request that finds the pair present or in flight
  // counts as a hit, the one that plans counts as a miss.
  //
  // With verification enabled, a freshly planned strategy is statically
  // verified (src/analysis) before it is published; a plan that fails — like
  // a planning attempt that throws — is latched as failed, and every
  // requester of the pair (the planner and all waiters) gets the error
  // instead of deadlocking or consuming a corrupt plan.
  const TransformPlan& GetOrPlan(const Model& source, const Model& dest);

  // Static verification at the insert boundary (DESIGN.md §10). Defaults to
  // VerificationEnabled(): on in debug builds, opt-in via OPTIMUS_VERIFY=1
  // elsewhere.
  void set_verification(bool enabled) { verify_.store(enabled, std::memory_order_relaxed); }
  bool verification() const { return verify_.load(std::memory_order_relaxed); }

  // Pre-plans `model` against every model in `repository` (both directions),
  // as the paper does at model-registration time. With a pool, the pair
  // plannings fan out across the pool's workers (distinct pairs are
  // independent); the call still blocks until every plan is cached, and the
  // resulting cache contents are identical to the serial path's.
  template <typename ModelRange>
  void WarmFor(const Model& model, const ModelRange& repository, ThreadPool* pool = nullptr) {
    CheckRegistration(model);
    if (pool == nullptr) {
      for (const Model& other : repository) {
        if (other.name() == model.name()) {
          continue;
        }
        GetOrPlan(other, model);
        GetOrPlan(model, other);
      }
      return;
    }
    std::vector<std::future<void>> pending;
    for (const Model& other : repository) {
      if (other.name() == model.name()) {
        continue;
      }
      const Model* other_ptr = &other;
      pending.push_back(pool->Submit([this, &model, other_ptr] {
        GetOrPlan(*other_ptr, model);
        GetOrPlan(model, *other_ptr);
      }));
    }
    for (std::future<void>& future : pending) {
      future.get();
    }
  }

  // True once the pair's plan is published (an in-flight planning does not
  // count until it completes).
  bool Contains(const std::string& source_name, const std::string& dest_name) const;

  // Persists all cached strategies to a file / restores them (the §7 design
  // stores plans with the models; restoring avoids re-planning on restart).
  // Save writes plans in (source, dest) key order regardless of which threads
  // planned them; Load merges into the cache keyed by the plans' source/dest
  // names, overwriting existing entries, and rejects (throws) records that
  // fail the model-free VerifyPlanShape checks. Neither may race with
  // GetOrPlan callers still using returned plan references.
  void Save(const std::string& path) const;
  void Load(const std::string& path);

  // Number of entries, including any still being planned.
  size_t Size() const;
  size_t hits() const { return hits_.load(std::memory_order_relaxed); }
  size_t misses() const { return misses_.load(std::memory_order_relaxed); }

 private:
  using Key = std::pair<std::string, std::string>;

  // One cached pair. `ready` flips to true exactly once, under `mutex`, when
  // the outcome (good plan or latched failure) is published; waiters block on
  // `published` until then. `failed`/`error` are written before the `ready`
  // release-store and only read after an acquire-load of `ready`.
  struct Entry {
    std::mutex mutex;
    std::condition_variable published;
    std::atomic<bool> ready{false};
    std::atomic<bool> failed{false};
    std::string error;
    TransformPlan plan;
  };

  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable std::mutex mutex;
    std::map<Key, std::shared_ptr<Entry>> entries;
  };

  const Shard& ShardFor(const Key& key) const;
  Shard& ShardFor(const Key& key) {
    return const_cast<Shard&>(static_cast<const PlanCache*>(this)->ShardFor(key));
  }

  // Throws when verification is on and `model` violates a graph invariant;
  // keeps malformed models out of the repository-wide warm pass.
  void CheckRegistration(const Model& model) const;

  const CostModel* costs_;
  PlannerKind planner_;
  std::atomic<bool> verify_;
  Shard shards_[kNumShards];
  std::atomic<size_t> hits_{0};
  std::atomic<size_t> misses_{0};
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_PLAN_CACHE_H_
