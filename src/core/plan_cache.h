// Planning-strategy cache (paper §4.4, Module 3 "planning strategy caching").
//
// When a new model registers in the global repository, Optimus plans its
// transformations against the existing models and caches the strategies, so
// an online transformation only reads the cached plan — no planning on the
// request path.
//
// Thread safety: every member is safe to call concurrently. The key space is
// split across a fixed number of shards, each guarded by its own mutex, so
// lookups for unrelated (source, dest) pairs never contend. Each entry
// carries a "planning in flight" latch: the first thread to request a pair
// plans it while later requesters block on the latch instead of re-planning.
// Plans are immutable once published, which is what makes the returned
// references stable (entries are heap-allocated and never removed).
// Exception: Load() overwrites plans in place and must not race with readers
// holding references into the cache.
//
// Failure semantics (DESIGN.md §11):
//   * A planning or verification failure is latched on the entry so waiters
//     get the error instead of deadlocking — but the latch is *retryable*: a
//     later requester re-claims the entry and re-plans, up to
//     plan_retry_budget() total attempts, after which the latched error is
//     permanent. Transient faults (I/O hiccups, injected faults) therefore
//     don't poison a pair forever.
//   * Plans that failed at *execution* time (ExecutePlan threw inside a
//     container) are tracked in a quarantine list — a negative cache with a
//     bounded retry budget. After execution_retry_budget() failures the pair
//     is quarantined: Quarantined() returns true and the transformer routes
//     the pair to the scratch-load safeguard instead of retrying a plan that
//     keeps destroying containers.

#ifndef OPTIMUS_SRC_CORE_PLAN_CACHE_H_
#define OPTIMUS_SRC_CORE_PLAN_CACHE_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/sync.h"
#include "src/common/thread_pool.h"
#include "src/core/planner.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace optimus {

class PlanCache {
 public:
  // Hit/miss/failure counters and the planning-latency histogram live on
  // `metrics` (DESIGN.md §12); with none supplied the cache owns a private
  // registry so standalone construction keeps working.
  explicit PlanCache(const CostModel* costs, PlannerKind planner = PlannerKind::kGroup,
                     telemetry::MetricsRegistry* metrics = nullptr);

  // Returns the cached plan for (source, dest), planning and caching it on a
  // miss. Keyed by model name; models are assumed immutable once registered.
  // Concurrent callers for the same pair block until the single in-flight
  // planning completes; a request that finds the pair present or in flight
  // counts as a hit, every planning attempt counts as a miss.
  //
  // With verification enabled, a freshly planned strategy is statically
  // verified (src/analysis) before it is published. A planning attempt that
  // throws latches the failure; requesters retry the planning (one at a time)
  // until plan_retry_budget() attempts have failed, after which the latched
  // error is thrown to every requester of the pair.
  // A non-null `trace` records a "plan_lookup" span (category "plan") around
  // the lookup-or-plan, with a hit=0/1 arg.
  const TransformPlan& GetOrPlan(const Model& source, const Model& dest,
                                 telemetry::TraceContext* trace = nullptr);

  // Static verification at the insert boundary (DESIGN.md §10). Defaults to
  // VerificationEnabled(): on in debug builds, opt-in via OPTIMUS_VERIFY=1
  // elsewhere.
  void set_verification(bool enabled) { verify_.store(enabled, std::memory_order_relaxed); }
  bool verification() const { return verify_.load(std::memory_order_relaxed); }

  // Pre-plans `model` against every model in `repository` (both directions),
  // as the paper does at model-registration time. With a pool, the pair
  // plannings fan out across the pool's workers (distinct pairs are
  // independent); the call still blocks until every plan is cached, and the
  // resulting cache contents are identical to the serial path's.
  template <typename ModelRange>
  void WarmFor(const Model& model, const ModelRange& repository, ThreadPool* pool = nullptr) {
    CheckRegistration(model);
    if (pool == nullptr) {
      for (const Model& other : repository) {
        if (other.name() == model.name()) {
          continue;
        }
        GetOrPlan(other, model);
        GetOrPlan(model, other);
      }
      return;
    }
    std::vector<std::future<void>> pending;
    for (const Model& other : repository) {
      if (other.name() == model.name()) {
        continue;
      }
      const Model* other_ptr = &other;
      pending.push_back(pool->Submit([this, &model, other_ptr] {
        GetOrPlan(*other_ptr, model);
        GetOrPlan(model, *other_ptr);
      }));
    }
    for (std::future<void>& future : pending) {
      future.get();
    }
  }

  // True once the pair's plan is published (an in-flight planning does not
  // count until it completes).
  bool Contains(const std::string& source_name, const std::string& dest_name) const;

  // ---- Execution-failure quarantine (negative cache) ----

  // Records that the pair's plan failed while executing inside a container.
  void ReportExecutionFailure(const std::string& source_name, const std::string& dest_name);

  // True once the pair has exhausted its execution retry budget; the
  // transformer then treats the pair as non-transformable (scratch fallback).
  bool Quarantined(const std::string& source_name, const std::string& dest_name) const;

  // Execution failures a pair may accumulate before being quarantined.
  // Atomic so tests/operators may tune the budget while requests are in
  // flight (previously a plain int — a data race the thread-safety migration
  // surfaced).
  int execution_retry_budget() const {
    return execution_retry_budget_.load(std::memory_order_relaxed);
  }
  void set_execution_retry_budget(int budget) {
    execution_retry_budget_.store(budget, std::memory_order_relaxed);
  }

  // Planning attempts (initial + retries) a pair may consume before its
  // latched planning error becomes permanent.
  int plan_retry_budget() const { return plan_retry_budget_.load(std::memory_order_relaxed); }
  void set_plan_retry_budget(int budget) {
    plan_retry_budget_.store(budget, std::memory_order_relaxed);
  }

  size_t QuarantinedPairs() const;   // Pairs at/over the execution budget.
  size_t ExecutionFailures() const;  // Total failures reported.

  // Persists all cached strategies to a file / restores them (the §7 design
  // stores plans with the models; restoring avoids re-planning on restart).
  // Save writes plans in (source, dest) key order regardless of which threads
  // planned them; Load merges into the cache keyed by the plans' source/dest
  // names, overwriting existing entries, and rejects (throws) records that
  // fail the model-free VerifyPlanShape checks. Save copies each plan under
  // its entry latch, so Save and Load may run concurrently (the annotation
  // migration surfaced Save's previously-unlocked plan reads); Load still
  // must not race with GetOrPlan callers holding references into the cache,
  // since it overwrites published plans in place.
  void Save(const std::string& path) const;
  void Load(const std::string& path);

  // Number of entries, including any still being planned.
  size_t Size() const;
  size_t hits() const { return static_cast<size_t>(hits_.Value()); }
  size_t misses() const { return static_cast<size_t>(misses_.Value()); }

 private:
  using Key = std::pair<std::string, std::string>;

  enum EntryState : uint8_t {
    kPlanning = 0,  // A planning attempt is in flight; waiters block.
    kReady,         // `plan` is published and immutable.
    kFailed,        // The last attempt failed; `error`/`failed_attempts` say why.
  };

  // One cached pair. `state` transitions only under `mutex` (with a release
  // store so Contains() may read it lock-free); waiters block on `published`
  // until the state leaves kPlanning. A kFailed entry with budget remaining
  // is re-claimed by flipping it back to kPlanning.
  //
  // Lock order (DESIGN.md §15): shard mutex and entry mutex are never nested
  // — GetOrPlan drops the shard lock before touching the entry latch — but
  // they carry adjacent ranks so the validator pins the documented
  // node → shard → entry order tree-wide.
  struct Entry {
    Mutex mutex{LockRank::kPlanCacheEntry, "plan_cache.entry"};
    CondVar published;
    std::atomic<uint8_t> state{kPlanning};
    int failed_attempts GUARDED_BY(mutex) = 0;
    std::string error GUARDED_BY(mutex);
    TransformPlan plan GUARDED_BY(mutex);  // Written under mutex, before state -> kReady.

    // Lock-free read of a published plan: `plan` is written under `mutex`
    // before the kReady release-store and immutable afterwards, so a reader
    // that observed state == kReady (acquire) needs no lock. Load()
    // overwrites are serialized against such readers by the API contract
    // (see the class comment).
    const TransformPlan& published_plan() const NO_THREAD_SAFETY_ANALYSIS { return plan; }
  };

  static constexpr size_t kNumShards = 16;

  struct Shard {
    mutable Mutex mutex{LockRank::kPlanCacheShard, "plan_cache.shard"};
    std::map<Key, std::shared_ptr<Entry>> entries GUARDED_BY(mutex);
  };

  const Shard& ShardFor(const Key& key) const;
  Shard& ShardFor(const Key& key) {
    return const_cast<Shard&>(static_cast<const PlanCache*>(this)->ShardFor(key));
  }

  // Runs one planning attempt for `entry`, publishing the plan or latching
  // the failure. Returns the published plan; rethrows on failure.
  const TransformPlan& PlanInto(Entry* entry, const Model& source, const Model& dest);

  // Throws when verification is on and `model` violates a graph invariant;
  // keeps malformed models out of the repository-wide warm pass.
  void CheckRegistration(const Model& model) const;

  const CostModel* costs_;
  PlannerKind planner_;
  std::atomic<bool> verify_;
  Shard shards_[kNumShards];

  // Declared before the metric references below (initialization order).
  std::unique_ptr<telemetry::MetricsRegistry> owned_metrics_;
  telemetry::MetricsRegistry* metrics_;
  telemetry::Counter& hits_;
  telemetry::Counter& misses_;
  telemetry::Counter& execution_failures_;
  telemetry::Histogram& plan_seconds_;

  std::atomic<int> plan_retry_budget_{3};
  std::atomic<int> execution_retry_budget_{2};
  mutable Mutex quarantine_mutex_{LockRank::kQuarantine, "plan_cache.quarantine"};
  std::map<Key, int> execution_failures_by_pair_ GUARDED_BY(quarantine_mutex_);
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_PLAN_CACHE_H_
