// Online execution of a transformation plan inside a container (paper §4.4,
// Module 3 "online transformation execution").
//
// The executor mutates the warm container's resident ModelInstance into the
// destination model by applying the planned meta-operators with real memory
// traffic: Reshape crops/zero-pads weight tensors in place, Replace memcpy's
// the destination function's weights over resident storage, Add materializes
// fresh operations, Reduce drops them, Edge rewires data flows. The result is
// bit-identical to a scratch-loaded destination instance.

#ifndef OPTIMUS_SRC_CORE_EXECUTOR_H_
#define OPTIMUS_SRC_CORE_EXECUTOR_H_

#include <array>

#include "src/core/meta_op.h"
#include "src/runtime/loader.h"
#include "src/telemetry/trace.h"

namespace optimus {

// Wall-clock execution timings per meta-operator kind, plus the total.
struct TransformExecutionStats {
  std::array<double, kNumMetaOpKinds> seconds_by_kind{};
  double total_seconds = 0.0;
  std::array<int, kNumMetaOpKinds> count_by_kind{};
};

// Applies `plan` to `instance` (which currently holds the plan's source
// model), pulling destination structure and weights from `dest` — the stand-in
// for the destination function's model file. On return, instance->model is
// Identical() to dest. Throws std::runtime_error if the plan does not match
// the instance's resident model.
//
// NOT transactional: execution mutates the resident model in place, so a
// throw mid-plan (mismatch detected late, or the "executor.step" fault point
// firing) leaves `instance` half-transformed. Callers must treat any throw as
// poisoning the container and discard the instance — the platform destroys
// the container and falls back to a scratch load (DESIGN.md §11).
//
// A non-null `trace` records one span per executed meta-op step (category
// "meta_op"), each carrying the cost model's predicted_s next to the measured
// actual_s — the raw material for cost-model drift auditing (DESIGN.md §12).
TransformExecutionStats ExecutePlan(ModelInstance* instance, const Model& dest,
                                    const TransformPlan& plan,
                                    telemetry::TraceContext* trace = nullptr);

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_EXECUTOR_H_
