#include "src/core/plan_cache.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "src/analysis/verifier.h"
#include "src/common/fault.h"
#include "src/core/plan_io.h"

namespace optimus {

PlanCache::PlanCache(const CostModel* costs, PlannerKind planner,
                     telemetry::MetricsRegistry* metrics)
    : costs_(costs),
      planner_(planner),
      verify_(VerificationEnabled()),
      owned_metrics_(metrics == nullptr ? std::make_unique<telemetry::MetricsRegistry>()
                                        : nullptr),
      metrics_(metrics != nullptr ? metrics : owned_metrics_.get()),
      hits_(metrics_->GetCounter("optimus_plan_cache_hits_total", {},
                                 "Plan-cache lookups served from a cached strategy")),
      misses_(metrics_->GetCounter("optimus_plan_cache_misses_total", {},
                                   "Plan-cache lookups that triggered a planning attempt")),
      execution_failures_(
          metrics_->GetCounter("optimus_plan_execution_failures_total", {},
                               "Cached plans that failed while executing in a container")),
      plan_seconds_(metrics_->GetHistogram("optimus_plan_seconds", {},
                                           "Wall seconds per planning attempt")) {}

void PlanCache::CheckRegistration(const Model& model) const {
  if (verification()) {
    ThrowIfInvalid(VerifyModel(model), "PlanCache::WarmFor: model '" + model.name() + "'");
  }
}

const PlanCache::Shard& PlanCache::ShardFor(const Key& key) const {
  const size_t hash =
      std::hash<std::string>{}(key.first) * 31 + std::hash<std::string>{}(key.second);
  return shards_[hash % kNumShards];
}

const TransformPlan& PlanCache::PlanInto(Entry* entry, const Model& source, const Model& dest) {
  misses_.Inc();
  const uint64_t start_ns = telemetry::MonotonicNanos();
  try {
    fault::MaybeInject("cache.plan");
    TransformPlan plan = PlanTransform(source, dest, *costs_, planner_);
    if (verification()) {
      fault::MaybeInject("cache.verify");
      ThrowIfInvalid(VerifyPlan(source, dest, plan, *costs_),
                     "PlanCache: plan verification failed for '" + source.name() + "' -> '" +
                         dest.name() + "'");
    }
    {
      MutexLock lock(entry->mutex);
      entry->plan = std::move(plan);
      entry->error.clear();
      entry->state.store(kReady, std::memory_order_release);
    }
    entry->published.NotifyAll();
    plan_seconds_.Observe(static_cast<double>(telemetry::MonotonicNanos() - start_ns) * 1e-9);
    return entry->published_plan();
  } catch (const std::exception& e) {
    // Latch the failure so waiters see the error instead of blocking forever.
    // The latch is retryable: a later requester re-claims the entry until the
    // plan retry budget is exhausted.
    {
      MutexLock lock(entry->mutex);
      entry->error = e.what();
      entry->failed_attempts += 1;
      entry->state.store(kFailed, std::memory_order_release);
    }
    entry->published.NotifyAll();
    plan_seconds_.Observe(static_cast<double>(telemetry::MonotonicNanos() - start_ns) * 1e-9);
    throw;
  }
}

const TransformPlan& PlanCache::GetOrPlan(const Model& source, const Model& dest,
                                          telemetry::TraceContext* trace) {
  telemetry::ScopedSpan span(trace, "plan_lookup", "plan");
  const Key key{source.name(), dest.name()};
  Shard& shard = ShardFor(key);

  std::shared_ptr<Entry> entry;
  bool planner_thread = false;
  {
    MutexLock lock(shard.mutex);
    auto [it, inserted] = shard.entries.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<Entry>();
      planner_thread = true;
    }
    entry = it->second;
  }

  if (!planner_thread) {
    MutexLock lock(entry->mutex);
    while (entry->state.load(std::memory_order_acquire) == kPlanning) {
      entry->published.Wait(entry->mutex);
    }
    if (entry->state.load(std::memory_order_acquire) == kReady) {
      hits_.Inc();
      span.Arg("hit", 1.0);
      return entry->plan;  // Read under the entry latch; reference outlives it
                           // because published plans are immutable.
    }
    // kFailed: permanent once the budget is spent, otherwise re-claim the
    // entry (flip back to kPlanning under the mutex so exactly one waiter
    // becomes the re-planner; the rest resume waiting).
    if (entry->failed_attempts >= plan_retry_budget()) {
      hits_.Inc();
      throw std::runtime_error(entry->error);
    }
    entry->state.store(kPlanning, std::memory_order_release);
  }

  span.Arg("hit", 0.0);
  return PlanInto(entry.get(), source, dest);
}

bool PlanCache::Contains(const std::string& source_name, const std::string& dest_name) const {
  const Key key{source_name, dest_name};
  const Shard& shard = ShardFor(key);
  MutexLock lock(shard.mutex);
  auto it = shard.entries.find(key);
  return it != shard.entries.end() &&
         it->second->state.load(std::memory_order_acquire) == kReady;
}

void PlanCache::ReportExecutionFailure(const std::string& source_name,
                                       const std::string& dest_name) {
  execution_failures_.Inc();
  MutexLock lock(quarantine_mutex_);
  execution_failures_by_pair_[Key{source_name, dest_name}] += 1;
}

bool PlanCache::Quarantined(const std::string& source_name,
                            const std::string& dest_name) const {
  MutexLock lock(quarantine_mutex_);
  auto it = execution_failures_by_pair_.find(Key{source_name, dest_name});
  return it != execution_failures_by_pair_.end() && it->second >= execution_retry_budget();
}

size_t PlanCache::QuarantinedPairs() const {
  MutexLock lock(quarantine_mutex_);
  size_t count = 0;
  const int budget = execution_retry_budget();
  for (const auto& [key, failures] : execution_failures_by_pair_) {
    if (failures >= budget) {
      ++count;
    }
  }
  return count;
}

size_t PlanCache::ExecutionFailures() const {
  return static_cast<size_t>(execution_failures_.Value());
}

size_t PlanCache::Size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

void PlanCache::Save(const std::string& path) const {
  // Collect under the shard locks, then sort by key so the file contents are
  // deterministic — identical whether the cache was warmed serially or by a
  // pool (shard order is hash order, not key order).
  std::vector<std::pair<Key, Entry*>> ready_entries;
  std::vector<std::shared_ptr<Entry>> pinned;  // Keep entries alive while copying.
  for (const Shard& shard : shards_) {
    MutexLock lock(shard.mutex);
    for (const auto& [key, entry] : shard.entries) {
      if (entry->state.load(std::memory_order_acquire) == kReady) {
        ready_entries.emplace_back(key, entry.get());
        pinned.push_back(entry);
      }
    }
  }
  std::sort(ready_entries.begin(), ready_entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<TransformPlan> plans;
  plans.reserve(ready_entries.size());
  for (const auto& [key, entry] : ready_entries) {
    // Copy under the entry latch: a concurrent Load() may be overwriting the
    // published plan in place, and an unguarded copy here could tear. (This
    // was a real guarded-state violation the annotation migration surfaced —
    // the original code read entry->plan with no lock held. The shard lock is
    // already dropped, so shard → entry nesting never happens.)
    MutexLock entry_lock(entry->mutex);
    plans.push_back(entry->plan);
  }
  WritePlansToFile(path, plans);
}

void PlanCache::Load(const std::string& path) {
  for (TransformPlan& plan : ReadPlansFromFile(path)) {
    // Plan files are an external input: reject records whose shape is broken
    // (bad ids, negative or inconsistent costs) before they enter the cache.
    ThrowIfInvalid(VerifyPlanShape(plan), "PlanCache::Load: rejected plan '" + plan.source_name +
                                              "' -> '" + plan.dest_name + "' from " + path);
    const Key key{plan.source_name, plan.dest_name};
    Shard& shard = ShardFor(key);
    std::shared_ptr<Entry> entry;
    {
      MutexLock lock(shard.mutex);
      auto [it, inserted] = shard.entries.try_emplace(key);
      if (inserted) {
        it->second = std::make_shared<Entry>();
      }
      entry = it->second;
    }
    {
      MutexLock lock(entry->mutex);
      entry->plan = std::move(plan);
      entry->error.clear();
      entry->failed_attempts = 0;
      entry->state.store(kReady, std::memory_order_release);
    }
    entry->published.NotifyAll();
  }
}

}  // namespace optimus
