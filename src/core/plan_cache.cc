#include "src/core/plan_cache.h"

#include "src/core/plan_io.h"

namespace optimus {

void PlanCache::Save(const std::string& path) const {
  std::vector<TransformPlan> plans;
  plans.reserve(plans_.size());
  for (const auto& [key, plan] : plans_) {
    plans.push_back(plan);
  }
  WritePlansToFile(path, plans);
}

void PlanCache::Load(const std::string& path) {
  for (TransformPlan& plan : ReadPlansFromFile(path)) {
    auto key = std::make_pair(plan.source_name, plan.dest_name);
    plans_.insert_or_assign(std::move(key), std::move(plan));
  }
}

const TransformPlan& PlanCache::GetOrPlan(const Model& source, const Model& dest) {
  const auto key = std::make_pair(source.name(), dest.name());
  auto it = plans_.find(key);
  if (it != plans_.end()) {
    ++hits_;
    return it->second;
  }
  ++misses_;
  TransformPlan plan = PlanTransform(source, dest, *costs_, planner_);
  return plans_.emplace(key, std::move(plan)).first->second;
}

}  // namespace optimus
