#include "src/core/plan_cache.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "src/analysis/verifier.h"
#include "src/core/plan_io.h"

namespace optimus {

PlanCache::PlanCache(const CostModel* costs, PlannerKind planner)
    : costs_(costs), planner_(planner), verify_(VerificationEnabled()) {}

void PlanCache::CheckRegistration(const Model& model) const {
  if (verification()) {
    ThrowIfInvalid(VerifyModel(model), "PlanCache::WarmFor: model '" + model.name() + "'");
  }
}

const PlanCache::Shard& PlanCache::ShardFor(const Key& key) const {
  const size_t hash =
      std::hash<std::string>{}(key.first) * 31 + std::hash<std::string>{}(key.second);
  return shards_[hash % kNumShards];
}

const TransformPlan& PlanCache::GetOrPlan(const Model& source, const Model& dest) {
  const Key key{source.name(), dest.name()};
  Shard& shard = ShardFor(key);

  std::shared_ptr<Entry> entry;
  bool planner_thread = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.entries.try_emplace(key);
    if (inserted) {
      it->second = std::make_shared<Entry>();
      planner_thread = true;
    }
    entry = it->second;
  }

  if (planner_thread) {
    misses_.fetch_add(1, std::memory_order_relaxed);
    try {
      TransformPlan plan = PlanTransform(source, dest, *costs_, planner_);
      if (verification()) {
        ThrowIfInvalid(VerifyPlan(source, dest, plan, *costs_),
                       "PlanCache: plan verification failed for '" + source.name() + "' -> '" +
                           dest.name() + "'");
      }
      {
        std::lock_guard<std::mutex> lock(entry->mutex);
        entry->plan = std::move(plan);
        entry->ready.store(true, std::memory_order_release);
      }
      entry->published.notify_all();
      return entry->plan;
    } catch (const std::exception& e) {
      // Latch the failure so waiters (and later requesters) see the error
      // instead of blocking forever on a plan that will never be published.
      {
        std::lock_guard<std::mutex> lock(entry->mutex);
        entry->error = e.what();
        entry->failed.store(true, std::memory_order_release);
        entry->ready.store(true, std::memory_order_release);
      }
      entry->published.notify_all();
      throw;
    }
  }

  hits_.fetch_add(1, std::memory_order_relaxed);
  if (!entry->ready.load(std::memory_order_acquire)) {
    std::unique_lock<std::mutex> lock(entry->mutex);
    entry->published.wait(lock, [&] { return entry->ready.load(std::memory_order_acquire); });
  }
  if (entry->failed.load(std::memory_order_acquire)) {
    throw std::runtime_error(entry->error);
  }
  return entry->plan;
}

bool PlanCache::Contains(const std::string& source_name, const std::string& dest_name) const {
  const Key key{source_name, dest_name};
  const Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.entries.find(key);
  return it != shard.entries.end() && it->second->ready.load(std::memory_order_acquire) &&
         !it->second->failed.load(std::memory_order_acquire);
}

size_t PlanCache::Size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    total += shard.entries.size();
  }
  return total;
}

void PlanCache::Save(const std::string& path) const {
  // Collect under the shard locks, then sort by key so the file contents are
  // deterministic — identical whether the cache was warmed serially or by a
  // pool (shard order is hash order, not key order).
  std::vector<std::pair<Key, const Entry*>> ready_entries;
  std::vector<std::shared_ptr<Entry>> pinned;  // Keep entries alive while writing.
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, entry] : shard.entries) {
      if (entry->ready.load(std::memory_order_acquire) &&
          !entry->failed.load(std::memory_order_acquire)) {
        ready_entries.emplace_back(key, entry.get());
        pinned.push_back(entry);
      }
    }
  }
  std::sort(ready_entries.begin(), ready_entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<TransformPlan> plans;
  plans.reserve(ready_entries.size());
  for (const auto& [key, entry] : ready_entries) {
    plans.push_back(entry->plan);
  }
  WritePlansToFile(path, plans);
}

void PlanCache::Load(const std::string& path) {
  for (TransformPlan& plan : ReadPlansFromFile(path)) {
    // Plan files are an external input: reject records whose shape is broken
    // (bad ids, negative or inconsistent costs) before they enter the cache.
    ThrowIfInvalid(VerifyPlanShape(plan), "PlanCache::Load: rejected plan '" + plan.source_name +
                                              "' -> '" + plan.dest_name + "' from " + path);
    const Key key{plan.source_name, plan.dest_name};
    Shard& shard = ShardFor(key);
    std::shared_ptr<Entry> entry;
    {
      std::lock_guard<std::mutex> lock(shard.mutex);
      auto [it, inserted] = shard.entries.try_emplace(key);
      if (inserted) {
        it->second = std::make_shared<Entry>();
      }
      entry = it->second;
    }
    {
      std::lock_guard<std::mutex> lock(entry->mutex);
      entry->plan = std::move(plan);
      entry->error.clear();
      entry->failed.store(false, std::memory_order_release);
      entry->ready.store(true, std::memory_order_release);
    }
    entry->published.notify_all();
  }
}

}  // namespace optimus
