#include "src/core/munkres.h"

#include <limits>
#include <stdexcept>

namespace optimus {

AssignmentResult SolveAssignment(const std::vector<std::vector<double>>& cost) {
  const int k = static_cast<int>(cost.size());
  if (k == 0) {
    return {};
  }
  for (const auto& row : cost) {
    if (static_cast<int>(row.size()) != k) {
      throw std::invalid_argument("SolveAssignment: matrix must be square");
    }
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // 1-indexed arrays per the classic formulation. way[j] tracks the previous
  // column on the shortest augmenting path; u/v are the dual potentials.
  std::vector<double> u(static_cast<size_t>(k) + 1, 0.0);
  std::vector<double> v(static_cast<size_t>(k) + 1, 0.0);
  std::vector<int> match(static_cast<size_t>(k) + 1, 0);  // match[j] = row assigned to column j.
  std::vector<int> way(static_cast<size_t>(k) + 1, 0);

  for (int i = 1; i <= k; ++i) {
    match[0] = i;
    int j0 = 0;
    std::vector<double> min_cost(static_cast<size_t>(k) + 1, kInf);
    std::vector<bool> used(static_cast<size_t>(k) + 1, false);
    do {
      used[static_cast<size_t>(j0)] = true;
      const int i0 = match[static_cast<size_t>(j0)];
      double delta = kInf;
      int j1 = 0;
      for (int j = 1; j <= k; ++j) {
        if (used[static_cast<size_t>(j)]) {
          continue;
        }
        const double current = cost[static_cast<size_t>(i0) - 1][static_cast<size_t>(j) - 1] -
                               u[static_cast<size_t>(i0)] - v[static_cast<size_t>(j)];
        if (current < min_cost[static_cast<size_t>(j)]) {
          min_cost[static_cast<size_t>(j)] = current;
          way[static_cast<size_t>(j)] = j0;
        }
        if (min_cost[static_cast<size_t>(j)] < delta) {
          delta = min_cost[static_cast<size_t>(j)];
          j1 = j;
        }
      }
      for (int j = 0; j <= k; ++j) {
        if (used[static_cast<size_t>(j)]) {
          u[static_cast<size_t>(match[static_cast<size_t>(j)])] += delta;
          v[static_cast<size_t>(j)] -= delta;
        } else {
          min_cost[static_cast<size_t>(j)] -= delta;
        }
      }
      j0 = j1;
    } while (match[static_cast<size_t>(j0)] != 0);
    // Augment along the path.
    do {
      const int j1 = way[static_cast<size_t>(j0)];
      match[static_cast<size_t>(j0)] = match[static_cast<size_t>(j1)];
      j0 = j1;
    } while (j0 != 0);
  }

  AssignmentResult result;
  result.assignment.assign(static_cast<size_t>(k), -1);
  for (int j = 1; j <= k; ++j) {
    result.assignment[static_cast<size_t>(match[static_cast<size_t>(j)]) - 1] = j - 1;
  }
  for (int i = 0; i < k; ++i) {
    const size_t row = static_cast<size_t>(i);
    result.total_cost += cost[row][static_cast<size_t>(result.assignment[row])];
  }
  return result;
}

}  // namespace optimus
