// Graph-edit-distance cost matrix for inter-function model transformation
// (paper §4.4, Module 2; construction per Riesen & Bunke, 2009).
//
// For a source model with n ops and a destination with m ops, the matrix is
// (n+m) x (n+m):
//
//   top-left  (n x m): substitution cost — Reshape (if attributes differ)
//                      plus Replace of the destination weights; infinite when
//                      the op kinds differ (cross-kind transformation is not
//                      supported by the meta-operators).
//   top-right (n x n): deletion — Reduce cost on the diagonal, infinite off it.
//   bottom-left (m x m): insertion — Add cost on the diagonal, infinite off it.
//   bottom-right (m x n): zero.

#ifndef OPTIMUS_SRC_CORE_COST_MATRIX_H_
#define OPTIMUS_SRC_CORE_COST_MATRIX_H_

#include <vector>

#include "src/graph/model.h"
#include "src/runtime/cost_model.h"

namespace optimus {

// Sentinel for forbidden assignments. Large but finite so sums stay ordered.
inline constexpr double kForbiddenCost = 1e12;

struct TransformCostMatrix {
  // Source / destination op ids in topological order; rows 0..n-1 of the
  // matrix correspond to source_ids, columns 0..m-1 to dest_ids.
  std::vector<OpId> source_ids;
  std::vector<OpId> dest_ids;
  // Row-major (n+m) x (n+m) costs.
  std::vector<std::vector<double>> costs;

  size_t n() const { return source_ids.size(); }
  size_t m() const { return dest_ids.size(); }
  size_t Size() const { return n() + m(); }
};

// Substitution cost of transforming source op `src` into destination op `dst`
// via Reshape (if needed) + Replace; kForbiddenCost if kinds differ.
double SubstitutionCost(const Operation& src, const Operation& dst, const CostModel& costs);

// Builds the full edit-distance cost matrix for the pair of models.
TransformCostMatrix BuildCostMatrix(const Model& source, const Model& dest,
                                    const CostModel& costs);

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_COST_MATRIX_H_
