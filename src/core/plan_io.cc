#include "src/core/plan_io.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace optimus {

namespace {

constexpr char kRecordSeparator[] = "---";

void ExpectTag(std::istringstream* line, const char* tag) {
  std::string token;
  *line >> token;
  if (token != tag) {
    throw std::runtime_error(std::string("DeserializePlan: expected '") + tag + "', got '" +
                             token + "'");
  }
}

}  // namespace

std::string SerializePlan(const TransformPlan& plan) {
  std::ostringstream out;
  out.precision(17);
  out << "plan source " << plan.source_name << " dest " << plan.dest_name << "\n";
  out << "cost " << plan.total_cost << " planning " << plan.planning_seconds << "\n";
  out << "matched " << plan.mapping.matched.size();
  for (const auto& [src, dst] : plan.mapping.matched) {
    out << " " << src << ":" << dst;
  }
  out << "\nreduced " << plan.mapping.reduced.size();
  for (const OpId id : plan.mapping.reduced) {
    out << " " << id;
  }
  out << "\nadded " << plan.mapping.added.size();
  for (const OpId id : plan.mapping.added) {
    out << " " << id;
  }
  out << "\nsteps " << plan.steps.size() << "\n";
  for (const MetaOp& step : plan.steps) {
    out << static_cast<int>(step.kind) << " " << step.source_id << " " << step.dest_id << " "
        << step.edge.first << " " << step.edge.second << " " << (step.edge_add ? 1 : 0) << " "
        << step.cost << "\n";
  }
  return out.str();
}

TransformPlan DeserializePlan(const std::string& text) {
  std::istringstream in(text);
  TransformPlan plan;
  std::string line;

  if (!std::getline(in, line)) {
    throw std::runtime_error("DeserializePlan: empty input");
  }
  {
    std::istringstream header(line);
    ExpectTag(&header, "plan");
    ExpectTag(&header, "source");
    header >> plan.source_name;
    ExpectTag(&header, "dest");
    header >> plan.dest_name;
  }
  if (!std::getline(in, line)) {
    throw std::runtime_error("DeserializePlan: missing cost line");
  }
  {
    std::istringstream costs(line);
    ExpectTag(&costs, "cost");
    costs >> plan.total_cost;
    ExpectTag(&costs, "planning");
    costs >> plan.planning_seconds;
  }

  auto read_ids = [&](const char* tag, std::vector<OpId>* ids) {
    if (!std::getline(in, line)) {
      throw std::runtime_error(std::string("DeserializePlan: missing ") + tag);
    }
    std::istringstream row(line);
    ExpectTag(&row, tag);
    size_t count = 0;
    row >> count;
    for (size_t i = 0; i < count; ++i) {
      OpId id = kInvalidOpId;
      if (!(row >> id)) {
        throw std::runtime_error(std::string("DeserializePlan: truncated ") + tag);
      }
      ids->push_back(id);
    }
  };

  if (!std::getline(in, line)) {
    throw std::runtime_error("DeserializePlan: missing matched line");
  }
  {
    std::istringstream row(line);
    ExpectTag(&row, "matched");
    size_t count = 0;
    row >> count;
    for (size_t i = 0; i < count; ++i) {
      std::string pair;
      if (!(row >> pair)) {
        throw std::runtime_error("DeserializePlan: truncated matched list");
      }
      const size_t colon = pair.find(':');
      if (colon == std::string::npos) {
        throw std::runtime_error("DeserializePlan: malformed matched pair " + pair);
      }
      plan.mapping.matched.emplace_back(std::stoi(pair.substr(0, colon)),
                                        std::stoi(pair.substr(colon + 1)));
    }
  }
  read_ids("reduced", &plan.mapping.reduced);
  read_ids("added", &plan.mapping.added);

  if (!std::getline(in, line)) {
    throw std::runtime_error("DeserializePlan: missing steps line");
  }
  size_t step_count = 0;
  {
    std::istringstream row(line);
    ExpectTag(&row, "steps");
    row >> step_count;
  }
  for (size_t i = 0; i < step_count; ++i) {
    if (!std::getline(in, line)) {
      throw std::runtime_error("DeserializePlan: truncated steps");
    }
    std::istringstream row(line);
    MetaOp step;
    int kind = 0;
    int edge_add = 0;
    if (!(row >> kind >> step.source_id >> step.dest_id >> step.edge.first >> step.edge.second >>
          edge_add >> step.cost)) {
      throw std::runtime_error("DeserializePlan: malformed step " + line);
    }
    if (kind < 0 || kind >= kNumMetaOpKinds) {
      throw std::runtime_error("DeserializePlan: bad meta-op kind");
    }
    step.kind = static_cast<MetaOpKind>(kind);
    step.edge_add = edge_add != 0;
    plan.steps.push_back(step);
  }
  return plan;
}

void WritePlans(std::ostream& out, const std::vector<TransformPlan>& plans) {
  for (const TransformPlan& plan : plans) {
    out << SerializePlan(plan) << kRecordSeparator << "\n";
  }
}

std::vector<TransformPlan> ReadPlans(std::istream& in) {
  std::vector<TransformPlan> plans;
  std::string record;
  std::string line;
  while (std::getline(in, line)) {
    if (line == kRecordSeparator) {
      if (!record.empty()) {
        plans.push_back(DeserializePlan(record));
        record.clear();
      }
      continue;
    }
    record += line;
    record += "\n";
  }
  if (!record.empty()) {
    plans.push_back(DeserializePlan(record));
  }
  return plans;
}

void WritePlansToFile(const std::string& path, const std::vector<TransformPlan>& plans) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("WritePlansToFile: cannot open " + path);
  }
  WritePlans(out, plans);
}

std::vector<TransformPlan> ReadPlansFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ReadPlansFromFile: cannot open " + path);
  }
  return ReadPlans(in);
}

}  // namespace optimus
