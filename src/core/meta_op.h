// The five in-container transformation meta-operators (paper §4.3) and the
// transformation plan — a sequence of meta-operators turning one model's
// in-memory representation into another's.

#ifndef OPTIMUS_SRC_CORE_META_OP_H_
#define OPTIMUS_SRC_CORE_META_OP_H_

#include <array>
#include <string>
#include <vector>

#include "src/graph/model.h"

namespace optimus {

enum class MetaOpKind : uint8_t {
  kReplace = 0,  // Overwrite an op's weights with the destination's.
  kReshape,      // Adjust an op's properties (kernel size, channels, ...).
  kReduce,       // Delete a source op with no destination counterpart.
  kAdd,          // Create a destination op with no source counterpart.
  kEdge,         // Add/remove/redirect a data-flow edge.
};

inline constexpr int kNumMetaOpKinds = 5;

const char* MetaOpKindName(MetaOpKind kind);

// One planned meta-operator application.
struct MetaOp {
  MetaOpKind kind = MetaOpKind::kReplace;
  // Op in the source model acted on (Replace/Reshape/Reduce).
  OpId source_id = kInvalidOpId;
  // Op in the destination model targeted (Replace/Reshape/Add).
  OpId dest_id = kInvalidOpId;
  // For kEdge: the edge in destination id space, and whether it is added
  // (true) or removed (false).
  Edge edge{kInvalidOpId, kInvalidOpId};
  bool edge_add = true;
  // Estimated execution cost (seconds), from the cost model.
  double cost = 0.0;
};

// An op-level assignment between two models.
struct OpMapping {
  std::vector<std::pair<OpId, OpId>> matched;  // (source op, destination op).
  std::vector<OpId> reduced;                   // Source ops to delete.
  std::vector<OpId> added;                     // Destination ops to create.
};

// A complete transformation strategy from a source to a destination model.
struct TransformPlan {
  std::string source_name;
  std::string dest_name;
  // The op assignment the steps implement (kept for the executor: matched
  // weight-free ops with identical attributes need no step but still carry
  // over).
  OpMapping mapping;
  std::vector<MetaOp> steps;
  // Estimated execution cost: sum of step costs.
  double total_cost = 0.0;
  // Wall-clock seconds the planner itself took (Table 1's "Planning").
  double planning_seconds = 0.0;

  int CountOf(MetaOpKind kind) const;
  double CostOf(MetaOpKind kind) const;

  // Estimated cost per meta-operator kind, indexed by MetaOpKind.
  std::array<double, kNumMetaOpKinds> CostBreakdown() const;

  std::string ToString() const;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_META_OP_H_
