#include "src/core/meta_op.h"

#include <sstream>

namespace optimus {

const char* MetaOpKindName(MetaOpKind kind) {
  switch (kind) {
    case MetaOpKind::kReplace:
      return "Replace";
    case MetaOpKind::kReshape:
      return "Reshape";
    case MetaOpKind::kReduce:
      return "Reduce";
    case MetaOpKind::kAdd:
      return "Add";
    case MetaOpKind::kEdge:
      return "Edge";
  }
  return "Unknown";
}

int TransformPlan::CountOf(MetaOpKind kind) const {
  int count = 0;
  for (const MetaOp& step : steps) {
    if (step.kind == kind) {
      ++count;
    }
  }
  return count;
}

double TransformPlan::CostOf(MetaOpKind kind) const {
  double cost = 0.0;
  for (const MetaOp& step : steps) {
    if (step.kind == kind) {
      cost += step.cost;
    }
  }
  return cost;
}

std::array<double, kNumMetaOpKinds> TransformPlan::CostBreakdown() const {
  std::array<double, kNumMetaOpKinds> breakdown{};
  for (const MetaOp& step : steps) {
    breakdown[static_cast<size_t>(step.kind)] += step.cost;
  }
  return breakdown;
}

std::string TransformPlan::ToString() const {
  std::ostringstream out;
  out << "TransformPlan " << source_name << " -> " << dest_name << " (cost=" << total_cost
      << "s, steps=" << steps.size() << ")";
  for (int i = 0; i < kNumMetaOpKinds; ++i) {
    const MetaOpKind kind = static_cast<MetaOpKind>(i);
    out << " " << MetaOpKindName(kind) << "=" << CountOf(kind);
  }
  return out.str();
}

}  // namespace optimus
