#include "src/core/node_pool.h"

#include <algorithm>
#include <stdexcept>

namespace optimus {

NodePool::NodePool(int num_nodes, int containers_per_node)
    : capacity_per_node_(containers_per_node) {
  if (num_nodes < 1 || containers_per_node < 1) {
    throw std::invalid_argument("NodePool: need at least one node and one container");
  }
  nodes_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>());
  }
}

NodePool::LockedNode NodePool::Lock(int node_index) NO_THREAD_SAFETY_ANALYSIS {
  Node* node = nodes_.at(static_cast<size_t>(node_index)).get();
  node->mutex.Lock();  // Ownership transfers to the returned view.
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  return LockedNode(node, node_index, capacity_per_node_);
}

RealContainer* NodePool::LockedNode::FindWarm(const std::string& function) {
  for (RealContainer& container : node_->containers) {
    if (container.function == function) {
      return &container;
    }
  }
  return nullptr;
}

bool NodePool::LockedNode::HasIdleContainer(double now, double idle_threshold) const {
  for (const RealContainer& container : node_->containers) {
    if (now - container.last_active >= idle_threshold) {
      return true;
    }
  }
  return false;
}

void NodePool::LockedNode::ReapExpired(double now, double keep_alive) {
  auto& containers = node_->containers;
  for (auto it = containers.begin(); it != containers.end();) {
    if (now - it->last_active >= keep_alive) {
      RecycleArena(std::move(it->instance.arena));
      it = containers.erase(it);
    } else {
      ++it;
    }
  }
}

void NodePool::LockedNode::RemoveById(ContainerId id) {
  auto& containers = node_->containers;
  for (auto it = containers.begin(); it != containers.end();) {
    if (it->id == id) {
      RecycleArena(std::move(it->instance.arena));
      it = containers.erase(it);
    } else {
      ++it;
    }
  }
}

void NodePool::LockedNode::EvictLeastRecentlyActive() {
  auto& containers = node_->containers;
  if (containers.empty()) {
    return;
  }
  const auto victim = std::min_element(containers.begin(), containers.end(),
                                       [](const RealContainer& a, const RealContainer& b) {
                                         return a.last_active < b.last_active;
                                       });
  RecycleArena(std::move(victim->instance.arena));
  containers.erase(victim);
}

std::shared_ptr<TensorArena> NodePool::LockedNode::AcquireArena() {
  auto& spares = node_->spare_arenas;
  if (!spares.empty()) {
    std::shared_ptr<TensorArena> arena = std::move(spares.back());
    spares.pop_back();
    arena->Reset();
    return arena;
  }
  return std::make_shared<TensorArena>();
}

void NodePool::LockedNode::RecycleArena(std::shared_ptr<TensorArena> arena) {
  if (arena == nullptr || static_cast<int>(node_->spare_arenas.size()) >= capacity_) {
    return;
  }
  node_->spare_arenas.push_back(std::move(arena));
}

RealContainer* NodePool::LockedNode::Adopt(RealContainer&& container) {
  node_->containers.push_back(std::move(container));
  return &node_->containers.back();
}

size_t NodePool::TotalContainers() const {
  size_t count = 0;
  for (const std::unique_ptr<Node>& node : nodes_) {
    MutexLock lock(node->mutex);
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    count += node->containers.size();
  }
  return count;
}

void NodePool::ForEachContainer(
    const std::function<void(int, const RealContainer&)>& visit) const {
  for (size_t n = 0; n < nodes_.size(); ++n) {
    MutexLock lock(nodes_[n]->mutex);
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    for (const RealContainer& container : nodes_[n]->containers) {
      visit(static_cast<int>(n), container);
    }
  }
}

}  // namespace optimus
