#include "src/core/node_pool.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace optimus {

const char* NodeLifecycleName(NodeLifecycle state) {
  switch (state) {
    case NodeLifecycle::kUp:
      return "up";
    case NodeLifecycle::kDraining:
      return "draining";
    case NodeLifecycle::kDown:
      return "down";
    case NodeLifecycle::kReviving:
      return "reviving";
  }
  return "unknown";
}

NodePool::NodePool(int num_nodes, int containers_per_node)
    : capacity_per_node_(containers_per_node) {
  if (num_nodes < 1 || containers_per_node < 1) {
    throw std::invalid_argument("NodePool: need at least one node and one container");
  }
  nodes_.reserve(static_cast<size_t>(num_nodes));
  for (int i = 0; i < num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>());
  }
}

NodePool::LockedNode NodePool::Lock(int node_index) NO_THREAD_SAFETY_ANALYSIS {
  Node* node = nodes_.at(static_cast<size_t>(node_index)).get();
  node->mutex.Lock();  // Ownership transfers to the returned view.
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  return LockedNode(node, node_index, capacity_per_node_);
}

RealContainer* NodePool::LockedNode::FindWarm(const std::string& function) {
  for (RealContainer& container : node_->containers) {
    if (container.function == function) {
      return &container;
    }
  }
  return nullptr;
}

bool NodePool::LockedNode::HasIdleContainer(double now, double idle_threshold) const {
  for (const RealContainer& container : node_->containers) {
    if (now - container.last_active >= idle_threshold) {
      return true;
    }
  }
  return false;
}

size_t NodePool::LockedNode::ReapExpired(double now, double keep_alive) {
  auto& containers = node_->containers;
  size_t prewarmed_waste = 0;
  for (auto it = containers.begin(); it != containers.end();) {
    if (now - it->last_active >= keep_alive) {
      if (it->prewarmed) {
        ++prewarmed_waste;  // A speculation that expired before any request.
      }
      RecycleArena(std::move(it->instance.arena));
      it = containers.erase(it);
    } else {
      ++it;
    }
  }
  return prewarmed_waste;
}

void NodePool::LockedNode::RemoveById(ContainerId id) {
  auto& containers = node_->containers;
  for (auto it = containers.begin(); it != containers.end();) {
    if (it->id == id) {
      RecycleArena(std::move(it->instance.arena));
      it = containers.erase(it);
    } else {
      ++it;
    }
  }
}

bool NodePool::LockedNode::EvictLeastRecentlyActive() {
  auto& containers = node_->containers;
  if (containers.empty()) {
    return false;
  }
  const auto victim = std::min_element(containers.begin(), containers.end(),
                                       [](const RealContainer& a, const RealContainer& b) {
                                         return a.last_active < b.last_active;
                                       });
  const bool prewarmed_waste = victim->prewarmed;
  RecycleArena(std::move(victim->instance.arena));
  containers.erase(victim);
  return prewarmed_waste;
}

std::shared_ptr<TensorArena> NodePool::LockedNode::AcquireArena() {
  auto& spares = node_->spare_arenas;
  if (!spares.empty()) {
    std::shared_ptr<TensorArena> arena = std::move(spares.back());
    spares.pop_back();
    arena->Reset();
    return arena;
  }
  return std::make_shared<TensorArena>();
}

void NodePool::LockedNode::RecycleArena(std::shared_ptr<TensorArena> arena) {
  // A dead owner banks nothing: once the node is Down (or finalizing), its
  // spare pool is being reclaimed, so the arena is simply dropped rather than
  // leaked into a pool nobody will ever drain (DESIGN.md §16).
  if (arena == nullptr || static_cast<int>(node_->spare_arenas.size()) >= capacity_ ||
      node_->lifecycle.load(std::memory_order_acquire) == NodeLifecycle::kDown) {
    return;
  }
  node_->spare_arenas.push_back(std::move(arena));
}

RealContainer* NodePool::LockedNode::Adopt(RealContainer&& container) {
  node_->containers.push_back(std::move(container));
  // First container on a Reviving node: the node is warm again.
  NodeLifecycle expected = NodeLifecycle::kReviving;
  node_->lifecycle.compare_exchange_strong(expected, NodeLifecycle::kUp,
                                           std::memory_order_acq_rel);
  return &node_->containers.back();
}

int NodePool::AcceptingNodes() const {
  int count = 0;
  for (int i = 0; i < num_nodes(); ++i) {
    if (Accepting(i)) {
      ++count;
    }
  }
  return count;
}

bool NodePool::RevokeNode(int node_index, double grace_seconds, double now) {
  Node* node = nodes_.at(static_cast<size_t>(node_index)).get();
  MutexLock lock(node->mutex);
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  const NodeLifecycle state = node->lifecycle.load(std::memory_order_acquire);
  if (state == NodeLifecycle::kDraining || state == NodeLifecycle::kDown) {
    return false;  // Already revoked.
  }
  revocations_.fetch_add(1, std::memory_order_relaxed);
  if (grace_seconds <= 0.0) {
    ReclaimLocked(node);
    return true;
  }
  node->drain_deadline.store(now + grace_seconds, std::memory_order_release);
  node->lifecycle.store(NodeLifecycle::kDraining, std::memory_order_release);
  draining_nodes_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

size_t NodePool::FinalizeExpiredDrains(double now) {
  if (DrainingNodes() == 0) {
    return 0;  // Fast path: nothing draining, one relaxed load.
  }
  size_t reclaimed = 0;
  for (const std::unique_ptr<Node>& owned : nodes_) {
    Node* node = owned.get();
    if (node->lifecycle.load(std::memory_order_acquire) != NodeLifecycle::kDraining ||
        now < node->drain_deadline.load(std::memory_order_acquire)) {
      continue;
    }
    MutexLock lock(node->mutex);
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    // Re-check under the lock: a racing finalize may have beaten us here.
    if (node->lifecycle.load(std::memory_order_acquire) != NodeLifecycle::kDraining ||
        now < node->drain_deadline.load(std::memory_order_acquire)) {
      continue;
    }
    reclaimed += ReclaimLocked(node);
    draining_nodes_.fetch_sub(1, std::memory_order_relaxed);
  }
  return reclaimed;
}

bool NodePool::ReviveNode(int node_index) {
  Node* node = nodes_.at(static_cast<size_t>(node_index)).get();
  MutexLock lock(node->mutex);
  lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
  if (node->lifecycle.load(std::memory_order_acquire) != NodeLifecycle::kDown) {
    return false;
  }
  node->drain_deadline.store(std::numeric_limits<double>::infinity(),
                             std::memory_order_release);
  node->lifecycle.store(NodeLifecycle::kReviving, std::memory_order_release);
  revives_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

std::vector<NodeLifecycle> NodePool::LifecycleSnapshot() const {
  std::vector<NodeLifecycle> snapshot;
  snapshot.reserve(nodes_.size());
  for (const std::unique_ptr<Node>& node : nodes_) {
    snapshot.push_back(node->lifecycle.load(std::memory_order_acquire));
  }
  return snapshot;
}

size_t NodePool::ReclaimLocked(Node* node) {
  const size_t reclaimed = node->containers.size();
  node->containers.clear();
  node->spare_arenas.clear();
  node->drain_deadline.store(std::numeric_limits<double>::infinity(),
                             std::memory_order_release);
  node->lifecycle.store(NodeLifecycle::kDown, std::memory_order_release);
  reclaimed_containers_.fetch_add(reclaimed, std::memory_order_relaxed);
  return reclaimed;
}

size_t NodePool::TotalContainers() const {
  size_t count = 0;
  for (const std::unique_ptr<Node>& node : nodes_) {
    MutexLock lock(node->mutex);
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    count += node->containers.size();
  }
  return count;
}

void NodePool::ForEachContainer(
    const std::function<void(int, const RealContainer&)>& visit) const {
  for (size_t n = 0; n < nodes_.size(); ++n) {
    MutexLock lock(nodes_[n]->mutex);
    lock_acquisitions_.fetch_add(1, std::memory_order_relaxed);
    for (const RealContainer& container : nodes_[n]->containers) {
      visit(static_cast<int>(n), container);
    }
  }
}

}  // namespace optimus
