// An in-process serverless ML inference platform — the prototype of §7.
//
// OptimusPlatform plays the role of the gateway + scheduler services: clients
// Deploy() models (stored serialized in the "Docker volume" repository; plans
// are pre-computed and cached at registration, §4.4 Module 3) and Invoke()
// functions. Each invocation is routed to a worker node and served from a
// real container holding a real ModelInstance:
//
//   * warm start      — an idle container already holds the model;
//   * transformation  — a sufficiently idle container of another function is
//                       repurposed by executing the cached meta-operator plan
//                       (with the safeguard's scratch fallback);
//   * cold start      — a fresh container is created and the model loads from
//                       scratch.
//
// Time is a caller-driven virtual clock (advanced by the `now` argument), so
// idle-threshold and keep-alive behaviour is deterministic; the *content* of
// containers (weights, inference results) is fully real.
//
// Thread safety: Deploy() and Invoke() are safe to call concurrently from any
// number of threads. The locking discipline (also documented in DESIGN.md):
//   * `repository_mutex_` (shared_mutex) guards the model repository — shared
//     for Invoke's lookup, exclusive for Deploy's insert. Models are
//     immutable once registered and std::map nodes are stable, so plain
//     `const Model&` references remain valid outside the lock.
//   * each Node carries its own mutex guarding that node's container state;
//     invocations routed to different nodes never contend.
//   * the start-type counters and the container-id allocator are atomics; the
//     virtual clock is an atomic advanced by a CAS-max loop.
//   * PlanCache synchronizes itself (sharded mutexes + in-flight latches).

#ifndef OPTIMUS_SRC_CORE_PLATFORM_H_
#define OPTIMUS_SRC_CORE_PLATFORM_H_

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"
#include "src/container/container.h"
#include "src/core/transformer.h"
#include "src/graph/serialization.h"

namespace optimus {

struct PlatformOptions {
  int num_nodes = 1;
  int containers_per_node = 4;
  double idle_threshold = 60.0;
  double keep_alive = 600.0;
  PlannerKind planner = PlannerKind::kGroup;
  // Pre-plan transformations against all registered models at Deploy() time
  // (the paper's planning-strategy caching). Disable to plan lazily.
  bool warm_plan_cache = true;
  // Workers used for deploy-time plan warming. Values > 1 fan the pair
  // plannings out across a pool; 0 or 1 keeps the serial path. The cache
  // contents are identical either way.
  int warm_threads = 0;
};

// Result of one invocation.
struct InvokeResult {
  std::vector<float> output;       // Real inference output.
  StartType start = StartType::kCold;
  double estimated_latency = 0.0;  // Cost-model latency of the chosen path
                                   // (init + load/transform + compute).
  std::string donor_function;      // Set when a transformation occurred.
  int node = -1;
};

class OptimusPlatform {
 public:
  OptimusPlatform(const CostModel* costs, const PlatformOptions& options);

  // Registers a function. The model is serialized into the repository; if the
  // structure carries no weights, deterministic weights are materialized.
  // Throws std::invalid_argument on duplicate names.
  void Deploy(const std::string& function, const Model& model);

  // Registers a function from a serialized model file.
  void DeployFile(const std::string& function, const ModelFile& file);

  // Serves one inference request at virtual time `now` (seconds, monotone
  // non-decreasing across calls). Throws std::out_of_range for unknown
  // functions and std::invalid_argument if `now` moves backwards (i.e. is
  // smaller than a `now` some earlier-sequenced invocation already used).
  InvokeResult Invoke(const std::string& function, const std::vector<float>& input, double now);

  // Operational introspection.
  size_t NumFunctions() const;
  size_t NumLiveContainers() const;
  const PlanCache& plan_cache() const { return transformer_->cache(); }
  size_t WarmStarts() const { return warm_starts_.load(std::memory_order_relaxed); }
  size_t Transforms() const { return transforms_.load(std::memory_order_relaxed); }
  size_t ColdStarts() const { return cold_starts_.load(std::memory_order_relaxed); }

 private:
  struct RealContainer {
    ContainerId id = -1;
    std::string function;
    double last_active = 0.0;
    ModelInstance instance;
  };

  // Node state is only touched under the node's mutex. Nodes live behind
  // unique_ptr so the vector can be sized despite the mutex member.
  struct Node {
    std::mutex mutex;
    std::vector<RealContainer> containers;
  };

  void ReapExpired(Node* node, double now);
  int PlaceFunction(const std::string& function) const;
  void AdvanceClock(double now);

  const CostModel* costs_;
  PlatformOptions options_;
  Loader loader_;
  std::unique_ptr<Transformer> transformer_;
  std::unique_ptr<ThreadPool> warm_pool_;  // Present when warm_threads > 1.
  mutable std::shared_mutex repository_mutex_;
  std::map<std::string, Model> repository_;  // Loaded (weighted) models.
  std::vector<std::unique_ptr<Node>> nodes_;
  std::atomic<ContainerId> next_container_id_{0};
  std::atomic<double> last_now_{0.0};
  std::atomic<size_t> warm_starts_{0};
  std::atomic<size_t> transforms_{0};
  std::atomic<size_t> cold_starts_{0};
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_PLATFORM_H_
