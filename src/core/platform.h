// An in-process serverless ML inference platform — the prototype of §7.
//
// OptimusPlatform plays the role of the gateway + scheduler services: clients
// Deploy() models (stored serialized in the "Docker volume" repository; plans
// are pre-computed and cached at registration, §4.4 Module 3) and Invoke()
// functions. Each invocation is routed to a worker node and served from a
// real container holding a real ModelInstance:
//
//   * warm start      — an idle container already holds the model;
//   * transformation  — a sufficiently idle container of another function is
//                       repurposed by executing the cached meta-operator plan
//                       (with the safeguard's scratch fallback);
//   * cold start      — a fresh container is created and the model loads from
//                       scratch.
//
// Routing (DESIGN.md §13) follows the policy/mechanism split: the platform is
// a thin router over two subsystems. The *placement* subsystem
// (src/placement) owns the function→node mapping as a versioned,
// atomically-swappable table computed by the configured PlacementPolicy
// (hash / load_based / the §5.1 model-sharing K-medoids scheme); the
// *NodePool* (src/core/node_pool.h) owns container state behind per-node
// locks. Invoke() consults the table for an O(1) primary-node decision and
// locks only that node; neighbor nodes are probed (one lock at a time) only
// under capacity pressure — a full primary with no idle transform donor.
// Deploy() slots the new function into the table incrementally, and a
// background rebalancer recomputes the K-medoids placement from demand series
// accumulated out of the telemetry registry's per-function invoke counters.
//
// Time is a caller-driven virtual clock (advanced by the `now` argument), so
// idle-threshold and keep-alive behaviour is deterministic; the *content* of
// containers (weights, inference results) is fully real.
//
// Clock semantics: the virtual clock is the CAS-max over every `now` any
// invocation has presented. A caller whose `now` is older than the clock
// (normal under concurrency — threads race between reading their timestamp
// and reaching the platform) is *clamped forward*: the invocation behaves as
// if it arrived at the newest observed time. Time never moves backwards and
// stale timestamps are never an error.
//
// Failure semantics (DESIGN.md §11): Invoke()/TryInvoke() never leak raw
// internal exceptions. Every failure is classified by the ErrorCode taxonomy
// (src/common/status.h). Transformation is transactional at the container
// level: if plan execution fails mid-plan, the poisoned container is
// destroyed, the failure is charged to the plan cache's quarantine, and the
// request falls back to a scratch (cold) load — the client sees a slower
// start, not an error, unless the fallback itself fails (kUnavailable).
// A failed placement recompute (the `placement.rebalance` fault point)
// leaves the previous table serving.
//
// Thread safety: Deploy() and Invoke() are safe to call concurrently from any
// number of threads. The locking discipline (also documented in DESIGN.md §15,
// and enforced by the annotated sync primitives + the debug lock-rank
// validator):
//   * `repository_mutex_` (SharedMutex, rank kRepository) guards the model
//     repository — shared for Invoke's lookup, exclusive for Deploy's insert.
//     Models are immutable once registered and std::map nodes are stable, so
//     plain `const Model&` references remain valid outside the lock.
//   * each NodePool node carries its own mutex guarding that node's container
//     state; invocations routed to different nodes never contend, and the
//     invoke path holds at most one node lock at a time.
//   * the placement table is read lock-free (atomic shared_ptr acquire) and
//     swapped wholesale; readers see the old or the new table, never a torn
//     one (DESIGN.md §13).
//   * the start-type counters are registry atomics; the virtual clock is an
//     atomic advanced by a CAS-max loop.
//   * PlanCache synchronizes itself (sharded mutexes + in-flight latches).

#ifndef OPTIMUS_SRC_CORE_PLATFORM_H_
#define OPTIMUS_SRC_CORE_PLATFORM_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/sync.h"
#include "src/common/thread_pool.h"
#include "src/container/container.h"
#include "src/core/node_pool.h"
#include "src/core/transformer.h"
#include "src/graph/serialization.h"
#include "src/placement/manager.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "src/warming/policy.h"

namespace optimus {

struct PlatformOptions {
  int num_nodes = 1;
  int containers_per_node = 4;
  double idle_threshold = 60.0;
  double keep_alive = 600.0;
  PlannerKind planner = PlannerKind::kGroup;
  // Pre-plan transformations against all registered models at Deploy() time
  // (the paper's planning-strategy caching). Disable to plan lazily.
  bool warm_plan_cache = true;
  // Workers used for deploy-time plan warming. Values > 1 fan the pair
  // plannings out across a pool; 0 or 1 keeps the serial path. The cache
  // contents are identical either way.
  int warm_threads = 0;
  // Request tracing (DESIGN.md §12): completed traces retained in the
  // collector's ring, the sampling period (~1/period of requests traced; 0
  // disables sampling entirely), and the sampler's deterministic seed.
  size_t trace_capacity = 256;
  uint64_t trace_sample_period = 64;
  uint64_t trace_seed = 0x7ace;
  // Placement policy (§5.1) behind the function→node table. Defaults to the
  // model sharing-aware K-medoids scheme.
  PlacementOptions placement;
  // Virtual seconds between demand-driven placement recomputes; 0 disables
  // the background rebalancer (deploy-incremental and manual RebalanceNow()
  // updates still run).
  double rebalance_interval = 0.0;
  // Neighbor nodes probed (for a warm container or a free slot) when the
  // primary node is under capacity pressure; 0 pins requests to the primary.
  int route_fallback_breadth = 1;
  // Demand-history slots retained for the §5.1 correlation term.
  size_t demand_slots = 32;
  // Forecast-driven warming (DESIGN.md §17). Disabled by default; when
  // enabled with warming.interval > 0 a background loop runs one warming
  // cycle per interval of virtual time (driven by invoke timestamps, like
  // the rebalancer). With interval <= 0 cycles only run via WarmNow().
  WarmingOptions warming;
};

// Result of one invocation.
struct InvokeResult {
  std::vector<float> output;       // Real inference output.
  StartType start = StartType::kCold;
  double estimated_latency = 0.0;  // Cost-model latency of the chosen path
                                   // (init + load/transform + compute).
  std::string donor_function;      // Set when a transformation occurred.
  int node = -1;
  // True when the request was served by the scratch fallback after a failed
  // (aborted mid-plan) transformation; `start` is kCold in that case.
  bool transform_fallback = false;
};

// Snapshot of the platform's monotone counters. Success counters
// (warm/transform/cold) are incremented only after inference produced output,
// so warm + transform + cold equals the number of successful invocations.
struct PlatformCounters {
  size_t warm_starts = 0;
  size_t transforms = 0;
  size_t cold_starts = 0;
  // TransformOrLoad aborted inside a donor container; the container was
  // destroyed (each failure destroys exactly one container).
  size_t transform_failures = 0;
  // Requests served by the scratch fallback after such a failure.
  size_t transform_fallbacks = 0;
  // Donor candidates skipped because planning/verification threw in Decide.
  size_t decide_failures = 0;
  // TryInvoke calls that returned a non-OK status.
  size_t failed_invokes = 0;
  // Node lifecycle (DESIGN.md §16): revocations issued, Down nodes revived,
  // containers reclaimed by kills/finalized drains, and invokes re-homed
  // because their routed node was no longer accepting.
  size_t node_revocations = 0;
  size_t node_revives = 0;
  size_t reclaimed_containers = 0;
  size_t rerouted_invokes = 0;
  int draining_nodes = 0;
  int accepting_nodes = 0;
  // Forecast-driven warming (DESIGN.md §17) — a distinct accounting bucket:
  // speculative transforms/loads never touch the warm/transform/cold success
  // counters above, so `warm + transform + cold == successful invokes` keeps
  // holding with warming enabled. Conservation within the bucket:
  //   warming_prewarms_cold + warming_prewarms_transform
  //     == warming_hits + warming_waste + (live pre-warmed containers).
  size_t warming_cycles = 0;
  size_t warming_orders = 0;
  size_t warming_prewarms_cold = 0;       // Speculative scratch loads.
  size_t warming_prewarms_transform = 0;  // Speculative transformations.
  size_t warming_hits = 0;    // Pre-warmed container served its first request.
  size_t warming_misses = 0;  // Non-warm start while warming was enabled.
  size_t warming_waste = 0;   // Pre-warmed container died unused.
  size_t warming_skipped = 0;  // Orders dropped (no donor, already warm, ...).
  size_t warming_failures = 0;  // Orders aborted by faults/transform errors.
};

class OptimusPlatform {
 public:
  OptimusPlatform(const CostModel* costs, const PlatformOptions& options);
  ~OptimusPlatform();

  // Registers a function. The model is serialized into the repository; if the
  // structure carries no weights, deterministic weights are materialized.
  // Throws std::invalid_argument on duplicate names.
  void Deploy(const std::string& function, const Model& model);

  // Registers a function from a serialized model file.
  void DeployFile(const std::string& function, const ModelFile& file);

  // Serves one inference request at virtual time `now` (seconds; stale values
  // are clamped forward to the platform clock — see "Clock semantics" above).
  // On failure returns a typed Status from the ErrorCode taxonomy and leaves
  // *result unspecified; never throws for classified failures (kNotFound for
  // unknown functions, kUnavailable for transient load/transform failures,
  // kInternal otherwise). A non-null `trace` (normally obtained from
  // traces().MaybeStartTrace) records spans for the plan lookup, each executed
  // meta-op step, the scratch load, and inference.
  Status TryInvoke(const std::string& function, const std::vector<float>& input, double now,
                   InvokeResult* result, telemetry::TraceContext* trace = nullptr);

  // Throwing wrapper over TryInvoke: returns the result or throws
  // OptimusError carrying the same typed code.
  InvokeResult Invoke(const std::string& function, const std::vector<float>& input, double now,
                      telemetry::TraceContext* trace = nullptr);

  // Serves a batch of requests for ONE function. When the function is warm on
  // its primary node the whole batch runs under a single routing decision and
  // a single node-lock acquisition — the gateway's batcher amortizes the
  // per-request locking that dominates small-model warm invokes. Otherwise
  // every request falls back to the exact per-request TryInvoke path (the
  // first one cold-starts or transforms; later batches hit the warm path).
  // `results` is resized to match `inputs`; the returned statuses align with
  // it. `traces` may be null or supply one (possibly null) context per input.
  // Never throws: per-request failures land in the per-request status.
  std::vector<Status> TryInvokeBatch(const std::string& function,
                                     const std::vector<const std::vector<float>*>& inputs,
                                     double now, std::vector<InvokeResult>* results,
                                     const std::vector<telemetry::TraceContext*>* traces = nullptr);

  // Operational introspection.
  size_t NumFunctions() const;
  size_t NumLiveContainers() const;
  const PlanCache& plan_cache() const { return transformer_->cache(); }
  PlanCache& plan_cache() { return transformer_->cache(); }
  size_t WarmStarts() const { return static_cast<size_t>(warm_starts_.Value()); }
  size_t Transforms() const { return static_cast<size_t>(transforms_.Value()); }
  size_t ColdStarts() const { return static_cast<size_t>(cold_starts_.Value()); }
  PlatformCounters counters() const;

  // Placement introspection and control (DESIGN.md §13).
  PlacementManager& placement() { return *placement_; }
  const PlacementManager& placement() const { return *placement_; }
  std::shared_ptr<const PlacementTable> PlacementSnapshot() const { return placement_->Table(); }
  uint64_t PlacementVersion() const { return placement_->Version(); }
  // Synchronously harvests per-function demand from the telemetry registry
  // and recomputes the placement. Returns false when the recompute failed
  // (the previous table keeps serving). `reason` labels the rebalance
  // counter ("manual" for operator-initiated runs).
  bool RebalanceNow(const std::string& reason = "manual");
  // Computes what RebalanceNow would publish and diffs it against the
  // serving table without swapping snapshots (POST /rebalance?dry_run=1).
  PlacementDiff PreviewRebalance();
  // Node-lock acquisitions so far (see NodePool::LockAcquisitions) — lets
  // tests pin the O(1)-routing claim: a warm hit takes exactly one.
  uint64_t NodeLockAcquisitions() const { return pool_->LockAcquisitions(); }

  // Forecast-driven warming (DESIGN.md §17). The engine is always
  // constructed (so warming can be enabled at runtime via the gateway admin
  // route); the background loop only exists when options.warming.interval is
  // positive.
  bool WarmingEnabled() const { return warming_engine_->enabled(); }
  void SetWarmingEnabled(bool enabled) { warming_engine_->set_enabled(enabled); }
  // Runs one warming cycle synchronously at virtual time `now`: harvests
  // demand into the placement accumulator (the same signal the rebalancer
  // and GET /demand see), plans budget-capped orders against the serving
  // table, and executes them. Returns the number of orders that produced a
  // pre-warmed container. No-op (returns 0) while warming is disabled.
  size_t WarmNow(double now);
  // Live containers currently pre-warmed and not yet hit.
  size_t PrewarmedContainers() const;
  std::string WarmingStatsJson() const;

  // Node lifecycle & churn (DESIGN.md §16). RevokeNode models a spot
  // revocation or operator drain at virtual time `now`: the node stops
  // accepting new routes immediately (the placement mask republishes with the
  // node dead, and RouteAccepting skips it during the race window), in-flight
  // work may finish within `grace_seconds`, and the dead node's demand is
  // re-homed through the active policy (reason "node_down"). A grace of zero
  // reclaims the node's containers and spare arenas on the spot. ReviveNode
  // brings a Down node back (Reviving; placement republishes with reason
  // "node_up"). Both return false when the node is not in a state that admits
  // the transition.
  bool RevokeNode(int node, double grace_seconds, double now);
  bool ReviveNode(int node);
  NodeLifecycle NodeState(int node) const { return pool_->Lifecycle(node); }
  std::vector<NodeLifecycle> NodeLifecycles() const { return pool_->LifecycleSnapshot(); }
  int DrainingNodes() const { return pool_->DrainingNodes(); }
  int AcceptingNodes() const { return pool_->AcceptingNodes(); }
  int num_nodes() const { return pool_->num_nodes(); }

  // Telemetry (DESIGN.md §12). The platform owns the registry every layer
  // below it (plan cache, transformer, loader) reports into, plus the trace
  // collector holding completed request traces.
  telemetry::MetricsRegistry& metrics() { return metrics_; }
  const telemetry::MetricsRegistry& metrics() const { return metrics_; }
  telemetry::TraceCollector& traces() { return traces_; }

  // Debug/chaos introspection: validates every live container (resident model
  // loaded, structurally valid, and named after the container's function) and
  // returns one human-readable line per violation. A healthy platform — in
  // particular one that has absorbed transformation failures — returns empty.
  std::vector<std::string> CheckContainerIntegrity() const;

 private:
  // One registered function: its loaded model plus the per-function latency
  // series, resolved once at Deploy() so the invoke path never takes the
  // registry's name lookup. The histogram's count doubles as the cumulative
  // demand signal the rebalancer harvests.
  struct FunctionEntry {
    Model model;
    telemetry::Histogram* invoke_seconds = nullptr;
  };

  // CAS-max advance of the platform's VirtualClock; returns the effective
  // time max(now, clock). Thin wrapper kept so every caller funnels through
  // the shared Clock abstraction (DESIGN.md §18).
  double AdvanceClock(double now);
  // Routing that tolerates a stale placement table: the table's primary when
  // it is accepting routes, otherwise a deterministic probe over accepting
  // nodes (counted in optimus_rerouted_invokes_total).
  int RouteAccepting(const std::string& function);
  // Lazily finalizes expired drains (cheap no-op when nothing is draining).
  void FinalizeDrains(double now);
  // ReapExpired on a locked node, charging reaped never-hit pre-warmed
  // containers to speculative waste.
  void ReapNode(NodePool::LockedNode& node, double now);
  // The un-wrapped invocation path; throws OptimusError (and, for bugs,
  // other exceptions TryInvoke classifies as kInternal).
  InvokeResult InvokeInternal(const std::string& function, const std::vector<float>& input,
                              double now, telemetry::TraceContext* trace);
  // Wakes the background rebalancer (no-op when it is not running).
  void RequestRebalance() EXCLUDES(rebalance_mutex_);
  void RebalancerLoop() EXCLUDES(rebalance_mutex_);
  // Wakes the background warming loop (no-op when it is not running).
  void RequestWarming() EXCLUDES(warming_mutex_);
  void WarmingLoop() EXCLUDES(warming_mutex_);
  // Executes one pre-warm order against its node: a speculative scratch load
  // into a free slot, or a speculative transformation of the cheapest
  // sufficiently-idle donor. Never evicts (speculation must not displace
  // reactive state). Returns true when a pre-warmed container was produced.
  bool ExecutePrewarmOrder(const WarmingOrder& order, double now);

  const CostModel* costs_;
  PlatformOptions options_;
  // Registry before every member that binds series on it (init order).
  telemetry::MetricsRegistry metrics_;
  telemetry::TraceCollector traces_;
  Loader loader_;
  std::unique_ptr<Transformer> transformer_;
  std::unique_ptr<ThreadPool> warm_pool_;  // Present when warm_threads > 1.
  mutable SharedMutex repository_mutex_{LockRank::kRepository, "platform.repository"};
  // Loaded (weighted) models.
  std::map<std::string, FunctionEntry> repository_ GUARDED_BY(repository_mutex_);
  std::unique_ptr<NodePool> pool_;
  std::unique_ptr<PlacementManager> placement_;
  // The platform's single time source: keep-alive reaping, drain deadlines,
  // rebalance cadence, and warming cycles all read this clock, which invokers
  // advance with their (virtual or wall) timestamps. The simulator drives the
  // same logic from its own VirtualClock — the sim/live twin property.
  VirtualClock clock_;
  // Background rebalancer (running only when rebalance_interval > 0). Rank
  // kRebalance sits above kNode/kPlanCache* because RebalancerLoop drops the
  // mutex before calling RebalanceNow (which takes kRepository).
  Mutex rebalance_mutex_{LockRank::kRebalance, "platform.rebalance"};
  CondVar rebalance_cv_;
  bool rebalance_requested_ GUARDED_BY(rebalance_mutex_) = false;
  bool shutdown_ GUARDED_BY(rebalance_mutex_) = false;
  std::thread rebalancer_;
  // Forecast-driven warming (DESIGN.md §17). The engine bundles the
  // forecaster + WarmingPolicy + cycle cadence and is shared logic with the
  // simulator. Rank kWarming sits above kRebalance (the loops never nest)
  // and below kDemand; WarmingLoop drops its mutex before WarmNow, which
  // takes kRepository → kDemand → kNode in turn.
  std::unique_ptr<WarmingEngine> warming_engine_;
  Mutex warming_mutex_{LockRank::kWarming, "platform.warming"};
  CondVar warming_cv_;
  bool warming_requested_ GUARDED_BY(warming_mutex_) = false;
  bool warming_shutdown_ GUARDED_BY(warming_mutex_) = false;
  std::thread warming_thread_;
  // Monotone counters and latency series, re-homed onto the registry (the
  // registry is the single source of truth; counters() is a thin view).
  telemetry::Counter& warm_starts_;
  telemetry::Counter& transforms_;
  telemetry::Counter& cold_starts_;
  telemetry::Counter& transform_failures_;
  telemetry::Counter& transform_fallbacks_;
  telemetry::Counter& decide_failures_;
  telemetry::Counter& failed_invokes_;
  telemetry::Counter& warm_batches_;
  telemetry::Counter& node_revocations_;
  telemetry::Counter& node_revives_;
  telemetry::Counter& drained_containers_;
  telemetry::Counter& rerouted_invokes_;
  telemetry::Counter& warming_cycles_;
  telemetry::Counter& warming_orders_;
  telemetry::Counter& warming_prewarms_cold_;
  telemetry::Counter& warming_prewarms_transform_;
  telemetry::Counter& warming_hits_;
  telemetry::Counter& warming_misses_;
  telemetry::Counter& warming_waste_;
  telemetry::Counter& warming_skipped_;
  telemetry::Counter& warming_failures_;
  telemetry::Histogram& invoke_seconds_warm_;
  telemetry::Histogram& invoke_seconds_transform_;
  telemetry::Histogram& invoke_seconds_cold_;
  telemetry::Histogram& decide_seconds_;
  telemetry::Histogram& transform_seconds_;
  telemetry::Histogram& inference_seconds_;
  telemetry::Histogram& batch_size_;
  // Virtual seconds between a speculative prepare and its first warm hit.
  telemetry::Histogram& warming_lead_seconds_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_PLATFORM_H_
