// An in-process serverless ML inference platform — the prototype of §7.
//
// OptimusPlatform plays the role of the gateway + scheduler services: clients
// Deploy() models (stored serialized in the "Docker volume" repository; plans
// are pre-computed and cached at registration, §4.4 Module 3) and Invoke()
// functions. Each invocation is routed to a worker node and served from a
// real container holding a real ModelInstance:
//
//   * warm start      — an idle container already holds the model;
//   * transformation  — a sufficiently idle container of another function is
//                       repurposed by executing the cached meta-operator plan
//                       (with the safeguard's scratch fallback);
//   * cold start      — a fresh container is created and the model loads from
//                       scratch.
//
// Time is a caller-driven virtual clock (advanced by the `now` argument), so
// idle-threshold and keep-alive behaviour is deterministic; the *content* of
// containers (weights, inference results) is fully real.

#ifndef OPTIMUS_SRC_CORE_PLATFORM_H_
#define OPTIMUS_SRC_CORE_PLATFORM_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/container/container.h"
#include "src/core/transformer.h"
#include "src/graph/serialization.h"

namespace optimus {

struct PlatformOptions {
  int num_nodes = 1;
  int containers_per_node = 4;
  double idle_threshold = 60.0;
  double keep_alive = 600.0;
  PlannerKind planner = PlannerKind::kGroup;
  // Pre-plan transformations against all registered models at Deploy() time
  // (the paper's planning-strategy caching). Disable to plan lazily.
  bool warm_plan_cache = true;
};

// Result of one invocation.
struct InvokeResult {
  std::vector<float> output;       // Real inference output.
  StartType start = StartType::kCold;
  double estimated_latency = 0.0;  // Cost-model latency of the chosen path
                                   // (init + load/transform + compute).
  std::string donor_function;      // Set when a transformation occurred.
  int node = -1;
};

class OptimusPlatform {
 public:
  OptimusPlatform(const CostModel* costs, const PlatformOptions& options);

  // Registers a function. The model is serialized into the repository; if the
  // structure carries no weights, deterministic weights are materialized.
  // Throws std::invalid_argument on duplicate names.
  void Deploy(const std::string& function, const Model& model);

  // Registers a function from a serialized model file.
  void DeployFile(const std::string& function, const ModelFile& file);

  // Serves one inference request at virtual time `now` (seconds, monotone
  // non-decreasing across calls). Throws std::out_of_range for unknown
  // functions and std::invalid_argument if `now` moves backwards.
  InvokeResult Invoke(const std::string& function, const std::vector<float>& input, double now);

  // Operational introspection.
  size_t NumFunctions() const { return repository_.size(); }
  size_t NumLiveContainers() const;
  const PlanCache& plan_cache() const { return transformer_->cache(); }
  size_t WarmStarts() const { return warm_starts_; }
  size_t Transforms() const { return transforms_; }
  size_t ColdStarts() const { return cold_starts_; }

 private:
  struct RealContainer {
    ContainerId id = -1;
    std::string function;
    double last_active = 0.0;
    ModelInstance instance;
  };

  struct Node {
    std::vector<RealContainer> containers;
  };

  void ReapExpired(Node* node, double now);
  int PlaceFunction(const std::string& function) const;

  const CostModel* costs_;
  PlatformOptions options_;
  Loader loader_;
  std::unique_ptr<Transformer> transformer_;
  std::map<std::string, Model> repository_;  // Loaded (weighted) models.
  std::vector<Node> nodes_;
  ContainerId next_container_id_ = 0;
  double last_now_ = 0.0;
  size_t warm_starts_ = 0;
  size_t transforms_ = 0;
  size_t cold_starts_ = 0;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_PLATFORM_H_
