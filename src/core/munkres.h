// Munkres (Hungarian) assignment solver, O(k^3).
//
// Used by the Basic planner (paper §4.4, Module 2) to find the optimal
// operation assignment over the edit-distance cost matrix, following
// Riesen & Bunke's bipartite graph-matching formulation.

#ifndef OPTIMUS_SRC_CORE_MUNKRES_H_
#define OPTIMUS_SRC_CORE_MUNKRES_H_

#include <vector>

namespace optimus {

struct AssignmentResult {
  // assignment[row] = column matched to that row.
  std::vector<int> assignment;
  double total_cost = 0.0;
};

// Solves the square assignment problem: finds a permutation minimizing
// sum cost[row][assignment[row]]. Requires a non-empty square matrix.
// Implementation: shortest augmenting paths with dual potentials (the
// Jonker-Volgenant refinement of the Munkres algorithm), O(k^3).
AssignmentResult SolveAssignment(const std::vector<std::vector<double>>& cost);

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_MUNKRES_H_
