#include "src/core/planner.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <stdexcept>

#include "src/common/stopwatch.h"
#include "src/core/cost_matrix.h"
#include "src/core/munkres.h"

namespace optimus {

namespace {

// Maximum matrix size the brute-force planner will enumerate (9! ≈ 3.6e5).
constexpr size_t kBruteForceLimit = 9;

OpMapping MappingFromAssignment(const TransformCostMatrix& matrix,
                                const std::vector<int>& assignment) {
  OpMapping mapping;
  const size_t n = matrix.n();
  const size_t m = matrix.m();
  for (size_t row = 0; row < n + m; ++row) {
    const size_t col = static_cast<size_t>(assignment[row]);
    if (row < n && col < m) {
      // A substitution chosen despite a forbidden cost means the solver was
      // cornered; treat it as delete + insert instead.
      if (matrix.costs[row][col] >= kForbiddenCost / 2) {
        mapping.reduced.push_back(matrix.source_ids[row]);
        mapping.added.push_back(matrix.dest_ids[col]);
      } else {
        mapping.matched.emplace_back(matrix.source_ids[row], matrix.dest_ids[col]);
      }
    } else if (row < n) {
      mapping.reduced.push_back(matrix.source_ids[row]);
    } else if (col < m) {
      mapping.added.push_back(matrix.dest_ids[col]);
    }
  }
  return mapping;
}

OpMapping BruteForcePlan(const Model& source, const Model& dest, const CostModel& costs) {
  const TransformCostMatrix matrix = BuildCostMatrix(source, dest, costs);
  const size_t size = matrix.Size();
  if (size > kBruteForceLimit) {
    throw std::invalid_argument("BruteForcePlan: model pair too large (" + std::to_string(size) +
                                " ops); use kBasic or kGroup");
  }
  std::vector<int> permutation(size);
  std::iota(permutation.begin(), permutation.end(), 0);
  std::vector<int> best = permutation;
  double best_cost = kForbiddenCost * static_cast<double>(size);
  do {
    double cost = 0.0;
    for (size_t row = 0; row < size; ++row) {
      cost += matrix.costs[row][static_cast<size_t>(permutation[row])];
      if (cost >= best_cost) {
        break;
      }
    }
    if (cost < best_cost) {
      best_cost = cost;
      best = permutation;
    }
  } while (std::next_permutation(permutation.begin(), permutation.end()));
  return MappingFromAssignment(matrix, best);
}

OpMapping BasicPlan(const Model& source, const Model& dest, const CostModel& costs) {
  const TransformCostMatrix matrix = BuildCostMatrix(source, dest, costs);
  const AssignmentResult result = SolveAssignment(matrix.costs);
  return MappingFromAssignment(matrix, result.assignment);
}

// The linear-complexity group-based heuristic (Module 2+): bucket ops by
// kind in topological order, then match the k-th op of each kind in the
// source to the k-th of the same kind in the destination.
OpMapping GroupPlan(const Model& source, const Model& dest) {
  std::map<OpKind, std::vector<OpId>> source_groups;
  std::map<OpKind, std::vector<OpId>> dest_groups;
  for (const OpId id : source.TopologicalOrder()) {
    source_groups[source.op(id).kind].push_back(id);
  }
  for (const OpId id : dest.TopologicalOrder()) {
    dest_groups[dest.op(id).kind].push_back(id);
  }

  OpMapping mapping;
  for (const auto& [kind, src_ids] : source_groups) {
    auto it = dest_groups.find(kind);
    const std::vector<OpId>* dst_ids = it == dest_groups.end() ? nullptr : &it->second;
    const size_t matched = dst_ids == nullptr ? 0 : std::min(src_ids.size(), dst_ids->size());
    for (size_t i = 0; i < matched; ++i) {
      mapping.matched.emplace_back(src_ids[i], (*dst_ids)[i]);
    }
    for (size_t i = matched; i < src_ids.size(); ++i) {
      mapping.reduced.push_back(src_ids[i]);
    }
  }
  for (const auto& [kind, dst_ids] : dest_groups) {
    auto it = source_groups.find(kind);
    const size_t matched =
        it == source_groups.end() ? 0 : std::min(it->second.size(), dst_ids.size());
    for (size_t i = matched; i < dst_ids.size(); ++i) {
      mapping.added.push_back(dst_ids[i]);
    }
  }
  return mapping;
}

}  // namespace

const char* PlannerKindName(PlannerKind kind) {
  switch (kind) {
    case PlannerKind::kBruteForce:
      return "BruteForce";
    case PlannerKind::kBasic:
      return "Basic";
    case PlannerKind::kGroup:
      return "Group";
  }
  return "Unknown";
}

TransformPlan PlanFromMapping(const Model& source, const Model& dest, const CostModel& costs,
                              const OpMapping& mapping) {
  TransformPlan plan;
  plan.source_name = source.name();
  plan.dest_name = dest.name();
  plan.mapping = mapping;

  for (const auto& [src_id, dst_id] : mapping.matched) {
    const Operation& src_op = source.op(src_id);
    const Operation& dst_op = dest.op(dst_id);
    if (!(src_op.attrs == dst_op.attrs)) {
      MetaOp reshape;
      reshape.kind = MetaOpKind::kReshape;
      reshape.source_id = src_id;
      reshape.dest_id = dst_id;
      reshape.cost = costs.ReshapeCost(src_op.kind, src_op.attrs, dst_op.attrs);
      plan.steps.push_back(reshape);
    }
    if (OpKindHasWeights(dst_op.kind)) {
      MetaOp replace;
      replace.kind = MetaOpKind::kReplace;
      replace.source_id = src_id;
      replace.dest_id = dst_id;
      replace.cost = costs.ReplaceCost(dst_op.kind, dst_op.attrs);
      plan.steps.push_back(replace);
    }
  }
  for (const OpId src_id : mapping.reduced) {
    MetaOp reduce;
    reduce.kind = MetaOpKind::kReduce;
    reduce.source_id = src_id;
    reduce.cost = costs.ReduceCost();
    plan.steps.push_back(reduce);
  }
  for (const OpId dst_id : mapping.added) {
    const Operation& dst_op = dest.op(dst_id);
    MetaOp add;
    add.kind = MetaOpKind::kAdd;
    add.dest_id = dst_id;
    add.cost = costs.AddCost(dst_op.kind, dst_op.attrs);
    plan.steps.push_back(add);
  }

  // Edge reconciliation: project surviving source edges into destination id
  // space and diff against the destination's edges. Edges incident to reduced
  // ops disappear with their op (covered by Reduce); edges incident to added
  // ops appear here as additions.
  std::map<OpId, OpId> src_to_dst;
  for (const auto& [src_id, dst_id] : mapping.matched) {
    src_to_dst[src_id] = dst_id;
  }
  std::set<Edge> surviving;
  for (const Edge& edge : source.edges()) {
    auto from = src_to_dst.find(edge.first);
    auto to = src_to_dst.find(edge.second);
    if (from != src_to_dst.end() && to != src_to_dst.end()) {
      surviving.emplace(from->second, to->second);
    }
  }
  for (const Edge& edge : surviving) {
    if (!dest.edges().count(edge)) {
      MetaOp edge_op;
      edge_op.kind = MetaOpKind::kEdge;
      edge_op.edge = edge;
      edge_op.edge_add = false;
      edge_op.cost = costs.EdgeCost();
      plan.steps.push_back(edge_op);
    }
  }
  for (const Edge& edge : dest.edges()) {
    if (!surviving.count(edge)) {
      MetaOp edge_op;
      edge_op.kind = MetaOpKind::kEdge;
      edge_op.edge = edge;
      edge_op.edge_add = true;
      edge_op.cost = costs.EdgeCost();
      plan.steps.push_back(edge_op);
    }
  }

  plan.total_cost = 0.0;
  for (const MetaOp& step : plan.steps) {
    plan.total_cost += step.cost;
  }
  return plan;
}

TransformPlan PlanTransform(const Model& source, const Model& dest, const CostModel& costs,
                            PlannerKind kind) {
  Stopwatch watch;
  OpMapping mapping;
  switch (kind) {
    case PlannerKind::kBruteForce:
      mapping = BruteForcePlan(source, dest, costs);
      break;
    case PlannerKind::kBasic:
      mapping = BasicPlan(source, dest, costs);
      break;
    case PlannerKind::kGroup:
      mapping = GroupPlan(source, dest);
      break;
  }
  TransformPlan plan = PlanFromMapping(source, dest, costs, mapping);
  plan.planning_seconds = watch.ElapsedSeconds();
  return plan;
}

double ModelEditDistance(const Model& a, const Model& b, const CostModel& costs) {
  return PlanTransform(a, b, costs, PlannerKind::kGroup).total_cost;
}

}  // namespace optimus
