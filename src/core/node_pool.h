// NodePool — the container-mechanism half of the Router/NodePool split
// (DESIGN.md §13). It owns the worker nodes' container state and the per-node
// mutexes; all *policy* (which node to route to, which donor to transform,
// who to evict) stays with the caller (OptimusPlatform).
//
// Locking discipline: every access to a node's containers goes through
// Lock(node), which returns a movable RAII view holding that node's mutex.
// Lock acquisitions are counted (relaxed atomic) so tests can assert routing
// really is O(1) — a warm hit must take exactly one node lock no matter how
// many nodes the pool has.
//
// Node lifecycle (DESIGN.md §16): every node carries an explicit state
// machine — Up → Draining → Down, with Down → Reviving → Up on revive — so
// spot revocation is a first-class event instead of an error path. A revoked
// node stops accepting new routes immediately (Accepting() is a lock-free
// atomic read the router consults); in-flight work already holding the node
// may finish within the grace window; past the window the drain is finalized
// lazily (FinalizeExpiredDrains) and the node's containers *and* banked spare
// arenas are reclaimed, so a dead owner never leaks slabs through the PR 6
// recycling path.

#ifndef OPTIMUS_SRC_CORE_NODE_POOL_H_
#define OPTIMUS_SRC_CORE_NODE_POOL_H_

#include <atomic>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/sync.h"
#include "src/container/container.h"
#include "src/runtime/loader.h"

namespace optimus {

// The per-node lifecycle state machine. Legal transitions:
//   kUp       → kDraining   RevokeNode(grace > 0): no new routes, grace window
//   kUp       → kDown       RevokeNode(grace == 0): immediate reclaim
//   kDraining → kDown       grace expired (FinalizeExpiredDrains)
//   kDown     → kReviving   ReviveNode(): accepts routes again, still empty
//   kReviving → kUp         first container adopted (the node is warm again)
enum class NodeLifecycle : uint8_t { kUp = 0, kDraining, kDown, kReviving };

// Stable lower-case names ("up" / "draining" / "down" / "reviving") for
// /healthz, logs, and metric labels.
const char* NodeLifecycleName(NodeLifecycle state);

// A live container: a real ModelInstance pinned to a function.
struct RealContainer {
  ContainerId id = -1;
  std::string function;
  double last_active = 0.0;
  ModelInstance instance;
  // Set by the warming subsystem when this container was prepared
  // speculatively and has not served a request yet (DESIGN.md §17). The
  // first warm hit clears it (forecast hit); removal while still set is
  // counted as speculative waste.
  bool prewarmed = false;
  double prewarmed_at = 0.0;  // Virtual time the speculative prepare finished.
};

class NodePool {
 private:
  // Node state is only touched under the node's mutex. Nodes live behind
  // unique_ptr so the vector can be sized despite the mutex member. Every
  // node mutex shares rank kNode: the invoke path holds at most one at a
  // time (neighbor probing releases the primary first), and the lock-rank
  // validator's acquired-after graph enforces that protocol in debug builds.
  struct Node {
    Mutex mutex{LockRank::kNode, "node_pool.node"};
    std::vector<RealContainer> containers GUARDED_BY(mutex);
    // Arenas recycled from dead containers, awaiting the next cold start on
    // this node (DESIGN.md §14). Bounded by the node's container capacity.
    std::vector<std::shared_ptr<TensorArena>> spare_arenas GUARDED_BY(mutex);
    // Lifecycle state (DESIGN.md §16). Reads are lock-free (the router checks
    // Accepting() on every invoke); transitions happen under `mutex` so they
    // serialize with container reclaim.
    std::atomic<NodeLifecycle> lifecycle{NodeLifecycle::kUp};
    // Virtual time at which a Draining node's grace window closes. Only
    // meaningful while lifecycle == kDraining.
    std::atomic<double> drain_deadline{std::numeric_limits<double>::infinity()};
  };

 public:
  NodePool(int num_nodes, int containers_per_node);

  // RAII view over one locked node. Callers hold at most one at a time (the
  // platform's neighbor probing releases the primary before locking a
  // neighbor), so lock ordering is trivially deadlock-free.
  //
  // LockedNode is a *movable* lock view, which Clang's static analysis
  // cannot track across moves and returns; its accessors are therefore
  // NO_THREAD_SAFETY_ANALYSIS, with safety resting on two enforced
  // invariants: construction only happens inside NodePool::Lock() with the
  // node mutex held, and the debug lock-rank validator verifies every
  // acquisition/release at runtime (an unowned access after Release() trips
  // the unheld-release check on destruction paths).
  class LockedNode {
   public:
    LockedNode(LockedNode&& other) noexcept
        : node_(other.node_), index_(other.index_), capacity_(other.capacity_),
          owns_(std::exchange(other.owns_, false)) {}
    LockedNode& operator=(LockedNode&& other) noexcept NO_THREAD_SAFETY_ANALYSIS {
      if (this != &other) {
        if (owns_) {
          node_->mutex.Unlock();
        }
        node_ = other.node_;
        index_ = other.index_;
        capacity_ = other.capacity_;
        owns_ = std::exchange(other.owns_, false);
      }
      return *this;
    }
    ~LockedNode() NO_THREAD_SAFETY_ANALYSIS {
      if (owns_) {
        node_->mutex.Unlock();
      }
    }

    int index() const { return index_; }
    std::vector<RealContainer>& containers() NO_THREAD_SAFETY_ANALYSIS {
      return node_->containers;
    }
    const std::vector<RealContainer>& containers() const NO_THREAD_SAFETY_ANALYSIS {
      return node_->containers;
    }

    RealContainer* FindWarm(const std::string& function) NO_THREAD_SAFETY_ANALYSIS;
    bool Full() const NO_THREAD_SAFETY_ANALYSIS {
      return static_cast<int>(node_->containers.size()) >= capacity_;
    }
    NodeLifecycle lifecycle() const {
      return node_->lifecycle.load(std::memory_order_acquire);
    }
    // Whether work may still run on this node at virtual time `now`: Up and
    // Reviving nodes always, a Draining node only inside its grace window,
    // a Down node never (DESIGN.md §16 grace-window semantics).
    bool Servable(double now) const {
      switch (lifecycle()) {
        case NodeLifecycle::kUp:
        case NodeLifecycle::kReviving:
          return true;
        case NodeLifecycle::kDraining:
          return now < node_->drain_deadline.load(std::memory_order_acquire);
        case NodeLifecycle::kDown:
          return false;
      }
      return false;
    }
    // Any container idle for at least `idle_threshold` (a transform donor
    // candidate) — the predicate behind the capacity-pressure fallback.
    bool HasIdleContainer(double now, double idle_threshold) const NO_THREAD_SAFETY_ANALYSIS;
    // Returns the number of reaped containers that were pre-warmed and never
    // served a request — the caller charges those to speculative waste.
    size_t ReapExpired(double now, double keep_alive) NO_THREAD_SAFETY_ANALYSIS;
    void RemoveById(ContainerId id) NO_THREAD_SAFETY_ANALYSIS;
    // True when the evicted container was pre-warmed and never served.
    bool EvictLeastRecentlyActive() NO_THREAD_SAFETY_ANALYSIS;
    RealContainer* Adopt(RealContainer&& container) NO_THREAD_SAFETY_ANALYSIS;

    // Hands out a tensor arena for a container about to cold-start on this
    // node: a recycled (Reset) spare when one exists, a fresh one otherwise.
    // Every container-removal path above banks the dead container's arena as
    // a spare, so steady-state churn stops allocating slabs altogether.
    std::shared_ptr<TensorArena> AcquireArena() NO_THREAD_SAFETY_ANALYSIS;

    // Spares currently banked on this node (observability / tests).
    size_t SpareArenas() const NO_THREAD_SAFETY_ANALYSIS { return node_->spare_arenas.size(); }

    // Explicitly releases the node (the destructor also does); the view must
    // not be used afterwards.
    void Release() NO_THREAD_SAFETY_ANALYSIS {
      if (owns_) {
        owns_ = false;
        node_->mutex.Unlock();
      }
    }

   private:
    friend class NodePool;
    // Takes ownership of `node`'s mutex, which the caller (NodePool::Lock)
    // has just acquired.
    LockedNode(Node* node, int index, int capacity) noexcept
        : node_(node), index_(index), capacity_(capacity) {}

    // Banks a dying container's arena for reuse (dropped once the node
    // already holds capacity_ spares).
    void RecycleArena(std::shared_ptr<TensorArena> arena) NO_THREAD_SAFETY_ANALYSIS;

    Node* node_;
    int index_;
    int capacity_;
    bool owns_ = true;
  };

  LockedNode Lock(int node_index);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int capacity_per_node() const { return capacity_per_node_; }
  ContainerId AllocateId() { return next_container_id_.fetch_add(1, std::memory_order_relaxed); }

  // --- Node lifecycle (DESIGN.md §16). --------------------------------------

  NodeLifecycle Lifecycle(int node_index) const {
    return nodes_.at(static_cast<size_t>(node_index))->lifecycle.load(std::memory_order_acquire);
  }

  // Whether the node accepts *new* routes (Up or Reviving). Lock-free; the
  // router consults this on every invoke.
  bool Accepting(int node_index) const {
    const NodeLifecycle state = Lifecycle(node_index);
    return state == NodeLifecycle::kUp || state == NodeLifecycle::kReviving;
  }

  // Nodes currently accepting new routes.
  int AcceptingNodes() const;

  // Revokes the node (spot revocation / operator drain). Up/Reviving →
  // Draining with a grace window of `grace_seconds` virtual seconds; a grace
  // of zero (or less) goes straight to Down, reclaiming containers and spare
  // arenas immediately. Returns false (no-op) when the node is already
  // Draining or Down.
  bool RevokeNode(int node_index, double grace_seconds, double now);

  // Finalizes every Draining node whose grace window has closed: its
  // containers and banked spare arenas are reclaimed and it transitions to
  // Down. Returns the number of containers reclaimed. Cheap when no node is
  // draining (one relaxed atomic read via DrainingNodes()).
  size_t FinalizeExpiredDrains(double now);

  // Down → Reviving: the node accepts routes again (still container-less; it
  // promotes itself to Up when the first container is adopted). Returns false
  // (no-op) unless the node is Down.
  bool ReviveNode(int node_index);

  // Lifecycle observability.
  int DrainingNodes() const { return draining_nodes_.load(std::memory_order_relaxed); }
  std::vector<NodeLifecycle> LifecycleSnapshot() const;
  uint64_t Revocations() const { return revocations_.load(std::memory_order_relaxed); }
  uint64_t Revives() const { return revives_.load(std::memory_order_relaxed); }
  // Containers reclaimed by drains finalizing (kill accounting for chaos
  // counter reconciliation).
  uint64_t ReclaimedContainers() const {
    return reclaimed_containers_.load(std::memory_order_relaxed);
  }

  // Total live containers across all nodes (locks each node in turn).
  size_t TotalContainers() const;

  // Visits every container under its node's lock (integrity checks).
  void ForEachContainer(const std::function<void(int, const RealContainer&)>& visit) const;

  // Node-lock acquisitions since construction — the O(1)-routing regression
  // hook: a warm invoke contributes exactly one, independent of num_nodes.
  uint64_t LockAcquisitions() const {
    return lock_acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  // Clears the node's containers and spare arenas and marks it Down. Caller
  // holds the node's mutex.
  size_t ReclaimLocked(Node* node) NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::unique_ptr<Node>> nodes_;
  int capacity_per_node_;
  std::atomic<ContainerId> next_container_id_{0};
  mutable std::atomic<uint64_t> lock_acquisitions_{0};
  // Lifecycle accounting (relaxed: the counts are monotone observability).
  std::atomic<int> draining_nodes_{0};
  std::atomic<uint64_t> revocations_{0};
  std::atomic<uint64_t> revives_{0};
  std::atomic<uint64_t> reclaimed_containers_{0};
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_NODE_POOL_H_
