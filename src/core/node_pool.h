// NodePool — the container-mechanism half of the Router/NodePool split
// (DESIGN.md §13). It owns the worker nodes' container state and the per-node
// mutexes; all *policy* (which node to route to, which donor to transform,
// who to evict) stays with the caller (OptimusPlatform).
//
// Locking discipline: every access to a node's containers goes through
// Lock(node), which returns a movable RAII view holding that node's mutex.
// Lock acquisitions are counted (relaxed atomic) so tests can assert routing
// really is O(1) — a warm hit must take exactly one node lock no matter how
// many nodes the pool has.

#ifndef OPTIMUS_SRC_CORE_NODE_POOL_H_
#define OPTIMUS_SRC_CORE_NODE_POOL_H_

#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/sync.h"
#include "src/container/container.h"
#include "src/runtime/loader.h"

namespace optimus {

// A live container: a real ModelInstance pinned to a function.
struct RealContainer {
  ContainerId id = -1;
  std::string function;
  double last_active = 0.0;
  ModelInstance instance;
};

class NodePool {
 private:
  // Node state is only touched under the node's mutex. Nodes live behind
  // unique_ptr so the vector can be sized despite the mutex member. Every
  // node mutex shares rank kNode: the invoke path holds at most one at a
  // time (neighbor probing releases the primary first), and the lock-rank
  // validator's acquired-after graph enforces that protocol in debug builds.
  struct Node {
    Mutex mutex{LockRank::kNode, "node_pool.node"};
    std::vector<RealContainer> containers GUARDED_BY(mutex);
    // Arenas recycled from dead containers, awaiting the next cold start on
    // this node (DESIGN.md §14). Bounded by the node's container capacity.
    std::vector<std::shared_ptr<TensorArena>> spare_arenas GUARDED_BY(mutex);
  };

 public:
  NodePool(int num_nodes, int containers_per_node);

  // RAII view over one locked node. Callers hold at most one at a time (the
  // platform's neighbor probing releases the primary before locking a
  // neighbor), so lock ordering is trivially deadlock-free.
  //
  // LockedNode is a *movable* lock view, which Clang's static analysis
  // cannot track across moves and returns; its accessors are therefore
  // NO_THREAD_SAFETY_ANALYSIS, with safety resting on two enforced
  // invariants: construction only happens inside NodePool::Lock() with the
  // node mutex held, and the debug lock-rank validator verifies every
  // acquisition/release at runtime (an unowned access after Release() trips
  // the unheld-release check on destruction paths).
  class LockedNode {
   public:
    LockedNode(LockedNode&& other) noexcept
        : node_(other.node_), index_(other.index_), capacity_(other.capacity_),
          owns_(std::exchange(other.owns_, false)) {}
    LockedNode& operator=(LockedNode&& other) noexcept NO_THREAD_SAFETY_ANALYSIS {
      if (this != &other) {
        if (owns_) {
          node_->mutex.Unlock();
        }
        node_ = other.node_;
        index_ = other.index_;
        capacity_ = other.capacity_;
        owns_ = std::exchange(other.owns_, false);
      }
      return *this;
    }
    ~LockedNode() NO_THREAD_SAFETY_ANALYSIS {
      if (owns_) {
        node_->mutex.Unlock();
      }
    }

    int index() const { return index_; }
    std::vector<RealContainer>& containers() NO_THREAD_SAFETY_ANALYSIS {
      return node_->containers;
    }
    const std::vector<RealContainer>& containers() const NO_THREAD_SAFETY_ANALYSIS {
      return node_->containers;
    }

    RealContainer* FindWarm(const std::string& function) NO_THREAD_SAFETY_ANALYSIS;
    bool Full() const NO_THREAD_SAFETY_ANALYSIS {
      return static_cast<int>(node_->containers.size()) >= capacity_;
    }
    // Any container idle for at least `idle_threshold` (a transform donor
    // candidate) — the predicate behind the capacity-pressure fallback.
    bool HasIdleContainer(double now, double idle_threshold) const NO_THREAD_SAFETY_ANALYSIS;
    void ReapExpired(double now, double keep_alive) NO_THREAD_SAFETY_ANALYSIS;
    void RemoveById(ContainerId id) NO_THREAD_SAFETY_ANALYSIS;
    void EvictLeastRecentlyActive() NO_THREAD_SAFETY_ANALYSIS;
    RealContainer* Adopt(RealContainer&& container) NO_THREAD_SAFETY_ANALYSIS;

    // Hands out a tensor arena for a container about to cold-start on this
    // node: a recycled (Reset) spare when one exists, a fresh one otherwise.
    // Every container-removal path above banks the dead container's arena as
    // a spare, so steady-state churn stops allocating slabs altogether.
    std::shared_ptr<TensorArena> AcquireArena() NO_THREAD_SAFETY_ANALYSIS;

    // Spares currently banked on this node (observability / tests).
    size_t SpareArenas() const NO_THREAD_SAFETY_ANALYSIS { return node_->spare_arenas.size(); }

    // Explicitly releases the node (the destructor also does); the view must
    // not be used afterwards.
    void Release() NO_THREAD_SAFETY_ANALYSIS {
      if (owns_) {
        owns_ = false;
        node_->mutex.Unlock();
      }
    }

   private:
    friend class NodePool;
    // Takes ownership of `node`'s mutex, which the caller (NodePool::Lock)
    // has just acquired.
    LockedNode(Node* node, int index, int capacity) noexcept
        : node_(node), index_(index), capacity_(capacity) {}

    // Banks a dying container's arena for reuse (dropped once the node
    // already holds capacity_ spares).
    void RecycleArena(std::shared_ptr<TensorArena> arena) NO_THREAD_SAFETY_ANALYSIS;

    Node* node_;
    int index_;
    int capacity_;
    bool owns_ = true;
  };

  LockedNode Lock(int node_index);

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int capacity_per_node() const { return capacity_per_node_; }
  ContainerId AllocateId() { return next_container_id_.fetch_add(1, std::memory_order_relaxed); }

  // Total live containers across all nodes (locks each node in turn).
  size_t TotalContainers() const;

  // Visits every container under its node's lock (integrity checks).
  void ForEachContainer(const std::function<void(int, const RealContainer&)>& visit) const;

  // Node-lock acquisitions since construction — the O(1)-routing regression
  // hook: a warm invoke contributes exactly one, independent of num_nodes.
  uint64_t LockAcquisitions() const {
    return lock_acquisitions_.load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::unique_ptr<Node>> nodes_;
  int capacity_per_node_;
  std::atomic<ContainerId> next_container_id_{0};
  mutable std::atomic<uint64_t> lock_acquisitions_{0};
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_CORE_NODE_POOL_H_
