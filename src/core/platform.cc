#include "src/core/platform.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "src/runtime/inference.h"

namespace optimus {

OptimusPlatform::OptimusPlatform(const CostModel* costs, const PlatformOptions& options)
    : costs_(costs),
      options_(options),
      traces_(&metrics_, telemetry::TraceCollectorOptions{options.trace_capacity,
                                                          options.trace_sample_period,
                                                          options.trace_seed}),
      loader_(costs),
      warm_starts_(metrics_.GetCounter("optimus_starts_total", {{"kind", "warm"}},
                                       "Successful invocations by start type")),
      transforms_(metrics_.GetCounter("optimus_starts_total", {{"kind", "transform"}},
                                      "Successful invocations by start type")),
      cold_starts_(metrics_.GetCounter("optimus_starts_total", {{"kind", "cold"}},
                                       "Successful invocations by start type")),
      transform_failures_(
          metrics_.GetCounter("optimus_transform_failures_total", {},
                              "Transformations aborted mid-plan (container destroyed)")),
      transform_fallbacks_(
          metrics_.GetCounter("optimus_transform_fallbacks_total", {},
                              "Requests served by the scratch fallback after a failed transform")),
      decide_failures_(metrics_.GetCounter("optimus_decide_failures_total", {},
                                           "Donor candidates skipped because Decide threw")),
      failed_invokes_(metrics_.GetCounter("optimus_failed_invokes_total", {},
                                          "TryInvoke calls that returned a non-OK status")),
      invoke_seconds_warm_(metrics_.GetHistogram("optimus_invoke_seconds", {{"start", "warm"}},
                                                 "End-to-end invoke wall seconds by start type")),
      invoke_seconds_transform_(
          metrics_.GetHistogram("optimus_invoke_seconds", {{"start", "transform"}},
                                "End-to-end invoke wall seconds by start type")),
      invoke_seconds_cold_(metrics_.GetHistogram("optimus_invoke_seconds", {{"start", "cold"}},
                                                 "End-to-end invoke wall seconds by start type")),
      decide_seconds_(metrics_.GetHistogram("optimus_phase_seconds", {{"phase", "decide"}},
                                            "Wall seconds spent per invoke-path phase")),
      transform_seconds_(metrics_.GetHistogram("optimus_phase_seconds", {{"phase", "transform"}},
                                               "Wall seconds spent per invoke-path phase")),
      inference_seconds_(metrics_.GetHistogram("optimus_phase_seconds", {{"phase", "inference"}},
                                               "Wall seconds spent per invoke-path phase")) {
  if (options.num_nodes < 1 || options.containers_per_node < 1) {
    throw std::invalid_argument("OptimusPlatform: need at least one node and one container");
  }
  loader_.set_metrics(&metrics_);
  transformer_ = std::make_unique<Transformer>(costs, options.planner, &metrics_);
  if (options.warm_plan_cache && options.warm_threads > 1) {
    warm_pool_ = std::make_unique<ThreadPool>(options.warm_threads);
  }
  nodes_.reserve(static_cast<size_t>(options.num_nodes));
  for (int i = 0; i < options.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>());
  }
}

void OptimusPlatform::Deploy(const std::string& function, const Model& model) {
  {
    // Fast-fail on duplicates before materializing weights; the authoritative
    // check re-runs under the exclusive lock below.
    std::shared_lock<std::shared_mutex> lock(repository_mutex_);
    if (repository_.count(function) > 0) {
      throw std::invalid_argument("Deploy: function already registered: " + function);
    }
  }
  // Materialize weights (deterministic from the function name) so the
  // repository holds the function's full "model file" content.
  Model named = model;
  named.set_name(function);
  const uint64_t seed = std::hash<std::string>{}(function);
  ModelInstance instance = loader_.Instantiate(named, seed == 0 ? 1 : seed);

  // Register, snapshotting the peers to warm against. The warming itself runs
  // outside the repository lock: plans are independent of repository state and
  // map nodes are reference-stable, so concurrent Deploy/Invoke can proceed.
  const Model* deployed = nullptr;
  std::vector<std::reference_wrapper<const Model>> peers;
  {
    std::unique_lock<std::shared_mutex> lock(repository_mutex_);
    if (repository_.count(function) > 0) {
      throw std::invalid_argument("Deploy: function already registered: " + function);
    }
    for (const auto& [other_name, other_entry] : repository_) {
      peers.emplace_back(other_entry.model);
    }
    FunctionEntry entry;
    entry.model = std::move(instance.model);
    entry.invoke_seconds =
        &metrics_.GetHistogram("optimus_function_invoke_seconds", {{"function", function}},
                               "End-to-end invoke wall seconds per function");
    deployed = &repository_.emplace(function, std::move(entry)).first->second.model;
  }

  if (options_.warm_plan_cache) {
    // Planning-strategy caching at registration (§4.4 Module 3): plan both
    // directions against every already-registered model.
    transformer_->cache().WarmFor(*deployed, peers, warm_pool_.get());
  }
}

void OptimusPlatform::DeployFile(const std::string& function, const ModelFile& file) {
  Deploy(function, DeserializeModel(file));
}

size_t OptimusPlatform::NumFunctions() const {
  std::shared_lock<std::shared_mutex> lock(repository_mutex_);
  return repository_.size();
}

size_t OptimusPlatform::NumLiveContainers() const {
  size_t count = 0;
  for (const std::unique_ptr<Node>& node : nodes_) {
    std::lock_guard<std::mutex> lock(node->mutex);
    count += node->containers.size();
  }
  return count;
}

PlatformCounters OptimusPlatform::counters() const {
  // A thin view over the registry — the counters live there (DESIGN.md §12).
  PlatformCounters counters;
  counters.warm_starts = static_cast<size_t>(warm_starts_.Value());
  counters.transforms = static_cast<size_t>(transforms_.Value());
  counters.cold_starts = static_cast<size_t>(cold_starts_.Value());
  counters.transform_failures = static_cast<size_t>(transform_failures_.Value());
  counters.transform_fallbacks = static_cast<size_t>(transform_fallbacks_.Value());
  counters.decide_failures = static_cast<size_t>(decide_failures_.Value());
  counters.failed_invokes = static_cast<size_t>(failed_invokes_.Value());
  return counters;
}

std::vector<std::string> OptimusPlatform::CheckContainerIntegrity() const {
  std::vector<std::string> violations;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    std::lock_guard<std::mutex> lock(nodes_[n]->mutex);
    for (const RealContainer& container : nodes_[n]->containers) {
      const std::string where =
          "node " + std::to_string(n) + " container " + std::to_string(container.id) + " (" +
          container.function + "): ";
      if (!container.instance.Loaded()) {
        violations.push_back(where + "no resident model");
        continue;
      }
      if (container.instance.model.name() != container.function) {
        violations.push_back(where + "resident model is '" + container.instance.model.name() +
                             "' — half-transformed or misassigned");
      }
      try {
        container.instance.model.Validate();
      } catch (const std::exception& e) {
        violations.push_back(where + "resident model invalid: " + e.what());
      }
    }
  }
  return violations;
}

void OptimusPlatform::ReapExpired(Node* node, double now) {
  auto& containers = node->containers;
  containers.erase(std::remove_if(containers.begin(), containers.end(),
                                  [&](const RealContainer& container) {
                                    return now - container.last_active >= options_.keep_alive;
                                  }),
                   containers.end());
}

int OptimusPlatform::PlaceFunction(const std::string& function) const {
  return static_cast<int>(std::hash<std::string>{}(function) %
                          static_cast<size_t>(options_.num_nodes));
}

double OptimusPlatform::AdvanceClock(double now) {
  // CAS-max: the clock only moves forward. A caller presenting an older `now`
  // (threads race between taking their timestamp and arriving here) is
  // clamped to the newest observed time rather than rejected.
  double prev = last_now_.load(std::memory_order_relaxed);
  while (prev < now) {
    if (last_now_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
      return now;
    }
  }
  return prev;
}

Status OptimusPlatform::TryInvoke(const std::string& function, const std::vector<float>& input,
                                  double now, InvokeResult* result,
                                  telemetry::TraceContext* trace) {
  try {
    *result = InvokeInternal(function, input, now, trace);
    return Status::Ok();
  } catch (const OptimusError& error) {
    failed_invokes_.Inc();
    return error.ToStatus();
  } catch (const std::exception& error) {
    failed_invokes_.Inc();
    return Status(ErrorCode::kInternal, error.what());
  }
}

InvokeResult OptimusPlatform::Invoke(const std::string& function,
                                     const std::vector<float>& input, double now,
                                     telemetry::TraceContext* trace) {
  InvokeResult result;
  const Status status = TryInvoke(function, input, now, &result, trace);
  if (!status.ok()) {
    throw OptimusError(status);
  }
  return result;
}

InvokeResult OptimusPlatform::InvokeInternal(const std::string& function,
                                             const std::vector<float>& input, double now,
                                             telemetry::TraceContext* trace) {
  const uint64_t invoke_start_ns = telemetry::MonotonicNanos();
  telemetry::ScopedSpan invoke_span(trace, "invoke", "platform");
  now = AdvanceClock(now);
  const Model* model_ptr = nullptr;
  telemetry::Histogram* function_seconds = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(repository_mutex_);
    auto model_it = repository_.find(function);
    if (model_it == repository_.end()) {
      throw OptimusError(ErrorCode::kNotFound, "Invoke: unknown function " + function);
    }
    model_ptr = &model_it->second.model;  // Map nodes are stable; models immutable.
    function_seconds = model_it->second.invoke_seconds;
  }
  const Model& model = *model_ptr;

  InvokeResult result;
  result.node = PlaceFunction(function);
  Node& node = *nodes_[static_cast<size_t>(result.node)];
  std::lock_guard<std::mutex> node_lock(node.mutex);
  ReapExpired(&node, now);

  const SystemProfile profile;  // CPU profile for latency estimation.
  RealContainer* chosen = nullptr;

  // Warm start: an idle container already holding this function's model.
  for (RealContainer& container : node.containers) {
    if (container.function == function) {
      chosen = &container;
      result.start = StartType::kWarm;
      result.estimated_latency = profile.InferenceCost(model);
      break;
    }
  }

  // Transformation: repurpose the best sufficiently-idle donor (only when the
  // node has no free slot; otherwise a fresh container preserves warm state).
  if (chosen == nullptr &&
      static_cast<int>(node.containers.size()) >= options_.containers_per_node) {
    RealContainer* best_donor = nullptr;
    double best_cost = 0.0;
    {
      telemetry::ScopedSpan decide_span(trace, "decide", "platform");
      const uint64_t decide_start_ns = telemetry::MonotonicNanos();
      for (RealContainer& container : node.containers) {
        if (now - container.last_active < options_.idle_threshold) {
          continue;
        }
        try {
          const TransformDecision decision =
              transformer_->Decide(container.instance.model, model, trace);
          if (best_donor == nullptr || decision.ChosenCost() < best_cost) {
            best_donor = &container;
            best_cost = decision.ChosenCost();
          }
        } catch (const std::exception&) {
          // Planning/verification failed for this pair (possibly a transient
          // injected fault): the candidate is simply not eligible this request.
          decide_failures_.Inc();
        }
      }
      decide_seconds_.Observe(
          static_cast<double>(telemetry::MonotonicNanos() - decide_start_ns) * 1e-9);
    }
    if (best_donor != nullptr) {
      try {
        const uint64_t transform_start_ns = telemetry::MonotonicNanos();
        const TransformOutcome outcome =
            transformer_->TransformOrLoad(&best_donor->instance, model, trace);
        if (outcome.decision.use_transform) {
          transform_seconds_.Observe(
              static_cast<double>(telemetry::MonotonicNanos() - transform_start_ns) * 1e-9);
        }
        result.start = outcome.decision.use_transform ? StartType::kTransform : StartType::kCold;
        result.donor_function = best_donor->function;
        result.estimated_latency = outcome.decision.ChosenCost() + profile.InferenceCost(model);
        best_donor->function = function;
        chosen = best_donor;
      } catch (const std::exception&) {
        // Transactional transformation: the donor's resident model may be
        // half-mutated, so the container is destroyed and the request falls
        // through to a fresh scratch (cold) load. The transformer already
        // charged the failure to the plan-cache quarantine.
        transform_failures_.Inc();
        const ContainerId poisoned = best_donor->id;
        auto& containers = node.containers;
        containers.erase(std::remove_if(containers.begin(), containers.end(),
                                        [&](const RealContainer& container) {
                                          return container.id == poisoned;
                                        }),
                         containers.end());
        result.transform_fallback = true;
      }
    }
  }

  // Cold start: fresh container (using a free slot — destroying a poisoned
  // donor frees one — or evicting the least-recently-active container on a
  // full node with no eligible donor).
  if (chosen == nullptr) {
    if (static_cast<int>(node.containers.size()) >= options_.containers_per_node) {
      auto victim = std::min_element(node.containers.begin(), node.containers.end(),
                                     [](const RealContainer& a, const RealContainer& b) {
                                       return a.last_active < b.last_active;
                                     });
      node.containers.erase(victim);
    }
    RealContainer container;
    container.id = next_container_id_.fetch_add(1, std::memory_order_relaxed);
    container.function = function;
    try {
      container.instance = loader_.Instantiate(model, /*weight_seed=*/1, /*breakdown=*/nullptr,
                                               trace);
    } catch (const std::exception& error) {
      // The scratch load is the path of last resort; classify its failure as
      // retryable — nothing about the request itself is wrong.
      throw OptimusError(ErrorCode::kUnavailable,
                         std::string("Invoke: scratch load failed: ") + error.what());
    }
    result.start = StartType::kCold;
    result.estimated_latency =
        profile.InitCost() + costs_->ScratchLoadCost(model) + profile.InferenceCost(model);
    node.containers.push_back(std::move(container));
    chosen = &node.containers.back();
  }

  chosen->last_active = now;
  {
    telemetry::ScopedSpan inference_span(trace, "inference", "inference");
    const uint64_t inference_start_ns = telemetry::MonotonicNanos();
    result.output = RunInference(chosen->instance, input);
    inference_seconds_.Observe(
        static_cast<double>(telemetry::MonotonicNanos() - inference_start_ns) * 1e-9);
  }

  // Count successes only after inference produced output, so the start-type
  // counters reconcile exactly with successful requests.
  const double invoke_seconds =
      static_cast<double>(telemetry::MonotonicNanos() - invoke_start_ns) * 1e-9;
  switch (result.start) {
    case StartType::kWarm:
      warm_starts_.Inc();
      invoke_seconds_warm_.Observe(invoke_seconds);
      break;
    case StartType::kTransform:
      transforms_.Inc();
      invoke_seconds_transform_.Observe(invoke_seconds);
      break;
    case StartType::kCold:
      cold_starts_.Inc();
      invoke_seconds_cold_.Observe(invoke_seconds);
      break;
  }
  if (function_seconds != nullptr) {
    function_seconds->Observe(invoke_seconds);
  }
  if (result.transform_fallback) {
    transform_fallbacks_.Inc();
  }
  invoke_span.Arg("start", static_cast<double>(result.start));
  return result;
}

}  // namespace optimus
