#include "src/core/platform.h"

#include <algorithm>
#include <functional>
#include <stdexcept>

#include "src/runtime/inference.h"

namespace optimus {

OptimusPlatform::OptimusPlatform(const CostModel* costs, const PlatformOptions& options)
    : costs_(costs), options_(options), loader_(costs) {
  if (options.num_nodes < 1 || options.containers_per_node < 1) {
    throw std::invalid_argument("OptimusPlatform: need at least one node and one container");
  }
  transformer_ = std::make_unique<Transformer>(costs, options.planner);
  if (options.warm_plan_cache && options.warm_threads > 1) {
    warm_pool_ = std::make_unique<ThreadPool>(options.warm_threads);
  }
  nodes_.reserve(static_cast<size_t>(options.num_nodes));
  for (int i = 0; i < options.num_nodes; ++i) {
    nodes_.push_back(std::make_unique<Node>());
  }
}

void OptimusPlatform::Deploy(const std::string& function, const Model& model) {
  {
    // Fast-fail on duplicates before materializing weights; the authoritative
    // check re-runs under the exclusive lock below.
    std::shared_lock<std::shared_mutex> lock(repository_mutex_);
    if (repository_.count(function) > 0) {
      throw std::invalid_argument("Deploy: function already registered: " + function);
    }
  }
  // Materialize weights (deterministic from the function name) so the
  // repository holds the function's full "model file" content.
  Model named = model;
  named.set_name(function);
  const uint64_t seed = std::hash<std::string>{}(function);
  ModelInstance instance = loader_.Instantiate(named, seed == 0 ? 1 : seed);

  // Register, snapshotting the peers to warm against. The warming itself runs
  // outside the repository lock: plans are independent of repository state and
  // map nodes are reference-stable, so concurrent Deploy/Invoke can proceed.
  const Model* deployed = nullptr;
  std::vector<std::reference_wrapper<const Model>> peers;
  {
    std::unique_lock<std::shared_mutex> lock(repository_mutex_);
    if (repository_.count(function) > 0) {
      throw std::invalid_argument("Deploy: function already registered: " + function);
    }
    for (const auto& [other_name, other_model] : repository_) {
      peers.emplace_back(other_model);
    }
    deployed = &repository_.emplace(function, std::move(instance.model)).first->second;
  }

  if (options_.warm_plan_cache) {
    // Planning-strategy caching at registration (§4.4 Module 3): plan both
    // directions against every already-registered model.
    transformer_->cache().WarmFor(*deployed, peers, warm_pool_.get());
  }
}

void OptimusPlatform::DeployFile(const std::string& function, const ModelFile& file) {
  Deploy(function, DeserializeModel(file));
}

size_t OptimusPlatform::NumFunctions() const {
  std::shared_lock<std::shared_mutex> lock(repository_mutex_);
  return repository_.size();
}

size_t OptimusPlatform::NumLiveContainers() const {
  size_t count = 0;
  for (const std::unique_ptr<Node>& node : nodes_) {
    std::lock_guard<std::mutex> lock(node->mutex);
    count += node->containers.size();
  }
  return count;
}

PlatformCounters OptimusPlatform::counters() const {
  PlatformCounters counters;
  counters.warm_starts = warm_starts_.load(std::memory_order_relaxed);
  counters.transforms = transforms_.load(std::memory_order_relaxed);
  counters.cold_starts = cold_starts_.load(std::memory_order_relaxed);
  counters.transform_failures = transform_failures_.load(std::memory_order_relaxed);
  counters.transform_fallbacks = transform_fallbacks_.load(std::memory_order_relaxed);
  counters.decide_failures = decide_failures_.load(std::memory_order_relaxed);
  counters.failed_invokes = failed_invokes_.load(std::memory_order_relaxed);
  return counters;
}

std::vector<std::string> OptimusPlatform::CheckContainerIntegrity() const {
  std::vector<std::string> violations;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    std::lock_guard<std::mutex> lock(nodes_[n]->mutex);
    for (const RealContainer& container : nodes_[n]->containers) {
      const std::string where =
          "node " + std::to_string(n) + " container " + std::to_string(container.id) + " (" +
          container.function + "): ";
      if (!container.instance.Loaded()) {
        violations.push_back(where + "no resident model");
        continue;
      }
      if (container.instance.model.name() != container.function) {
        violations.push_back(where + "resident model is '" + container.instance.model.name() +
                             "' — half-transformed or misassigned");
      }
      try {
        container.instance.model.Validate();
      } catch (const std::exception& e) {
        violations.push_back(where + "resident model invalid: " + e.what());
      }
    }
  }
  return violations;
}

void OptimusPlatform::ReapExpired(Node* node, double now) {
  auto& containers = node->containers;
  containers.erase(std::remove_if(containers.begin(), containers.end(),
                                  [&](const RealContainer& container) {
                                    return now - container.last_active >= options_.keep_alive;
                                  }),
                   containers.end());
}

int OptimusPlatform::PlaceFunction(const std::string& function) const {
  return static_cast<int>(std::hash<std::string>{}(function) %
                          static_cast<size_t>(options_.num_nodes));
}

double OptimusPlatform::AdvanceClock(double now) {
  // CAS-max: the clock only moves forward. A caller presenting an older `now`
  // (threads race between taking their timestamp and arriving here) is
  // clamped to the newest observed time rather than rejected.
  double prev = last_now_.load(std::memory_order_relaxed);
  while (prev < now) {
    if (last_now_.compare_exchange_weak(prev, now, std::memory_order_relaxed)) {
      return now;
    }
  }
  return prev;
}

Status OptimusPlatform::TryInvoke(const std::string& function, const std::vector<float>& input,
                                  double now, InvokeResult* result) {
  try {
    *result = InvokeInternal(function, input, now);
    return Status::Ok();
  } catch (const OptimusError& error) {
    failed_invokes_.fetch_add(1, std::memory_order_relaxed);
    return error.ToStatus();
  } catch (const std::exception& error) {
    failed_invokes_.fetch_add(1, std::memory_order_relaxed);
    return Status(ErrorCode::kInternal, error.what());
  }
}

InvokeResult OptimusPlatform::Invoke(const std::string& function,
                                     const std::vector<float>& input, double now) {
  InvokeResult result;
  const Status status = TryInvoke(function, input, now, &result);
  if (!status.ok()) {
    throw OptimusError(status);
  }
  return result;
}

InvokeResult OptimusPlatform::InvokeInternal(const std::string& function,
                                             const std::vector<float>& input, double now) {
  now = AdvanceClock(now);
  const Model* model_ptr = nullptr;
  {
    std::shared_lock<std::shared_mutex> lock(repository_mutex_);
    auto model_it = repository_.find(function);
    if (model_it == repository_.end()) {
      throw OptimusError(ErrorCode::kNotFound, "Invoke: unknown function " + function);
    }
    model_ptr = &model_it->second;  // Map nodes are stable; models immutable.
  }
  const Model& model = *model_ptr;

  InvokeResult result;
  result.node = PlaceFunction(function);
  Node& node = *nodes_[static_cast<size_t>(result.node)];
  std::lock_guard<std::mutex> node_lock(node.mutex);
  ReapExpired(&node, now);

  const SystemProfile profile;  // CPU profile for latency estimation.
  RealContainer* chosen = nullptr;

  // Warm start: an idle container already holding this function's model.
  for (RealContainer& container : node.containers) {
    if (container.function == function) {
      chosen = &container;
      result.start = StartType::kWarm;
      result.estimated_latency = profile.InferenceCost(model);
      break;
    }
  }

  // Transformation: repurpose the best sufficiently-idle donor (only when the
  // node has no free slot; otherwise a fresh container preserves warm state).
  if (chosen == nullptr &&
      static_cast<int>(node.containers.size()) >= options_.containers_per_node) {
    RealContainer* best_donor = nullptr;
    double best_cost = 0.0;
    for (RealContainer& container : node.containers) {
      if (now - container.last_active < options_.idle_threshold) {
        continue;
      }
      try {
        const TransformDecision decision =
            transformer_->Decide(container.instance.model, model);
        if (best_donor == nullptr || decision.ChosenCost() < best_cost) {
          best_donor = &container;
          best_cost = decision.ChosenCost();
        }
      } catch (const std::exception&) {
        // Planning/verification failed for this pair (possibly a transient
        // injected fault): the candidate is simply not eligible this request.
        decide_failures_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (best_donor != nullptr) {
      try {
        const TransformOutcome outcome =
            transformer_->TransformOrLoad(&best_donor->instance, model);
        result.start = outcome.decision.use_transform ? StartType::kTransform : StartType::kCold;
        result.donor_function = best_donor->function;
        result.estimated_latency = outcome.decision.ChosenCost() + profile.InferenceCost(model);
        best_donor->function = function;
        chosen = best_donor;
      } catch (const std::exception&) {
        // Transactional transformation: the donor's resident model may be
        // half-mutated, so the container is destroyed and the request falls
        // through to a fresh scratch (cold) load. The transformer already
        // charged the failure to the plan-cache quarantine.
        transform_failures_.fetch_add(1, std::memory_order_relaxed);
        const ContainerId poisoned = best_donor->id;
        auto& containers = node.containers;
        containers.erase(std::remove_if(containers.begin(), containers.end(),
                                        [&](const RealContainer& container) {
                                          return container.id == poisoned;
                                        }),
                         containers.end());
        result.transform_fallback = true;
      }
    }
  }

  // Cold start: fresh container (using a free slot — destroying a poisoned
  // donor frees one — or evicting the least-recently-active container on a
  // full node with no eligible donor).
  if (chosen == nullptr) {
    if (static_cast<int>(node.containers.size()) >= options_.containers_per_node) {
      auto victim = std::min_element(node.containers.begin(), node.containers.end(),
                                     [](const RealContainer& a, const RealContainer& b) {
                                       return a.last_active < b.last_active;
                                     });
      node.containers.erase(victim);
    }
    RealContainer container;
    container.id = next_container_id_.fetch_add(1, std::memory_order_relaxed);
    container.function = function;
    try {
      container.instance = loader_.Instantiate(model);
    } catch (const std::exception& error) {
      // The scratch load is the path of last resort; classify its failure as
      // retryable — nothing about the request itself is wrong.
      throw OptimusError(ErrorCode::kUnavailable,
                         std::string("Invoke: scratch load failed: ") + error.what());
    }
    result.start = StartType::kCold;
    result.estimated_latency =
        profile.InitCost() + costs_->ScratchLoadCost(model) + profile.InferenceCost(model);
    node.containers.push_back(std::move(container));
    chosen = &node.containers.back();
  }

  chosen->last_active = now;
  result.output = RunInference(chosen->instance, input);

  // Count successes only after inference produced output, so the start-type
  // counters reconcile exactly with successful requests.
  switch (result.start) {
    case StartType::kWarm:
      warm_starts_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StartType::kTransform:
      transforms_.fetch_add(1, std::memory_order_relaxed);
      break;
    case StartType::kCold:
      cold_starts_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (result.transform_fallback) {
    transform_fallbacks_.fetch_add(1, std::memory_order_relaxed);
  }
  return result;
}

}  // namespace optimus
