#include "src/core/platform.h"

#include <algorithm>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "src/common/fault.h"
#include "src/runtime/inference.h"

namespace optimus {

OptimusPlatform::OptimusPlatform(const CostModel* costs, const PlatformOptions& options)
    : costs_(costs),
      options_(options),
      traces_(&metrics_, telemetry::TraceCollectorOptions{options.trace_capacity,
                                                          options.trace_sample_period,
                                                          options.trace_seed}),
      loader_(costs),
      warm_starts_(metrics_.GetCounter("optimus_starts_total", {{"kind", "warm"}},
                                       "Successful invocations by start type")),
      transforms_(metrics_.GetCounter("optimus_starts_total", {{"kind", "transform"}},
                                      "Successful invocations by start type")),
      cold_starts_(metrics_.GetCounter("optimus_starts_total", {{"kind", "cold"}},
                                       "Successful invocations by start type")),
      transform_failures_(
          metrics_.GetCounter("optimus_transform_failures_total", {},
                              "Transformations aborted mid-plan (container destroyed)")),
      transform_fallbacks_(
          metrics_.GetCounter("optimus_transform_fallbacks_total", {},
                              "Requests served by the scratch fallback after a failed transform")),
      decide_failures_(metrics_.GetCounter("optimus_decide_failures_total", {},
                                           "Donor candidates skipped because Decide threw")),
      failed_invokes_(metrics_.GetCounter("optimus_failed_invokes_total", {},
                                          "TryInvoke calls that returned a non-OK status")),
      warm_batches_(metrics_.GetCounter("optimus_warm_batches_total", {},
                                        "Batches served fully warm under one node lock")),
      node_revocations_(metrics_.GetCounter("optimus_node_revocations_total", {},
                                            "Node revocations issued (drain or immediate kill)")),
      node_revives_(metrics_.GetCounter("optimus_node_revives_total", {},
                                        "Down nodes brought back into rotation")),
      drained_containers_(
          metrics_.GetCounter("optimus_drained_containers_total", {},
                              "Containers reclaimed by node kills and finalized drains")),
      rerouted_invokes_(
          metrics_.GetCounter("optimus_rerouted_invokes_total", {},
                              "Invokes re-homed because the routed node was not accepting")),
      warming_cycles_(metrics_.GetCounter("optimus_warming_cycles_total", {},
                                          "Forecast-driven warming cycles executed")),
      warming_orders_(metrics_.GetCounter("optimus_warming_orders_total", {},
                                          "Pre-warm orders planned by the warming policy")),
      warming_prewarms_cold_(
          metrics_.GetCounter("optimus_warming_prewarms_total", {{"kind", "cold"}},
                              "Containers prepared speculatively, by mechanism")),
      warming_prewarms_transform_(
          metrics_.GetCounter("optimus_warming_prewarms_total", {{"kind", "transform"}},
                              "Containers prepared speculatively, by mechanism")),
      warming_hits_(metrics_.GetCounter("optimus_warming_hits_total", {},
                                        "Requests served warm by a pre-warmed container")),
      warming_misses_(
          metrics_.GetCounter("optimus_warming_misses_total", {},
                              "Non-warm starts while warming was enabled (forecast misses)")),
      warming_waste_(metrics_.GetCounter("optimus_warming_waste_total", {},
                                         "Pre-warmed containers that died before any request")),
      warming_skipped_(
          metrics_.GetCounter("optimus_warming_skipped_total", {},
                              "Pre-warm orders dropped (already warm, no donor, node down)")),
      warming_failures_(
          metrics_.GetCounter("optimus_warming_failures_total", {},
                              "Pre-warm orders aborted by faults or transform failures")),
      invoke_seconds_warm_(metrics_.GetHistogram("optimus_invoke_seconds", {{"start", "warm"}},
                                                 "End-to-end invoke wall seconds by start type")),
      invoke_seconds_transform_(
          metrics_.GetHistogram("optimus_invoke_seconds", {{"start", "transform"}},
                                "End-to-end invoke wall seconds by start type")),
      invoke_seconds_cold_(metrics_.GetHistogram("optimus_invoke_seconds", {{"start", "cold"}},
                                                 "End-to-end invoke wall seconds by start type")),
      decide_seconds_(metrics_.GetHistogram("optimus_phase_seconds", {{"phase", "decide"}},
                                            "Wall seconds spent per invoke-path phase")),
      transform_seconds_(metrics_.GetHistogram("optimus_phase_seconds", {{"phase", "transform"}},
                                               "Wall seconds spent per invoke-path phase")),
      inference_seconds_(metrics_.GetHistogram("optimus_phase_seconds", {{"phase", "inference"}},
                                               "Wall seconds spent per invoke-path phase")),
      batch_size_(metrics_.GetHistogram("optimus_batch_size", {},
                                        "Requests per TryInvokeBatch dispatch")),
      warming_lead_seconds_(
          metrics_.GetHistogram("optimus_warming_lead_seconds", {},
                                "Virtual seconds between a pre-warm and its first hit")) {
  if (options.num_nodes < 1 || options.containers_per_node < 1) {
    throw std::invalid_argument("OptimusPlatform: need at least one node and one container");
  }
  loader_.set_metrics(&metrics_);
  transformer_ = std::make_unique<Transformer>(costs, options.planner, &metrics_);
  if (options.warm_plan_cache && options.warm_threads > 1) {
    warm_pool_ = std::make_unique<ThreadPool>(options.warm_threads);
  }
  pool_ = std::make_unique<NodePool>(options.num_nodes, options.containers_per_node);
  PlacementManagerOptions placement_options;
  placement_options.policy = options.placement;
  placement_options.num_nodes = options.num_nodes;
  placement_options.rebalance_interval = options.rebalance_interval;
  placement_options.demand_slots = options.demand_slots;
  placement_ = std::make_unique<PlacementManager>(placement_options, costs, &metrics_);
  // Always construct the engine (the gateway admin route can enable warming
  // at runtime); the loop thread only exists when a cadence is configured.
  warming_engine_ = std::make_unique<WarmingEngine>(options.warming);
  // The engine's cadence reads the platform clock — warming, keep-alive, and
  // drains consult one time source (DESIGN.md §18).
  warming_engine_->AttachClock(&clock_);
  if (options.rebalance_interval > 0.0) {
    rebalancer_ = std::thread([this] { RebalancerLoop(); });
  }
  if (options.warming.interval > 0.0) {
    warming_thread_ = std::thread([this] { WarmingLoop(); });
  }
}

OptimusPlatform::~OptimusPlatform() {
  {
    MutexLock lock(rebalance_mutex_);
    shutdown_ = true;
  }
  rebalance_cv_.NotifyAll();
  if (rebalancer_.joinable()) {
    rebalancer_.join();
  }
  {
    MutexLock lock(warming_mutex_);
    warming_shutdown_ = true;
  }
  warming_cv_.NotifyAll();
  if (warming_thread_.joinable()) {
    warming_thread_.join();
  }
}

void OptimusPlatform::RequestRebalance() {
  if (!rebalancer_.joinable()) {
    return;
  }
  {
    MutexLock lock(rebalance_mutex_);
    rebalance_requested_ = true;
  }
  rebalance_cv_.NotifyOne();
}

void OptimusPlatform::RebalancerLoop() {
  MutexLock lock(rebalance_mutex_);
  for (;;) {
    while (!rebalance_requested_ && !shutdown_) {
      rebalance_cv_.Wait(rebalance_mutex_);
    }
    if (shutdown_) {
      return;
    }
    rebalance_requested_ = false;
    // Drop the mutex across the recompute: RebalanceNow takes the repository
    // (rank kRepository, below kRebalance) and the demand/update locks, and
    // invokers signalling RequestRebalance must not block on a recompute.
    lock.Unlock();
    RebalanceNow("demand");
    lock.Lock();
  }
}

bool OptimusPlatform::RebalanceNow(const std::string& reason) {
  // Harvest the demand signal: the per-function invoke histograms' cumulative
  // counts in the telemetry registry. The accumulator turns successive
  // harvests into slotted demand series for the §5.1 correlation term.
  std::map<std::string, uint64_t> totals;
  std::vector<const Model*> models;
  {
    ReaderLock lock(repository_mutex_);
    models.reserve(repository_.size());
    for (const auto& [name, entry] : repository_) {
      totals[name] = entry.invoke_seconds != nullptr ? entry.invoke_seconds->Count() : 0;
      models.push_back(&entry.model);  // Map nodes are stable; models immutable.
    }
  }
  if (models.empty()) {
    return false;  // Nothing to place yet.
  }
  placement_->RecordDemand(totals);
  return placement_->Rebalance(models, placement_->DemandHistory(), reason);
}

PlacementDiff OptimusPlatform::PreviewRebalance() {
  std::vector<const Model*> models;
  {
    ReaderLock lock(repository_mutex_);
    models.reserve(repository_.size());
    for (const auto& [name, entry] : repository_) {
      models.push_back(&entry.model);
    }
  }
  return placement_->PreviewRebalance(models, placement_->DemandHistory());
}

void OptimusPlatform::RequestWarming() {
  if (!warming_thread_.joinable()) {
    return;
  }
  {
    MutexLock lock(warming_mutex_);
    warming_requested_ = true;
  }
  warming_cv_.NotifyOne();
}

void OptimusPlatform::WarmingLoop() {
  MutexLock lock(warming_mutex_);
  for (;;) {
    while (!warming_requested_ && !warming_shutdown_) {
      warming_cv_.Wait(warming_mutex_);
    }
    if (warming_shutdown_) {
      return;
    }
    warming_requested_ = false;
    // Drop the mutex across the cycle: WarmNow takes kRepository → kDemand →
    // kNode, and invokers signalling RequestWarming must never block on a
    // speculative transform.
    lock.Unlock();
    WarmNow(clock_.Now());
    lock.Lock();
  }
}

size_t OptimusPlatform::WarmNow(double now) {
  if (!warming_engine_->enabled()) {
    return 0;
  }
  now = AdvanceClock(now);
  // Harvest the same demand signal the rebalancer uses, through the same
  // accumulator — GET /demand therefore shows exactly the series the
  // forecaster predicted from.
  std::map<std::string, uint64_t> totals;
  {
    ReaderLock lock(repository_mutex_);
    for (const auto& [name, entry] : repository_) {
      totals[name] = entry.invoke_seconds != nullptr ? entry.invoke_seconds->Count() : 0;
    }
  }
  warming_cycles_.Inc();
  // Sweep expired containers on every cycle so a speculation that died
  // unused is charged to the waste bucket promptly — even on cycles that
  // plan no orders.
  for (int i = 0; i < pool_->num_nodes(); ++i) {
    NodePool::LockedNode node = pool_->Lock(i);
    ReapNode(node, now);
  }
  if (totals.empty()) {
    return 0;  // Nothing deployed yet.
  }
  placement_->RecordDemand(totals);
  const std::shared_ptr<const PlacementTable> table = placement_->Table();
  const std::vector<WarmingOrder> orders =
      warming_engine_->PlanOrders(placement_->DemandHistory(), *table);
  warming_orders_.Inc(orders.size());
  size_t executed = 0;
  for (const WarmingOrder& order : orders) {
    if (ExecutePrewarmOrder(order, now)) {
      ++executed;
    }
  }
  return executed;
}

bool OptimusPlatform::ExecutePrewarmOrder(const WarmingOrder& order, double now) {
  // Injected prefetch failure (DESIGN.md §17): the order aborts before
  // touching any node, so reactive traffic never observes it.
  if (fault::Triggered("warming.prefetch")) {
    warming_failures_.Inc();
    return false;
  }
  const Model* model_ptr = nullptr;
  {
    ReaderLock lock(repository_mutex_);
    const auto it = repository_.find(order.function);
    if (it == repository_.end()) {
      warming_skipped_.Inc();
      return false;
    }
    model_ptr = &it->second.model;
  }
  const Model& model = *model_ptr;
  if (order.node < 0 || order.node >= pool_->num_nodes() || !pool_->Accepting(order.node)) {
    warming_skipped_.Inc();  // Planned against a table that has since drained.
    return false;
  }
  NodePool::LockedNode node = pool_->Lock(order.node);
  if (!node.Servable(now)) {
    warming_skipped_.Inc();
    return false;
  }
  ReapNode(node, now);
  if (node.FindWarm(order.function) != nullptr) {
    warming_skipped_.Inc();  // The forecast demand is already warm here.
    return false;
  }
  if (!node.Full()) {
    // Free slot: speculative scratch load into a fresh container.
    RealContainer container;
    container.id = pool_->AllocateId();
    container.function = order.function;
    try {
      container.instance = loader_.Instantiate(model, /*weight_seed=*/1, /*breakdown=*/nullptr,
                                               /*trace=*/nullptr, node.AcquireArena());
    } catch (const std::exception&) {
      warming_failures_.Inc();
      return false;
    }
    container.prewarmed = true;
    container.prewarmed_at = now;
    container.last_active = now;
    node.Adopt(std::move(container));
    warming_prewarms_cold_.Inc();
    return true;
  }
  // Full node: pre-transform the cheapest sufficiently-idle donor via the
  // cached plan. Speculation never evicts — a full node with no idle donor
  // means its capacity is earning its keep, so the order is dropped.
  RealContainer* best_donor = nullptr;
  double best_cost = 0.0;
  for (RealContainer& container : node.containers()) {
    if (now - container.last_active < options_.idle_threshold) {
      continue;
    }
    try {
      const TransformDecision decision = transformer_->Decide(container.instance.model, model);
      if (best_donor == nullptr || decision.ChosenCost() < best_cost) {
        best_donor = &container;
        best_cost = decision.ChosenCost();
      }
    } catch (const std::exception&) {
      decide_failures_.Inc();
    }
  }
  if (best_donor == nullptr) {
    warming_skipped_.Inc();
    return false;
  }
  const bool donor_was_prewarmed = best_donor->prewarmed;
  try {
    transformer_->TransformOrLoad(&best_donor->instance, model);
  } catch (const std::exception&) {
    // Transactional like the reactive path: the half-mutated donor is
    // destroyed. Charged to the warming bucket, not transform_failures_, so
    // reactive accounting stays reconcilable.
    warming_failures_.Inc();
    if (donor_was_prewarmed) {
      warming_waste_.Inc();  // The consumed speculation never served.
    }
    node.RemoveById(best_donor->id);
    return false;
  }
  if (donor_was_prewarmed) {
    warming_waste_.Inc();  // Repurposed before it ever served a request.
  }
  best_donor->function = order.function;
  best_donor->prewarmed = true;
  best_donor->prewarmed_at = now;
  best_donor->last_active = now;
  warming_prewarms_transform_.Inc();
  return true;
}

size_t OptimusPlatform::PrewarmedContainers() const {
  size_t live = 0;
  pool_->ForEachContainer([&live](int, const RealContainer& container) {
    if (container.prewarmed) {
      ++live;
    }
  });
  return live;
}

std::string OptimusPlatform::WarmingStatsJson() const {
  const WarmingOptions& warming = warming_engine_->options();
  std::ostringstream out;
  out << "{\"enabled\":" << (warming_engine_->enabled() ? "true" : "false")
      << ",\"interval\":" << warming.interval << ",\"forecaster\":\""
      << warming_engine_->forecaster().name() << "\",\"policy\":\""
      << warming_engine_->policy().name() << "\",\"budget\":{\"max_orders_per_cycle\":"
      << warming.budget.max_orders_per_cycle
      << ",\"max_orders_per_node\":" << warming.budget.max_orders_per_node
      << ",\"containers_per_order\":" << warming.budget.containers_per_order
      << ",\"min_predicted_rate\":" << warming.budget.min_predicted_rate
      << "},\"cycles\":" << warming_cycles_.Value() << ",\"orders\":" << warming_orders_.Value()
      << ",\"prewarms\":{\"cold\":" << warming_prewarms_cold_.Value()
      << ",\"transform\":" << warming_prewarms_transform_.Value()
      << "},\"hits\":" << warming_hits_.Value() << ",\"misses\":" << warming_misses_.Value()
      << ",\"waste\":" << warming_waste_.Value() << ",\"skipped\":" << warming_skipped_.Value()
      << ",\"failures\":" << warming_failures_.Value()
      << ",\"prewarmed_containers\":" << PrewarmedContainers() << "}";
  return out.str();
}

bool OptimusPlatform::RevokeNode(int node, double grace_seconds, double now) {
  if (node < 0 || node >= pool_->num_nodes()) {
    return false;
  }
  now = AdvanceClock(now);
  const uint64_t reclaimed_before = pool_->ReclaimedContainers();
  if (!pool_->RevokeNode(node, grace_seconds, now)) {
    return false;
  }
  node_revocations_.Inc();
  const uint64_t reclaimed = pool_->ReclaimedContainers() - reclaimed_before;
  if (reclaimed > 0) {
    drained_containers_.Inc(reclaimed);
  }
  // Invalidation first: the mask-republished table re-homes the dead node's
  // functions over the live ring immediately; the full policy re-cluster
  // ("node_down") then revises the placement over the surviving nodes.
  placement_->SetNodeLive(node, false);
  RebalanceNow("node_down");
  return true;
}

bool OptimusPlatform::ReviveNode(int node) {
  if (node < 0 || node >= pool_->num_nodes()) {
    return false;
  }
  if (!pool_->ReviveNode(node)) {
    return false;
  }
  node_revives_.Inc();
  placement_->SetNodeLive(node, true);
  RebalanceNow("node_up");
  return true;
}

int OptimusPlatform::RouteAccepting(const std::string& function) {
  const int primary = placement_->Route(function);
  if (pool_->Accepting(primary)) {
    return primary;
  }
  // Race window: the table routed us to a node revoked since its mask was
  // published. Deterministic linear probe over accepting nodes so concurrent
  // requests for the same function still pile onto one node.
  const int n = pool_->num_nodes();
  const size_t hashed = std::hash<std::string>{}(function);
  for (int k = 0; k < n; ++k) {
    const int candidate = static_cast<int>((hashed + static_cast<size_t>(k)) % static_cast<size_t>(n));
    if (pool_->Accepting(candidate)) {
      rerouted_invokes_.Inc();
      return candidate;
    }
  }
  return primary;  // Total outage; the Servable check fails the request.
}

void OptimusPlatform::FinalizeDrains(double now) {
  if (pool_->DrainingNodes() == 0) {
    return;
  }
  const size_t reclaimed = pool_->FinalizeExpiredDrains(now);
  if (reclaimed > 0) {
    drained_containers_.Inc(reclaimed);
  }
}

void OptimusPlatform::ReapNode(NodePool::LockedNode& node, double now) {
  const size_t expired = node.ReapExpired(now, options_.keep_alive);
  if (expired > 0) {
    warming_waste_.Inc(expired);  // Speculations that expired before any hit.
  }
}

void OptimusPlatform::Deploy(const std::string& function, const Model& model) {
  {
    // Fast-fail on duplicates before materializing weights; the authoritative
    // check re-runs under the exclusive lock below.
    ReaderLock lock(repository_mutex_);
    if (repository_.count(function) > 0) {
      throw std::invalid_argument("Deploy: function already registered: " + function);
    }
  }
  // Materialize weights (deterministic from the function name) so the
  // repository holds the function's full "model file" content.
  Model named = model;
  named.set_name(function);
  const uint64_t seed = std::hash<std::string>{}(function);
  ModelInstance instance = loader_.Instantiate(named, seed == 0 ? 1 : seed);

  // Register, snapshotting the peers to warm and place against. The warming
  // itself runs outside the repository lock: plans are independent of
  // repository state and map nodes are reference-stable, so concurrent
  // Deploy/Invoke can proceed.
  const Model* deployed = nullptr;
  std::vector<std::reference_wrapper<const Model>> peers;
  std::vector<const Model*> peer_models;
  {
    WriterLock lock(repository_mutex_);
    if (repository_.count(function) > 0) {
      throw std::invalid_argument("Deploy: function already registered: " + function);
    }
    for (const auto& [other_name, other_entry] : repository_) {
      peers.emplace_back(other_entry.model);
      peer_models.push_back(&other_entry.model);
    }
    FunctionEntry entry;
    entry.model = std::move(instance.model);
    entry.invoke_seconds =
        &metrics_.GetHistogram("optimus_function_invoke_seconds", {{"function", function}},
                               "End-to-end invoke wall seconds per function");
    deployed = &repository_.emplace(function, std::move(entry)).first->second.model;
  }

  // Deploy trigger (DESIGN.md §13): slot the new function into the placement
  // table incrementally — existing functions never move on a deploy.
  placement_->AddFunction(*deployed, peer_models);

  if (options_.warm_plan_cache) {
    // Planning-strategy caching at registration (§4.4 Module 3): plan both
    // directions against every already-registered model.
    transformer_->cache().WarmFor(*deployed, peers, warm_pool_.get());
  }
}

void OptimusPlatform::DeployFile(const std::string& function, const ModelFile& file) {
  Deploy(function, DeserializeModel(file));
}

size_t OptimusPlatform::NumFunctions() const {
  ReaderLock lock(repository_mutex_);
  return repository_.size();
}

size_t OptimusPlatform::NumLiveContainers() const { return pool_->TotalContainers(); }

PlatformCounters OptimusPlatform::counters() const {
  // A thin view over the registry — the counters live there (DESIGN.md §12).
  PlatformCounters counters;
  counters.warm_starts = static_cast<size_t>(warm_starts_.Value());
  counters.transforms = static_cast<size_t>(transforms_.Value());
  counters.cold_starts = static_cast<size_t>(cold_starts_.Value());
  counters.transform_failures = static_cast<size_t>(transform_failures_.Value());
  counters.transform_fallbacks = static_cast<size_t>(transform_fallbacks_.Value());
  counters.decide_failures = static_cast<size_t>(decide_failures_.Value());
  counters.failed_invokes = static_cast<size_t>(failed_invokes_.Value());
  // Lifecycle counters come from the pool (the authoritative source the chaos
  // harness reconciles against); reroutes only exist as a registry series.
  counters.node_revocations = static_cast<size_t>(pool_->Revocations());
  counters.node_revives = static_cast<size_t>(pool_->Revives());
  counters.reclaimed_containers = static_cast<size_t>(pool_->ReclaimedContainers());
  counters.rerouted_invokes = static_cast<size_t>(rerouted_invokes_.Value());
  counters.draining_nodes = pool_->DrainingNodes();
  counters.accepting_nodes = pool_->AcceptingNodes();
  counters.warming_cycles = static_cast<size_t>(warming_cycles_.Value());
  counters.warming_orders = static_cast<size_t>(warming_orders_.Value());
  counters.warming_prewarms_cold = static_cast<size_t>(warming_prewarms_cold_.Value());
  counters.warming_prewarms_transform = static_cast<size_t>(warming_prewarms_transform_.Value());
  counters.warming_hits = static_cast<size_t>(warming_hits_.Value());
  counters.warming_misses = static_cast<size_t>(warming_misses_.Value());
  counters.warming_waste = static_cast<size_t>(warming_waste_.Value());
  counters.warming_skipped = static_cast<size_t>(warming_skipped_.Value());
  counters.warming_failures = static_cast<size_t>(warming_failures_.Value());
  return counters;
}

std::vector<std::string> OptimusPlatform::CheckContainerIntegrity() const {
  std::vector<std::string> violations;
  pool_->ForEachContainer([&violations](int node, const RealContainer& container) {
    const std::string where = "node " + std::to_string(node) + " container " +
                              std::to_string(container.id) + " (" + container.function + "): ";
    if (!container.instance.Loaded()) {
      violations.push_back(where + "no resident model");
      return;
    }
    if (container.instance.model.name() != container.function) {
      violations.push_back(where + "resident model is '" + container.instance.model.name() +
                           "' — half-transformed or misassigned");
    }
    try {
      container.instance.model.Validate();
    } catch (const std::exception& e) {
      violations.push_back(where + "resident model invalid: " + e.what());
    }
  });
  return violations;
}

double OptimusPlatform::AdvanceClock(double now) {
  // CAS-max: the clock only moves forward. A caller presenting an older `now`
  // (threads race between taking their timestamp and arriving here) is
  // clamped to the newest observed time rather than rejected.
  return clock_.AdvanceTo(now);
}

Status OptimusPlatform::TryInvoke(const std::string& function, const std::vector<float>& input,
                                  double now, InvokeResult* result,
                                  telemetry::TraceContext* trace) {
  try {
    *result = InvokeInternal(function, input, now, trace);
    return Status::Ok();
  } catch (const OptimusError& error) {
    failed_invokes_.Inc();
    return error.ToStatus();
  } catch (const std::exception& error) {
    failed_invokes_.Inc();
    return Status(ErrorCode::kInternal, error.what());
  }
}

InvokeResult OptimusPlatform::Invoke(const std::string& function,
                                     const std::vector<float>& input, double now,
                                     telemetry::TraceContext* trace) {
  InvokeResult result;
  const Status status = TryInvoke(function, input, now, &result, trace);
  if (!status.ok()) {
    throw OptimusError(status);
  }
  return result;
}

std::vector<Status> OptimusPlatform::TryInvokeBatch(
    const std::string& function, const std::vector<const std::vector<float>*>& inputs, double now,
    std::vector<InvokeResult>* results, const std::vector<telemetry::TraceContext*>* traces) {
  results->assign(inputs.size(), InvokeResult{});
  std::vector<Status> statuses(inputs.size(), Status::Ok());
  if (inputs.empty()) {
    return statuses;
  }
  batch_size_.Observe(static_cast<double>(inputs.size()));
  now = AdvanceClock(now);
  const auto trace_for = [&](size_t i) -> telemetry::TraceContext* {
    return traces != nullptr && i < traces->size() ? (*traces)[i] : nullptr;
  };

  const Model* model_ptr = nullptr;
  telemetry::Histogram* function_seconds = nullptr;
  {
    ReaderLock lock(repository_mutex_);
    auto model_it = repository_.find(function);
    if (model_it == repository_.end()) {
      failed_invokes_.Inc(inputs.size());
      for (Status& status : statuses) {
        status = Status(ErrorCode::kNotFound, "Invoke: unknown function " + function);
      }
      return statuses;
    }
    model_ptr = &model_it->second.model;
    function_seconds = model_it->second.invoke_seconds;
  }

  FinalizeDrains(now);

  // Warm fast path: one route, one node lock, the whole batch drained against
  // the resident container. Any miss (not warm on the primary, or the node
  // revoked between routing and locking) falls through to the exact
  // per-request path below — batching never changes which start type a
  // request gets, only how many locks a warm run costs.
  {
    const SystemProfile profile;
    const int primary = RouteAccepting(function);
    NodePool::LockedNode node = pool_->Lock(primary);
    RealContainer* warm = nullptr;
    if (node.Servable(now)) {
      ReapNode(node, now);
      warm = node.FindWarm(function);
    }
    if (warm != nullptr) {
      warm->last_active = now;
      if (warm->prewarmed) {
        warm->prewarmed = false;
        warming_hits_.Inc();
        warming_lead_seconds_.Observe(std::max(0.0, now - warm->prewarmed_at));
      }
      const double inference_estimate = profile.InferenceCost(*model_ptr);
      for (size_t i = 0; i < inputs.size(); ++i) {
        const uint64_t invoke_start_ns = telemetry::MonotonicNanos();
        telemetry::TraceContext* trace = trace_for(i);
        telemetry::ScopedSpan invoke_span(trace, "invoke", "platform");
        InvokeResult& result = (*results)[i];
        result.node = primary;
        result.start = StartType::kWarm;
        result.estimated_latency = inference_estimate;
        try {
          telemetry::ScopedSpan inference_span(trace, "inference", "inference");
          const uint64_t inference_start_ns = telemetry::MonotonicNanos();
          result.output = RunInference(warm->instance, *inputs[i]);
          inference_seconds_.Observe(
              static_cast<double>(telemetry::MonotonicNanos() - inference_start_ns) * 1e-9);
        } catch (const std::exception& error) {
          failed_invokes_.Inc();
          statuses[i] = Status(ErrorCode::kInternal, error.what());
          continue;
        }
        const double invoke_seconds =
            static_cast<double>(telemetry::MonotonicNanos() - invoke_start_ns) * 1e-9;
        warm_starts_.Inc();
        invoke_seconds_warm_.Observe(invoke_seconds);
        if (function_seconds != nullptr) {
          function_seconds->Observe(invoke_seconds);
        }
        invoke_span.Arg("start", static_cast<double>(StartType::kWarm));
      }
      warm_batches_.Inc();
      if (placement_->RebalanceDue(now)) {
        RequestRebalance();
      }
      if (warming_engine_->Due(now)) {
        RequestWarming();
      }
      return statuses;
    }
  }

  // Miss: per-request path. The first request cold-starts (or transforms)
  // the container; subsequent batches for this function take the fast path.
  for (size_t i = 0; i < inputs.size(); ++i) {
    statuses[i] = TryInvoke(function, *inputs[i], now, &(*results)[i], trace_for(i));
  }
  return statuses;
}

InvokeResult OptimusPlatform::InvokeInternal(const std::string& function,
                                             const std::vector<float>& input, double now,
                                             telemetry::TraceContext* trace) {
  const uint64_t invoke_start_ns = telemetry::MonotonicNanos();
  telemetry::ScopedSpan invoke_span(trace, "invoke", "platform");
  now = AdvanceClock(now);
  const Model* model_ptr = nullptr;
  telemetry::Histogram* function_seconds = nullptr;
  {
    ReaderLock lock(repository_mutex_);
    auto model_it = repository_.find(function);
    if (model_it == repository_.end()) {
      throw OptimusError(ErrorCode::kNotFound, "Invoke: unknown function " + function);
    }
    model_ptr = &model_it->second.model;  // Map nodes are stable; models immutable.
    function_seconds = model_it->second.invoke_seconds;
  }
  const Model& model = *model_ptr;
  const SystemProfile profile;  // CPU profile for latency estimation.

  // Lazily close any grace windows that expired by `now` before routing, so
  // a Draining node past its deadline never serves this request.
  FinalizeDrains(now);

  // O(1) routing: one lock-free table read names the primary node, and only
  // that node is locked. No per-node scanning happens on this path.
  InvokeResult result;
  const int primary = RouteAccepting(function);
  result.node = primary;

  // Injected spot revocation (DESIGN.md §16): the routed node vanishes with
  // zero grace mid-request. The request fails retryably — the gateway's retry
  // loop re-routes it to a surviving node via the republished mask.
  if (fault::Triggered("node.revoke")) {
    RevokeNode(primary, /*grace_seconds=*/0.0, now);
    throw OptimusError(ErrorCode::kUnavailable,
                       "Invoke: node " + std::to_string(primary) + " revoked mid-request");
  }

  NodePool::LockedNode node = pool_->Lock(primary);
  if (!node.Servable(now)) {
    // Routed into the revocation race window (or a total outage): the node
    // went Down / past its grace deadline between routing and locking.
    throw OptimusError(ErrorCode::kUnavailable,
                       "Invoke: node " + std::to_string(primary) + " is " +
                           NodeLifecycleName(node.lifecycle()) + " (revoked)");
  }
  ReapNode(node, now);

  // Warm start: an idle container already holding this function's model.
  RealContainer* chosen = node.FindWarm(function);
  if (chosen != nullptr) {
    result.start = StartType::kWarm;
    result.estimated_latency = profile.InferenceCost(model);
  }

  // Capacity pressure — the primary is full and offers no sufficiently-idle
  // transform donor — is the only case that leaves the primary: probe up to
  // route_fallback_breadth neighbors (one lock at a time) for a warm
  // container or a free slot before evicting busy state on the primary.
  if (chosen == nullptr && node.Full() &&
      !node.HasIdleContainer(now, options_.idle_threshold) &&
      options_.route_fallback_breadth > 0 && pool_->num_nodes() > 1) {
    node.Release();
    bool adopted = false;
    // Probe at most `breadth` *distinct* accepting neighbors. The walk is
    // bounded by one full ring (step < num_nodes) so a breadth larger than
    // the pool can never revisit a node on small pools, and the primary and
    // non-accepting (draining/down) nodes never consume probe budget.
    const int breadth = std::min(options_.route_fallback_breadth, pool_->num_nodes() - 1);
    int probed = 0;
    for (int step = 1; step < pool_->num_nodes() && probed < breadth && !adopted; ++step) {
      const int neighbor = (primary + step) % pool_->num_nodes();
      if (!pool_->Accepting(neighbor)) {
        continue;
      }
      ++probed;
      NodePool::LockedNode alt = pool_->Lock(neighbor);
      ReapNode(alt, now);
      if (RealContainer* warm = alt.FindWarm(function); warm != nullptr) {
        chosen = warm;
        result.start = StartType::kWarm;
        result.estimated_latency = profile.InferenceCost(model);
        node = std::move(alt);
        result.node = neighbor;
        adopted = true;
      } else if (!alt.Full()) {
        node = std::move(alt);  // Cold-start into the neighbor's free slot.
        result.node = neighbor;
        adopted = true;
      }
    }
    if (!adopted) {
      // Every neighbor is saturated too: fall back to the primary's eviction
      // path. Re-examine under the fresh lock — state may have moved on,
      // including a racing revocation (never adopt into a dead node).
      node = pool_->Lock(primary);
      if (!node.Servable(now)) {
        throw OptimusError(ErrorCode::kUnavailable,
                           "Invoke: node " + std::to_string(primary) + " is " +
                               NodeLifecycleName(node.lifecycle()) + " (revoked)");
      }
      ReapNode(node, now);
      result.node = primary;
      chosen = node.FindWarm(function);
      if (chosen != nullptr) {
        result.start = StartType::kWarm;
        result.estimated_latency = profile.InferenceCost(model);
      }
    }
  }

  // Transformation: repurpose the best sufficiently-idle donor (only when the
  // node has no free slot; otherwise a fresh container preserves warm state).
  if (chosen == nullptr && node.Full()) {
    RealContainer* best_donor = nullptr;
    double best_cost = 0.0;
    {
      telemetry::ScopedSpan decide_span(trace, "decide", "platform");
      const uint64_t decide_start_ns = telemetry::MonotonicNanos();
      for (RealContainer& container : node.containers()) {
        if (now - container.last_active < options_.idle_threshold) {
          continue;
        }
        try {
          const TransformDecision decision =
              transformer_->Decide(container.instance.model, model, trace);
          if (best_donor == nullptr || decision.ChosenCost() < best_cost) {
            best_donor = &container;
            best_cost = decision.ChosenCost();
          }
        } catch (const std::exception&) {
          // Planning/verification failed for this pair (possibly a transient
          // injected fault): the candidate is simply not eligible this request.
          decide_failures_.Inc();
        }
      }
      decide_seconds_.Observe(
          static_cast<double>(telemetry::MonotonicNanos() - decide_start_ns) * 1e-9);
    }
    if (best_donor != nullptr) {
      // A pre-warmed donor consumed reactively (success or failure) is a
      // speculation that never served its own function: waste either way.
      if (best_donor->prewarmed) {
        best_donor->prewarmed = false;
        warming_waste_.Inc();
      }
      try {
        const uint64_t transform_start_ns = telemetry::MonotonicNanos();
        const TransformOutcome outcome =
            transformer_->TransformOrLoad(&best_donor->instance, model, trace);
        if (outcome.decision.use_transform) {
          transform_seconds_.Observe(
              static_cast<double>(telemetry::MonotonicNanos() - transform_start_ns) * 1e-9);
        }
        result.start = outcome.decision.use_transform ? StartType::kTransform : StartType::kCold;
        result.donor_function = best_donor->function;
        result.estimated_latency = outcome.decision.ChosenCost() + profile.InferenceCost(model);
        best_donor->function = function;
        chosen = best_donor;
      } catch (const std::exception&) {
        // Transactional transformation: the donor's resident model may be
        // half-mutated, so the container is destroyed and the request falls
        // through to a fresh scratch (cold) load. The transformer already
        // charged the failure to the plan-cache quarantine.
        transform_failures_.Inc();
        node.RemoveById(best_donor->id);
        result.transform_fallback = true;
      }
    }
  }

  // Cold start: fresh container (using a free slot — destroying a poisoned
  // donor frees one — or evicting the least-recently-active container on a
  // full node with no eligible donor).
  if (chosen == nullptr) {
    if (node.Full()) {
      if (node.EvictLeastRecentlyActive()) {
        warming_waste_.Inc();  // The LRU victim was an unused speculation.
      }
    }
    RealContainer container;
    container.id = pool_->AllocateId();
    container.function = function;
    try {
      // The weight arena comes from the node's spare pool (recycled from dead
      // containers) so steady-state churn reuses slabs instead of allocating.
      container.instance = loader_.Instantiate(model, /*weight_seed=*/1, /*breakdown=*/nullptr,
                                               trace, node.AcquireArena());
    } catch (const std::exception& error) {
      // The scratch load is the path of last resort; classify its failure as
      // retryable — nothing about the request itself is wrong.
      throw OptimusError(ErrorCode::kUnavailable,
                         std::string("Invoke: scratch load failed: ") + error.what());
    }
    result.start = StartType::kCold;
    result.estimated_latency =
        profile.InitCost() + costs_->ScratchLoadCost(model) + profile.InferenceCost(model);
    chosen = node.Adopt(std::move(container));
  }

  if (chosen->prewarmed) {
    // Forecast hit: a speculatively prepared container absorbs what would
    // otherwise have been a cold start or transform.
    chosen->prewarmed = false;
    warming_hits_.Inc();
    warming_lead_seconds_.Observe(std::max(0.0, now - chosen->prewarmed_at));
  }
  chosen->last_active = now;
  {
    telemetry::ScopedSpan inference_span(trace, "inference", "inference");
    const uint64_t inference_start_ns = telemetry::MonotonicNanos();
    result.output = RunInference(chosen->instance, input);
    inference_seconds_.Observe(
        static_cast<double>(telemetry::MonotonicNanos() - inference_start_ns) * 1e-9);
  }

  // Count successes only after inference produced output, so the start-type
  // counters reconcile exactly with successful requests.
  const double invoke_seconds =
      static_cast<double>(telemetry::MonotonicNanos() - invoke_start_ns) * 1e-9;
  switch (result.start) {
    case StartType::kWarm:
      warm_starts_.Inc();
      invoke_seconds_warm_.Observe(invoke_seconds);
      break;
    case StartType::kTransform:
      transforms_.Inc();
      invoke_seconds_transform_.Observe(invoke_seconds);
      break;
    case StartType::kCold:
      cold_starts_.Inc();
      invoke_seconds_cold_.Observe(invoke_seconds);
      break;
  }
  if (function_seconds != nullptr) {
    function_seconds->Observe(invoke_seconds);
  }
  if (result.transform_fallback) {
    transform_fallbacks_.Inc();
  }
  invoke_span.Arg("start", static_cast<double>(result.start));

  // Demand trigger (DESIGN.md §13): when the rebalance window elapsed in
  // virtual time, exactly one invoker wakes the background rebalancer.
  if (placement_->RebalanceDue(now)) {
    RequestRebalance();
  }
  // Warming trigger (DESIGN.md §17): same shape, its own CAS'd window.
  if (warming_engine_->enabled()) {
    if (result.start != StartType::kWarm) {
      warming_misses_.Inc();  // Demand the forecast failed to pre-warm.
    }
    if (warming_engine_->Due(now)) {
      RequestWarming();
    }
  }
  return result;
}

}  // namespace optimus
