// PlacementManager — the runtime coordinator of the placement subsystem.
//
// Owns the PlacementStore, the configured PlacementPolicy, and the demand
// accumulator, and wires the three rebalance triggers (DESIGN.md §13):
//   * deploy  — AddFunction() slots one new function incrementally;
//   * demand  — RebalanceDue()/Rebalance() recompute the full placement from
//               demand observed since the last harvest;
//   * manual  — operator-initiated (gateway POST /rebalance, tests).
//
// Every swap publishes a new immutable table through the atomic store; a
// failed recompute (including the injected `placement.rebalance` fault)
// leaves the previous table serving and is counted in
// optimus_rebalance_failures_total. All update paths serialize on one mutex;
// the read path (Route/Table) is lock-free.

#ifndef OPTIMUS_SRC_PLACEMENT_MANAGER_H_
#define OPTIMUS_SRC_PLACEMENT_MANAGER_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/sync.h"
#include "src/placement/placement.h"
#include "src/telemetry/metrics.h"

namespace optimus {

struct PlacementManagerOptions {
  PlacementOptions policy;
  int num_nodes = 1;
  // Virtual seconds between demand-driven rebalances; 0 disables the online
  // re-clustering trigger (deploy/manual rebalances still work).
  double rebalance_interval = 0.0;
  // Demand-history window: slots retained for the correlation term.
  size_t demand_slots = 32;
};

// What a full rebalance *would* change, computed without publishing — the
// payload behind POST /rebalance?dry_run=1 (DESIGN.md §17 uses it to preview
// warming-driven placement pressure).
struct PlacementDiff {
  struct Move {
    std::string function;
    int from = -1;  // -1: not in the serving table (would be newly placed).
    int to = -1;
  };
  uint64_t version = 0;       // Serving table version the diff is against.
  std::vector<Move> moves;    // Sorted by function name (Placement is a map).
  size_t unchanged = 0;       // Functions the recompute would keep in place.
};

class PlacementManager {
 public:
  // `metrics` may be null (e.g. in the simulator); observability is then
  // skipped. `costs` must be non-null for the model-sharing policy.
  PlacementManager(const PlacementManagerOptions& options, const CostModel* costs,
                   telemetry::MetricsRegistry* metrics);

  // Lock-free routing reads.
  std::shared_ptr<const PlacementTable> Table() const { return store_.Snapshot(); }
  int Route(const std::string& function) const { return Table()->NodeOrHash(function); }
  uint64_t Version() const { return store_.Version(); }

  // Deploy trigger: places `model` incrementally and publishes version+1.
  // Already-placed functions keep their node.
  void AddFunction(const Model& model, const std::vector<const Model*>& peers);

  // Node-lifecycle trigger (DESIGN.md §16): flips `node`'s liveness and
  // immediately publishes the current assignment under the new mask —
  // invalidation first, so a dead node's demand re-homes over the live ring
  // within one table swap, long before the full re-clustering runs. Returns
  // false (no publish) when the mask already agrees. The caller typically
  // follows up with a Rebalance(..., "node_down"/"node_up") to re-cluster
  // over the surviving nodes.
  bool SetNodeLive(int node, bool live);

  // Current liveness mask (empty = all nodes live). Lock-free snapshot read.
  std::vector<uint8_t> LiveMask() const { return Table()->live_mask(); }
  int LiveNodes() const { return Table()->live_nodes(); }

  // Full recompute via the policy's solver. Returns true when a new table was
  // published; on failure the previous table keeps serving and the failure
  // counter advances. `reason` labels optimus_rebalance_total (one of
  // "initial", "deploy", "demand", "manual").
  bool Rebalance(const std::vector<const Model*>& models,
                 const std::map<std::string, DemandSeries>& history, const std::string& reason);

  // Dry-run recompute: runs the same solver + live-ring remap as Rebalance
  // and diffs the result against the serving table, but never swaps
  // snapshots, bumps counters, or injects the rebalance fault. Throws
  // whatever the solver throws.
  PlacementDiff PreviewRebalance(const std::vector<const Model*>& models,
                                 const std::map<std::string, DemandSeries>& history);

  // Demand plumbing: RecordDemand closes one accumulator slot from cumulative
  // per-function invoke counts; DemandHistory feeds Rebalance.
  void RecordDemand(const std::map<std::string, uint64_t>& cumulative_invokes);
  std::map<std::string, DemandSeries> DemandHistory() const { return demand_.History(); }
  size_t DemandSlots() const { return demand_.Slots(); }

  // Demand trigger: true at most once per rebalance interval (CAS on the next
  // deadline, so concurrent invokers elect exactly one rebalance).
  bool RebalanceDue(double now);

  size_t Rebalances() const;
  size_t RebalanceFailures() const;
  const PlacementManagerOptions& options() const { return options_; }
  const PlacementPolicy& policy() const { return *policy_; }

  // One-line JSON summary for /stats and the gateway's placement endpoint.
  std::string StatsJson() const;

 private:
  void PublishLocked(std::shared_ptr<const PlacementTable> next) REQUIRES(update_mutex_);
  void BumpReasonCounter(const std::string& reason);

  PlacementManagerOptions options_;
  std::unique_ptr<PlacementPolicy> policy_;
  PlacementStore store_;
  DemandAccumulator demand_;
  // Serializes AddFunction/Rebalance swaps. The store swap itself is an
  // atomic release-store; the mutex only orders competing *writers*, which
  // is why Route/Table stay lock-free. Holders call into the solver and the
  // metrics registry, so kPlacementUpdate ranks below kMetricsRegistry.
  Mutex update_mutex_{LockRank::kPlacementUpdate, "placement.update"};
  // Authoritative liveness mask (empty = all live); every published table
  // carries a copy so readers see assignment + mask as one atomic snapshot.
  std::vector<uint8_t> live_mask_ GUARDED_BY(update_mutex_);
  std::atomic<double> next_rebalance_due_;
  std::atomic<uint64_t> rebalances_{0};
  std::atomic<uint64_t> rebalance_failures_{0};
  // Observability (null when no registry was supplied).
  telemetry::Gauge* version_gauge_ = nullptr;
  std::vector<telemetry::Gauge*> node_function_gauges_;
  std::map<std::string, telemetry::Counter*> rebalance_counters_;
  telemetry::Counter* rebalance_failures_counter_ = nullptr;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_PLACEMENT_MANAGER_H_
