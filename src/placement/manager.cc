#include "src/placement/manager.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "src/common/fault.h"

namespace optimus {

namespace {
constexpr const char* kRebalanceReasons[] = {"initial",  "deploy",  "demand",
                                             "manual",   "node_down", "node_up"};
}  // namespace

PlacementManager::PlacementManager(const PlacementManagerOptions& options, const CostModel* costs,
                                   telemetry::MetricsRegistry* metrics)
    : options_(options),
      policy_(MakePlacementPolicy(options.policy, costs)),
      store_(std::make_shared<const PlacementTable>(0, options.policy.kind,
                                                    options.num_nodes, Placement{})),
      demand_(options.demand_slots),
      next_rebalance_due_(options.rebalance_interval) {
  if (options.num_nodes < 1) {
    throw std::invalid_argument("PlacementManager: need at least one node");
  }
  if (metrics != nullptr) {
    version_gauge_ = &metrics->GetGauge("optimus_placement_version", {},
                                        "Version of the serving placement table");
    node_function_gauges_.reserve(static_cast<size_t>(options.num_nodes));
    for (int node = 0; node < options.num_nodes; ++node) {
      node_function_gauges_.push_back(
          &metrics->GetGauge("optimus_placement_node_functions", {{"node", std::to_string(node)}},
                             "Functions assigned to each node by the placement table"));
    }
    for (const char* reason : kRebalanceReasons) {
      rebalance_counters_[reason] =
          &metrics->GetCounter("optimus_rebalance_total", {{"reason", reason}},
                               "Placement-table swaps by trigger");
    }
    rebalance_failures_counter_ =
        &metrics->GetCounter("optimus_rebalance_failures_total", {},
                             "Placement recomputes that failed (previous table kept serving)");
  }
}

void PlacementManager::PublishLocked(std::shared_ptr<const PlacementTable> next) {
  if (version_gauge_ != nullptr) {
    version_gauge_->Set(static_cast<double>(next->version()));
    const std::vector<size_t> counts = next->NodeFunctionCounts();
    for (size_t node = 0; node < node_function_gauges_.size() && node < counts.size(); ++node) {
      node_function_gauges_[node]->Set(static_cast<double>(counts[node]));
    }
  }
  store_.Swap(std::move(next));
}

void PlacementManager::AddFunction(const Model& model, const std::vector<const Model*>& peers) {
  MutexLock lock(update_mutex_);
  const std::shared_ptr<const PlacementTable> current = store_.Snapshot();
  if (current->NodeOf(model.name()) >= 0) {
    return;  // Already placed; deploys never move existing functions.
  }
  const int node = policy_->PlaceOne(model, peers, *current);
  Placement assignment;
  for (const auto& [function, existing_node] : current->assignment()) {
    assignment.emplace(function, existing_node);
  }
  assignment[model.name()] = node;
  PublishLocked(std::make_shared<const PlacementTable>(current->version() + 1,
                                                       options_.policy.kind, options_.num_nodes,
                                                       assignment, live_mask_));
  BumpReasonCounter("deploy");
}

bool PlacementManager::SetNodeLive(int node, bool live) {
  if (node < 0 || node >= options_.num_nodes) {
    return false;
  }
  MutexLock lock(update_mutex_);
  if (live_mask_.empty()) {
    live_mask_.assign(static_cast<size_t>(options_.num_nodes), 1);
  }
  if ((live_mask_[static_cast<size_t>(node)] != 0) == live) {
    return false;  // Mask already agrees; nothing to publish.
  }
  live_mask_[static_cast<size_t>(node)] = live ? 1 : 0;
  const std::shared_ptr<const PlacementTable> current = store_.Snapshot();
  Placement assignment;
  for (const auto& [function, existing_node] : current->assignment()) {
    assignment.emplace(function, existing_node);
  }
  PublishLocked(std::make_shared<const PlacementTable>(current->version() + 1,
                                                       options_.policy.kind, options_.num_nodes,
                                                       assignment, live_mask_));
  BumpReasonCounter(live ? "node_up" : "node_down");
  return true;
}

void PlacementManager::BumpReasonCounter(const std::string& reason) {
  const auto counter = rebalance_counters_.find(reason);
  if (counter != rebalance_counters_.end()) {
    counter->second->Inc();
  }
}

bool PlacementManager::Rebalance(const std::vector<const Model*>& models,
                                 const std::map<std::string, DemandSeries>& history,
                                 const std::string& reason) {
  MutexLock lock(update_mutex_);
  const std::shared_ptr<const PlacementTable> current = store_.Snapshot();
  try {
    // The injected failure models a solver crash mid-recompute: nothing may
    // have been published, so the previous table must keep serving.
    fault::MaybeInject("placement.rebalance");
    // Re-home over the live subset (DESIGN.md §16): the solver sees a
    // contiguous 0..live-1 cluster, and its indices are remapped back to
    // physical node ids afterwards, so dead nodes receive no assignments.
    // An all-dead mask (total outage) degenerates to the full set — the
    // router's hash fallback covers routing until someone revives.
    std::vector<int> live_ids;
    if (!live_mask_.empty()) {
      for (int node = 0; node < options_.num_nodes; ++node) {
        if (live_mask_[static_cast<size_t>(node)] != 0) {
          live_ids.push_back(node);
        }
      }
    }
    const int solve_nodes =
        live_ids.empty() ? options_.num_nodes : static_cast<int>(live_ids.size());
    Placement assignment = policy_->Compute(models, history, solve_nodes);
    if (!live_ids.empty()) {
      for (auto& [function, node] : assignment) {
        node = live_ids[static_cast<size_t>(std::clamp(node, 0, solve_nodes - 1))];
      }
    }
    PublishLocked(std::make_shared<const PlacementTable>(current->version() + 1,
                                                         options_.policy.kind, options_.num_nodes,
                                                         assignment, live_mask_));
  } catch (const std::exception&) {
    rebalance_failures_.fetch_add(1, std::memory_order_relaxed);
    if (rebalance_failures_counter_ != nullptr) {
      rebalance_failures_counter_->Inc();
    }
    return false;
  }
  rebalances_.fetch_add(1, std::memory_order_relaxed);
  BumpReasonCounter(reason);
  return true;
}

PlacementDiff PlacementManager::PreviewRebalance(
    const std::vector<const Model*>& models,
    const std::map<std::string, DemandSeries>& history) {
  MutexLock lock(update_mutex_);
  const std::shared_ptr<const PlacementTable> current = store_.Snapshot();
  PlacementDiff diff;
  diff.version = current->version();
  // Same live-subset solve + remap as Rebalance — the preview must predict
  // exactly what a real swap would publish.
  std::vector<int> live_ids;
  if (!live_mask_.empty()) {
    for (int node = 0; node < options_.num_nodes; ++node) {
      if (live_mask_[static_cast<size_t>(node)] != 0) {
        live_ids.push_back(node);
      }
    }
  }
  const int solve_nodes =
      live_ids.empty() ? options_.num_nodes : static_cast<int>(live_ids.size());
  Placement assignment = policy_->Compute(models, history, solve_nodes);
  if (!live_ids.empty()) {
    for (auto& [function, node] : assignment) {
      node = live_ids[static_cast<size_t>(std::clamp(node, 0, solve_nodes - 1))];
    }
  }
  for (const auto& [function, node] : assignment) {
    const int from = current->NodeOf(function);
    if (from == node) {
      ++diff.unchanged;
    } else {
      diff.moves.push_back(PlacementDiff::Move{function, from, node});
    }
  }
  return diff;
}

void PlacementManager::RecordDemand(const std::map<std::string, uint64_t>& cumulative_invokes) {
  demand_.RecordCumulative(cumulative_invokes);
}

bool PlacementManager::RebalanceDue(double now) {
  if (options_.rebalance_interval <= 0.0) {
    return false;
  }
  double due = next_rebalance_due_.load(std::memory_order_relaxed);
  while (now >= due) {
    if (next_rebalance_due_.compare_exchange_weak(due, now + options_.rebalance_interval,
                                                  std::memory_order_relaxed)) {
      return true;  // This caller won the CAS: exactly one rebalance per window.
    }
  }
  return false;
}

size_t PlacementManager::Rebalances() const {
  return static_cast<size_t>(rebalances_.load(std::memory_order_relaxed));
}

size_t PlacementManager::RebalanceFailures() const {
  return static_cast<size_t>(rebalance_failures_.load(std::memory_order_relaxed));
}

std::string PlacementManager::StatsJson() const {
  const std::shared_ptr<const PlacementTable> table = Table();
  std::ostringstream out;
  out << "{\"version\":" << table->version() << ",\"policy\":\""
      << BalancerKindId(table->kind()) << "\",\"num_nodes\":" << table->num_nodes()
      << ",\"live_nodes\":" << table->live_nodes() << ",\"functions\":" << table->size()
      << ",\"rebalances\":" << Rebalances()
      << ",\"rebalance_failures\":" << RebalanceFailures() << ",\"node_functions\":[";
  const std::vector<size_t> counts = table->NodeFunctionCounts();
  for (size_t node = 0; node < counts.size(); ++node) {
    if (node > 0) {
      out << ",";
    }
    out << counts[node];
  }
  out << "]}";
  return out.str();
}

}  // namespace optimus
