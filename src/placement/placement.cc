#include "src/placement/placement.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <numeric>

#include "src/core/planner.h"

namespace optimus {

const char* BalancerKindId(BalancerKind kind) {
  switch (kind) {
    case BalancerKind::kHash:
      return "hash";
    case BalancerKind::kLoadBased:
      return "load_based";
    case BalancerKind::kModelSharing:
      return "model_sharing";
  }
  return "unknown";
}

bool ParseBalancerKind(const std::string& name, BalancerKind* kind) {
  for (const BalancerKind candidate :
       {BalancerKind::kHash, BalancerKind::kLoadBased, BalancerKind::kModelSharing}) {
    if (name == BalancerKindId(candidate) || name == BalancerKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

BalancerOptions ToBalancerOptions(const PlacementOptions& options) {
  BalancerOptions solver;
  solver.kind = options.kind;
  solver.gamma_distance = options.gamma_distance;
  solver.gamma_correlation = options.gamma_correlation;
  solver.clusters_per_node = options.clusters_per_node;
  solver.seed = options.seed;
  return solver;
}

PlacementTable::PlacementTable(uint64_t version, BalancerKind kind, int num_nodes,
                               const Placement& assignment)
    : PlacementTable(version, kind, num_nodes, assignment, {}) {}

PlacementTable::PlacementTable(uint64_t version, BalancerKind kind, int num_nodes,
                               const Placement& assignment, std::vector<uint8_t> live_mask)
    : version_(version), kind_(kind), num_nodes_(num_nodes < 1 ? 1 : num_nodes) {
  assignment_.reserve(assignment.size());
  for (const auto& [function, node] : assignment) {
    assignment_.emplace(function, std::clamp(node, 0, num_nodes_ - 1));
  }
  if (!live_mask.empty()) {
    live_mask.resize(static_cast<size_t>(num_nodes_), 0);
    const bool all_live = std::all_of(live_mask.begin(), live_mask.end(),
                                      [](uint8_t live) { return live != 0; });
    if (!all_live) {
      live_mask_ = std::move(live_mask);
      for (int node = 0; node < num_nodes_; ++node) {
        if (live_mask_[static_cast<size_t>(node)] != 0) {
          live_ids_.push_back(node);
        }
      }
    }
  }
}

int PlacementTable::NodeOf(const std::string& function) const {
  const auto it = assignment_.find(function);
  return it == assignment_.end() ? -1 : it->second;
}

bool PlacementTable::Live(int node) const {
  if (node < 0 || node >= num_nodes_) {
    return false;
  }
  return live_mask_.empty() || live_mask_[static_cast<size_t>(node)] != 0;
}

int PlacementTable::NodeOrHash(const std::string& function) const {
  const int node = NodeOf(function);
  if (node >= 0 && Live(node)) {
    return node;
  }
  // Unknown function, or one assigned to a dead node: re-home
  // deterministically over the live ring (plain hashing when the mask is
  // empty or — total outage — nothing is live).
  const size_t hashed = std::hash<std::string>{}(function);
  if (!live_ids_.empty()) {
    return live_ids_[hashed % live_ids_.size()];
  }
  return static_cast<int>(hashed % static_cast<size_t>(num_nodes_));
}

std::vector<size_t> PlacementTable::NodeFunctionCounts() const {
  std::vector<size_t> counts(static_cast<size_t>(num_nodes_), 0);
  for (const auto& [function, node] : assignment_) {
    counts[static_cast<size_t>(node)] += 1;
  }
  return counts;
}

PlacementStore::PlacementStore(std::shared_ptr<const PlacementTable> initial) {
  if (initial == nullptr) {
    initial = std::make_shared<const PlacementTable>();
  }
  Swap(std::move(initial));
}

namespace {

// Per-node cap the incremental path honors: no node takes more than its fair
// share of functions (mirrors the solver's member-level packing cap), so a
// run of similar deploys cannot pile the whole repository onto one node.
size_t IncrementalCap(size_t functions_after, int num_nodes) {
  return (functions_after + static_cast<size_t>(num_nodes) - 1) / static_cast<size_t>(num_nodes);
}

int LeastLoadedNode(const std::vector<size_t>& counts) {
  size_t best = 0;
  for (size_t node = 1; node < counts.size(); ++node) {
    if (counts[node] < counts[best]) {
      best = node;
    }
  }
  return static_cast<int>(best);
}

class HashPolicy final : public PlacementPolicy {
 public:
  BalancerKind kind() const override { return BalancerKind::kHash; }

  Placement Compute(const std::vector<const Model*>& models,
                    const std::map<std::string, DemandSeries>& history,
                    int num_nodes) const override {
    return PlaceFunctions(models, num_nodes, history, /*costs=*/nullptr,
                          ToBalancerOptions(PlacementOptions{BalancerKind::kHash}));
  }

  int PlaceOne(const Model& model, const std::vector<const Model*>& /*peers*/,
               const PlacementTable& current) const override {
    return static_cast<int>(std::hash<std::string>{}(model.name()) %
                            static_cast<size_t>(current.num_nodes()));
  }
};

class LoadBasedPolicy final : public PlacementPolicy {
 public:
  explicit LoadBasedPolicy(const PlacementOptions& options) : options_(options) {}

  BalancerKind kind() const override { return BalancerKind::kLoadBased; }

  Placement Compute(const std::vector<const Model*>& models,
                    const std::map<std::string, DemandSeries>& history,
                    int num_nodes) const override {
    PlacementOptions options = options_;
    options.kind = BalancerKind::kLoadBased;
    return PlaceFunctions(models, num_nodes, history, /*costs=*/nullptr,
                          ToBalancerOptions(options));
  }

  int PlaceOne(const Model& /*model*/, const std::vector<const Model*>& /*peers*/,
               const PlacementTable& current) const override {
    // Without fresh demand for a brand-new function, function count is the
    // load proxy: join the emptiest node.
    return LeastLoadedNode(current.NodeFunctionCounts());
  }

 private:
  PlacementOptions options_;
};

class ModelSharingPolicy final : public PlacementPolicy {
 public:
  ModelSharingPolicy(const PlacementOptions& options, const CostModel* costs)
      : options_(options), costs_(costs) {}

  BalancerKind kind() const override { return BalancerKind::kModelSharing; }

  Placement Compute(const std::vector<const Model*>& models,
                    const std::map<std::string, DemandSeries>& history,
                    int num_nodes) const override {
    PlacementOptions options = options_;
    options.kind = BalancerKind::kModelSharing;
    return PlaceFunctions(models, num_nodes, history, costs_, ToBalancerOptions(options));
  }

  int PlaceOne(const Model& model, const std::vector<const Model*>& peers,
               const PlacementTable& current) const override {
    const int num_nodes = current.num_nodes();
    if (num_nodes <= 1) {
      return 0;
    }
    // Greedy §5.1 approximation for one arrival: join the node hosting the
    // structurally closest peer (cheapest symmetric edit distance), subject
    // to the fair-share cap. A later demand-driven rebalance runs the full
    // K-medoids solve and can revise this choice.
    const std::vector<size_t> counts = current.NodeFunctionCounts();
    const size_t cap = IncrementalCap(current.size() + 1, num_nodes);
    std::vector<double> node_affinity(static_cast<size_t>(num_nodes),
                                      std::numeric_limits<double>::infinity());
    if (costs_ != nullptr) {
      for (const Model* peer : peers) {
        const int node = current.NodeOf(peer->name());
        if (node < 0 || counts[static_cast<size_t>(node)] >= cap) {
          continue;  // Unplaced peer, or its node cannot take another function.
        }
        const double distance = std::min(ModelEditDistance(model, *peer, *costs_),
                                         ModelEditDistance(*peer, model, *costs_));
        node_affinity[static_cast<size_t>(node)] =
            std::min(node_affinity[static_cast<size_t>(node)], distance);
      }
    }
    int best = -1;
    for (int node = 0; node < num_nodes; ++node) {
      if (counts[static_cast<size_t>(node)] >= cap) {
        continue;
      }
      if (best == -1) {
        best = node;
        continue;
      }
      const double best_affinity = node_affinity[static_cast<size_t>(best)];
      const double affinity = node_affinity[static_cast<size_t>(node)];
      if (affinity < best_affinity ||
          (affinity == best_affinity &&
           counts[static_cast<size_t>(node)] < counts[static_cast<size_t>(best)])) {
        best = node;
      }
    }
    return best >= 0 ? best : LeastLoadedNode(counts);
  }

 private:
  PlacementOptions options_;
  const CostModel* costs_;
};

}  // namespace

std::unique_ptr<PlacementPolicy> MakePlacementPolicy(const PlacementOptions& options,
                                                     const CostModel* costs) {
  switch (options.kind) {
    case BalancerKind::kHash:
      return std::make_unique<HashPolicy>();
    case BalancerKind::kLoadBased:
      return std::make_unique<LoadBasedPolicy>(options);
    case BalancerKind::kModelSharing:
      if (costs == nullptr) {
        throw std::invalid_argument("MakePlacementPolicy: model_sharing needs a cost model");
      }
      return std::make_unique<ModelSharingPolicy>(options, costs);
  }
  throw std::invalid_argument("MakePlacementPolicy: unknown balancer kind");
}

DemandAccumulator::DemandAccumulator(size_t max_slots)
    : max_slots_(max_slots < 2 ? 2 : max_slots) {}

void DemandAccumulator::RecordCumulative(const std::map<std::string, uint64_t>& totals) {
  MutexLock lock(mutex_);
  // Close one slot: every known function gets exactly one new sample so the
  // series stay aligned for the Pearson-correlation term.
  for (const auto& [function, total] : totals) {
    DemandSeries& series = series_[function];
    series.resize(slots_, 0.0);  // Zero-backfill functions that appeared late.
    const auto it = last_.find(function);
    const uint64_t previous = it == last_.end() ? 0 : it->second;
    series.push_back(total >= previous ? static_cast<double>(total - previous) : 0.0);
  }
  for (auto& [function, series] : series_) {
    series.resize(slots_ + 1, 0.0);  // Functions absent from this harvest saw no demand.
    if (series.size() > max_slots_) {
      series.erase(series.begin());
    }
  }
  slots_ = std::min(slots_ + 1, max_slots_);
  // Merge (not replace) the cumulative baselines: a function absent from one
  // harvest must keep its baseline, or its entire historical total would be
  // recounted as a single slot's demand when it reappears.
  for (const auto& [function, total] : totals) {
    last_[function] = total;
  }
}

std::map<std::string, DemandSeries> DemandAccumulator::History() const {
  MutexLock lock(mutex_);
  return series_;
}

size_t DemandAccumulator::Slots() const {
  MutexLock lock(mutex_);
  return slots_;
}

}  // namespace optimus
