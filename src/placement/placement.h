// Cluster placement subsystem (paper §5.1) — the policy/mechanism split for
// function→node routing shared by the live platform, the simulator, and the
// gateway.
//
// Mechanism: a `PlacementTable` is an immutable, versioned snapshot of the
// function→node mapping. Tables are published through a `PlacementStore`
// holding a `std::atomic<std::shared_ptr<const PlacementTable>>`: writers
// build a fully-constructed table and store it with release ordering, readers
// load with acquire ordering, so every reader observes either the previous or
// the next table in its entirety — never a torn mapping (the memory-order
// argument is spelled out in DESIGN.md §13).
//
// Policy: a `PlacementPolicy` decides *where* functions go. Three
// implementations mirror the paper's comparison set:
//   * hash           — stateless hashing (existing platforms' default);
//   * load_based     — spread expected demand evenly;
//   * model_sharing  — the §5.1 K-medoids scheme over the combined distance
//                      gamma_d·D̂ + gamma_k·K̂, delegating the full solve to
//                      the offline solver in src/balancer.
// Each policy answers both the batch question (`Compute`: place everything,
// used by rebalances and the simulator) and the incremental one (`PlaceOne`:
// slot a newly deployed function into an existing table without moving
// anything else).

#ifndef OPTIMUS_SRC_PLACEMENT_PLACEMENT_H_
#define OPTIMUS_SRC_PLACEMENT_PLACEMENT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/balancer/balancer.h"
#include "src/common/sync.h"
#include "src/graph/model.h"
#include "src/runtime/cost_model.h"
#include "src/workload/trace.h"

namespace optimus {

// Stable machine-readable ids for flags, /stats, and metric labels
// ("hash" / "load_based" / "model_sharing"), next to the human-facing
// BalancerKindName ("Hash" / "LoadBased" / "ModelSharing").
const char* BalancerKindId(BalancerKind kind);

// Parses either the id or the human-facing name; returns false (and leaves
// *kind untouched) for unknown strings.
bool ParseBalancerKind(const std::string& name, BalancerKind* kind);

// Knobs for a placement policy. Field names deliberately match
// BalancerOptions — the model-sharing policy forwards them to the offline
// solver via ToBalancerOptions().
struct PlacementOptions {
  BalancerKind kind = BalancerKind::kModelSharing;
  double gamma_distance = 0.6;
  double gamma_correlation = 0.4;
  int clusters_per_node = 2;
  uint64_t seed = 1;
};

BalancerOptions ToBalancerOptions(const PlacementOptions& options);

// An immutable snapshot of the function→node mapping. Instances are built
// once, then only read; safe to share across threads without locks.
class PlacementTable {
 public:
  PlacementTable() = default;
  PlacementTable(uint64_t version, BalancerKind kind, int num_nodes, const Placement& assignment);
  // Like the above, but with an explicit liveness mask (DESIGN.md §16): dead
  // nodes keep their assignment entries — so a revive restores them without a
  // rebalance — but NodeOrHash deterministically re-homes their demand over
  // the live subset. An empty mask means every node is live.
  PlacementTable(uint64_t version, BalancerKind kind, int num_nodes, const Placement& assignment,
                 std::vector<uint8_t> live_mask);

  // Node hosting `function`, or -1 when the function is not in the table.
  // Ignores liveness — this is the raw assignment.
  int NodeOf(const std::string& function) const;
  // Like NodeOf, but unknown functions fall back to hashing — routing never
  // fails just because a table predates a deploy — and functions assigned to
  // a dead node re-home by hashing over the live nodes (invalidation routing
  // between a revocation and the next full rebalance).
  int NodeOrHash(const std::string& function) const;

  // Whether `node` is live under this table's mask (empty mask = all live).
  bool Live(int node) const;
  // Number of live nodes (== num_nodes when the mask is empty).
  int live_nodes() const { return live_ids_.empty() ? num_nodes_ : static_cast<int>(live_ids_.size()); }
  const std::vector<uint8_t>& live_mask() const { return live_mask_; }

  uint64_t version() const { return version_; }
  BalancerKind kind() const { return kind_; }
  int num_nodes() const { return num_nodes_; }
  size_t size() const { return assignment_.size(); }
  const std::unordered_map<std::string, int>& assignment() const { return assignment_; }

  // Functions assigned to each node (length num_nodes).
  std::vector<size_t> NodeFunctionCounts() const;

 private:
  uint64_t version_ = 0;
  BalancerKind kind_ = BalancerKind::kModelSharing;
  int num_nodes_ = 1;
  std::unordered_map<std::string, int> assignment_;
  // Empty when all nodes are live; otherwise live_mask_[node] != 0 marks a
  // live node and live_ids_ lists them in ascending order (the re-homing
  // hash ring).
  std::vector<uint8_t> live_mask_;
  std::vector<int> live_ids_;
};

// Under ThreadSanitizer the lock-free PlacementStore below swaps in a
// reader-writer-locked implementation: libstdc++'s atomic<shared_ptr> guards
// its raw pointer with a lock *bit* and releases the reader side with a
// relaxed fetch_sub, a protocol TSan cannot model — every concurrent
// Swap/Snapshot pair reports a false race inside _Sp_atomic. The substitute
// has identical semantics (torn-free whole-table publication), so the
// sanitizer still verifies all surrounding code.
#if defined(__SANITIZE_THREAD__)
#define OPTIMUS_PLACEMENT_STORE_LOCKED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define OPTIMUS_PLACEMENT_STORE_LOCKED 1
#endif
#endif

// The atomically-swappable publication point for placement tables. Swap() is
// a release store of a fully-built table; Snapshot() is an acquire load, so
// a reader's view is always internally consistent (DESIGN.md §13).
class PlacementStore {
 public:
  explicit PlacementStore(std::shared_ptr<const PlacementTable> initial);

#ifdef OPTIMUS_PLACEMENT_STORE_LOCKED
  std::shared_ptr<const PlacementTable> Snapshot() const {
    ReaderLock lock(mutex_);
    return table_;
  }
  void Swap(std::shared_ptr<const PlacementTable> next) {
    WriterLock lock(mutex_);
    table_ = std::move(next);
  }
#else
  std::shared_ptr<const PlacementTable> Snapshot() const {
    return table_.load(std::memory_order_acquire);
  }
  void Swap(std::shared_ptr<const PlacementTable> next) {
    table_.store(std::move(next), std::memory_order_release);
  }
#endif
  uint64_t Version() const { return Snapshot()->version(); }

 private:
#ifdef OPTIMUS_PLACEMENT_STORE_LOCKED
  // Unranked: held for a pointer copy only, never across another acquire.
  mutable SharedMutex mutex_;
  std::shared_ptr<const PlacementTable> table_ GUARDED_BY(mutex_);
#else
  std::atomic<std::shared_ptr<const PlacementTable>> table_;
#endif
};

// Where functions go. Implementations are stateless (all inputs arrive as
// arguments), so one policy instance can serve concurrent callers.
class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;

  virtual BalancerKind kind() const = 0;

  // Places every model onto `num_nodes` nodes from scratch (full rebalance /
  // simulator initialization). `history` feeds the demand-correlation and
  // load terms; it may be empty.
  virtual Placement Compute(const std::vector<const Model*>& models,
                            const std::map<std::string, DemandSeries>& history,
                            int num_nodes) const = 0;

  // Slots one newly deployed model into `current` without moving existing
  // assignments. `peers` are the already-registered models (the candidates
  // the new function could share transformations with).
  virtual int PlaceOne(const Model& model, const std::vector<const Model*>& peers,
                       const PlacementTable& current) const = 0;
};

// Builds the policy for `options.kind`. `costs` supplies the edit-distance
// term and must outlive the policy (it may be null for kHash/kLoadBased).
std::unique_ptr<PlacementPolicy> MakePlacementPolicy(const PlacementOptions& options,
                                                     const CostModel* costs);

// Turns cumulative per-function invoke counts (harvested from the telemetry
// registry) into the slotted DemandSeries the §5.1 correlation term consumes.
// Each RecordCumulative() call closes one slot holding the per-function delta
// since the previous call; series stay aligned (equal length, zero-backfilled
// for late-appearing functions) and bounded to the most recent `max_slots`.
class DemandAccumulator {
 public:
  explicit DemandAccumulator(size_t max_slots = 32);

  void RecordCumulative(const std::map<std::string, uint64_t>& totals);
  std::map<std::string, DemandSeries> History() const;
  size_t Slots() const;

 private:
  // Rank kDemand is near the top of the hierarchy: harvesting holds no other
  // lock, and RecordDemand/History are called with at most the rebalance
  // protocol's locks already dropped.
  mutable Mutex mutex_{LockRank::kDemand, "placement.demand"};
  size_t max_slots_;
  size_t slots_ GUARDED_BY(mutex_) = 0;
  std::map<std::string, uint64_t> last_ GUARDED_BY(mutex_);
  std::map<std::string, DemandSeries> series_ GUARDED_BY(mutex_);
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_PLACEMENT_PLACEMENT_H_
