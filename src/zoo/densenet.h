// DenseNet family builders (Huang et al., 2017).

#ifndef OPTIMUS_SRC_ZOO_DENSENET_H_
#define OPTIMUS_SRC_ZOO_DENSENET_H_

#include "src/graph/model.h"

namespace optimus {

struct DenseNetOptions {
  int64_t growth_rate = 32;
  int64_t num_classes = 1000;
};

// Builds DenseNet-`depth` for depth in {121, 169, 201}. Dense connectivity is
// modeled with Concat ops joining every preceding layer output in a block.
Model BuildDenseNet(int depth, const DenseNetOptions& options = {});

}  // namespace optimus

#endif  // OPTIMUS_SRC_ZOO_DENSENET_H_
