// Helper for building mostly-sequential model graphs.

#ifndef OPTIMUS_SRC_ZOO_CHAIN_BUILDER_H_
#define OPTIMUS_SRC_ZOO_CHAIN_BUILDER_H_

#include "src/graph/model.h"

namespace optimus {

// Appends operations to a Model, automatically wiring each new op after the
// previous one. Branch points are handled by saving/restoring the cursor.
class ChainBuilder {
 public:
  explicit ChainBuilder(Model* model) : model_(model) {}

  // Adds an op wired after the current cursor (if any) and moves the cursor.
  OpId Append(OpKind kind, const OpAttributes& attrs = {}) {
    const OpId id = model_->AddOp(kind, attrs);
    if (cursor_ != kInvalidOpId) {
      model_->AddEdge(cursor_, id);
    }
    cursor_ = id;
    return id;
  }

  // Adds an op wired after an explicit predecessor and moves the cursor.
  OpId AppendAfter(OpId predecessor, OpKind kind, const OpAttributes& attrs = {}) {
    const OpId id = model_->AddOp(kind, attrs);
    model_->AddEdge(predecessor, id);
    cursor_ = id;
    return id;
  }

  // Adds an extra inbound edge into the current cursor (residual/branch join).
  void JoinFrom(OpId from) { model_->AddEdge(from, cursor_); }

  OpId cursor() const { return cursor_; }
  void set_cursor(OpId id) { cursor_ = id; }

  Model* model() { return model_; }

 private:
  Model* model_;
  OpId cursor_ = kInvalidOpId;
};

// Convolution attribute shorthand.
inline OpAttributes ConvAttrs(int64_t kernel, int64_t in_channels, int64_t out_channels,
                              int64_t stride = 1) {
  OpAttributes attrs;
  attrs.kernel_h = kernel;
  attrs.kernel_w = kernel;
  attrs.stride = stride;
  attrs.in_channels = in_channels;
  attrs.out_channels = out_channels;
  return attrs;
}

inline OpAttributes DenseAttrs(int64_t in_units, int64_t out_units) {
  OpAttributes attrs;
  attrs.in_channels = in_units;
  attrs.out_channels = out_units;
  return attrs;
}

inline OpAttributes NormAttrs(int64_t channels) {
  OpAttributes attrs;
  attrs.out_channels = channels;
  return attrs;
}

inline OpAttributes PoolAttrs(int64_t kernel, int64_t stride) {
  OpAttributes attrs;
  attrs.kernel_h = kernel;
  attrs.kernel_w = kernel;
  attrs.stride = stride;
  return attrs;
}

inline OpAttributes ReluAttrs() {
  OpAttributes attrs;
  attrs.activation = ActivationType::kRelu;
  return attrs;
}

inline OpAttributes GeluAttrs() {
  OpAttributes attrs;
  attrs.activation = ActivationType::kGelu;
  return attrs;
}

}  // namespace optimus

#endif  // OPTIMUS_SRC_ZOO_CHAIN_BUILDER_H_
