#include "src/zoo/resnet.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/zoo/chain_builder.h"

namespace optimus {

namespace {

struct StagePlan {
  std::vector<int> blocks;
  bool bottleneck;
};

StagePlan PlanFor(int depth) {
  switch (depth) {
    case 18:
      return {{2, 2, 2, 2}, false};
    case 34:
      return {{3, 4, 6, 3}, false};
    case 50:
      return {{3, 4, 6, 3}, true};
    case 101:
      return {{3, 4, 23, 3}, true};
    case 152:
      return {{3, 8, 36, 3}, true};
    default:
      throw std::invalid_argument("BuildResNet: unsupported depth " + std::to_string(depth));
  }
}

int64_t Scaled(int64_t channels, double multiplier) {
  return std::max<int64_t>(1, static_cast<int64_t>(channels * multiplier));
}

// Basic block: two 3x3 convs with an identity (or projected) shortcut.
// Returns the id of the block's output op. `in_channels` is updated.
OpId BasicBlock(ChainBuilder* chain, int64_t* in_channels, int64_t out_channels, int64_t stride) {
  const OpId shortcut_src = chain->cursor();
  chain->Append(OpKind::kConv2D, ConvAttrs(3, *in_channels, out_channels, stride));
  chain->Append(OpKind::kBatchNorm, NormAttrs(out_channels));
  chain->Append(OpKind::kActivation, ReluAttrs());
  chain->Append(OpKind::kConv2D, ConvAttrs(3, out_channels, out_channels));
  chain->Append(OpKind::kBatchNorm, NormAttrs(out_channels));
  const OpId main_path = chain->cursor();

  OpId shortcut = shortcut_src;
  if (*in_channels != out_channels || stride != 1) {
    chain->set_cursor(shortcut_src);
    chain->Append(OpKind::kConv2D, ConvAttrs(1, *in_channels, out_channels, stride));
    chain->Append(OpKind::kBatchNorm, NormAttrs(out_channels));
    shortcut = chain->cursor();
  }

  chain->set_cursor(main_path);
  chain->Append(OpKind::kAdd);
  chain->JoinFrom(shortcut);
  chain->Append(OpKind::kActivation, ReluAttrs());
  *in_channels = out_channels;
  return chain->cursor();
}

// Bottleneck block: 1x1 reduce, 3x3, 1x1 expand (x4), with shortcut.
OpId BottleneckBlock(ChainBuilder* chain, int64_t* in_channels, int64_t mid_channels,
                     int64_t stride) {
  const int64_t out_channels = mid_channels * 4;
  const OpId shortcut_src = chain->cursor();
  chain->Append(OpKind::kConv2D, ConvAttrs(1, *in_channels, mid_channels));
  chain->Append(OpKind::kBatchNorm, NormAttrs(mid_channels));
  chain->Append(OpKind::kActivation, ReluAttrs());
  chain->Append(OpKind::kConv2D, ConvAttrs(3, mid_channels, mid_channels, stride));
  chain->Append(OpKind::kBatchNorm, NormAttrs(mid_channels));
  chain->Append(OpKind::kActivation, ReluAttrs());
  chain->Append(OpKind::kConv2D, ConvAttrs(1, mid_channels, out_channels));
  chain->Append(OpKind::kBatchNorm, NormAttrs(out_channels));
  const OpId main_path = chain->cursor();

  OpId shortcut = shortcut_src;
  if (*in_channels != out_channels || stride != 1) {
    chain->set_cursor(shortcut_src);
    chain->Append(OpKind::kConv2D, ConvAttrs(1, *in_channels, out_channels, stride));
    chain->Append(OpKind::kBatchNorm, NormAttrs(out_channels));
    shortcut = chain->cursor();
  }

  chain->set_cursor(main_path);
  chain->Append(OpKind::kAdd);
  chain->JoinFrom(shortcut);
  chain->Append(OpKind::kActivation, ReluAttrs());
  *in_channels = out_channels;
  return chain->cursor();
}

}  // namespace

Model BuildResNet(int depth, const ResNetOptions& options) {
  const StagePlan plan = PlanFor(depth);
  Model model("resnet" + std::to_string(depth), "resnet");
  ChainBuilder chain(&model);
  chain.Append(OpKind::kInput);

  int64_t in_channels = 3;
  const int64_t stem_channels = Scaled(64, options.width_multiplier);
  chain.Append(OpKind::kConv2D, ConvAttrs(7, in_channels, stem_channels, 2));
  chain.Append(OpKind::kBatchNorm, NormAttrs(stem_channels));
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kMaxPool, PoolAttrs(3, 2));
  in_channels = stem_channels;

  const int64_t base_channels[4] = {64, 128, 256, 512};
  for (size_t stage = 0; stage < plan.blocks.size(); ++stage) {
    const int64_t channels = Scaled(base_channels[stage], options.width_multiplier);
    for (int block = 0; block < plan.blocks[static_cast<size_t>(stage)]; ++block) {
      const int64_t stride = (block == 0 && stage > 0) ? 2 : 1;
      if (plan.bottleneck) {
        BottleneckBlock(&chain, &in_channels, channels, stride);
      } else {
        BasicBlock(&chain, &in_channels, channels, stride);
      }
    }
  }

  chain.Append(OpKind::kGlobalAvgPool);
  chain.Append(OpKind::kDense, DenseAttrs(in_channels, options.num_classes));
  chain.Append(OpKind::kSoftmax);
  chain.Append(OpKind::kOutput);
  return model;
}

}  // namespace optimus
