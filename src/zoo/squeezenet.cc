#include "src/zoo/squeezenet.h"

#include "src/zoo/chain_builder.h"

namespace optimus {

namespace {

// Fire module: squeeze 1x1 -> (expand 1x1 || expand 3x3) -> concat.
// Returns the concat op; the module output has 2 * expand channels.
OpId FireModule(ChainBuilder* chain, int64_t in_channels, int64_t squeeze, int64_t expand) {
  Model* model = chain->model();
  chain->Append(OpKind::kConv2D, ConvAttrs(1, in_channels, squeeze));
  chain->Append(OpKind::kActivation, ReluAttrs());
  const OpId squeezed = chain->cursor();

  chain->Append(OpKind::kConv2D, ConvAttrs(1, squeeze, expand));
  chain->Append(OpKind::kActivation, ReluAttrs());
  const OpId left = chain->cursor();

  chain->set_cursor(squeezed);
  chain->Append(OpKind::kConv2D, ConvAttrs(3, squeeze, expand));
  chain->Append(OpKind::kActivation, ReluAttrs());
  const OpId right = chain->cursor();

  const OpId concat = model->AddOp(OpKind::kConcat);
  model->AddEdge(left, concat);
  model->AddEdge(right, concat);
  chain->set_cursor(concat);
  return concat;
}

}  // namespace

Model BuildSqueezeNet(int64_t num_classes) {
  Model model("squeezenet", "squeezenet");
  ChainBuilder chain(&model);
  chain.Append(OpKind::kInput);

  chain.Append(OpKind::kConv2D, ConvAttrs(7, 3, 96, 2));
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kMaxPool, PoolAttrs(3, 2));

  // (squeeze, expand) per fire module, with pools after fire4 and fire8.
  const struct {
    int64_t squeeze;
    int64_t expand;
    bool pool_after;
  } fires[] = {
      {16, 64, false}, {16, 64, false},  {32, 128, true},  {32, 128, false},
      {48, 192, false}, {48, 192, false}, {64, 256, true},  {64, 256, false},
  };
  int64_t channels = 96;
  for (const auto& fire : fires) {
    FireModule(&chain, channels, fire.squeeze, fire.expand);
    channels = 2 * fire.expand;
    if (fire.pool_after) {
      chain.Append(OpKind::kMaxPool, PoolAttrs(3, 2));
    }
  }

  chain.Append(OpKind::kDropout);
  chain.Append(OpKind::kConv2D, ConvAttrs(1, channels, num_classes));
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kGlobalAvgPool);
  chain.Append(OpKind::kSoftmax);
  chain.Append(OpKind::kOutput);
  return model;
}

}  // namespace optimus
