// MobileNetV1 builder (Howard et al., 2017).

#ifndef OPTIMUS_SRC_ZOO_MOBILENET_H_
#define OPTIMUS_SRC_ZOO_MOBILENET_H_

#include "src/graph/model.h"

namespace optimus {

struct MobileNetOptions {
  // Canonical width multipliers: 0.25, 0.5, 0.75, 1.0.
  double width_multiplier = 1.0;
  int64_t num_classes = 1000;
};

// Builds MobileNetV1: a 3x3 stem conv followed by 13 depthwise-separable
// blocks (depthwise 3x3 + pointwise 1x1, each with BatchNorm + ReLU).
Model BuildMobileNet(const MobileNetOptions& options = {});

}  // namespace optimus

#endif  // OPTIMUS_SRC_ZOO_MOBILENET_H_
