// NASBench-201-style cell-search-space model generator (Dong & Yang, 2020).
//
// NAS-Bench-201 defines a fixed macro skeleton (stem, three cell stacks with
// residual reduction blocks between them) and a searchable 4-node cell whose
// six internal edges each pick one of five operation choices. Enumerating the
// edge choices yields 5^6 = 15625 lightweight architectures; this generator
// samples them deterministically from a seed, reproducing the "thousands of
// structurally similar models" property the paper relies on (§8.1).

#ifndef OPTIMUS_SRC_ZOO_NASBENCH_H_
#define OPTIMUS_SRC_ZOO_NASBENCH_H_

#include <array>
#include <cstdint>

#include "src/graph/model.h"

namespace optimus {

// Operation choice per cell edge, matching the NAS-Bench-201 search space.
enum class NasBenchEdgeOp : uint8_t {
  kNone = 0,      // Edge removed entirely.
  kSkip,          // Identity connection.
  kConv1x1,       // ReLU-Conv(1x1)-BN triplet.
  kConv3x3,       // ReLU-Conv(3x3)-BN triplet.
  kAvgPool3x3,    // 3x3 average pooling.
};

inline constexpr int kNasBenchCellEdges = 6;

// A fully specified cell: one op choice per edge, edges ordered
// (0->1, 0->2, 1->2, 0->3, 1->3, 2->3).
using NasBenchCellSpec = std::array<NasBenchEdgeOp, kNasBenchCellEdges>;

struct NasBenchOptions {
  int cells_per_stack = 5;
  int64_t base_width = 16;
  int64_t num_classes = 10;  // CIFAR-10, as in NAS-Bench-201.
};

// Builds the architecture `index` in [0, 15625) of the search space.
Model BuildNasBenchModel(int64_t index, const NasBenchOptions& options = {});

// Decodes an architecture index into its cell specification.
NasBenchCellSpec DecodeNasBenchSpec(int64_t index);

inline constexpr int64_t kNasBenchSpaceSize = 15625;  // 5^6.

}  // namespace optimus

#endif  // OPTIMUS_SRC_ZOO_NASBENCH_H_
