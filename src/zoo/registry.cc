#include "src/zoo/registry.h"

#include <cstdio>
#include <stdexcept>

#include "src/common/rng.h"
#include "src/zoo/bert.h"
#include "src/zoo/densenet.h"
#include "src/zoo/inception.h"
#include "src/zoo/mobilenet.h"
#include "src/zoo/nasbench.h"
#include "src/zoo/resnet.h"
#include "src/zoo/squeezenet.h"
#include "src/zoo/vgg.h"

namespace optimus {

void ModelRegistry::Register(const std::string& name, ModelBuilder builder) {
  if (builders_.count(name) > 0) {
    throw std::invalid_argument("ModelRegistry: duplicate name " + name);
  }
  builders_.emplace(name, std::move(builder));
}

bool ModelRegistry::Has(const std::string& name) const { return builders_.count(name) > 0; }

Model ModelRegistry::Build(const std::string& name) const {
  auto it = builders_.find(name);
  if (it == builders_.end()) {
    throw std::out_of_range("ModelRegistry: unknown model " + name);
  }
  Model model = it->second();
  model.set_name(name);
  return model;
}

std::vector<std::string> ModelRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(builders_.size());
  for (const auto& [name, builder] : builders_) {
    names.push_back(name);
  }
  return names;
}

namespace {

BertConfig WithTask(BertConfig config, BertTask task, const std::string& suffix) {
  config.task = task;
  config.name += "_" + suffix;
  return config;
}

void RegisterBertZoo(ModelRegistry* registry) {
  // Three sizes.
  registry->Register("bert_tiny", [] { return BuildBert(BertTinyConfig()); });
  registry->Register("bert_mini", [] { return BuildBert(BertMiniConfig()); });
  registry->Register("bert_small", [] { return BuildBert(BertSmallConfig()); });
  // Two vocabularies.
  registry->Register("bert_base_cased", [] { return BuildBert(BertBaseCasedConfig()); });
  registry->Register("bert_base_uncased", [] { return BuildBert(BertBaseConfig()); });
  // Five downstream tasks on the base encoder.
  registry->Register("bert_sc", [] {
    return BuildBert(WithTask(BertBaseConfig(), BertTask::kSequenceClassification, "sc"));
  });
  registry->Register("bert_tc", [] {
    return BuildBert(WithTask(BertBaseConfig(), BertTask::kTokenClassification, "tc"));
  });
  registry->Register("bert_qa", [] {
    return BuildBert(WithTask(BertBaseConfig(), BertTask::kQuestionAnswering, "qa"));
  });
  registry->Register("bert_nsp", [] {
    return BuildBert(WithTask(BertBaseConfig(), BertTask::kNextSentencePrediction, "nsp"));
  });
  registry->Register("bert_mc", [] {
    return BuildBert(WithTask(BertBaseConfig(), BertTask::kMultipleChoice, "mc"));
  });
}

}  // namespace

std::vector<std::string> RepresentativeModelNames() {
  return {
      // 11 CNNs from the Imgclsmob-style zoo.
      "vgg11", "vgg16", "vgg19", "resnet18", "resnet50", "resnet101", "resnet152",
      "densenet121", "mobilenet_w1.00", "inception_v1", "xception",
      // The 10-variation BERT zoo.
      "bert_tiny", "bert_mini", "bert_small", "bert_base_cased", "bert_base_uncased",
      "bert_sc", "bert_tc", "bert_qa", "bert_nsp", "bert_mc",
  };
}

ModelRegistry RepresentativeModels() {
  ModelRegistry registry;
  registry.Register("vgg11", [] { return BuildVgg(11); });
  registry.Register("vgg16", [] { return BuildVgg(16); });
  registry.Register("vgg19", [] { return BuildVgg(19); });
  registry.Register("resnet18", [] { return BuildResNet(18); });
  registry.Register("resnet50", [] { return BuildResNet(50); });
  registry.Register("resnet101", [] { return BuildResNet(101); });
  registry.Register("resnet152", [] { return BuildResNet(152); });
  registry.Register("densenet121", [] { return BuildDenseNet(121); });
  registry.Register("mobilenet_w1.00", [] { return BuildMobileNet(); });
  registry.Register("inception_v1", [] { return BuildInception(); });
  registry.Register("xception", [] { return BuildXception(); });
  RegisterBertZoo(&registry);
  return registry;
}

ModelRegistry BertZoo() {
  ModelRegistry registry;
  RegisterBertZoo(&registry);
  return registry;
}

ModelRegistry ImgclsmobZoo(int count) {
  ModelRegistry registry;
  // Canonical members first, then width-multiplier variants, mirroring how
  // Imgclsmob hosts many scaled variants of each family.
  struct Entry {
    std::string name;
    ModelBuilder builder;
  };
  std::vector<Entry> catalog;

  for (const int depth : {11, 13, 16, 19}) {
    for (const double width : {1.0, 0.75, 0.5, 0.375, 0.25}) {
      char name[64];
      std::snprintf(name, sizeof(name), "vgg%d_w%.3f", depth, width);
      catalog.push_back({name, [depth, width] {
                           VggOptions options;
                           options.width_multiplier = width;
                           return BuildVgg(depth, options);
                         }});
    }
  }
  for (const int depth : {18, 34, 50, 101, 152}) {
    for (const double width : {1.0, 0.75, 0.5, 0.375, 0.25, 0.125}) {
      char name[64];
      std::snprintf(name, sizeof(name), "resnet%d_w%.3f", depth, width);
      catalog.push_back({name, [depth, width] {
                           ResNetOptions options;
                           options.width_multiplier = width;
                           return BuildResNet(depth, options);
                         }});
    }
  }
  for (const int depth : {121, 169, 201}) {
    for (const int64_t growth : {8, 12, 16, 24, 32, 48}) {
      char name[64];
      std::snprintf(name, sizeof(name), "densenet%d_g%d", depth, static_cast<int>(growth));
      catalog.push_back({name, [depth, growth] {
                           DenseNetOptions options;
                           options.growth_rate = growth;
                           return BuildDenseNet(depth, options);
                         }});
    }
  }
  for (const double width :
       {1.0, 0.9, 0.8, 0.75, 0.7, 0.6, 0.5, 0.45, 0.4, 0.35, 0.3, 0.25, 0.2, 0.15, 0.125, 0.1}) {
    char name[64];
    std::snprintf(name, sizeof(name), "mobilenet_w%.2f", width);
    catalog.push_back({name, [width] {
                         MobileNetOptions options;
                         options.width_multiplier = width;
                         return BuildMobileNet(options);
                       }});
  }
  for (const int64_t classes : {1000, 100, 10}) {
    char name[64];
    std::snprintf(name, sizeof(name), "inception_v1_c%d", static_cast<int>(classes));
    catalog.push_back({name, [classes] { return BuildInception(classes); }});
    std::snprintf(name, sizeof(name), "xception_c%d", static_cast<int>(classes));
    catalog.push_back({name, [classes] { return BuildXception(classes); }});
    std::snprintf(name, sizeof(name), "squeezenet_c%d", static_cast<int>(classes));
    catalog.push_back({name, [classes] { return BuildSqueezeNet(classes); }});
  }

  // Fill the remainder (up to `count`) with further class-count variants of
  // the families to reach the 389-model catalog size.
  int suffix = 0;
  Rng rng(4242);
  while (static_cast<int>(catalog.size()) < count) {
    const int family = static_cast<int>(rng.UniformInt(0, 3));
    const int64_t classes = rng.UniformInt(2, 1000);
    char name[96];
    switch (family) {
      case 0: {
        const int depth = std::vector<int>{11, 13, 16, 19}[static_cast<size_t>(
            rng.UniformInt(0, 3))];
        std::snprintf(name, sizeof(name), "vgg%d_c%d_%d", depth, static_cast<int>(classes),
                      suffix);
        catalog.push_back({name, [depth, classes] {
                             VggOptions options;
                             options.num_classes = classes;
                             return BuildVgg(depth, options);
                           }});
        break;
      }
      case 1: {
        const int depth = std::vector<int>{18, 34, 50, 101, 152}[static_cast<size_t>(
            rng.UniformInt(0, 4))];
        std::snprintf(name, sizeof(name), "resnet%d_c%d_%d", depth, static_cast<int>(classes),
                      suffix);
        catalog.push_back({name, [depth, classes] {
                             ResNetOptions options;
                             options.num_classes = classes;
                             return BuildResNet(depth, options);
                           }});
        break;
      }
      case 2: {
        std::snprintf(name, sizeof(name), "mobilenet_c%d_%d", static_cast<int>(classes), suffix);
        catalog.push_back({name, [classes] {
                             MobileNetOptions options;
                             options.num_classes = classes;
                             return BuildMobileNet(options);
                           }});
        break;
      }
      default: {
        const int depth = std::vector<int>{121, 169, 201}[static_cast<size_t>(
            rng.UniformInt(0, 2))];
        std::snprintf(name, sizeof(name), "densenet%d_c%d_%d", depth, static_cast<int>(classes),
                      suffix);
        catalog.push_back({name, [depth, classes] {
                             DenseNetOptions options;
                             options.num_classes = classes;
                             return BuildDenseNet(depth, options);
                           }});
        break;
      }
    }
    ++suffix;
  }

  for (int i = 0; i < count && i < static_cast<int>(catalog.size()); ++i) {
    registry.Register(catalog[static_cast<size_t>(i)].name,
                      catalog[static_cast<size_t>(i)].builder);
  }
  return registry;
}

ModelRegistry NasBenchZoo(int count, uint64_t seed) {
  ModelRegistry registry;
  Rng rng(seed);
  int added = 0;
  while (added < count) {
    const int64_t index = rng.UniformInt(0, kNasBenchSpaceSize - 1);
    const std::string name = "nasbench_" + std::to_string(index);
    if (registry.Has(name)) {
      continue;
    }
    registry.Register(name, [index] { return BuildNasBenchModel(index); });
    ++added;
  }
  return registry;
}

}  // namespace optimus
