// Inception (GoogLeNet-style) and Xception builders.

#ifndef OPTIMUS_SRC_ZOO_INCEPTION_H_
#define OPTIMUS_SRC_ZOO_INCEPTION_H_

#include "src/graph/model.h"

namespace optimus {

// Builds a GoogLeNet-style Inception network: stem convolutions followed by
// nine four-branch inception modules (1x1; 1x1->3x3; 1x1->5x5; pool->1x1).
Model BuildInception(int64_t num_classes = 1000);

// Builds an Xception-style network: entry/middle/exit flows of depthwise
// separable convolutions with residual shortcuts.
Model BuildXception(int64_t num_classes = 1000);

}  // namespace optimus

#endif  // OPTIMUS_SRC_ZOO_INCEPTION_H_
