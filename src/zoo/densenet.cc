#include "src/zoo/densenet.h"

#include <stdexcept>
#include <vector>

#include "src/zoo/chain_builder.h"

namespace optimus {

namespace {

std::vector<int> BlockPlan(int depth) {
  switch (depth) {
    case 121:
      return {6, 12, 24, 16};
    case 169:
      return {6, 12, 32, 32};
    case 201:
      return {6, 12, 48, 32};
    default:
      throw std::invalid_argument("BuildDenseNet: unsupported depth " + std::to_string(depth));
  }
}

}  // namespace

Model BuildDenseNet(int depth, const DenseNetOptions& options) {
  const std::vector<int> plan = BlockPlan(depth);
  const int64_t growth = options.growth_rate;

  Model model("densenet" + std::to_string(depth), "densenet");
  ChainBuilder chain(&model);
  chain.Append(OpKind::kInput);

  int64_t channels = 2 * growth;
  chain.Append(OpKind::kConv2D, ConvAttrs(7, 3, channels, 2));
  chain.Append(OpKind::kBatchNorm, NormAttrs(channels));
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kMaxPool, PoolAttrs(3, 2));

  for (size_t block = 0; block < plan.size(); ++block) {
    for (int layer = 0; layer < plan[block]; ++layer) {
      const OpId block_input = chain.cursor();
      // BN -> ReLU -> 1x1 conv (4k) -> BN -> ReLU -> 3x3 conv (k).
      chain.Append(OpKind::kBatchNorm, NormAttrs(channels));
      chain.Append(OpKind::kActivation, ReluAttrs());
      chain.Append(OpKind::kConv2D, ConvAttrs(1, channels, 4 * growth));
      chain.Append(OpKind::kBatchNorm, NormAttrs(4 * growth));
      chain.Append(OpKind::kActivation, ReluAttrs());
      chain.Append(OpKind::kConv2D, ConvAttrs(3, 4 * growth, growth));
      // Dense connectivity: concatenate the new features with the input.
      chain.Append(OpKind::kConcat);
      chain.JoinFrom(block_input);
      channels += growth;
    }
    if (block + 1 < plan.size()) {
      // Transition: BN -> 1x1 conv halving channels -> 2x2 average pool.
      chain.Append(OpKind::kBatchNorm, NormAttrs(channels));
      channels /= 2;
      chain.Append(OpKind::kConv2D, ConvAttrs(1, channels * 2, channels));
      chain.Append(OpKind::kAvgPool, PoolAttrs(2, 2));
    }
  }

  chain.Append(OpKind::kBatchNorm, NormAttrs(channels));
  chain.Append(OpKind::kGlobalAvgPool);
  chain.Append(OpKind::kDense, DenseAttrs(channels, options.num_classes));
  chain.Append(OpKind::kSoftmax);
  chain.Append(OpKind::kOutput);
  return model;
}

}  // namespace optimus
