#include "src/zoo/mobilenet.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/zoo/chain_builder.h"

namespace optimus {

namespace {

int64_t Scaled(int64_t channels, double multiplier) {
  return std::max<int64_t>(1, static_cast<int64_t>(channels * multiplier));
}

OpAttributes DepthwiseAttrs(int64_t channels, int64_t stride) {
  OpAttributes attrs;
  attrs.kernel_h = 3;
  attrs.kernel_w = 3;
  attrs.stride = stride;
  attrs.in_channels = channels;
  attrs.out_channels = channels;
  return attrs;
}

}  // namespace

Model BuildMobileNet(const MobileNetOptions& options) {
  char name[64];
  std::snprintf(name, sizeof(name), "mobilenet_w%.2f", options.width_multiplier);
  Model model(name, "mobilenet");
  ChainBuilder chain(&model);
  chain.Append(OpKind::kInput);

  int64_t channels = Scaled(32, options.width_multiplier);
  chain.Append(OpKind::kConv2D, ConvAttrs(3, 3, channels, 2));
  chain.Append(OpKind::kBatchNorm, NormAttrs(channels));
  chain.Append(OpKind::kActivation, ReluAttrs());

  // (output channels, stride) per depthwise-separable block.
  const std::vector<std::pair<int64_t, int64_t>> blocks = {
      {64, 1},  {128, 2}, {128, 1}, {256, 2},  {256, 1},  {512, 2},  {512, 1},
      {512, 1}, {512, 1}, {512, 1}, {512, 1},  {1024, 2}, {1024, 1},
  };
  for (const auto& [out, stride] : blocks) {
    const int64_t out_channels = Scaled(out, options.width_multiplier);
    chain.Append(OpKind::kDepthwiseConv2D, DepthwiseAttrs(channels, stride));
    chain.Append(OpKind::kBatchNorm, NormAttrs(channels));
    chain.Append(OpKind::kActivation, ReluAttrs());
    chain.Append(OpKind::kConv2D, ConvAttrs(1, channels, out_channels));
    chain.Append(OpKind::kBatchNorm, NormAttrs(out_channels));
    chain.Append(OpKind::kActivation, ReluAttrs());
    channels = out_channels;
  }

  chain.Append(OpKind::kGlobalAvgPool);
  chain.Append(OpKind::kDense, DenseAttrs(channels, options.num_classes));
  chain.Append(OpKind::kSoftmax);
  chain.Append(OpKind::kOutput);
  return model;
}

}  // namespace optimus
