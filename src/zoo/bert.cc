#include "src/zoo/bert.h"

#include "src/zoo/chain_builder.h"

namespace optimus {

namespace {

OpAttributes ProjectionAttrs(int64_t in_dim, int64_t out_dim, int64_t heads) {
  OpAttributes attrs;
  attrs.in_channels = in_dim;
  attrs.out_channels = out_dim;
  attrs.heads = heads;
  return attrs;
}

OpAttributes EmbeddingAttrs(int64_t vocab, int64_t dim) {
  OpAttributes attrs;
  attrs.vocab_size = vocab;
  attrs.out_channels = dim;
  return attrs;
}

// One transformer encoder block: self-attention + FFN with residuals.
void AttentionBlock(ChainBuilder* chain, const BertConfig& config) {
  Model* model = chain->model();
  const OpId block_input = chain->cursor();
  const int64_t hidden = config.hidden;

  // Self-attention: parallel Q/K/V projections.
  chain->set_cursor(block_input);
  const OpId query =
      chain->Append(OpKind::kAttentionQuery, ProjectionAttrs(hidden, hidden, config.heads));
  chain->set_cursor(block_input);
  const OpId key =
      chain->Append(OpKind::kAttentionKey, ProjectionAttrs(hidden, hidden, config.heads));
  chain->set_cursor(block_input);
  const OpId value =
      chain->Append(OpKind::kAttentionValue, ProjectionAttrs(hidden, hidden, config.heads));

  // Logit = QK^T, Softmax, Attend = softmax(logit) V. Weight-free.
  const OpId logit = model->AddOp(OpKind::kLogit);
  model->AddEdge(query, logit);
  model->AddEdge(key, logit);
  const OpId softmax = model->AddOp(OpKind::kSoftmax);
  model->AddEdge(logit, softmax);
  const OpId attend = model->AddOp(OpKind::kAttend);
  model->AddEdge(softmax, attend);
  model->AddEdge(value, attend);

  chain->set_cursor(attend);
  chain->Append(OpKind::kAttentionOutput, ProjectionAttrs(hidden, hidden, config.heads));
  chain->Append(OpKind::kAdd);
  chain->JoinFrom(block_input);
  chain->Append(OpKind::kLayerNorm, NormAttrs(hidden));
  const OpId attention_out = chain->cursor();

  // Feed-forward network.
  chain->Append(OpKind::kDense, DenseAttrs(hidden, config.intermediate));
  chain->Append(OpKind::kActivation, GeluAttrs());
  chain->Append(OpKind::kDense, DenseAttrs(config.intermediate, hidden));
  chain->Append(OpKind::kAdd);
  chain->JoinFrom(attention_out);
  chain->Append(OpKind::kLayerNorm, NormAttrs(hidden));
}

void TaskHead(ChainBuilder* chain, const BertConfig& config) {
  const int64_t hidden = config.hidden;
  switch (config.task) {
    case BertTask::kNone:
      break;
    case BertTask::kSequenceClassification:
      chain->Append(OpKind::kDropout);
      chain->Append(OpKind::kDense, DenseAttrs(hidden, config.num_labels));
      break;
    case BertTask::kTokenClassification:
      chain->Append(OpKind::kDropout);
      chain->Append(OpKind::kDense, DenseAttrs(hidden, config.num_labels));
      break;
    case BertTask::kQuestionAnswering:
      // Two dense heads: span start and span end logits.
      chain->Append(OpKind::kDense, DenseAttrs(hidden, hidden));
      chain->Append(OpKind::kActivation, GeluAttrs());
      chain->Append(OpKind::kDense, DenseAttrs(hidden, 2));
      break;
    case BertTask::kNextSentencePrediction:
      chain->Append(OpKind::kDense, DenseAttrs(hidden, 2));
      break;
    case BertTask::kMultipleChoice:
      chain->Append(OpKind::kDropout);
      chain->Append(OpKind::kDense, DenseAttrs(hidden, 1));
      break;
  }
}

}  // namespace

BertConfig BertTinyConfig() {
  return {"bert_tiny", 2, 128, 2, 512, 30522, 512, BertTask::kNone, 2};
}

BertConfig BertMiniConfig() {
  return {"bert_mini", 4, 256, 4, 1024, 30522, 512, BertTask::kNone, 2};
}

BertConfig BertSmallConfig() {
  return {"bert_small", 4, 512, 8, 2048, 30522, 512, BertTask::kNone, 2};
}

BertConfig BertMediumConfig() {
  return {"bert_medium", 8, 512, 8, 2048, 30522, 512, BertTask::kNone, 2};
}

BertConfig BertBaseConfig() {
  return {"bert_base_uncased", 12, 768, 12, 3072, 30522, 512, BertTask::kNone, 2};
}

BertConfig BertBaseCasedConfig() {
  return {"bert_base_cased", 12, 768, 12, 3072, 28996, 512, BertTask::kNone, 2};
}

Model BuildBert(const BertConfig& config) {
  Model model(config.name, "bert");
  ChainBuilder chain(&model);
  const OpId input = chain.Append(OpKind::kInput);

  // Embedding block: token + position embeddings summed, then LayerNorm.
  chain.set_cursor(input);
  const OpId token_embedding =
      chain.Append(OpKind::kEmbedding, EmbeddingAttrs(config.vocab_size, config.hidden));
  chain.set_cursor(input);
  chain.Append(OpKind::kEmbedding, EmbeddingAttrs(config.max_position, config.hidden));
  chain.Append(OpKind::kAdd);
  chain.JoinFrom(token_embedding);
  chain.Append(OpKind::kLayerNorm, NormAttrs(config.hidden));
  chain.Append(OpKind::kDropout);

  for (int layer = 0; layer < config.num_layers; ++layer) {
    AttentionBlock(&chain, config);
  }

  TaskHead(&chain, config);
  chain.Append(OpKind::kOutput);
  return model;
}

}  // namespace optimus
