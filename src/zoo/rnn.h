// Recurrent (LSTM / GRU) model builders.
//
// The paper's implementation note (§7) states the meta-operator interfaces
// cover "most models, including CNN, RNN, and transformer"; these builders
// provide the RNN members of the zoo: embedding -> stacked recurrent cells ->
// dense classifier, the standard text-classification topology.

#ifndef OPTIMUS_SRC_ZOO_RNN_H_
#define OPTIMUS_SRC_ZOO_RNN_H_

#include <cstdint>
#include <string>

#include "src/graph/model.h"

namespace optimus {

struct RnnConfig {
  std::string name = "lstm_classifier";
  bool use_gru = false;   // false = LSTM cells, true = GRU cells.
  int num_layers = 2;
  int64_t vocab_size = 20000;
  int64_t embedding_dim = 128;
  int64_t hidden = 256;
  int64_t num_classes = 2;
};

Model BuildRnn(const RnnConfig& config);

}  // namespace optimus

#endif  // OPTIMUS_SRC_ZOO_RNN_H_
