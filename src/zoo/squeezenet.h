// SqueezeNet builder (Iandola et al., 2016): Fire modules with a 1x1 squeeze
// convolution feeding parallel 1x1 and 3x3 expand branches.

#ifndef OPTIMUS_SRC_ZOO_SQUEEZENET_H_
#define OPTIMUS_SRC_ZOO_SQUEEZENET_H_

#include "src/graph/model.h"

namespace optimus {

// Builds SqueezeNet v1.0 (~1.25M parameters at 1000 classes).
Model BuildSqueezeNet(int64_t num_classes = 1000);

}  // namespace optimus

#endif  // OPTIMUS_SRC_ZOO_SQUEEZENET_H_
