// Model registry and catalogs mirroring the paper's workloads (§8.1):
// an Imgclsmob-style CNN zoo (389 models), a BERT zoo (10 variations), and
// the NAS-Bench-201 space, plus the 21 representative models of Figure 11.

#ifndef OPTIMUS_SRC_ZOO_REGISTRY_H_
#define OPTIMUS_SRC_ZOO_REGISTRY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "src/graph/model.h"

namespace optimus {

using ModelBuilder = std::function<Model()>;

// A named catalog of model builders. Building is lazy: catalogs hold cheap
// closures and models (structure-only) are constructed on demand.
class ModelRegistry {
 public:
  // Registers a builder; throws std::invalid_argument on duplicate names.
  void Register(const std::string& name, ModelBuilder builder);

  bool Has(const std::string& name) const;

  // Builds the model; throws std::out_of_range on unknown names.
  Model Build(const std::string& name) const;

  // All registered names in lexicographic order.
  std::vector<std::string> Names() const;

  size_t Size() const { return builders_.size(); }

 private:
  std::map<std::string, ModelBuilder> builders_;
};

// The 21 representative models of Figure 11 (11 CNNs + 10 BERT variations),
// in the paper's ordering, plus builders for each.
std::vector<std::string> RepresentativeModelNames();
ModelRegistry RepresentativeModels();

// The 10-variation BERT zoo: three extra sizes (Tiny, Mini, Small), two
// vocabularies (Cased, Uncased), five downstream tasks (SC, TC, QA, NSP, MC).
ModelRegistry BertZoo();

// An Imgclsmob-style CNN zoo: `count` models (default 389, matching the
// paper) drawn from the VGG/ResNet/DenseNet/MobileNet/Inception/Xception
// families with varying depth and width multipliers. Deterministic.
ModelRegistry ImgclsmobZoo(int count = 389);

// A NAS-Bench-201 catalog with `count` architectures sampled deterministically
// from the 15625-model space.
ModelRegistry NasBenchZoo(int count, uint64_t seed = 2024);

}  // namespace optimus

#endif  // OPTIMUS_SRC_ZOO_REGISTRY_H_
