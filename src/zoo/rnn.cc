#include "src/zoo/rnn.h"

#include "src/zoo/chain_builder.h"

namespace optimus {

Model BuildRnn(const RnnConfig& config) {
  Model model(config.name, config.use_gru ? "gru" : "lstm");
  ChainBuilder chain(&model);
  chain.Append(OpKind::kInput);

  OpAttributes embedding;
  embedding.vocab_size = config.vocab_size;
  embedding.out_channels = config.embedding_dim;
  chain.Append(OpKind::kEmbedding, embedding);
  chain.Append(OpKind::kDropout);

  int64_t in_dim = config.embedding_dim;
  for (int layer = 0; layer < config.num_layers; ++layer) {
    OpAttributes cell;
    cell.in_channels = in_dim;
    cell.out_channels = config.hidden;
    chain.Append(config.use_gru ? OpKind::kGruCell : OpKind::kLstmCell, cell);
    chain.Append(OpKind::kDropout);
    in_dim = config.hidden;
  }

  chain.Append(OpKind::kDense, DenseAttrs(config.hidden, config.num_classes));
  chain.Append(OpKind::kSoftmax);
  chain.Append(OpKind::kOutput);
  return model;
}

}  // namespace optimus
