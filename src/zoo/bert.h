// BERT family builder (Devlin et al., 2019), per §5.2 of the paper.
//
// A BERT model here is an embedding block (token + position embeddings with a
// LayerNorm) followed by a stack of attention blocks; each attention block
// holds Q/K/V/O projection operations with weights, weight-free Logit and
// Attend steps, and a two-layer feed-forward network, with residual Adds and
// LayerNorms. Downstream-task variants add task-specific dense heads.

#ifndef OPTIMUS_SRC_ZOO_BERT_H_
#define OPTIMUS_SRC_ZOO_BERT_H_

#include <cstdint>
#include <string>

#include "src/graph/model.h"

namespace optimus {

// Downstream task heads described in §8.1.
enum class BertTask : uint8_t {
  kNone = 0,                // Pre-trained encoder only.
  kSequenceClassification,  // BERT-SC: one dense head.
  kTokenClassification,     // BERT-TC: one per-token dense head.
  kQuestionAnswering,       // BERT-QA: two dense heads (start & end logits).
  kNextSentencePrediction,  // BERT-NSP: one binary dense head.
  kMultipleChoice,          // BERT-MC: one scoring dense head.
};

struct BertConfig {
  std::string name;
  int num_layers = 12;
  int64_t hidden = 768;
  int64_t heads = 12;
  int64_t intermediate = 3072;
  int64_t vocab_size = 30522;  // Uncased WordPiece vocabulary.
  int64_t max_position = 512;
  BertTask task = BertTask::kNone;
  int64_t num_labels = 2;
};

// Canonical configurations.
BertConfig BertTinyConfig();    // L=2,  H=128.
BertConfig BertMiniConfig();    // L=4,  H=256.
BertConfig BertSmallConfig();   // L=4,  H=512.
BertConfig BertMediumConfig();  // L=8,  H=512.
BertConfig BertBaseConfig();    // L=12, H=768 (uncased vocabulary).
BertConfig BertBaseCasedConfig();  // L=12, H=768, cased vocabulary (28996).

// Builds a BERT model from a configuration.
Model BuildBert(const BertConfig& config);

}  // namespace optimus

#endif  // OPTIMUS_SRC_ZOO_BERT_H_
