#include "src/zoo/inception.h"

#include <array>
#include <vector>

#include "src/zoo/chain_builder.h"

namespace optimus {

namespace {

struct InceptionSpec {
  int64_t b1;        // 1x1 branch.
  int64_t b2_in;     // 1x1 reduce before 3x3.
  int64_t b2;        // 3x3 branch.
  int64_t b3_in;     // 1x1 reduce before 5x5.
  int64_t b3;        // 5x5 branch.
  int64_t b4;        // pool-projection 1x1.
  int64_t Out() const { return b1 + b2 + b3 + b4; }
};

// Four parallel branches joined by a Concat; returns the concat op id.
OpId InceptionModule(ChainBuilder* chain, int64_t in_channels, const InceptionSpec& spec) {
  Model* model = chain->model();
  const OpId input = chain->cursor();

  chain->set_cursor(input);
  chain->Append(OpKind::kConv2D, ConvAttrs(1, in_channels, spec.b1));
  chain->Append(OpKind::kActivation, ReluAttrs());
  const OpId branch1 = chain->cursor();

  chain->set_cursor(input);
  chain->Append(OpKind::kConv2D, ConvAttrs(1, in_channels, spec.b2_in));
  chain->Append(OpKind::kActivation, ReluAttrs());
  chain->Append(OpKind::kConv2D, ConvAttrs(3, spec.b2_in, spec.b2));
  chain->Append(OpKind::kActivation, ReluAttrs());
  const OpId branch2 = chain->cursor();

  chain->set_cursor(input);
  chain->Append(OpKind::kConv2D, ConvAttrs(1, in_channels, spec.b3_in));
  chain->Append(OpKind::kActivation, ReluAttrs());
  chain->Append(OpKind::kConv2D, ConvAttrs(5, spec.b3_in, spec.b3));
  chain->Append(OpKind::kActivation, ReluAttrs());
  const OpId branch3 = chain->cursor();

  chain->set_cursor(input);
  chain->Append(OpKind::kMaxPool, PoolAttrs(3, 1));
  chain->Append(OpKind::kConv2D, ConvAttrs(1, in_channels, spec.b4));
  chain->Append(OpKind::kActivation, ReluAttrs());
  const OpId branch4 = chain->cursor();

  const OpId concat = model->AddOp(OpKind::kConcat);
  model->AddEdge(branch1, concat);
  model->AddEdge(branch2, concat);
  model->AddEdge(branch3, concat);
  model->AddEdge(branch4, concat);
  chain->set_cursor(concat);
  return concat;
}

// Depthwise-separable conv: depthwise 3x3 then pointwise 1x1 with BN.
void SeparableConv(ChainBuilder* chain, int64_t in_channels, int64_t out_channels,
                   int64_t stride = 1) {
  OpAttributes depthwise;
  depthwise.kernel_h = 3;
  depthwise.kernel_w = 3;
  depthwise.stride = stride;
  depthwise.in_channels = in_channels;
  depthwise.out_channels = in_channels;
  chain->Append(OpKind::kDepthwiseConv2D, depthwise);
  chain->Append(OpKind::kConv2D, ConvAttrs(1, in_channels, out_channels));
  chain->Append(OpKind::kBatchNorm, NormAttrs(out_channels));
}

}  // namespace

Model BuildInception(int64_t num_classes) {
  Model model("inception_v1", "inception");
  ChainBuilder chain(&model);
  chain.Append(OpKind::kInput);

  chain.Append(OpKind::kConv2D, ConvAttrs(7, 3, 64, 2));
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kMaxPool, PoolAttrs(3, 2));
  chain.Append(OpKind::kConv2D, ConvAttrs(1, 64, 64));
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kConv2D, ConvAttrs(3, 64, 192));
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kMaxPool, PoolAttrs(3, 2));

  const std::array<InceptionSpec, 9> modules = {{
      {64, 96, 128, 16, 32, 32},     // 3a -> 256
      {128, 128, 192, 32, 96, 64},   // 3b -> 480
      {192, 96, 208, 16, 48, 64},    // 4a -> 512
      {160, 112, 224, 24, 64, 64},   // 4b -> 512
      {128, 128, 256, 24, 64, 64},   // 4c -> 512
      {112, 144, 288, 32, 64, 64},   // 4d -> 528
      {256, 160, 320, 32, 128, 128}, // 4e -> 832
      {256, 160, 320, 32, 128, 128}, // 5a -> 832
      {384, 192, 384, 48, 128, 128}, // 5b -> 1024
  }};
  int64_t channels = 192;
  for (size_t i = 0; i < modules.size(); ++i) {
    InceptionModule(&chain, channels, modules[i]);
    channels = modules[i].Out();
    if (i == 1 || i == 6) {
      chain.Append(OpKind::kMaxPool, PoolAttrs(3, 2));
    }
  }

  chain.Append(OpKind::kGlobalAvgPool);
  chain.Append(OpKind::kDropout);
  chain.Append(OpKind::kDense, DenseAttrs(channels, num_classes));
  chain.Append(OpKind::kSoftmax);
  chain.Append(OpKind::kOutput);
  return model;
}

Model BuildXception(int64_t num_classes) {
  Model model("xception", "xception");
  ChainBuilder chain(&model);
  chain.Append(OpKind::kInput);

  // Entry flow stem.
  chain.Append(OpKind::kConv2D, ConvAttrs(3, 3, 32, 2));
  chain.Append(OpKind::kBatchNorm, NormAttrs(32));
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kConv2D, ConvAttrs(3, 32, 64));
  chain.Append(OpKind::kBatchNorm, NormAttrs(64));
  chain.Append(OpKind::kActivation, ReluAttrs());

  int64_t channels = 64;
  // Entry flow: three downsampling residual blocks.
  for (const int64_t out : {128, 256, 728}) {
    const OpId block_input = chain.cursor();
    chain.Append(OpKind::kActivation, ReluAttrs());
    SeparableConv(&chain, channels, out);
    chain.Append(OpKind::kActivation, ReluAttrs());
    SeparableConv(&chain, out, out);
    chain.Append(OpKind::kMaxPool, PoolAttrs(3, 2));
    const OpId main_path = chain.cursor();

    chain.set_cursor(block_input);
    chain.Append(OpKind::kConv2D, ConvAttrs(1, channels, out, 2));
    chain.Append(OpKind::kBatchNorm, NormAttrs(out));
    const OpId shortcut = chain.cursor();

    chain.set_cursor(main_path);
    chain.Append(OpKind::kAdd);
    chain.JoinFrom(shortcut);
    channels = out;
  }

  // Middle flow: eight identity residual blocks of three separable convs.
  for (int block = 0; block < 8; ++block) {
    const OpId block_input = chain.cursor();
    for (int conv = 0; conv < 3; ++conv) {
      chain.Append(OpKind::kActivation, ReluAttrs());
      SeparableConv(&chain, channels, channels);
    }
    chain.Append(OpKind::kAdd);
    chain.JoinFrom(block_input);
  }

  // Exit flow.
  const OpId exit_input = chain.cursor();
  chain.Append(OpKind::kActivation, ReluAttrs());
  SeparableConv(&chain, channels, 728);
  chain.Append(OpKind::kActivation, ReluAttrs());
  SeparableConv(&chain, 728, 1024);
  chain.Append(OpKind::kMaxPool, PoolAttrs(3, 2));
  const OpId exit_main = chain.cursor();
  chain.set_cursor(exit_input);
  chain.Append(OpKind::kConv2D, ConvAttrs(1, channels, 1024, 2));
  chain.Append(OpKind::kBatchNorm, NormAttrs(1024));
  const OpId exit_shortcut = chain.cursor();
  chain.set_cursor(exit_main);
  chain.Append(OpKind::kAdd);
  chain.JoinFrom(exit_shortcut);

  SeparableConv(&chain, 1024, 1536);
  chain.Append(OpKind::kActivation, ReluAttrs());
  SeparableConv(&chain, 1536, 2048);
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kGlobalAvgPool);
  chain.Append(OpKind::kDense, DenseAttrs(2048, num_classes));
  chain.Append(OpKind::kSoftmax);
  chain.Append(OpKind::kOutput);
  return model;
}

}  // namespace optimus
