#include "src/zoo/nasbench.h"

#include <stdexcept>
#include <string>
#include <vector>

#include "src/zoo/chain_builder.h"

namespace optimus {

namespace {

struct CellEdge {
  int from;
  int to;
};

constexpr CellEdge kCellEdges[kNasBenchCellEdges] = {
    {0, 1}, {0, 2}, {1, 2}, {0, 3}, {1, 3}, {2, 3},
};

// Materializes one cell: node 0 is the cell input, node 3 the output. Each
// chosen edge op becomes graph operations feeding the target node's Add.
// Returns the id of the cell output op.
OpId BuildCell(Model* model, OpId cell_input, const NasBenchCellSpec& spec, int64_t width) {
  std::vector<OpId> node_join(4, kInvalidOpId);
  node_join[0] = cell_input;
  for (int node = 1; node < 4; ++node) {
    node_join[static_cast<size_t>(node)] = model->AddOp(OpKind::kAdd);
  }

  bool any_edge[4] = {true, false, false, false};
  for (int e = 0; e < kNasBenchCellEdges; ++e) {
    const NasBenchEdgeOp choice = spec[static_cast<size_t>(e)];
    if (choice == NasBenchEdgeOp::kNone) {
      continue;
    }
    const OpId src = node_join[static_cast<size_t>(kCellEdges[e].from)];
    const OpId dst = node_join[static_cast<size_t>(kCellEdges[e].to)];
    any_edge[kCellEdges[e].to] = true;
    switch (choice) {
      case NasBenchEdgeOp::kSkip:
        model->AddEdge(src, dst);
        break;
      case NasBenchEdgeOp::kConv1x1:
      case NasBenchEdgeOp::kConv3x3: {
        const int64_t kernel = choice == NasBenchEdgeOp::kConv1x1 ? 1 : 3;
        const OpId relu = model->AddOp(OpKind::kActivation, ReluAttrs());
        const OpId conv = model->AddOp(OpKind::kConv2D, ConvAttrs(kernel, width, width));
        const OpId bn = model->AddOp(OpKind::kBatchNorm, NormAttrs(width));
        model->AddEdge(src, relu);
        model->AddEdge(relu, conv);
        model->AddEdge(conv, bn);
        model->AddEdge(bn, dst);
        break;
      }
      case NasBenchEdgeOp::kAvgPool3x3: {
        const OpId pool = model->AddOp(OpKind::kAvgPool, PoolAttrs(3, 1));
        model->AddEdge(src, pool);
        model->AddEdge(pool, dst);
        break;
      }
      case NasBenchEdgeOp::kNone:
        break;
    }
  }

  // A node with no inbound edge would be disconnected; fall back to a skip
  // from the cell input so the graph stays connected (mirrors how NAS-Bench
  // handles degenerate cells when evaluating them).
  for (int node = 1; node < 4; ++node) {
    if (!any_edge[node]) {
      model->AddEdge(cell_input, node_join[static_cast<size_t>(node)]);
    }
  }
  return node_join[3];
}

// Residual reduction block between stacks: doubles width, halves resolution.
OpId ReductionBlock(ChainBuilder* chain, int64_t in_width, int64_t out_width) {
  const OpId input = chain->cursor();
  chain->Append(OpKind::kActivation, ReluAttrs());
  chain->Append(OpKind::kConv2D, ConvAttrs(3, in_width, out_width, 2));
  chain->Append(OpKind::kBatchNorm, NormAttrs(out_width));
  chain->Append(OpKind::kActivation, ReluAttrs());
  chain->Append(OpKind::kConv2D, ConvAttrs(3, out_width, out_width));
  chain->Append(OpKind::kBatchNorm, NormAttrs(out_width));
  const OpId main_path = chain->cursor();

  chain->set_cursor(input);
  chain->Append(OpKind::kAvgPool, PoolAttrs(2, 2));
  chain->Append(OpKind::kConv2D, ConvAttrs(1, in_width, out_width));
  const OpId shortcut = chain->cursor();

  chain->set_cursor(main_path);
  chain->Append(OpKind::kAdd);
  chain->JoinFrom(shortcut);
  return chain->cursor();
}

}  // namespace

NasBenchCellSpec DecodeNasBenchSpec(int64_t index) {
  if (index < 0 || index >= kNasBenchSpaceSize) {
    throw std::invalid_argument("DecodeNasBenchSpec: index out of range");
  }
  NasBenchCellSpec spec;
  for (int e = 0; e < kNasBenchCellEdges; ++e) {
    spec[static_cast<size_t>(e)] = static_cast<NasBenchEdgeOp>(index % 5);
    index /= 5;
  }
  return spec;
}

Model BuildNasBenchModel(int64_t index, const NasBenchOptions& options) {
  const NasBenchCellSpec spec = DecodeNasBenchSpec(index);
  Model model("nasbench_" + std::to_string(index), "nasbench");
  ChainBuilder chain(&model);
  chain.Append(OpKind::kInput);

  int64_t width = options.base_width;
  chain.Append(OpKind::kConv2D, ConvAttrs(3, 3, width));
  chain.Append(OpKind::kBatchNorm, NormAttrs(width));

  for (int stack = 0; stack < 3; ++stack) {
    for (int cell = 0; cell < options.cells_per_stack; ++cell) {
      const OpId out = BuildCell(&model, chain.cursor(), spec, width);
      chain.set_cursor(out);
    }
    if (stack < 2) {
      ReductionBlock(&chain, width, width * 2);
      width *= 2;
    }
  }

  chain.Append(OpKind::kGlobalAvgPool);
  chain.Append(OpKind::kDense, DenseAttrs(width, options.num_classes));
  chain.Append(OpKind::kSoftmax);
  chain.Append(OpKind::kOutput);
  return model;
}

}  // namespace optimus
