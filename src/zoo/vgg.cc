#include "src/zoo/vgg.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/zoo/chain_builder.h"

namespace optimus {

namespace {

// Convolution plans per stage: number of 3x3 convs before each max-pool.
std::vector<int> ConvsPerStage(int depth) {
  switch (depth) {
    case 11:
      return {1, 1, 2, 2, 2};
    case 13:
      return {2, 2, 2, 2, 2};
    case 16:
      return {2, 2, 3, 3, 3};
    case 19:
      return {2, 2, 4, 4, 4};
    default:
      throw std::invalid_argument("BuildVgg: unsupported depth " + std::to_string(depth));
  }
}

int64_t Scaled(int64_t channels, double multiplier) {
  return std::max<int64_t>(1, static_cast<int64_t>(channels * multiplier));
}

}  // namespace

Model BuildVgg(int depth, const VggOptions& options) {
  const std::vector<int> plan = ConvsPerStage(depth);
  const int64_t stage_channels[5] = {64, 128, 256, 512, 512};

  Model model("vgg" + std::to_string(depth), "vgg");
  ChainBuilder chain(&model);
  chain.Append(OpKind::kInput);

  int64_t in_channels = 3;
  for (size_t stage = 0; stage < plan.size(); ++stage) {
    const int64_t out_channels = Scaled(stage_channels[stage], options.width_multiplier);
    for (int conv = 0; conv < plan[stage]; ++conv) {
      chain.Append(OpKind::kConv2D, ConvAttrs(3, in_channels, out_channels));
      chain.Append(OpKind::kActivation, ReluAttrs());
      in_channels = out_channels;
    }
    chain.Append(OpKind::kMaxPool, PoolAttrs(2, 2));
  }

  chain.Append(OpKind::kFlatten);
  // 224x224 input downsampled 2^5 -> 7x7 spatial grid before flattening.
  const int64_t flat_units = 7 * 7 * in_channels;
  const int64_t fc_units = Scaled(4096, options.width_multiplier);
  chain.Append(OpKind::kDense, DenseAttrs(flat_units, fc_units));
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kDropout);
  chain.Append(OpKind::kDense, DenseAttrs(fc_units, fc_units));
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kDropout);
  chain.Append(OpKind::kDense, DenseAttrs(fc_units, options.num_classes));
  chain.Append(OpKind::kSoftmax);
  chain.Append(OpKind::kOutput);
  return model;
}

}  // namespace optimus
