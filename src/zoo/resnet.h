// ResNet family builders (He et al., 2015).

#ifndef OPTIMUS_SRC_ZOO_RESNET_H_
#define OPTIMUS_SRC_ZOO_RESNET_H_

#include "src/graph/model.h"

namespace optimus {

struct ResNetOptions {
  double width_multiplier = 1.0;
  int64_t num_classes = 1000;
};

// Builds ResNet-`depth` for depth in {18, 34, 50, 101, 152}. Depths 18/34 use
// basic residual blocks, 50+ use bottleneck blocks. Canonical parameter
// counts: ResNet50 25.6M, ResNet101 44.7M, ResNet152 60.4M.
Model BuildResNet(int depth, const ResNetOptions& options = {});

}  // namespace optimus

#endif  // OPTIMUS_SRC_ZOO_RESNET_H_
