// VGG family builders (Simonyan & Zisserman, 2015).

#ifndef OPTIMUS_SRC_ZOO_VGG_H_
#define OPTIMUS_SRC_ZOO_VGG_H_

#include "src/graph/model.h"

namespace optimus {

struct VggOptions {
  // Scales every channel/unit count; <1.0 produces lighter zoo variants.
  double width_multiplier = 1.0;
  int64_t num_classes = 1000;
};

// Builds VGG-`depth` for depth in {11, 13, 16, 19}. Structure only (weights
// unallocated); the canonical VGG16 has 138.4M parameters.
Model BuildVgg(int depth, const VggOptions& options = {});

}  // namespace optimus

#endif  // OPTIMUS_SRC_ZOO_VGG_H_
