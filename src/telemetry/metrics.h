// Always-on, low-overhead observability: the metrics registry (DESIGN.md §12).
//
// Optimus's value claim is a latency *distribution* — transformation must beat
// scratch loads per-request (§4.4 safeguard, §8 evaluation) — so the platform
// records where every invoke spent its time instead of keeping a few ad-hoc
// means. Three metric kinds cover that:
//
//   * Counter   — monotone event count; per-shard relaxed atomics so
//                 concurrent increments from different threads never contend.
//   * Gauge     — a settable/addable double (CAS add).
//   * Histogram — log-bucketed latency distribution (4 sub-buckets per power
//                 of two, ≤25% relative bucket width) supporting p50/p95/p99
//                 and max. Observations are clamped to [0, ~9.2e9] seconds.
//
// MetricsRegistry names metrics and attaches label sets (e.g.
// optimus_phase_seconds{phase="inference"}), so per-function and per-phase
// series live side by side. Lookups take a shared lock and allocate; hot
// paths resolve their series once and cache the returned reference, which is
// stable for the registry's lifetime. RenderPrometheus() serializes every
// series in Prometheus text exposition format (histograms as summaries with
// quantile labels), which is what the gateway's /metrics endpoint serves.
//
// The whole registry can be switched off (set_enabled(false)): recording
// becomes a relaxed atomic load and an early return, which is what the
// telemetry-overhead guard in bench_warm_parallel measures against.

#ifndef OPTIMUS_SRC_TELEMETRY_METRICS_H_
#define OPTIMUS_SRC_TELEMETRY_METRICS_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/sync.h"

namespace optimus {
namespace telemetry {

// Ordered (key, value) label pairs identifying one series within a family.
using Labels = std::vector<std::pair<std::string, std::string>>;

namespace internal {
// Stable per-thread shard index; threads round-robin across shards so
// concurrent writers rarely share a cache line.
size_t ThreadShardIndex();
}  // namespace internal

// Monotone event counter. Inc() is wait-free: one relaxed fetch_add on the
// calling thread's shard; Value() sums the shards (racy reads are fine — the
// counter is monotone and snapshots need only be eventually consistent).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Inc(uint64_t n = 1) {
    if (enabled_ != nullptr && !enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    shards_[internal::ThreadShardIndex() % kShards].value.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  friend class MetricsRegistry;
  static constexpr size_t kShards = 8;
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  std::array<Shard, kShards> shards_;
  const std::atomic<bool>* enabled_ = nullptr;  // Registry kill switch; may be null.
};

// A settable / addable double.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) {
    if (enabled_ != nullptr && !enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    value_.store(value, std::memory_order_relaxed);
  }

  void Add(double delta) {
    if (enabled_ != nullptr && !enabled_->load(std::memory_order_relaxed)) {
      return;
    }
    double prev = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(prev, prev + delta, std::memory_order_relaxed)) {
    }
  }

  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  friend class MetricsRegistry;
  std::atomic<double> value_{0.0};
  const std::atomic<bool>* enabled_ = nullptr;
};

// Log-linear bucket layout shared by Histogram and its snapshot. Values are
// recorded in integer nanoseconds (for dimensionless series such as drift
// ratios the "nanosecond" is just a fixed-point scale; percentiles convert
// back, so callers never see the encoding).
//
// Buckets 0..3 hold exact values 0..3 ns; every later power of two is split
// into 4 sub-buckets, so the relative bucket width is at most 1/4.
inline constexpr size_t kHistogramSubBuckets = 4;  // Per power of two.
inline constexpr size_t kHistogramBuckets = 252;

size_t BucketIndexForNanos(uint64_t nanos);
uint64_t BucketLowerBoundNanos(size_t index);
uint64_t BucketUpperBoundNanos(size_t index);  // Inclusive upper bound.

// A point-in-time copy of a histogram, safe to analyze without locks.
struct HistogramSnapshot {
  uint64_t count = 0;
  double sum_seconds = 0.0;
  double max_seconds = 0.0;
  std::array<uint64_t, kHistogramBuckets> buckets{};

  // Rank-interpolated percentile (p in [0, 1]) in seconds. The answer is
  // exact to within the bucket's ≤25% relative width; p = 1 returns the
  // tracked true maximum. Returns 0 for an empty histogram.
  double Percentile(double p) const;

  double Mean() const { return count == 0 ? 0.0 : sum_seconds / static_cast<double>(count); }
};

// Concurrent log-bucketed histogram. Observe() is three relaxed atomic RMWs
// (bucket, sum, CAS-max); all read methods are racy-but-consistent snapshots.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double seconds);

  HistogramSnapshot Snapshot() const;
  uint64_t Count() const;

 private:
  friend class MetricsRegistry;
  std::array<std::atomic<uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<uint64_t> sum_nanos_{0};
  std::atomic<uint64_t> max_nanos_{0};
  const std::atomic<bool>* enabled_ = nullptr;
};

// Named, labeled metric families. Thread-safe; returned references remain
// valid for the registry's lifetime (series are never removed).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates the series; `help` is attached to the family on first
  // use. Throws std::logic_error if `name` is already registered as a
  // different metric type.
  Counter& GetCounter(const std::string& name, const Labels& labels = {},
                      const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  Histogram& GetHistogram(const std::string& name, const Labels& labels = {},
                          const std::string& help = "");

  // Kill switch for overhead measurement: while disabled, every metric
  // attached to this registry drops writes (reads still work).
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Prometheus text exposition format (version 0.0.4). Counters and gauges
  // render one line per series; histograms render as summaries:
  // quantile-labeled series plus _count, _sum, and an untyped _max.
  std::string RenderPrometheus() const;

  // Visits every histogram series as (name, labels, snapshot) — the hook the
  // chaos/bench summaries use to print percentile tables.
  void VisitHistograms(
      const std::function<void(const std::string&, const Labels&, const HistogramSnapshot&)>&
          visit) const;

 private:
  enum class MetricType : uint8_t { kCounter, kGauge, kHistogram };

  struct Series {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  struct Family {
    MetricType type = MetricType::kCounter;
    std::string help;
    std::map<Labels, Series> series;
  };

  Series& GetSeries(const std::string& name, const Labels& labels, const std::string& help,
                    MetricType type);

  std::atomic<bool> enabled_{true};
  // kMetricsRegistry ranks near the top: series are resolved (GetCounter /
  // GetHistogram) while callers hold repository or placement locks, and a
  // registry holder never calls back into lower-ranked subsystems.
  mutable SharedMutex mutex_{LockRank::kMetricsRegistry, "metrics.registry"};
  std::map<std::string, Family> families_ GUARDED_BY(mutex_);
};

}  // namespace telemetry
}  // namespace optimus

#endif  // OPTIMUS_SRC_TELEMETRY_METRICS_H_
