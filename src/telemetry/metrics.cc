#include "src/telemetry/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace optimus {
namespace telemetry {

namespace internal {

size_t ThreadShardIndex() {
  static std::atomic<size_t> next{0};
  thread_local const size_t index = next.fetch_add(1, std::memory_order_relaxed);
  return index;
}

}  // namespace internal

namespace {

// Nanosecond cap: ~9.2e9 seconds. Keeps the bucket math inside 63 bits and
// makes the sum accumulator overflow-proof for any realistic run.
constexpr uint64_t kMaxNanos = uint64_t{1} << 63;

uint64_t SecondsToNanos(double seconds) {
  if (!(seconds > 0.0)) {  // Negative and NaN clamp to 0.
    return 0;
  }
  const double nanos = seconds * 1e9;
  if (nanos >= static_cast<double>(kMaxNanos)) {
    return kMaxNanos - 1;
  }
  return static_cast<uint64_t>(nanos);
}

double NanosToSeconds(uint64_t nanos) { return static_cast<double>(nanos) * 1e-9; }

}  // namespace

size_t BucketIndexForNanos(uint64_t nanos) {
  if (nanos < kHistogramSubBuckets) {
    return static_cast<size_t>(nanos);
  }
  if (nanos >= kMaxNanos) {
    nanos = kMaxNanos - 1;
  }
  // Octave = position of the leading bit (>= 2 here); the next two bits pick
  // the sub-bucket, so each power of two splits into 4 equal ranges.
  const int octave = static_cast<int>(std::bit_width(nanos)) - 1;
  const size_t sub = static_cast<size_t>(nanos >> (octave - 2)) & (kHistogramSubBuckets - 1);
  const size_t index = static_cast<size_t>(octave - 1) * kHistogramSubBuckets + sub;
  return std::min(index, kHistogramBuckets - 1);
}

uint64_t BucketLowerBoundNanos(size_t index) {
  if (index < kHistogramSubBuckets) {
    return index;
  }
  const size_t octave = index / kHistogramSubBuckets + 1;
  const size_t sub = index % kHistogramSubBuckets;
  return (uint64_t{kHistogramSubBuckets} + sub) << (octave - 2);
}

uint64_t BucketUpperBoundNanos(size_t index) {
  if (index < kHistogramSubBuckets) {
    return index;
  }
  const size_t octave = index / kHistogramSubBuckets + 1;
  return BucketLowerBoundNanos(index) + (uint64_t{1} << (octave - 2)) - 1;
}

void Histogram::Observe(double seconds) {
  if (enabled_ != nullptr && !enabled_->load(std::memory_order_relaxed)) {
    return;
  }
  const uint64_t nanos = SecondsToNanos(seconds);
  buckets_[BucketIndexForNanos(nanos)].fetch_add(1, std::memory_order_relaxed);
  sum_nanos_.fetch_add(nanos, std::memory_order_relaxed);
  uint64_t prev_max = max_nanos_.load(std::memory_order_relaxed);
  while (prev_max < nanos &&
         !max_nanos_.compare_exchange_weak(prev_max, nanos, std::memory_order_relaxed)) {
  }
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot snapshot;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    snapshot.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snapshot.count += snapshot.buckets[i];
  }
  snapshot.sum_seconds = NanosToSeconds(sum_nanos_.load(std::memory_order_relaxed));
  snapshot.max_seconds = NanosToSeconds(max_nanos_.load(std::memory_order_relaxed));
  return snapshot;
}

uint64_t Histogram::Count() const {
  uint64_t count = 0;
  for (const std::atomic<uint64_t>& bucket : buckets_) {
    count += bucket.load(std::memory_order_relaxed);
  }
  return count;
}

double HistogramSnapshot::Percentile(double p) const {
  if (count == 0) {
    return 0.0;
  }
  p = std::clamp(p, 0.0, 1.0);
  if (p >= 1.0) {
    return max_seconds;
  }
  // 1-based rank of the requested order statistic.
  const uint64_t rank =
      std::max<uint64_t>(1, static_cast<uint64_t>(std::ceil(p * static_cast<double>(count))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] == 0) {
      continue;
    }
    if (cumulative + buckets[i] >= rank) {
      // Linear interpolation inside the bucket by rank position.
      const double lower = NanosToSeconds(BucketLowerBoundNanos(i));
      const double upper = NanosToSeconds(BucketUpperBoundNanos(i) + 1);
      const double within =
          static_cast<double>(rank - cumulative) / static_cast<double>(buckets[i]);
      return std::min(lower + (upper - lower) * within, max_seconds);
    }
    cumulative += buckets[i];
  }
  return max_seconds;
}

MetricsRegistry::Series& MetricsRegistry::GetSeries(const std::string& name, const Labels& labels,
                                                    const std::string& help, MetricType type) {
  {
    ReaderLock lock(mutex_);
    auto family_it = families_.find(name);
    if (family_it != families_.end()) {
      if (family_it->second.type != type) {
        throw std::logic_error("MetricsRegistry: '" + name +
                               "' already registered as a different metric type");
      }
      auto series_it = family_it->second.series.find(labels);
      if (series_it != family_it->second.series.end()) {
        return series_it->second;
      }
    }
  }
  WriterLock lock(mutex_);
  Family& family = families_[name];
  if (family.series.empty()) {
    family.type = type;
    family.help = help;
  } else if (family.type != type) {
    throw std::logic_error("MetricsRegistry: '" + name +
                           "' already registered as a different metric type");
  }
  if (family.help.empty() && !help.empty()) {
    family.help = help;
  }
  Series& series = family.series[labels];
  switch (type) {
    case MetricType::kCounter:
      if (series.counter == nullptr) {
        series.counter = std::make_unique<Counter>();
        series.counter->enabled_ = &enabled_;
      }
      break;
    case MetricType::kGauge:
      if (series.gauge == nullptr) {
        series.gauge = std::make_unique<Gauge>();
        series.gauge->enabled_ = &enabled_;
      }
      break;
    case MetricType::kHistogram:
      if (series.histogram == nullptr) {
        series.histogram = std::make_unique<Histogram>();
        series.histogram->enabled_ = &enabled_;
      }
      break;
  }
  return series;
}

Counter& MetricsRegistry::GetCounter(const std::string& name, const Labels& labels,
                                     const std::string& help) {
  return *GetSeries(name, labels, help, MetricType::kCounter).counter;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name, const Labels& labels,
                                 const std::string& help) {
  return *GetSeries(name, labels, help, MetricType::kGauge).gauge;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name, const Labels& labels,
                                         const std::string& help) {
  return *GetSeries(name, labels, help, MetricType::kHistogram).histogram;
}

namespace {

// Prometheus label values escape backslash, double quote, and newline.
std::string EscapeLabelValue(const std::string& value) {
  std::string escaped;
  escaped.reserve(value.size());
  for (const char c : value) {
    switch (c) {
      case '\\':
        escaped += "\\\\";
        break;
      case '"':
        escaped += "\\\"";
        break;
      case '\n':
        escaped += "\\n";
        break;
      default:
        escaped += c;
    }
  }
  return escaped;
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) {
    return "";
  }
  std::string rendered = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) {
      rendered += ",";
    }
    rendered += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) + "\"";
  }
  rendered += "}";
  return rendered;
}

// Labels plus one extra pair — used for the summary quantile series.
std::string RenderLabelsWith(const Labels& labels, const std::string& key,
                             const std::string& value) {
  Labels extended = labels;
  extended.emplace_back(key, value);
  return RenderLabels(extended);
}

std::string FormatValue(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

std::string MetricsRegistry::RenderPrometheus() const {
  std::ostringstream out;
  ReaderLock lock(mutex_);
  for (const auto& [name, family] : families_) {
    if (!family.help.empty()) {
      out << "# HELP " << name << " " << family.help << "\n";
    }
    switch (family.type) {
      case MetricType::kCounter:
        out << "# TYPE " << name << " counter\n";
        for (const auto& [labels, series] : family.series) {
          out << name << RenderLabels(labels) << " " << series.counter->Value() << "\n";
        }
        break;
      case MetricType::kGauge:
        out << "# TYPE " << name << " gauge\n";
        for (const auto& [labels, series] : family.series) {
          out << name << RenderLabels(labels) << " " << FormatValue(series.gauge->Value())
              << "\n";
        }
        break;
      case MetricType::kHistogram:
        out << "# TYPE " << name << " summary\n";
        for (const auto& [labels, series] : family.series) {
          const HistogramSnapshot snapshot = series.histogram->Snapshot();
          for (const double quantile : {0.5, 0.95, 0.99}) {
            out << name << RenderLabelsWith(labels, "quantile", FormatValue(quantile)) << " "
                << FormatValue(snapshot.Percentile(quantile)) << "\n";
          }
          out << name << "_sum" << RenderLabels(labels) << " "
              << FormatValue(snapshot.sum_seconds) << "\n";
          out << name << "_count" << RenderLabels(labels) << " " << snapshot.count << "\n";
          out << name << "_max" << RenderLabels(labels) << " "
              << FormatValue(snapshot.max_seconds) << "\n";
        }
        break;
    }
  }
  return out.str();
}

void MetricsRegistry::VisitHistograms(
    const std::function<void(const std::string&, const Labels&, const HistogramSnapshot&)>& visit)
    const {
  ReaderLock lock(mutex_);
  for (const auto& [name, family] : families_) {
    if (family.type != MetricType::kHistogram) {
      continue;
    }
    for (const auto& [labels, series] : family.series) {
      visit(name, labels, series.histogram->Snapshot());
    }
  }
}

}  // namespace telemetry
}  // namespace optimus
