// Request tracing (DESIGN.md §12): where did a slow invoke spend its time?
//
// A TraceContext is created at the gateway (sampled, 1/64 by default) and
// propagated by pointer through Platform::Invoke → PlanCache → Transformer /
// Loader → Executor. Each instrumented phase opens a ScopedSpan against the
// context; spans record wall-clock start/duration plus small numeric args —
// notably the cost model's *predicted* cost next to the *actual* measured
// cost for every executed meta-op and scratch load, which is what makes the
// §4.4 safeguard's inputs auditable.
//
// A null TraceContext* everywhere means "not sampled": ScopedSpan degenerates
// to two pointer checks, so the unsampled hot path stays effectively free.
//
// Completed traces are pushed into the TraceCollector's bounded lock-free
// ring (atomic pointer exchange per slot; the oldest trace is dropped on
// wraparound) and drained by the gateway's /trace endpoint or the
// optimus_trace CLI as Chrome trace_event JSON (chrome://tracing, Perfetto).
//
// Span accounting (spans opened / closed / traces started / completed /
// dropped) lives on the metrics registry, so fault-injected runs can assert
// the books balance: RAII spans close on exception unwind, and the chaos
// harness checks spans_closed == spans_opened after every pass.

#ifndef OPTIMUS_SRC_TELEMETRY_TRACE_H_
#define OPTIMUS_SRC_TELEMETRY_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sync.h"
#include "src/telemetry/metrics.h"

namespace optimus {
namespace telemetry {

// Monotonic wall-clock nanoseconds since process start (steady_clock based;
// never goes backwards, unaffected by the platform's virtual clock).
uint64_t MonotonicNanos();

// One completed phase of a traced request.
struct TraceSpan {
  std::string name;              // e.g. "invoke", "replace", "scratch_load".
  std::string category;          // Phase taxonomy: gateway|queue|plan|transform|load|inference.
  uint64_t start_ns = 0;         // MonotonicNanos() at open.
  uint64_t duration_ns = 0;      // Wall nanoseconds the phase took.
  std::vector<std::pair<std::string, double>> args;  // e.g. {"predicted_s", 0.12}.
};

// Per-request span recorder. NOT thread-safe: a context belongs to the one
// thread serving its request (the invoke path is synchronous).
class TraceContext {
 public:
  TraceContext(uint64_t id, std::string root) : id_(id), root_(std::move(root)) {}

  uint64_t id() const { return id_; }
  const std::string& root() const { return root_; }
  uint64_t begin_ns() const { return begin_ns_; }

  void Record(TraceSpan span) { spans_.push_back(std::move(span)); }
  const std::vector<TraceSpan>& spans() const { return spans_; }

 private:
  friend class TraceCollector;
  friend class ScopedSpan;
  uint64_t id_ = 0;
  std::string root_;  // The traced request's function (or route) name.
  uint64_t begin_ns_ = MonotonicNanos();
  std::vector<TraceSpan> spans_;
  Counter* spans_opened_ = nullptr;  // Bound by the collector that started us.
  Counter* spans_closed_ = nullptr;
};

// RAII span: opens on construction when `trace` is non-null, records itself
// (and counts as closed) on destruction — including exception unwind, which
// is what keeps span accounting reconciled under fault injection.
class ScopedSpan {
 public:
  ScopedSpan(TraceContext* trace, const char* name, const char* category) : trace_(trace) {
    if (trace_ == nullptr) {
      return;
    }
    span_.name = name;
    span_.category = category;
    span_.start_ns = MonotonicNanos();
    if (trace_->spans_opened_ != nullptr) {
      trace_->spans_opened_->Inc();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void Arg(const char* key, double value) {
    if (trace_ != nullptr) {
      span_.args.emplace_back(key, value);
    }
  }

  ~ScopedSpan() {
    if (trace_ == nullptr) {
      return;
    }
    span_.duration_ns = MonotonicNanos() - span_.start_ns;
    if (trace_->spans_closed_ != nullptr) {
      trace_->spans_closed_->Inc();
    }
    trace_->Record(std::move(span_));
  }

 private:
  TraceContext* trace_;
  TraceSpan span_;
};

struct TraceCollectorOptions {
  size_t capacity = 256;        // Completed traces retained (ring slots).
  uint64_t sample_period = 64;  // ~1/period of requests traced; 0 disables, 1 traces all.
  uint64_t seed = 0x7ace;       // Sampler RNG seed (deterministic decisions).
};

// Owns the sampler, the completed-trace ring, and the span accounting
// counters (registered on `metrics`). Thread-safe.
class TraceCollector {
 public:
  explicit TraceCollector(MetricsRegistry* metrics,
                          TraceCollectorOptions options = TraceCollectorOptions());
  ~TraceCollector();

  TraceCollector(const TraceCollector&) = delete;
  TraceCollector& operator=(const TraceCollector&) = delete;

  // Seeded sampling decision: starts a trace for ~1/sample_period of calls
  // (deterministic sequence for a fixed seed), else returns nullptr.
  std::unique_ptr<TraceContext> MaybeStartTrace(const std::string& root);

  // Unconditionally starts a trace (CLI / tests).
  std::unique_ptr<TraceContext> StartTrace(const std::string& root);

  // Publishes a finished trace into the ring, dropping the oldest resident
  // trace if the slot was occupied. Null traces are ignored.
  void Finish(std::unique_ptr<TraceContext> trace);

  // Removes and returns every resident completed trace, oldest first.
  std::vector<std::unique_ptr<TraceContext>> Drain();

  uint64_t sample_period() const { return sample_period_.load(std::memory_order_relaxed); }
  void set_sample_period(uint64_t period) {
    sample_period_.store(period, std::memory_order_relaxed);
  }

  // Accounting (also exported via the registry as optimus_trace_*).
  uint64_t SpansOpened() const { return spans_opened_.Value(); }
  uint64_t SpansClosed() const { return spans_closed_.Value(); }
  uint64_t TracesStarted() const { return traces_started_.Value(); }
  uint64_t TracesCompleted() const { return traces_completed_.Value(); }
  uint64_t TracesDropped() const { return traces_dropped_.Value(); }

 private:
  Counter& spans_opened_;
  Counter& spans_closed_;
  Counter& traces_started_;
  Counter& traces_completed_;
  Counter& traces_dropped_;
  std::vector<std::atomic<TraceContext*>> ring_;
  std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<uint64_t> sample_period_;
  // Leaf rank: held for exactly one RNG draw per sampling decision.
  Mutex sampler_mutex_{LockRank::kTraceSampler, "trace.sampler"};
  Rng sampler_rng_ GUARDED_BY(sampler_mutex_);
};

// Serializes traces as Chrome trace_event JSON ("X" complete events; ts/dur
// in microseconds; one tid per trace so each request renders as its own
// track). Loadable in chrome://tracing and Perfetto.
std::string ExportChromeTrace(const std::vector<std::unique_ptr<TraceContext>>& traces);

}  // namespace telemetry
}  // namespace optimus

#endif  // OPTIMUS_SRC_TELEMETRY_TRACE_H_
