#include "src/telemetry/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>

namespace optimus {
namespace telemetry {

uint64_t MonotonicNanos() {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - epoch)
                                   .count());
}

TraceCollector::TraceCollector(MetricsRegistry* metrics, TraceCollectorOptions options)
    : spans_opened_(metrics->GetCounter("optimus_trace_spans_opened_total", {},
                                        "Spans opened across all traced requests")),
      spans_closed_(metrics->GetCounter("optimus_trace_spans_closed_total", {},
                                        "Spans closed (RAII; equals opened when reconciled)")),
      traces_started_(
          metrics->GetCounter("optimus_traces_started_total", {}, "Sampled-in trace contexts")),
      traces_completed_(metrics->GetCounter("optimus_traces_completed_total", {},
                                            "Traces finished into the ring")),
      traces_dropped_(metrics->GetCounter("optimus_traces_dropped_total", {},
                                          "Completed traces evicted by ring wraparound")),
      ring_(options.capacity == 0 ? 1 : options.capacity),
      sample_period_(options.sample_period),
      sampler_rng_(options.seed) {}

TraceCollector::~TraceCollector() {
  for (std::atomic<TraceContext*>& slot : ring_) {
    delete slot.exchange(nullptr, std::memory_order_acq_rel);
  }
}

std::unique_ptr<TraceContext> TraceCollector::MaybeStartTrace(const std::string& root) {
  const uint64_t period = sample_period_.load(std::memory_order_relaxed);
  if (period == 0) {
    return nullptr;
  }
  bool sampled;
  {
    // One RNG draw per decision keeps the sequence deterministic for a fixed
    // seed regardless of the period in force at each call.
    MutexLock lock(sampler_mutex_);
    sampled = sampler_rng_.NextU64() % period == 0;
  }
  if (!sampled) {
    return nullptr;
  }
  return StartTrace(root);
}

std::unique_ptr<TraceContext> TraceCollector::StartTrace(const std::string& root) {
  auto trace = std::make_unique<TraceContext>(next_id_.fetch_add(1, std::memory_order_relaxed),
                                              root);
  trace->spans_opened_ = &spans_opened_;
  trace->spans_closed_ = &spans_closed_;
  traces_started_.Inc();
  return trace;
}

void TraceCollector::Finish(std::unique_ptr<TraceContext> trace) {
  if (trace == nullptr) {
    return;
  }
  traces_completed_.Inc();
  const size_t slot = static_cast<size_t>(cursor_.fetch_add(1, std::memory_order_relaxed)) %
                      ring_.size();
  TraceContext* evicted = ring_[slot].exchange(trace.release(), std::memory_order_acq_rel);
  if (evicted != nullptr) {
    traces_dropped_.Inc();
    delete evicted;
  }
}

std::vector<std::unique_ptr<TraceContext>> TraceCollector::Drain() {
  std::vector<std::unique_ptr<TraceContext>> traces;
  for (std::atomic<TraceContext*>& slot : ring_) {
    TraceContext* trace = slot.exchange(nullptr, std::memory_order_acq_rel);
    if (trace != nullptr) {
      traces.emplace_back(trace);
    }
  }
  std::sort(traces.begin(), traces.end(),
            [](const std::unique_ptr<TraceContext>& a, const std::unique_ptr<TraceContext>& b) {
              return a->begin_ns() < b->begin_ns();
            });
  return traces;
}

namespace {

std::string JsonEscape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

std::string FormatMicros(uint64_t nanos) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.3f", static_cast<double>(nanos) / 1e3);
  return buffer;
}

std::string FormatDouble(double value) {
  char buffer[48];
  std::snprintf(buffer, sizeof(buffer), "%.9g", value);
  return buffer;
}

}  // namespace

std::string ExportChromeTrace(const std::vector<std::unique_ptr<TraceContext>>& traces) {
  std::ostringstream out;
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const std::unique_ptr<TraceContext>& trace : traces) {
    if (trace == nullptr) {
      continue;
    }
    // A metadata event names the track after the traced request.
    if (!first) {
      out << ",";
    }
    first = false;
    out << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << trace->id()
        << ",\"args\":{\"name\":\"" << JsonEscape(trace->root()) << " #" << trace->id()
        << "\"}}";
    for (const TraceSpan& span : trace->spans()) {
      out << ",{\"name\":\"" << JsonEscape(span.name) << "\",\"cat\":\""
          << JsonEscape(span.category) << "\",\"ph\":\"X\",\"ts\":" << FormatMicros(span.start_ns)
          << ",\"dur\":" << FormatMicros(span.duration_ns) << ",\"pid\":1,\"tid\":" << trace->id();
      if (!span.args.empty()) {
        out << ",\"args\":{";
        for (size_t i = 0; i < span.args.size(); ++i) {
          if (i > 0) {
            out << ",";
          }
          out << "\"" << JsonEscape(span.args[i].first)
              << "\":" << FormatDouble(span.args[i].second);
        }
        out << "}";
      }
      out << "}";
    }
  }
  out << "]}\n";
  return out.str();
}

}  // namespace telemetry
}  // namespace optimus
