#include "src/graph/serialization.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/graph/invariants.h"

namespace optimus {

namespace {

constexpr char kMagic[4] = {'O', 'P', 'T', 'M'};
constexpr uint32_t kVersion = 1;

class Writer {
 public:
  explicit Writer(ModelFile* out) : out_(out) {}

  void Raw(const void* data, size_t size) {
    const size_t old_size = out_->size();
    out_->resize(old_size + size);
    std::memcpy(out_->data() + old_size, data, size);
  }

  template <typename T>
  void Scalar(T value) {
    Raw(&value, sizeof(T));
  }

  void String(const std::string& value) {
    Scalar<uint32_t>(static_cast<uint32_t>(value.size()));
    Raw(value.data(), value.size());
  }

 private:
  ModelFile* out_;
};

class Reader {
 public:
  explicit Reader(const ModelFile& file) : file_(file) {}

  void Raw(void* data, size_t size) {
    if (pos_ + size > file_.size()) {
      throw std::runtime_error("DeserializeModel: truncated model file");
    }
    std::memcpy(data, file_.data() + pos_, size);
    pos_ += size;
  }

  template <typename T>
  T Scalar() {
    T value;
    Raw(&value, sizeof(T));
    return value;
  }

  std::string String() {
    const uint32_t size = Scalar<uint32_t>();
    std::string value(size, '\0');
    Raw(value.data(), size);
    return value;
  }

  bool AtEnd() const { return pos_ == file_.size(); }

  size_t Remaining() const { return file_.size() - pos_; }

 private:
  const ModelFile& file_;
  size_t pos_ = 0;
};

// Per-element lower bounds on the encoded size, used to reject hostile counts
// before any allocation happens: a count field claiming more elements than the
// remaining bytes could possibly hold is malformed, not merely truncated.
constexpr size_t kMinOpBytes = 4 + 1 + 7 * 8 + 1 + 4;  // id, kind, attrs, weight_count.
constexpr size_t kMinWeightBytes = 1;                  // rank byte of an empty tensor.
constexpr size_t kMinEdgeBytes = 8;                    // two i32 endpoints.
constexpr int kMaxWeightRank = 8;

void CheckCount(uint64_t count, size_t min_bytes_each, size_t remaining, const char* what) {
  if (count * min_bytes_each > remaining) {
    throw std::runtime_error(std::string("DeserializeModel: ") + what + " count " +
                             std::to_string(count) + " exceeds the remaining " +
                             std::to_string(remaining) + " bytes");
  }
}

void WriteAttrs(Writer* writer, const OpAttributes& attrs) {
  writer->Scalar<int64_t>(attrs.kernel_h);
  writer->Scalar<int64_t>(attrs.kernel_w);
  writer->Scalar<int64_t>(attrs.stride);
  writer->Scalar<int64_t>(attrs.in_channels);
  writer->Scalar<int64_t>(attrs.out_channels);
  writer->Scalar<int64_t>(attrs.vocab_size);
  writer->Scalar<int64_t>(attrs.heads);
  writer->Scalar<uint8_t>(static_cast<uint8_t>(attrs.activation));
}

OpAttributes ReadAttrs(Reader* reader) {
  OpAttributes attrs;
  attrs.kernel_h = reader->Scalar<int64_t>();
  attrs.kernel_w = reader->Scalar<int64_t>();
  attrs.stride = reader->Scalar<int64_t>();
  attrs.in_channels = reader->Scalar<int64_t>();
  attrs.out_channels = reader->Scalar<int64_t>();
  attrs.vocab_size = reader->Scalar<int64_t>();
  attrs.heads = reader->Scalar<int64_t>();
  const uint8_t activation = reader->Scalar<uint8_t>();
  if (activation > static_cast<uint8_t>(ActivationType::kTanh)) {
    throw std::runtime_error("DeserializeModel: unknown activation byte " +
                             std::to_string(activation));
  }
  attrs.activation = static_cast<ActivationType>(activation);
  return attrs;
}

}  // namespace

ModelFile SerializeModel(const Model& model) {
  ModelFile file;
  Writer writer(&file);
  writer.Raw(kMagic, sizeof(kMagic));
  writer.Scalar<uint32_t>(kVersion);
  writer.String(model.name());
  writer.String(model.family());
  writer.Scalar<uint32_t>(static_cast<uint32_t>(model.NumOps()));
  for (const auto& [id, op] : model.ops()) {
    writer.Scalar<int32_t>(id);
    writer.Scalar<uint8_t>(static_cast<uint8_t>(op.kind));
    WriteAttrs(&writer, op.attrs);
    writer.Scalar<uint32_t>(static_cast<uint32_t>(op.weights.size()));
    for (const Tensor& weight : op.weights) {
      writer.Scalar<uint8_t>(static_cast<uint8_t>(weight.shape().Rank()));
      for (int64_t dim : weight.shape().dims()) {
        writer.Scalar<int64_t>(dim);
      }
      writer.Raw(weight.data(), static_cast<size_t>(weight.SizeBytes()));
    }
  }
  writer.Scalar<uint32_t>(static_cast<uint32_t>(model.NumEdges()));
  for (const Edge& edge : model.edges()) {
    writer.Scalar<int32_t>(edge.first);
    writer.Scalar<int32_t>(edge.second);
  }
  return file;
}

Model DeserializeModel(const ModelFile& file) {
  Reader reader(file);
  char magic[4];
  reader.Raw(magic, sizeof(magic));
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw std::runtime_error("DeserializeModel: bad magic");
  }
  const uint32_t version = reader.Scalar<uint32_t>();
  if (version != kVersion) {
    throw std::runtime_error("DeserializeModel: unsupported version " + std::to_string(version));
  }
  std::string name = reader.String();
  std::string family = reader.String();
  Model model(std::move(name), std::move(family));
  const uint32_t op_count = reader.Scalar<uint32_t>();
  CheckCount(op_count, kMinOpBytes, reader.Remaining(), "op");
  for (uint32_t i = 0; i < op_count; ++i) {
    Operation op;
    op.id = reader.Scalar<int32_t>();
    if (op.id < 0) {
      throw std::runtime_error("DeserializeModel: negative op id " + std::to_string(op.id));
    }
    if (model.HasOp(op.id)) {
      throw std::runtime_error("DeserializeModel: duplicate op id " + std::to_string(op.id));
    }
    const uint8_t kind = reader.Scalar<uint8_t>();
    if (kind >= kNumOpKinds) {
      throw std::runtime_error("DeserializeModel: unknown op kind byte " + std::to_string(kind));
    }
    op.kind = static_cast<OpKind>(kind);
    op.attrs = ReadAttrs(&reader);
    const uint32_t weight_count = reader.Scalar<uint32_t>();
    CheckCount(weight_count, kMinWeightBytes, reader.Remaining(), "weight");
    for (uint32_t w = 0; w < weight_count; ++w) {
      const uint8_t rank = reader.Scalar<uint8_t>();
      if (rank > kMaxWeightRank) {
        throw std::runtime_error("DeserializeModel: weight rank " + std::to_string(rank) +
                                 " exceeds the limit of " + std::to_string(kMaxWeightRank));
      }
      std::vector<int64_t> dims(rank);
      for (auto& dim : dims) {
        dim = reader.Scalar<int64_t>();
        if (dim < 0) {
          throw std::runtime_error("DeserializeModel: negative weight dimension " +
                                   std::to_string(dim));
        }
      }
      Shape shape{std::move(dims)};
      // Reject before allocating: the payload must actually fit in the file.
      const uint64_t elements = static_cast<uint64_t>(shape.NumElements());
      if (elements > reader.Remaining() / sizeof(float)) {
        throw std::runtime_error("DeserializeModel: weight payload of " +
                                 std::to_string(elements) + " elements exceeds the remaining " +
                                 std::to_string(reader.Remaining()) + " bytes");
      }
      Tensor tensor(shape);
      reader.Raw(tensor.data(), static_cast<size_t>(tensor.SizeBytes()));
      op.weights.push_back(std::move(tensor));
    }
    model.AddOpWithId(std::move(op));
  }
  const uint32_t edge_count = reader.Scalar<uint32_t>();
  CheckCount(edge_count, kMinEdgeBytes, reader.Remaining(), "edge");
  for (uint32_t i = 0; i < edge_count; ++i) {
    const int32_t from = reader.Scalar<int32_t>();
    const int32_t to = reader.Scalar<int32_t>();
    if (!model.HasOp(from) || !model.HasOp(to)) {
      throw std::runtime_error("DeserializeModel: edge " + std::to_string(from) + "->" +
                               std::to_string(to) + " references an out-of-range op");
    }
    model.AddEdge(from, to);
  }
  if (!reader.AtEnd()) {
    throw std::runtime_error("DeserializeModel: trailing bytes");
  }
  // Final gate: the parsed model must satisfy every graph invariant (acyclic,
  // weight shapes consistent with the declared attributes, ...).
  const GraphCheckResult check = CheckGraphInvariants(model);
  if (!check.ok()) {
    throw std::runtime_error("DeserializeModel: invariant violation\n" + check.Summary());
  }
  return model;
}

void WriteModelFile(const ModelFile& file, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("WriteModelFile: cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(file.data()), static_cast<std::streamsize>(file.size()));
}

ModelFile ReadModelFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    throw std::runtime_error("ReadModelFile: cannot open " + path);
  }
  const std::streamsize size = in.tellg();
  in.seekg(0);
  ModelFile file(static_cast<size_t>(size));
  in.read(reinterpret_cast<char*>(file.data()), size);
  return file;
}

std::string DescribeModel(const Model& model) {
  std::ostringstream out;
  out << model.name() << " (family=" << model.family() << ", ops=" << model.NumOps()
      << ", edges=" << model.NumEdges() << ", params=" << model.ParamCount() << ")\n";
  for (const OpId id : model.TopologicalOrder()) {
    out << "  " << model.op(id).ToString() << "\n";
  }
  return out.str();
}

}  // namespace optimus
