// Structural attributes of a model operation.

#ifndef OPTIMUS_SRC_GRAPH_OP_ATTRIBUTES_H_
#define OPTIMUS_SRC_GRAPH_OP_ATTRIBUTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/op_kind.h"
#include "src/tensor/shape.h"

namespace optimus {

enum class ActivationType : uint8_t {
  kNone = 0,
  kRelu,
  kRelu6,
  kGelu,
  kSigmoid,
  kTanh,
};

// The shape-determining properties of an operation. Which fields are
// meaningful depends on the OpKind:
//   Conv2D / DepthwiseConv2D : kernel_h, kernel_w, stride, in_channels, out_channels
//   Dense                    : in_channels (input units), out_channels (output units)
//   BatchNorm / LayerNorm    : out_channels (normalized feature count)
//   MaxPool / AvgPool        : kernel_h, kernel_w, stride
//   Embedding                : vocab_size, out_channels (embedding dim)
//   Attention Q/K/V/O        : in_channels (model dim), out_channels, heads
//   Activation               : activation
// All other kinds are structural markers with no meaningful fields.
struct OpAttributes {
  int64_t kernel_h = 0;
  int64_t kernel_w = 0;
  int64_t stride = 1;
  int64_t in_channels = 0;
  int64_t out_channels = 0;
  int64_t vocab_size = 0;
  int64_t heads = 0;
  ActivationType activation = ActivationType::kNone;

  bool operator==(const OpAttributes& other) const = default;

  std::string ToString() const;
};

// Shapes of the weight tensors an operation of (kind, attrs) carries, in a
// fixed order (e.g. kernel then bias for Conv2D). Empty for weight-free kinds.
std::vector<Shape> WeightShapesFor(OpKind kind, const OpAttributes& attrs);

// Total number of weight scalars for (kind, attrs).
int64_t WeightElementsFor(OpKind kind, const OpAttributes& attrs);

// Number of weight tensors for (kind, attrs) (e.g. kernel + bias = 2).
int64_t WeightTensorCountFor(OpKind kind, const OpAttributes& attrs);

// Total weight bytes (float32) for (kind, attrs).
int64_t WeightBytesFor(OpKind kind, const OpAttributes& attrs);

}  // namespace optimus

#endif  // OPTIMUS_SRC_GRAPH_OP_ATTRIBUTES_H_
