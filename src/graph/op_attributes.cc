#include "src/graph/op_attributes.h"

#include <sstream>

namespace optimus {

std::string OpAttributes::ToString() const {
  std::ostringstream out;
  out << "{k=" << kernel_h << "x" << kernel_w << " s=" << stride << " in=" << in_channels
      << " out=" << out_channels;
  if (vocab_size > 0) {
    out << " vocab=" << vocab_size;
  }
  if (heads > 0) {
    out << " heads=" << heads;
  }
  out << "}";
  return out.str();
}

std::vector<Shape> WeightShapesFor(OpKind kind, const OpAttributes& attrs) {
  switch (kind) {
    case OpKind::kConv2D:
      return {Shape({attrs.kernel_h, attrs.kernel_w, attrs.in_channels, attrs.out_channels}),
              Shape({attrs.out_channels})};
    case OpKind::kDepthwiseConv2D:
      return {Shape({attrs.kernel_h, attrs.kernel_w, attrs.in_channels, 1}),
              Shape({attrs.in_channels})};
    case OpKind::kDense:
      return {Shape({attrs.in_channels, attrs.out_channels}), Shape({attrs.out_channels})};
    case OpKind::kBatchNorm:
      // gamma, beta, moving mean, moving variance.
      return {Shape({attrs.out_channels}), Shape({attrs.out_channels}),
              Shape({attrs.out_channels}), Shape({attrs.out_channels})};
    case OpKind::kLayerNorm:
      return {Shape({attrs.out_channels}), Shape({attrs.out_channels})};
    case OpKind::kEmbedding:
      return {Shape({attrs.vocab_size, attrs.out_channels})};
    case OpKind::kAttentionQuery:
    case OpKind::kAttentionKey:
    case OpKind::kAttentionValue:
    case OpKind::kAttentionOutput:
      return {Shape({attrs.in_channels, attrs.out_channels}), Shape({attrs.out_channels})};
    case OpKind::kLstmCell:
      // Input-to-hidden and hidden-to-hidden kernels over 4 stacked gates,
      // plus the gate bias (Keras LSTM layout).
      return {Shape({attrs.in_channels, 4 * attrs.out_channels}),
              Shape({attrs.out_channels, 4 * attrs.out_channels}),
              Shape({4 * attrs.out_channels})};
    case OpKind::kGruCell:
      return {Shape({attrs.in_channels, 3 * attrs.out_channels}),
              Shape({attrs.out_channels, 3 * attrs.out_channels}),
              Shape({3 * attrs.out_channels})};
    default:
      return {};
  }
}

int64_t WeightElementsFor(OpKind kind, const OpAttributes& attrs) {
  int64_t total = 0;
  for (const Shape& shape : WeightShapesFor(kind, attrs)) {
    total += shape.NumElements();
  }
  return total;
}

int64_t WeightTensorCountFor(OpKind kind, const OpAttributes& attrs) {
  return static_cast<int64_t>(WeightShapesFor(kind, attrs).size());
}

int64_t WeightBytesFor(OpKind kind, const OpAttributes& attrs) {
  return WeightElementsFor(kind, attrs) * static_cast<int64_t>(sizeof(float));
}

}  // namespace optimus
