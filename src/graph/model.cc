#include "src/graph/model.h"

#include <algorithm>
#include <deque>
#include <stdexcept>

#include "src/graph/invariants.h"

namespace optimus {

OpId Model::AddOp(OpKind kind, const OpAttributes& attrs) {
  Operation op;
  op.id = next_id_++;
  op.kind = kind;
  op.attrs = attrs;
  const OpId id = op.id;
  ops_.emplace(id, std::move(op));
  return id;
}

void Model::AddOpWithId(Operation op) {
  if (op.id == kInvalidOpId || ops_.count(op.id) > 0) {
    throw std::invalid_argument("AddOpWithId: invalid or duplicate op id");
  }
  next_id_ = std::max(next_id_, op.id + 1);
  ops_.emplace(op.id, std::move(op));
}

void Model::RemoveOp(OpId id) {
  ops_.erase(id);
  for (auto it = edges_.begin(); it != edges_.end();) {
    if (it->first == id || it->second == id) {
      it = edges_.erase(it);
    } else {
      ++it;
    }
  }
}

void Model::AddEdge(OpId from, OpId to) { edges_.emplace(from, to); }

void Model::RemoveEdge(OpId from, OpId to) { edges_.erase({from, to}); }

bool Model::HasEdge(OpId from, OpId to) const { return edges_.count({from, to}) > 0; }

size_t Model::NumWeightedOps() const {
  size_t count = 0;
  for (const auto& [id, op] : ops_) {
    if (OpKindHasWeights(op.kind)) {
      ++count;
    }
  }
  return count;
}

int64_t Model::ParamCount() const {
  int64_t total = 0;
  for (const auto& [id, op] : ops_) {
    total += WeightElementsFor(op.kind, op.attrs);
  }
  return total;
}

int64_t Model::WeightBytes() const { return ParamCount() * static_cast<int64_t>(sizeof(float)); }

std::vector<OpId> Model::OpIds() const {
  std::vector<OpId> ids;
  ids.reserve(ops_.size());
  for (const auto& [id, op] : ops_) {
    ids.push_back(id);
  }
  return ids;
}

std::vector<OpId> Model::TopologicalOrder() const {
  std::map<OpId, int> in_degree;
  for (const auto& [id, op] : ops_) {
    in_degree[id] = 0;
  }
  for (const Edge& edge : edges_) {
    ++in_degree[edge.second];
  }
  std::deque<OpId> frontier;
  for (const auto& [id, degree] : in_degree) {
    if (degree == 0) {
      frontier.push_back(id);
    }
  }
  std::vector<OpId> order;
  order.reserve(ops_.size());
  while (!frontier.empty()) {
    const OpId id = frontier.front();
    frontier.pop_front();
    order.push_back(id);
    for (const Edge& edge : edges_) {
      if (edge.first != id) {
        continue;
      }
      if (--in_degree[edge.second] == 0) {
        frontier.push_back(edge.second);
      }
    }
  }
  if (order.size() != ops_.size()) {
    throw std::runtime_error("TopologicalOrder: graph '" + name_ + "' contains a cycle");
  }
  return order;
}

std::vector<OpId> Model::Predecessors(OpId id) const {
  std::vector<OpId> result;
  for (const Edge& edge : edges_) {
    if (edge.second == id) {
      result.push_back(edge.first);
    }
  }
  return result;
}

std::vector<OpId> Model::Successors(OpId id) const {
  std::vector<OpId> result;
  for (const Edge& edge : edges_) {
    if (edge.first == id) {
      result.push_back(edge.second);
    }
  }
  return result;
}

void Model::Validate() const {
  const GraphCheckResult result = CheckGraphInvariants(*this);
  if (!result.ok()) {
    throw std::runtime_error("Validate: " + result.Summary());
  }
}

bool Model::StructurallyEqual(const Model& other) const {
  if (ops_.size() != other.ops_.size() || edges_ != other.edges_) {
    return false;
  }
  for (const auto& [id, op] : ops_) {
    auto it = other.ops_.find(id);
    if (it == other.ops_.end() || !op.SameStructure(it->second)) {
      return false;
    }
  }
  return true;
}

bool Model::Identical(const Model& other) const {
  if (!StructurallyEqual(other)) {
    return false;
  }
  for (const auto& [id, op] : ops_) {
    if (!op.Identical(other.ops_.at(id))) {
      return false;
    }
  }
  return true;
}

uint64_t Model::StructureFingerprint() const {
  auto mix = [](uint64_t h, uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
  };
  uint64_t hash = 0x5bf03635f09d4bc7ULL;
  for (const auto& [id, op] : ops_) {
    uint64_t op_hash = static_cast<uint64_t>(op.kind);
    op_hash = mix(op_hash, static_cast<uint64_t>(op.attrs.kernel_h));
    op_hash = mix(op_hash, static_cast<uint64_t>(op.attrs.kernel_w));
    op_hash = mix(op_hash, static_cast<uint64_t>(op.attrs.stride));
    op_hash = mix(op_hash, static_cast<uint64_t>(op.attrs.in_channels));
    op_hash = mix(op_hash, static_cast<uint64_t>(op.attrs.out_channels));
    op_hash = mix(op_hash, static_cast<uint64_t>(op.attrs.vocab_size));
    op_hash = mix(op_hash, static_cast<uint64_t>(op.attrs.heads));
    op_hash = mix(op_hash, static_cast<uint64_t>(op.attrs.activation));
    hash = mix(hash, mix(op_hash, static_cast<uint64_t>(id)));
  }
  for (const Edge& edge : edges_) {
    hash = mix(hash, (static_cast<uint64_t>(edge.first) << 32) ^
                         static_cast<uint64_t>(static_cast<uint32_t>(edge.second)));
  }
  return hash;
}

}  // namespace optimus
