// Graph invariant checking (static analysis, DESIGN.md §10).
//
// CheckGraphInvariants is the non-throwing workhorse behind Model::Validate:
// it walks a Model and collects every violated invariant instead of stopping
// at the first. The checker is deliberately dependency-free (graph layer
// only) so it is usable from deserialization, the plan cache's registration
// path, the src/analysis plan verifier, and tests alike.

#ifndef OPTIMUS_SRC_GRAPH_INVARIANTS_H_
#define OPTIMUS_SRC_GRAPH_INVARIANTS_H_

#include <string>
#include <vector>

#include "src/graph/model.h"

namespace optimus {

enum class GraphIssueKind : uint8_t {
  kEdgeMissingEndpoint = 0,  // An edge references an op id not in the model.
  kSelfEdge,                 // An op feeds itself directly.
  kCycle,                    // The data-flow graph is not acyclic.
  kOpIdMismatch,             // Map key and Operation::id disagree.
  kBadOpId,                  // An op carries kInvalidOpId or a negative id.
  kUnknownOpKind,            // Kind byte outside the OpKind enum.
  kUnknownActivation,        // Activation byte outside the ActivationType enum.
  kNegativeAttribute,        // A shape-determining attribute is negative.
  kWeightCountMismatch,      // Allocated tensor count != WeightShapesFor.
  kWeightShapeMismatch,      // An allocated tensor's shape != declared shape.
};

const char* GraphIssueKindName(GraphIssueKind kind);

// One violated invariant with a human-readable description.
struct GraphIssue {
  GraphIssueKind kind = GraphIssueKind::kCycle;
  std::string detail;
};

struct GraphCheckResult {
  std::vector<GraphIssue> issues;

  bool ok() const { return issues.empty(); }

  // "ok", or every issue on its own line ("kind: detail").
  std::string Summary() const;
};

// Checks every structural invariant of `model`: edges reference existing ops,
// no self-edges, the graph is acyclic, op ids are valid and consistent, op
// kinds / activations are in range, attributes are non-negative, and any
// allocated weights match the shapes their (kind, attrs) declare.
GraphCheckResult CheckGraphInvariants(const Model& model);

}  // namespace optimus

#endif  // OPTIMUS_SRC_GRAPH_INVARIANTS_H_
