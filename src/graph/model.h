// Model: a computational graph of operations.
//
// Following §4.4 of the paper, each model structure is a directed graph whose
// nodes are operations (CONV, dense, ...) and whose edges are data flows.
// The transformation executor mutates Model instances in place via the five
// meta-operators; Identical/StructurallyEqual provide the correctness oracle
// ("the transformed source must equal the destination").

#ifndef OPTIMUS_SRC_GRAPH_MODEL_H_
#define OPTIMUS_SRC_GRAPH_MODEL_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "src/graph/operation.h"

namespace optimus {

using Edge = std::pair<OpId, OpId>;

class Model {
 public:
  Model() = default;
  Model(std::string name, std::string family)
      : name_(std::move(name)), family_(std::move(family)) {}

  const std::string& name() const { return name_; }
  const std::string& family() const { return family_; }
  void set_name(std::string name) { name_ = std::move(name); }
  void set_family(std::string family) { family_ = std::move(family); }

  // --- Construction / mutation -------------------------------------------

  // Adds an operation with a fresh id; weights are left empty (structure
  // only) — call Operation::InitializeWeights or the loader to populate them.
  OpId AddOp(OpKind kind, const OpAttributes& attrs = {});

  // Adds an operation under a caller-chosen id (used by deserialization and
  // by the transformation executor when relabeling to destination ids).
  // Requires the id to be unused.
  void AddOpWithId(Operation op);

  // Removes the operation and every incident edge.
  void RemoveOp(OpId id);

  void AddEdge(OpId from, OpId to);
  void RemoveEdge(OpId from, OpId to);
  bool HasEdge(OpId from, OpId to) const;

  // --- Access --------------------------------------------------------------

  bool HasOp(OpId id) const { return ops_.count(id) > 0; }
  const Operation& op(OpId id) const { return ops_.at(id); }
  Operation& mutable_op(OpId id) { return ops_.at(id); }

  // Operations in ascending id order (deterministic).
  const std::map<OpId, Operation>& ops() const { return ops_; }
  const std::set<Edge>& edges() const { return edges_; }

  size_t NumOps() const { return ops_.size(); }
  size_t NumEdges() const { return edges_.size(); }
  size_t NumWeightedOps() const;

  // Sum of weight elements over all ops ("Params" in the paper's Fig. 2c).
  int64_t ParamCount() const;

  // Serialized weight footprint in bytes.
  int64_t WeightBytes() const;

  // Ids of ops in ascending order.
  std::vector<OpId> OpIds() const;

  // --- Graph queries ---------------------------------------------------------

  // Kahn topological order. Throws std::runtime_error if the graph is cyclic.
  std::vector<OpId> TopologicalOrder() const;

  std::vector<OpId> Predecessors(OpId id) const;
  std::vector<OpId> Successors(OpId id) const;

  // Checks internal consistency: edges reference existing ops, the graph is
  // acyclic, and every weighted op's tensors (if allocated) match its
  // declared attribute shapes. Throws std::runtime_error on violation.
  void Validate() const;

  // --- Comparison ------------------------------------------------------------

  // Same op ids with equal kind/attrs and the same edge set (weights ignored).
  bool StructurallyEqual(const Model& other) const;

  // StructurallyEqual plus element-wise equal weights.
  bool Identical(const Model& other) const;

  // Order-insensitive structural hash (kinds, attrs, edge shape); used by the
  // plan cache and the Tetris baseline.
  uint64_t StructureFingerprint() const;

 private:
  std::string name_;
  std::string family_;
  std::map<OpId, Operation> ops_;
  std::set<Edge> edges_;
  OpId next_id_ = 0;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_GRAPH_MODEL_H_
