// Operation kinds for the computational-graph substrate.
//
// These cover the operation vocabulary the paper's meta-operators act on: the
// CNN families (convolution, dense, pooling, normalization, activations,
// residual adds, concatenation) and the transformer building blocks described
// in §5.2 (embedding, Q/K/V/O projections, the weight-free Logit and Attend
// steps, layer normalization).

#ifndef OPTIMUS_SRC_GRAPH_OP_KIND_H_
#define OPTIMUS_SRC_GRAPH_OP_KIND_H_

#include <cstdint>
#include <string>

namespace optimus {

enum class OpKind : uint8_t {
  kInput = 0,
  kConv2D,
  kDepthwiseConv2D,
  kDense,
  kBatchNorm,
  kLayerNorm,
  kActivation,
  kMaxPool,
  kAvgPool,
  kGlobalAvgPool,
  kAdd,
  kConcat,
  kFlatten,
  kDropout,
  kEmbedding,
  kAttentionQuery,
  kAttentionKey,
  kAttentionValue,
  kAttentionOutput,
  kLogit,    // QK^T score computation; weight-free.
  kAttend,   // score-weighted value combination; weight-free.
  kSoftmax,
  kLstmCell,  // Recurrent cell with 4 gate projections (input/forget/cell/output).
  kGruCell,   // Recurrent cell with 3 gate projections (update/reset/candidate).
  kOutput,
};

// Total number of distinct kinds (for iteration in profiling sweeps).
inline constexpr int kNumOpKinds = static_cast<int>(OpKind::kOutput) + 1;

// True for kinds that carry weight tensors (CONV, dense, norms, embedding,
// attention projections). The paper's Insight in §3.2 distinguishes these:
// weighted operations load slower and dominate transformation cost.
bool OpKindHasWeights(OpKind kind);

// Short human-readable name, e.g. "Conv2D".
const char* OpKindName(OpKind kind);

// Parses the result of OpKindName; returns kOutput on unknown names.
OpKind OpKindFromName(const std::string& name);

}  // namespace optimus

#endif  // OPTIMUS_SRC_GRAPH_OP_KIND_H_
