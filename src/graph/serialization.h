// Binary model-file serialization.
//
// Stands in for the HDF5 / SavedModel files the paper's prototype stores in a
// Docker volume. The format is a simple little-endian byte stream:
//
//   magic "OPTM" | u32 version | name | family
//   u32 op_count | per op: i32 id, u8 kind, attrs, u32 weight_count,
//                  per weight: u8 rank, i64 dims..., f32 data...
//   u32 edge_count | per edge: i32 from, i32 to
//
// The loader in src/runtime deserializes these files in the same three phases
// the paper measures: file parse, structure build, weight assignment.

#ifndef OPTIMUS_SRC_GRAPH_SERIALIZATION_H_
#define OPTIMUS_SRC_GRAPH_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/model.h"

namespace optimus {

// A serialized model ("model file" bytes).
using ModelFile = std::vector<uint8_t>;

// Serializes the model, including weights. Ops without allocated weights are
// written as structure-only (weight_count = 0).
ModelFile SerializeModel(const Model& model);

// Parses a model file back into a Model. Throws std::runtime_error on a
// malformed stream.
Model DeserializeModel(const ModelFile& file);

// Writes/reads a model file to/from disk.
void WriteModelFile(const ModelFile& file, const std::string& path);
ModelFile ReadModelFile(const std::string& path);

// A structure-only textual summary (one op per line), useful for examples and
// debugging; loosely mirrors the JSON structure files in the paper's §7.
std::string DescribeModel(const Model& model);

}  // namespace optimus

#endif  // OPTIMUS_SRC_GRAPH_SERIALIZATION_H_
