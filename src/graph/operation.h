// A single operation (graph node) with its weights.

#ifndef OPTIMUS_SRC_GRAPH_OPERATION_H_
#define OPTIMUS_SRC_GRAPH_OPERATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/op_attributes.h"
#include "src/graph/op_kind.h"
#include "src/tensor/tensor.h"

namespace optimus {

using OpId = int32_t;

inline constexpr OpId kInvalidOpId = -1;

// An operation in a model's computational graph. Weight tensors (if the kind
// carries weights) are stored in the canonical order of WeightShapesFor.
struct Operation {
  OpId id = kInvalidOpId;
  OpKind kind = OpKind::kOutput;
  OpAttributes attrs;
  std::vector<Tensor> weights;

  // Allocates zero weights matching (kind, attrs).
  void AllocateWeights();

  // Allocates UNINITIALIZED weights matching (kind, attrs) from `arena` (heap
  // when null). The caller must overwrite every element before reading — this
  // is the Replace meta-operator's allocation path, where the subsequent
  // OverwriteTensor covers the whole buffer.
  void AllocateWeightsIn(TensorArena* arena);

  // Allocates weights and fills them with deterministic pseudo-random values.
  void InitializeWeights(Rng* rng);

  // Same, with storage drawn from `arena` (heap when null).
  void InitializeWeights(Rng* rng, TensorArena* arena);

  int64_t WeightElements() const;
  int64_t WeightBytes() const;

  // True if kind and attributes match (weights may differ).
  bool SameStructure(const Operation& other) const;

  // True if kind, attributes, and all weight elements match.
  bool Identical(const Operation& other) const;

  std::string ToString() const;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_GRAPH_OPERATION_H_
