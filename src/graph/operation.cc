#include "src/graph/operation.h"

#include <sstream>

namespace optimus {

void Operation::AllocateWeights() {
  weights.clear();
  for (const Shape& shape : WeightShapesFor(kind, attrs)) {
    weights.emplace_back(shape);
  }
}

void Operation::AllocateWeightsIn(TensorArena* arena) {
  weights.clear();
  for (const Shape& shape : WeightShapesFor(kind, attrs)) {
    weights.push_back(Tensor::Uninitialized(shape, arena));
  }
}

void Operation::InitializeWeights(Rng* rng) { InitializeWeights(rng, nullptr); }

void Operation::InitializeWeights(Rng* rng, TensorArena* arena) {
  AllocateWeightsIn(arena);
  for (Tensor& weight : weights) {
    weight.FillRandom(rng);
  }
}

int64_t Operation::WeightElements() const {
  int64_t total = 0;
  for (const Tensor& weight : weights) {
    total += weight.NumElements();
  }
  return total;
}

int64_t Operation::WeightBytes() const {
  return WeightElements() * static_cast<int64_t>(sizeof(float));
}

bool Operation::SameStructure(const Operation& other) const {
  return kind == other.kind && attrs == other.attrs;
}

bool Operation::Identical(const Operation& other) const {
  if (!SameStructure(other) || weights.size() != other.weights.size()) {
    return false;
  }
  for (size_t i = 0; i < weights.size(); ++i) {
    if (!weights[i].ElementsEqual(other.weights[i])) {
      return false;
    }
  }
  return true;
}

std::string Operation::ToString() const {
  std::ostringstream out;
  out << "#" << id << " " << OpKindName(kind) << " " << attrs.ToString();
  return out.str();
}

}  // namespace optimus
