#include "src/graph/op_kind.h"

namespace optimus {

bool OpKindHasWeights(OpKind kind) {
  switch (kind) {
    case OpKind::kConv2D:
    case OpKind::kDepthwiseConv2D:
    case OpKind::kDense:
    case OpKind::kBatchNorm:
    case OpKind::kLayerNorm:
    case OpKind::kEmbedding:
    case OpKind::kAttentionQuery:
    case OpKind::kAttentionKey:
    case OpKind::kAttentionValue:
    case OpKind::kAttentionOutput:
    case OpKind::kLstmCell:
    case OpKind::kGruCell:
      return true;
    default:
      return false;
  }
}

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kInput:
      return "Input";
    case OpKind::kConv2D:
      return "Conv2D";
    case OpKind::kDepthwiseConv2D:
      return "DepthwiseConv2D";
    case OpKind::kDense:
      return "Dense";
    case OpKind::kBatchNorm:
      return "BatchNorm";
    case OpKind::kLayerNorm:
      return "LayerNorm";
    case OpKind::kActivation:
      return "Activation";
    case OpKind::kMaxPool:
      return "MaxPool";
    case OpKind::kAvgPool:
      return "AvgPool";
    case OpKind::kGlobalAvgPool:
      return "GlobalAvgPool";
    case OpKind::kAdd:
      return "Add";
    case OpKind::kConcat:
      return "Concat";
    case OpKind::kFlatten:
      return "Flatten";
    case OpKind::kDropout:
      return "Dropout";
    case OpKind::kEmbedding:
      return "Embedding";
    case OpKind::kAttentionQuery:
      return "AttentionQuery";
    case OpKind::kAttentionKey:
      return "AttentionKey";
    case OpKind::kAttentionValue:
      return "AttentionValue";
    case OpKind::kAttentionOutput:
      return "AttentionOutput";
    case OpKind::kLogit:
      return "Logit";
    case OpKind::kAttend:
      return "Attend";
    case OpKind::kSoftmax:
      return "Softmax";
    case OpKind::kLstmCell:
      return "LstmCell";
    case OpKind::kGruCell:
      return "GruCell";
    case OpKind::kOutput:
      return "Output";
  }
  return "Unknown";
}

OpKind OpKindFromName(const std::string& name) {
  for (int i = 0; i < kNumOpKinds; ++i) {
    const OpKind kind = static_cast<OpKind>(i);
    if (name == OpKindName(kind)) {
      return kind;
    }
  }
  return OpKind::kOutput;
}

}  // namespace optimus
