#include "src/graph/invariants.h"

#include <deque>
#include <map>
#include <sstream>

namespace optimus {

namespace {

void AddIssue(GraphCheckResult* result, GraphIssueKind kind, std::string detail) {
  result->issues.push_back(GraphIssue{kind, std::move(detail)});
}

bool AttributesNonNegative(const OpAttributes& attrs) {
  return attrs.kernel_h >= 0 && attrs.kernel_w >= 0 && attrs.stride >= 0 &&
         attrs.in_channels >= 0 && attrs.out_channels >= 0 && attrs.vocab_size >= 0 &&
         attrs.heads >= 0;
}

// Kahn's algorithm over valid edges only; returns false if a cycle remains.
bool IsAcyclic(const Model& model) {
  std::map<OpId, int> in_degree;
  for (const auto& [id, op] : model.ops()) {
    in_degree[id] = 0;
  }
  std::multimap<OpId, OpId> out_edges;
  for (const Edge& edge : model.edges()) {
    if (in_degree.count(edge.first) == 0 || in_degree.count(edge.second) == 0) {
      continue;  // Dangling edge; reported separately.
    }
    ++in_degree[edge.second];
    out_edges.emplace(edge.first, edge.second);
  }
  std::deque<OpId> frontier;
  for (const auto& [id, degree] : in_degree) {
    if (degree == 0) {
      frontier.push_back(id);
    }
  }
  size_t visited = 0;
  while (!frontier.empty()) {
    const OpId id = frontier.front();
    frontier.pop_front();
    ++visited;
    auto [begin, end] = out_edges.equal_range(id);
    for (auto it = begin; it != end; ++it) {
      if (--in_degree[it->second] == 0) {
        frontier.push_back(it->second);
      }
    }
  }
  return visited == model.NumOps();
}

}  // namespace

const char* GraphIssueKindName(GraphIssueKind kind) {
  switch (kind) {
    case GraphIssueKind::kEdgeMissingEndpoint:
      return "EdgeMissingEndpoint";
    case GraphIssueKind::kSelfEdge:
      return "SelfEdge";
    case GraphIssueKind::kCycle:
      return "Cycle";
    case GraphIssueKind::kOpIdMismatch:
      return "OpIdMismatch";
    case GraphIssueKind::kBadOpId:
      return "InvalidOpId";
    case GraphIssueKind::kUnknownOpKind:
      return "UnknownOpKind";
    case GraphIssueKind::kUnknownActivation:
      return "UnknownActivation";
    case GraphIssueKind::kNegativeAttribute:
      return "NegativeAttribute";
    case GraphIssueKind::kWeightCountMismatch:
      return "WeightCountMismatch";
    case GraphIssueKind::kWeightShapeMismatch:
      return "WeightShapeMismatch";
  }
  return "Unknown";
}

std::string GraphCheckResult::Summary() const {
  if (ok()) {
    return "ok";
  }
  std::ostringstream out;
  for (size_t i = 0; i < issues.size(); ++i) {
    if (i > 0) {
      out << "\n";
    }
    out << GraphIssueKindName(issues[i].kind) << ": " << issues[i].detail;
  }
  return out.str();
}

GraphCheckResult CheckGraphInvariants(const Model& model) {
  GraphCheckResult result;
  const std::string& name = model.name();

  for (const Edge& edge : model.edges()) {
    if (!model.HasOp(edge.first) || !model.HasOp(edge.second)) {
      AddIssue(&result, GraphIssueKind::kEdgeMissingEndpoint,
               "edge " + std::to_string(edge.first) + "->" + std::to_string(edge.second) +
                   " references a missing op in '" + name + "'");
    }
    if (edge.first == edge.second) {
      AddIssue(&result, GraphIssueKind::kSelfEdge,
               "self-edge on op " + std::to_string(edge.first) + " in '" + name + "'");
    }
  }

  if (!IsAcyclic(model)) {
    AddIssue(&result, GraphIssueKind::kCycle, "graph '" + name + "' contains a cycle");
  }

  for (const auto& [id, op] : model.ops()) {
    if (op.id != id) {
      AddIssue(&result, GraphIssueKind::kOpIdMismatch,
               "op keyed " + std::to_string(id) + " carries id " + std::to_string(op.id) +
                   " in '" + name + "'");
    }
    if (id < 0) {
      AddIssue(&result, GraphIssueKind::kBadOpId,
               "op id " + std::to_string(id) + " is invalid in '" + name + "'");
    }
    if (static_cast<int>(op.kind) >= kNumOpKinds) {
      AddIssue(&result, GraphIssueKind::kUnknownOpKind,
               "op " + std::to_string(id) + " has kind byte " +
                   std::to_string(static_cast<int>(op.kind)) + " in '" + name + "'");
      continue;  // Attribute/weight checks are meaningless for unknown kinds.
    }
    if (static_cast<int>(op.attrs.activation) > static_cast<int>(ActivationType::kTanh)) {
      AddIssue(&result, GraphIssueKind::kUnknownActivation,
               "op " + std::to_string(id) + " has activation byte " +
                   std::to_string(static_cast<int>(op.attrs.activation)) + " in '" + name + "'");
    }
    if (!AttributesNonNegative(op.attrs)) {
      AddIssue(&result, GraphIssueKind::kNegativeAttribute,
               "op " + op.ToString() + " has a negative attribute in '" + name + "'");
    }
    if (op.weights.empty()) {
      continue;  // Structure-only op; weights not yet assigned.
    }
    const std::vector<Shape> expected = WeightShapesFor(op.kind, op.attrs);
    if (expected.size() != op.weights.size()) {
      AddIssue(&result, GraphIssueKind::kWeightCountMismatch,
               "weight count mismatch for " + op.ToString() + " (" +
                   std::to_string(op.weights.size()) + " allocated, " +
                   std::to_string(expected.size()) + " declared)");
      continue;
    }
    for (size_t i = 0; i < expected.size(); ++i) {
      if (op.weights[i].shape() != expected[i]) {
        AddIssue(&result, GraphIssueKind::kWeightShapeMismatch,
                 "weight shape mismatch for " + op.ToString() + " tensor " + std::to_string(i) +
                     " (" + op.weights[i].shape().ToString() + " vs " + expected[i].ToString() +
                     ")");
      }
    }
  }

  return result;
}

}  // namespace optimus
