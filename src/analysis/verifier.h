// Static plan & graph verification (DESIGN.md §10).
//
// Optimus's correctness rests on an invariant the hot path never checks:
// applying a planned sequence of Replace/Reshape/Reduce/Add/Edge
// meta-operators to the source model's graph must yield exactly the
// destination graph (§4.3-4.4), and the plan's claimed cost must be sound —
// an understated cost would slip past the scratch-load safeguard and break
// the worst-case-parity guarantee. VerifyPlan proves both *statically*, by
// symbolically applying the plan to a structure-only copy of the source and
// checking every intermediate graph for well-formedness, so corrupted or
// hand-mutated plans are rejected before they ever reach a warm container.
//
// Layering: this library sits above src/graph and src/runtime and below
// src/core (optimus_core links optimus_analysis), which is what lets the
// plan cache verify at insert time. Only header-defined core types
// (TransformPlan, MetaOp) are used here.

#ifndef OPTIMUS_SRC_ANALYSIS_VERIFIER_H_
#define OPTIMUS_SRC_ANALYSIS_VERIFIER_H_

#include <string>
#include <vector>

#include "src/core/meta_op.h"
#include "src/graph/invariants.h"
#include "src/runtime/cost_model.h"

namespace optimus {

enum class PlanIssueKind : uint8_t {
  kGraphInvariant = 0,  // Source, destination, or an intermediate graph is malformed.
  kMappingInvalid,      // Mapping references missing ops, reuses an op, or mismatches kinds.
  kMappingIncomplete,   // A source/destination op is covered by no mapping entry.
  kStepInvalid,         // A step references ops outside the mapping or is self-inconsistent.
  kMissingStep,         // The mapping requires a step (Reshape/Replace/Reduce/Add) that is absent.
  kEdgeInvalid,         // An Edge step adds a dangling edge, re-adds, or removes a missing one.
  kIntermediateCycle,   // An Edge addition makes an intermediate graph cyclic.
  kResultMismatch,      // The symbolic result is not graph-isomorphic to the destination.
  kCostMismatch,        // total_cost != sum of steps, or a step disagrees with the cost model.
  kCostUnderstated,     // Claimed cost below the cost model's estimate: unsound vs the safeguard.
};

const char* PlanIssueKindName(PlanIssueKind kind);

struct PlanIssue {
  PlanIssueKind kind = PlanIssueKind::kResultMismatch;
  std::string detail;
};

struct PlanVerifyResult {
  std::vector<PlanIssue> issues;

  bool ok() const { return issues.empty(); }

  // "ok", or every issue on its own line ("kind: detail").
  std::string Summary() const;

  // True if any issue has the given kind.
  bool Has(PlanIssueKind kind) const;
};

struct VerifyOptions {
  // Per-step and total cost comparisons tolerate |claimed - modeled| up to
  // max(abs_tolerance, rel_tolerance * modeled). Plans produced and verified
  // with the same cost model match exactly; the slack covers plans produced
  // by a measured cost model and verified against the analytic one.
  double cost_rel_tolerance = 0.05;
  double cost_abs_tolerance = 1e-6;
  // Skip the cost-soundness pass entirely (structure-only verification).
  bool check_costs = true;
};

// Statically verifies that `plan` transforms `source` into `dest`:
//   (a) the symbolic application yields a graph StructurallyEqual to `dest`,
//   (b) every intermediate graph is well-formed (no dangling edges, valid
//       attributes, acyclic after each edge addition),
//   (c) the claimed costs are sound with respect to `costs` — in particular
//       never understated, which is what the scratch-load safeguard relies on.
PlanVerifyResult VerifyPlan(const Model& source, const Model& dest, const TransformPlan& plan,
                            const CostModel& costs, const VerifyOptions& options = {});

// Graph-invariant check for a single model (thin wrapper over
// CheckGraphInvariants; the alias the model-load boundary and tools use).
GraphCheckResult VerifyModel(const Model& model);

// Model-free structural verification of a (possibly deserialized) plan:
// non-empty endpoint names, ids appropriate for each step kind, non-negative
// costs, total equal to the step sum, and no duplicated mapping entries.
// Used at the PlanCache::Load boundary where the models may not be resident.
PlanVerifyResult VerifyPlanShape(const TransformPlan& plan);

// Whether boundary verification (plan-cache insert / model registration)
// should run. Opt in or out with OPTIMUS_VERIFY=1/0 (also on/off/true/false);
// without the variable, verification defaults to on in debug builds (NDEBUG
// undefined) and off in release builds.
bool VerificationEnabled();

// Throws std::runtime_error("<context>: <summary>") when the result holds
// any issue; no-op otherwise.
void ThrowIfInvalid(const PlanVerifyResult& result, const std::string& context);
void ThrowIfInvalid(const GraphCheckResult& result, const std::string& context);

}  // namespace optimus

#endif  // OPTIMUS_SRC_ANALYSIS_VERIFIER_H_
