#include "src/analysis/verifier.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace optimus {

namespace {

// Local name table: optimus_core links this library, so the verifier must not
// pull symbols (MetaOpKindName) out of meta_op.cc.
const char* StepKindLabel(MetaOpKind kind) {
  switch (kind) {
    case MetaOpKind::kReplace:
      return "Replace";
    case MetaOpKind::kReshape:
      return "Reshape";
    case MetaOpKind::kReduce:
      return "Reduce";
    case MetaOpKind::kAdd:
      return "Add";
    case MetaOpKind::kEdge:
      return "Edge";
  }
  return "Unknown";
}

void AddIssue(PlanVerifyResult* result, PlanIssueKind kind, std::string detail) {
  result->issues.push_back(PlanIssue{kind, std::move(detail)});
}

std::string EdgeLabel(const Edge& edge) {
  return std::to_string(edge.first) + "->" + std::to_string(edge.second);
}

// First structural difference between two models, for actionable mismatch
// diagnostics (StructurallyEqual alone only yields a boolean).
std::string FirstStructuralDifference(const Model& got, const Model& want) {
  if (got.NumOps() != want.NumOps()) {
    return "op count " + std::to_string(got.NumOps()) + " vs " + std::to_string(want.NumOps());
  }
  for (const auto& [id, op] : want.ops()) {
    if (!got.HasOp(id)) {
      return "missing op " + std::to_string(id);
    }
    if (!got.op(id).SameStructure(op)) {
      return "op " + std::to_string(id) + " is " + got.op(id).ToString() + ", expected " +
             op.ToString();
    }
  }
  for (const Edge& edge : want.edges()) {
    if (!got.HasEdge(edge.first, edge.second)) {
      return "missing edge " + EdgeLabel(edge);
    }
  }
  for (const Edge& edge : got.edges()) {
    if (!want.HasEdge(edge.first, edge.second)) {
      return "spurious edge " + EdgeLabel(edge);
    }
  }
  return "models are structurally equal";
}

// True if `target` is reachable from `start` over the adjacency map. Used per
// edge addition: adding (u, v) creates a cycle iff u was reachable from v.
bool Reaches(const std::map<OpId, std::vector<OpId>>& adjacency, OpId start, OpId target) {
  std::vector<OpId> stack{start};
  std::set<OpId> seen;
  while (!stack.empty()) {
    const OpId id = stack.back();
    stack.pop_back();
    if (id == target) {
      return true;
    }
    if (!seen.insert(id).second) {
      continue;
    }
    auto it = adjacency.find(id);
    if (it == adjacency.end()) {
      continue;
    }
    stack.insert(stack.end(), it->second.begin(), it->second.end());
  }
  return false;
}

struct MappingIndex {
  std::map<OpId, OpId> src_to_dst;
  std::set<std::pair<OpId, OpId>> matched;
  std::set<OpId> reduced;
  std::set<OpId> added;
};

MappingIndex CheckMapping(const Model& source, const Model& dest, const OpMapping& mapping,
                          PlanVerifyResult* result) {
  MappingIndex index;
  std::set<OpId> used_src;
  std::set<OpId> used_dst;

  for (const auto& [src, dst] : mapping.matched) {
    if (!source.HasOp(src)) {
      AddIssue(result, PlanIssueKind::kMappingInvalid,
               "matched pair references missing source op " + std::to_string(src));
      continue;
    }
    if (!dest.HasOp(dst)) {
      AddIssue(result, PlanIssueKind::kMappingInvalid,
               "matched pair references missing destination op " + std::to_string(dst));
      continue;
    }
    if (source.op(src).kind != dest.op(dst).kind) {
      AddIssue(result, PlanIssueKind::kMappingInvalid,
               "matched pair " + std::to_string(src) + ":" + std::to_string(dst) +
                   " maps across op kinds (" + OpKindName(source.op(src).kind) + " vs " +
                   OpKindName(dest.op(dst).kind) + ")");
    }
    if (!used_src.insert(src).second) {
      AddIssue(result, PlanIssueKind::kMappingInvalid,
               "source op " + std::to_string(src) + " is mapped more than once");
      continue;
    }
    if (!used_dst.insert(dst).second) {
      AddIssue(result, PlanIssueKind::kMappingInvalid,
               "destination op " + std::to_string(dst) + " is mapped more than once");
      continue;
    }
    index.src_to_dst[src] = dst;
    index.matched.emplace(src, dst);
  }

  for (const OpId src : mapping.reduced) {
    if (!source.HasOp(src)) {
      AddIssue(result, PlanIssueKind::kMappingInvalid,
               "reduced list references missing source op " + std::to_string(src));
      continue;
    }
    if (!used_src.insert(src).second) {
      AddIssue(result, PlanIssueKind::kMappingInvalid,
               "source op " + std::to_string(src) + " is both matched and reduced");
      continue;
    }
    index.reduced.insert(src);
  }

  for (const OpId dst : mapping.added) {
    if (!dest.HasOp(dst)) {
      AddIssue(result, PlanIssueKind::kMappingInvalid,
               "added list references missing destination op " + std::to_string(dst));
      continue;
    }
    if (!used_dst.insert(dst).second) {
      AddIssue(result, PlanIssueKind::kMappingInvalid,
               "destination op " + std::to_string(dst) + " is both matched and added");
      continue;
    }
    index.added.insert(dst);
  }

  for (const auto& [id, op] : source.ops()) {
    if (used_src.count(id) == 0) {
      AddIssue(result, PlanIssueKind::kMappingIncomplete,
               "source op " + std::to_string(id) + " (" + OpKindName(op.kind) +
                   ") is neither matched nor reduced");
    }
  }
  for (const auto& [id, op] : dest.ops()) {
    if (used_dst.count(id) == 0) {
      AddIssue(result, PlanIssueKind::kMappingIncomplete,
               "destination op " + std::to_string(id) + " (" + OpKindName(op.kind) +
                   ") is neither matched nor added");
    }
  }
  return index;
}

// Steps the mapping obliges the plan to contain, marked off while scanning.
struct StepLedger {
  std::set<std::pair<OpId, OpId>> reshape_seen;
  std::set<std::pair<OpId, OpId>> replace_seen;
  std::set<OpId> reduce_seen;
  std::set<OpId> add_seen;
};

void CheckSteps(const Model& source, const Model& dest, const TransformPlan& plan,
                const MappingIndex& index, StepLedger* ledger, PlanVerifyResult* result) {
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const MetaOp& step = plan.steps[i];
    const std::string label =
        "step " + std::to_string(i) + " (" + StepKindLabel(step.kind) + ")";
    switch (step.kind) {
      case MetaOpKind::kReshape: {
        const std::pair<OpId, OpId> pair{step.source_id, step.dest_id};
        if (index.matched.count(pair) == 0) {
          AddIssue(result, PlanIssueKind::kStepInvalid,
                   label + " targets unmatched pair " + std::to_string(step.source_id) + ":" +
                       std::to_string(step.dest_id));
          break;
        }
        if (source.op(step.source_id).attrs == dest.op(step.dest_id).attrs) {
          AddIssue(result, PlanIssueKind::kStepInvalid,
                   label + " reshapes a pair whose attributes already agree");
        }
        if (!ledger->reshape_seen.insert(pair).second) {
          AddIssue(result, PlanIssueKind::kStepInvalid, label + " duplicates an earlier Reshape");
        }
        break;
      }
      case MetaOpKind::kReplace: {
        const std::pair<OpId, OpId> pair{step.source_id, step.dest_id};
        if (index.matched.count(pair) == 0) {
          AddIssue(result, PlanIssueKind::kStepInvalid,
                   label + " targets unmatched pair " + std::to_string(step.source_id) + ":" +
                       std::to_string(step.dest_id));
          break;
        }
        if (!OpKindHasWeights(dest.op(step.dest_id).kind)) {
          AddIssue(result, PlanIssueKind::kStepInvalid,
                   label + " replaces weights of weight-free op " + std::to_string(step.dest_id));
        }
        if (!ledger->replace_seen.insert(pair).second) {
          AddIssue(result, PlanIssueKind::kStepInvalid, label + " duplicates an earlier Replace");
        }
        break;
      }
      case MetaOpKind::kReduce:
        if (index.reduced.count(step.source_id) == 0) {
          AddIssue(result, PlanIssueKind::kStepInvalid,
                   label + " deletes op " + std::to_string(step.source_id) +
                       " which the mapping does not reduce");
          break;
        }
        if (!ledger->reduce_seen.insert(step.source_id).second) {
          AddIssue(result, PlanIssueKind::kStepInvalid, label + " duplicates an earlier Reduce");
        }
        break;
      case MetaOpKind::kAdd:
        if (index.added.count(step.dest_id) == 0) {
          AddIssue(result, PlanIssueKind::kStepInvalid,
                   label + " creates op " + std::to_string(step.dest_id) +
                       " which the mapping does not add");
          break;
        }
        if (!ledger->add_seen.insert(step.dest_id).second) {
          AddIssue(result, PlanIssueKind::kStepInvalid, label + " duplicates an earlier Add");
        }
        break;
      case MetaOpKind::kEdge:
        if (step.edge.first == kInvalidOpId || step.edge.second == kInvalidOpId) {
          AddIssue(result, PlanIssueKind::kStepInvalid,
                   label + " carries invalid edge " + EdgeLabel(step.edge));
        }
        break;
    }
  }

  // Obligations the scan did not mark off.
  for (const auto& pair : index.matched) {
    const Operation& src_op = source.op(pair.first);
    const Operation& dst_op = dest.op(pair.second);
    if (!(src_op.attrs == dst_op.attrs) && ledger->reshape_seen.count(pair) == 0) {
      AddIssue(result, PlanIssueKind::kMissingStep,
               "matched pair " + std::to_string(pair.first) + ":" + std::to_string(pair.second) +
                   " changes attributes but has no Reshape step");
    }
    if (OpKindHasWeights(dst_op.kind) && ledger->replace_seen.count(pair) == 0) {
      AddIssue(result, PlanIssueKind::kMissingStep,
               "matched weighted pair " + std::to_string(pair.first) + ":" +
                   std::to_string(pair.second) + " has no Replace step");
    }
  }
  for (const OpId src : index.reduced) {
    if (ledger->reduce_seen.count(src) == 0) {
      AddIssue(result, PlanIssueKind::kMissingStep,
               "reduced op " + std::to_string(src) + " has no Reduce step");
    }
  }
  for (const OpId dst : index.added) {
    if (ledger->add_seen.count(dst) == 0) {
      AddIssue(result, PlanIssueKind::kMissingStep,
               "added op " + std::to_string(dst) + " has no Add step");
    }
  }
}

// Symbolically applies the plan (structure only), checking well-formedness of
// every intermediate graph, and returns the final graph for comparison.
Model SymbolicApply(const Model& source, const Model& dest, const TransformPlan& plan,
                    const MappingIndex& index, const StepLedger& ledger,
                    PlanVerifyResult* result) {
  Model applied(dest.name(), dest.family());
  std::set<OpId> op_ids;

  for (const auto& [src, dst] : index.matched) {
    Operation op;
    op.id = dst;
    op.kind = source.op(src).kind;
    // A Reshape step rewrites the attributes; without one they carry over.
    op.attrs = ledger.reshape_seen.count({src, dst}) ? dest.op(dst).attrs : source.op(src).attrs;
    applied.AddOpWithId(std::move(op));
    op_ids.insert(dst);
  }
  for (const OpId dst : index.added) {
    if (ledger.add_seen.count(dst) == 0) {
      continue;  // No Add step: the op is never materialized (kMissingStep already reported).
    }
    Operation op;
    op.id = dst;
    op.kind = dest.op(dst).kind;
    op.attrs = dest.op(dst).attrs;
    applied.AddOpWithId(std::move(op));
    op_ids.insert(dst);
  }

  // Surviving source edges, projected into destination id space. The
  // adjacency map mirrors `edges` so the per-addition cycle probe is one DFS.
  std::set<Edge> edges;
  std::map<OpId, std::vector<OpId>> adjacency;
  auto insert_edge = [&edges, &adjacency](const Edge& edge) {
    if (edges.emplace(edge).second) {
      adjacency[edge.first].push_back(edge.second);
      return true;
    }
    return false;
  };
  for (const Edge& edge : source.edges()) {
    auto from = index.src_to_dst.find(edge.first);
    auto to = index.src_to_dst.find(edge.second);
    if (from != index.src_to_dst.end() && to != index.src_to_dst.end()) {
      insert_edge({from->second, to->second});
    }
  }

  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const MetaOp& step = plan.steps[i];
    if (step.kind != MetaOpKind::kEdge) {
      continue;
    }
    const std::string label = "step " + std::to_string(i) + " (Edge " +
                              (step.edge_add ? "add " : "remove ") + EdgeLabel(step.edge) + ")";
    if (step.edge_add) {
      if (op_ids.count(step.edge.first) == 0 || op_ids.count(step.edge.second) == 0) {
        AddIssue(result, PlanIssueKind::kEdgeInvalid,
                 label + " leaves a dangling edge: an endpoint is not in the graph");
        continue;
      }
      // Well-formedness of the intermediate graph after the mutation: adding
      // u->v creates a cycle exactly when u is already reachable from v.
      if (Reaches(adjacency, step.edge.second, step.edge.first)) {
        AddIssue(result, PlanIssueKind::kIntermediateCycle,
                 label + " makes the intermediate graph cyclic");
      }
      if (!insert_edge(step.edge)) {
        AddIssue(result, PlanIssueKind::kEdgeInvalid, label + " re-adds an existing edge");
      }
    } else {
      if (edges.erase(step.edge) == 0) {
        AddIssue(result, PlanIssueKind::kEdgeInvalid, label + " removes a nonexistent edge");
      } else {
        std::vector<OpId>& out = adjacency[step.edge.first];
        out.erase(std::find(out.begin(), out.end(), step.edge.second));
      }
    }
  }

  for (const Edge& edge : edges) {
    applied.AddEdge(edge.first, edge.second);
  }
  return applied;
}

void CheckCosts(const Model& source, const Model& dest, const TransformPlan& plan,
                const CostModel& costs, const VerifyOptions& options, PlanVerifyResult* result) {
  auto tolerance = [&options](double modeled) {
    return std::max(options.cost_abs_tolerance, options.cost_rel_tolerance * modeled);
  };

  double step_sum = 0.0;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const MetaOp& step = plan.steps[i];
    step_sum += step.cost;
    const std::string label =
        "step " + std::to_string(i) + " (" + StepKindLabel(step.kind) + ")";
    if (!(step.cost >= 0.0) || !std::isfinite(step.cost)) {
      AddIssue(result, PlanIssueKind::kCostMismatch,
               label + " has non-finite or negative cost " + std::to_string(step.cost));
      continue;
    }

    double modeled = 0.0;
    switch (step.kind) {
      case MetaOpKind::kReshape:
        if (!source.HasOp(step.source_id) || !dest.HasOp(step.dest_id)) {
          continue;  // Already reported as kStepInvalid.
        }
        modeled = costs.ReshapeCost(source.op(step.source_id).kind,
                                    source.op(step.source_id).attrs, dest.op(step.dest_id).attrs);
        break;
      case MetaOpKind::kReplace:
        if (!dest.HasOp(step.dest_id)) {
          continue;
        }
        modeled = costs.ReplaceCost(dest.op(step.dest_id).kind, dest.op(step.dest_id).attrs);
        break;
      case MetaOpKind::kReduce:
        modeled = costs.ReduceCost();
        break;
      case MetaOpKind::kAdd:
        if (!dest.HasOp(step.dest_id)) {
          continue;
        }
        modeled = costs.AddCost(dest.op(step.dest_id).kind, dest.op(step.dest_id).attrs);
        break;
      case MetaOpKind::kEdge:
        modeled = costs.EdgeCost();
        break;
    }
    if (step.cost < modeled - tolerance(modeled)) {
      AddIssue(result, PlanIssueKind::kCostUnderstated,
               label + " claims " + std::to_string(step.cost) + "s but the cost model estimates " +
                   std::to_string(modeled) + "s; an understated plan can defeat the safeguard");
    } else if (step.cost > modeled + tolerance(modeled)) {
      AddIssue(result, PlanIssueKind::kCostMismatch,
               label + " claims " + std::to_string(step.cost) + "s but the cost model estimates " +
                   std::to_string(modeled) + "s");
    }
  }

  if (std::abs(plan.total_cost - step_sum) > tolerance(step_sum)) {
    AddIssue(result,
             plan.total_cost < step_sum ? PlanIssueKind::kCostUnderstated
                                        : PlanIssueKind::kCostMismatch,
             "total_cost " + std::to_string(plan.total_cost) + "s does not equal the step sum " +
                 std::to_string(step_sum) + "s");
  }
}

}  // namespace

const char* PlanIssueKindName(PlanIssueKind kind) {
  switch (kind) {
    case PlanIssueKind::kGraphInvariant:
      return "GraphInvariant";
    case PlanIssueKind::kMappingInvalid:
      return "MappingInvalid";
    case PlanIssueKind::kMappingIncomplete:
      return "MappingIncomplete";
    case PlanIssueKind::kStepInvalid:
      return "StepInvalid";
    case PlanIssueKind::kMissingStep:
      return "MissingStep";
    case PlanIssueKind::kEdgeInvalid:
      return "EdgeInvalid";
    case PlanIssueKind::kIntermediateCycle:
      return "IntermediateCycle";
    case PlanIssueKind::kResultMismatch:
      return "ResultMismatch";
    case PlanIssueKind::kCostMismatch:
      return "CostMismatch";
    case PlanIssueKind::kCostUnderstated:
      return "CostUnderstated";
  }
  return "Unknown";
}

std::string PlanVerifyResult::Summary() const {
  if (ok()) {
    return "ok";
  }
  std::ostringstream out;
  for (size_t i = 0; i < issues.size(); ++i) {
    if (i > 0) {
      out << "\n";
    }
    out << PlanIssueKindName(issues[i].kind) << ": " << issues[i].detail;
  }
  return out.str();
}

bool PlanVerifyResult::Has(PlanIssueKind kind) const {
  return std::any_of(issues.begin(), issues.end(),
                     [kind](const PlanIssue& issue) { return issue.kind == kind; });
}

PlanVerifyResult VerifyPlan(const Model& source, const Model& dest, const TransformPlan& plan,
                            const CostModel& costs, const VerifyOptions& options) {
  PlanVerifyResult result;

  const GraphCheckResult source_check = CheckGraphInvariants(source);
  for (const GraphIssue& issue : source_check.issues) {
    AddIssue(&result, PlanIssueKind::kGraphInvariant, "source: " + issue.detail);
  }
  const GraphCheckResult dest_check = CheckGraphInvariants(dest);
  for (const GraphIssue& issue : dest_check.issues) {
    AddIssue(&result, PlanIssueKind::kGraphInvariant, "destination: " + issue.detail);
  }

  const MappingIndex index = CheckMapping(source, dest, plan.mapping, &result);
  StepLedger ledger;
  CheckSteps(source, dest, plan, index, &ledger, &result);

  const Model applied = SymbolicApply(source, dest, plan, index, ledger, &result);
  const GraphCheckResult applied_check = CheckGraphInvariants(applied);
  for (const GraphIssue& issue : applied_check.issues) {
    AddIssue(&result, PlanIssueKind::kGraphInvariant, "result: " + issue.detail);
  }
  if (!applied.StructurallyEqual(dest)) {
    AddIssue(&result, PlanIssueKind::kResultMismatch,
             "symbolic application does not reproduce '" + dest.name() + "': " +
                 FirstStructuralDifference(applied, dest));
  }

  if (options.check_costs) {
    CheckCosts(source, dest, plan, costs, options, &result);
  }
  return result;
}

GraphCheckResult VerifyModel(const Model& model) { return CheckGraphInvariants(model); }

PlanVerifyResult VerifyPlanShape(const TransformPlan& plan) {
  PlanVerifyResult result;
  if (plan.source_name.empty() || plan.dest_name.empty()) {
    AddIssue(&result, PlanIssueKind::kMappingInvalid, "plan endpoints are unnamed");
  }
  if (plan.source_name == plan.dest_name && !plan.source_name.empty()) {
    AddIssue(&result, PlanIssueKind::kMappingInvalid,
             "plan maps '" + plan.source_name + "' onto itself");
  }

  std::set<OpId> used_src;
  std::set<OpId> used_dst;
  for (const auto& [src, dst] : plan.mapping.matched) {
    if (src < 0 || dst < 0) {
      AddIssue(&result, PlanIssueKind::kMappingInvalid, "matched pair has a negative op id");
    }
    if (!used_src.insert(src).second || !used_dst.insert(dst).second) {
      AddIssue(&result, PlanIssueKind::kMappingInvalid,
               "matched pair " + std::to_string(src) + ":" + std::to_string(dst) +
                   " reuses an op id");
    }
  }
  for (const OpId src : plan.mapping.reduced) {
    if (src < 0 || !used_src.insert(src).second) {
      AddIssue(&result, PlanIssueKind::kMappingInvalid,
               "reduced op " + std::to_string(src) + " is invalid or reused");
    }
  }
  for (const OpId dst : plan.mapping.added) {
    if (dst < 0 || !used_dst.insert(dst).second) {
      AddIssue(&result, PlanIssueKind::kMappingInvalid,
               "added op " + std::to_string(dst) + " is invalid or reused");
    }
  }

  double step_sum = 0.0;
  for (size_t i = 0; i < plan.steps.size(); ++i) {
    const MetaOp& step = plan.steps[i];
    const std::string label = "step " + std::to_string(i);
    if (static_cast<int>(step.kind) >= kNumMetaOpKinds) {
      AddIssue(&result, PlanIssueKind::kStepInvalid,
               label + " has unknown kind byte " + std::to_string(static_cast<int>(step.kind)));
      continue;
    }
    if (!(step.cost >= 0.0) || !std::isfinite(step.cost)) {
      AddIssue(&result, PlanIssueKind::kCostMismatch,
               label + " has non-finite or negative cost " + std::to_string(step.cost));
    }
    step_sum += step.cost;
    switch (step.kind) {
      case MetaOpKind::kReplace:
      case MetaOpKind::kReshape:
        if (step.source_id < 0 || step.dest_id < 0) {
          AddIssue(&result, PlanIssueKind::kStepInvalid,
                   label + " (" + StepKindLabel(step.kind) + ") lacks source/destination ids");
        }
        break;
      case MetaOpKind::kReduce:
        if (step.source_id < 0) {
          AddIssue(&result, PlanIssueKind::kStepInvalid, label + " (Reduce) lacks a source id");
        }
        break;
      case MetaOpKind::kAdd:
        if (step.dest_id < 0) {
          AddIssue(&result, PlanIssueKind::kStepInvalid, label + " (Add) lacks a destination id");
        }
        break;
      case MetaOpKind::kEdge:
        if (step.edge.first < 0 || step.edge.second < 0) {
          AddIssue(&result, PlanIssueKind::kStepInvalid, label + " (Edge) has invalid endpoints");
        } else if (step.edge.first == step.edge.second) {
          AddIssue(&result, PlanIssueKind::kStepInvalid, label + " (Edge) is a self-edge");
        }
        break;
    }
  }
  if (std::abs(plan.total_cost - step_sum) > 1e-8 + 1e-9 * std::abs(step_sum)) {
    AddIssue(&result,
             plan.total_cost < step_sum ? PlanIssueKind::kCostUnderstated
                                        : PlanIssueKind::kCostMismatch,
             "total_cost " + std::to_string(plan.total_cost) + "s does not equal the step sum " +
                 std::to_string(step_sum) + "s");
  }
  if (!std::isfinite(plan.total_cost) || plan.total_cost < 0.0) {
    AddIssue(&result, PlanIssueKind::kCostMismatch, "total_cost is non-finite or negative");
  }
  return result;
}

bool VerificationEnabled() {
  static const bool enabled = [] {
    const char* env = std::getenv("OPTIMUS_VERIFY");
    if (env != nullptr) {
      std::string value(env);
      std::transform(value.begin(), value.end(), value.begin(),
                     [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
      if (value == "1" || value == "on" || value == "true" || value == "yes") {
        return true;
      }
      if (value == "0" || value == "off" || value == "false" || value == "no") {
        return false;
      }
    }
#ifndef NDEBUG
    return true;
#else
    return false;
#endif
  }();
  return enabled;
}

void ThrowIfInvalid(const PlanVerifyResult& result, const std::string& context) {
  if (!result.ok()) {
    throw std::runtime_error(context + ": " + result.Summary());
  }
}

void ThrowIfInvalid(const GraphCheckResult& result, const std::string& context) {
  if (!result.ok()) {
    throw std::runtime_error(context + ": " + result.Summary());
  }
}

}  // namespace optimus
