#include "src/container/container.h"

#include <algorithm>
#include <stdexcept>

namespace optimus {

const char* StartTypeName(StartType type) {
  switch (type) {
    case StartType::kWarm:
      return "Warm";
    case StartType::kTransform:
      return "Transform";
    case StartType::kCold:
      return "Cold";
  }
  return "Unknown";
}

Container* ContainerPool::Find(ContainerId id) {
  for (Container& container : containers_) {
    if (container.id == id) {
      return &container;
    }
  }
  return nullptr;
}

void ContainerPool::ReapExpired(double now) {
  containers_.erase(std::remove_if(containers_.begin(), containers_.end(),
                                   [&](const Container& container) {
                                     return container.state == ContainerState::kIdle &&
                                            now - container.last_active >= keep_alive_;
                                   }),
                    containers_.end());
}

Container* ContainerPool::FindWarm(const std::string& function) {
  for (Container& container : containers_) {
    if (container.state == ContainerState::kIdle && container.function == function) {
      return &container;
    }
  }
  return nullptr;
}

std::vector<Container*> ContainerPool::TransformCandidates(const std::string& function,
                                                           double now, int64_t min_memory) {
  std::vector<Container*> candidates;
  for (Container& container : containers_) {
    if (container.function == function || !container.IdleSince(now, idle_threshold_)) {
      continue;
    }
    if (min_memory > 0 && container.memory_bytes > 0 && container.memory_bytes < min_memory) {
      continue;
    }
    candidates.push_back(&container);
  }
  return candidates;
}

int64_t ContainerPool::UsedMemory() const {
  int64_t used = 0;
  for (const Container& container : containers_) {
    used += container.memory_bytes;
  }
  return used;
}

bool ContainerPool::CanLaunch(int64_t memory_bytes) const {
  if (!HasFreeSlot()) {
    return false;
  }
  return memory_limit_ <= 0 || UsedMemory() + memory_bytes <= memory_limit_;
}

Container* ContainerPool::LruIdle() {
  Container* victim = nullptr;
  for (Container& container : containers_) {
    if (container.state != ContainerState::kIdle) {
      continue;
    }
    if (victim == nullptr || container.last_active < victim->last_active) {
      victim = &container;
    }
  }
  return victim;
}

Container* ContainerPool::MinPriorityIdle() {
  Container* victim = nullptr;
  for (Container& container : containers_) {
    if (container.state != ContainerState::kIdle) {
      continue;
    }
    if (victim == nullptr || container.priority < victim->priority) {
      victim = &container;
    }
  }
  return victim;
}

Container* ContainerPool::Launch(const std::string& function, double now, double ready_at,
                                 int64_t memory_bytes) {
  if (!CanLaunch(memory_bytes)) {
    throw std::runtime_error("ContainerPool::Launch: node at capacity");
  }
  Container container;
  container.id = next_id_++;
  container.function = function;
  container.state = ContainerState::kStarting;
  container.last_active = now;
  container.busy_until = ready_at;
  container.memory_bytes = memory_bytes;
  containers_.push_back(container);
  return &containers_.back();
}

void ContainerPool::Remove(ContainerId id) {
  containers_.erase(std::remove_if(containers_.begin(), containers_.end(),
                                   [&](const Container& container) { return container.id == id; }),
                    containers_.end());
}

}  // namespace optimus
