// Container lifecycle and the idle-container identification mechanism
// (paper §4.2): each container carries a timer that resets on every request;
// once the timer exceeds a threshold (default 60 s) the container is
// considered idle and its model may be transformed for another function.
// Containers unused past the keep-alive window (default 10 min, matching the
// experimental setup in §8.1) are reclaimed.

#ifndef OPTIMUS_SRC_CONTAINER_CONTAINER_H_
#define OPTIMUS_SRC_CONTAINER_CONTAINER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace optimus {

// How a request's container was obtained (Fig. 14's categories).
enum class StartType : uint8_t {
  kWarm = 0,       // Idle container already serving the function.
  kTransform = 1,  // Container transformation (repurpose / tensor share).
  kCold = 2,       // New container started from scratch.
};

const char* StartTypeName(StartType type);

enum class ContainerState : uint8_t {
  kStarting = 0,  // Sandbox/runtime init or model load/transform in progress.
  kBusy,          // Serving a request.
  kIdle,          // Warm, holding a loaded model, not serving.
};

using ContainerId = int32_t;

struct Container {
  ContainerId id = -1;
  // Name of the function (model) the container currently serves.
  std::string function;
  ContainerState state = ContainerState::kStarting;
  // Virtual time the container last started or finished serving a request
  // (the §4.2 timer's reset point).
  double last_active = 0.0;
  // Virtual time at which the in-progress startup/request completes.
  double busy_until = 0.0;
  // Memory allocated to the container (0 when memory is not modeled). With
  // homogeneous allocation (the paper's default) every container gets the
  // same size; fine-grained allocation (§6) sizes it to the resident model.
  int64_t memory_bytes = 0;
  // Greedy-dual eviction priority (FaasCache-style keep-alive, §2.2's
  // complementary first-class work): clock value + reload cost at last use.
  // Only meaningful under EvictionPolicy::kGreedyDual.
  double priority = 0.0;

  bool IdleSince(double now, double threshold) const {
    return state == ContainerState::kIdle && now - last_active >= threshold;
  }
};

// The set of containers on one worker node, with bounded capacity.
class ContainerPool {
 public:
  // Note on pointer stability: Launch never reallocates (capacity is
  // reserved up front), but Remove and ReapExpired compact the vector and
  // invalidate outstanding Container pointers.
  //
  // `memory_limit` bounds the sum of container memory_bytes on the node;
  // 0 disables memory accounting.
  ContainerPool(int capacity, double idle_threshold, double keep_alive,
                int64_t memory_limit = 0)
      : capacity_(capacity),
        idle_threshold_(idle_threshold),
        keep_alive_(keep_alive),
        memory_limit_(memory_limit) {
    containers_.reserve(static_cast<size_t>(capacity));
  }

  int capacity() const { return capacity_; }
  double idle_threshold() const { return idle_threshold_; }
  size_t Size() const { return containers_.size(); }

  std::vector<Container>& containers() { return containers_; }
  const std::vector<Container>& containers() const { return containers_; }

  Container* Find(ContainerId id);

  // Removes containers idle past the keep-alive window.
  void ReapExpired(double now);

  // A warm idle container already serving `function`, or nullptr.
  Container* FindWarm(const std::string& function);

  // Idle containers whose §4.2 timer has exceeded the threshold and which
  // serve a *different* function — transformation donor candidates. With
  // min_memory > 0, only containers large enough to host the new model
  // qualify (§6: "container resources may be insufficient").
  std::vector<Container*> TransformCandidates(const std::string& function, double now,
                                              int64_t min_memory = 0);

  // The least-recently-active idle container (eviction victim), or nullptr.
  Container* LruIdle();

  // The idle container with the lowest greedy-dual priority, or nullptr.
  Container* MinPriorityIdle();

  bool HasFreeSlot() const { return static_cast<int>(containers_.size()) < capacity_; }

  // Memory currently allocated across containers.
  int64_t UsedMemory() const;
  int64_t memory_limit() const { return memory_limit_; }

  // Whether a container of `memory_bytes` fits (slot + memory).
  bool CanLaunch(int64_t memory_bytes) const;

  // Creates a new container in kStarting state. Requires CanLaunch().
  Container* Launch(const std::string& function, double now, double ready_at,
                    int64_t memory_bytes = 0);

  // Removes the container with the given id.
  void Remove(ContainerId id);

 private:
  int capacity_;
  double idle_threshold_;
  double keep_alive_;
  int64_t memory_limit_;
  std::vector<Container> containers_;
  ContainerId next_id_ = 0;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_CONTAINER_CONTAINER_H_
