#include "src/warming/forecaster.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace optimus {

const char* DemandClassName(DemandClass demand_class) {
  switch (demand_class) {
    case DemandClass::kSporadic:
      return "sporadic";
    case DemandClass::kPeriodic:
      return "periodic";
    case DemandClass::kBursty:
      return "bursty";
  }
  return "unknown";
}

DemandStats AnalyzeDemandSeries(const DemandSeries& series) {
  DemandStats stats;
  stats.slots = series.size();
  if (series.empty()) {
    return stats;
  }
  for (const double count : series) {
    stats.total += count;
  }
  const double n = static_cast<double>(series.size());
  stats.mean = stats.total / n;
  double variance = 0.0;
  for (const double count : series) {
    const double delta = count - stats.mean;
    variance += delta * delta;
  }
  variance /= n;
  if (stats.mean > 0.0) {
    stats.cv = std::sqrt(variance) / stats.mean;
  }
  if (variance <= 0.0 || series.size() < 2 * kClassifyMinSlots) {
    return stats;  // Flat series, or too short for a meaningful lag search.
  }
  // Normalized autocovariance over lags 2..n/2. Lag 1 is excluded: adjacent
  // slots correlate whenever a burst straddles a slot boundary, which says
  // nothing about periodicity.
  const double denom = variance * n;
  for (size_t lag = 2; lag <= series.size() / 2; ++lag) {
    double cov = 0.0;
    for (size_t i = 0; i + lag < series.size(); ++i) {
      cov += (series[i] - stats.mean) * (series[i + lag] - stats.mean);
    }
    const double autocorr = cov / denom;
    if (autocorr > stats.best_autocorr) {
      stats.best_autocorr = autocorr;
      stats.best_lag = lag;
    }
  }
  return stats;
}

DemandClass ClassifyDemand(const DemandSeries& series) {
  const DemandStats stats = AnalyzeDemandSeries(series);
  if (stats.slots < kClassifyMinSlots || stats.total < kClassifyMinTotal) {
    return DemandClass::kSporadic;  // Not enough evidence to say anything.
  }
  if (stats.best_autocorr >= kClassifyPeriodicAutocorr && stats.best_lag > 0) {
    return DemandClass::kPeriodic;  // Spike train with a stable period.
  }
  if (stats.cv < kClassifySteadyCv) {
    return DemandClass::kPeriodic;  // Steady timer-like arrivals.
  }
  if (stats.mean < kClassifySporadicMean) {
    return DemandClass::kSporadic;  // Irregular and rare: decline.
  }
  return DemandClass::kBursty;
}

namespace {

double Ewma(const DemandSeries& history, double alpha) {
  double rate = history.empty() ? 0.0 : history.front();
  for (size_t i = 1; i < history.size(); ++i) {
    rate = alpha * history[i] + (1.0 - alpha) * rate;
  }
  return rate;
}

double ClampAlpha(double alpha) { return std::clamp(alpha, 0.01, 1.0); }

}  // namespace

EwmaForecaster::EwmaForecaster(double alpha) : alpha_(ClampAlpha(alpha)) {}

Forecast EwmaForecaster::Predict(const DemandSeries& history) const {
  Forecast forecast;
  forecast.demand_class = ClassifyDemand(history);
  forecast.rate = Ewma(history, alpha_);
  forecast.predictable = forecast.rate > 0.0;
  forecast.confidence = forecast.predictable ? 0.5 : 0.0;
  forecast.method = forecast.predictable ? "ewma" : "none";
  return forecast;
}

HybridForecaster::HybridForecaster(double ewma_alpha) : alpha_(ClampAlpha(ewma_alpha)) {}

Forecast HybridForecaster::Predict(const DemandSeries& history) const {
  Forecast forecast;
  const DemandStats stats = AnalyzeDemandSeries(history);
  forecast.demand_class = ClassifyDemand(history);
  switch (forecast.demand_class) {
    case DemandClass::kPeriodic:
      if (stats.best_autocorr >= kClassifyPeriodicAutocorr && stats.best_lag > 0 &&
          stats.cv >= kClassifySteadyCv) {
        // Spike train: the slot one period back is the best guess for the
        // next slot (seasonal-naive).
        forecast.rate = history[history.size() - stats.best_lag];
        forecast.confidence = std::min(1.0, stats.best_autocorr);
        forecast.method = "seasonal";
      } else {
        forecast.rate = Ewma(history, alpha_);
        forecast.confidence = 0.9;
        forecast.method = "periodic";
      }
      // A seasonal/steady model is a real prediction even when it predicts a
      // quiet slot: rate 0 means "spend no budget here", not "don't know".
      // (All-zero histories never classify periodic — kClassifyMinTotal.)
      forecast.predictable = true;
      break;
    case DemandClass::kBursty:
      // Slow EWMA tracks the long-run burst arrival rate. Burst timing is
      // memoryless (the Azure off-phases are exponential), so the expected
      // demand next slot IS the long-run mean — a fast EWMA would peak right
      // after a burst, exactly when keep-alive already covers the function,
      // and decay to zero before the container expires.
      forecast.rate = Ewma(history, 0.5 * alpha_);
      forecast.confidence = 0.6;
      forecast.method = "ewma";
      forecast.predictable = forecast.rate > 0.0;
      break;
    case DemandClass::kSporadic:
      // Decline: a prediction here is noise, and acting on it burns the
      // speculation budget that bursty/periodic functions should get.
      forecast.rate = Ewma(history, alpha_);
      forecast.predictable = false;
      forecast.confidence = 0.0;
      forecast.method = "none";
      break;
  }
  return forecast;
}

std::unique_ptr<Forecaster> MakeForecaster(const std::string& kind, double ewma_alpha) {
  if (kind == "ewma") {
    return std::make_unique<EwmaForecaster>(ewma_alpha);
  }
  if (kind == "hybrid") {
    return std::make_unique<HybridForecaster>(ewma_alpha);
  }
  throw std::invalid_argument("MakeForecaster: unknown forecaster kind: " + kind);
}

}  // namespace optimus
