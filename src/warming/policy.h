// WarmingPolicy: forecast → prioritized pre-transform orders (DESIGN.md §17).
//
// The policy/mechanism split mirrors placement: a WarmingPolicy is pure
// decision logic (which functions to warm, where, how many containers) and
// the platform/simulator own execution (locking nodes, running transforms,
// charging the speculative accounting bucket). A WarmingBudget caps every
// cycle so speculation can never starve reactive traffic of containers.
//
// WarmingEngine bundles a forecaster + policy + cadence into the one object
// both the live platform and the simulator drive, which is what keeps their
// warming counters consistent on the same schedule.

#ifndef OPTIMUS_SRC_WARMING_POLICY_H_
#define OPTIMUS_SRC_WARMING_POLICY_H_

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/clock.h"
#include "src/placement/placement.h"
#include "src/warming/forecaster.h"
#include "src/workload/trace.h"

namespace optimus {

// Per-cycle speculation caps. Defaults are deliberately tight: a cycle may
// touch at most 4 containers cluster-wide and 2 per node.
struct WarmingBudget {
  int max_orders_per_cycle = 4;  // Cluster-wide order cap per cycle.
  int max_orders_per_node = 2;   // Per-node cap within one cycle.
  int containers_per_order = 1;  // Containers a single order may warm.
  // Forecast floor (arrivals per demand slot): predictions below this are
  // not worth a speculative transform.
  double min_predicted_rate = 0.5;
};

struct WarmingOptions {
  bool enabled = false;
  // Virtual seconds between warming cycles; <= 0 disables the background
  // loop (cycles then only run via explicit WarmNow / POST /warming/run).
  double interval = 120.0;
  std::string forecaster = "hybrid";  // MakeForecaster kind.
  double ewma_alpha = 0.5;
  std::string policy = "predictive";  // MakeWarmingPolicy kind.
  WarmingBudget budget;
};

// One pre-warm instruction: make `containers` warm instances of `function`
// on `node` before the forecast demand lands.
struct WarmingOrder {
  std::string function;
  int node = -1;
  int containers = 1;
  double priority = 0.0;  // Higher executes first when the budget truncates.
  Forecast forecast;      // The prediction that motivated the order.
};

struct FunctionForecast {
  std::string function;
  Forecast forecast;
};

class WarmingPolicy {
 public:
  virtual ~WarmingPolicy() = default;
  virtual const char* name() const = 0;
  // Converts forecasts into budget-capped orders, highest priority first.
  // Node choice must respect `table` (and therefore its live-mask): warming
  // a node the router will not send traffic to is guaranteed waste. Must be
  // deterministic in its inputs — chaos replays depend on it.
  virtual std::vector<WarmingOrder> Plan(const std::vector<FunctionForecast>& forecasts,
                                         const PlacementTable& table,
                                         const WarmingBudget& budget) const = 0;
};

// "predictive"; throws std::invalid_argument for unknown kinds.
std::unique_ptr<WarmingPolicy> MakeWarmingPolicy(const std::string& kind);

// Forecaster + policy + cadence, shared verbatim by OptimusPlatform and the
// simulator. Thread-safe: PlanOrders is const over immutable members, and
// the enable flag / cycle deadline are atomics.
class WarmingEngine {
 public:
  explicit WarmingEngine(const WarmingOptions& options);

  const WarmingOptions& options() const { return options_; }
  const Forecaster& forecaster() const { return *forecaster_; }
  const WarmingPolicy& policy() const { return *policy_; }

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool enabled) { enabled_.store(enabled, std::memory_order_relaxed); }

  // True exactly once per elapsed interval (CAS on the deadline, like
  // PlacementManager::RebalanceDue): with many threads racing the same
  // clock, one wins and runs the cycle. Always false when disabled or the
  // interval is non-positive.
  bool Due(double now);

  // Binds the cycle cadence to a shared time source — the platform's
  // VirtualClock live, SystemClock for wall-clock callers — so warming reads
  // the same clock as keep-alive and eviction (DESIGN.md §18). Unowned; the
  // clock must outlive the engine. Attach before any thread calls Due().
  void AttachClock(const Clock* clock) { clock_ = clock; }
  const Clock* clock() const { return clock_; }

  // Due(clock->Now()) against the attached clock; false when none attached.
  bool Due();

  // Forecasts every function in `history` and plans budget-capped orders
  // against the routing table.
  std::vector<WarmingOrder> PlanOrders(const std::map<std::string, DemandSeries>& history,
                                       const PlacementTable& table) const;

 private:
  WarmingOptions options_;
  std::unique_ptr<Forecaster> forecaster_;
  std::unique_ptr<WarmingPolicy> policy_;
  std::atomic<bool> enabled_;
  std::atomic<double> next_due_;
  const Clock* clock_ = nullptr;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_WARMING_POLICY_H_
