// Online demand forecasters for predictive warming (DESIGN.md §17).
//
// A Forecaster turns one function's slotted demand history (the DemandSeries
// the placement subsystem already accumulates, §5.1) into a prediction of the
// *next* slot's arrival count. Predictors are deliberately cheap — O(slots)
// arithmetic, no training state — because the warming loop re-evaluates every
// function once per cycle.
//
// The classifier mirrors the temporal classes the Azure-like generator emits
// (src/workload/azure.h, after Shahrad et al., ATC'20):
//   * periodic  — steady timer-driven arrivals (low CV), or a spike train
//                 with a stable period (strong autocorrelation at some lag);
//   * bursty    — on/off phases: quiet slots punctuated by dense spikes;
//   * sporadic  — rare, irregular arrivals. The honest forecast here is "no
//                 idea": the hybrid forecaster *declines to predict*, so the
//                 warming policy never spends budget on noise.
// A high-rate Poisson stream is statistically indistinguishable from a
// timer at slot granularity — both classify periodic — and that is the right
// call for warming either way: steady demand means keep the function warm.

#ifndef OPTIMUS_SRC_WARMING_FORECASTER_H_
#define OPTIMUS_SRC_WARMING_FORECASTER_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "src/workload/trace.h"

namespace optimus {

// Temporal structure of one function's demand series.
enum class DemandClass : uint8_t { kSporadic = 0, kPeriodic, kBursty };

// Stable lower-case names ("sporadic" / "periodic" / "bursty") for JSON,
// logs, and metric labels.
const char* DemandClassName(DemandClass demand_class);

// Summary statistics ClassifyDemand decides from (exposed for tests and the
// gateway's debugging surface).
struct DemandStats {
  size_t slots = 0;
  double total = 0.0;          // Sum of all slot counts.
  double mean = 0.0;           // Arrivals per slot.
  double cv = 0.0;             // Coefficient of variation (stddev / mean).
  double best_autocorr = 0.0;  // Strongest autocorrelation over lags 2..n/2.
  size_t best_lag = 0;         // Lag (in slots) of that autocorrelation.
};

DemandStats AnalyzeDemandSeries(const DemandSeries& series);

// Classification thresholds (shared with tests so the satellite trace-class
// regression pins the same constants the production classifier uses).
inline constexpr size_t kClassifyMinSlots = 4;
inline constexpr double kClassifyMinTotal = 3.0;       // Events to say anything.
inline constexpr double kClassifySteadyCv = 0.6;       // Below: steady periodic.
inline constexpr double kClassifyPeriodicAutocorr = 0.55;  // Spike-train period.
inline constexpr double kClassifySporadicMean = 1.0;   // Irregular + rarer than
                                                       // 1/slot: sporadic.

DemandClass ClassifyDemand(const DemandSeries& series);

// A per-function prediction for the next demand slot.
struct Forecast {
  // False when the forecaster declines (sporadic fallback): `rate` is then
  // only informational and the warming policy must not act on it.
  bool predictable = false;
  double rate = 0.0;        // Predicted arrivals in the next slot.
  double confidence = 0.0;  // [0, 1]; scales the order's priority.
  DemandClass demand_class = DemandClass::kSporadic;
  const char* method = "none";  // "ewma" | "periodic" | "seasonal" | "none".
};

class Forecaster {
 public:
  virtual ~Forecaster() = default;
  virtual const char* name() const = 0;
  // Predicts the next slot from the slotted history (most recent sample
  // last). Must be cheap and side-effect free: the engine calls it for every
  // function on every warming cycle, possibly from concurrent cycles.
  virtual Forecast Predict(const DemandSeries& history) const = 0;
};

// Exponentially weighted moving average of the slot counts. Always predicts
// (never declines); the workhorse for bursty/steady demand.
class EwmaForecaster final : public Forecaster {
 public:
  explicit EwmaForecaster(double alpha);
  const char* name() const override { return "ewma"; }
  Forecast Predict(const DemandSeries& history) const override;

 private:
  double alpha_;
};

// The production forecaster: classifies the series, then
//   * periodic (steady)      → EWMA rate at high confidence;
//   * periodic (spike train) → seasonal-naive: the value one detected period
//                              ago is the next slot's forecast;
//   * bursty                 → fast-alpha EWMA (tracks burst fronts quickly);
//   * sporadic               → declines to predict.
class HybridForecaster final : public Forecaster {
 public:
  explicit HybridForecaster(double ewma_alpha);
  const char* name() const override { return "hybrid"; }
  Forecast Predict(const DemandSeries& history) const override;

 private:
  double alpha_;
};

// "ewma" or "hybrid"; throws std::invalid_argument for unknown kinds.
std::unique_ptr<Forecaster> MakeForecaster(const std::string& kind, double ewma_alpha);

}  // namespace optimus

#endif  // OPTIMUS_SRC_WARMING_FORECASTER_H_
