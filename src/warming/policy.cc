#include "src/warming/policy.h"

#include <algorithm>
#include <stdexcept>

namespace optimus {

namespace {

// Warm the forecast-hottest functions first, one container each, on the node
// the routing table will actually send their traffic to.
class PredictiveWarmingPolicy final : public WarmingPolicy {
 public:
  const char* name() const override { return "predictive"; }

  std::vector<WarmingOrder> Plan(const std::vector<FunctionForecast>& forecasts,
                                 const PlacementTable& table,
                                 const WarmingBudget& budget) const override {
    std::vector<WarmingOrder> orders;
    for (const FunctionForecast& entry : forecasts) {
      const Forecast& forecast = entry.forecast;
      if (!forecast.predictable || forecast.rate < budget.min_predicted_rate) {
        continue;  // The sporadic fallback declined, or the rate is noise.
      }
      WarmingOrder order;
      order.function = entry.function;
      // NodeOrHash re-homes over the live ring, so orders never target a
      // drained or down node.
      order.node = table.NodeOrHash(entry.function);
      order.containers = std::max(1, budget.containers_per_order);
      // Confidence scales priority so a hesitant forecast loses a budget
      // tie against a confident one at the same rate.
      order.priority = forecast.rate * (0.5 + 0.5 * forecast.confidence);
      order.forecast = forecast;
      orders.push_back(std::move(order));
    }
    std::sort(orders.begin(), orders.end(), [](const WarmingOrder& a, const WarmingOrder& b) {
      if (a.priority != b.priority) {
        return a.priority > b.priority;
      }
      return a.function < b.function;  // Deterministic tie-break for replays.
    });
    // Enforce the per-node cap first (keep the highest-priority orders on
    // each node), then the cluster-wide cap.
    std::vector<WarmingOrder> capped;
    std::map<int, int> per_node;
    for (WarmingOrder& order : orders) {
      if (static_cast<int>(capped.size()) >= std::max(0, budget.max_orders_per_cycle)) {
        break;
      }
      int& node_count = per_node[order.node];
      if (node_count >= std::max(0, budget.max_orders_per_node)) {
        continue;
      }
      ++node_count;
      capped.push_back(std::move(order));
    }
    return capped;
  }
};

}  // namespace

std::unique_ptr<WarmingPolicy> MakeWarmingPolicy(const std::string& kind) {
  if (kind == "predictive") {
    return std::make_unique<PredictiveWarmingPolicy>();
  }
  throw std::invalid_argument("MakeWarmingPolicy: unknown warming policy: " + kind);
}

WarmingEngine::WarmingEngine(const WarmingOptions& options)
    : options_(options),
      forecaster_(MakeForecaster(options.forecaster, options.ewma_alpha)),
      policy_(MakeWarmingPolicy(options.policy)),
      enabled_(options.enabled),
      next_due_(options.interval) {}

bool WarmingEngine::Due() { return clock_ != nullptr && Due(clock_->Now()); }

bool WarmingEngine::Due(double now) {
  if (!enabled() || options_.interval <= 0.0) {
    return false;
  }
  double due = next_due_.load(std::memory_order_relaxed);
  while (now >= due) {
    if (next_due_.compare_exchange_weak(due, now + options_.interval,
                                        std::memory_order_relaxed)) {
      return true;  // This caller owns the cycle for the elapsed window.
    }
  }
  return false;
}

std::vector<WarmingOrder> WarmingEngine::PlanOrders(
    const std::map<std::string, DemandSeries>& history, const PlacementTable& table) const {
  std::vector<FunctionForecast> forecasts;
  forecasts.reserve(history.size());
  for (const auto& [function, series] : history) {
    forecasts.push_back(FunctionForecast{function, forecaster_->Predict(series)});
  }
  return policy_->Plan(forecasts, table, options_.budget);
}

}  // namespace optimus
