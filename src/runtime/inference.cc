#include "src/runtime/inference.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

namespace optimus {

namespace {

using Vector = std::vector<float>;

float MeanOf(const Vector& values) {
  if (values.empty()) {
    return 0.0f;
  }
  double sum = 0.0;
  for (const float v : values) {
    sum += v;
  }
  return static_cast<float>(sum / static_cast<double>(values.size()));
}

// out[j] = bias[j] + sum_r in[r mod |in|] * W[r][j], for matrix-like weights
// whose last dimension indexes output channels. Each weight row is driven by
// a (cyclically indexed) input element, so outputs depend on the full weight
// tensor and the input pattern.
Vector ProjectThroughMatrix(const Vector& in, const Tensor& weight, const Tensor* bias) {
  const Shape& shape = weight.shape();
  const int64_t out_channels = shape.Dim(shape.Rank() - 1);
  const int64_t rows = weight.NumElements() / out_channels;
  Vector out(static_cast<size_t>(out_channels), 0.0f);
  const size_t in_size = in.size();
  for (int64_t r = 0; r < rows; ++r) {
    const float in_value = in_size == 0 ? 0.0f : in[static_cast<size_t>(r) % in_size];
    if (in_value == 0.0f) {
      continue;
    }
    const float* row = weight.data() + r * out_channels;
    for (int64_t j = 0; j < out_channels; ++j) {
      out[static_cast<size_t>(j)] += in_value * row[j];
    }
  }
  for (int64_t j = 0; j < out_channels; ++j) {
    if (bias != nullptr) {
      out[static_cast<size_t>(j)] += bias->At(j);
    }
  }
  return out;
}

Vector ApplyOp(const Operation& op, const std::vector<Vector>& inputs) {
  const Vector& in = inputs.empty() ? Vector{} : inputs.front();
  switch (op.kind) {
    case OpKind::kInput:
    case OpKind::kMaxPool:
    case OpKind::kAvgPool:
    case OpKind::kGlobalAvgPool:
    case OpKind::kFlatten:
    case OpKind::kDropout:
    case OpKind::kLogit:
    case OpKind::kAttend:
    case OpKind::kOutput:
      return in;
    case OpKind::kConv2D:
    case OpKind::kDense:
    case OpKind::kAttentionQuery:
    case OpKind::kAttentionKey:
    case OpKind::kAttentionValue:
    case OpKind::kAttentionOutput:
      return ProjectThroughMatrix(in, op.weights.at(0),
                                  op.weights.size() > 1 ? &op.weights.at(1) : nullptr);
    case OpKind::kLstmCell:
    case OpKind::kGruCell: {
      // One step of the recurrence: project the input through the
      // input-to-hidden kernel, then average the stacked gate activations
      // down to the hidden width.
      const int64_t gates = op.kind == OpKind::kLstmCell ? 4 : 3;
      const int64_t hidden = op.attrs.out_channels;
      Vector gated = ProjectThroughMatrix(in, op.weights.at(0), &op.weights.at(2));
      Vector out(static_cast<size_t>(hidden), 0.0f);
      for (int64_t h = 0; h < hidden; ++h) {
        float acc = 0.0f;
        for (int64_t g = 0; g < gates; ++g) {
          acc += gated[static_cast<size_t>(g * hidden + h) % gated.size()];
        }
        out[static_cast<size_t>(h)] =
            std::tanh(acc / static_cast<float>(gates));
      }
      return out;
    }
    case OpKind::kDepthwiseConv2D: {
      // Per-channel scale: out[c] = in[c] * kernel_mean(c) + bias[c].
      const Tensor& kernel = op.weights.at(0);
      const int64_t channels = op.attrs.in_channels;
      const int64_t cells = kernel.NumElements() / channels;
      Vector out(static_cast<size_t>(channels), 0.0f);
      for (int64_t c = 0; c < channels; ++c) {
        double acc = 0.0;
        // Kernel layout: [kh, kw, channels, 1]; stride over the channel axis.
        for (int64_t cell = 0; cell < cells; ++cell) {
          acc += kernel.At(cell * channels + c);
        }
        const float in_value =
            in.empty() ? 0.0f : in[static_cast<size_t>(c) % in.size()];
        out[static_cast<size_t>(c)] =
            in_value * static_cast<float>(acc / static_cast<double>(cells)) +
            op.weights.at(1).At(c);
      }
      return out;
    }
    case OpKind::kBatchNorm:
    case OpKind::kLayerNorm: {
      const Tensor& gamma = op.weights.at(0);
      const Tensor& beta = op.weights.at(1);
      const int64_t channels = op.attrs.out_channels;
      Vector out(static_cast<size_t>(channels), 0.0f);
      for (int64_t c = 0; c < channels; ++c) {
        const float in_value = in.empty() ? 0.0f : in[static_cast<size_t>(c) % in.size()];
        out[static_cast<size_t>(c)] = in_value * gamma.At(c) + beta.At(c);
      }
      return out;
    }
    case OpKind::kEmbedding: {
      // out[j] = mean over the vocabulary of embedding column j, scaled by the
      // mean input token summary.
      const Tensor& table = op.weights.at(0);
      const int64_t dim = op.attrs.out_channels;
      const int64_t vocab = table.NumElements() / dim;
      Vector out(static_cast<size_t>(dim), 0.0f);
      for (int64_t v = 0; v < vocab; ++v) {
        for (int64_t j = 0; j < dim; ++j) {
          out[static_cast<size_t>(j)] += table.At(v * dim + j);
        }
      }
      const float scale = in.empty() ? 1.0f : (1.0f + MeanOf(in));
      for (auto& value : out) {
        value = value / static_cast<float>(vocab) * scale;
      }
      return out;
    }
    case OpKind::kActivation: {
      Vector out = in;
      switch (op.attrs.activation) {
        case ActivationType::kRelu:
        case ActivationType::kRelu6:
          for (auto& v : out) {
            v = std::max(0.0f, v);
          }
          break;
        case ActivationType::kGelu:
          for (auto& v : out) {
            v = 0.5f * v * (1.0f + std::tanh(0.7978845608f * (v + 0.044715f * v * v * v)));
          }
          break;
        case ActivationType::kSigmoid:
          for (auto& v : out) {
            v = 1.0f / (1.0f + std::exp(-v));
          }
          break;
        case ActivationType::kTanh:
          for (auto& v : out) {
            v = std::tanh(v);
          }
          break;
        case ActivationType::kNone:
          break;
      }
      return out;
    }
    case OpKind::kSoftmax: {
      Vector out = in;
      if (out.empty()) {
        return out;
      }
      const float max_value = *std::max_element(out.begin(), out.end());
      double total = 0.0;
      for (auto& v : out) {
        v = std::exp(v - max_value);
        total += v;
      }
      for (auto& v : out) {
        v = static_cast<float>(v / total);
      }
      return out;
    }
    case OpKind::kAdd: {
      size_t width = 0;
      for (const Vector& input : inputs) {
        width = std::max(width, input.size());
      }
      Vector out(width, 0.0f);
      for (const Vector& input : inputs) {
        for (size_t i = 0; i < input.size(); ++i) {
          out[i] += input[i];
        }
      }
      return out;
    }
    case OpKind::kConcat: {
      Vector out;
      for (const Vector& input : inputs) {
        out.insert(out.end(), input.begin(), input.end());
      }
      return out;
    }
  }
  throw std::runtime_error("ApplyOp: unhandled op kind");
}

}  // namespace

std::vector<float> RunInference(const ModelInstance& instance, const std::vector<float>& input) {
  const Model& model = instance.model;
  std::map<OpId, Vector> values;
  Vector output;
  for (const OpId id : model.TopologicalOrder()) {
    const Operation& op = model.op(id);
    std::vector<Vector> inputs;
    if (op.kind == OpKind::kInput) {
      inputs.push_back(input);
    } else {
      for (const OpId pred : model.Predecessors(id)) {
        inputs.push_back(values.at(pred));
      }
    }
    values[id] = ApplyOp(op, inputs);
    output = values[id];
  }
  return output;
}

int ArgMax(const std::vector<float>& values) {
  if (values.empty()) {
    return -1;
  }
  return static_cast<int>(std::max_element(values.begin(), values.end()) - values.begin());
}

}  // namespace optimus
