// Model loading: the in-container path the paper decomposes in §3.2 into
// deserialization, structure loading, and weight assignment.

#ifndef OPTIMUS_SRC_RUNTIME_LOADER_H_
#define OPTIMUS_SRC_RUNTIME_LOADER_H_

#include <cstdint>

#include "src/graph/model.h"
#include "src/graph/serialization.h"
#include "src/runtime/cost_model.h"

namespace optimus {

// A model materialized inside a container's runtime, with weights resident.
struct ModelInstance {
  Model model;

  bool Loaded() const { return model.NumOps() > 0; }
};

// Loads models into instances, performing the real work (parse, graph
// construction, weight tensor allocation and fill) while also reporting the
// calibrated latency decomposition from the cost model — the simulator and
// benchmarks consume the latter so results are deterministic across machines.
class Loader {
 public:
  explicit Loader(const CostModel* cost_model) : cost_model_(cost_model) {}

  // Deserializes a model file and materializes its weights. Ops serialized
  // structure-only get deterministic weights derived from `weight_seed`.
  ModelInstance LoadFromFile(const ModelFile& file, uint64_t weight_seed = 1,
                             LoadBreakdown* breakdown = nullptr) const;

  // Materializes a structure-only model (as produced by the zoo builders)
  // with deterministic weights — the "load from scratch" path.
  ModelInstance Instantiate(const Model& structure, uint64_t weight_seed = 1,
                            LoadBreakdown* breakdown = nullptr) const;

  const CostModel& cost_model() const { return *cost_model_; }

 private:
  const CostModel* cost_model_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_RUNTIME_LOADER_H_
