// Model loading: the in-container path the paper decomposes in §3.2 into
// deserialization, structure loading, and weight assignment.

#ifndef OPTIMUS_SRC_RUNTIME_LOADER_H_
#define OPTIMUS_SRC_RUNTIME_LOADER_H_

#include <cstdint>
#include <memory>

#include "src/graph/model.h"
#include "src/graph/serialization.h"
#include "src/runtime/cost_model.h"
#include "src/tensor/arena.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"

namespace optimus {

// A model materialized inside a container's runtime, with weights resident.
//
// When `arena` is set, weight tensors are zero-copy views into it and the
// arena is the container-lifetime allocation pool (DESIGN.md §14): repeated
// transforms bump-allocate from it, and Repack() reclaims the dead space they
// strand. `arena` must outlive `model` — it is declared first so the members
// destroy in a safe order, and shared so NodePool can recycle it after the
// instance dies.
struct ModelInstance {
  std::shared_ptr<TensorArena> arena;
  Model model;

  bool Loaded() const { return model.NumOps() > 0; }

  // Bytes the arena has handed out versus bytes the live weights actually
  // need. 1.0 = no waste; grows as transforms strand old allocations.
  double ArenaWasteFactor() const;

  // Repacks when the arena's used bytes exceed `waste_factor` times the live
  // weight bytes. Returns true if a repack ran. Called after transforms, when
  // no other views into the arena exist.
  bool MaybeRepack(double waste_factor = 4.0);

  // Copies every weight out to the heap, resets the arena, and moves the
  // weights back in — compacting the arena to exactly the live set.
  void Repack();
};

// Loads models into instances, performing the real work (parse, graph
// construction, weight tensor allocation and fill) while also reporting the
// calibrated latency decomposition from the cost model — the simulator and
// benchmarks consume the latter so results are deterministic across machines.
//
// Telemetry (DESIGN.md §12): with a registry attached via set_metrics(), each
// scratch load records its real wall time into the "scratch_load" phase
// histogram and its predicted-vs-actual cost-model drift (actual wall seconds
// divided by the cost model's ScratchLoadCost) into the drift series, making
// the §4.4 safeguard's comparison baseline auditable. A non-null trace
// context additionally records a "scratch_load" span carrying both costs.
class Loader {
 public:
  explicit Loader(const CostModel* cost_model) : cost_model_(cost_model) {}

  // Attaches the metrics registry the loads report into (may be null to
  // detach). Not thread-safe with concurrent loads; wire it up at
  // construction time, before serving.
  void set_metrics(telemetry::MetricsRegistry* metrics);

  // Deserializes a model file and materializes its weights. Ops serialized
  // structure-only get deterministic weights derived from `weight_seed`.
  ModelInstance LoadFromFile(const ModelFile& file, uint64_t weight_seed = 1,
                             LoadBreakdown* breakdown = nullptr,
                             telemetry::TraceContext* trace = nullptr) const;

  // Materializes a structure-only model (as produced by the zoo builders)
  // with deterministic weights — the "load from scratch" path. When `arena`
  // is non-null it is Reset() and becomes the instance's weight storage, so
  // the caller must guarantee no other live views into it (the platform only
  // passes a container's own arena, whose old views die with the returned
  // assignment).
  ModelInstance Instantiate(const Model& structure, uint64_t weight_seed = 1,
                            LoadBreakdown* breakdown = nullptr,
                            telemetry::TraceContext* trace = nullptr,
                            std::shared_ptr<TensorArena> arena = nullptr) const;

  const CostModel& cost_model() const { return *cost_model_; }

 private:
  // Records phase latency, drift, and the optional span for one finished load.
  void RecordLoad(const Model& model, double actual_seconds,
                  telemetry::TraceContext* trace) const;

  // Appends a post-hoc "scratch_load" span carrying both costs to `trace`.
  static void TraceSpanInto(telemetry::TraceContext* trace, double predicted_seconds,
                            double actual_seconds);

  const CostModel* cost_model_;
  telemetry::Histogram* load_seconds_ = nullptr;      // phase="scratch_load".
  telemetry::Histogram* drift_ratio_ = nullptr;       // actual / predicted.
  telemetry::Gauge* predicted_seconds_ = nullptr;     // Accumulated predictions.
  telemetry::Gauge* actual_seconds_ = nullptr;        // Accumulated wall time.
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_RUNTIME_LOADER_H_
