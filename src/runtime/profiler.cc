#include "src/runtime/profiler.h"

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

#include "src/common/rng.h"
#include "src/common/stopwatch.h"
#include "src/graph/serialization.h"
#include "src/tensor/tensor_ops.h"

namespace optimus {

namespace {

// Times `body` `repetitions` times and returns the median duration.
template <typename Body>
double MedianTime(int repetitions, Body&& body) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(repetitions));
  for (int i = 0; i < repetitions; ++i) {
    Stopwatch watch;
    body();
    samples.push_back(watch.ElapsedSeconds());
  }
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

// Representative attributes of a kind at a "small" and a "large" size, used
// as the two fit points.
OpAttributes SampleAttrs(OpKind kind, bool large) {
  OpAttributes attrs;
  switch (kind) {
    case OpKind::kConv2D:
      attrs.kernel_h = attrs.kernel_w = 3;
      attrs.in_channels = large ? 512 : 32;
      attrs.out_channels = large ? 512 : 32;
      break;
    case OpKind::kDepthwiseConv2D:
      attrs.kernel_h = attrs.kernel_w = 3;
      attrs.in_channels = large ? 1024 : 64;
      attrs.out_channels = attrs.in_channels;
      break;
    case OpKind::kDense:
    case OpKind::kAttentionQuery:
    case OpKind::kAttentionKey:
    case OpKind::kAttentionValue:
    case OpKind::kAttentionOutput:
      attrs.in_channels = large ? 2048 : 128;
      attrs.out_channels = large ? 2048 : 128;
      break;
    case OpKind::kBatchNorm:
    case OpKind::kLayerNorm:
      attrs.out_channels = large ? 2048 : 64;
      break;
    case OpKind::kEmbedding:
      attrs.vocab_size = large ? 30522 : 1024;
      attrs.out_channels = large ? 768 : 64;
      break;
    case OpKind::kLstmCell:
    case OpKind::kGruCell:
      attrs.in_channels = large ? 1024 : 64;
      attrs.out_channels = large ? 1024 : 64;
      break;
    case OpKind::kActivation:
      attrs.activation = ActivationType::kRelu;
      break;
    default:
      break;
  }
  return attrs;
}

// Measures the cost of materializing one operation (structure + allocation).
double MeasureOpBuild(OpKind kind, const OpAttributes& attrs, int repetitions) {
  Rng rng(7);
  return MedianTime(repetitions, [&] {
    Operation op;
    op.id = 0;
    op.kind = kind;
    op.attrs = attrs;
    op.InitializeWeights(&rng);
  });
}

}  // namespace

CostProfile ProfileMachine(int repetitions) {
  CostProfile profile;
  Rng rng(11);

  // --- Per-kind structure costs (two-point linear fit). ----------------------
  for (int i = 0; i < kNumOpKinds; ++i) {
    const OpKind kind = static_cast<OpKind>(i);
    const OpAttributes small_attrs = SampleAttrs(kind, /*large=*/false);
    const OpAttributes large_attrs = SampleAttrs(kind, /*large=*/true);
    const int64_t small_elements = WeightElementsFor(kind, small_attrs);
    const int64_t large_elements = WeightElementsFor(kind, large_attrs);
    const double small_time = MeasureOpBuild(kind, small_attrs, repetitions);
    LinearCost fit;
    if (large_elements > small_elements) {
      const double large_time = MeasureOpBuild(kind, large_attrs, repetitions);
      fit.per_element = std::max(0.0, (large_time - small_time) /
                                          static_cast<double>(large_elements - small_elements));
      fit.base = std::max(0.0, small_time - fit.per_element *
                                                static_cast<double>(small_elements));
    } else {
      fit.base = small_time;
    }
    profile.structure[static_cast<size_t>(i)] = fit;
  }

  // --- Weight assignment throughput (bulk overwrite). ------------------------
  {
    Tensor src(Shape({1024, 1024}));
    src.FillRandom(&rng);
    Tensor dst(Shape({1024, 1024}));
    const double time = MedianTime(repetitions, [&] { OverwriteTensor(src, &dst); });
    profile.weight_assign_per_byte = time / static_cast<double>(src.SizeBytes());
    Tensor tiny_src(Shape({8}));
    Tensor tiny_dst(Shape({8}));
    // The per-tensor dispatch overhead is the cost of an (effectively empty)
    // tensor overwrite.
    profile.weight_assign_per_tensor =
        MedianTime(repetitions, [&] { OverwriteTensor(tiny_src, &tiny_dst); });
    profile.weight_assign_base = profile.weight_assign_per_tensor;
  }

  // --- Deserialization throughput. -------------------------------------------
  {
    Model sample("profile_sample", "profiler");
    OpAttributes attrs;
    attrs.in_channels = 512;
    attrs.out_channels = 512;
    const OpId id = sample.AddOp(OpKind::kDense, attrs);
    sample.mutable_op(id).InitializeWeights(&rng);
    const ModelFile file = SerializeModel(sample);
    const double time = MedianTime(repetitions, [&] { DeserializeModel(file); });
    profile.deserialize_per_byte = time / static_cast<double>(file.size());
    profile.deserialize_base = 1e-6;
  }

  // --- Reshape (crop/pad resize) over two sizes. ------------------------------
  {
    Tensor small_tensor(Shape({3, 3, 32, 32}));
    small_tensor.FillRandom(&rng);
    const Shape small_target({3, 3, 32, 48});
    Tensor large_tensor(Shape({3, 3, 256, 256}));
    large_tensor.FillRandom(&rng);
    const Shape large_target({3, 3, 256, 384});
    const double small_time =
        MedianTime(repetitions, [&] { ResizeToShape(small_tensor, small_target); });
    const double large_time =
        MedianTime(repetitions, [&] { ResizeToShape(large_tensor, large_target); });
    const int64_t small_elements = small_tensor.NumElements() + small_target.NumElements();
    const int64_t large_elements = large_tensor.NumElements() + large_target.NumElements();
    profile.reshape.per_element =
        std::max(0.0, (large_time - small_time) /
                          static_cast<double>(large_elements - small_elements));
    profile.reshape.base =
        std::max(1e-7, small_time - profile.reshape.per_element *
                                        static_cast<double>(small_elements));
  }

  // --- Constants. --------------------------------------------------------------
  {
    Model graph("profile_graph", "profiler");
    std::vector<OpId> ids;
    for (int i = 0; i < 64; ++i) {
      ids.push_back(graph.AddOp(OpKind::kActivation, SampleAttrs(OpKind::kActivation, false)));
      if (i > 0) {
        graph.AddEdge(ids[static_cast<size_t>(i) - 1], ids[static_cast<size_t>(i)]);
      }
    }
    profile.reduce = MedianTime(repetitions, [&] {
                       Model copy = graph;
                       copy.RemoveOp(ids[32]);
                     }) /
                     1.0;
    profile.edge = MedianTime(repetitions, [&] {
                     graph.AddEdge(ids[0], ids[63]);
                     graph.RemoveEdge(ids[0], ids[63]);
                   }) /
                   2.0;
    profile.replace_overhead = profile.weight_assign_base;
  }

  return profile;
}

std::string CostProfile::ToString() const {
  std::ostringstream out;
  out << "CostProfile{\n";
  for (int i = 0; i < kNumOpKinds; ++i) {
    const auto& fit = structure[static_cast<size_t>(i)];
    out << "  " << OpKindName(static_cast<OpKind>(i)) << ": base=" << fit.base
        << " per_element=" << fit.per_element << "\n";
  }
  out << "  weight_assign: base=" << weight_assign_base << " per_tensor="
      << weight_assign_per_tensor << " per_byte=" << weight_assign_per_byte
      << "\n  deserialize: base=" << deserialize_base << " per_byte=" << deserialize_per_byte
      << "\n  reshape: base=" << reshape.base << " per_element=" << reshape.per_element
      << "\n  reduce=" << reduce << " edge=" << edge << " replace_overhead=" << replace_overhead
      << "\n}";
  return out.str();
}

double MeasuredCostModel::OpStructureCost(OpKind kind, const OpAttributes& attrs) const {
  return profile_.structure[static_cast<size_t>(kind)].Eval(WeightElementsFor(kind, attrs));
}

double MeasuredCostModel::WeightAssignCost(int64_t bytes, int64_t tensor_count) const {
  if (bytes <= 0 && tensor_count <= 0) {
    return 0.0;
  }
  return profile_.weight_assign_base +
         profile_.weight_assign_per_tensor * static_cast<double>(tensor_count) +
         profile_.weight_assign_per_byte * static_cast<double>(bytes);
}

double MeasuredCostModel::DeserializeCost(int64_t bytes) const {
  return profile_.deserialize_base + profile_.deserialize_per_byte * static_cast<double>(bytes);
}

double MeasuredCostModel::ReshapeCost(OpKind kind, const OpAttributes& src,
                                      const OpAttributes& dst) const {
  const int64_t elements = WeightElementsFor(kind, src) + WeightElementsFor(kind, dst);
  return profile_.reshape.Eval(elements);
}

double MeasuredCostModel::ReduceCost() const { return profile_.reduce; }

double MeasuredCostModel::EdgeCost() const { return profile_.edge; }

double MeasuredCostModel::ReplaceOverhead() const { return profile_.replace_overhead; }

}  // namespace optimus
