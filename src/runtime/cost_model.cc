#include "src/runtime/cost_model.h"

#include <algorithm>
#include <cmath>

namespace optimus {

namespace {

// --- Calibrated constants (seconds). See DESIGN.md §5 for derivation. -------

// Fixed graph-assembly overhead charged per operation (framework bookkeeping:
// node registration, shape inference, name scoping).
constexpr double kPerOpOverhead = 0.004;

// Kind-specific structure costs. The CONV slope is calibrated so that a
// 3x3x512 CONV loads 1.79x slower than a 3x3x64 one (Fig. 5c).
constexpr double kConvBase = 0.006;
constexpr double kConvPerKernelCell = 2.2e-6;  // x (kernel_h * kernel_w * out_channels)
constexpr double kDenseBase = 0.006;
constexpr double kDensePerWeight = 5.0e-9;  // x (in * out)
constexpr double kNormBase = 0.003;
constexpr double kNormPerChannel = 1.0e-6;
constexpr double kEmbeddingBase = 0.006;
constexpr double kEmbeddingPerWeight = 2.0e-9;
constexpr double kActivationCost = 0.0012;
constexpr double kPoolCost = 0.0015;
constexpr double kStructuralCost = 0.0010;  // Add/Concat/Flatten/Dropout/Logit/Attend/Softmax.
constexpr double kBoundaryCost = 0.0005;    // Input/Output markers.

// Weight assignment ("state of the model" write): a fixed per-tensor
// dispatch overhead plus byte-proportional copy traffic.
constexpr double kWeightAssignPerByte = 0.35e-9;  // ~2.9 GB/s.
constexpr double kWeightAssignPerTensor = 0.6e-3;
constexpr double kWeightAssignBase = 0.0002;

// Deserialization (file parse) throughput — negligible per Fig. 3.
constexpr double kDeserializePerByte = 0.02e-9;
constexpr double kDeserializeBase = 0.002;

// Meta-operator constants (Fig. 8).
constexpr double kReplaceOverhead = 0.0002;
constexpr double kReshapeBase = 0.0008;
constexpr double kReshapePerByte = 0.15e-9;  // over |src| + |dst| weight bytes.
constexpr double kReduceCost = 0.0005;
constexpr double kEdgeCost = 0.00005;

// Inference compute: fixed dispatch overhead plus parameter-proportional work.
constexpr double kInferenceBase = 0.020;
constexpr double kInferencePerParam = 1.5e-9;

}  // namespace

double CostModel::ReplaceCost(OpKind kind, const OpAttributes& attrs) const {
  return ReplaceOverhead() +
         WeightAssignCost(WeightBytesFor(kind, attrs), WeightTensorCountFor(kind, attrs));
}

double CostModel::AddCost(OpKind kind, const OpAttributes& attrs) const {
  return OpStructureCost(kind, attrs) +
         WeightAssignCost(WeightBytesFor(kind, attrs), WeightTensorCountFor(kind, attrs));
}

LoadBreakdown CostModel::ModelLoadBreakdown(const Model& model) const {
  LoadBreakdown breakdown;
  int64_t weight_bytes = 0;
  int64_t weight_tensors = 0;
  for (const auto& [id, op] : model.ops()) {
    breakdown.structure += OpStructureCost(op.kind, op.attrs);
    weight_bytes += WeightBytesFor(op.kind, op.attrs);
    weight_tensors += WeightTensorCountFor(op.kind, op.attrs);
  }
  breakdown.weights = WeightAssignCost(weight_bytes, weight_tensors);
  // Serialized size ≈ weight payload plus a small structural envelope.
  breakdown.deserialize = DeserializeCost(weight_bytes + 64 * static_cast<int64_t>(model.NumOps()));
  return breakdown;
}

double CostModel::ScratchLoadCost(const Model& model) const {
  return ModelLoadBreakdown(model).Total();
}

double AnalyticCostModel::OpStructureCost(OpKind kind, const OpAttributes& attrs) const {
  double kind_cost = 0.0;
  switch (kind) {
    case OpKind::kConv2D:
      kind_cost = kConvBase + kConvPerKernelCell * static_cast<double>(attrs.kernel_h *
                                                                       attrs.kernel_w *
                                                                       attrs.out_channels);
      break;
    case OpKind::kDepthwiseConv2D:
      kind_cost = kConvBase + kConvPerKernelCell * static_cast<double>(attrs.kernel_h *
                                                                       attrs.kernel_w *
                                                                       attrs.in_channels);
      break;
    case OpKind::kDense:
    case OpKind::kAttentionQuery:
    case OpKind::kAttentionKey:
    case OpKind::kAttentionValue:
    case OpKind::kAttentionOutput:
      kind_cost = kDenseBase +
                  kDensePerWeight * static_cast<double>(attrs.in_channels * attrs.out_channels);
      break;
    case OpKind::kLstmCell:
    case OpKind::kGruCell:
      // Recurrent cells build one projection per gate.
      kind_cost =
          kDenseBase + kDensePerWeight * static_cast<double>(WeightElementsFor(kind, attrs));
      break;
    case OpKind::kBatchNorm:
    case OpKind::kLayerNorm:
      kind_cost = kNormBase + kNormPerChannel * static_cast<double>(attrs.out_channels);
      break;
    case OpKind::kEmbedding:
      kind_cost = kEmbeddingBase + kEmbeddingPerWeight *
                                       static_cast<double>(attrs.vocab_size * attrs.out_channels);
      break;
    case OpKind::kActivation:
      kind_cost = kActivationCost;
      break;
    case OpKind::kMaxPool:
    case OpKind::kAvgPool:
    case OpKind::kGlobalAvgPool:
      kind_cost = kPoolCost;
      break;
    case OpKind::kInput:
    case OpKind::kOutput:
      kind_cost = kBoundaryCost;
      break;
    default:
      kind_cost = kStructuralCost;
      break;
  }
  return kPerOpOverhead + kind_cost;
}

double AnalyticCostModel::WeightAssignCost(int64_t bytes, int64_t tensor_count) const {
  if (bytes <= 0 && tensor_count <= 0) {
    return 0.0;
  }
  return kWeightAssignBase + kWeightAssignPerTensor * static_cast<double>(tensor_count) +
         kWeightAssignPerByte * static_cast<double>(bytes);
}

double AnalyticCostModel::DeserializeCost(int64_t bytes) const {
  return kDeserializeBase + kDeserializePerByte * static_cast<double>(bytes);
}

double AnalyticCostModel::ReshapeCost(OpKind kind, const OpAttributes& src,
                                      const OpAttributes& dst) const {
  const int64_t src_bytes = WeightBytesFor(kind, src);
  const int64_t dst_bytes = WeightBytesFor(kind, dst);
  return kReshapeBase + kReshapePerByte * static_cast<double>(src_bytes + dst_bytes);
}

double AnalyticCostModel::ReduceCost() const { return kReduceCost; }

double AnalyticCostModel::EdgeCost() const { return kEdgeCost; }

double AnalyticCostModel::ReplaceOverhead() const { return kReplaceOverhead; }

double SystemProfile::InferenceCost(const Model& model) const {
  return (kInferenceBase + kInferencePerParam * static_cast<double>(model.ParamCount())) *
         compute_scale;
}

double SystemProfile::DeviceTransferCost(const Model& model) const {
  return gpu_transfer_per_byte * static_cast<double>(model.WeightBytes());
}

}  // namespace optimus
