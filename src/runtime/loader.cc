#include "src/runtime/loader.h"

#include "src/common/fault.h"
#include "src/common/rng.h"

namespace optimus {

namespace {

void MaterializeWeights(Model* model, uint64_t weight_seed) {
  Rng rng(weight_seed);
  for (const OpId id : model->OpIds()) {
    Operation& op = model->mutable_op(id);
    if (!OpKindHasWeights(op.kind)) {
      continue;
    }
    if (op.weights.empty()) {
      op.InitializeWeights(&rng);
    }
  }
}

}  // namespace

ModelInstance Loader::LoadFromFile(const ModelFile& file, uint64_t weight_seed,
                                   LoadBreakdown* breakdown) const {
  fault::MaybeInject("loader.deserialize");
  ModelInstance instance;
  instance.model = DeserializeModel(file);
  MaterializeWeights(&instance.model, weight_seed);
  instance.model.Validate();
  if (breakdown != nullptr) {
    *breakdown = cost_model_->ModelLoadBreakdown(instance.model);
  }
  return instance;
}

ModelInstance Loader::Instantiate(const Model& structure, uint64_t weight_seed,
                                  LoadBreakdown* breakdown) const {
  fault::MaybeInject("loader.load");
  ModelInstance instance;
  instance.model = structure;
  MaterializeWeights(&instance.model, weight_seed);
  instance.model.Validate();
  if (breakdown != nullptr) {
    *breakdown = cost_model_->ModelLoadBreakdown(instance.model);
  }
  return instance;
}

}  // namespace optimus
