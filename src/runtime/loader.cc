#include "src/runtime/loader.h"

#include "src/common/fault.h"
#include "src/common/rng.h"

namespace optimus {

namespace {

void MaterializeWeights(Model* model, uint64_t weight_seed, TensorArena* arena = nullptr) {
  Rng rng(weight_seed);
  for (const OpId id : model->OpIds()) {
    Operation& op = model->mutable_op(id);
    if (!OpKindHasWeights(op.kind)) {
      continue;
    }
    if (op.weights.empty()) {
      op.InitializeWeights(&rng, arena);
    } else if (arena != nullptr) {
      // The structure copy deep-copied pre-existing weights to the heap;
      // migrate them into the container's arena.
      for (Tensor& weight : op.weights) {
        weight.MoveTo(arena);
      }
    }
  }
}

}  // namespace

double ModelInstance::ArenaWasteFactor() const {
  if (arena == nullptr) {
    return 1.0;
  }
  // Only arena-resident weights count as live: aliased views (zero-copy
  // Replace) and heap tensors occupy no arena bytes, so comparing against the
  // full model size would mask a slab full of dead Reshape outputs.
  int64_t live = 0;
  for (const OpId id : model.OpIds()) {
    for (const Tensor& weight : model.op(id).weights) {
      if (weight.arena_backed() && arena->Owns(weight.data())) {
        live += weight.SizeBytes();
      }
    }
  }
  if (live <= 0) {
    return arena->bytes_used() > 0 ? static_cast<double>(arena->bytes_used()) : 1.0;
  }
  return static_cast<double>(arena->bytes_used()) / static_cast<double>(live);
}

bool ModelInstance::MaybeRepack(double waste_factor) {
  if (arena == nullptr || ArenaWasteFactor() <= waste_factor) {
    return false;
  }
  Repack();
  return true;
}

void ModelInstance::Repack() {
  if (arena == nullptr) {
    return;
  }
  for (const OpId id : model.OpIds()) {
    for (Tensor& weight : model.mutable_op(id).weights) {
      // Aliased views cost the arena nothing — repacking them would copy the
      // repository's weights into the slab for no benefit.
      if (!weight.aliased()) {
        weight.Detach();
      }
    }
  }
  arena->Reset();
  for (const OpId id : model.OpIds()) {
    for (Tensor& weight : model.mutable_op(id).weights) {
      if (!weight.aliased()) {
        weight.MoveTo(arena.get());
      }
    }
  }
}

void Loader::set_metrics(telemetry::MetricsRegistry* metrics) {
  if (metrics == nullptr) {
    load_seconds_ = nullptr;
    drift_ratio_ = nullptr;
    predicted_seconds_ = nullptr;
    actual_seconds_ = nullptr;
    return;
  }
  load_seconds_ = &metrics->GetHistogram("optimus_phase_seconds", {{"phase", "scratch_load"}},
                                         "Wall seconds spent per invoke-path phase");
  drift_ratio_ = &metrics->GetHistogram("optimus_cost_drift_ratio", {{"phase", "scratch_load"}},
                                        "Actual wall seconds / cost-model prediction");
  predicted_seconds_ =
      &metrics->GetGauge("optimus_cost_predicted_seconds", {{"phase", "scratch_load"}},
                         "Accumulated cost-model predictions");
  actual_seconds_ = &metrics->GetGauge("optimus_cost_actual_seconds", {{"phase", "scratch_load"}},
                                       "Accumulated measured wall seconds");
}

void Loader::RecordLoad(const Model& model, double actual_seconds,
                        telemetry::TraceContext* trace) const {
  const bool need_prediction =
      drift_ratio_ != nullptr || predicted_seconds_ != nullptr || trace != nullptr;
  double predicted = 0.0;
  if (need_prediction) {
    predicted = cost_model_->ScratchLoadCost(model);
  }
  if (load_seconds_ != nullptr) {
    load_seconds_->Observe(actual_seconds);
  }
  if (drift_ratio_ != nullptr && predicted > 0.0) {
    drift_ratio_->Observe(actual_seconds / predicted);
  }
  if (predicted_seconds_ != nullptr) {
    predicted_seconds_->Add(predicted);
  }
  if (actual_seconds_ != nullptr) {
    actual_seconds_->Add(actual_seconds);
  }
  if (trace != nullptr) {
    TraceSpanInto(trace, predicted, actual_seconds);
  }
}

void Loader::TraceSpanInto(telemetry::TraceContext* trace, double predicted_seconds,
                           double actual_seconds) {
  // Recorded post hoc (the load already ran) so the span brackets [now - dur,
  // now]; Chrome's viewer only needs start + duration to be consistent.
  telemetry::TraceSpan span;
  span.name = "scratch_load";
  span.category = "load";
  span.duration_ns = static_cast<uint64_t>(actual_seconds * 1e9);
  const uint64_t now = telemetry::MonotonicNanos();
  span.start_ns = now > span.duration_ns ? now - span.duration_ns : 0;
  span.args.emplace_back("predicted_s", predicted_seconds);
  span.args.emplace_back("actual_s", actual_seconds);
  trace->Record(std::move(span));
}

ModelInstance Loader::LoadFromFile(const ModelFile& file, uint64_t weight_seed,
                                   LoadBreakdown* breakdown,
                                   telemetry::TraceContext* trace) const {
  const uint64_t start_ns = telemetry::MonotonicNanos();
  fault::MaybeInject("loader.deserialize");
  ModelInstance instance;
  instance.model = DeserializeModel(file);
  MaterializeWeights(&instance.model, weight_seed);
  instance.model.Validate();
  if (breakdown != nullptr) {
    *breakdown = cost_model_->ModelLoadBreakdown(instance.model);
  }
  RecordLoad(instance.model, static_cast<double>(telemetry::MonotonicNanos() - start_ns) * 1e-9,
             trace);
  return instance;
}

ModelInstance Loader::Instantiate(const Model& structure, uint64_t weight_seed,
                                  LoadBreakdown* breakdown, telemetry::TraceContext* trace,
                                  std::shared_ptr<TensorArena> arena) const {
  const uint64_t start_ns = telemetry::MonotonicNanos();
  fault::MaybeInject("loader.load");
  ModelInstance instance;
  instance.arena = std::move(arena);
  if (instance.arena != nullptr) {
    instance.arena->Reset();
  }
  instance.model = structure;
  MaterializeWeights(&instance.model, weight_seed, instance.arena.get());
  instance.model.Validate();
  if (breakdown != nullptr) {
    *breakdown = cost_model_->ModelLoadBreakdown(instance.model);
  }
  RecordLoad(instance.model, static_cast<double>(telemetry::MonotonicNanos() - start_ns) * 1e-9,
             trace);
  return instance;
}

}  // namespace optimus
