// Cost models for model loading and meta-operator execution.
//
// The paper's Module 1 (§4.4) profiles meta-operator execution times offline
// and uses them to plan transformations. We expose that as the CostModel
// interface with two implementations:
//
//  * AnalyticCostModel — constants calibrated to the relationships measured in
//    the paper's Figures 2-5 and 8 (structure-load dominance, CONV scaling,
//    Replace ∝ bytes, Add ≈ scratch load, Reduce constant, Edge negligible).
//  * MeasuredCostModel (src/runtime/profiler.h) — fitted from real wall-clock
//    micro measurements on this machine.
//
// All costs are in seconds.

#ifndef OPTIMUS_SRC_RUNTIME_COST_MODEL_H_
#define OPTIMUS_SRC_RUNTIME_COST_MODEL_H_

#include <cstdint>

#include "src/graph/model.h"

namespace optimus {

// Latency of the three model-loading phases the paper measures (Fig. 3).
struct LoadBreakdown {
  double deserialize = 0.0;
  double structure = 0.0;
  double weights = 0.0;

  double Total() const { return deserialize + structure + weights; }
};

class CostModel {
 public:
  virtual ~CostModel() = default;

  // --- Primitive costs (implemented per model) -------------------------------

  // Cost of instantiating one operation's structure in the runtime graph,
  // including the per-op graph-assembly overhead.
  virtual double OpStructureCost(OpKind kind, const OpAttributes& attrs) const = 0;

  // Cost of writing `bytes` of weight data into `tensor_count` resident
  // tensors. Frameworks pay a fixed per-tensor dispatch overhead on top of
  // the byte traffic, which is what keeps weight assignment at ~10% of the
  // load (Fig. 3) even for models with small weights.
  virtual double WeightAssignCost(int64_t bytes, int64_t tensor_count) const = 0;

  // Cost of parsing a serialized model file of `bytes` bytes.
  virtual double DeserializeCost(int64_t bytes) const = 0;

  // Cost of reshaping an op's weight storage from `src` to `dst` attributes
  // (crop/zero-pad copies); excludes the subsequent weight Replace.
  virtual double ReshapeCost(OpKind kind, const OpAttributes& src,
                             const OpAttributes& dst) const = 0;

  // Constant cost of deleting an operation.
  virtual double ReduceCost() const = 0;

  // Cost of one edge modification.
  virtual double EdgeCost() const = 0;

  // Fixed overhead of a Replace meta-operator (on top of the byte traffic).
  virtual double ReplaceOverhead() const = 0;

  // --- Derived costs (shared) ----------------------------------------------

  // Replace = overwrite the op's weights with the destination function's.
  double ReplaceCost(OpKind kind, const OpAttributes& attrs) const;

  // Add = create the op from scratch: structure + weight assignment.
  double AddCost(OpKind kind, const OpAttributes& attrs) const;

  // Full scratch-load latency decomposition for a model.
  LoadBreakdown ModelLoadBreakdown(const Model& model) const;

  // Total scratch-load latency (the safeguard's comparison baseline, §4.4).
  double ScratchLoadCost(const Model& model) const;
};

// Paper-calibrated analytic cost model. Deterministic; used by the planner,
// the plan cache, and the cluster simulator.
class AnalyticCostModel final : public CostModel {
 public:
  double OpStructureCost(OpKind kind, const OpAttributes& attrs) const override;
  double WeightAssignCost(int64_t bytes, int64_t tensor_count) const override;
  double DeserializeCost(int64_t bytes) const override;
  double ReshapeCost(OpKind kind, const OpAttributes& src,
                     const OpAttributes& dst) const override;
  double ReduceCost() const override;
  double EdgeCost() const override;
  double ReplaceOverhead() const override;
};

// System-level phase costs used by the cluster simulator (§8 testbed).
struct SystemProfile {
  // Container sandbox creation (namespace/cgroup/image mount).
  double sandbox_init = 0.30;
  // Language runtime + ML framework import.
  double runtime_init = 0.45;
  // Extra runtime initialization for GPU-enabled containers (driver + CUDA
  // context), per §8.5's observation that GPU init is expensive.
  double gpu_runtime_init = 0.0;
  // Host-to-device weight transfer rate (s/byte); 0 for CPU-only serving.
  double gpu_transfer_per_byte = 0.0;
  // Inference compute speed factor (1.0 = CPU; <1.0 = faster accelerator).
  double compute_scale = 1.0;

  static SystemProfile Cpu() { return SystemProfile{}; }

  static SystemProfile Gpu() {
    SystemProfile profile;
    profile.gpu_runtime_init = 2.2;
    profile.gpu_transfer_per_byte = 0.10e-9;  // ~10 GB/s effective PCIe.
    profile.compute_scale = 0.25;
    return profile;
  }

  // Inference compute latency for one request on `model`.
  double InferenceCost(const Model& model) const;

  // Cold-start initialization before model loading begins.
  double InitCost() const { return sandbox_init + runtime_init + gpu_runtime_init; }

  // Extra per-load cost of moving weights to the device.
  double DeviceTransferCost(const Model& model) const;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_RUNTIME_COST_MODEL_H_
