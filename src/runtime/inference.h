// Forward-pass execution over a loaded model instance.
//
// This executor propagates channel-level activation summaries through the
// computational graph: each operation maps its inputs' per-channel values
// through its weights. It is deliberately lightweight (O(parameters) per
// request) but *real* — outputs are deterministic functions of the resident
// weights, so a transformed container provably serves the destination
// function's model (tests compare transformed-vs-scratch-loaded outputs).

#ifndef OPTIMUS_SRC_RUNTIME_INFERENCE_H_
#define OPTIMUS_SRC_RUNTIME_INFERENCE_H_

#include <vector>

#include "src/runtime/loader.h"

namespace optimus {

// Runs the model on a channel-summary input vector and returns the output
// vector (sized by the final dense layer, or the last op's channel count).
std::vector<float> RunInference(const ModelInstance& instance, const std::vector<float>& input);

// Index of the largest output element ("predicted class").
int ArgMax(const std::vector<float>& values);

}  // namespace optimus

#endif  // OPTIMUS_SRC_RUNTIME_INFERENCE_H_
