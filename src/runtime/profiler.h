// Offline profiling for meta-operators (paper §4.4, Module 1) and the
// measured cost model it produces.
//
// The profiler measures real wall-clock costs of the primitive data paths on
// the current machine (op materialization, weight overwrite, tensor resize,
// file parse) and fits per-kind linear models cost = base + slope * elements.
// Refresh() re-runs the measurements, implementing the online-profiling
// extension discussed in §6.

#ifndef OPTIMUS_SRC_RUNTIME_PROFILER_H_
#define OPTIMUS_SRC_RUNTIME_PROFILER_H_

#include <array>
#include <string>

#include "src/runtime/cost_model.h"

namespace optimus {

// A fitted linear cost: seconds = base + per_element * weight_elements.
struct LinearCost {
  double base = 0.0;
  double per_element = 0.0;

  double Eval(int64_t elements) const {
    return base + per_element * static_cast<double>(elements);
  }
};

// The raw profile produced by measurement; serializable to text for caching.
struct CostProfile {
  std::array<LinearCost, kNumOpKinds> structure;  // Per-kind structure cost.
  double weight_assign_per_byte = 0.0;
  double weight_assign_per_tensor = 0.0;
  double weight_assign_base = 0.0;
  double deserialize_per_byte = 0.0;
  double deserialize_base = 0.0;
  LinearCost reshape;  // Over (src + dst) weight elements.
  double reduce = 0.0;
  double edge = 0.0;
  double replace_overhead = 0.0;

  std::string ToString() const;
};

// Measures a CostProfile on the current machine. `repetitions` controls the
// number of timed iterations per data point (median taken).
CostProfile ProfileMachine(int repetitions = 5);

// CostModel backed by a measured profile.
class MeasuredCostModel final : public CostModel {
 public:
  explicit MeasuredCostModel(CostProfile profile) : profile_(std::move(profile)) {}

  // Re-measures the profile in place (online profiling, §6).
  void Refresh(int repetitions = 5) { profile_ = ProfileMachine(repetitions); }

  const CostProfile& profile() const { return profile_; }

  double OpStructureCost(OpKind kind, const OpAttributes& attrs) const override;
  double WeightAssignCost(int64_t bytes, int64_t tensor_count) const override;
  double DeserializeCost(int64_t bytes) const override;
  double ReshapeCost(OpKind kind, const OpAttributes& src,
                     const OpAttributes& dst) const override;
  double ReduceCost() const override;
  double EdgeCost() const override;
  double ReplaceOverhead() const override;

 private:
  CostProfile profile_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_RUNTIME_PROFILER_H_
