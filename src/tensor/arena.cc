#include "src/tensor/arena.h"

#include <cstring>
#include <stdexcept>

namespace optimus {

namespace {

// 64 bytes = 16 floats: one cache line, and wide enough for any vector ISA
// the compiler may target.
constexpr int64_t kAlignElements = 16;

int64_t AlignUp(int64_t elements) {
  return (elements + kAlignElements - 1) / kAlignElements * kAlignElements;
}

}  // namespace

TensorArena::TensorArena(int64_t slab_elements) : slab_elements_(slab_elements) {
  if (slab_elements < kAlignElements) {
    throw std::invalid_argument("TensorArena: slab_elements must be at least 16");
  }
}

TensorArena::Slab& TensorArena::AddSlab(int64_t min_elements) {
  Slab slab;
  slab.capacity = min_elements > slab_elements_ ? AlignUp(min_elements) : slab_elements_;
  // Value-less new[]: the slab starts uninitialized by design. operator new
  // only guarantees 16-byte alignment, so over-allocate one alignment unit
  // and round the base up to the promised 64-byte boundary.
  slab.data =
      std::unique_ptr<float[]>(new float[static_cast<size_t>(slab.capacity + kAlignElements)]);
  const uintptr_t raw = reinterpret_cast<uintptr_t>(slab.data.get());
  const uintptr_t boundary = kAlignElements * sizeof(float);
  slab.base = reinterpret_cast<float*>((raw + boundary - 1) / boundary * boundary);
  elements_reserved_ += slab.capacity;
  slabs_.push_back(std::move(slab));
  return slabs_.back();
}

float* TensorArena::Allocate(int64_t elements) {
  if (elements < 0) {
    throw std::invalid_argument("TensorArena::Allocate: negative element count");
  }
  const int64_t need = AlignUp(elements);
  while (active_slab_ < slabs_.size()) {
    Slab& slab = slabs_[active_slab_];
    if (slab.capacity - slab.used >= need) {
      float* out = slab.base + slab.used;
      slab.used += need;
      elements_used_ += need;
      return out;
    }
    // The remaining tail is too small; move on (waste bounded by one
    // allocation per slab, reclaimed at the next Reset).
    ++active_slab_;
  }
  Slab& slab = AddSlab(need);
  float* out = slab.base;
  slab.used = need;
  elements_used_ += need;
  return out;
}

float* TensorArena::AllocateZeroed(int64_t elements) {
  float* out = Allocate(elements);
  std::memset(out, 0, static_cast<size_t>(elements) * sizeof(float));
  return out;
}

void TensorArena::Reset() {
  for (Slab& slab : slabs_) {
    slab.used = 0;
  }
  active_slab_ = 0;
  elements_used_ = 0;
  ++generation_;
}

bool TensorArena::Owns(const float* ptr) const {
  for (const Slab& slab : slabs_) {
    if (ptr >= slab.base && ptr < slab.base + slab.capacity) {
      return true;
    }
  }
  return false;
}

}  // namespace optimus
