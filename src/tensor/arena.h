// TensorArena — a slab/bump allocator backing zero-copy tensor storage.
//
// The five meta-operators move real weight bytes; with plain heap-owned
// tensors every scratch load and every Reshape/Add allocates (and
// zero-initializes) fresh vectors, so transformation speed is bounded by
// allocator churn rather than memory bandwidth. An arena pre-reserves large
// slabs once, hands out 64-byte-aligned uninitialized runs with a pointer
// bump, and recycles the whole reservation with Reset() when the owning
// container turns over — no per-tensor free, no zero-fill unless asked.
//
// Ownership and lifetime rules (DESIGN.md §14):
//   * Arena-backed Tensors are views: pointer + shape into arena memory. They
//     must not outlive the arena, and Reset() invalidates every outstanding
//     view (generation() lets tests assert this).
//   * An arena serves one container and is only touched under that
//     container's node lock — it is deliberately NOT thread-safe.
//   * Allocation never fails into a half state: an oversized request gets a
//     dedicated slab; std::bad_alloc propagates before any bookkeeping moves.

#ifndef OPTIMUS_SRC_TENSOR_ARENA_H_
#define OPTIMUS_SRC_TENSOR_ARENA_H_

#include <cstdint>
#include <memory>
#include <vector>

namespace optimus {

class TensorArena {
 public:
  // Default slab: 4 MiB of float32 — large enough that a BERT-size op's
  // weights rarely straddle slabs, small enough to keep idle containers lean.
  static constexpr int64_t kDefaultSlabElements = int64_t{1} << 20;

  explicit TensorArena(int64_t slab_elements = kDefaultSlabElements);

  // Views hold raw pointers into the slabs, so the arena must stay put.
  TensorArena(const TensorArena&) = delete;
  TensorArena& operator=(const TensorArena&) = delete;

  // Returns a 64-byte-aligned run of `elements` floats. The memory is
  // UNINITIALIZED — callers either overwrite it fully (Replace, FillRandom)
  // or use AllocateZeroed. `elements` may be 0 (returns a valid pointer).
  float* Allocate(int64_t elements);

  // Allocate + memset to 0.0f.
  float* AllocateZeroed(int64_t elements);

  // Recycles every slab for reuse and bumps the generation. Invalidates all
  // outstanding views — callers must guarantee none are live (the platform
  // only resets between container generations).
  void Reset();

  // Floats handed out since the last Reset (includes alignment padding).
  int64_t elements_used() const { return elements_used_; }
  int64_t bytes_used() const { return elements_used_ * static_cast<int64_t>(sizeof(float)); }

  // Total reserved capacity across slabs.
  int64_t elements_reserved() const { return elements_reserved_; }
  int64_t bytes_reserved() const {
    return elements_reserved_ * static_cast<int64_t>(sizeof(float));
  }

  size_t num_slabs() const { return slabs_.size(); }

  // Incremented by every Reset; tests use it to pin view invalidation.
  uint64_t generation() const { return generation_; }

  // True when `ptr` points into this arena's current reservation — the
  // aliasing oracle behind the view-vs-copy tests.
  bool Owns(const float* ptr) const;

 private:
  struct Slab {
    std::unique_ptr<float[]> data;  // Raw allocation (capacity + padding).
    float* base = nullptr;          // First 64-byte-aligned element of data.
    int64_t capacity = 0;           // Elements usable from base.
    int64_t used = 0;               // Elements handed out from this slab.
  };

  // Adds a slab of at least `min_elements` (rounded up to slab_elements_).
  Slab& AddSlab(int64_t min_elements);

  int64_t slab_elements_;
  int64_t elements_used_ = 0;
  int64_t elements_reserved_ = 0;
  uint64_t generation_ = 0;
  std::vector<Slab> slabs_;
  // Index of the slab currently being bumped; slabs before it may retain
  // unusable tails (bounded by one allocation each).
  size_t active_slab_ = 0;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_TENSOR_ARENA_H_
