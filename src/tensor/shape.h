// Dense tensor shapes.

#ifndef OPTIMUS_SRC_TENSOR_SHAPE_H_
#define OPTIMUS_SRC_TENSOR_SHAPE_H_

#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace optimus {

// The shape of a dense tensor: an ordered list of non-negative dimensions.
// A rank-0 shape describes a scalar with one element.
class Shape {
 public:
  Shape() = default;
  Shape(std::initializer_list<int64_t> dims) : dims_(dims) {}
  explicit Shape(std::vector<int64_t> dims) : dims_(std::move(dims)) {}

  int Rank() const { return static_cast<int>(dims_.size()); }
  int64_t Dim(int axis) const { return dims_[static_cast<size_t>(axis)]; }
  const std::vector<int64_t>& dims() const { return dims_; }

  // Total number of elements (product of dimensions; 1 for a scalar).
  int64_t NumElements() const;

  // Human-readable form, e.g. "[3, 3, 64, 128]".
  std::string ToString() const;

  bool operator==(const Shape& other) const { return dims_ == other.dims_; }
  bool operator!=(const Shape& other) const { return !(*this == other); }

 private:
  std::vector<int64_t> dims_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_TENSOR_SHAPE_H_
