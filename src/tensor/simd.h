// SIMD data-movement kernels for the meta-operator hot path (DESIGN.md §14).
//
// Large weight copies are bandwidth-bound, and ordinary stores pay a hidden
// read-for-ownership: the cache line being overwritten is first read from
// memory, so an N-byte copy moves ~3N bytes of bus traffic. Non-temporal
// (streaming) stores skip the read and the cache fill, cutting a large copy
// to ~2N and leaving the cache untouched for the model that is about to run.
//
// Both kernels fall back to memcpy/memset when the buffer is small (where
// cache-resident stores win and the sfence would dominate) or when the
// destination is not 16-byte aligned. TensorArena hands out 64-byte-aligned
// slots, so arena-backed tensors always take the streaming path at size.

#ifndef OPTIMUS_SRC_TENSOR_SIMD_H_
#define OPTIMUS_SRC_TENSOR_SIMD_H_

#include <cstdint>

namespace optimus {
namespace simd {

// Streaming kicks in at 1 MiB of floats: comfortably past the per-core cache,
// where avoiding read-for-ownership beats keeping the lines warm.
inline constexpr int64_t kStreamingMinElements = int64_t{1} << 18;

// Copies `count` floats from `src` to `dst` (must not overlap). Uses
// non-temporal stores for large aligned destinations, memcpy otherwise.
void CopyFloats(float* dst, const float* src, int64_t count);

// Zeroes `count` floats at `dst`. Streaming-store counterpart of memset.
void ZeroFloats(float* dst, int64_t count);

// True when a (dst, count) pair takes the streaming path — exposed so tests
// can pin both sides of the size/alignment gate.
bool UsesStreamingStores(const float* dst, int64_t count);

}  // namespace simd
}  // namespace optimus

#endif  // OPTIMUS_SRC_TENSOR_SIMD_H_
