#include "src/tensor/tensor.h"

#include <numeric>

namespace optimus {

Tensor::Tensor(const Shape& shape)
    : shape_(shape), data_(static_cast<size_t>(shape.NumElements()), 0.0f) {}

Tensor::Tensor(const Shape& shape, float fill)
    : shape_(shape), data_(static_cast<size_t>(shape.NumElements()), fill) {}

void Tensor::FillRandom(Rng* rng, float scale) {
  for (auto& value : data_) {
    value = static_cast<float>(rng->Normal(0.0, scale));
  }
}

bool Tensor::ElementsEqual(const Tensor& other) const {
  return shape_ == other.shape_ && data_ == other.data_;
}

double Tensor::Sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0); }

}  // namespace optimus
