#include "src/tensor/tensor.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

#include "src/tensor/simd.h"

namespace optimus {

void Tensor::AllocateHeap(bool zeroed) {
  const size_t count = static_cast<size_t>(num_elements_);
  owned_ = zeroed ? std::unique_ptr<float[]>(new float[count]())
                  : std::unique_ptr<float[]>(new float[count]);
  data_ = owned_.get();
  capacity_ = num_elements_;
}

Tensor::Tensor(const Shape& shape) : shape_(shape), num_elements_(shape.NumElements()) {
  AllocateHeap(/*zeroed=*/true);
}

Tensor::Tensor(const Shape& shape, float fill)
    : shape_(shape), num_elements_(shape.NumElements()) {
  AllocateHeap(/*zeroed=*/false);
  std::fill(data_, data_ + num_elements_, fill);
}

Tensor::Tensor(const Shape& shape, TensorArena* arena)
    : shape_(shape), num_elements_(shape.NumElements()) {
  if (arena == nullptr) {
    AllocateHeap(/*zeroed=*/true);
    return;
  }
  data_ = arena->AllocateZeroed(num_elements_);
  capacity_ = num_elements_;
}

Tensor::Tensor(const Shape& shape, TensorArena* arena, UninitTag)
    : shape_(shape), num_elements_(shape.NumElements()) {
  if (arena == nullptr) {
    AllocateHeap(/*zeroed=*/false);
    return;
  }
  data_ = arena->Allocate(num_elements_);
  capacity_ = num_elements_;
}

Tensor Tensor::Uninitialized(const Shape& shape, TensorArena* arena) {
  return Tensor(shape, arena, UninitTag{});
}

Tensor Tensor::AliasOf(const Tensor& src) {
  Tensor alias(Shape{}, nullptr, UninitTag{});
  alias.shape_ = src.shape_;
  alias.num_elements_ = src.num_elements_;
  // Capacity is pinned to the element count: an alias never grows into the
  // source's spare capacity (that space belongs to the source).
  alias.capacity_ = src.num_elements_;
  alias.data_ = src.data_;
  alias.owned_.reset();
  alias.aliased_ = true;
  return alias;
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), num_elements_(other.num_elements_) {
  AllocateHeap(/*zeroed=*/false);
  simd::CopyFloats(data_, other.data_, num_elements_);
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) {
    return *this;
  }
  shape_ = other.shape_;
  num_elements_ = other.num_elements_;
  AllocateHeap(/*zeroed=*/false);
  simd::CopyFloats(data_, other.data_, num_elements_);
  aliased_ = false;
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      num_elements_(other.num_elements_),
      capacity_(other.capacity_),
      data_(other.data_),
      owned_(std::move(other.owned_)),
      aliased_(other.aliased_) {
  other.shape_ = Shape{};
  other.num_elements_ = 0;
  other.capacity_ = 0;
  other.data_ = nullptr;
  other.aliased_ = false;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) {
    return *this;
  }
  shape_ = std::move(other.shape_);
  num_elements_ = other.num_elements_;
  capacity_ = other.capacity_;
  data_ = other.data_;
  owned_ = std::move(other.owned_);
  aliased_ = other.aliased_;
  other.shape_ = Shape{};
  other.num_elements_ = 0;
  other.capacity_ = 0;
  other.data_ = nullptr;
  other.aliased_ = false;
  return *this;
}

void Tensor::SetShapeInPlace(const Shape& new_shape) {
  if (aliased_) {
    throw std::logic_error("Tensor::SetShapeInPlace: cannot relabel an aliased view; "
                           "the storage belongs to the source tensor");
  }
  const int64_t new_elements = new_shape.NumElements();
  if (new_elements > capacity_) {
    throw std::invalid_argument("Tensor::SetShapeInPlace: " + new_shape.ToString() +
                                " needs " + std::to_string(new_elements) +
                                " elements but capacity is " + std::to_string(capacity_));
  }
  shape_ = new_shape;
  num_elements_ = new_elements;
}

void Tensor::Detach() {
  if (owned_ != nullptr || data_ == nullptr) {
    return;  // Already heap-owned (or empty).
  }
  const float* view = data_;
  num_elements_ = shape_.NumElements();
  AllocateHeap(/*zeroed=*/false);
  simd::CopyFloats(data_, view, num_elements_);
  aliased_ = false;
}

void Tensor::MoveTo(TensorArena* arena) {
  if (arena == nullptr || data_ == nullptr) {
    return;
  }
  float* slot = arena->Allocate(num_elements_);
  simd::CopyFloats(slot, data_, num_elements_);
  data_ = slot;
  capacity_ = num_elements_;
  owned_.reset();
  aliased_ = false;
}

void Tensor::FillRandom(Rng* rng, float scale) {
  for (int64_t i = 0; i < num_elements_; ++i) {
    data_[i] = static_cast<float>(rng->Normal(0.0, scale));
  }
}

bool Tensor::ElementsEqual(const Tensor& other) const {
  return shape_ == other.shape_ &&
         std::equal(data_, data_ + num_elements_, other.data_);
}

double Tensor::Sum() const {
  double sum = 0.0;
  for (int64_t i = 0; i < num_elements_; ++i) {
    sum += data_[i];
  }
  return sum;
}

}  // namespace optimus
