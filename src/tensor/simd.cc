#include "src/tensor/simd.h"

#include <cstring>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace optimus {
namespace simd {

namespace {

inline bool Aligned16(const void* ptr) {
  return (reinterpret_cast<uintptr_t>(ptr) & 0xF) == 0;
}

}  // namespace

bool UsesStreamingStores(const float* dst, int64_t count) {
#if defined(__SSE2__)
  return count >= kStreamingMinElements && Aligned16(dst);
#else
  (void)dst;
  (void)count;
  return false;
#endif
}

void CopyFloats(float* dst, const float* src, int64_t count) {
#if defined(__SSE2__)
  if (UsesStreamingStores(dst, count)) {
    // Four 16-byte stores per iteration; the tail (< 16 floats) goes through
    // memcpy after the fence.
    const int64_t vec = count & ~int64_t{15};
    int64_t i = 0;
    if (Aligned16(src)) {
      for (; i < vec; i += 16) {
        _mm_stream_ps(dst + i, _mm_load_ps(src + i));
        _mm_stream_ps(dst + i + 4, _mm_load_ps(src + i + 4));
        _mm_stream_ps(dst + i + 8, _mm_load_ps(src + i + 8));
        _mm_stream_ps(dst + i + 12, _mm_load_ps(src + i + 12));
      }
    } else {
      for (; i < vec; i += 16) {
        _mm_stream_ps(dst + i, _mm_loadu_ps(src + i));
        _mm_stream_ps(dst + i + 4, _mm_loadu_ps(src + i + 4));
        _mm_stream_ps(dst + i + 8, _mm_loadu_ps(src + i + 8));
        _mm_stream_ps(dst + i + 12, _mm_loadu_ps(src + i + 12));
      }
    }
    // Order the streaming stores before any subsequent load of the buffer.
    _mm_sfence();
    if (count > vec) {
      std::memcpy(dst + vec, src + vec, static_cast<size_t>(count - vec) * sizeof(float));
    }
    return;
  }
#endif
  std::memcpy(dst, src, static_cast<size_t>(count) * sizeof(float));
}

void ZeroFloats(float* dst, int64_t count) {
#if defined(__SSE2__)
  if (UsesStreamingStores(dst, count)) {
    const __m128 zero = _mm_setzero_ps();
    const int64_t vec = count & ~int64_t{15};
    for (int64_t i = 0; i < vec; i += 16) {
      _mm_stream_ps(dst + i, zero);
      _mm_stream_ps(dst + i + 4, zero);
      _mm_stream_ps(dst + i + 8, zero);
      _mm_stream_ps(dst + i + 12, zero);
    }
    _mm_sfence();
    if (count > vec) {
      std::memset(dst + vec, 0, static_cast<size_t>(count - vec) * sizeof(float));
    }
    return;
  }
#endif
  std::memset(dst, 0, static_cast<size_t>(count) * sizeof(float));
}

}  // namespace simd
}  // namespace optimus
