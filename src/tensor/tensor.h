// A minimal dense float32 tensor.
//
// This is the weight substrate for model operations: meta-operators such as
// Replace and Reshape perform real memory traffic (copy / pad / crop) over
// Tensor storage, which is what gives transformation its size-dependent and
// asymmetric cost behaviour.

#ifndef OPTIMUS_SRC_TENSOR_TENSOR_H_
#define OPTIMUS_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/shape.h"

namespace optimus {

// Owns a contiguous row-major float32 buffer described by a Shape.
class Tensor {
 public:
  // An empty (rank-0, zero-filled scalar) tensor.
  Tensor() : shape_({}), data_(1, 0.0f) {}

  // Zero-initialized tensor of the given shape.
  explicit Tensor(const Shape& shape);

  // Tensor filled with a constant.
  Tensor(const Shape& shape, float fill);

  const Shape& shape() const { return shape_; }
  int64_t NumElements() const { return static_cast<int64_t>(data_.size()); }
  int64_t SizeBytes() const { return NumElements() * static_cast<int64_t>(sizeof(float)); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float At(int64_t flat_index) const { return data_[static_cast<size_t>(flat_index)]; }
  void Set(int64_t flat_index, float value) { data_[static_cast<size_t>(flat_index)] = value; }

  // Fills with deterministic pseudo-random weights drawn from N(0, scale).
  void FillRandom(Rng* rng, float scale = 0.05f);

  // Element-wise equality.
  bool ElementsEqual(const Tensor& other) const;

  // Sum of all elements (used by the toy forward pass and tests).
  double Sum() const;

 private:
  Shape shape_;
  std::vector<float> data_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_TENSOR_TENSOR_H_
