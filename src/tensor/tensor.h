// A minimal dense float32 tensor over pluggable storage.
//
// This is the weight substrate for model operations: meta-operators such as
// Replace and Reshape perform real memory traffic (copy / pad / crop) over
// Tensor storage, which is what gives transformation its size-dependent and
// asymmetric cost behaviour.
//
// Storage model (DESIGN.md §14): a Tensor is a shape plus a pointer to a
// contiguous row-major float buffer. The buffer is either
//   * heap-owned   — the tensor holds a unique_ptr to its own allocation
//                    (the default, and what every copy produces), or
//   * arena-backed — the tensor is a zero-copy view into a TensorArena slab
//                    owned by the serving container; the view must not
//                    outlive the arena and dies with the arena's Reset(), or
//   * aliased      — a read-only view of ANOTHER tensor's storage (AliasOf).
//                    This is what makes Replace a pointer swap: a container's
//                    weights alias the repository's immutable deployed model
//                    instead of copying it. The alias must not outlive the
//                    source buffer, and its storage must never be written
//                    through (in-place mutation entry points refuse).
// Copies always deep-copy into fresh heap storage (a copy never silently
// aliases or extends arena memory); moves transfer the view/ownership as-is.

#ifndef OPTIMUS_SRC_TENSOR_TENSOR_H_
#define OPTIMUS_SRC_TENSOR_TENSOR_H_

#include <cstdint>
#include <memory>

#include "src/common/rng.h"
#include "src/tensor/arena.h"
#include "src/tensor/shape.h"

namespace optimus {

class Tensor {
 public:
  // An empty (rank-0, zero-filled scalar) tensor.
  Tensor() : Tensor(Shape{}) {}

  // Zero-initialized heap tensor of the given shape.
  explicit Tensor(const Shape& shape);

  // Heap tensor filled with a constant.
  Tensor(const Shape& shape, float fill);

  // Zero-initialized tensor allocated from `arena` (heap when arena is null).
  Tensor(const Shape& shape, TensorArena* arena);

  // Tensor with UNINITIALIZED contents, from `arena` (heap when null). The
  // caller must overwrite every element before reading (Replace's memcpy,
  // FillRandom) — the fast path that skips the zero-fill the heap
  // constructors pay.
  static Tensor Uninitialized(const Shape& shape, TensorArena* arena);

  // Zero-copy view of `src`'s storage (shape and data shared, nothing
  // allocated). The alias treats the shared buffer as READ-ONLY and must not
  // outlive it; use Detach() to sever the dependency. In-place mutation
  // (SetShapeInPlace, ResizeToShapeInPlace) refuses on aliases so a
  // container can never scribble over the repository's deployed weights.
  static Tensor AliasOf(const Tensor& src);

  // Copies deep-copy into fresh heap storage; an arena view never propagates
  // through a copy.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);

  // Moves transfer the storage (or the arena view) verbatim; the moved-from
  // tensor is left empty and must only be destroyed or assigned to.
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;

  ~Tensor() = default;

  const Shape& shape() const { return shape_; }
  int64_t NumElements() const { return num_elements_; }
  int64_t SizeBytes() const { return num_elements_ * static_cast<int64_t>(sizeof(float)); }

  float* data() { return data_; }
  const float* data() const { return data_; }

  float At(int64_t flat_index) const { return data_[flat_index]; }
  void Set(int64_t flat_index, float value) { data_[flat_index] = value; }

  // True when this tensor is a view into arena memory (it does not own its
  // buffer).
  bool arena_backed() const { return data_ != nullptr && owned_ == nullptr && !aliased_; }

  // True when this tensor is a read-only view of another tensor's storage.
  bool aliased() const { return aliased_; }

  // Elements available at data() — at least NumElements(). A metadata-only
  // reshape may shrink NumElements below capacity and later grow back into it.
  int64_t capacity() const { return capacity_; }

  // Re-labels the buffer with a new shape without moving data. Requires
  // new_shape.NumElements() <= capacity(); contents beyond the old element
  // count are left as-is (callers zero them when growing). This is what makes
  // compatible-layout Reshape metadata-only.
  void SetShapeInPlace(const Shape& new_shape);

  // Ensures heap-owned storage: an arena view or alias is deep-copied into
  // fresh heap memory; a heap tensor is untouched.
  void Detach();

  // Copies the contents into `arena` and drops heap ownership, turning this
  // tensor into an arena view. No-op when arena is null or already the
  // backing store cannot be known — callers pair this with Detach() in
  // ModelInstance repacking.
  void MoveTo(TensorArena* arena);

  // Fills with deterministic pseudo-random weights drawn from N(0, scale).
  void FillRandom(Rng* rng, float scale = 0.05f);

  // Element-wise equality; backing storage (heap vs arena) is irrelevant.
  bool ElementsEqual(const Tensor& other) const;

  // Sum of all elements (used by the toy forward pass and tests).
  double Sum() const;

 private:
  // Tag for the uninitialized-storage constructor.
  struct UninitTag {};
  Tensor(const Shape& shape, TensorArena* arena, UninitTag);

  void AllocateHeap(bool zeroed);

  Shape shape_;
  int64_t num_elements_ = 0;
  int64_t capacity_ = 0;
  float* data_ = nullptr;                // Points into owned_, arena, or aliased memory.
  std::unique_ptr<float[]> owned_;       // Null when arena-backed/aliased (or empty).
  bool aliased_ = false;                 // True for AliasOf views (read-only storage).
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_TENSOR_TENSOR_H_
