#include "src/tensor/shape.h"

#include <sstream>

namespace optimus {

int64_t Shape::NumElements() const {
  int64_t count = 1;
  for (int64_t d : dims_) {
    count *= d;
  }
  return count;
}

std::string Shape::ToString() const {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < dims_.size(); ++i) {
    if (i > 0) {
      out << ", ";
    }
    out << dims_[i];
  }
  out << "]";
  return out.str();
}

}  // namespace optimus
