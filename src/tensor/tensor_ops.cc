#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>

namespace optimus {

Tensor CopyTensor(const Tensor& src) {
  Tensor out(src.shape());
  std::memcpy(out.data(), src.data(), static_cast<size_t>(src.SizeBytes()));
  return out;
}

void OverwriteTensor(const Tensor& src, Tensor* dst) {
  if (src.shape() != dst->shape()) {
    throw std::invalid_argument("OverwriteTensor: shape mismatch " + src.shape().ToString() +
                                " vs " + dst->shape().ToString());
  }
  std::memcpy(dst->data(), src.data(), static_cast<size_t>(src.SizeBytes()));
}

namespace {

// Recursively copies the overlap box. `axis` walks the dimensions; `src_base`
// and `dst_base` are flat offsets into the respective buffers.
void CopyOverlap(const Tensor& src, Tensor* dst, const std::vector<int64_t>& src_strides,
                 const std::vector<int64_t>& dst_strides, const std::vector<int64_t>& overlap,
                 int axis, int64_t src_base, int64_t dst_base) {
  if (axis == static_cast<int>(overlap.size()) - 1) {
    // Innermost dimension is contiguous in both tensors: one memcpy.
    std::memcpy(dst->data() + dst_base, src.data() + src_base,
                static_cast<size_t>(overlap[static_cast<size_t>(axis)]) * sizeof(float));
    return;
  }
  for (int64_t i = 0; i < overlap[static_cast<size_t>(axis)]; ++i) {
    CopyOverlap(src, dst, src_strides, dst_strides, overlap, axis + 1,
                src_base + i * src_strides[static_cast<size_t>(axis)],
                dst_base + i * dst_strides[static_cast<size_t>(axis)]);
  }
}

std::vector<int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<int64_t> strides(static_cast<size_t>(shape.Rank()), 1);
  for (int axis = shape.Rank() - 2; axis >= 0; --axis) {
    strides[static_cast<size_t>(axis)] =
        strides[static_cast<size_t>(axis) + 1] * shape.Dim(axis + 1);
  }
  return strides;
}

}  // namespace

Tensor ResizeToShape(const Tensor& src, const Shape& target) {
  if (src.shape().Rank() != target.Rank()) {
    throw std::invalid_argument("ResizeToShape: rank mismatch " + src.shape().ToString() +
                                " vs " + target.ToString());
  }
  Tensor out(target);
  if (target.Rank() == 0) {
    out.Set(0, src.At(0));
    return out;
  }
  std::vector<int64_t> overlap(static_cast<size_t>(target.Rank()));
  for (int axis = 0; axis < target.Rank(); ++axis) {
    overlap[static_cast<size_t>(axis)] = std::min(src.shape().Dim(axis), target.Dim(axis));
    if (overlap[static_cast<size_t>(axis)] == 0) {
      return out;
    }
  }
  CopyOverlap(src, &out, RowMajorStrides(src.shape()), RowMajorStrides(target), overlap, 0, 0, 0);
  return out;
}

int64_t OverlapElements(const Shape& a, const Shape& b) {
  if (a.Rank() != b.Rank()) {
    return 0;
  }
  int64_t count = 1;
  for (int axis = 0; axis < a.Rank(); ++axis) {
    count *= std::min(a.Dim(axis), b.Dim(axis));
  }
  return count;
}

}  // namespace optimus
