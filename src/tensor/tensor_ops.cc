#include "src/tensor/tensor_ops.h"

#include <algorithm>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "src/tensor/simd.h"

namespace optimus {

Tensor CopyTensor(const Tensor& src) { return CopyTensor(src, nullptr); }

Tensor CopyTensor(const Tensor& src, TensorArena* arena) {
  Tensor out = Tensor::Uninitialized(src.shape(), arena);
  simd::CopyFloats(out.data(), src.data(), src.NumElements());
  return out;
}

void OverwriteTensor(const Tensor& src, Tensor* dst) {
  if (src.shape() != dst->shape()) {
    throw std::invalid_argument("OverwriteTensor: shape mismatch " + src.shape().ToString() +
                                " vs " + dst->shape().ToString());
  }
  simd::CopyFloats(dst->data(), src.data(), src.NumElements());
}

namespace {

std::vector<int64_t> RowMajorStrides(const Shape& shape) {
  std::vector<int64_t> strides(static_cast<size_t>(shape.Rank()), 1);
  for (int axis = shape.Rank() - 2; axis >= 0; --axis) {
    strides[static_cast<size_t>(axis)] =
        strides[static_cast<size_t>(axis) + 1] * shape.Dim(axis + 1);
  }
  return strides;
}

// Writes one destination block in a single pass: the overlap box is memcpy'd
// as runs of `run_elements` contiguous floats and the padding gaps between
// runs are memset in place. Axes at and below `split_axis` have been
// coalesced into the run (their dimensions match in both layouts, so source
// and destination are contiguous there); only the axes above it need strided
// iteration. `dims` are the destination dimensions.
void ResizeRuns(const float* src, float* dst, const int64_t* src_strides,
                const int64_t* dst_strides, const int64_t* overlap, const int64_t* dims,
                int axis, int split_axis, int64_t run_elements) {
  if (axis == split_axis) {
    simd::CopyFloats(dst, src, run_elements);
    const int64_t block = dims[axis] * dst_strides[axis];
    if (block > run_elements) {
      simd::ZeroFloats(dst + run_elements, block - run_elements);
    }
    return;
  }
  for (int64_t i = 0; i < overlap[axis]; ++i) {
    ResizeRuns(src + i * src_strides[axis], dst + i * dst_strides[axis], src_strides,
               dst_strides, overlap, dims, axis + 1, split_axis, run_elements);
  }
  if (dims[axis] > overlap[axis]) {
    simd::ZeroFloats(dst + overlap[axis] * dst_strides[axis],
                     (dims[axis] - overlap[axis]) * dst_strides[axis]);
  }
}

// Fills the (possibly uninitialized) `dst` from `src` (same rank, possibly
// different shapes): overlap elements are copied, everything else is zeroed.
// Every destination element is written exactly once — a padded resize costs a
// single pass over the output instead of zero-fill plus copy.
void ResizeInto(const Tensor& src, Tensor* dst) {
  const Shape& target = dst->shape();
  const int rank = target.Rank();
  if (rank == 0) {
    dst->Set(0, src.At(0));
    return;
  }
  if (target.NumElements() == 0) {
    return;
  }
  std::vector<int64_t> overlap(static_cast<size_t>(rank));
  std::vector<int64_t> dims(static_cast<size_t>(rank));
  for (int axis = 0; axis < rank; ++axis) {
    overlap[static_cast<size_t>(axis)] = std::min(src.shape().Dim(axis), target.Dim(axis));
    dims[static_cast<size_t>(axis)] = target.Dim(axis);
    if (overlap[static_cast<size_t>(axis)] == 0) {
      // Empty overlap: the whole output is padding.
      simd::ZeroFloats(dst->data(), dst->NumElements());
      return;
    }
  }
  // Deepest axis where the layouts differ: every axis below it has equal
  // dimensions in both tensors, so runs of overlap[split] * (inner block) are
  // contiguous in source and destination alike.
  int split = 0;
  for (int axis = rank - 1; axis >= 0; --axis) {
    if (src.shape().Dim(axis) != target.Dim(axis)) {
      split = axis;
      break;
    }
  }
  int64_t run = overlap[static_cast<size_t>(split)];
  for (int axis = split + 1; axis < rank; ++axis) {
    run *= target.Dim(axis);
  }
  const std::vector<int64_t> src_strides = RowMajorStrides(src.shape());
  const std::vector<int64_t> dst_strides = RowMajorStrides(target);
  ResizeRuns(src.data(), dst->data(), src_strides.data(), dst_strides.data(), overlap.data(),
             dims.data(), 0, split, run);
}

}  // namespace

Tensor ResizeToShape(const Tensor& src, const Shape& target) {
  return ResizeToShape(src, target, nullptr);
}

Tensor ResizeToShape(const Tensor& src, const Shape& target, TensorArena* arena) {
  if (src.shape().Rank() != target.Rank()) {
    throw std::invalid_argument("ResizeToShape: rank mismatch " + src.shape().ToString() +
                                " vs " + target.ToString());
  }
  // ResizeInto writes every output element exactly once (copy runs plus
  // memset pad gaps), so the allocation never needs a zero-fill pass.
  Tensor out = Tensor::Uninitialized(target, arena);
  ResizeInto(src, &out);
  return out;
}

bool ResizeToShapeInPlace(Tensor* tensor, const Shape& target) {
  const Shape& src = tensor->shape();
  if (src.Rank() != target.Rank()) {
    return false;
  }
  if (src == target) {
    return true;
  }
  // An alias's storage is read-only (it belongs to the source tensor); the
  // caller must resize out-of-place into owned storage instead.
  if (tensor->aliased()) {
    return false;
  }
  // Row-major layout: if only the leading dimension changes, the overlap is a
  // contiguous prefix of both layouts and no element needs to move.
  for (int axis = 1; axis < target.Rank(); ++axis) {
    if (src.Dim(axis) != target.Dim(axis)) {
      return false;
    }
  }
  const int64_t new_elements = target.NumElements();
  if (new_elements > tensor->capacity()) {
    return false;
  }
  const int64_t old_elements = tensor->NumElements();
  tensor->SetShapeInPlace(target);
  if (new_elements > old_elements) {
    // Growing: zero only the padded tail; the prefix is reused verbatim.
    std::memset(tensor->data() + old_elements, 0,
                static_cast<size_t>(new_elements - old_elements) * sizeof(float));
  }
  return true;
}

Tensor ResizeToShapeScalar(const Tensor& src, const Shape& target) {
  if (src.shape().Rank() != target.Rank()) {
    throw std::invalid_argument("ResizeToShapeScalar: rank mismatch " + src.shape().ToString() +
                                " vs " + target.ToString());
  }
  Tensor out(target);
  const int rank = target.Rank();
  if (rank == 0) {
    out.Set(0, src.At(0));
    return out;
  }
  const std::vector<int64_t> src_strides = RowMajorStrides(src.shape());
  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  for (int64_t flat = 0; flat < out.NumElements(); ++flat) {
    bool in_overlap = true;
    int64_t src_flat = 0;
    for (int axis = 0; axis < rank; ++axis) {
      if (index[static_cast<size_t>(axis)] >= src.shape().Dim(axis)) {
        in_overlap = false;
        break;
      }
      src_flat += index[static_cast<size_t>(axis)] * src_strides[static_cast<size_t>(axis)];
    }
    if (in_overlap) {
      out.Set(flat, src.At(src_flat));
    }
    for (int axis = rank - 1; axis >= 0; --axis) {
      if (++index[static_cast<size_t>(axis)] < target.Dim(axis)) {
        break;
      }
      index[static_cast<size_t>(axis)] = 0;
    }
  }
  return out;
}

int64_t OverlapElements(const Shape& a, const Shape& b) {
  if (a.Rank() != b.Rank()) {
    return 0;
  }
  int64_t count = 1;
  for (int axis = 0; axis < a.Rank(); ++axis) {
    count *= std::min(a.Dim(axis), b.Dim(axis));
  }
  return count;
}

}  // namespace optimus
