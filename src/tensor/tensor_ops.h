// Tensor transformation primitives used by the in-container meta-operators.
//
// ResizeToShape is the workhorse behind the Reshape meta-operator: it embeds
// the overlapping region of the source tensor into a tensor of the destination
// shape (cropping dimensions that shrink, zero-padding dimensions that grow),
// so existing weights are reused rather than regenerated.
//
// The copy kernel coalesces the overlap into the longest contiguous runs both
// layouts share (DESIGN.md §14): when only leading dimensions differ, the
// whole overlap is a single memcpy; a pure crop skips the zero-fill entirely.
// ResizeToShapeScalar is the deliberately naive per-element reference that the
// vectorized paths are tested against.

#ifndef OPTIMUS_SRC_TENSOR_TENSOR_OPS_H_
#define OPTIMUS_SRC_TENSOR_TENSOR_OPS_H_

#include <cstdint>

#include "src/tensor/arena.h"
#include "src/tensor/tensor.h"

namespace optimus {

// Deep copy of `src` into a new heap tensor.
Tensor CopyTensor(const Tensor& src);

// Deep copy of `src` into storage from `arena` (heap when arena is null).
Tensor CopyTensor(const Tensor& src, TensorArena* arena);

// Overwrites the contents of `dst` with the contents of `src`.
// Requires identical shapes. This is the Replace meta-operator's data path.
void OverwriteTensor(const Tensor& src, Tensor* dst);

// Returns a tensor of `target` shape containing the overlap of `src` (the
// elements whose indices are valid in both shapes), with all other elements
// zero. Source and target must have the same rank. This is the Reshape
// meta-operator's data path (crop and/or zero-pad per dimension).
Tensor ResizeToShape(const Tensor& src, const Shape& target);

// Same, but the result is allocated from `arena` (heap when arena is null).
Tensor ResizeToShape(const Tensor& src, const Shape& target, TensorArena* arena);

// Reshapes `tensor` to `target` without moving any data, when the layouts
// permit it: same rank, all dimensions except the leading one unchanged, and
// the target fits in the buffer's capacity. Shrinking is a pure shape relabel;
// growing zero-fills only the new tail. Returns false (tensor untouched) when
// the layouts are incompatible — callers fall back to ResizeToShape.
bool ResizeToShapeInPlace(Tensor* tensor, const Shape& target);

// Per-element reference implementation of ResizeToShape: no memcpy, no run
// coalescing. Exists as the correctness oracle for the vectorized kernels.
Tensor ResizeToShapeScalar(const Tensor& src, const Shape& target);

// Number of elements copied by ResizeToShape (the size of the overlap box).
int64_t OverlapElements(const Shape& a, const Shape& b);

}  // namespace optimus

#endif  // OPTIMUS_SRC_TENSOR_TENSOR_OPS_H_
