// Tensor transformation primitives used by the in-container meta-operators.
//
// ResizeToShape is the workhorse behind the Reshape meta-operator: it embeds
// the overlapping region of the source tensor into a tensor of the destination
// shape (cropping dimensions that shrink, zero-padding dimensions that grow),
// so existing weights are reused rather than regenerated.

#ifndef OPTIMUS_SRC_TENSOR_TENSOR_OPS_H_
#define OPTIMUS_SRC_TENSOR_TENSOR_OPS_H_

#include "src/tensor/tensor.h"

namespace optimus {

// Deep copy of `src` into a new tensor.
Tensor CopyTensor(const Tensor& src);

// Overwrites the contents of `dst` with the contents of `src`.
// Requires identical shapes. This is the Replace meta-operator's data path.
void OverwriteTensor(const Tensor& src, Tensor* dst);

// Returns a tensor of `target` shape containing the overlap of `src` (the
// elements whose indices are valid in both shapes), with all other elements
// zero. Source and target must have the same rank. This is the Reshape
// meta-operator's data path (crop and/or zero-pad per dimension).
Tensor ResizeToShape(const Tensor& src, const Shape& target);

// Number of elements copied by ResizeToShape (the size of the overlap box).
int64_t OverlapElements(const Shape& a, const Shape& b);

}  // namespace optimus

#endif  // OPTIMUS_SRC_TENSOR_TENSOR_OPS_H_
