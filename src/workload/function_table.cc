#include "src/workload/function_table.h"

namespace optimus {

FunctionId FunctionTable::Intern(const std::string& name) {
  const auto it = ids_.find(std::string_view(name));
  if (it != ids_.end()) {
    return it->second;
  }
  const FunctionId id = static_cast<FunctionId>(names_.size());
  names_.push_back(name);
  // The string_view key points into the deque-owned string, which never
  // moves; the map entry therefore stays valid for the table's lifetime.
  ids_.emplace(std::string_view(names_.back()), id);
  return id;
}

FunctionId FunctionTable::Find(const std::string& name) const {
  const auto it = ids_.find(std::string_view(name));
  return it == ids_.end() ? kInvalidFunction : it->second;
}

}  // namespace optimus
