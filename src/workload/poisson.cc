#include "src/workload/poisson.h"

#include <cmath>

#include "src/common/rng.h"

namespace optimus {

double RateFor(RateClass rate_class) {
  switch (rate_class) {
    case RateClass::kFrequent:
      return std::pow(10.0, -1.5);  // ~1 request / 32 s.
    case RateClass::kMiddle:
      return std::pow(10.0, -2.0);  // ~1 request / 100 s.
    case RateClass::kInfrequent:
      return std::pow(10.0, -2.5);  // ~1 request / 316 s.
  }
  return 0.0;
}

Trace GeneratePoissonTrace(const std::string& function, RateClass rate_class,
                           const PoissonTraceOptions& options) {
  Trace trace;
  Rng rng(options.seed);
  const double rate = RateFor(rate_class);
  double t = rng.Exponential(rate);
  while (t < options.horizon_seconds) {
    trace.push_back({t, function});
    t += rng.Exponential(rate);
  }
  return trace;
}

Trace GenerateMixedPoissonTrace(const std::vector<std::string>& functions,
                                const PoissonTraceOptions& options) {
  std::vector<Trace> traces;
  Rng seeder(options.seed);
  for (size_t i = 0; i < functions.size(); ++i) {
    const auto rate_class = static_cast<RateClass>(i % 3);
    PoissonTraceOptions per_function = options;
    per_function.seed = seeder.NextU64();
    traces.push_back(GeneratePoissonTrace(functions[i], rate_class, per_function));
  }
  return MergeTraces(traces);
}

}  // namespace optimus
