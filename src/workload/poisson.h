// Poisson arrival generation (paper §8.1): each function receives queries
// following a Poisson process; functions are split across frequent, middle,
// and infrequent rate classes.

#ifndef OPTIMUS_SRC_WORKLOAD_POISSON_H_
#define OPTIMUS_SRC_WORKLOAD_POISSON_H_

#include <cstdint>

#include "src/workload/trace.h"

namespace optimus {

enum class RateClass : uint8_t { kFrequent = 0, kMiddle, kInfrequent };

// Arrival rates in requests/second for each class. Calibrated so that, over a
// multi-hour horizon with a 10-minute keep-alive, frequent functions mostly
// warm-start, middle functions mix warm and cold, and infrequent functions
// mostly cold-start — matching the paper's intent for the three lambdas.
double RateFor(RateClass rate_class);

struct PoissonTraceOptions {
  double horizon_seconds = 4.0 * 3600;
  uint64_t seed = 1;
};

// Generates a Poisson trace for one function.
Trace GeneratePoissonTrace(const std::string& function, RateClass rate_class,
                           const PoissonTraceOptions& options);

// Generates a merged trace for many functions, assigning classes round-robin
// (frequent, middle, infrequent, frequent, ...).
Trace GenerateMixedPoissonTrace(const std::vector<std::string>& functions,
                                const PoissonTraceOptions& options);

}  // namespace optimus

#endif  // OPTIMUS_SRC_WORKLOAD_POISSON_H_
