#include "src/workload/azure.h"

#include <cmath>

#include "src/common/rng.h"

namespace optimus {

namespace {

constexpr double kDaySeconds = 24.0 * 3600;

// Diurnal modulation: load peaks mid-day, troughs at night.
double Diurnal(double t) {
  return 0.75 + 0.25 * std::sin(2.0 * M_PI * t / kDaySeconds - M_PI / 2.0);
}

Trace GeneratePeriodic(const std::string& function, double rate, double horizon, Rng* rng) {
  // Timer-triggered function: near-regular period with small jitter.
  Trace trace;
  const double period = 1.0 / rate;
  double t = rng->Uniform(0.0, period);
  while (t < horizon) {
    trace.push_back({t, function});
    t += period * rng->Uniform(0.9, 1.1);
  }
  return trace;
}

Trace GenerateBursty(const std::string& function, double rate, double horizon, Rng* rng) {
  // On/off phases: quiet stretches punctuated by dense bursts.
  Trace trace;
  double t = 0.0;
  while (t < horizon) {
    // Off phase.
    t += rng->Exponential(1.0 / 900.0);  // Mean 15 min quiet.
    if (t >= horizon) {
      break;
    }
    // Burst: a cluster of arrivals at ~20x the base rate.
    const int64_t burst_size = 1 + rng->Poisson(rate * 600.0);
    double burst_t = t;
    for (int64_t i = 0; i < burst_size && burst_t < horizon; ++i) {
      trace.push_back({burst_t, function});
      burst_t += rng->Exponential(rate * 20.0);
    }
    t = burst_t;
  }
  return trace;
}

Trace GenerateSporadic(const std::string& function, double rate, double horizon, Rng* rng) {
  // Rare Poisson arrivals with diurnal thinning.
  Trace trace;
  double t = rng->Exponential(rate);
  while (t < horizon) {
    if (rng->NextDouble() < Diurnal(t)) {
      trace.push_back({t, function});
    }
    t += rng->Exponential(rate);
  }
  return trace;
}

}  // namespace

AzurePattern AzurePatternFor(size_t function_index, uint64_t seed) {
  Rng rng(seed ^ (0x9e3779b97f4a7c15ULL * (function_index + 1)));
  const double draw = rng.NextDouble();
  if (draw < 0.30) {
    return AzurePattern::kPeriodic;
  }
  if (draw < 0.55) {
    return AzurePattern::kBursty;
  }
  return AzurePattern::kSporadic;
}

Trace GenerateAzureTrace(const std::vector<std::string>& functions,
                         const AzureTraceOptions& options) {
  std::vector<Trace> traces;
  Rng seeder(options.seed);
  for (size_t i = 0; i < functions.size(); ++i) {
    // Zipf popularity: function rank i gets rate peak / (i+1)^skew.
    const double rate =
        options.peak_rate / std::pow(static_cast<double>(i + 1), options.popularity_skew);
    Rng rng(seeder.NextU64());
    const AzurePattern pattern =
        options.force_pattern >= 0 && options.force_pattern <= 2
            ? static_cast<AzurePattern>(options.force_pattern)
            : AzurePatternFor(i, options.seed);
    switch (pattern) {
      case AzurePattern::kPeriodic:
        traces.push_back(GeneratePeriodic(functions[i], rate, options.horizon_seconds, &rng));
        break;
      case AzurePattern::kBursty:
        traces.push_back(GenerateBursty(functions[i], rate, options.horizon_seconds, &rng));
        break;
      case AzurePattern::kSporadic:
        traces.push_back(GenerateSporadic(functions[i], rate, options.horizon_seconds, &rng));
        break;
    }
  }
  return MergeTraces(traces);
}

}  // namespace optimus
