// CSV import/export of invocation traces, so the workload generators'
// output can be archived and real traces (e.g. an Azure Functions export)
// can be replayed through the simulator.
//
// Format: one "arrival_seconds,function" row per invocation; lines starting
// with '#' are comments.

#ifndef OPTIMUS_SRC_WORKLOAD_TRACE_IO_H_
#define OPTIMUS_SRC_WORKLOAD_TRACE_IO_H_

#include <iosfwd>
#include <string>

#include "src/workload/trace.h"

namespace optimus {

void WriteTraceCsv(std::ostream& out, const Trace& trace);
Trace ReadTraceCsv(std::istream& in);

void WriteTraceCsvFile(const std::string& path, const Trace& trace);
Trace ReadTraceCsvFile(const std::string& path);

}  // namespace optimus

#endif  // OPTIMUS_SRC_WORKLOAD_TRACE_IO_H_
