// Azure-Functions-like trace synthesis.
//
// The paper replays a two-week Microsoft Azure Functions production trace
// (Zhang et al., SOSP'21 release of the Shahrad et al. dataset). That trace
// is not redistributable here, so this generator synthesizes arrivals with
// the trace's published first-order characteristics (Shahrad et al., ATC'20):
//   * heavy-tailed function popularity (a few functions dominate invocations),
//   * a mix of temporal patterns: periodic (timer-triggered spikes), bursty
//     (on/off phases), and sporadic (rare, irregular invocations),
//   * diurnal rate modulation.
// Generation is fully deterministic from the seed.

#ifndef OPTIMUS_SRC_WORKLOAD_AZURE_H_
#define OPTIMUS_SRC_WORKLOAD_AZURE_H_

#include <cstdint>

#include "src/workload/trace.h"

namespace optimus {

enum class AzurePattern : uint8_t { kPeriodic = 0, kBursty, kSporadic };

struct AzureTraceOptions {
  double horizon_seconds = 4.0 * 3600;
  uint64_t seed = 7;
  // Zipf skew of function popularity (1.0 ≈ the published distribution).
  double popularity_skew = 1.0;
  // Base invocations/second of the most popular function.
  double peak_rate = 0.08;
  // When >= 0, every function gets this AzurePattern (cast to the enum)
  // instead of the representative mix — single-class workloads for the
  // warming benchmark and the forecaster's trace-class regressions.
  int force_pattern = -1;
};

// Synthesizes a merged Azure-like trace over `functions`. Pattern types are
// assigned deterministically: roughly 30% periodic, 25% bursty, 45% sporadic,
// matching the characterization's mix.
Trace GenerateAzureTrace(const std::vector<std::string>& functions,
                         const AzureTraceOptions& options);

// Pattern assigned to the i-th function by GenerateAzureTrace.
AzurePattern AzurePatternFor(size_t function_index, uint64_t seed);

}  // namespace optimus

#endif  // OPTIMUS_SRC_WORKLOAD_AZURE_H_
