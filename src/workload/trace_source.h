// TraceSource — pull-based, time-ordered arrival generation (DESIGN.md §18).
//
// The streaming simulator core never materializes a workload: it pulls one
// arrival at a time from a TraceSource, so only the *next* arrival lives in
// the event queue and workload memory is O(functions), not O(requests).
// Two sources cover the existing workloads:
//
//   * TraceVectorSource    — adapter over a materialized Trace (the legacy
//     path every existing bench and test goes through, bit-for-bit);
//   * PoissonProcessSource — a k-way merge over per-function exponential
//     streams (min-heap of next arrival per function), generating the §8.1
//     Poisson mix for millions of requests in bounded memory.

#ifndef OPTIMUS_SRC_WORKLOAD_TRACE_SOURCE_H_
#define OPTIMUS_SRC_WORKLOAD_TRACE_SOURCE_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/workload/function_table.h"
#include "src/workload/poisson.h"
#include "src/workload/trace.h"

namespace optimus {

// One pulled arrival: virtual time plus the interned function.
struct Arrival {
  double time = 0.0;
  FunctionId function = kInvalidFunction;
};

// A time-ordered arrival stream. Next() yields arrivals with non-decreasing
// time; implementations must be deterministic (replays and the
// streaming-vs-records equivalence tests depend on it).
class TraceSource {
 public:
  virtual ~TraceSource() = default;

  // Writes the next arrival into *out and returns true, or returns false
  // when the stream is exhausted (*out untouched).
  virtual bool Next(Arrival* out) = 0;

  // Exclusive end of the stream in virtual seconds: no arrival occurs at or
  // past this time. Drives the warming-cycle schedule (one cycle per
  // interval until the horizon), matching the legacy `last arrival + 1`.
  virtual double Horizon() const = 0;

  // Total arrivals when known up front, 0 when unknown. A sizing hint only.
  virtual uint64_t SizeHint() const { return 0; }
};

// Adapter over a materialized Trace. Functions are interned into `functions`
// lazily as they stream past; arrival order is exactly the trace's order, so
// the streaming core replays the legacy semantics bit-for-bit.
class TraceVectorSource final : public TraceSource {
 public:
  // Both referents must outlive the source.
  TraceVectorSource(const Trace& trace, FunctionTable* functions)
      : trace_(trace), functions_(functions) {}

  bool Next(Arrival* out) override;
  double Horizon() const override;
  uint64_t SizeHint() const override { return trace_.size(); }

 private:
  const Trace& trace_;
  FunctionTable* functions_;
  size_t cursor_ = 0;
};

// Streaming Poisson mix (§8.1): every function is an independent Poisson
// process with a per-class rate (frequent / middle / infrequent assigned
// round-robin, like GenerateMixedPoissonTrace); arrivals merge through a
// min-heap of one pending arrival per function. Memory is O(functions);
// each Next() is O(log functions). Fully deterministic from the seed; ties
// in time break by FunctionId.
class PoissonProcessSource final : public TraceSource {
 public:
  struct Options {
    double horizon_seconds = 4.0 * 3600;
    uint64_t seed = 1;
    // Multiplies every class rate — scale request volume without changing
    // the horizon or the per-function arrival structure.
    double rate_multiplier = 1.0;
  };

  // Interns `num_functions` names ("<prefix><index>") into `functions` and
  // gives each its own forked RNG stream. The table must outlive the source.
  PoissonProcessSource(FunctionTable* functions, size_t num_functions,
                       const std::string& name_prefix, const Options& options);

  bool Next(Arrival* out) override;
  double Horizon() const override { return options_.horizon_seconds; }

  // Interned ids of this source's functions, in construction order.
  const std::vector<FunctionId>& function_ids() const { return function_ids_; }
  size_t num_functions() const { return rngs_.size(); }

 private:
  struct Pending {
    double time;
    size_t index;  // Into function_ids_ / rngs_.
    bool operator>(const Pending& other) const {
      if (time != other.time) {
        return time > other.time;
      }
      return index > other.index;
    }
  };

  double RateOf(size_t index) const;
  void PushNext(size_t index, double from_time);

  Options options_;
  std::vector<FunctionId> function_ids_;
  std::vector<Rng> rngs_;  // One independent stream per function.
  // Binary min-heap of the next arrival per still-active function.
  std::vector<Pending> heap_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_WORKLOAD_TRACE_SOURCE_H_
