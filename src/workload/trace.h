// Invocation traces: a time-ordered stream of function invocations.

#ifndef OPTIMUS_SRC_WORKLOAD_TRACE_H_
#define OPTIMUS_SRC_WORKLOAD_TRACE_H_

#include <map>
#include <string>
#include <vector>

namespace optimus {

struct Invocation {
  double arrival = 0.0;  // Seconds from trace start.
  std::string function;  // The model/function name invoked.

  bool operator<(const Invocation& other) const { return arrival < other.arrival; }
};

using Trace = std::vector<Invocation>;

// Merges traces and sorts by arrival time.
Trace MergeTraces(const std::vector<Trace>& traces);

// Per-function invocation counts over fixed-width time slots — the demand
// history the §5.1 load balancer correlates.
using DemandSeries = std::vector<double>;

std::map<std::string, DemandSeries> DemandHistory(const Trace& trace, double horizon,
                                                  double slot_seconds);

// Pearson correlation of two demand series (K(A,B) in §5.1). Returns 0 for
// degenerate (constant) series.
double DemandCorrelation(const DemandSeries& a, const DemandSeries& b);

}  // namespace optimus

#endif  // OPTIMUS_SRC_WORKLOAD_TRACE_H_
