#include "src/workload/trace.h"

#include <algorithm>
#include <cmath>

namespace optimus {

Trace MergeTraces(const std::vector<Trace>& traces) {
  Trace merged;
  for (const Trace& trace : traces) {
    merged.insert(merged.end(), trace.begin(), trace.end());
  }
  std::stable_sort(merged.begin(), merged.end());
  return merged;
}

std::map<std::string, DemandSeries> DemandHistory(const Trace& trace, double horizon,
                                                  double slot_seconds) {
  const size_t slots = static_cast<size_t>(std::ceil(horizon / slot_seconds));
  std::map<std::string, DemandSeries> history;
  for (const Invocation& invocation : trace) {
    DemandSeries& series = history[invocation.function];
    if (series.empty()) {
      series.assign(slots, 0.0);
    }
    const size_t slot = std::min(slots - 1, static_cast<size_t>(invocation.arrival / slot_seconds));
    series[slot] += 1.0;
  }
  return history;
}

double DemandCorrelation(const DemandSeries& a, const DemandSeries& b) {
  const size_t size = std::min(a.size(), b.size());
  if (size < 2) {
    return 0.0;
  }
  double mean_a = 0.0;
  double mean_b = 0.0;
  for (size_t i = 0; i < size; ++i) {
    mean_a += a[i];
    mean_b += b[i];
  }
  mean_a /= static_cast<double>(size);
  mean_b /= static_cast<double>(size);
  double cov = 0.0;
  double var_a = 0.0;
  double var_b = 0.0;
  for (size_t i = 0; i < size; ++i) {
    const double da = a[i] - mean_a;
    const double db = b[i] - mean_b;
    cov += da * db;
    var_a += da * da;
    var_b += db * db;
  }
  if (var_a <= 0.0 || var_b <= 0.0) {
    return 0.0;
  }
  return cov / std::sqrt(var_a * var_b);
}

}  // namespace optimus
