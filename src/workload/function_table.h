// Function-name interning (DESIGN.md §18).
//
// At million-function scale the simulator cannot afford a string hash (or a
// std::map walk) per request: arrivals, demand accumulation, and placement
// lookup all key on the function. A FunctionTable interns every function name
// once into a dense FunctionId, so the hot path indexes flat arrays
// (FunctionId -> model / node / scratch cost / served count) and strings only
// appear at the edges — trace parsing, warming-order names, and records.

#ifndef OPTIMUS_SRC_WORKLOAD_FUNCTION_TABLE_H_
#define OPTIMUS_SRC_WORKLOAD_FUNCTION_TABLE_H_

#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>

namespace optimus {

// Dense interned id. Ids are assigned 0, 1, 2, ... in interning order;
// kInvalidFunction marks "not interned".
using FunctionId = int32_t;
inline constexpr FunctionId kInvalidFunction = -1;

class FunctionTable {
 public:
  FunctionTable() = default;

  // Not copyable: interned ids embed positions in this table.
  FunctionTable(const FunctionTable&) = delete;
  FunctionTable& operator=(const FunctionTable&) = delete;

  // Returns the id for `name`, interning it on first sight.
  FunctionId Intern(const std::string& name);

  // Returns the id for `name`, or kInvalidFunction when never interned.
  FunctionId Find(const std::string& name) const;

  // Name for an interned id. The reference is stable for the table's
  // lifetime (names live in a deque, never reallocated).
  const std::string& Name(FunctionId id) const { return names_[static_cast<size_t>(id)]; }

  size_t size() const { return names_.size(); }

 private:
  std::unordered_map<std::string_view, FunctionId> ids_;
  std::deque<std::string> names_;  // Indexed by FunctionId; node-stable.
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_WORKLOAD_FUNCTION_TABLE_H_
