#include "src/workload/trace_io.h"

#include <algorithm>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace optimus {

void WriteTraceCsv(std::ostream& out, const Trace& trace) {
  out << "# arrival_seconds,function\n";
  out.precision(9);
  out << std::fixed;
  for (const Invocation& invocation : trace) {
    out << invocation.arrival << "," << invocation.function << "\n";
  }
}

Trace ReadTraceCsv(std::istream& in) {
  Trace trace;
  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty() || line[0] == '#') {
      continue;
    }
    const size_t comma = line.find(',');
    if (comma == std::string::npos) {
      throw std::runtime_error("ReadTraceCsv: missing comma at line " +
                               std::to_string(line_number));
    }
    Invocation invocation;
    try {
      invocation.arrival = std::stod(line.substr(0, comma));
    } catch (const std::exception&) {
      throw std::runtime_error("ReadTraceCsv: bad arrival at line " +
                               std::to_string(line_number));
    }
    invocation.function = line.substr(comma + 1);
    if (invocation.function.empty()) {
      throw std::runtime_error("ReadTraceCsv: empty function name at line " +
                               std::to_string(line_number));
    }
    trace.push_back(std::move(invocation));
  }
  std::stable_sort(trace.begin(), trace.end());
  return trace;
}

void WriteTraceCsvFile(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) {
    throw std::runtime_error("WriteTraceCsvFile: cannot open " + path);
  }
  WriteTraceCsv(out, trace);
}

Trace ReadTraceCsvFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("ReadTraceCsvFile: cannot open " + path);
  }
  return ReadTraceCsv(in);
}

}  // namespace optimus
