#include "src/workload/trace_source.h"

#include <algorithm>
#include <string>

namespace optimus {

bool TraceVectorSource::Next(Arrival* out) {
  if (cursor_ >= trace_.size()) {
    return false;
  }
  const Invocation& invocation = trace_[cursor_++];
  out->time = invocation.arrival;
  out->function = functions_->Intern(invocation.function);
  return true;
}

double TraceVectorSource::Horizon() const {
  // The legacy simulator's horizon: one second past the last arrival.
  return trace_.empty() ? 1.0 : trace_.back().arrival + 1.0;
}

PoissonProcessSource::PoissonProcessSource(FunctionTable* functions, size_t num_functions,
                                           const std::string& name_prefix,
                                           const Options& options)
    : options_(options) {
  rngs_.reserve(num_functions);
  function_ids_.reserve(num_functions);
  heap_.reserve(num_functions);
  Rng seeder(options.seed);
  for (size_t i = 0; i < num_functions; ++i) {
    function_ids_.push_back(functions->Intern(name_prefix + std::to_string(i)));
    rngs_.push_back(seeder.Fork());
    PushNext(i, 0.0);
  }
}

double PoissonProcessSource::RateOf(size_t index) const {
  // Round-robin class assignment, like GenerateMixedPoissonTrace.
  return RateFor(static_cast<RateClass>(index % 3)) * options_.rate_multiplier;
}

void PoissonProcessSource::PushNext(size_t index, double from_time) {
  const double gap = rngs_[index].Exponential(RateOf(index));
  const double next = from_time + gap;
  if (next >= options_.horizon_seconds) {
    return;  // This function's stream is exhausted.
  }
  heap_.push_back(Pending{next, index});
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

bool PoissonProcessSource::Next(Arrival* out) {
  if (heap_.empty()) {
    return false;
  }
  std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
  const Pending pending = heap_.back();
  heap_.pop_back();
  out->time = pending.time;
  out->function = function_ids_[pending.index];
  PushNext(pending.index, pending.time);
  return true;
}

}  // namespace optimus
