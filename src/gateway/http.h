// A minimal blocking HTTP/1.1 server and client over POSIX sockets.
//
// This implements just enough of the protocol for the Optimus gateway (§7:
// "Optimus API and communication between clients and the gateway are
// implemented in REST API format"): request line + headers + Content-Length
// bodies, one request per connection. Not a general-purpose web server.

#ifndef OPTIMUS_SRC_GATEWAY_HTTP_H_
#define OPTIMUS_SRC_GATEWAY_HTTP_H_

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "src/common/thread_pool.h"

namespace optimus {

struct HttpRequest {
  std::string method;  // "GET", "POST", ...
  std::string path;    // Path without the query string.
  std::map<std::string, std::string> query;  // Decoded query parameters.
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain";
  // Extra response headers (e.g. Retry-After on 429s). Content-Type,
  // Content-Length, and Connection are always emitted from the fields above
  // and must not be duplicated here. On the client side (HttpFetch) this maps
  // every received header name to its value.
  std::map<std::string, std::string> headers;
  std::string body;
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

// An accept loop on a background thread that dispatches each accepted
// connection onto a worker pool, so the handler serves requests concurrently.
// The handler must therefore be thread-safe; OptimusPlatform is. The server
// itself holds no mutex of its own — per-connection state is confined to the
// pool task that owns the socket, and lifecycle is a pair of atomics — so it
// sits outside the DESIGN.md §15 lock hierarchy; the locks a request *does*
// take (gateway batcher, repository, node, plan cache, ...) are all ranked
// and acquired in hierarchy order downstream of the handler.
class HttpServer {
 public:
  HttpServer() = default;
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  // Binds 127.0.0.1:`port` (0 picks an ephemeral port) and starts serving
  // with `num_workers` handler threads (values < 1 are clamped to 1).
  // Throws std::runtime_error on socket errors.
  void Start(uint16_t port, HttpHandler handler, int num_workers = 4);

  // Stops the accept loop, drains in-flight connections, and joins the server
  // and worker threads. Idempotent.
  void Stop();

  bool Running() const { return running_.load(); }
  uint16_t port() const { return port_; }

 private:
  void Serve();
  void HandleClient(int client_fd);

  std::atomic<int> listen_fd_{-1};  // Stop() clears it while Serve() reads it.
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::thread thread_;
  std::unique_ptr<ThreadPool> workers_;
  HttpHandler handler_;
};

// Blocking HTTP client for tests and examples: sends one request to
// 127.0.0.1:`port` and returns the response. Throws std::runtime_error on
// connection or protocol errors.
HttpResponse HttpFetch(uint16_t port, const std::string& method, const std::string& target,
                       const std::string& body = "");

// Parses an HTTP request head + body from a raw buffer (exposed for tests).
// Returns false if the buffer does not hold a complete request yet; throws
// std::runtime_error on malformed headers (bad or oversized Content-Length).
bool ParseHttpRequest(const std::string& raw, HttpRequest* request);

}  // namespace optimus

#endif  // OPTIMUS_SRC_GATEWAY_HTTP_H_
