// The Optimus REST gateway service (§7): HTTP routes over OptimusPlatform.
//
// Routes:
//   POST /deploy?name=<fn>   body = serialized model file  -> deploys <fn>
//   POST /invoke?name=<fn>   body = comma-separated floats -> runs inference
//   GET  /functions                                        -> registered names
//   GET  /stats                                            -> start-type counters
//
// Invocation responses are line-oriented "key=value" text:
//   start=Warm|Transform|Cold
//   estimated_latency=<seconds>
//   donor=<function>           (only when a transformation occurred)
//   output=<csv of the first 8 output values>

#ifndef OPTIMUS_SRC_GATEWAY_SERVICE_H_
#define OPTIMUS_SRC_GATEWAY_SERVICE_H_

#include <functional>
#include <memory>
#include <mutex>

#include "src/core/platform.h"
#include "src/gateway/http.h"

namespace optimus {

class OptimusHttpService {
 public:
  // `clock` supplies the platform's virtual time in seconds; the default uses
  // wall time since service construction.
  OptimusHttpService(const CostModel* costs, const PlatformOptions& options,
                     std::function<double()> clock = nullptr);

  // Starts serving on 127.0.0.1:`port` (0 picks an ephemeral port).
  void Start(uint16_t port = 0);
  void Stop();

  uint16_t port() const { return server_.port(); }
  OptimusPlatform& platform() { return platform_; }

  // The route dispatcher (exposed for direct testing without sockets).
  HttpResponse Handle(const HttpRequest& request);

 private:
  OptimusPlatform platform_;
  std::function<double()> clock_;
  std::mutex mutex_;
  HttpServer server_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_GATEWAY_SERVICE_H_
