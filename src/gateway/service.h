// The Optimus REST gateway service (§7): HTTP routes over OptimusPlatform.
//
// Routes:
//   POST /deploy?name=<fn>   body = serialized model file  -> deploys <fn>
//   POST /invoke?name=<fn>   body = comma-separated floats -> runs inference
//        [&deadline=<sec>]   per-request deadline override (wall seconds)
//        [&tenant=<id>]      tenant attribution for token-bucket admission
//                            (quota-aware 429 + Retry-After when exhausted)
//   GET  /functions                                        -> registered names
//   GET  /stats                                            -> counters (incl.
//                            a placement block: version/policy/rebalances)
//   GET  /placement          placement table state as JSON (version, policy,
//                            per-node function counts, rebalance counters)
//   POST /rebalance          synchronously recomputes the placement
//                            (reason="manual"); JSON {"swapped":...,"version":...}
//        [?dry_run=1]        preview only: runs the same solver but never
//                            swaps the table; JSON {"dry_run":true,"version",
//                            "would_move","unchanged","moves":[{function,
//                            from,to}...],"truncated"}
//   GET  /demand             per-function demand history (the slotted series
//                            the placement solver and forecaster consume)
//   GET  /warming            warming subsystem state + counters as JSON
//                            (DESIGN.md §17)
//   POST /warming/enable     turn the forecast-driven warming loop on
//   POST /warming/disable    turn it off (in-flight cycle finishes)
//   POST /warming/run        run one synchronous warming cycle now; JSON
//                            includes the number of executed pre-warm orders
//   GET  /healthz            cluster health: per-node lifecycle state,
//                            draining/accepting counts, placement version
//   POST /nodes/<id>/drain   revoke a node (grace window; ?grace=<sec>
//                            overrides, 0 kills immediately)
//   POST /nodes/<id>/revive  bring a Down node back into rotation
//   GET  /metrics            Prometheus text exposition of the platform's
//                            metrics registry (DESIGN.md §12)
//   GET  /trace              drains completed request traces as Chrome
//                            trace_event JSON (chrome://tracing, Perfetto)
//
// Invocation responses are line-oriented "key=value" text:
//   start=Warm|Transform|Cold
//   estimated_latency=<seconds>
//   donor=<function>           (only when a transformation occurred)
//   output=<csv of the first 8 output values>
//
// Error responses map the platform's ErrorCode taxonomy to HTTP statuses and
// carry a JSON body {"error":{"code":"<NAME>","http":<status>,"message":...}}:
//   400 INVALID_ARGUMENT   bad input / malformed request
//   404 NOT_FOUND          unknown function or route
//   409 ALREADY_EXISTS     duplicate deploy
//   429 RESOURCE_EXHAUSTED shed: too many in-flight invokes (back off, retry)
//   500 INTERNAL           permanent internal failure
//   503 UNAVAILABLE        transient failure, retries exhausted (or dropped)
//   504 DEADLINE_EXCEEDED  per-request deadline expired
//
// Failure hardening (DESIGN.md §11): each /invoke gets a wall-clock deadline;
// retryable (UNAVAILABLE) platform errors are retried with exponential
// backoff plus deterministic jitter while the deadline allows; when more than
// max_inflight_invokes requests are already being served, new invokes are
// shed immediately with 429 rather than queued into collapse.

#ifndef OPTIMUS_SRC_GATEWAY_SERVICE_H_
#define OPTIMUS_SRC_GATEWAY_SERVICE_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/sync.h"
#include "src/core/platform.h"
#include "src/gateway/http.h"

namespace optimus {

struct GatewayOptions {
  // Wall-clock deadline per /invoke (seconds); 0 disables. Overridable per
  // request with ?deadline=<sec>.
  double default_deadline = 1.0;
  // Additional attempts for retryable (UNAVAILABLE) platform errors.
  int max_retries = 2;
  // Base backoff before retry k is base * 2^k, scaled by a deterministic
  // jitter factor in [1, 2).
  double retry_backoff = 0.005;
  uint64_t jitter_seed = 0x5eed;
  // Invokes allowed in flight before new ones are shed with 429.
  int max_inflight_invokes = 64;
  // Delay injected when the "gateway.slow" fault point fires.
  double slow_fault_delay = 0.05;
  // Requests for the same function coalesced into one platform dispatch
  // (leader/follower batching — see "Request batching" below); 1 disables
  // batching and restores the per-request TryInvoke path.
  int max_batch_size = 8;
  // Per-tenant admission (DESIGN.md §16): requests carrying ?tenant=<id> are
  // admitted through that tenant's token bucket — `tenant_rate` tokens/sec
  // refill, `tenant_burst` capacity (defaults to tenant_rate when <= 0).
  // A tenant over quota is rejected with 429 + Retry-After *before* the
  // global inflight check, so one tenant's burst can neither consume
  // inflight slots nor starve other tenants. <= 0 disables admission;
  // requests without a tenant attribute always bypass it.
  double tenant_rate = 0.0;
  double tenant_burst = 0.0;
  // Default grace window (virtual seconds) for POST /nodes/<id>/drain,
  // overridable per request with ?grace=<sec>.
  double drain_grace = 30.0;
};

class OptimusHttpService {
 public:
  // `clock` supplies the platform's virtual time in seconds; the default uses
  // wall time since service construction. A caller-supplied clock must be
  // thread-safe: requests are handled concurrently on the server's workers.
  OptimusHttpService(const CostModel* costs, const PlatformOptions& options,
                     std::function<double()> clock = nullptr);
  OptimusHttpService(const CostModel* costs, const PlatformOptions& options,
                     const GatewayOptions& gateway, std::function<double()> clock = nullptr);

  // Starts serving on 127.0.0.1:`port` (0 picks an ephemeral port) with
  // `num_workers` concurrent request handlers.
  void Start(uint16_t port = 0, int num_workers = 4);
  void Stop();

  uint16_t port() const { return server_.port(); }
  OptimusPlatform& platform() { return platform_; }
  const GatewayOptions& gateway_options() const { return gateway_; }

  // Gateway-level counters (thin views over the platform's metrics registry,
  // which is the single source of truth — also exported via /stats and
  // /metrics).
  size_t Retries() const { return static_cast<size_t>(retries_.Value()); }
  size_t Sheds() const { return static_cast<size_t>(sheds_.Value()); }
  size_t Drops() const { return static_cast<size_t>(drops_.Value()); }
  size_t DeadlinesExceeded() const { return static_cast<size_t>(deadlines_.Value()); }

  // The route dispatcher (exposed for direct testing without sockets).
  // Thread-safe: routes delegate to the platform, which synchronizes itself,
  // so requests are served concurrently without a gateway-wide lock.
  HttpResponse Handle(const HttpRequest& request);

 private:
  // Request batching (DESIGN.md §14): one gateway worker per function becomes
  // the *leader* and drains up to max_batch_size queued requests into a single
  // OptimusPlatform::TryInvokeBatch dispatch; the others (*followers*) park on
  // a condition variable until the leader posts their result. Requests are
  // served strictly in arrival order, so a request waits at most
  // ceil(queue position / max_batch_size) dispatches — the fairness bound.
  // PendingInvoke/FunctionQueue state is protected by batch_mutex_ (the
  // structs cannot name the outer class's member in a GUARDED_BY, so the
  // contract is documented here and checked by the dynamic validator): every
  // field except the leader's private `batch` snapshot is read and written
  // only between MutexLock(batch_mutex_) and the matching release.
  struct PendingInvoke {
    const std::vector<float>* input = nullptr;
    telemetry::TraceContext* trace = nullptr;
    Status status;
    InvokeResult result;
    bool done = false;
  };
  struct FunctionQueue {
    std::deque<PendingInvoke*> waiting;
    bool leader_active = false;
  };

  // One tenant's token bucket plus its telemetry series (bound lazily on the
  // tenant's first request). State is guarded by tenant_mutex_.
  struct TenantBucket {
    double tokens = 0.0;
    double last_refill = 0.0;
    telemetry::Counter* requests = nullptr;
    telemetry::Counter* rejections = nullptr;
  };

  HttpResponse HandleDeploy(const HttpRequest& request);
  HttpResponse HandleInvoke(const HttpRequest& request);
  HttpResponse HandleHealthz();
  // POST /nodes/<id>/drain and /nodes/<id>/revive admin actions.
  HttpResponse HandleNodeAction(const HttpRequest& request);
  // POST /warming/enable|disable|run admin actions (DESIGN.md §17).
  HttpResponse HandleWarmingAction(const HttpRequest& request);
  // Token-bucket admission for `tenant` at clock_() time. Returns true when
  // admitted; otherwise *retry_after receives the seconds until the bucket
  // holds a full token again (the 429's Retry-After). The injected
  // `tenant.quota_exhausted` fault forces a rejection.
  bool AdmitTenant(const std::string& tenant, double* retry_after);
  // The shed-checked, deadline-bounded retry loop; `trace` may be null.
  HttpResponse InvokeWithRetries(const std::string& function, const std::vector<float>& input,
                                 double deadline, telemetry::TraceContext* trace);
  // One batched invocation attempt: enqueue, then either lead a dispatch or
  // wait for a leader. Never throws; failures come back as the status.
  Status InvokeBatched(const std::string& function, const std::vector<float>& input,
                       telemetry::TraceContext* trace, InvokeResult* result);
  HttpResponse HandleMetrics();
  HttpResponse HandleTrace();
  double JitterFactor();  // Deterministic in [1, 2).

  OptimusPlatform platform_;
  GatewayOptions gateway_;
  std::function<double()> clock_;
  HttpServer server_;
  std::atomic<int> inflight_invokes_{0};
  telemetry::Counter& retries_;
  telemetry::Counter& sheds_;
  telemetry::Counter& drops_;
  telemetry::Counter& deadlines_;
  telemetry::Histogram& invoke_request_seconds_;
  telemetry::Gauge& live_containers_;
  telemetry::Gauge& functions_gauge_;
  // Per-tenant buckets. kTenantAdmission sits at the very bottom of the
  // hierarchy: admission runs before any other gateway/platform lock, holding
  // only this mutex (plus the registry's, rank-above, for first-request
  // series binding).
  Mutex tenant_mutex_{LockRank::kTenantAdmission, "gateway.tenant"};
  std::map<std::string, TenantBucket> tenant_buckets_ GUARDED_BY(tenant_mutex_);
  // kJitter is a leaf rank: JitterFactor holds it for one RNG draw only.
  Mutex jitter_mutex_{LockRank::kJitter, "gateway.jitter"};
  Rng jitter_rng_ GUARDED_BY(jitter_mutex_);
  // Batcher state: per-function pending queues under one gateway-wide mutex
  // (held only for queue bookkeeping, never across a platform dispatch —
  // which is why kGatewayBatch sits at the bottom of the lock hierarchy:
  // a leader releases it before entering the platform's ranks).
  // Queues are shared_ptr so a drained entry can be erased from the map while
  // just-completed waiters still hold their reference.
  Mutex batch_mutex_{LockRank::kGatewayBatch, "gateway.batch"};
  CondVar batch_cv_;
  std::map<std::string, std::shared_ptr<FunctionQueue>> batch_queues_ GUARDED_BY(batch_mutex_);
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_GATEWAY_SERVICE_H_
