// The Optimus REST gateway service (§7): HTTP routes over OptimusPlatform.
//
// Routes:
//   POST /deploy?name=<fn>   body = serialized model file  -> deploys <fn>
//   POST /invoke?name=<fn>   body = comma-separated floats -> runs inference
//   GET  /functions                                        -> registered names
//   GET  /stats                                            -> start-type counters
//
// Invocation responses are line-oriented "key=value" text:
//   start=Warm|Transform|Cold
//   estimated_latency=<seconds>
//   donor=<function>           (only when a transformation occurred)
//   output=<csv of the first 8 output values>

#ifndef OPTIMUS_SRC_GATEWAY_SERVICE_H_
#define OPTIMUS_SRC_GATEWAY_SERVICE_H_

#include <functional>
#include <memory>

#include "src/core/platform.h"
#include "src/gateway/http.h"

namespace optimus {

class OptimusHttpService {
 public:
  // `clock` supplies the platform's virtual time in seconds; the default uses
  // wall time since service construction. A caller-supplied clock must be
  // thread-safe: requests are handled concurrently on the server's workers.
  OptimusHttpService(const CostModel* costs, const PlatformOptions& options,
                     std::function<double()> clock = nullptr);

  // Starts serving on 127.0.0.1:`port` (0 picks an ephemeral port) with
  // `num_workers` concurrent request handlers.
  void Start(uint16_t port = 0, int num_workers = 4);
  void Stop();

  uint16_t port() const { return server_.port(); }
  OptimusPlatform& platform() { return platform_; }

  // The route dispatcher (exposed for direct testing without sockets).
  // Thread-safe: routes delegate to the platform, which synchronizes itself,
  // so requests are served concurrently without a gateway-wide lock.
  HttpResponse Handle(const HttpRequest& request);

 private:
  OptimusPlatform platform_;
  std::function<double()> clock_;
  HttpServer server_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_GATEWAY_SERVICE_H_
