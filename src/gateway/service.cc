#include "src/gateway/service.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <thread>

#include "src/common/clock.h"
#include "src/common/fault.h"

namespace optimus {

namespace {

std::vector<float> ParseFloats(const std::string& csv) {
  std::vector<float> values;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) {
      values.push_back(std::stof(token));
    }
  }
  return values;
}

std::string FormatOutput(const std::vector<float>& output, size_t limit = 8) {
  std::ostringstream out;
  for (size_t i = 0; i < output.size() && i < limit; ++i) {
    if (i > 0) {
      out << ",";
    }
    out << output[i];
  }
  return out.str();
}

std::string JsonEscape(const std::string& text) {
  std::string escaped;
  escaped.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"':
        escaped += "\\\"";
        break;
      case '\\':
        escaped += "\\\\";
        break;
      case '\n':
        escaped += "\\n";
        break;
      case '\r':
        escaped += "\\r";
        break;
      case '\t':
        escaped += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          escaped += buffer;
        } else {
          escaped += c;
        }
    }
  }
  return escaped;
}

int HttpStatusFor(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return 200;
    case ErrorCode::kInvalidArgument:
      return 400;
    case ErrorCode::kNotFound:
      return 404;
    case ErrorCode::kAlreadyExists:
      return 409;
    case ErrorCode::kResourceExhausted:
      return 429;
    case ErrorCode::kUnavailable:
      return 503;
    case ErrorCode::kDeadlineExceeded:
      return 504;
    case ErrorCode::kInternal:
      return 500;
  }
  return 500;
}

HttpResponse JsonError(ErrorCode code, const std::string& message) {
  HttpResponse response;
  response.status = HttpStatusFor(code);
  response.content_type = "application/json";
  std::ostringstream body;
  body << "{\"error\":{\"code\":\"" << ErrorCodeName(code) << "\",\"http\":" << response.status
       << ",\"message\":\"" << JsonEscape(message) << "\"}}\n";
  response.body = body.str();
  return response;
}

HttpResponse JsonError(const Status& status) { return JsonError(status.code(), status.message()); }

// Monotonic wall seconds off the shared SystemClock (DESIGN.md §18) —
// deadline math and the default request clock read the same source.
double WallSeconds() { return SystemClock::Instance().Now(); }

}  // namespace

OptimusHttpService::OptimusHttpService(const CostModel* costs, const PlatformOptions& options,
                                       std::function<double()> clock)
    : OptimusHttpService(costs, options, GatewayOptions(), std::move(clock)) {}

OptimusHttpService::OptimusHttpService(const CostModel* costs, const PlatformOptions& options,
                                       const GatewayOptions& gateway,
                                       std::function<double()> clock)
    : platform_(costs, options),
      gateway_(gateway),
      clock_(std::move(clock)),
      retries_(platform_.metrics().GetCounter("optimus_gateway_retries_total", {},
                                              "Invoke retries after retryable platform errors")),
      sheds_(platform_.metrics().GetCounter("optimus_gateway_sheds_total", {},
                                            "Invokes shed with 429 at saturation")),
      drops_(platform_.metrics().GetCounter("optimus_gateway_drops_total", {},
                                            "Invokes dropped by the gateway.drop fault point")),
      deadlines_(platform_.metrics().GetCounter("optimus_gateway_deadlines_total", {},
                                                "Invokes rejected with 504 (deadline expired)")),
      invoke_request_seconds_(
          platform_.metrics().GetHistogram("optimus_gateway_request_seconds",
                                           {{"route", "invoke"}},
                                           "Gateway wall seconds per request by route")),
      live_containers_(platform_.metrics().GetGauge("optimus_live_containers", {},
                                                    "Containers currently alive")),
      functions_gauge_(platform_.metrics().GetGauge("optimus_functions", {},
                                                    "Functions registered in the repository")),
      jitter_rng_(gateway.jitter_seed) {
  if (!clock_) {
    // Default to the process-wide SystemClock so gateway timestamps, platform
    // keep-alive, and warming cadence share one monotonic time source.
    clock_ = [] { return SystemClock::Instance().Now(); };
  }
}

void OptimusHttpService::Start(uint16_t port, int num_workers) {
  server_.Start(port, [this](const HttpRequest& request) { return Handle(request); },
                num_workers);
}

void OptimusHttpService::Stop() { server_.Stop(); }

double OptimusHttpService::JitterFactor() {
  MutexLock lock(jitter_mutex_);
  return 1.0 + jitter_rng_.NextDouble();
}

HttpResponse OptimusHttpService::HandleDeploy(const HttpRequest& request) {
  auto name = request.query.find("name");
  if (name == request.query.end() || name->second.empty()) {
    return JsonError(ErrorCode::kInvalidArgument, "missing ?name=");
  }
  try {
    platform_.DeployFile(name->second, ModelFile(request.body.begin(), request.body.end()));
  } catch (const std::invalid_argument& error) {
    return JsonError(ErrorCode::kAlreadyExists, error.what());
  } catch (const std::exception& error) {
    return JsonError(ErrorCode::kInvalidArgument, error.what());
  }
  HttpResponse response;
  response.body = "deployed " + name->second + "\n";
  return response;
}

bool OptimusHttpService::AdmitTenant(const std::string& tenant, double* retry_after) {
  const double now = clock_();
  const double burst =
      gateway_.tenant_burst > 0.0 ? gateway_.tenant_burst : gateway_.tenant_rate;
  MutexLock lock(tenant_mutex_);
  TenantBucket& bucket = tenant_buckets_[tenant];
  if (bucket.requests == nullptr) {
    // First request from this tenant: full bucket, bind its series.
    bucket.tokens = burst;
    bucket.last_refill = now;
    bucket.requests = &platform_.metrics().GetCounter(
        "optimus_gateway_tenant_requests_total", {{"tenant", tenant}},
        "Invoke requests per tenant (admitted + rejected)");
    bucket.rejections = &platform_.metrics().GetCounter(
        "optimus_gateway_tenant_rejections_total", {{"tenant", tenant}},
        "Invokes rejected 429 by the tenant's token bucket");
  }
  bucket.requests->Inc();
  bucket.tokens = std::min(
      burst, bucket.tokens + std::max(0.0, now - bucket.last_refill) * gateway_.tenant_rate);
  bucket.last_refill = now;
  if (!fault::Triggered("tenant.quota_exhausted") && bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    return true;
  }
  bucket.rejections->Inc();
  const double deficit = bucket.tokens < 1.0 ? 1.0 - bucket.tokens : 1.0;
  *retry_after = deficit / gateway_.tenant_rate;
  return false;
}

HttpResponse OptimusHttpService::HandleInvoke(const HttpRequest& request) {
  // Per-tenant admission runs before anything else — a tenant over quota is
  // turned away without consuming an inflight slot, so its burst cannot
  // crowd out other tenants' capacity (DESIGN.md §16).
  if (gateway_.tenant_rate > 0.0) {
    const auto tenant = request.query.find("tenant");
    if (tenant != request.query.end() && !tenant->second.empty()) {
      double retry_after = 0.0;
      if (!AdmitTenant(tenant->second, &retry_after)) {
        HttpResponse response = JsonError(
            ErrorCode::kResourceExhausted,
            "tenant '" + tenant->second + "' quota exhausted; retry after Retry-After seconds");
        // Retry-After is integral delay-seconds (RFC 7231); round up, min 1.
        response.headers["Retry-After"] =
            std::to_string(std::max<long long>(1, std::llround(std::ceil(retry_after))));
        return response;
      }
    }
  }

  // Load shedding next: when the gateway is saturated, refuse immediately
  // with 429 instead of queueing into collapse.
  if (inflight_invokes_.fetch_add(1, std::memory_order_acq_rel) >=
      gateway_.max_inflight_invokes) {
    inflight_invokes_.fetch_sub(1, std::memory_order_acq_rel);
    sheds_.Inc();
    return JsonError(ErrorCode::kResourceExhausted, "gateway saturated; request shed");
  }
  struct InflightGuard {
    std::atomic<int>* counter;
    ~InflightGuard() { counter->fetch_sub(1, std::memory_order_acq_rel); }
  } guard{&inflight_invokes_};

  auto name = request.query.find("name");
  if (name == request.query.end() || name->second.empty()) {
    return JsonError(ErrorCode::kInvalidArgument, "missing ?name=");
  }

  double deadline = gateway_.default_deadline;
  auto deadline_param = request.query.find("deadline");
  if (deadline_param != request.query.end()) {
    try {
      deadline = std::stod(deadline_param->second);
    } catch (const std::exception&) {
      return JsonError(ErrorCode::kInvalidArgument,
                       "malformed ?deadline=" + deadline_param->second);
    }
    if (deadline < 0.0) {
      return JsonError(ErrorCode::kInvalidArgument, "?deadline= must be >= 0");
    }
  }

  std::vector<float> input;
  try {
    input = ParseFloats(request.body);
  } catch (const std::exception&) {
    return JsonError(ErrorCode::kInvalidArgument, "malformed input vector");
  }

  // Trace lifecycle: the sampled context is created here (the request's
  // entry point), threaded through the retry loop into the platform, and
  // always published to the collector — the RAII request span closes on
  // every return path, so span accounting reconciles even under faults.
  const uint64_t request_start_ns = telemetry::MonotonicNanos();
  std::unique_ptr<telemetry::TraceContext> trace =
      platform_.traces().MaybeStartTrace(name->second);
  HttpResponse response;
  {
    telemetry::ScopedSpan request_span(trace.get(), "request", "gateway");
    response = InvokeWithRetries(name->second, input, deadline, trace.get());
    request_span.Arg("http_status", static_cast<double>(response.status));
  }
  platform_.traces().Finish(std::move(trace));
  invoke_request_seconds_.Observe(
      static_cast<double>(telemetry::MonotonicNanos() - request_start_ns) * 1e-9);
  return response;
}

HttpResponse OptimusHttpService::InvokeWithRetries(const std::string& function,
                                                   const std::vector<float>& input,
                                                   double deadline,
                                                   telemetry::TraceContext* trace) {
  const double start = WallSeconds();

  // Injected gateway faults: a dropped request surfaces as 503 (the client
  // may retry); a slow one eats into the deadline below.
  if (fault::Triggered("gateway.drop")) {
    drops_.Inc();
    return JsonError(ErrorCode::kUnavailable, "request dropped (injected fault)");
  }
  if (fault::Triggered("gateway.slow")) {
    std::this_thread::sleep_for(std::chrono::duration<double>(gateway_.slow_fault_delay));
  }

  Status status;
  for (int attempt = 0;; ++attempt) {
    if (deadline > 0.0 && WallSeconds() - start >= deadline) {
      deadlines_.Inc();
      return JsonError(ErrorCode::kDeadlineExceeded,
                       "deadline of " + std::to_string(deadline) + "s exceeded");
    }
    InvokeResult result;
    status = gateway_.max_batch_size > 1 ? InvokeBatched(function, input, trace, &result)
                                         : platform_.TryInvoke(function, input, clock_(), &result,
                                                               trace);
    if (status.ok()) {
      std::ostringstream body;
      body << "start=" << StartTypeName(result.start) << "\n"
           << "estimated_latency=" << result.estimated_latency << "\n";
      if (!result.donor_function.empty()) {
        body << "donor=" << result.donor_function << "\n";
      }
      body << "output=" << FormatOutput(result.output) << "\n";
      HttpResponse response;
      response.body = body.str();
      return response;
    }
    if (!IsRetryable(status.code()) || attempt >= gateway_.max_retries) {
      return JsonError(status);
    }
    // Exponential backoff with deterministic jitter before the retry.
    retries_.Inc();
    const double backoff =
        gateway_.retry_backoff * static_cast<double>(1 << attempt) * JitterFactor();
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
  }
}

Status OptimusHttpService::InvokeBatched(const std::string& function,
                                         const std::vector<float>& input,
                                         telemetry::TraceContext* trace, InvokeResult* result) {
  PendingInvoke pending;
  pending.input = &input;
  pending.trace = trace;

  MutexLock lock(batch_mutex_);
  std::shared_ptr<FunctionQueue>& slot = batch_queues_[function];
  if (slot == nullptr) {
    slot = std::make_shared<FunctionQueue>();
  }
  const std::shared_ptr<FunctionQueue> queue = slot;
  queue->waiting.push_back(&pending);
  while (!pending.done) {
    if (queue->leader_active) {
      // Follower: a leader is dispatching; it will either complete this
      // request or relinquish leadership (then the oldest waiter leads next).
      while (!pending.done && queue->leader_active) {
        batch_cv_.Wait(batch_mutex_);
      }
      continue;
    }
    // Leader: drain the oldest max_batch_size requests (FIFO — the fairness
    // bound above) into one platform dispatch, outside the queue mutex.
    queue->leader_active = true;
    const size_t limit = static_cast<size_t>(std::max(gateway_.max_batch_size, 1));
    std::vector<PendingInvoke*> batch;
    batch.reserve(std::min(limit, queue->waiting.size()));
    while (!queue->waiting.empty() && batch.size() < limit) {
      batch.push_back(queue->waiting.front());
      queue->waiting.pop_front();
    }
    lock.Unlock();

    std::vector<const std::vector<float>*> inputs;
    std::vector<telemetry::TraceContext*> traces;
    inputs.reserve(batch.size());
    traces.reserve(batch.size());
    for (const PendingInvoke* request : batch) {
      inputs.push_back(request->input);
      traces.push_back(request->trace);
    }
    std::vector<InvokeResult> results;
    std::vector<Status> statuses;
    try {
      statuses = platform_.TryInvokeBatch(function, inputs, clock_(), &results, &traces);
    } catch (const std::exception& error) {
      // TryInvokeBatch classifies per-request failures itself; anything that
      // escapes is a platform bug, but followers must never be left hanging.
      results.assign(batch.size(), InvokeResult{});
      statuses.assign(batch.size(), Status(ErrorCode::kInternal, error.what()));
    }

    lock.Lock();
    for (size_t i = 0; i < batch.size(); ++i) {
      batch[i]->status = i < statuses.size() ? statuses[i]
                                             : Status(ErrorCode::kInternal, "missing batch result");
      if (i < results.size()) {
        batch[i]->result = std::move(results[i]);
      }
      batch[i]->done = true;
    }
    queue->leader_active = false;
    batch_cv_.NotifyAll();
  }
  // Drop the queue entry once idle so the map stays bounded by the number of
  // functions with requests actually in flight. The shared_ptr keeps the
  // queue alive for any just-completed waiter still holding its reference.
  if (queue->waiting.empty() && !queue->leader_active) {
    auto it = batch_queues_.find(function);
    if (it != batch_queues_.end() && it->second == queue) {
      batch_queues_.erase(it);
    }
  }
  *result = std::move(pending.result);
  return pending.status;
}

HttpResponse OptimusHttpService::HandleHealthz() {
  // Cluster health at a glance (DESIGN.md §16): per-node lifecycle state,
  // draining/accepting counts, and the serving placement version. "ok" means
  // every node accepts routes; anything less is "degraded" (but still 200 —
  // the gateway itself is serving).
  const std::vector<NodeLifecycle> states = platform_.NodeLifecycles();
  const int accepting = platform_.AcceptingNodes();
  std::ostringstream body;
  body << "{\"status\":\""
       << (accepting == static_cast<int>(states.size()) ? "ok" : "degraded") << "\",\"nodes\":[";
  for (size_t node = 0; node < states.size(); ++node) {
    if (node > 0) {
      body << ",";
    }
    body << "{\"node\":" << node << ",\"state\":\"" << NodeLifecycleName(states[node]) << "\"}";
  }
  body << "],\"num_nodes\":" << states.size() << ",\"accepting\":" << accepting
       << ",\"draining\":" << platform_.DrainingNodes()
       << ",\"placement_version\":" << platform_.PlacementVersion()
       << ",\"rebalances\":" << platform_.placement().Rebalances() << "}\n";
  HttpResponse response;
  response.content_type = "application/json";
  response.body = body.str();
  return response;
}

HttpResponse OptimusHttpService::HandleNodeAction(const HttpRequest& request) {
  // POST /nodes/<id>/drain [?grace=<sec>]  and  POST /nodes/<id>/revive.
  const std::string rest = request.path.substr(sizeof("/nodes/") - 1);
  const size_t slash = rest.find('/');
  if (slash == std::string::npos) {
    return JsonError(ErrorCode::kNotFound, "no such route: POST " + request.path);
  }
  int node = -1;
  try {
    size_t consumed = 0;
    node = std::stoi(rest.substr(0, slash), &consumed);
    if (consumed != slash) {
      throw std::invalid_argument("trailing characters");
    }
  } catch (const std::exception&) {
    return JsonError(ErrorCode::kInvalidArgument, "malformed node id in " + request.path);
  }
  if (node < 0 || node >= platform_.num_nodes()) {
    return JsonError(ErrorCode::kNotFound, "no such node: " + std::to_string(node));
  }
  const std::string action = rest.substr(slash + 1);
  bool ok = false;
  double grace = gateway_.drain_grace;
  if (action == "drain") {
    const auto grace_param = request.query.find("grace");
    if (grace_param != request.query.end()) {
      try {
        grace = std::stod(grace_param->second);
      } catch (const std::exception&) {
        return JsonError(ErrorCode::kInvalidArgument, "malformed ?grace=" + grace_param->second);
      }
    }
    ok = platform_.RevokeNode(node, grace, clock_());
  } else if (action == "revive") {
    ok = platform_.ReviveNode(node);
  } else {
    return JsonError(ErrorCode::kNotFound, "no such node action: " + action);
  }
  std::ostringstream body;
  body << "{\"node\":" << node << ",\"action\":\"" << action << "\",\"ok\":"
       << (ok ? "true" : "false") << ",\"state\":\""
       << NodeLifecycleName(platform_.NodeState(node)) << "\"";
  if (action == "drain") {
    body << ",\"grace\":" << grace;
  }
  body << "}\n";
  HttpResponse response;
  response.content_type = "application/json";
  response.body = body.str();
  return response;
}

HttpResponse OptimusHttpService::HandleWarmingAction(const HttpRequest& request) {
  // POST /warming/enable, /warming/disable, /warming/run.
  const std::string action = request.path.substr(sizeof("/warming/") - 1);
  std::ostringstream body;
  if (action == "enable" || action == "disable") {
    platform_.SetWarmingEnabled(action == "enable");
    body << "{\"action\":\"" << action
         << "\",\"enabled\":" << (platform_.WarmingEnabled() ? "true" : "false") << "}\n";
  } else if (action == "run") {
    // Synchronous warming cycle on the caller's thread (deterministic for
    // tests and operators; the background loop uses the same WarmNow).
    const size_t executed = platform_.WarmNow(clock_());
    body << "{\"action\":\"run\",\"enabled\":"
         << (platform_.WarmingEnabled() ? "true" : "false") << ",\"executed\":" << executed
         << "}\n";
  } else {
    return JsonError(ErrorCode::kNotFound, "no such warming action: " + action);
  }
  HttpResponse response;
  response.content_type = "application/json";
  response.body = body.str();
  return response;
}

HttpResponse OptimusHttpService::HandleMetrics() {
  // Point-in-time gauges are refreshed at scrape time, Prometheus-style.
  live_containers_.Set(static_cast<double>(platform_.NumLiveContainers()));
  functions_gauge_.Set(static_cast<double>(platform_.NumFunctions()));
  HttpResponse response;
  response.content_type = "text/plain; version=0.0.4";
  response.body = platform_.metrics().RenderPrometheus();
  return response;
}

HttpResponse OptimusHttpService::HandleTrace() {
  HttpResponse response;
  response.content_type = "application/json";
  response.body = telemetry::ExportChromeTrace(platform_.traces().Drain());
  return response;
}

HttpResponse OptimusHttpService::Handle(const HttpRequest& request) {
  if (request.method == "POST" && request.path == "/deploy") {
    return HandleDeploy(request);
  }

  if (request.method == "POST" && request.path == "/invoke") {
    return HandleInvoke(request);
  }

  if (request.method == "GET" && request.path == "/stats") {
    const PlatformCounters counters = platform_.counters();
    const PlanCache& cache = platform_.plan_cache();
    std::ostringstream body;
    body << "functions=" << platform_.NumFunctions() << "\n"
         << "containers=" << platform_.NumLiveContainers() << "\n"
         << "warm=" << counters.warm_starts << "\n"
         << "transform=" << counters.transforms << "\n"
         << "cold=" << counters.cold_starts << "\n"
         << "transform_failures=" << counters.transform_failures << "\n"
         << "transform_fallbacks=" << counters.transform_fallbacks << "\n"
         << "decide_failures=" << counters.decide_failures << "\n"
         << "failed_invokes=" << counters.failed_invokes << "\n"
         << "node_revocations=" << counters.node_revocations << "\n"
         << "node_revives=" << counters.node_revives << "\n"
         << "reclaimed_containers=" << counters.reclaimed_containers << "\n"
         << "accepting_nodes=" << counters.accepting_nodes << "\n"
         << "draining_nodes=" << counters.draining_nodes << "\n"
         << "cached_plans=" << cache.Size() << "\n"
         << "quarantined_pairs=" << cache.QuarantinedPairs() << "\n"
         << "execution_failures=" << cache.ExecutionFailures() << "\n"
         << "gateway_retries=" << Retries() << "\n"
         << "gateway_sheds=" << Sheds() << "\n"
         << "gateway_drops=" << Drops() << "\n"
         << "gateway_deadlines=" << DeadlinesExceeded() << "\n"
         << "warming_enabled=" << (platform_.WarmingEnabled() ? 1 : 0) << "\n"
         << "warming_cycles=" << counters.warming_cycles << "\n"
         << "warming_orders=" << counters.warming_orders << "\n"
         << "warming_prewarms_cold=" << counters.warming_prewarms_cold << "\n"
         << "warming_prewarms_transform=" << counters.warming_prewarms_transform << "\n"
         << "warming_hits=" << counters.warming_hits << "\n"
         << "warming_misses=" << counters.warming_misses << "\n"
         << "warming_waste=" << counters.warming_waste << "\n"
         << "warming_skipped=" << counters.warming_skipped << "\n"
         << "warming_failures=" << counters.warming_failures << "\n"
         << "placement_version=" << platform_.PlacementVersion() << "\n"
         << "placement_policy=" << BalancerKindId(platform_.placement().options().policy.kind)
         << "\n"
         << "rebalances=" << platform_.placement().Rebalances() << "\n"
         << "rebalance_failures=" << platform_.placement().RebalanceFailures() << "\n"
         << "placement=" << platform_.placement().StatsJson() << "\n";
    HttpResponse response;
    response.body = body.str();
    return response;
  }

  if (request.method == "GET" && request.path == "/healthz") {
    return HandleHealthz();
  }

  if (request.method == "POST" && request.path.rfind("/nodes/", 0) == 0) {
    return HandleNodeAction(request);
  }

  if (request.method == "GET" && request.path == "/metrics") {
    return HandleMetrics();
  }

  if (request.method == "GET" && request.path == "/trace") {
    return HandleTrace();
  }

  if (request.method == "GET" && request.path == "/placement") {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = platform_.placement().StatsJson() + "\n";
    return response;
  }

  if (request.method == "GET" && request.path == "/demand") {
    // Per-function demand history — the exact slotted series the placement
    // solver's correlation term and the warming forecaster consume.
    const std::map<std::string, DemandSeries> history = platform_.placement().DemandHistory();
    std::ostringstream body;
    body << "{\"slots\":" << platform_.placement().DemandSlots() << ",\"functions\":{";
    bool first = true;
    for (const auto& [function, series] : history) {
      if (!first) {
        body << ",";
      }
      first = false;
      body << "\"" << JsonEscape(function) << "\":[";
      for (size_t i = 0; i < series.size(); ++i) {
        if (i > 0) {
          body << ",";
        }
        body << series[i];
      }
      body << "]";
    }
    body << "}}\n";
    HttpResponse response;
    response.content_type = "application/json";
    response.body = body.str();
    return response;
  }

  if (request.method == "GET" && request.path == "/warming") {
    HttpResponse response;
    response.content_type = "application/json";
    response.body = platform_.WarmingStatsJson() + "\n";
    return response;
  }

  if (request.method == "POST" && request.path.rfind("/warming/", 0) == 0) {
    return HandleWarmingAction(request);
  }

  if (request.method == "POST" && request.path == "/rebalance") {
    const auto dry = request.query.find("dry_run");
    if (dry != request.query.end() && dry->second != "0" && dry->second != "false") {
      // Dry run: same solver, no snapshot swap — report the would-be moves.
      PlacementDiff diff;
      try {
        diff = platform_.PreviewRebalance();
      } catch (const std::exception& error) {
        return JsonError(ErrorCode::kInternal, error.what());
      }
      constexpr size_t kMaxMoves = 64;
      std::ostringstream body;
      body << "{\"dry_run\":true,\"version\":" << diff.version
           << ",\"would_move\":" << diff.moves.size() << ",\"unchanged\":" << diff.unchanged
           << ",\"moves\":[";
      for (size_t i = 0; i < diff.moves.size() && i < kMaxMoves; ++i) {
        if (i > 0) {
          body << ",";
        }
        body << "{\"function\":\"" << JsonEscape(diff.moves[i].function)
             << "\",\"from\":" << diff.moves[i].from << ",\"to\":" << diff.moves[i].to << "}";
      }
      body << "],\"truncated\":" << (diff.moves.size() > kMaxMoves ? "true" : "false") << "}\n";
      HttpResponse response;
      response.content_type = "application/json";
      response.body = body.str();
      return response;
    }
    const bool swapped = platform_.RebalanceNow("manual");
    HttpResponse response;
    response.content_type = "application/json";
    std::ostringstream body;
    body << "{\"swapped\":" << (swapped ? "true" : "false")
         << ",\"version\":" << platform_.PlacementVersion() << "}\n";
    response.body = body.str();
    return response;
  }

  if (request.method == "GET" && request.path == "/functions") {
    HttpResponse response;
    response.body = "count=" + std::to_string(platform_.NumFunctions()) + "\n";
    return response;
  }

  return JsonError(ErrorCode::kNotFound,
                   "no such route: " + request.method + " " + request.path);
}

}  // namespace optimus
