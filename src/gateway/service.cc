#include "src/gateway/service.h"

#include <chrono>
#include <sstream>

namespace optimus {

namespace {

std::vector<float> ParseFloats(const std::string& csv) {
  std::vector<float> values;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) {
      values.push_back(std::stof(token));
    }
  }
  return values;
}

std::string FormatOutput(const std::vector<float>& output, size_t limit = 8) {
  std::ostringstream out;
  for (size_t i = 0; i < output.size() && i < limit; ++i) {
    if (i > 0) {
      out << ",";
    }
    out << output[i];
  }
  return out.str();
}

}  // namespace

OptimusHttpService::OptimusHttpService(const CostModel* costs, const PlatformOptions& options,
                                       std::function<double()> clock)
    : platform_(costs, options), clock_(std::move(clock)) {
  if (!clock_) {
    const auto start = std::chrono::steady_clock::now();
    clock_ = [start] {
      return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    };
  }
}

void OptimusHttpService::Start(uint16_t port, int num_workers) {
  server_.Start(port, [this](const HttpRequest& request) { return Handle(request); },
                num_workers);
}

void OptimusHttpService::Stop() { server_.Stop(); }

HttpResponse OptimusHttpService::Handle(const HttpRequest& request) {
  HttpResponse response;

  if (request.method == "POST" && request.path == "/deploy") {
    auto name = request.query.find("name");
    if (name == request.query.end() || name->second.empty()) {
      response.status = 400;
      response.body = "missing ?name=\n";
      return response;
    }
    try {
      platform_.DeployFile(name->second,
                           ModelFile(request.body.begin(), request.body.end()));
    } catch (const std::invalid_argument& error) {
      response.status = 409;
      response.body = std::string(error.what()) + "\n";
      return response;
    } catch (const std::exception& error) {
      response.status = 400;
      response.body = std::string(error.what()) + "\n";
      return response;
    }
    response.body = "deployed " + name->second + "\n";
    return response;
  }

  if (request.method == "POST" && request.path == "/invoke") {
    auto name = request.query.find("name");
    if (name == request.query.end() || name->second.empty()) {
      response.status = 400;
      response.body = "missing ?name=\n";
      return response;
    }
    std::vector<float> input;
    try {
      input = ParseFloats(request.body);
    } catch (const std::exception&) {
      response.status = 400;
      response.body = "malformed input vector\n";
      return response;
    }
    try {
      const InvokeResult result = platform_.Invoke(name->second, input, clock_());
      std::ostringstream body;
      body << "start=" << StartTypeName(result.start) << "\n"
           << "estimated_latency=" << result.estimated_latency << "\n";
      if (!result.donor_function.empty()) {
        body << "donor=" << result.donor_function << "\n";
      }
      body << "output=" << FormatOutput(result.output) << "\n";
      response.body = body.str();
    } catch (const std::out_of_range&) {
      response.status = 404;
      response.body = "unknown function " + name->second + "\n";
    }
    return response;
  }

  if (request.method == "GET" && request.path == "/stats") {
    std::ostringstream body;
    body << "functions=" << platform_.NumFunctions() << "\n"
         << "containers=" << platform_.NumLiveContainers() << "\n"
         << "warm=" << platform_.WarmStarts() << "\n"
         << "transform=" << platform_.Transforms() << "\n"
         << "cold=" << platform_.ColdStarts() << "\n"
         << "cached_plans=" << platform_.plan_cache().Size() << "\n";
    response.body = body.str();
    return response;
  }

  if (request.method == "GET" && request.path == "/functions") {
    response.body = "count=" + std::to_string(platform_.NumFunctions()) + "\n";
    return response;
  }

  response.status = 404;
  response.body = "no such route: " + request.method + " " + request.path + "\n";
  return response;
}

}  // namespace optimus
