#include "src/gateway/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <sstream>
#include <stdexcept>

namespace optimus {

namespace {

constexpr size_t kMaxRequestBytes = 64 << 20;

std::string StatusText(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 409:
      return "Conflict";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

void SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) {
      throw std::runtime_error("SendAll: send failed");
    }
    sent += static_cast<size_t>(n);
  }
}

// Reads from `fd` until a full HTTP request (headers + Content-Length body)
// is buffered, then parses it. Returns false on EOF before a full request.
bool ReadRequest(int fd, HttpRequest* request) {
  std::string buffer;
  char chunk[4096];
  while (buffer.size() < kMaxRequestBytes) {
    if (ParseHttpRequest(buffer, request)) {
      return true;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      return false;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  return ParseHttpRequest(buffer, request);
}

std::string ReadResponse(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n <= 0) {
      break;
    }
    buffer.append(chunk, static_cast<size_t>(n));
  }
  return buffer;
}

void ParseQuery(const std::string& query_string, std::map<std::string, std::string>* query) {
  size_t start = 0;
  while (start < query_string.size()) {
    size_t end = query_string.find('&', start);
    if (end == std::string::npos) {
      end = query_string.size();
    }
    const std::string pair = query_string.substr(start, end - start);
    const size_t equals = pair.find('=');
    if (equals == std::string::npos) {
      (*query)[pair] = "";
    } else {
      (*query)[pair.substr(0, equals)] = pair.substr(equals + 1);
    }
    start = end + 1;
  }
}

}  // namespace

bool ParseHttpRequest(const std::string& raw, HttpRequest* request) {
  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    return false;
  }
  std::istringstream head(raw.substr(0, head_end));
  std::string request_line;
  if (!std::getline(head, request_line)) {
    return false;
  }
  std::istringstream first(request_line);
  std::string target;
  std::string version;
  first >> request->method >> target >> version;
  if (request->method.empty() || target.empty()) {
    return false;
  }
  const size_t question = target.find('?');
  request->path = target.substr(0, question);
  request->query.clear();
  if (question != std::string::npos) {
    ParseQuery(target.substr(question + 1), &request->query);
  }

  size_t content_length = 0;
  std::string header;
  while (std::getline(head, header)) {
    const size_t colon = header.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    std::string name = header.substr(0, colon);
    for (auto& c : name) {
      c = static_cast<char>(std::tolower(c));
    }
    if (name == "content-length") {
      try {
        content_length = static_cast<size_t>(std::stoul(header.substr(colon + 1)));
      } catch (const std::exception&) {
        throw std::runtime_error("ParseHttpRequest: malformed Content-Length");
      }
      if (content_length > kMaxRequestBytes) {
        throw std::runtime_error("ParseHttpRequest: request body too large");
      }
    }
  }
  const size_t body_start = head_end + 4;
  if (raw.size() < body_start + content_length) {
    return false;  // Body not fully buffered yet.
  }
  request->body = raw.substr(body_start, content_length);
  return true;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Start(uint16_t port, HttpHandler handler, int num_workers) {
  if (running_.load()) {
    throw std::runtime_error("HttpServer::Start: already running");
  }
  handler_ = std::move(handler);
  workers_ = std::make_unique<ThreadPool>(num_workers);
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("HttpServer: socket() failed");
  }
  const int enable = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &enable, sizeof(enable));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: bind() failed");
  }
  socklen_t addr_len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len);
  port_ = ntohs(addr.sin_port);
  if (::listen(listen_fd_, 16) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: listen() failed");
  }
  running_.store(true);
  thread_ = std::thread(&HttpServer::Serve, this);
}

void HttpServer::Serve() {
  while (running_.load()) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      break;  // Listening socket closed by Stop().
    }
    // Hand the connection to the pool; the accept loop goes straight back to
    // accept() so a slow handler never blocks other clients.
    workers_->Submit([this, client] { HandleClient(client); });
  }
}

void HttpServer::HandleClient(int client_fd) {
  HttpRequest request;
  HttpResponse response;
  bool parsed = false;
  try {
    parsed = ReadRequest(client_fd, &request);
  } catch (const std::exception&) {
    parsed = false;  // Malformed head (e.g. bad Content-Length).
  }
  if (parsed) {
    try {
      response = handler_(request);
    } catch (const std::exception& error) {
      response.status = 500;
      response.body = std::string("error: ") + error.what() + "\n";
    }
  } else {
    response.status = 400;
    response.body = "malformed request\n";
  }
  std::ostringstream out;
  out << "HTTP/1.1 " << response.status << " " << StatusText(response.status) << "\r\n"
      << "Content-Type: " << response.content_type << "\r\n"
      << "Content-Length: " << response.body.size() << "\r\n";
  for (const auto& [name, value] : response.headers) {
    out << name << ": " << value << "\r\n";
  }
  out << "Connection: close\r\n\r\n" << response.body;
  try {
    SendAll(client_fd, out.str());
  } catch (const std::exception&) {
    // Client hung up; nothing to do.
  }
  ::close(client_fd);
}

void HttpServer::Stop() {
  if (!running_.exchange(false)) {
    return;
  }
  // Closing the listening socket unblocks accept().
  const int fd = listen_fd_.exchange(-1);
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
  if (thread_.joinable()) {
    thread_.join();
  }
  workers_.reset();  // Drains in-flight connections before returning.
}

HttpResponse HttpFetch(uint16_t port, const std::string& method, const std::string& target,
                       const std::string& body) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    throw std::runtime_error("HttpFetch: socket() failed");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    throw std::runtime_error("HttpFetch: connect() failed");
  }
  std::ostringstream out;
  out << method << " " << target << " HTTP/1.1\r\n"
      << "Host: 127.0.0.1\r\n"
      << "Content-Length: " << body.size() << "\r\n"
      << "Connection: close\r\n\r\n"
      << body;
  try {
    SendAll(fd, out.str());
  } catch (...) {
    ::close(fd);
    throw;
  }
  const std::string raw = ReadResponse(fd);
  ::close(fd);

  const size_t head_end = raw.find("\r\n\r\n");
  if (head_end == std::string::npos || raw.compare(0, 5, "HTTP/") != 0) {
    throw std::runtime_error("HttpFetch: malformed response");
  }
  HttpResponse response;
  {
    std::istringstream status_line(raw.substr(0, raw.find("\r\n")));
    std::string version;
    status_line >> version >> response.status;
  }
  // Surface every response header (Content-Type specially, so callers can
  // assert on it; the rest — e.g. Retry-After — land in the headers map).
  std::istringstream headers(raw.substr(0, head_end));
  std::string line;
  std::getline(headers, line);  // Skip the status line.
  while (std::getline(headers, line)) {
    const size_t colon = line.find(':');
    if (colon == std::string::npos) {
      continue;
    }
    std::string value = line.substr(colon + 1);
    const size_t begin = value.find_first_not_of(" \t");
    const size_t end = value.find_last_not_of(" \t\r");
    if (begin == std::string::npos) {
      continue;
    }
    value = value.substr(begin, end - begin + 1);
    const std::string name = line.substr(0, colon);
    if (name == "Content-Type") {
      response.content_type = value;
    } else {
      response.headers[name] = value;
    }
  }
  response.body = raw.substr(head_end + 4);
  return response;
}

}  // namespace optimus
