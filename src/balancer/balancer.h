// Function-to-node placement (paper §5.1).
//
// The model sharing-aware balancer co-locates functions whose models are
// structurally similar (small editing distance D) and whose demand dynamics
// are complementary (low or negative correlation K), using K-medoids over the
// combined distance gamma_d * D̂(A,B) + gamma_k * K̂(A,B). Hash-based and
// load-based baselines represent the strategies existing serverless systems
// use.

#ifndef OPTIMUS_SRC_BALANCER_BALANCER_H_
#define OPTIMUS_SRC_BALANCER_BALANCER_H_

#include <map>
#include <string>
#include <vector>

#include "src/graph/model.h"
#include "src/runtime/cost_model.h"
#include "src/workload/trace.h"

namespace optimus {

// function name -> node index in [0, num_nodes).
using Placement = std::map<std::string, int>;

enum class BalancerKind : uint8_t {
  kHash = 0,        // Stateless hashing (existing systems' default).
  kLoadBased,       // Spread expected demand evenly (resource-usage based).
  kModelSharing,    // The §5.1 similarity + complementarity K-medoids scheme.
};

const char* BalancerKindName(BalancerKind kind);

struct BalancerOptions {
  BalancerKind kind = BalancerKind::kModelSharing;
  // Combined-distance weights (the paper's gamma_i for D and gamma_j for K).
  double gamma_distance = 0.6;
  double gamma_correlation = 0.4;
  // K-medoids granularity: the model-sharing balancer forms
  // clusters_per_node * num_nodes clusters, then bin-packs whole clusters
  // onto nodes by expected demand. >1 keeps node load even when cluster
  // sizes are skewed.
  int clusters_per_node = 2;
  uint64_t seed = 1;
};

// Computes the placement of `models` (structure-only) onto `num_nodes` nodes.
// `history` provides demand series for the correlation term (may be empty,
// in which case K is treated as 0). The cost model supplies D via the group
// planner's transformation cost.
Placement PlaceFunctions(const std::vector<Model>& models, int num_nodes,
                         const std::map<std::string, DemandSeries>& history,
                         const CostModel& costs, const BalancerOptions& options);

// Non-owning overload for callers (the placement subsystem) whose models live
// in a repository: no copies are made. `costs` may be null for kHash and
// kLoadBased; kModelSharing requires it (throws std::invalid_argument).
Placement PlaceFunctions(const std::vector<const Model*>& models, int num_nodes,
                         const std::map<std::string, DemandSeries>& history,
                         const CostModel* costs, const BalancerOptions& options);

// The pairwise combined-distance matrix the model-sharing balancer clusters;
// exposed for tests and ablation benchmarks. Distances are normalized to
// [0, 1] per term before weighting, and symmetrized via min(D(a,b), D(b,a)).
std::vector<std::vector<double>> CombinedDistanceMatrix(
    const std::vector<Model>& models, const std::map<std::string, DemandSeries>& history,
    const CostModel& costs, const BalancerOptions& options);

}  // namespace optimus

#endif  // OPTIMUS_SRC_BALANCER_BALANCER_H_
