#include "src/balancer/kmedoids.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "src/common/rng.h"

namespace optimus {

namespace {

// Assigns every point to its nearest medoid; returns the total distance.
double Assign(const std::vector<std::vector<double>>& distance, const std::vector<int>& medoids,
              std::vector<int>* assignment) {
  const size_t n = distance.size();
  assignment->assign(n, 0);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < medoids.size(); ++c) {
      const double d = distance[i][static_cast<size_t>(medoids[c])];
      if (d < best) {
        best = d;
        (*assignment)[i] = static_cast<int>(c);
      }
    }
    total += best;
  }
  return total;
}

}  // namespace

KMedoidsResult KMedoids(const std::vector<std::vector<double>>& distance, int k, uint64_t seed,
                        int max_iterations) {
  const int n = static_cast<int>(distance.size());
  if (k < 1 || k > n) {
    throw std::invalid_argument("KMedoids: k must be in [1, n]");
  }

  // BUILD: first medoid minimizes total distance; subsequent medoids greedily
  // maximize cost reduction.
  KMedoidsResult result;
  {
    int best = 0;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      double cost = 0.0;
      for (int j = 0; j < n; ++j) {
        cost += distance[static_cast<size_t>(j)][static_cast<size_t>(i)];
      }
      if (cost < best_cost) {
        best_cost = cost;
        best = i;
      }
    }
    result.medoids.push_back(best);
  }
  Rng rng(seed);
  while (static_cast<int>(result.medoids.size()) < k) {
    int best = -1;
    double best_cost = std::numeric_limits<double>::infinity();
    for (int candidate = 0; candidate < n; ++candidate) {
      if (std::find(result.medoids.begin(), result.medoids.end(), candidate) !=
          result.medoids.end()) {
        continue;
      }
      std::vector<int> trial = result.medoids;
      trial.push_back(candidate);
      std::vector<int> assignment;
      const double cost = Assign(distance, trial, &assignment);
      if (cost < best_cost) {
        best_cost = cost;
        best = candidate;
      }
    }
    result.medoids.push_back(best);
  }

  // SWAP: try replacing each medoid with each non-medoid while it improves.
  result.total_distance = Assign(distance, result.medoids, &result.assignment);
  for (int iteration = 0; iteration < max_iterations; ++iteration) {
    bool improved = false;
    for (size_t c = 0; c < result.medoids.size(); ++c) {
      for (int candidate = 0; candidate < n; ++candidate) {
        if (std::find(result.medoids.begin(), result.medoids.end(), candidate) !=
            result.medoids.end()) {
          continue;
        }
        std::vector<int> trial = result.medoids;
        trial[c] = candidate;
        std::vector<int> assignment;
        const double cost = Assign(distance, trial, &assignment);
        if (cost + 1e-12 < result.total_distance) {
          result.medoids = trial;
          result.assignment = assignment;
          result.total_distance = cost;
          improved = true;
        }
      }
    }
    if (!improved) {
      break;
    }
  }
  return result;
}

}  // namespace optimus
