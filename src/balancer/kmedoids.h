// K-medoids (PAM) clustering over a precomputed distance matrix, used by the
// model sharing-aware load balancer (paper §5.1).

#ifndef OPTIMUS_SRC_BALANCER_KMEDOIDS_H_
#define OPTIMUS_SRC_BALANCER_KMEDOIDS_H_

#include <cstdint>
#include <vector>

namespace optimus {

struct KMedoidsResult {
  std::vector<int> medoids;      // Indices of the k cluster centers.
  std::vector<int> assignment;   // assignment[i] = cluster index in [0, k).
  double total_distance = 0.0;   // Sum of point-to-medoid distances.
};

// Partitioning Around Medoids: greedy BUILD initialization followed by SWAP
// iterations until convergence (or `max_iterations`). `distance` must be a
// square symmetric matrix with zero diagonal. Requires 1 <= k <= n.
KMedoidsResult KMedoids(const std::vector<std::vector<double>>& distance, int k,
                        uint64_t seed = 1, int max_iterations = 50);

}  // namespace optimus

#endif  // OPTIMUS_SRC_BALANCER_KMEDOIDS_H_
