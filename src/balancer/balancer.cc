#include "src/balancer/balancer.h"

#include <algorithm>
#include <functional>
#include <numeric>
#include <stdexcept>

#include "src/balancer/kmedoids.h"
#include "src/core/planner.h"

namespace optimus {

const char* BalancerKindName(BalancerKind kind) {
  switch (kind) {
    case BalancerKind::kHash:
      return "Hash";
    case BalancerKind::kLoadBased:
      return "LoadBased";
    case BalancerKind::kModelSharing:
      return "ModelSharing";
  }
  return "Unknown";
}

namespace {

std::vector<const Model*> Pointers(const std::vector<Model>& models) {
  std::vector<const Model*> pointers;
  pointers.reserve(models.size());
  for (const Model& model : models) {
    pointers.push_back(&model);
  }
  return pointers;
}

std::vector<std::vector<double>> CombinedDistanceMatrixImpl(
    const std::vector<const Model*>& models, const std::map<std::string, DemandSeries>& history,
    const CostModel& costs, const BalancerOptions& options) {
  const size_t n = models.size();
  std::vector<std::vector<double>> edit(n, std::vector<double>(n, 0.0));
  double max_edit = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double forward = ModelEditDistance(*models[i], *models[j], costs);
      const double backward = ModelEditDistance(*models[j], *models[i], costs);
      const double d = std::min(forward, backward);
      edit[i][j] = edit[j][i] = d;
      max_edit = std::max(max_edit, d);
    }
  }

  std::vector<std::vector<double>> combined(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double normalized_edit = max_edit > 0.0 ? edit[i][j] / max_edit : 0.0;
      double correlation = 0.0;
      auto a = history.find(models[i]->name());
      auto b = history.find(models[j]->name());
      if (a != history.end() && b != history.end()) {
        correlation = DemandCorrelation(a->second, b->second);
      }
      // Map correlation [-1, 1] -> [0, 1]; anti-correlated (complementary)
      // demand yields a small distance.
      const double normalized_corr = (correlation + 1.0) / 2.0;
      combined[i][j] = combined[j][i] = options.gamma_distance * normalized_edit +
                                        options.gamma_correlation * normalized_corr;
    }
  }
  return combined;
}

Placement HashPlacement(const std::vector<const Model*>& models, int num_nodes) {
  Placement placement;
  for (const Model* model : models) {
    placement[model->name()] =
        static_cast<int>(std::hash<std::string>{}(model->name()) %
                         static_cast<size_t>(num_nodes));
  }
  return placement;
}

Placement LoadBasedPlacement(const std::vector<const Model*>& models, int num_nodes,
                             const std::map<std::string, DemandSeries>& history) {
  // Greedy bin packing by expected demand: heaviest functions first, each to
  // the currently least-loaded node.
  std::vector<std::pair<double, std::string>> demand;
  for (const Model* model : models) {
    double total = 1.0;  // Every function contributes at least a unit load.
    auto it = history.find(model->name());
    if (it != history.end()) {
      total += std::accumulate(it->second.begin(), it->second.end(), 0.0);
    }
    demand.emplace_back(total, model->name());
  }
  std::sort(demand.rbegin(), demand.rend());
  std::vector<double> node_load(static_cast<size_t>(num_nodes), 0.0);
  Placement placement;
  for (const auto& [load, name] : demand) {
    const auto lightest = std::min_element(node_load.begin(), node_load.end());
    placement[name] = static_cast<int>(lightest - node_load.begin());
    *lightest += load;
  }
  return placement;
}

Placement ModelSharingPlacement(const std::vector<const Model*>& models, int num_nodes,
                                const std::map<std::string, DemandSeries>& history,
                                const CostModel& costs, const BalancerOptions& options) {
  const auto distance = CombinedDistanceMatrixImpl(models, history, costs, options);
  // Cluster at finer granularity than the node count, then bin-pack clusters
  // onto nodes by expected demand: keeping whole clusters together preserves
  // transformation affinity, while the packing keeps node load even (§5.1's
  // "the load balancer should consider the load of nodes").
  const int k = std::min<int>(std::max(1, options.clusters_per_node) * num_nodes,
                              static_cast<int>(models.size()));
  const KMedoidsResult clusters = KMedoids(distance, k, options.seed);

  auto demand_of = [&](size_t model_index) {
    double total = 1.0;
    auto it = history.find(models[model_index]->name());
    if (it != history.end()) {
      total += std::accumulate(it->second.begin(), it->second.end(), 0.0);
    }
    return total;
  };

  std::vector<double> cluster_demand(static_cast<size_t>(k), 0.0);
  std::vector<std::vector<size_t>> cluster_members(static_cast<size_t>(k));
  for (size_t i = 0; i < models.size(); ++i) {
    const auto cluster = static_cast<size_t>(clusters.assignment[i]);
    cluster_demand[cluster] += demand_of(i);
    cluster_members[cluster].push_back(i);
  }

  // Member-level greedy packing with cluster affinity: every function
  // prefers a node that already hosts its cluster (so transformation donors
  // stay local), but no node takes more than its fair share of functions —
  // under skewed demand a single hot cluster must not starve the others of
  // container slots.
  const size_t cap =
      (models.size() + static_cast<size_t>(num_nodes) - 1) / static_cast<size_t>(num_nodes);
  std::vector<int> order(static_cast<size_t>(k));
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return cluster_demand[static_cast<size_t>(a)] > cluster_demand[static_cast<size_t>(b)];
  });

  std::vector<double> node_load(static_cast<size_t>(num_nodes), 0.0);
  std::vector<size_t> node_count(static_cast<size_t>(num_nodes), 0);
  Placement placement;
  for (const int cluster : order) {
    std::vector<bool> hosts_cluster(static_cast<size_t>(num_nodes), false);
    for (const size_t member : cluster_members[static_cast<size_t>(cluster)]) {
      int best_node = -1;
      for (int node = 0; node < num_nodes; ++node) {
        if (node_count[static_cast<size_t>(node)] >= cap) {
          continue;
        }
        if (best_node == -1) {
          best_node = node;
          continue;
        }
        const bool best_hosts = hosts_cluster[static_cast<size_t>(best_node)];
        const bool node_hosts = hosts_cluster[static_cast<size_t>(node)];
        if (node_hosts != best_hosts) {
          if (node_hosts) {
            best_node = node;
          }
          continue;
        }
        if (node_load[static_cast<size_t>(node)] < node_load[static_cast<size_t>(best_node)]) {
          best_node = node;
        }
      }
      placement[models[member]->name()] = best_node;
      node_load[static_cast<size_t>(best_node)] += demand_of(member);
      node_count[static_cast<size_t>(best_node)] += 1;
      hosts_cluster[static_cast<size_t>(best_node)] = true;
    }
  }
  return placement;
}

}  // namespace

std::vector<std::vector<double>> CombinedDistanceMatrix(
    const std::vector<Model>& models, const std::map<std::string, DemandSeries>& history,
    const CostModel& costs, const BalancerOptions& options) {
  return CombinedDistanceMatrixImpl(Pointers(models), history, costs, options);
}

Placement PlaceFunctions(const std::vector<const Model*>& models, int num_nodes,
                         const std::map<std::string, DemandSeries>& history,
                         const CostModel* costs, const BalancerOptions& options) {
  if (num_nodes < 1) {
    throw std::invalid_argument("PlaceFunctions: need at least one node");
  }
  switch (options.kind) {
    case BalancerKind::kHash:
      return HashPlacement(models, num_nodes);
    case BalancerKind::kLoadBased:
      return LoadBasedPlacement(models, num_nodes, history);
    case BalancerKind::kModelSharing:
      if (costs == nullptr) {
        throw std::invalid_argument("PlaceFunctions: model sharing needs a cost model");
      }
      return ModelSharingPlacement(models, num_nodes, history, *costs, options);
  }
  return {};
}

Placement PlaceFunctions(const std::vector<Model>& models, int num_nodes,
                         const std::map<std::string, DemandSeries>& history,
                         const CostModel& costs, const BalancerOptions& options) {
  return PlaceFunctions(Pointers(models), num_nodes, history, &costs, options);
}

}  // namespace optimus
