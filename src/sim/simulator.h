// Streaming discrete-event cluster simulator for end-to-end serverless ML
// inference experiments (paper §8.3-§8.5; DESIGN.md §18).
//
// Requests flow through the lifecycle the paper's Figure 1 describes:
// dispatch to a node (via the load balancer), container acquisition
// (warm start / transformation / cold start per the system's policy),
// sandbox+runtime init, model load or transformation, inference compute.
// Virtual time comes from the calibrated cost model, so results are
// deterministic and machine-independent.
//
// The core is *streaming*: arrivals are pulled one at a time from a
// TraceSource (only the next arrival lives in the event queue), warming
// cycles and churn events schedule their successors lazily from their
// handlers, and accounting accumulates into log-bucketed histograms plus a
// seeded reservoir sample. Simulation memory is therefore
// O(nodes + functions + histogram buckets) — independent of request count —
// which is what lets bench_sim_scale push ≥1M requests over ≥1000 nodes in
// one pass. Per-request records remain available (RecordMode) for the
// small-trace ablation benches and tests, bit-for-bit compatible with the
// pre-streaming simulator.

#ifndef OPTIMUS_SRC_SIM_SIMULATOR_H_
#define OPTIMUS_SRC_SIM_SIMULATOR_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/baselines/systems.h"
#include "src/placement/placement.h"
#include "src/sim/sim_stats.h"
#include "src/warming/policy.h"
#include "src/workload/function_table.h"
#include "src/workload/trace.h"
#include "src/workload/trace_source.h"

namespace optimus {

// Which idle container a full node evicts for a fresh one. kGreedyDual is
// the FaasCache-style keep-alive the paper calls complementary (§2.2): the
// victim is the container whose model is cheapest to reload, aged by a
// global clock.
enum class EvictionPolicy : uint8_t { kLru = 0, kGreedyDual };

// One scheduled node-lifecycle event (DESIGN.md §16) — the simulator mirror
// of the live platform's RevokeNode/ReviveNode, so churn ablations replay
// identically live and simulated. Events execute in (time, schedule-order).
struct NodeChurnEvent {
  double time = 0.0;
  int node = 0;
  // false = revoke (grace window below), true = revive a Down node.
  bool revive = false;
  // Revoke only: virtual seconds of grace before the node's containers are
  // reclaimed; <= 0 kills the node immediately.
  double grace = 0.0;
};

// Whether the simulator keeps one RequestRecord per request (O(requests)
// memory). kAuto resolves to kOn for the materialized-Trace entry point
// (existing benches and tests read `records`) and kOff for the streaming
// entry point (scale runs must stay bounded).
enum class RecordMode : uint8_t { kAuto = 0, kOn, kOff };

struct SimConfig {
  SystemType system = SystemType::kOptimus;
  int num_nodes = 2;
  int containers_per_node = 8;
  double idle_threshold = 60.0;   // §4.2 timer threshold.
  double keep_alive = 600.0;      // 10-minute keep-alive (§8.1).
  EvictionPolicy eviction = EvictionPolicy::kLru;
  SystemProfile profile = SystemProfile::Cpu();
  // Placement strategy — the same PlacementPolicy implementations the live
  // platform routes through (src/placement). The paper's Optimus uses the
  // model sharing-aware policy; existing systems hash.
  PlacementOptions placement;
  PlannerKind planner = PlannerKind::kGroup;

  // --- Streaming accounting (DESIGN.md §18). --------------------------------
  RecordMode records = RecordMode::kAuto;
  // Capacity and seed of the service-time reservoir sample.
  size_t sample_capacity = 4096;
  uint64_t sample_seed = 0x0ccab5eed;

  // --- Memory modeling (§6 "fine-grained resource allocation"). -------------
  // Per-node memory budget; 0 disables memory accounting entirely.
  int64_t node_memory_bytes = 0;
  // Homogeneous allocation (the paper's default): every container gets this
  // size regardless of its model.
  int64_t uniform_container_bytes = 4LL << 30;
  // Fine-grained allocation (§6 extension): size each container to its
  // model's footprint, fitting more containers per node — at the price that
  // a small donor container cannot host a larger model.
  bool fine_grained_containers = false;

  // --- Node churn (DESIGN.md §16). ------------------------------------------
  // Scheduled revocations/revives. On a revoke the node stops receiving new
  // routes (the placement table republishes with the node masked dead and the
  // policy re-clusters over the survivors), its queued requests re-home, and
  // its containers are reclaimed when the grace window closes.
  std::vector<NodeChurnEvent> churn;

  // --- Forecast-driven warming (DESIGN.md §17). -----------------------------
  // The same WarmingEngine the live platform runs, in virtual time: one
  // warming cycle per warming.interval harvests served counts into a demand
  // accumulator, forecasts, and executes budget-capped pre-warm orders.
  WarmingOptions warming;
};

// Memory footprint of serving `model` in a container (runtime baseline plus
// resident weights with framework overhead).
int64_t ContainerFootprintBytes(const Model& model);

// Per-request latency decomposition (RecordMode::kOn only).
struct RequestRecord {
  std::string function;
  double arrival = 0.0;
  double wait = 0.0;     // Queueing delay on the node.
  double init = 0.0;     // Sandbox/runtime/GPU initialization.
  double load = 0.0;     // Model load or transformation.
  double compute = 0.0;  // Inference computation.
  StartType start = StartType::kCold;

  double ServiceTime() const { return wait + init + load + compute; }
};

struct SimResult {
  // Per-request records; populated only under RecordMode::kOn (the default
  // for the materialized-Trace entry point). When present, every aggregate
  // accessor below computes from the records — bit-for-bit the pre-streaming
  // behavior.
  std::vector<RequestRecord> records;

  // --- Streaming accounting (always populated; DESIGN.md §18). --------------
  uint64_t total_requests = 0;
  double sum_wait = 0.0;
  double sum_init = 0.0;
  double sum_load = 0.0;
  double sum_compute = 0.0;
  // Start-type counts indexed by StartType (kWarm/kTransform/kCold).
  std::array<uint64_t, 3> start_counts{};
  // Log-bucketed service-time distribution (~5% relative resolution).
  LatencyHistogram service_hist;
  // Seeded uniform sample of service times.
  ReservoirSample service_sample;

  // Node-churn accounting (all zero when SimConfig::churn is empty).
  size_t revocations = 0;
  size_t revives = 0;
  size_t reclaimed_containers = 0;
  // Queued requests re-dispatched off a revoked node onto survivors.
  size_t rehomed_requests = 0;
  // Placement-table republishes triggered by churn (mask swap + re-cluster).
  size_t churn_rebalances = 0;

  // Forecast-driven warming accounting (all zero when SimConfig::warming is
  // disabled) — the same bucket semantics as PlatformCounters: speculative
  // work never touches the per-request start-type records, and
  //   prewarms_cold + prewarms_transform == hits + waste + unused.
  size_t warming_cycles = 0;
  size_t warming_orders = 0;
  size_t warming_prewarms_cold = 0;
  size_t warming_prewarms_transform = 0;
  size_t warming_hits = 0;
  size_t warming_waste = 0;
  size_t warming_skipped = 0;
  // Pre-warmed containers still alive and unused at the horizon.
  size_t warming_unused = 0;
  // Virtual seconds between each pre-warm and its first hit. Bounded by the
  // number of warming orders (O(horizon / interval)), not by requests.
  std::vector<double> warming_lead_seconds;

  size_t WarmingPrewarms() const { return warming_prewarms_cold + warming_prewarms_transform; }

  double AvgServiceTime() const;
  double AvgWait() const;
  double AvgInit() const;
  double AvgLoad() const;
  double AvgCompute() const;
  // Fraction of requests served via the given start type, in [0, 1].
  double FractionOf(StartType type) const;
  size_t CountOf(StartType type) const;

  // Service-time percentile (q in [0, 1], e.g. 0.5 / 0.95 / 0.99). With
  // records, exact against a lazily sorted (memoized) copy; without, read
  // from the log-bucketed histogram (within one bucket's relative width).
  // Not thread-safe on first call (builds the memo).
  double ServiceTimePercentile(double q) const;

 private:
  // Memoized sorted service times for the record-based percentile path —
  // sorting all records per call was the old O(n log n)-per-query cost.
  mutable std::vector<double> sorted_service_times_;
};

// The function universe a streaming simulation serves. Functions alias model
// structures via `function_model` (many functions per model is the
// million-function regime: distinct names, shared architecture), so memory
// stays O(functions + distinct models).
struct SimWorkload {
  // Distinct model structures. Must outlive the simulation.
  const std::vector<Model>* models = nullptr;
  // Interned names of every function the source may emit.
  const FunctionTable* functions = nullptr;
  // FunctionId -> index into *models. Empty means identity (function i
  // serves models[i]; requires functions->size() == models->size()).
  std::vector<int32_t> function_model;
  // Demand history for the initial placement solve; may be empty.
  std::map<std::string, DemandSeries> history;
};

// Runs the trace through a cluster of the configured system. `models` are the
// registered (structure-only) models; every function in `trace` must appear.
// Materializes nothing extra: this is the streaming core behind a
// TraceVectorSource adapter with RecordMode::kAuto resolving to kOn.
SimResult RunSimulation(const std::vector<Model>& models, const Trace& trace,
                        const SimConfig& config, const CostModel& costs);

// Streaming entry point: pulls arrivals from `source` (which must emit only
// functions present in `workload.functions`). RecordMode::kAuto resolves to
// kOff — memory stays O(nodes + functions), independent of request count.
SimResult RunSimulationStream(const SimWorkload& workload, TraceSource* source,
                              const SimConfig& config, const CostModel& costs);

}  // namespace optimus

#endif  // OPTIMUS_SRC_SIM_SIMULATOR_H_
