// Discrete-event cluster simulator for end-to-end serverless ML inference
// experiments (paper §8.3-§8.5).
//
// Requests flow through the lifecycle the paper's Figure 1 describes:
// dispatch to a node (via the load balancer), container acquisition
// (warm start / transformation / cold start per the system's policy),
// sandbox+runtime init, model load or transformation, inference compute.
// Virtual time comes from the calibrated cost model, so results are
// deterministic and machine-independent.

#ifndef OPTIMUS_SRC_SIM_SIMULATOR_H_
#define OPTIMUS_SRC_SIM_SIMULATOR_H_

#include <string>
#include <vector>

#include "src/baselines/systems.h"
#include "src/placement/placement.h"
#include "src/warming/policy.h"
#include "src/workload/trace.h"

namespace optimus {

// Which idle container a full node evicts for a fresh one. kGreedyDual is
// the FaasCache-style keep-alive the paper calls complementary (§2.2): the
// victim is the container whose model is cheapest to reload, aged by a
// global clock.
enum class EvictionPolicy : uint8_t { kLru = 0, kGreedyDual };

// One scheduled node-lifecycle event (DESIGN.md §16) — the simulator mirror
// of the live platform's RevokeNode/ReviveNode, so churn ablations replay
// identically live and simulated. Events execute in (time, schedule-order).
struct NodeChurnEvent {
  double time = 0.0;
  int node = 0;
  // false = revoke (grace window below), true = revive a Down node.
  bool revive = false;
  // Revoke only: virtual seconds of grace before the node's containers are
  // reclaimed; <= 0 kills the node immediately.
  double grace = 0.0;
};

struct SimConfig {
  SystemType system = SystemType::kOptimus;
  int num_nodes = 2;
  int containers_per_node = 8;
  double idle_threshold = 60.0;   // §4.2 timer threshold.
  double keep_alive = 600.0;      // 10-minute keep-alive (§8.1).
  EvictionPolicy eviction = EvictionPolicy::kLru;
  SystemProfile profile = SystemProfile::Cpu();
  // Placement strategy — the same PlacementPolicy implementations the live
  // platform routes through (src/placement). The paper's Optimus uses the
  // model sharing-aware policy; existing systems hash.
  PlacementOptions placement;
  PlannerKind planner = PlannerKind::kGroup;

  // --- Memory modeling (§6 "fine-grained resource allocation"). -------------
  // Per-node memory budget; 0 disables memory accounting entirely.
  int64_t node_memory_bytes = 0;
  // Homogeneous allocation (the paper's default): every container gets this
  // size regardless of its model.
  int64_t uniform_container_bytes = 4LL << 30;
  // Fine-grained allocation (§6 extension): size each container to its
  // model's footprint, fitting more containers per node — at the price that
  // a small donor container cannot host a larger model.
  bool fine_grained_containers = false;

  // --- Node churn (DESIGN.md §16). ------------------------------------------
  // Scheduled revocations/revives. On a revoke the node stops receiving new
  // routes (the placement table republishes with the node masked dead and the
  // policy re-clusters over the survivors), its queued requests re-home, and
  // its containers are reclaimed when the grace window closes.
  std::vector<NodeChurnEvent> churn;

  // --- Forecast-driven warming (DESIGN.md §17). -----------------------------
  // The same WarmingEngine the live platform runs, in virtual time: one
  // warming cycle per warming.interval harvests served counts into a demand
  // accumulator, forecasts, and executes budget-capped pre-warm orders.
  WarmingOptions warming;
};

// Memory footprint of serving `model` in a container (runtime baseline plus
// resident weights with framework overhead).
int64_t ContainerFootprintBytes(const Model& model);

// Per-request latency decomposition.
struct RequestRecord {
  std::string function;
  double arrival = 0.0;
  double wait = 0.0;     // Queueing delay on the node.
  double init = 0.0;     // Sandbox/runtime/GPU initialization.
  double load = 0.0;     // Model load or transformation.
  double compute = 0.0;  // Inference computation.
  StartType start = StartType::kCold;

  double ServiceTime() const { return wait + init + load + compute; }
};

struct SimResult {
  std::vector<RequestRecord> records;

  // Node-churn accounting (all zero when SimConfig::churn is empty).
  size_t revocations = 0;
  size_t revives = 0;
  size_t reclaimed_containers = 0;
  // Queued requests re-dispatched off a revoked node onto survivors.
  size_t rehomed_requests = 0;
  // Placement-table republishes triggered by churn (mask swap + re-cluster).
  size_t churn_rebalances = 0;

  // Forecast-driven warming accounting (all zero when SimConfig::warming is
  // disabled) — the same bucket semantics as PlatformCounters: speculative
  // work never touches the per-request start-type records, and
  //   prewarms_cold + prewarms_transform == hits + waste + unused.
  size_t warming_cycles = 0;
  size_t warming_orders = 0;
  size_t warming_prewarms_cold = 0;
  size_t warming_prewarms_transform = 0;
  size_t warming_hits = 0;
  size_t warming_waste = 0;
  size_t warming_skipped = 0;
  // Pre-warmed containers still alive and unused at the horizon.
  size_t warming_unused = 0;
  // Virtual seconds between each pre-warm and its first hit.
  std::vector<double> warming_lead_seconds;

  size_t WarmingPrewarms() const { return warming_prewarms_cold + warming_prewarms_transform; }

  double AvgServiceTime() const;
  double AvgWait() const;
  double AvgInit() const;
  double AvgLoad() const;
  double AvgCompute() const;
  // Fraction of requests served via the given start type, in [0, 1].
  double FractionOf(StartType type) const;
  size_t CountOf(StartType type) const;

  // Service-time percentile (q in [0, 1], e.g. 0.5 / 0.95 / 0.99).
  double ServiceTimePercentile(double q) const;
};

// Runs the trace through a cluster of the configured system. `models` are the
// registered (structure-only) models; every function in `trace` must appear.
SimResult RunSimulation(const std::vector<Model>& models, const Trace& trace,
                        const SimConfig& config, const CostModel& costs);

}  // namespace optimus

#endif  // OPTIMUS_SRC_SIM_SIMULATOR_H_
