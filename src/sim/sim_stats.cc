#include "src/sim/sim_stats.h"

#include <algorithm>
#include <cmath>

namespace optimus {

size_t LatencyHistogram::BucketIndex(double seconds) {
  if (!(seconds > kFirstUpper)) {  // Also catches NaN and non-positives.
    return 0;
  }
  const double position = std::log(seconds / kFirstUpper) / std::log(kGrowth);
  // ceil: bucket i's upper bound is kFirstUpper * kGrowth^i, inclusive.
  const double index = std::ceil(position - 1e-12);
  // ~760 buckets reach past 1e10 s; anything above folds into the last one.
  constexpr double kMaxIndex = 800.0;
  return static_cast<size_t>(std::min(index, kMaxIndex));
}

void LatencyHistogram::Record(double seconds) {
  const size_t index = BucketIndex(seconds);
  if (index >= buckets_.size()) {
    buckets_.resize(index + 1, 0);
  }
  ++buckets_[index];
  ++count_;
  sum_ += seconds;
  min_ = count_ == 1 ? seconds : std::min(min_, seconds);
  max_ = std::max(max_, seconds);
}

double LatencyHistogram::Percentile(double q) const {
  if (count_ == 0) {
    return 0.0;
  }
  const double clamped = std::min(1.0, std::max(0.0, q));
  const uint64_t rank = std::min<uint64_t>(
      count_ - 1, static_cast<uint64_t>(clamped * static_cast<double>(count_)));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    cumulative += buckets_[i];
    if (cumulative > rank) {
      if (i == 0) {
        return min_;
      }
      const double upper = kFirstUpper * std::pow(kGrowth, static_cast<double>(i));
      const double mid = upper / std::sqrt(kGrowth);  // Geometric bucket midpoint.
      return std::min(max_, std::max(min_, mid));
    }
  }
  return max_;
}

void ReservoirSample::Add(double value) {
  ++seen_;
  if (samples_.size() < capacity_) {
    samples_.push_back(value);
    return;
  }
  if (capacity_ == 0) {
    return;
  }
  const uint64_t slot =
      static_cast<uint64_t>(rng_.UniformInt(0, static_cast<int64_t>(seen_) - 1));
  if (slot < capacity_) {
    samples_[static_cast<size_t>(slot)] = value;
  }
}

std::vector<double> ReservoirSample::Sorted() const {
  std::vector<double> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  return sorted;
}

}  // namespace optimus
