#include "src/sim/simulator.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>

#include "src/common/clock.h"
#include "src/core/node_pool.h"  // NodeLifecycle — the shared state machine.

namespace optimus {

namespace {

enum class EventType : uint8_t {
  kArrival = 0,
  kCompletion,
  kRevoke,
  kDrainExpire,
  kRevive,
  kWarmingCycle,
};

// Scheduling bands (DESIGN.md §18). The pre-streaming simulator pushed every
// arrival, then every churn event, then every warming cycle up front, and
// broke same-time ties by push order; dynamic events (completions, drain
// expiries) always tied *after* the static ones. Lazy scheduling pushes each
// successor from its handler instead, so push order no longer encodes that
// precedence — the band does. Ordering events by (time, band, seq) with a
// monotone per-band sequence reproduces the eager schedule bit-for-bit.
enum Band : uint8_t {
  kBandArrival = 0,
  kBandChurn = 1,
  kBandWarming = 2,
  kBandDynamic = 3,
};

struct Event {
  double time = 0.0;
  uint8_t band = kBandDynamic;
  uint64_t seq = 0;  // Monotone within the band.
  EventType type = EventType::kArrival;
  uint64_t ordinal = 0;                  // kArrival: request number (0-based).
  FunctionId fn = kInvalidFunction;      // kArrival.
  int node = -1;
  ContainerId container = -1;
  double grace = 0.0;  // kRevoke only.

  bool operator>(const Event& other) const {
    if (time != other.time) {
      return time > other.time;
    }
    if (band != other.band) {
      return band > other.band;
    }
    return seq > other.seq;
  }
};

// A request waiting on a node for a container. Carries everything TryServe
// needs so the queue never reaches back into a materialized trace.
struct QueuedRequest {
  uint64_t ordinal = 0;
  double arrival = 0.0;
  FunctionId fn = kInvalidFunction;
};

struct NodeState {
  ContainerPool pool;
  std::deque<QueuedRequest> queue;  // FIFO of pending requests.
  // Lifecycle mirror of NodePool::Node (DESIGN.md §16). The simulator has no
  // adoption gate, so a revive goes straight back to Up.
  NodeLifecycle lifecycle = NodeLifecycle::kUp;
  double drain_deadline = std::numeric_limits<double>::infinity();

  NodeState(int capacity, double idle_threshold, double keep_alive, int64_t memory_limit)
      : pool(capacity, idle_threshold, keep_alive, memory_limit) {}
};

class Simulation {
 public:
  Simulation(const SimWorkload& workload, TraceSource* source, const SimConfig& config,
             const CostModel& costs)
      : source_(source),
        config_(config),
        functions_(workload.functions),
        history_(workload.history),
        records_on_(config.records == RecordMode::kOn) {
    const std::vector<Model>& models = *workload.models;

    // Distinct models in name order — the iteration order the pre-streaming
    // simulator's by-value repository map gave the placement solver. The
    // first model wins a duplicated name, matching map::emplace.
    for (const Model& model : models) {
      models_by_name_.emplace(model.name(), &model);
    }
    model_ptrs_.reserve(models_by_name_.size());
    for (const auto& [name, model] : models_by_name_) {
      model_ptrs_.push_back(model);
    }

    // Flat per-function hot-path tables: FunctionId indexes straight into the
    // model, its scratch-load cost, and (below) its placement — no string
    // hashing per request. Functions alias models via workload.function_model.
    const size_t num_functions = functions_->size();
    model_of_.assign(num_functions, nullptr);
    scratch_cost_of_.assign(num_functions, 0.0);
    for (size_t fn = 0; fn < num_functions; ++fn) {
      int32_t model_index = workload.function_model.empty()
                                ? static_cast<int32_t>(fn)
                                : workload.function_model[fn];
      if (model_index >= 0 && static_cast<size_t>(model_index) < models.size()) {
        const Model& model = models[static_cast<size_t>(model_index)];
        model_of_[fn] = &model;
        scratch_cost_of_[fn] = costs.ScratchLoadCost(model);
        // Function-name view for the startup policies' donor-model lookups.
        repository_.emplace(functions_->Name(static_cast<FunctionId>(fn)), &model);
      }
    }

    PolicyContext context;
    context.repository = &repository_;
    context.costs = &costs;
    context.profile = config.profile;
    context.planner = config.planner;
    policy_ = MakeStartupPolicy(config.system, context);

    // Route through the same PlacementPolicy implementations the live
    // platform uses: compute the assignment once from the workload's demand
    // history and freeze it into an immutable table. (Churn events republish
    // the table exactly the way the live PlacementManager does.)
    placement_policy_ = MakePlacementPolicy(config.placement, &costs);
    table_ = std::make_shared<PlacementTable>(
        /*version=*/1, config.placement.kind, config.num_nodes,
        placement_policy_->Compute(model_ptrs_, history_, config.num_nodes));
    RebuildNodeOf();

    nodes_.reserve(static_cast<size_t>(config.num_nodes));
    for (int i = 0; i < config.num_nodes; ++i) {
      nodes_.emplace_back(config.containers_per_node, config.idle_threshold, config.keep_alive,
                          config.node_memory_bytes);
    }
    if (config.warming.enabled && config.warming.interval > 0.0) {
      // The same engine the live platform drives, on the same cadence —
      // which is what keeps live and simulated warming counters consistent.
      warming_engine_ = std::make_unique<WarmingEngine>(config.warming);
      warming_demand_ = std::make_unique<DemandAccumulator>(/*max_slots=*/64);
      served_counts_.assign(num_functions, 0);
    }
    result_.service_sample = ReservoirSample(config.sample_capacity, config.sample_seed);
    if (records_on_ && source->SizeHint() > 0) {
      result_.records.reserve(source->SizeHint());
    }
  }

  SimResult Run() {
    horizon_ = source_->Horizon();
    // Seed the queue lazily: the *next* arrival, the *next* churn event, and
    // the *first* warming cycle. Every handler schedules its own successor,
    // so queue size is O(nodes + 1) instead of O(requests + cycles).
    PullArrival();
    churn_sorted_ = config_.churn;
    std::stable_sort(churn_sorted_.begin(), churn_sorted_.end(),
                     [](const NodeChurnEvent& a, const NodeChurnEvent& b) { return a.time < b.time; });
    ScheduleNextChurn();
    if (warming_engine_ != nullptr && config_.warming.interval < horizon_) {
      // First cycle of the virtual-time twin of the live WarmingLoop wakeups.
      ScheduleWarmingCycle(config_.warming.interval);
    }
    while (!events_.empty()) {
      const Event event = events_.top();
      events_.pop();
      // All keep-alive, eviction, and warming decisions below read this one
      // clock (DESIGN.md §18); event times are non-decreasing, so AdvanceTo
      // returns exactly event.time.
      const double now = clock_.AdvanceTo(event.time);
      switch (event.type) {
        case EventType::kArrival:
          OnArrival(event.ordinal, event.fn, now);
          break;
        case EventType::kCompletion:
          OnCompletion(event.node, event.container, now);
          break;
        case EventType::kRevoke:
          OnRevoke(event.node, event.grace, now);
          break;
        case EventType::kDrainExpire:
          OnDrainExpire(event.node, now);
          break;
        case EventType::kRevive:
          OnRevive(event.node);
          break;
        case EventType::kWarmingCycle:
          OnWarmingCycle(now);
          break;
      }
    }
    if (warming_engine_ != nullptr) {
      PurgePrewarmWaste();
      result_.warming_unused = prewarmed_.size();
    }
    return std::move(result_);
  }

 private:
  void Schedule(Event event, uint8_t band, uint64_t* seq) {
    event.band = band;
    event.seq = (*seq)++;
    events_.push(event);
  }

  // Pulls the next arrival from the source into the event queue (at most one
  // is ever pending). Under RecordMode::kOn this also grows the records
  // vector — arrivals are pulled in ordinal order, so records[ordinal] is the
  // slot just appended.
  void PullArrival() {
    Arrival arrival;
    if (!source_->Next(&arrival)) {
      return;
    }
    Event event;
    event.time = arrival.time;
    event.type = EventType::kArrival;
    event.ordinal = next_ordinal_++;
    event.fn = arrival.function;
    if (records_on_) {
      result_.records.emplace_back();
    }
    Schedule(event, kBandArrival, &arrival_seq_);
  }

  void ScheduleNextChurn() {
    if (churn_cursor_ >= churn_sorted_.size()) {
      return;
    }
    const NodeChurnEvent& churn = churn_sorted_[churn_cursor_++];
    Event event;
    event.time = churn.time;
    event.type = churn.revive ? EventType::kRevive : EventType::kRevoke;
    event.node = churn.node;
    event.grace = churn.grace;
    Schedule(event, kBandChurn, &churn_seq_);
  }

  void ScheduleWarmingCycle(double time) {
    Event event;
    event.time = time;
    event.type = EventType::kWarmingCycle;
    Schedule(event, kBandWarming, &warming_seq_);
  }

  void OnArrival(uint64_t ordinal, FunctionId fn, double now) {
    if (fn < 0 || static_cast<size_t>(fn) >= model_of_.size() ||
        model_of_[static_cast<size_t>(fn)] == nullptr) {
      const bool named = fn >= 0 && static_cast<size_t>(fn) < functions_->size();
      throw std::runtime_error("RunSimulation: unregistered function " +
                               (named ? functions_->Name(fn) : std::string("<uninterned>")));
    }
    PullArrival();  // Keep exactly one pending arrival in the queue.
    Dispatch(QueuedRequest{ordinal, now, fn}, now);
  }

  // Routes the request to its node and serves it or queues it there.
  void Dispatch(const QueuedRequest& request, double now) {
    const int node = node_of_[static_cast<size_t>(request.fn)];
    if (!TryServe(node, request, now)) {
      nodes_[static_cast<size_t>(node)].queue.push_back(request);
    }
  }

  void OnCompletion(int node_index, ContainerId container_id, double now) {
    NodeState& node = nodes_[static_cast<size_t>(node_index)];
    Container* container = node.pool.Find(container_id);
    if (container != nullptr) {
      container->state = ContainerState::kIdle;
      container->last_active = now;
    }
    // Drain the node's queue in FIFO order while requests can be served.
    while (!node.queue.empty() && TryServe(node_index, node.queue.front(), now)) {
      node.queue.pop_front();
    }
  }

  void OnRevoke(int node_index, double grace, double now) {
    ScheduleNextChurn();
    if (node_index < 0 || node_index >= config_.num_nodes) {
      return;
    }
    NodeState& node = nodes_[static_cast<size_t>(node_index)];
    if (node.lifecycle == NodeLifecycle::kDraining || node.lifecycle == NodeLifecycle::kDown) {
      return;  // Already revoked.
    }
    ++result_.revocations;
    if (live_mask_.empty()) {
      live_mask_.assign(static_cast<size_t>(config_.num_nodes), 1);
    }
    live_mask_[static_cast<size_t>(node_index)] = 0;
    if (grace > 0.0) {
      node.lifecycle = NodeLifecycle::kDraining;
      node.drain_deadline = now + grace;
      Event expire;
      expire.time = now + grace;
      expire.type = EventType::kDrainExpire;
      expire.node = node_index;
      Schedule(expire, kBandDynamic, &dynamic_seq_);
    } else {
      ReclaimNode(&node);
    }
    // Mirror the live manager: republish under the new mask and re-cluster
    // over the survivors, then re-home the dead node's queued requests (they
    // had not started — like new routes, they must leave immediately).
    RecomputePlacement();
    RehomeQueue(&node, now);
  }

  void OnDrainExpire(int node_index, double now) {
    NodeState& node = nodes_[static_cast<size_t>(node_index)];
    if (node.lifecycle != NodeLifecycle::kDraining || now < node.drain_deadline) {
      return;
    }
    ReclaimNode(&node);
  }

  void OnRevive(int node_index) {
    ScheduleNextChurn();
    if (node_index < 0 || node_index >= config_.num_nodes) {
      return;
    }
    NodeState& node = nodes_[static_cast<size_t>(node_index)];
    if (node.lifecycle != NodeLifecycle::kDown) {
      return;
    }
    // No adoption gate in the simulator (containers launch synchronously), so
    // the node goes straight back to Up.
    node.lifecycle = NodeLifecycle::kUp;
    node.drain_deadline = std::numeric_limits<double>::infinity();
    ++result_.revives;
    if (!live_mask_.empty()) {
      live_mask_[static_cast<size_t>(node_index)] = 1;
    }
    RecomputePlacement();
  }

  // Reclaims every container on the node (busy ones included — the spot
  // instance is gone; their completion events become no-ops) and marks it
  // Down.
  void ReclaimNode(NodeState* node) {
    std::vector<ContainerId> ids;
    ids.reserve(node->pool.Size());
    for (const Container& container : node->pool.containers()) {
      ids.push_back(container.id);
    }
    result_.reclaimed_containers += ids.size();
    for (const ContainerId id : ids) {
      node->pool.Remove(id);
    }
    node->lifecycle = NodeLifecycle::kDown;
    node->drain_deadline = std::numeric_limits<double>::infinity();
  }

  // Re-dispatches every request queued on a revoked node through the
  // (re-homed) placement table.
  void RehomeQueue(NodeState* node, double now) {
    std::deque<QueuedRequest> pending;
    pending.swap(node->queue);
    result_.rehomed_requests += pending.size();
    for (const QueuedRequest& request : pending) {
      Dispatch(request, now);
    }
  }

  // The live PlacementManager's Rebalance over the live subset, inline: the
  // solver sees a contiguous 0..live-1 cluster and its indices are remapped
  // back to physical node ids (dead nodes receive no assignments).
  void RecomputePlacement() {
    std::vector<int> live_ids;
    if (!live_mask_.empty()) {
      for (int node = 0; node < config_.num_nodes; ++node) {
        if (live_mask_[static_cast<size_t>(node)] != 0) {
          live_ids.push_back(node);
        }
      }
    }
    const int solve_nodes =
        live_ids.empty() ? config_.num_nodes : static_cast<int>(live_ids.size());
    Placement assignment = placement_policy_->Compute(model_ptrs_, history_, solve_nodes);
    if (!live_ids.empty()) {
      for (auto& [function, node] : assignment) {
        node = live_ids[static_cast<size_t>(std::clamp(node, 0, solve_nodes - 1))];
      }
    }
    table_ = std::make_shared<PlacementTable>(table_->version() + 1, config_.placement.kind,
                                              config_.num_nodes, assignment, live_mask_);
    RebuildNodeOf();
    ++result_.churn_rebalances;
  }

  // Refreshes the FunctionId -> node routing array from the current table.
  // O(functions) per publish — publishes happen once at startup plus once per
  // churn rebalance, never per request.
  void RebuildNodeOf() {
    const size_t num_functions = model_of_.empty() ? functions_->size() : model_of_.size();
    node_of_.resize(num_functions);
    for (size_t fn = 0; fn < num_functions; ++fn) {
      node_of_[fn] = table_->NodeOrHash(functions_->Name(static_cast<FunctionId>(fn)));
    }
  }

  // One forecast-driven warming cycle (DESIGN.md §17): harvest served counts
  // into the demand accumulator, forecast, and execute budget-capped orders —
  // the exact pipeline OptimusPlatform::WarmNow runs, in virtual time.
  void OnWarmingCycle(double now) {
    // Lazy cadence: each cycle schedules the next while arrivals remain.
    // now is the exact accumulated interval sum (interval, 2*interval, ...)
    // the eager schedule produced, so the successor times match bit-for-bit.
    if (now + config_.warming.interval < horizon_) {
      ScheduleWarmingCycle(now + config_.warming.interval);
    }
    if (!warming_engine_->enabled()) {
      return;
    }
    ++result_.warming_cycles;
    // Sweep keep-alive expiry up front: a pre-warm that died unused charges
    // the waste bucket on this cycle, not at the horizon.
    for (NodeState& node : nodes_) {
      node.pool.ReapExpired(now);
    }
    PurgePrewarmWaste();
    // Nonzero entries only — the by-name map the live telemetry harvest
    // produces (a function appears once it has served at least once).
    std::map<std::string, uint64_t> served;
    for (size_t fn = 0; fn < served_counts_.size(); ++fn) {
      if (served_counts_[fn] != 0) {
        served.emplace(functions_->Name(static_cast<FunctionId>(fn)), served_counts_[fn]);
      }
    }
    warming_demand_->RecordCumulative(served);
    const std::vector<WarmingOrder> orders =
        warming_engine_->PlanOrders(warming_demand_->History(), *table_);
    result_.warming_orders += orders.size();
    for (const WarmingOrder& order : orders) {
      ExecutePrewarm(order, now);
    }
    PurgePrewarmWaste();
  }

  // Executes one speculative pre-warm. Speculation never evicts and never
  // displaces reactive work: a full node with no idle donor is a skip, and a
  // container already warm for the function makes the order redundant.
  void ExecutePrewarm(const WarmingOrder& order, double now) {
    if (order.node < 0 || order.node >= config_.num_nodes) {
      ++result_.warming_skipped;
      return;
    }
    NodeState& node = nodes_[static_cast<size_t>(order.node)];
    if (node.lifecycle != NodeLifecycle::kUp) {
      ++result_.warming_skipped;
      return;
    }
    const FunctionId fn = functions_->Find(order.function);
    if (fn == kInvalidFunction || static_cast<size_t>(fn) >= model_of_.size() ||
        model_of_[static_cast<size_t>(fn)] == nullptr) {
      ++result_.warming_skipped;
      return;
    }
    const Model& model = *model_of_[static_cast<size_t>(fn)];
    node.pool.ReapExpired(now);
    if (node.pool.FindWarm(order.function) != nullptr) {
      ++result_.warming_skipped;
      return;
    }

    int64_t needed_memory = 0;
    if (config_.node_memory_bytes > 0) {
      needed_memory = config_.fine_grained_containers ? ContainerFootprintBytes(model)
                                                      : config_.uniform_container_bytes;
    }
    StartupRequest request;
    request.dest = &model;
    request.donors = node.pool.TransformCandidates(
        order.function, now, config_.fine_grained_containers ? needed_memory : 0);
    request.has_free_slot = node.pool.CanLaunch(needed_memory);
    for (const Container& container : node.pool.containers()) {
      request.resident_functions.push_back(container.function);
    }
    if (!request.has_free_slot && request.donors.empty()) {
      ++result_.warming_skipped;
      return;
    }
    const StartupResult startup = policy_->Acquire(request);
    Container* container = nullptr;
    if (startup.donor != nullptr) {
      if (prewarmed_.erase({order.node, startup.donor->id}) > 0) {
        ++result_.warming_waste;  // One pre-warm consumed another before any hit.
      }
      startup.donor->function = order.function;
      container = startup.donor;
      ++result_.warming_prewarms_transform;
    } else if (request.has_free_slot) {
      container = node.pool.Launch(order.function, now, now, needed_memory);
      ++result_.warming_prewarms_cold;
    } else {
      ++result_.warming_skipped;  // The policy declined every donor on a full node.
      return;
    }
    // Busy through init + load: a request arriving before the container is
    // ready queues behind it exactly as it would behind a reactive start.
    const double ready = now + startup.init_seconds + startup.load_seconds;
    container->state = ContainerState::kBusy;
    container->busy_until = ready;
    container->last_active = now;
    if (config_.eviction == EvictionPolicy::kGreedyDual) {
      container->priority =
          gd_clock_ + config_.profile.InitCost() + scratch_cost_of_[static_cast<size_t>(fn)];
    }
    prewarmed_[{order.node, container->id}] = now;
    Event completion;
    completion.time = ready;
    completion.type = EventType::kCompletion;
    completion.node = order.node;
    completion.container = container->id;
    Schedule(completion, kBandDynamic, &dynamic_seq_);
  }

  // Charges pre-warmed containers that vanished (keep-alive reap, churn
  // reclaim) before their first hit to the waste bucket, preserving
  //   prewarms_cold + prewarms_transform == hits + waste + unused.
  void PurgePrewarmWaste() {
    for (auto it = prewarmed_.begin(); it != prewarmed_.end();) {
      NodeState& node = nodes_[static_cast<size_t>(it->first.first)];
      if (node.pool.Find(it->first.second) == nullptr) {
        ++result_.warming_waste;
        it = prewarmed_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Folds one served request into the streaming accumulators. Runs at serve
  // time (not trace order), so aggregate float sums can differ in rounding
  // from the record-order sums — accessors prefer records when present.
  void Commit(const RequestRecord& record) {
    ++result_.total_requests;
    result_.sum_wait += record.wait;
    result_.sum_init += record.init;
    result_.sum_load += record.load;
    result_.sum_compute += record.compute;
    ++result_.start_counts[static_cast<size_t>(record.start)];
    const double service = record.ServiceTime();
    result_.service_hist.Record(service);
    result_.service_sample.Add(service);
  }

  // Attempts to serve the request on its node right now; returns false if it
  // must (continue to) queue.
  bool TryServe(int node_index, const QueuedRequest& queued, double now) {
    NodeState& node = nodes_[static_cast<size_t>(node_index)];
    const FunctionId fn = queued.fn;
    const Model& model = *model_of_[static_cast<size_t>(fn)];
    node.pool.ReapExpired(now);

    // Record-off mode writes into a stack scratch and skips the function-name
    // copy; every field is assigned on every serve path below.
    RequestRecord scratch;
    RequestRecord& record =
        records_on_ ? result_.records[static_cast<size_t>(queued.ordinal)] : scratch;
    if (records_on_) {
      record.function = functions_->Name(fn);
    }
    record.arrival = queued.arrival;
    record.wait = now - record.arrival;
    record.compute = config_.profile.InferenceCost(model);

    const std::string& function = functions_->Name(fn);

    // Warm start: an idle container already serving this function.
    if (Container* warm = node.pool.FindWarm(function)) {
      const auto prewarm = prewarmed_.find({node_index, warm->id});
      if (prewarm != prewarmed_.end()) {
        // First hit on a speculative pre-warm: the forecast paid off.
        ++result_.warming_hits;
        result_.warming_lead_seconds.push_back(now - prewarm->second);
        prewarmed_.erase(prewarm);
      }
      record.start = StartType::kWarm;
      record.init = 0.0;
      record.load = 0.0;
      Occupy(warm, node_index, fn, now, record);
      Commit(record);
      return true;
    }

    // Memory the new container would need (0 when memory is unmodeled).
    int64_t needed_memory = 0;
    if (config_.node_memory_bytes > 0) {
      needed_memory = config_.fine_grained_containers ? ContainerFootprintBytes(model)
                                                      : config_.uniform_container_bytes;
    }

    StartupRequest request;
    request.dest = &model;
    // With fine-grained containers a donor must be large enough to host the
    // new model (§6).
    request.donors = node.pool.TransformCandidates(
        function, now, config_.fine_grained_containers ? needed_memory : 0);
    request.has_free_slot = node.pool.CanLaunch(needed_memory);
    for (const Container& container : node.pool.containers()) {
      request.resident_functions.push_back(container.function);
    }
    const StartupResult startup = policy_->Acquire(request);

    record.start = startup.type;
    record.init = startup.init_seconds;
    record.load = startup.load_seconds;

    if (startup.donor != nullptr) {
      if (prewarmed_.erase({node_index, startup.donor->id}) > 0) {
        ++result_.warming_waste;  // A reactive transform consumed an unused pre-warm.
      }
      // Repurpose the donor container for this function.
      startup.donor->function = function;
      Occupy(startup.donor, node_index, fn, now, record);
      Commit(record);
      return true;
    }

    // Start a new container, evicting idle containers (per the eviction
    // policy) until it fits, slot- and memory-wise.
    while (!node.pool.CanLaunch(needed_memory)) {
      Container* victim = config_.eviction == EvictionPolicy::kGreedyDual
                              ? node.pool.MinPriorityIdle()
                              : node.pool.LruIdle();
      if (victim == nullptr) {
        return false;  // All containers busy: queue.
      }
      // Greedy-dual aging: the clock advances to the evicted priority.
      if (config_.eviction == EvictionPolicy::kGreedyDual) {
        gd_clock_ = std::max(gd_clock_, victim->priority);
      }
      if (prewarmed_.erase({node_index, victim->id}) > 0) {
        ++result_.warming_waste;  // Eviction beat the forecast to the slot.
      }
      node.pool.Remove(victim->id);
    }
    Container* slot = node.pool.Launch(function, now, now, needed_memory);
    Occupy(slot, node_index, fn, now, record);
    Commit(record);
    return true;
  }

  // Marks the container busy through init + load + compute and schedules the
  // completion event.
  void Occupy(Container* container, int node_index, FunctionId fn, double now,
              const RequestRecord& record) {
    if (warming_engine_ != nullptr) {
      // The sim mirror of the per-function invoke counters WarmNow harvests.
      ++served_counts_[static_cast<size_t>(fn)];
    }
    const double done = now + record.init + record.load + record.compute;
    container->state = ContainerState::kBusy;
    container->busy_until = done;
    container->last_active = now;
    if (config_.eviction == EvictionPolicy::kGreedyDual) {
      // GDSF-style priority: aged clock plus the cost of bringing this
      // function back after an eviction (a full cold start).
      container->priority = gd_clock_ + config_.profile.InitCost() +
                            scratch_cost_of_[static_cast<size_t>(fn)];
    }
    Event completion;
    completion.time = done;
    completion.type = EventType::kCompletion;
    completion.node = node_index;
    completion.container = container->id;
    Schedule(completion, kBandDynamic, &dynamic_seq_);
  }

  TraceSource* source_;
  SimConfig config_;
  const FunctionTable* functions_;
  const std::map<std::string, DemandSeries>& history_;
  const bool records_on_;
  double horizon_ = 0.0;
  VirtualClock clock_;

  // Distinct models, name-sorted (placement solver input order).
  std::map<std::string, const Model*> models_by_name_;
  // Function name -> model, for the startup policies (O(functions) entries).
  std::map<std::string, const Model*> repository_;
  std::vector<const Model*> model_ptrs_;
  // --- FunctionId-indexed hot-path tables. ----------------------------------
  std::vector<const Model*> model_of_;
  std::vector<double> scratch_cost_of_;
  std::vector<int> node_of_;
  // Cumulative served invocations per function: the warming harvest's input.
  std::vector<uint64_t> served_counts_;

  double gd_clock_ = 0.0;
  std::shared_ptr<const PlacementTable> table_;
  std::unique_ptr<PlacementPolicy> placement_policy_;
  std::vector<uint8_t> live_mask_;  // Empty = all nodes live.
  std::unique_ptr<StartupPolicy> policy_;
  // --- Forecast-driven warming (null/empty when SimConfig::warming is off).
  std::unique_ptr<WarmingEngine> warming_engine_;
  std::unique_ptr<DemandAccumulator> warming_demand_;
  // Pre-warmed containers awaiting their first hit: (node, id) -> born time.
  std::map<std::pair<int, ContainerId>, double> prewarmed_;
  std::vector<NodeState> nodes_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  // Lazy scheduling state: churn events sorted by time (stable, preserving
  // config order at equal times) plus a cursor, and per-band seq counters.
  std::vector<NodeChurnEvent> churn_sorted_;
  size_t churn_cursor_ = 0;
  uint64_t next_ordinal_ = 0;
  uint64_t arrival_seq_ = 0;
  uint64_t churn_seq_ = 0;
  uint64_t warming_seq_ = 0;
  uint64_t dynamic_seq_ = 0;
  SimResult result_;
};

double Average(const std::vector<RequestRecord>& records, double (*get)(const RequestRecord&)) {
  if (records.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const RequestRecord& record : records) {
    total += get(record);
  }
  return total / static_cast<double>(records.size());
}

}  // namespace

double SimResult::AvgServiceTime() const {
  if (!records.empty()) {
    return Average(records, [](const RequestRecord& r) { return r.ServiceTime(); });
  }
  return service_hist.Mean();
}

double SimResult::AvgWait() const {
  if (!records.empty()) {
    return Average(records, [](const RequestRecord& r) { return r.wait; });
  }
  return total_requests == 0 ? 0.0 : sum_wait / static_cast<double>(total_requests);
}

double SimResult::AvgInit() const {
  if (!records.empty()) {
    return Average(records, [](const RequestRecord& r) { return r.init; });
  }
  return total_requests == 0 ? 0.0 : sum_init / static_cast<double>(total_requests);
}

double SimResult::AvgLoad() const {
  if (!records.empty()) {
    return Average(records, [](const RequestRecord& r) { return r.load; });
  }
  return total_requests == 0 ? 0.0 : sum_load / static_cast<double>(total_requests);
}

double SimResult::AvgCompute() const {
  if (!records.empty()) {
    return Average(records, [](const RequestRecord& r) { return r.compute; });
  }
  return total_requests == 0 ? 0.0 : sum_compute / static_cast<double>(total_requests);
}

size_t SimResult::CountOf(StartType type) const {
  if (records.empty()) {
    return static_cast<size_t>(start_counts[static_cast<size_t>(type)]);
  }
  size_t count = 0;
  for (const RequestRecord& record : records) {
    if (record.start == type) {
      ++count;
    }
  }
  return count;
}

double SimResult::ServiceTimePercentile(double q) const {
  if (records.empty()) {
    return service_hist.Percentile(q);
  }
  // Memoized sort: the old implementation re-sorted every record on every
  // call, turning a percentile sweep into repeated O(n log n) work.
  if (sorted_service_times_.empty()) {
    sorted_service_times_.reserve(records.size());
    for (const RequestRecord& record : records) {
      sorted_service_times_.push_back(record.ServiceTime());
    }
    std::sort(sorted_service_times_.begin(), sorted_service_times_.end());
  }
  const double clamped = std::min(1.0, std::max(0.0, q));
  const size_t index = std::min(
      sorted_service_times_.size() - 1,
      static_cast<size_t>(clamped * static_cast<double>(sorted_service_times_.size())));
  return sorted_service_times_[index];
}

double SimResult::FractionOf(StartType type) const {
  if (records.empty()) {
    return total_requests == 0
               ? 0.0
               : static_cast<double>(CountOf(type)) / static_cast<double>(total_requests);
  }
  return static_cast<double>(CountOf(type)) / static_cast<double>(records.size());
}

int64_t ContainerFootprintBytes(const Model& model) {
  // ~256 MiB of runtime/framework baseline plus weights with a 1.2x overhead
  // for deserialization scratch and fragmentation.
  constexpr int64_t kRuntimeBaseline = 256LL << 20;
  return kRuntimeBaseline + static_cast<int64_t>(1.2 * static_cast<double>(model.WeightBytes()));
}

SimResult RunSimulation(const std::vector<Model>& models, const Trace& trace,
                        const SimConfig& config, const CostModel& costs) {
  // Adapter onto the streaming core: intern the trace's functions, map each
  // to its model by name (first model wins a duplicated name, like the old
  // by-value repository map), and resolve RecordMode::kAuto to kOn so every
  // existing caller keeps its per-request records.
  FunctionTable functions;
  SimWorkload workload;
  workload.models = &models;
  workload.functions = &functions;
  std::map<std::string, int32_t> index_by_name;
  for (size_t i = 0; i < models.size(); ++i) {
    index_by_name.emplace(models[i].name(), static_cast<int32_t>(i));
  }
  for (const Invocation& invocation : trace) {
    const FunctionId fn = functions.Intern(invocation.function);
    if (static_cast<size_t>(fn) == workload.function_model.size()) {
      const auto it = index_by_name.find(invocation.function);
      // -1 = unregistered: the core throws when the arrival is processed,
      // exactly where the pre-streaming simulator threw.
      workload.function_model.push_back(it == index_by_name.end() ? -1 : it->second);
    }
  }
  const double horizon = trace.empty() ? 1.0 : trace.back().arrival + 1.0;
  workload.history = DemandHistory(trace, horizon, /*slot_seconds=*/300.0);
  TraceVectorSource source(trace, &functions);
  SimConfig resolved = config;
  if (resolved.records == RecordMode::kAuto) {
    resolved.records = RecordMode::kOn;
  }
  return RunSimulationStream(workload, &source, resolved, costs);
}

SimResult RunSimulationStream(const SimWorkload& workload, TraceSource* source,
                              const SimConfig& config, const CostModel& costs) {
  SimConfig resolved = config;
  if (resolved.records == RecordMode::kAuto) {
    resolved.records = RecordMode::kOff;
  }
  Simulation simulation(workload, source, resolved, costs);
  return simulation.Run();
}

}  // namespace optimus
