#include "src/sim/simulator.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <memory>
#include <queue>
#include <stdexcept>
#include <utility>

#include "src/core/node_pool.h"  // NodeLifecycle — the shared state machine.

namespace optimus {

namespace {

enum class EventType : uint8_t {
  kArrival = 0,
  kCompletion,
  kRevoke,
  kDrainExpire,
  kRevive,
  kWarmingCycle,
};

struct Event {
  double time = 0.0;
  uint64_t seq = 0;  // Tie-breaker for deterministic ordering.
  EventType type = EventType::kArrival;
  size_t request_index = 0;
  int node = -1;
  ContainerId container = -1;
  double grace = 0.0;  // kRevoke only.

  bool operator>(const Event& other) const {
    if (time != other.time) {
      return time > other.time;
    }
    return seq > other.seq;
  }
};

struct NodeState {
  ContainerPool pool;
  std::deque<size_t> queue;  // FIFO of pending request indices.
  // Lifecycle mirror of NodePool::Node (DESIGN.md §16). The simulator has no
  // adoption gate, so a revive goes straight back to Up.
  NodeLifecycle lifecycle = NodeLifecycle::kUp;
  double drain_deadline = std::numeric_limits<double>::infinity();

  NodeState(int capacity, double idle_threshold, double keep_alive, int64_t memory_limit)
      : pool(capacity, idle_threshold, keep_alive, memory_limit) {}
};

class Simulation {
 public:
  Simulation(const std::vector<Model>& models, const Trace& trace, const SimConfig& config,
             const CostModel& costs)
      : trace_(trace), config_(config) {
    for (const Model& model : models) {
      repository_.emplace(model.name(), model);
      scratch_costs_.emplace(model.name(), costs.ScratchLoadCost(model));
    }
    PolicyContext context;
    context.repository = &repository_;
    context.costs = &costs;
    context.profile = config.profile;
    context.planner = config.planner;
    policy_ = MakeStartupPolicy(config.system, context);

    // Route through the same PlacementPolicy implementations the live
    // platform uses: compute the assignment once from the trace's demand
    // history and freeze it into an immutable table. (Churn events republish
    // the table exactly the way the live PlacementManager does.)
    model_ptrs_.reserve(models.size());
    for (const auto& [name, model] : repository_) {
      model_ptrs_.push_back(&model);
    }
    history_ = DemandHistory(trace, Horizon(trace), /*slot_seconds=*/300.0);
    placement_policy_ = MakePlacementPolicy(config.placement, &costs);
    table_ = std::make_shared<PlacementTable>(
        /*version=*/1, config.placement.kind, config.num_nodes,
        placement_policy_->Compute(model_ptrs_, history_, config.num_nodes));

    nodes_.reserve(static_cast<size_t>(config.num_nodes));
    for (int i = 0; i < config.num_nodes; ++i) {
      nodes_.emplace_back(config.containers_per_node, config.idle_threshold, config.keep_alive,
                          config.node_memory_bytes);
    }
    if (config.warming.enabled && config.warming.interval > 0.0) {
      // The same engine the live platform drives, on the same cadence —
      // which is what keeps live and simulated warming counters consistent.
      warming_engine_ = std::make_unique<WarmingEngine>(config.warming);
      warming_demand_ = std::make_unique<DemandAccumulator>(/*max_slots=*/64);
    }
    result_.records.resize(trace.size());
  }

  SimResult Run() {
    for (size_t i = 0; i < trace_.size(); ++i) {
      Event event;
      event.time = trace_[i].arrival;
      event.seq = next_seq_++;
      event.type = EventType::kArrival;
      event.request_index = i;
      events_.push(event);
    }
    for (const NodeChurnEvent& churn : config_.churn) {
      Event event;
      event.time = churn.time;
      event.seq = next_seq_++;
      event.type = churn.revive ? EventType::kRevive : EventType::kRevoke;
      event.node = churn.node;
      event.grace = churn.grace;
      events_.push(event);
    }
    if (warming_engine_ != nullptr) {
      // One warming cycle per interval — the virtual-time twin of the live
      // platform's background WarmingLoop wakeups.
      for (double t = config_.warming.interval; t < Horizon(trace_); t += config_.warming.interval) {
        Event event;
        event.time = t;
        event.seq = next_seq_++;
        event.type = EventType::kWarmingCycle;
        events_.push(event);
      }
    }
    while (!events_.empty()) {
      const Event event = events_.top();
      events_.pop();
      switch (event.type) {
        case EventType::kArrival:
          OnArrival(event.request_index, event.time);
          break;
        case EventType::kCompletion:
          OnCompletion(event.node, event.container, event.time);
          break;
        case EventType::kRevoke:
          OnRevoke(event.node, event.grace, event.time);
          break;
        case EventType::kDrainExpire:
          OnDrainExpire(event.node, event.time);
          break;
        case EventType::kRevive:
          OnRevive(event.node);
          break;
        case EventType::kWarmingCycle:
          OnWarmingCycle(event.time);
          break;
      }
    }
    if (warming_engine_ != nullptr) {
      PurgePrewarmWaste();
      result_.warming_unused = prewarmed_.size();
    }
    return std::move(result_);
  }

 private:
  static double Horizon(const Trace& trace) {
    return trace.empty() ? 1.0 : trace.back().arrival + 1.0;
  }

  void OnArrival(size_t request_index, double now) {
    const std::string& function = trace_[request_index].function;
    if (repository_.find(function) == repository_.end()) {
      throw std::runtime_error("RunSimulation: unregistered function " + function);
    }
    const int node = table_->NodeOrHash(function);
    if (!TryServe(node, request_index, now)) {
      nodes_[static_cast<size_t>(node)].queue.push_back(request_index);
    }
  }

  void OnCompletion(int node_index, ContainerId container_id, double now) {
    NodeState& node = nodes_[static_cast<size_t>(node_index)];
    Container* container = node.pool.Find(container_id);
    if (container != nullptr) {
      container->state = ContainerState::kIdle;
      container->last_active = now;
    }
    // Drain the node's queue in FIFO order while requests can be served.
    while (!node.queue.empty() && TryServe(node_index, node.queue.front(), now)) {
      node.queue.pop_front();
    }
  }

  void OnRevoke(int node_index, double grace, double now) {
    if (node_index < 0 || node_index >= config_.num_nodes) {
      return;
    }
    NodeState& node = nodes_[static_cast<size_t>(node_index)];
    if (node.lifecycle == NodeLifecycle::kDraining || node.lifecycle == NodeLifecycle::kDown) {
      return;  // Already revoked.
    }
    ++result_.revocations;
    if (live_mask_.empty()) {
      live_mask_.assign(static_cast<size_t>(config_.num_nodes), 1);
    }
    live_mask_[static_cast<size_t>(node_index)] = 0;
    if (grace > 0.0) {
      node.lifecycle = NodeLifecycle::kDraining;
      node.drain_deadline = now + grace;
      Event expire;
      expire.time = now + grace;
      expire.seq = next_seq_++;
      expire.type = EventType::kDrainExpire;
      expire.node = node_index;
      events_.push(expire);
    } else {
      ReclaimNode(&node);
    }
    // Mirror the live manager: republish under the new mask and re-cluster
    // over the survivors, then re-home the dead node's queued requests (they
    // had not started — like new routes, they must leave immediately).
    RecomputePlacement();
    RehomeQueue(&node, now);
  }

  void OnDrainExpire(int node_index, double now) {
    NodeState& node = nodes_[static_cast<size_t>(node_index)];
    if (node.lifecycle != NodeLifecycle::kDraining || now < node.drain_deadline) {
      return;
    }
    ReclaimNode(&node);
  }

  void OnRevive(int node_index) {
    if (node_index < 0 || node_index >= config_.num_nodes) {
      return;
    }
    NodeState& node = nodes_[static_cast<size_t>(node_index)];
    if (node.lifecycle != NodeLifecycle::kDown) {
      return;
    }
    // No adoption gate in the simulator (containers launch synchronously), so
    // the node goes straight back to Up.
    node.lifecycle = NodeLifecycle::kUp;
    node.drain_deadline = std::numeric_limits<double>::infinity();
    ++result_.revives;
    if (!live_mask_.empty()) {
      live_mask_[static_cast<size_t>(node_index)] = 1;
    }
    RecomputePlacement();
  }

  // Reclaims every container on the node (busy ones included — the spot
  // instance is gone; their completion events become no-ops) and marks it
  // Down.
  void ReclaimNode(NodeState* node) {
    std::vector<ContainerId> ids;
    ids.reserve(node->pool.Size());
    for (const Container& container : node->pool.containers()) {
      ids.push_back(container.id);
    }
    result_.reclaimed_containers += ids.size();
    for (const ContainerId id : ids) {
      node->pool.Remove(id);
    }
    node->lifecycle = NodeLifecycle::kDown;
    node->drain_deadline = std::numeric_limits<double>::infinity();
  }

  // Re-dispatches every request queued on a revoked node through the
  // (re-homed) placement table.
  void RehomeQueue(NodeState* node, double now) {
    std::deque<size_t> pending;
    pending.swap(node->queue);
    result_.rehomed_requests += pending.size();
    for (const size_t request_index : pending) {
      OnArrival(request_index, now);
    }
  }

  // The live PlacementManager's Rebalance over the live subset, inline: the
  // solver sees a contiguous 0..live-1 cluster and its indices are remapped
  // back to physical node ids (dead nodes receive no assignments).
  void RecomputePlacement() {
    std::vector<int> live_ids;
    if (!live_mask_.empty()) {
      for (int node = 0; node < config_.num_nodes; ++node) {
        if (live_mask_[static_cast<size_t>(node)] != 0) {
          live_ids.push_back(node);
        }
      }
    }
    const int solve_nodes =
        live_ids.empty() ? config_.num_nodes : static_cast<int>(live_ids.size());
    Placement assignment = placement_policy_->Compute(model_ptrs_, history_, solve_nodes);
    if (!live_ids.empty()) {
      for (auto& [function, node] : assignment) {
        node = live_ids[static_cast<size_t>(std::clamp(node, 0, solve_nodes - 1))];
      }
    }
    table_ = std::make_shared<PlacementTable>(table_->version() + 1, config_.placement.kind,
                                              config_.num_nodes, assignment, live_mask_);
    ++result_.churn_rebalances;
  }

  // One forecast-driven warming cycle (DESIGN.md §17): harvest served counts
  // into the demand accumulator, forecast, and execute budget-capped orders —
  // the exact pipeline OptimusPlatform::WarmNow runs, in virtual time.
  void OnWarmingCycle(double now) {
    if (!warming_engine_->enabled()) {
      return;
    }
    ++result_.warming_cycles;
    // Sweep keep-alive expiry up front: a pre-warm that died unused charges
    // the waste bucket on this cycle, not at the horizon.
    for (NodeState& node : nodes_) {
      node.pool.ReapExpired(now);
    }
    PurgePrewarmWaste();
    warming_demand_->RecordCumulative(served_counts_);
    const std::vector<WarmingOrder> orders =
        warming_engine_->PlanOrders(warming_demand_->History(), *table_);
    result_.warming_orders += orders.size();
    for (const WarmingOrder& order : orders) {
      ExecutePrewarm(order, now);
    }
    PurgePrewarmWaste();
  }

  // Executes one speculative pre-warm. Speculation never evicts and never
  // displaces reactive work: a full node with no idle donor is a skip, and a
  // container already warm for the function makes the order redundant.
  void ExecutePrewarm(const WarmingOrder& order, double now) {
    if (order.node < 0 || order.node >= config_.num_nodes) {
      ++result_.warming_skipped;
      return;
    }
    NodeState& node = nodes_[static_cast<size_t>(order.node)];
    if (node.lifecycle != NodeLifecycle::kUp) {
      ++result_.warming_skipped;
      return;
    }
    const auto model_it = repository_.find(order.function);
    if (model_it == repository_.end()) {
      ++result_.warming_skipped;
      return;
    }
    const Model& model = model_it->second;
    node.pool.ReapExpired(now);
    if (node.pool.FindWarm(order.function) != nullptr) {
      ++result_.warming_skipped;
      return;
    }

    int64_t needed_memory = 0;
    if (config_.node_memory_bytes > 0) {
      needed_memory = config_.fine_grained_containers ? ContainerFootprintBytes(model)
                                                      : config_.uniform_container_bytes;
    }
    StartupRequest request;
    request.dest = &model;
    request.donors = node.pool.TransformCandidates(
        order.function, now, config_.fine_grained_containers ? needed_memory : 0);
    request.has_free_slot = node.pool.CanLaunch(needed_memory);
    for (const Container& container : node.pool.containers()) {
      request.resident_functions.push_back(container.function);
    }
    if (!request.has_free_slot && request.donors.empty()) {
      ++result_.warming_skipped;
      return;
    }
    const StartupResult startup = policy_->Acquire(request);
    Container* container = nullptr;
    if (startup.donor != nullptr) {
      if (prewarmed_.erase({order.node, startup.donor->id}) > 0) {
        ++result_.warming_waste;  // One pre-warm consumed another before any hit.
      }
      startup.donor->function = order.function;
      container = startup.donor;
      ++result_.warming_prewarms_transform;
    } else if (request.has_free_slot) {
      container = node.pool.Launch(order.function, now, now, needed_memory);
      ++result_.warming_prewarms_cold;
    } else {
      ++result_.warming_skipped;  // The policy declined every donor on a full node.
      return;
    }
    // Busy through init + load: a request arriving before the container is
    // ready queues behind it exactly as it would behind a reactive start.
    const double ready = now + startup.init_seconds + startup.load_seconds;
    container->state = ContainerState::kBusy;
    container->busy_until = ready;
    container->last_active = now;
    if (config_.eviction == EvictionPolicy::kGreedyDual) {
      container->priority =
          gd_clock_ + config_.profile.InitCost() + scratch_costs_.at(order.function);
    }
    prewarmed_[{order.node, container->id}] = now;
    Event completion;
    completion.time = ready;
    completion.seq = next_seq_++;
    completion.type = EventType::kCompletion;
    completion.node = order.node;
    completion.container = container->id;
    events_.push(completion);
  }

  // Charges pre-warmed containers that vanished (keep-alive reap, churn
  // reclaim) before their first hit to the waste bucket, preserving
  //   prewarms_cold + prewarms_transform == hits + waste + unused.
  void PurgePrewarmWaste() {
    for (auto it = prewarmed_.begin(); it != prewarmed_.end();) {
      NodeState& node = nodes_[static_cast<size_t>(it->first.first)];
      if (node.pool.Find(it->first.second) == nullptr) {
        ++result_.warming_waste;
        it = prewarmed_.erase(it);
      } else {
        ++it;
      }
    }
  }

  // Attempts to serve the request on its node right now; returns false if it
  // must (continue to) queue.
  bool TryServe(int node_index, size_t request_index, double now) {
    NodeState& node = nodes_[static_cast<size_t>(node_index)];
    const std::string& function = trace_[request_index].function;
    const Model& model = repository_.at(function);
    node.pool.ReapExpired(now);

    RequestRecord& record = result_.records[request_index];
    record.function = function;
    record.arrival = trace_[request_index].arrival;
    record.wait = now - record.arrival;
    record.compute = config_.profile.InferenceCost(model);

    // Warm start: an idle container already serving this function.
    if (Container* warm = node.pool.FindWarm(function)) {
      const auto prewarm = prewarmed_.find({node_index, warm->id});
      if (prewarm != prewarmed_.end()) {
        // First hit on a speculative pre-warm: the forecast paid off.
        ++result_.warming_hits;
        result_.warming_lead_seconds.push_back(now - prewarm->second);
        prewarmed_.erase(prewarm);
      }
      record.start = StartType::kWarm;
      record.init = 0.0;
      record.load = 0.0;
      Occupy(warm, node_index, request_index, now, record);
      return true;
    }

    // Memory the new container would need (0 when memory is unmodeled).
    int64_t needed_memory = 0;
    if (config_.node_memory_bytes > 0) {
      needed_memory = config_.fine_grained_containers ? ContainerFootprintBytes(model)
                                                      : config_.uniform_container_bytes;
    }

    StartupRequest request;
    request.dest = &model;
    // With fine-grained containers a donor must be large enough to host the
    // new model (§6).
    request.donors = node.pool.TransformCandidates(
        function, now, config_.fine_grained_containers ? needed_memory : 0);
    request.has_free_slot = node.pool.CanLaunch(needed_memory);
    for (const Container& container : node.pool.containers()) {
      request.resident_functions.push_back(container.function);
    }
    const StartupResult startup = policy_->Acquire(request);

    record.start = startup.type;
    record.init = startup.init_seconds;
    record.load = startup.load_seconds;

    if (startup.donor != nullptr) {
      if (prewarmed_.erase({node_index, startup.donor->id}) > 0) {
        ++result_.warming_waste;  // A reactive transform consumed an unused pre-warm.
      }
      // Repurpose the donor container for this function.
      startup.donor->function = function;
      Occupy(startup.donor, node_index, request_index, now, record);
      return true;
    }

    // Start a new container, evicting idle containers (per the eviction
    // policy) until it fits, slot- and memory-wise.
    while (!node.pool.CanLaunch(needed_memory)) {
      Container* victim = config_.eviction == EvictionPolicy::kGreedyDual
                              ? node.pool.MinPriorityIdle()
                              : node.pool.LruIdle();
      if (victim == nullptr) {
        return false;  // All containers busy: queue.
      }
      // Greedy-dual aging: the clock advances to the evicted priority.
      if (config_.eviction == EvictionPolicy::kGreedyDual) {
        gd_clock_ = std::max(gd_clock_, victim->priority);
      }
      if (prewarmed_.erase({node_index, victim->id}) > 0) {
        ++result_.warming_waste;  // Eviction beat the forecast to the slot.
      }
      node.pool.Remove(victim->id);
    }
    Container* slot = node.pool.Launch(function, now, now, needed_memory);
    Occupy(slot, node_index, request_index, now, record);
    return true;
  }

  // Marks the container busy through init + load + compute and schedules the
  // completion event.
  void Occupy(Container* container, int node_index, size_t request_index, double now,
              const RequestRecord& record) {
    if (warming_engine_ != nullptr) {
      // The sim mirror of the per-function invoke counters WarmNow harvests.
      ++served_counts_[trace_[request_index].function];
    }
    const double done = now + record.init + record.load + record.compute;
    container->state = ContainerState::kBusy;
    container->busy_until = done;
    container->last_active = now;
    if (config_.eviction == EvictionPolicy::kGreedyDual) {
      // GDSF-style priority: aged clock plus the cost of bringing this
      // function back after an eviction (a full cold start).
      container->priority =
          gd_clock_ + config_.profile.InitCost() +
          scratch_costs_.at(trace_[request_index].function);
    }
    Event completion;
    completion.time = done;
    completion.seq = next_seq_++;
    completion.type = EventType::kCompletion;
    completion.request_index = request_index;
    completion.node = node_index;
    completion.container = container->id;
    events_.push(completion);
  }

  const Trace& trace_;
  SimConfig config_;
  std::map<std::string, Model> repository_;
  std::map<std::string, double> scratch_costs_;
  double gd_clock_ = 0.0;
  std::shared_ptr<const PlacementTable> table_;
  // Placement inputs kept for churn-triggered re-clustering.
  std::vector<const Model*> model_ptrs_;
  std::map<std::string, DemandSeries> history_;
  std::unique_ptr<PlacementPolicy> placement_policy_;
  std::vector<uint8_t> live_mask_;  // Empty = all nodes live.
  std::unique_ptr<StartupPolicy> policy_;
  // --- Forecast-driven warming (null/empty when SimConfig::warming is off).
  std::unique_ptr<WarmingEngine> warming_engine_;
  std::unique_ptr<DemandAccumulator> warming_demand_;
  // Cumulative served invocations per function: the warming harvest's input.
  std::map<std::string, uint64_t> served_counts_;
  // Pre-warmed containers awaiting their first hit: (node, id) -> born time.
  std::map<std::pair<int, ContainerId>, double> prewarmed_;
  std::vector<NodeState> nodes_;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  uint64_t next_seq_ = 0;
  SimResult result_;
};

double Average(const std::vector<RequestRecord>& records, double (*get)(const RequestRecord&)) {
  if (records.empty()) {
    return 0.0;
  }
  double total = 0.0;
  for (const RequestRecord& record : records) {
    total += get(record);
  }
  return total / static_cast<double>(records.size());
}

}  // namespace

double SimResult::AvgServiceTime() const {
  return Average(records, [](const RequestRecord& r) { return r.ServiceTime(); });
}

double SimResult::AvgWait() const {
  return Average(records, [](const RequestRecord& r) { return r.wait; });
}

double SimResult::AvgInit() const {
  return Average(records, [](const RequestRecord& r) { return r.init; });
}

double SimResult::AvgLoad() const {
  return Average(records, [](const RequestRecord& r) { return r.load; });
}

double SimResult::AvgCompute() const {
  return Average(records, [](const RequestRecord& r) { return r.compute; });
}

size_t SimResult::CountOf(StartType type) const {
  size_t count = 0;
  for (const RequestRecord& record : records) {
    if (record.start == type) {
      ++count;
    }
  }
  return count;
}

double SimResult::ServiceTimePercentile(double q) const {
  if (records.empty()) {
    return 0.0;
  }
  std::vector<double> times;
  times.reserve(records.size());
  for (const RequestRecord& record : records) {
    times.push_back(record.ServiceTime());
  }
  std::sort(times.begin(), times.end());
  const double clamped = std::min(1.0, std::max(0.0, q));
  const size_t index = std::min(times.size() - 1,
                                static_cast<size_t>(clamped * static_cast<double>(times.size())));
  return times[index];
}

double SimResult::FractionOf(StartType type) const {
  if (records.empty()) {
    return 0.0;
  }
  return static_cast<double>(CountOf(type)) / static_cast<double>(records.size());
}

int64_t ContainerFootprintBytes(const Model& model) {
  // ~256 MiB of runtime/framework baseline plus weights with a 1.2x overhead
  // for deserialization scratch and fragmentation.
  constexpr int64_t kRuntimeBaseline = 256LL << 20;
  return kRuntimeBaseline + static_cast<int64_t>(1.2 * static_cast<double>(model.WeightBytes()));
}

SimResult RunSimulation(const std::vector<Model>& models, const Trace& trace,
                        const SimConfig& config, const CostModel& costs) {
  Simulation simulation(models, trace, config, costs);
  return simulation.Run();
}

}  // namespace optimus
