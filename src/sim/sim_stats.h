// Streaming simulation statistics (DESIGN.md §18): constant-memory
// accumulators that replace the per-request RequestRecord vector at scale.
//
//   * LatencyHistogram — log-bucketed (5% geometric buckets): percentiles to
//     within one bucket's relative width, in a few KB regardless of count;
//   * ReservoirSample  — seeded Algorithm-R reservoir: an unbiased
//     fixed-size sample of service times for exact-sample diagnostics.
//
// Both are deterministic in the input sequence (the reservoir additionally
// in its seed), so two simulator runs produce bit-identical summaries.

#ifndef OPTIMUS_SRC_SIM_SIM_STATS_H_
#define OPTIMUS_SRC_SIM_SIM_STATS_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"

namespace optimus {

// Histogram over positive values with geometrically spaced buckets. Bucket 0
// catches values <= kFirstUpper; bucket i spans
// (kFirstUpper * kGrowth^(i-1), kFirstUpper * kGrowth^i]. With 5% growth a
// percentile read is within ~5% relative error of the exact order statistic.
class LatencyHistogram {
 public:
  static constexpr double kFirstUpper = 1e-6;  // Seconds.
  static constexpr double kGrowth = 1.05;

  void Record(double seconds);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return max_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }

  // Quantile q in [0, 1] using the same rank convention as the record-based
  // path (rank = min(count-1, floor(q * count))); returns the geometric
  // midpoint of the rank's bucket, clamped into [min, max].
  double Percentile(double q) const;

  // Exposed for determinism tests: bit-identical runs produce bit-identical
  // bucket vectors.
  const std::vector<uint64_t>& buckets() const { return buckets_; }

 private:
  static size_t BucketIndex(double seconds);

  std::vector<uint64_t> buckets_;  // Grown lazily to the highest seen bucket.
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Fixed-capacity uniform sample (Vitter's Algorithm R) over a stream.
// Deterministic from the seed and the input sequence.
class ReservoirSample {
 public:
  explicit ReservoirSample(size_t capacity = 4096, uint64_t seed = 0x0ccab5eed)
      : rng_(seed), capacity_(capacity) {}

  void Add(double value);

  uint64_t seen() const { return seen_; }
  const std::vector<double>& samples() const { return samples_; }
  std::vector<double> Sorted() const;

 private:
  Rng rng_;
  size_t capacity_;
  uint64_t seen_ = 0;
  std::vector<double> samples_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_SIM_SIM_STATS_H_
