// A fixed-size worker pool for the concurrent control path: deploy-time plan
// warming fans plan computations out across cores, and the HTTP gateway
// dispatches connections onto it instead of serving them inline.
//
// Deliberately minimal — a single locked FIFO queue, no work stealing. The
// tasks it runs (planning a transformation, serving one HTTP request) are
// orders of magnitude more expensive than a queue handoff, so a smarter
// scheduler buys nothing here. The queue mutex ranks near the bottom of the
// hierarchy (kThreadPool): submitters hold nothing, and workers drop it
// before running the task.

#ifndef OPTIMUS_SRC_COMMON_THREAD_POOL_H_
#define OPTIMUS_SRC_COMMON_THREAD_POOL_H_

#include <deque>
#include <functional>
#include <future>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "src/common/sync.h"

namespace optimus {

class ThreadPool {
 public:
  // Starts `num_threads` workers (values < 1 are clamped to 1).
  explicit ThreadPool(int num_threads);

  // Drains the queue: blocks until every already-submitted task has run.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues `fn(args...)` and returns a future for its result. Exceptions
  // thrown by the task surface from future::get(). Submitting after the
  // destructor has begun throws std::runtime_error.
  template <typename Fn, typename... Args>
  auto Submit(Fn&& fn, Args&&... args) -> std::future<std::invoke_result_t<Fn, Args...>> {
    using Result = std::invoke_result_t<Fn, Args...>;
    auto task = std::make_shared<std::packaged_task<Result()>>(
        std::bind(std::forward<Fn>(fn), std::forward<Args>(args)...));
    std::future<Result> future = task->get_future();
    Post([task] { (*task)(); });
    return future;
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

 private:
  void Post(std::function<void()> task) EXCLUDES(mutex_);
  void WorkerLoop() EXCLUDES(mutex_);

  Mutex mutex_{LockRank::kThreadPool, "thread_pool.queue"};
  CondVar work_available_;
  std::deque<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool shutting_down_ GUARDED_BY(mutex_) = false;
  std::vector<std::thread> workers_;  // Written only in the constructor.
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_COMMON_THREAD_POOL_H_
