#include "src/common/thread_pool.h"

#include <algorithm>
#include <stdexcept>

namespace optimus {

ThreadPool::ThreadPool(int num_threads) {
  const int count = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    workers_.emplace_back(&ThreadPool::WorkerLoop, this);
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(mutex_);
    shutting_down_ = true;
  }
  work_available_.NotifyAll();
  for (std::thread& worker : workers_) {
    worker.join();
  }
}

void ThreadPool::Post(std::function<void()> task) {
  {
    MutexLock lock(mutex_);
    if (shutting_down_) {
      throw std::runtime_error("ThreadPool: Submit after shutdown");
    }
    queue_.push_back(std::move(task));
  }
  work_available_.NotifyOne();
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      MutexLock lock(mutex_);
      while (!shutting_down_ && queue_.empty()) {
        work_available_.Wait(mutex_);
      }
      if (queue_.empty()) {
        return;  // Shutting down and fully drained.
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // packaged_task captures exceptions into the future.
  }
}

}  // namespace optimus
