#include "src/common/rng.h"

#include <cmath>
#include <numeric>

namespace optimus {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) {
    s = SplitMix64(&sm);
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  return lo + static_cast<int64_t>(NextU64() % span);
}

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double rate) {
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

int64_t Rng::Poisson(double mean) {
  if (mean <= 0.0) {
    return 0;
  }
  if (mean > 64.0) {
    const double sample = Normal(mean, std::sqrt(mean));
    return sample < 0.0 ? 0 : static_cast<int64_t>(sample + 0.5);
  }
  // Knuth inversion.
  const double limit = std::exp(-mean);
  double product = NextDouble();
  int64_t count = 0;
  while (product > limit) {
    ++count;
    product *= NextDouble();
  }
  return count;
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  double target = NextDouble() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target <= 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace optimus
