// Deterministic fault injection (DESIGN.md §11).
//
// Subsystems declare named *fault points* on their failure-prone paths
// (e.g. "loader.load", "executor.step"); a process-wide registry decides,
// deterministically, whether each evaluation of a point fires. Nothing fires
// unless a point has been armed — the hot-path cost of a compiled-in fault
// point with injection disabled is a single relaxed atomic load.
//
// Points are armed programmatically (tests, the chaos harness) or through the
// OPTIMUS_FAULTS environment variable, read once at process start:
//
//   OPTIMUS_FAULTS := entry (';' entry)*
//   entry          := <point> '=' <trigger>
//   trigger        := 'prob:' <p> ['@' <seed>]   fire each hit w.p. p (seeded)
//                   | 'nth:' <n>                 fire every n-th hit
//                   | 'at:' <k>                  fire exactly on the k-th hit
//                   | 'once'                     sugar for at:1
//                   | 'always'                   fire on every hit
//
//   e.g. OPTIMUS_FAULTS="executor.step=prob:0.05@42;loader.load=at:3"
//
// Every evaluation ("hit") and every firing is counted per point, so a chaos
// harness can reconcile observed fallbacks/errors against the injected-fault
// log. All decisions derive from the seed in the spec — two runs with the
// same spec and the same hit sequence fire identically.
//
// Fault points in the tree (see DESIGN.md §11 for the failure each models):
//   loader.deserialize  ModelFile parse/read failure (LoadFromFile)
//   loader.load         weight materialization / scratch-load failure
//   executor.step       per-meta-op failure inside ExecutePlan
//   cache.plan          planning failure in PlanCache::GetOrPlan
//   cache.verify        static verification failure at plan insert
//   transform.donor     donor/plan mismatch detected at transform start
//   gateway.slow        request handling delayed (exercises deadlines)
//   gateway.drop        request dropped at the gateway (503)
//   placement.rebalance placement recompute failure (previous table keeps
//                       serving; counted in optimus_rebalance_failures_total)
//   node.revoke         spot revocation of the freshly-routed node mid-invoke
//                       (zero grace; the request fails retryable UNAVAILABLE
//                       and the next attempt re-homes — DESIGN.md §16)
//   tenant.quota_exhausted  gateway tenant admission forced to reject (429 +
//                       Retry-After) regardless of the token bucket's level
//   warming.prefetch    speculative pre-warm order aborted before touching a
//                       node (counted in optimus_warming_failures_total;
//                       reactive traffic is unaffected — DESIGN.md §17)

#ifndef OPTIMUS_SRC_COMMON_FAULT_H_
#define OPTIMUS_SRC_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace optimus {
namespace fault {

enum class TriggerKind : uint8_t {
  kProbability,  // Fire each hit with probability `probability` (seeded RNG).
  kEveryNth,     // Fire on hits n, 2n, 3n, ...
  kAt,           // Fire exactly on hit #n (one-shot).
  kAlways,       // Fire on every hit.
};

// One armed fault point.
struct FaultSpec {
  std::string point;
  TriggerKind kind = TriggerKind::kAlways;
  double probability = 0.0;  // kProbability.
  uint64_t n = 1;            // kEveryNth / kAt.
  uint64_t seed = 1;         // kProbability.
};

// Parses the OPTIMUS_FAULTS grammar above. Throws std::invalid_argument with
// the offending entry on any syntax error.
std::vector<FaultSpec> ParseFaultSpecs(const std::string& spec);

// Thrown when an armed fault point fires through MaybeInject().
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& point)
      : std::runtime_error("injected fault at " + point), point_(point) {}
  const std::string& point() const { return point_; }

 private:
  std::string point_;
};

namespace internal {
// True iff any point is armed. The only state fault points touch when
// injection is disabled.
extern std::atomic<bool> g_armed;
// Slow paths; only reached while at least one point is armed.
bool EvaluateSlow(const char* point);
void InjectSlow(const char* point);
}  // namespace internal

// True iff any fault point is armed anywhere in the process.
inline bool Enabled() { return internal::g_armed.load(std::memory_order_relaxed); }

// Evaluates the point; returns true when it fires. For call sites that want
// custom failure behaviour (delays, drops).
inline bool Triggered(const char* point) {
  return Enabled() && internal::EvaluateSlow(point);
}

// Evaluates the point; throws FaultInjectedError when it fires.
inline void MaybeInject(const char* point) {
  if (Enabled()) {
    internal::InjectSlow(point);
  }
}

// Arms a point (replacing any prior trigger for it; counters reset).
void Arm(const FaultSpec& spec);

// Parses `spec` and arms every entry.
void ArmSpec(const std::string& spec);

// Disarms everything and clears all counters.
void Disarm();

// Hit / fire counters for an individual point (0 for unknown points). Counts
// survive Arm() of *other* points and are cleared by Disarm().
uint64_t Hits(const std::string& point);
uint64_t Fires(const std::string& point);

// Snapshot of fire counts for every point that has been armed since the last
// Disarm() — the injected-fault log chaos harnesses reconcile against.
std::map<std::string, uint64_t> FireCounts();

// RAII arming for tests: arms `spec` on construction, Disarm()s on scope
// exit. Not nestable (scopes share the process-wide registry).
class ScopedFaults {
 public:
  explicit ScopedFaults(const std::string& spec) { ArmSpec(spec); }
  ScopedFaults() = default;
  ~ScopedFaults() { Disarm(); }
  ScopedFaults(const ScopedFaults&) = delete;
  ScopedFaults& operator=(const ScopedFaults&) = delete;
};

}  // namespace fault
}  // namespace optimus

#endif  // OPTIMUS_SRC_COMMON_FAULT_H_
