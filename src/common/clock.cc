#include "src/common/clock.h"

#include <chrono>

namespace optimus {

namespace {

std::chrono::steady_clock::time_point ProcessEpoch() {
  static const std::chrono::steady_clock::time_point epoch = std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

double SystemClock::Now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - ProcessEpoch()).count();
}

const SystemClock& SystemClock::Instance() {
  static const SystemClock clock;
  // Touch the epoch so the first Now() reading is relative to construction,
  // not to the first time anyone asks.
  ProcessEpoch();
  return clock;
}

double VirtualClock::AdvanceTo(double now) {
  double prev = now_.load(std::memory_order_relaxed);
  while (now > prev) {
    if (now_.compare_exchange_weak(prev, now, std::memory_order_acq_rel)) {
      return now;
    }
  }
  return prev;
}

}  // namespace optimus
