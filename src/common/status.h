// Typed error taxonomy for the platform boundary (DESIGN.md §11).
//
// Every failure that crosses OptimusPlatform::TryInvoke or the gateway is
// classified into one of these codes, splitting the space the way serving
// systems do:
//
//   * client errors     — kInvalidArgument, kNotFound, kAlreadyExists: the
//                         request itself is wrong; retrying it verbatim can
//                         never succeed.
//   * retryable errors  — kUnavailable: a transient fault (I/O hiccup,
//                         injected fault, poisoned donor already destroyed);
//                         the same request may succeed if retried.
//   * load shedding     — kResourceExhausted: the platform is saturated and
//                         refused the request outright; back off and retry.
//   * deadline          — kDeadlineExceeded: the per-request deadline expired
//                         before a result was produced.
//   * permanent errors  — kInternal: an invariant broke; retrying won't help.
//
// Status is the value-type result; OptimusError is the matching exception for
// call sites that prefer throwing APIs. The two convert losslessly.

#ifndef OPTIMUS_SRC_COMMON_STATUS_H_
#define OPTIMUS_SRC_COMMON_STATUS_H_

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>

namespace optimus {

enum class ErrorCode : uint8_t {
  kOk = 0,
  kInvalidArgument,    // Malformed request or input.
  kNotFound,           // Unknown function.
  kAlreadyExists,      // Duplicate registration.
  kResourceExhausted,  // Shed: the platform/gateway is saturated.
  kUnavailable,        // Transient failure; the request is retryable.
  kDeadlineExceeded,   // Per-request deadline expired.
  kInternal,           // Permanent internal failure.
};

// Stable upper-snake names ("NOT_FOUND") used in logs and JSON error bodies.
const char* ErrorCodeName(ErrorCode code);

// True for codes where retrying the identical request may succeed.
inline bool IsRetryable(ErrorCode code) { return code == ErrorCode::kUnavailable; }

// True for codes caused by the request itself rather than the platform.
inline bool IsClientError(ErrorCode code) {
  return code == ErrorCode::kInvalidArgument || code == ErrorCode::kNotFound ||
         code == ErrorCode::kAlreadyExists;
}

class Status {
 public:
  Status() = default;  // OK.
  Status(ErrorCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == ErrorCode::kOk; }
  ErrorCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CODE>: <message>".
  std::string ToString() const;

 private:
  ErrorCode code_ = ErrorCode::kOk;
  std::string message_;
};

// Exception form of a non-OK Status.
class OptimusError : public std::runtime_error {
 public:
  OptimusError(ErrorCode code, const std::string& message)
      : std::runtime_error(message), code_(code) {}
  explicit OptimusError(const Status& status)
      : std::runtime_error(status.message()), code_(status.code()) {}

  ErrorCode code() const { return code_; }
  Status ToStatus() const { return Status(code_, what()); }

 private:
  ErrorCode code_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_COMMON_STATUS_H_
