#include "src/common/status.h"

namespace optimus {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kOk:
      return "OK";
    case ErrorCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case ErrorCode::kNotFound:
      return "NOT_FOUND";
    case ErrorCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case ErrorCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case ErrorCode::kUnavailable:
      return "UNAVAILABLE";
    case ErrorCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case ErrorCode::kInternal:
      return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) {
    return "OK";
  }
  return std::string(ErrorCodeName(code_)) + ": " + message_;
}

}  // namespace optimus
