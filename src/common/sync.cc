#include "src/common/sync.h"

#include <cstdio>
#include <cstdlib>
#include <string>

#if OPTIMUS_LOCK_RANK_DEBUG
#include <atomic>
#include <map>
#include <set>
#include <vector>
#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define OPTIMUS_HAVE_BACKTRACE 1
#endif
#endif
#endif

namespace optimus {

// The Release contract: wrappers are layout-identical to the std types, so
// migrating the tree onto them costs nothing in production builds.
#if !OPTIMUS_LOCK_RANK_DEBUG
static_assert(sizeof(Mutex) == sizeof(lockrank::internal::RawMutex),
              "Release Mutex must add no state over the raw mutex");
static_assert(sizeof(SharedMutex) == sizeof(lockrank::internal::RawSharedMutex),
              "Release SharedMutex must add no state over the raw shared mutex");
static_assert(sizeof(CondVar) == sizeof(lockrank::internal::RawCondVar),
              "CondVar must add no state over the raw condition variable");
static_assert(alignof(Mutex) == alignof(lockrank::internal::RawMutex));
static_assert(alignof(SharedMutex) == alignof(lockrank::internal::RawSharedMutex));
#endif

namespace lockrank {

#if !OPTIMUS_LOCK_RANK_DEBUG

// Validator compiled out: the API keeps linking so tests build in any config.
Handler SetViolationHandler(Handler) { return nullptr; }
size_t HeldLockCount() { return 0; }
void ResetGraphForTest() {}

#else

namespace {

constexpr uint32_t kUnrankedValue = static_cast<uint32_t>(LockRank::kUnranked);
constexpr int kMaxStackFrames = 24;

struct Stack {
  void* frames[kMaxStackFrames];
  int depth = 0;
};

Stack CaptureStack() {
  Stack stack;
#if defined(OPTIMUS_HAVE_BACKTRACE)
  stack.depth = backtrace(stack.frames, kMaxStackFrames);
#endif
  return stack;
}

void AppendStack(std::string* out, const Stack& stack) {
#if defined(OPTIMUS_HAVE_BACKTRACE)
  if (stack.depth <= 0) {
    out->append("    <no frames captured>\n");
    return;
  }
  char** symbols = backtrace_symbols(const_cast<void**>(stack.frames), stack.depth);
  for (int i = 0; i < stack.depth; ++i) {
    out->append("    ");
    if (symbols != nullptr) {
      out->append(symbols[i]);
    } else {
      char buffer[32];
      std::snprintf(buffer, sizeof(buffer), "%p", stack.frames[i]);
      out->append(buffer);
    }
    out->push_back('\n');
  }
  std::free(symbols);
#else
  (void)stack;
  out->append("    <backtrace unavailable on this platform>\n");
#endif
}

struct HeldLock {
  const void* mu = nullptr;
  uint32_t rank = kUnrankedValue;
  const char* name = "";
  bool shared = false;
  Stack stack;  // Where this thread acquired it.
};

// The per-thread held-set. A vector, not a set: release order is LIFO-ish but
// not guaranteed (LockedNode moves), so release searches backwards.
thread_local std::vector<HeldLock> t_held;

// One recorded "A was held while acquiring B" observation.
struct EdgeInfo {
  const char* from_name = "";
  const char* to_name = "";
  uint32_t from_rank = kUnrankedValue;
  uint32_t to_rank = kUnrankedValue;
  Stack stack;  // The acquiring thread's stack when the edge was first seen.
};

// Global acquired-after graph over mutex *instances*, fed by every ranked
// acquisition on every thread. Guarded by a raw mutex (never an
// optimus::Mutex — the validator must not recurse into itself). Nodes are
// never removed: the locks that matter here are long-lived platform state,
// and this is debug-build-only bookkeeping.
internal::RawMutex g_graph_mutex;
std::map<const void*, std::map<const void*, EdgeInfo>>& Graph() {
  static auto* graph = new std::map<const void*, std::map<const void*, EdgeInfo>>();
  return *graph;
}

// DFS reachability over the graph; caller holds g_graph_mutex.
bool Reachable(const void* from, const void* to, std::set<const void*>* visited) {
  if (from == to) {
    return true;
  }
  if (!visited->insert(from).second) {
    return false;
  }
  auto it = Graph().find(from);
  if (it == Graph().end()) {
    return false;
  }
  for (const auto& [next, info] : it->second) {
    if (Reachable(next, to, visited)) {
      return true;
    }
  }
  return false;
}

// Appends the edge chain from `from` to `to` (names only) to the report;
// caller holds g_graph_mutex. Returns true when a path was printed.
bool AppendPath(std::string* out, const void* from, const void* to,
                std::set<const void*>* visited) {
  if (!visited->insert(from).second) {
    return false;
  }
  auto it = Graph().find(from);
  if (it == Graph().end()) {
    return false;
  }
  for (auto& [next, info] : it->second) {
    if (next == to || AppendPath(out, next, to, visited)) {
      out->append("  edge '");
      out->append(info.from_name);
      out->append("' -> '");
      out->append(info.to_name);
      out->append("', first recorded at:\n");
      AppendStack(out, info.stack);
      return true;
    }
  }
  return false;
}

void DefaultHandler(const Violation& violation) {
  std::fprintf(stderr, "optimus lock-rank validator: %s\n%s", violation.kind,
               violation.message.c_str());
  std::abort();
}

std::atomic<Handler> g_handler{&DefaultHandler};

void Report(const char* kind, std::string message) {
  Violation violation;
  violation.kind = kind;
  violation.message = std::move(message);
  g_handler.load(std::memory_order_acquire)(violation);
}

std::string DescribeLock(const char* name, uint32_t rank) {
  std::string out = "'";
  out.append(name);
  out.append("' (rank ");
  out.append(rank == kUnrankedValue ? std::string("unranked") : std::to_string(rank));
  out.append(")");
  return out;
}

}  // namespace

Handler SetViolationHandler(Handler handler) {
  return g_handler.exchange(handler != nullptr ? handler : &DefaultHandler,
                            std::memory_order_acq_rel);
}

size_t HeldLockCount() { return t_held.size(); }

void ResetGraphForTest() {
  std::lock_guard<internal::RawMutex> lock(g_graph_mutex);
  Graph().clear();
}

namespace internal {

void PreAcquire(const void* mu, uint32_t rank, const char* name) {
  const Stack here = CaptureStack();
  // Recursive acquisition and rank inversion: checked against the thread's
  // held-set before blocking, so a would-be deadlock reports instead of
  // hanging the test run.
  for (const HeldLock& held : t_held) {
    if (held.mu == mu) {
      std::string message = "re-acquiring " + DescribeLock(name, rank) +
                            " already held by this thread\nfirst acquisition:\n";
      AppendStack(&message, held.stack);
      message.append("re-acquisition:\n");
      AppendStack(&message, here);
      Report("recursive-acquisition", std::move(message));
      return;
    }
  }
  if (rank == kUnrankedValue) {
    return;  // Unranked locks are exempt from ordering checks.
  }
  for (const HeldLock& held : t_held) {
    if (held.rank != kUnrankedValue && held.rank > rank) {
      std::string message = "acquiring " + DescribeLock(name, rank) + " while holding " +
                            DescribeLock(held.name, held.rank) +
                            " — ranks must be acquired in increasing order\nheld lock acquired "
                            "at:\n";
      AppendStack(&message, held.stack);
      message.append("offending acquisition:\n");
      AppendStack(&message, here);
      Report("rank-inversion", std::move(message));
      return;
    }
  }
  // Feed the acquired-after graph and detect cycles among same-or-legal rank
  // pairs (the inversion check above already proves held.rank <= rank, so any
  // cycle found here is a genuine cross-thread ordering disagreement —
  // typically two threads taking two same-rank locks in opposite orders).
  std::lock_guard<internal::RawMutex> graph_lock(g_graph_mutex);
  for (const HeldLock& held : t_held) {
    if (held.rank == kUnrankedValue) {
      continue;
    }
    auto& out_edges = Graph()[held.mu];
    if (out_edges.find(mu) != out_edges.end()) {
      continue;  // Known edge; already vetted for cycles when first recorded.
    }
    std::set<const void*> visited;
    if (Reachable(mu, held.mu, &visited)) {
      std::string message = "acquiring " + DescribeLock(name, rank) + " while holding " +
                            DescribeLock(held.name, held.rank) +
                            " closes an acquired-after cycle:\n";
      std::set<const void*> path_visited;
      AppendPath(&message, mu, held.mu, &path_visited);
      message.append("held lock acquired at:\n");
      AppendStack(&message, held.stack);
      message.append("offending acquisition:\n");
      AppendStack(&message, here);
      Report("lock-cycle", std::move(message));
      return;  // Skip recording the cycle-closing edge (test handlers return).
    }
    EdgeInfo info;
    info.from_name = held.name;
    info.to_name = name;
    info.from_rank = held.rank;
    info.to_rank = rank;
    info.stack = here;
    out_edges.emplace(mu, std::move(info));
  }
}

void PostAcquire(const void* mu, uint32_t rank, const char* name, bool shared) {
  HeldLock held;
  held.mu = mu;
  held.rank = rank;
  held.name = name;
  held.shared = shared;
  held.stack = CaptureStack();
  t_held.push_back(std::move(held));
}

void OnTryAcquire(const void* mu, uint32_t rank, const char* name, bool shared) {
  // A successful try-lock cannot deadlock, so it skips the ordering checks
  // (and the graph — try-lock sites are allowed to probe against the order).
  // It still enters the held-set: locks acquired *after* it are checked.
  PostAcquire(mu, rank, name, shared);
}

void OnRelease(const void* mu, const char* name) {
  for (auto it = t_held.rbegin(); it != t_held.rend(); ++it) {
    if (it->mu == mu) {
      t_held.erase(std::next(it).base());
      return;
    }
  }
  std::string message = "releasing '";
  message.append(name);
  message.append("' which this thread does not hold\nrelease at:\n");
  const Stack here = CaptureStack();
  AppendStack(&message, here);
  Report("unheld-release", std::move(message));
}

}  // namespace internal

#endif  // OPTIMUS_LOCK_RANK_DEBUG

}  // namespace lockrank
}  // namespace optimus
