// Clock — the one time source behind keep-alive, eviction, and warming-cycle
// logic (DESIGN.md §18).
//
// Every policy that reasons about elapsed time (the §4.2 idle timer, the
// keep-alive reaper, greedy-dual aging, the warming cadence) consults a Clock
// rather than calling a chrono API or threading ad-hoc `now` doubles around.
// Two implementations cover both execution worlds:
//
//   * SystemClock  — monotonic wall seconds since process start (the live
//     gateway/platform deployment);
//   * VirtualClock — a CAS-max advanced virtual time (the simulator's event
//     loop, and the live platform's caller-driven clock).
//
// Because the same policy code reads the same interface in both worlds, the
// sim/live twin property holds by construction: a simulation and a live run
// presented with the same sequence of clock readings make identical
// keep-alive, eviction, and warming decisions.

#ifndef OPTIMUS_SRC_COMMON_CLOCK_H_
#define OPTIMUS_SRC_COMMON_CLOCK_H_

#include <atomic>

namespace optimus {

// Seconds since an implementation-defined epoch. Readings are monotone
// non-decreasing; implementations must be safe to read from any thread.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual double Now() const = 0;
};

// Monotonic wall-clock seconds since process start (steady_clock based, so
// immune to NTP steps). The live deployment's time source.
class SystemClock final : public Clock {
 public:
  double Now() const override;

  // Process-wide instance (the epoch is captured on first use).
  static const SystemClock& Instance();
};

// Manually advanced virtual time. AdvanceTo is a CAS-max: time never moves
// backwards, and a caller presenting a stale timestamp (normal under
// concurrency — threads race between reading their timestamp and reaching
// the clock) is clamped forward to the newest observed time.
class VirtualClock final : public Clock {
 public:
  explicit VirtualClock(double start = 0.0) : now_(start) {}

  double Now() const override { return now_.load(std::memory_order_acquire); }

  // Advances the clock to max(now, current) and returns that effective time.
  double AdvanceTo(double now);

 private:
  std::atomic<double> now_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_COMMON_CLOCK_H_
