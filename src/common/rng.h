// Deterministic pseudo-random number generation for Optimus.
//
// Every stochastic component in the repository (model-zoo generation, workload
// synthesis, simulation) draws from this generator so that experiments are
// reproducible bit-for-bit from a seed.

#ifndef OPTIMUS_SRC_COMMON_RNG_H_
#define OPTIMUS_SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace optimus {

// A small, fast, deterministic RNG (xoshiro256** seeded via splitmix64).
//
// Not cryptographically secure; statistically strong enough for workload and
// weight synthesis. Copyable; copies evolve independently.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Next raw 64-bit value.
  uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Standard normal via Box-Muller.
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Exponential inter-arrival sample with the given rate (events per unit
  // time). Requires rate > 0.
  double Exponential(double rate);

  // Poisson-distributed count with the given mean. Uses inversion for small
  // means and a normal approximation for large ones.
  int64_t Poisson(double mean);

  // Returns true with probability p.
  bool Bernoulli(double p);

  // Samples an index in [0, weights.size()) proportionally to weights.
  // Requires a non-empty vector with a positive sum.
  size_t WeightedIndex(const std::vector<double>& weights);

  // Derives an independent child generator; useful for giving each model or
  // function its own stream without cross-coupling.
  Rng Fork();

 private:
  uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_COMMON_RNG_H_
