// Wall-clock stopwatch used by the offline profiler and micro benchmarks.

#ifndef OPTIMUS_SRC_COMMON_STOPWATCH_H_
#define OPTIMUS_SRC_COMMON_STOPWATCH_H_

#include <chrono>

namespace optimus {

// Measures elapsed wall time in seconds. Started on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  // Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_COMMON_STOPWATCH_H_
