#include "src/common/fault.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

#include "src/common/rng.h"
#include "src/common/sync.h"

namespace optimus {
namespace fault {

namespace internal {
std::atomic<bool> g_armed{false};
}  // namespace internal

namespace {

// Mutable trigger state for one armed point. `mutex` serializes hit counting
// and RNG draws so concurrent evaluations stay deterministic in aggregate
// (the multiset of fire decisions depends only on the spec, not the thread
// interleaving). Lock order: registry mutex (shared) → point mutex — the
// registry lock pins the point alive while its trigger state is consulted.
struct Point {
  Mutex mutex{LockRank::kFaultPoint, "fault.point"};
  FaultSpec spec GUARDED_BY(mutex);
  Rng rng GUARDED_BY(mutex){1};
  uint64_t hits GUARDED_BY(mutex) = 0;
  uint64_t fires GUARDED_BY(mutex) = 0;
};

struct Registry {
  mutable SharedMutex mutex{LockRank::kFaultRegistry, "fault.registry"};
  std::map<std::string, std::unique_ptr<Point>> points GUARDED_BY(mutex);
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();  // Never destroyed: fault points
  return *registry;                            // may be hit during shutdown.
}

bool EvaluatePoint(Point* point) {
  MutexLock lock(point->mutex);
  const uint64_t hit = ++point->hits;
  bool fire = false;
  switch (point->spec.kind) {
    case TriggerKind::kProbability:
      fire = point->rng.Bernoulli(point->spec.probability);
      break;
    case TriggerKind::kEveryNth:
      fire = hit % point->spec.n == 0;
      break;
    case TriggerKind::kAt:
      fire = hit == point->spec.n;
      break;
    case TriggerKind::kAlways:
      fire = true;
      break;
  }
  if (fire) {
    ++point->fires;
  }
  return fire;
}

uint64_t CounterFor(const std::string& name, bool fires) {
  Registry& registry = GetRegistry();
  ReaderLock lock(registry.mutex);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) {
    return 0;
  }
  Point* point = it->second.get();
  MutexLock point_lock(point->mutex);
  return fires ? point->fires : point->hits;
}

[[noreturn]] void BadSpec(const std::string& entry, const std::string& why) {
  throw std::invalid_argument("OPTIMUS_FAULTS: bad entry '" + entry + "': " + why);
}

FaultSpec ParseEntry(const std::string& entry) {
  const size_t equals = entry.find('=');
  if (equals == std::string::npos || equals == 0) {
    BadSpec(entry, "expected <point>=<trigger>");
  }
  FaultSpec spec;
  spec.point = entry.substr(0, equals);
  const std::string trigger = entry.substr(equals + 1);
  try {
    if (trigger == "always") {
      spec.kind = TriggerKind::kAlways;
    } else if (trigger == "once") {
      spec.kind = TriggerKind::kAt;
      spec.n = 1;
    } else if (trigger.rfind("prob:", 0) == 0) {
      spec.kind = TriggerKind::kProbability;
      std::string value = trigger.substr(5);
      const size_t at = value.find('@');
      if (at != std::string::npos) {
        spec.seed = std::stoull(value.substr(at + 1));
        value = value.substr(0, at);
      }
      spec.probability = std::stod(value);
      if (spec.probability < 0.0 || spec.probability > 1.0) {
        BadSpec(entry, "probability must be in [0, 1]");
      }
    } else if (trigger.rfind("nth:", 0) == 0) {
      spec.kind = TriggerKind::kEveryNth;
      spec.n = std::stoull(trigger.substr(4));
      if (spec.n == 0) {
        BadSpec(entry, "nth requires n >= 1");
      }
    } else if (trigger.rfind("at:", 0) == 0) {
      spec.kind = TriggerKind::kAt;
      spec.n = std::stoull(trigger.substr(3));
      if (spec.n == 0) {
        BadSpec(entry, "at requires k >= 1");
      }
    } else {
      BadSpec(entry, "unknown trigger '" + trigger + "'");
    }
  } catch (const std::invalid_argument&) {
    throw;
  } catch (const std::exception&) {
    BadSpec(entry, "malformed number in trigger '" + trigger + "'");
  }
  return spec;
}

// Reads OPTIMUS_FAULTS once at process start. Parse errors are reported to
// stderr and ignored rather than aborting static initialization.
struct EnvInit {
  EnvInit() {
    const char* spec = std::getenv("OPTIMUS_FAULTS");
    if (spec != nullptr && spec[0] != '\0') {
      try {
        ArmSpec(spec);
      } catch (const std::exception& e) {
        std::fprintf(stderr, "warning: ignoring OPTIMUS_FAULTS: %s\n", e.what());
      }
    }
  }
};
const EnvInit g_env_init;

}  // namespace

std::vector<FaultSpec> ParseFaultSpecs(const std::string& spec) {
  std::vector<FaultSpec> specs;
  size_t start = 0;
  while (start < spec.size()) {
    size_t end = spec.find(';', start);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string entry = spec.substr(start, end - start);
    if (!entry.empty()) {
      specs.push_back(ParseEntry(entry));
    }
    start = end + 1;
  }
  return specs;
}

namespace internal {

bool EvaluateSlow(const char* point) {
  Registry& registry = GetRegistry();
  // The shared lock is held across the evaluation so a concurrent Disarm()
  // cannot free the point mid-draw.
  ReaderLock lock(registry.mutex);
  auto it = registry.points.find(point);
  if (it == registry.points.end()) {
    return false;
  }
  return EvaluatePoint(it->second.get());
}

void InjectSlow(const char* point) {
  if (EvaluateSlow(point)) {
    throw FaultInjectedError(point);
  }
}

}  // namespace internal

void Arm(const FaultSpec& spec) {
  if (spec.point.empty()) {
    throw std::invalid_argument("fault::Arm: empty point name");
  }
  Registry& registry = GetRegistry();
  WriterLock lock(registry.mutex);
  auto point = std::make_unique<Point>();
  {
    // A freshly built Point is unshared, but the analysis (rightly) demands
    // its lock for the writes; uncontended, so effectively free.
    MutexLock point_lock(point->mutex);
    point->spec = spec;
    point->rng = Rng(spec.seed);
  }
  registry.points[spec.point] = std::move(point);
  internal::g_armed.store(true, std::memory_order_release);
}

void ArmSpec(const std::string& spec) {
  for (const FaultSpec& parsed : ParseFaultSpecs(spec)) {
    Arm(parsed);
  }
}

void Disarm() {
  Registry& registry = GetRegistry();
  WriterLock lock(registry.mutex);
  internal::g_armed.store(false, std::memory_order_release);
  registry.points.clear();
}

uint64_t Hits(const std::string& point) { return CounterFor(point, /*fires=*/false); }

uint64_t Fires(const std::string& point) { return CounterFor(point, /*fires=*/true); }

std::map<std::string, uint64_t> FireCounts() {
  Registry& registry = GetRegistry();
  ReaderLock lock(registry.mutex);
  std::map<std::string, uint64_t> counts;
  for (const auto& [name, point_ptr] : registry.points) {
    Point* point = point_ptr.get();
    MutexLock point_lock(point->mutex);
    counts[name] = point->fires;
  }
  return counts;
}

}  // namespace fault
}  // namespace optimus
