// Concurrency contracts (DESIGN.md §15).
//
// Every lock in the tree goes through the wrappers in this header, which buy
// two enforcement layers on top of the std primitives:
//
//   1. Static: Clang Thread Safety Analysis. The wrappers carry `CAPABILITY`
//      annotations and the tree annotates protected state with `GUARDED_BY`
//      and lock-sensitive APIs with `REQUIRES`/`ACQUIRE`/`RELEASE`, so lock
//      discipline violations are compile errors under
//      `clang++ -Werror=thread-safety` (the `thread-safety` CI job). The
//      macros degrade to no-ops on other compilers.
//
//   2. Dynamic: a debug-build lock-rank validator. Every Mutex/SharedMutex is
//      constructed with a `LockRank` from the global hierarchy below; each
//      acquisition checks the calling thread's held-lock set for rank
//      inversions and feeds a global acquired-after graph whose cycles are
//      detected on the spot. A violation reports both acquisition stacks and
//      aborts (tests can intercept via SetViolationHandler). This catches the
//      ordering bugs static analysis cannot see — cross-TU protocols,
//      conditional acquisition — on every existing concurrency/chaos test.
//
// In Release builds (OPTIMUS_LOCK_RANK_DEBUG == 0) the wrappers compile down
// to the bare std types: no extra state (sizeof-identical, statically
// asserted in sync.cc) and no extra code on the lock/unlock path.
//
// Rules of use:
//   * Construct every long-lived lock with an explicit LockRank and name.
//     Default-constructed (unranked) locks are tracked in the held-set but
//     exempt from rank/cycle checking — reserve them for tests and leaf
//     scaffolding.
//   * Acquire in strictly increasing rank order. Two locks of the *same* rank
//     (e.g. two NodePool node mutexes) may not be held together unless every
//     thread agrees on the per-instance order — the acquired-after graph
//     enforces that agreement globally.
//   * Adding a lock? Pick the rank from the hierarchy table in DESIGN.md §15
//     (rank → mutex → protected state) and extend the table.

#ifndef OPTIMUS_SRC_COMMON_SYNC_H_
#define OPTIMUS_SRC_COMMON_SYNC_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang Thread Safety Analysis annotation macros (no-ops off-Clang).
// ---------------------------------------------------------------------------

#if defined(__clang__)
#define OPTIMUS_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define OPTIMUS_THREAD_ANNOTATION(x)  // Not supported by this compiler.
#endif

#define CAPABILITY(x) OPTIMUS_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY OPTIMUS_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) OPTIMUS_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) OPTIMUS_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) OPTIMUS_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) OPTIMUS_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) OPTIMUS_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) OPTIMUS_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) OPTIMUS_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) OPTIMUS_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) OPTIMUS_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) OPTIMUS_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) OPTIMUS_THREAD_ANNOTATION(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) OPTIMUS_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  OPTIMUS_THREAD_ANNOTATION(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) OPTIMUS_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) OPTIMUS_THREAD_ANNOTATION(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) OPTIMUS_THREAD_ANNOTATION(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) OPTIMUS_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS OPTIMUS_THREAD_ANNOTATION(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Lock-rank validator build gate. On by default in debug builds; force with
// -DOPTIMUS_LOCK_RANK_DEBUG=1 (the CMake OPTIMUS_LOCK_RANK option).
// ---------------------------------------------------------------------------

#if !defined(OPTIMUS_LOCK_RANK_DEBUG)
#if defined(NDEBUG)
#define OPTIMUS_LOCK_RANK_DEBUG 0
#else
#define OPTIMUS_LOCK_RANK_DEBUG 1
#endif
#endif

namespace optimus {

// The global lock hierarchy (DESIGN.md §15 holds the full rank → mutex →
// protected-state table). Locks must be acquired in strictly increasing rank
// order; gaps leave room for future locks. The numeric order encodes today's
// documented protocols, e.g. gateway batch bookkeeping happens strictly
// before (never across) a platform dispatch, and the invoke path goes
// node → plan-cache shard → plan-cache entry latch.
enum class LockRank : uint32_t {
  kTenantAdmission = 5,   // gateway per-tenant token buckets (service.cc)
  kGatewayBatch = 10,     // gateway batcher queues (service.cc)
  kRepository = 20,       // platform model repository (shared)
  kPlacementUpdate = 30,  // placement manager table swaps
  kNode = 40,             // per-node container state (NodePool)
  kPlanCacheShard = 50,   // plan-cache shard maps
  kPlanCacheEntry = 60,   // plan-cache per-entry latch
  kQuarantine = 70,       // plan-cache execution-failure quarantine
  kRebalance = 80,        // background rebalancer wakeup
  kWarming = 85,          // background warming-loop wakeup (platform.cc)
  kDemand = 90,           // placement demand accumulator
  kThreadPool = 100,      // worker-pool task queue
  kMetricsRegistry = 110, // telemetry series registry (shared)
  kTraceSampler = 120,    // trace sampler RNG
  kFaultRegistry = 130,   // fault-point registry (shared)
  kFaultPoint = 140,      // individual fault-point trigger state
  kJitter = 150,          // gateway retry-jitter RNG
  // Unranked locks are exempt from rank/cycle checking (tests, scaffolding).
  kUnranked = 0xFFFFFFFF,
};

namespace lockrank {

// A detected ordering violation. `message` carries the full human-readable
// report including both acquisition stacks.
struct Violation {
  const char* kind;  // "rank-inversion" | "lock-cycle" | "recursive-acquisition"
                     // | "unheld-release"
  std::string message;
};

using Handler = void (*)(const Violation&);

// Installs a violation handler and returns the previous one. The default
// handler writes the report to stderr and aborts; tests install a recording
// handler (a handler that returns lets the offending acquisition proceed).
// No-op (returns nullptr) when the validator is compiled out.
Handler SetViolationHandler(Handler handler);

// Locks currently held by the calling thread (0 when compiled out).
size_t HeldLockCount();

// Clears the global acquired-after graph (test isolation).
void ResetGraphForTest();

namespace internal {
// Raw std primitives for the validator's own bookkeeping (it must never
// recurse into the wrappers) and for the Release layout asserts in sync.cc.
// These aliases are the only sanctioned spelling of the std lock types
// outside this header — everything else uses optimus::Mutex/SharedMutex.
using RawMutex = std::mutex;
using RawSharedMutex = std::shared_mutex;
using RawCondVar = std::condition_variable;
}  // namespace internal

#if OPTIMUS_LOCK_RANK_DEBUG
namespace internal {
// Called by the wrappers around every acquisition/release. PreAcquire runs
// the rank/cycle checks *before* blocking on the lock so a would-be deadlock
// reports instead of hanging; PostAcquire pushes the held-set entry.
void PreAcquire(const void* mu, uint32_t rank, const char* name);
void PostAcquire(const void* mu, uint32_t rank, const char* name, bool shared);
void OnTryAcquire(const void* mu, uint32_t rank, const char* name, bool shared);
void OnRelease(const void* mu, const char* name);
}  // namespace internal
#endif

}  // namespace lockrank

// ---------------------------------------------------------------------------
// Lock wrappers. Release layout is exactly the wrapped std type.
// ---------------------------------------------------------------------------

class CAPABILITY("mutex") Mutex {
 public:
  // Unranked: tracked in the held-set, exempt from rank/cycle checks.
  Mutex() = default;

#if OPTIMUS_LOCK_RANK_DEBUG
  explicit Mutex(LockRank rank, const char* name = "")
      : rank_(static_cast<uint32_t>(rank)), name_(name) {}
#else
  explicit Mutex(LockRank /*rank*/, const char* /*name*/ = "") {}
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if OPTIMUS_LOCK_RANK_DEBUG
    lockrank::internal::PreAcquire(this, rank_, name_);
    mu_.lock();
    lockrank::internal::PostAcquire(this, rank_, name_, /*shared=*/false);
#else
    mu_.lock();
#endif
  }

  bool TryLock() TRY_ACQUIRE(true) {
    const bool acquired = mu_.try_lock();
#if OPTIMUS_LOCK_RANK_DEBUG
    if (acquired) {
      lockrank::internal::OnTryAcquire(this, rank_, name_, /*shared=*/false);
    }
#endif
    return acquired;
  }

  void Unlock() RELEASE() {
#if OPTIMUS_LOCK_RANK_DEBUG
    lockrank::internal::OnRelease(this, name_);
#endif
    mu_.unlock();
  }

  // The wrapped handle, for the CondVar bridge only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
#if OPTIMUS_LOCK_RANK_DEBUG
  uint32_t rank_ = static_cast<uint32_t>(LockRank::kUnranked);
  const char* name_ = "unranked";
#endif
};

class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;

#if OPTIMUS_LOCK_RANK_DEBUG
  explicit SharedMutex(LockRank rank, const char* name = "")
      : rank_(static_cast<uint32_t>(rank)), name_(name) {}
#else
  explicit SharedMutex(LockRank /*rank*/, const char* /*name*/ = "") {}
#endif

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
#if OPTIMUS_LOCK_RANK_DEBUG
    lockrank::internal::PreAcquire(this, rank_, name_);
    mu_.lock();
    lockrank::internal::PostAcquire(this, rank_, name_, /*shared=*/false);
#else
    mu_.lock();
#endif
  }

  void Unlock() RELEASE() {
#if OPTIMUS_LOCK_RANK_DEBUG
    lockrank::internal::OnRelease(this, name_);
#endif
    mu_.unlock();
  }

  // Shared (reader) acquisitions participate in ordering like exclusive ones:
  // a reader held while acquiring another lock deadlocks against a pending
  // writer exactly the way an exclusive hold would.
  void LockShared() ACQUIRE_SHARED() {
#if OPTIMUS_LOCK_RANK_DEBUG
    lockrank::internal::PreAcquire(this, rank_, name_);
    mu_.lock_shared();
    lockrank::internal::PostAcquire(this, rank_, name_, /*shared=*/true);
#else
    mu_.lock_shared();
#endif
  }

  void UnlockShared() RELEASE_SHARED() {
#if OPTIMUS_LOCK_RANK_DEBUG
    lockrank::internal::OnRelease(this, name_);
#endif
    mu_.unlock_shared();
  }

 private:
  std::shared_mutex mu_;
#if OPTIMUS_LOCK_RANK_DEBUG
  uint32_t rank_ = static_cast<uint32_t>(LockRank::kUnranked);
  const char* name_ = "unranked";
#endif
};

// ---------------------------------------------------------------------------
// Scoped holders (the only idiomatic way to take a lock in this tree).
// ---------------------------------------------------------------------------

// Exclusive scoped hold of a Mutex. Supports the condvar wait-loop idiom of
// releasing across a long operation and re-acquiring before scope exit
// (Unlock()/Lock()); the destructor releases only if still held.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  ~MutexLock() RELEASE() {
    if (owns_) {
      mu_->Unlock();
    }
  }

  void Unlock() RELEASE() {
    owns_ = false;
    mu_->Unlock();
  }

  void Lock() ACQUIRE() {
    mu_->Lock();
    owns_ = true;
  }

 private:
  Mutex* mu_;
  bool owns_ = true;
};

// Exclusive scoped hold of a SharedMutex (the writer side).
class SCOPED_CAPABILITY WriterLock {
 public:
  explicit WriterLock(SharedMutex& mu) ACQUIRE(mu) : mu_(&mu) { mu_->Lock(); }

  WriterLock(const WriterLock&) = delete;
  WriterLock& operator=(const WriterLock&) = delete;

  ~WriterLock() RELEASE() { mu_->Unlock(); }

 private:
  SharedMutex* mu_;
};

// Shared scoped hold of a SharedMutex (the reader side).
class SCOPED_CAPABILITY ReaderLock {
 public:
  explicit ReaderLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(&mu) { mu_->LockShared(); }

  ReaderLock(const ReaderLock&) = delete;
  ReaderLock& operator=(const ReaderLock&) = delete;

  ~ReaderLock() RELEASE_GENERIC() { mu_->UnlockShared(); }

 private:
  SharedMutex* mu_;
};

// Condition variable bound to optimus::Mutex. Wait() takes the Mutex itself
// (the caller keeps holding it via MutexLock); waits are expressed as
// explicit `while (!predicate) cv.Wait(mu);` loops rather than predicate
// lambdas so the guarded-state reads in the predicate stay visible to the
// static analysis.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu`, blocks, and re-acquires before returning. The
  // caller must re-check its predicate (spurious wakeups). The held-set entry
  // for `mu` is intentionally kept across the wait: a parked thread acquires
  // nothing, and the re-acquisition restores the exact pre-wait state.
  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.native(), std::adopt_lock);
    cv_.wait(native);
    native.release();  // Ownership stays with the caller's MutexLock.
  }

  void NotifyOne() noexcept { cv_.notify_one(); }
  void NotifyAll() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace optimus

#endif  // OPTIMUS_SRC_COMMON_SYNC_H_
