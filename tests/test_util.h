// Shared helpers for the test suite: scaled-down zoo models (fast to
// materialize) and small hand-built graphs.

#ifndef OPTIMUS_TESTS_TEST_UTIL_H_
#define OPTIMUS_TESTS_TEST_UTIL_H_

#include <string>

#include "src/zoo/bert.h"
#include "src/zoo/chain_builder.h"
#include "src/zoo/mobilenet.h"
#include "src/zoo/resnet.h"
#include "src/zoo/vgg.h"

namespace optimus {

// Quarter-width zoo models: same structure, ~1/16 the weights.
inline Model TinyVgg(int depth) {
  VggOptions options;
  options.width_multiplier = 0.25;
  Model model = BuildVgg(depth, options);
  model.set_name("tiny_" + model.name());
  return model;
}

inline Model TinyResNet(int depth) {
  ResNetOptions options;
  options.width_multiplier = 0.25;
  Model model = BuildResNet(depth, options);
  model.set_name("tiny_" + model.name());
  return model;
}

inline Model TinyMobileNet() {
  MobileNetOptions options;
  options.width_multiplier = 0.25;
  return BuildMobileNet(options);
}

inline Model TinyBert(int layers, int64_t hidden) {
  BertConfig config;
  config.name = "tiny_bert_l" + std::to_string(layers) + "_h" + std::to_string(hidden);
  config.num_layers = layers;
  config.hidden = hidden;
  config.heads = 2;
  config.intermediate = hidden * 4;
  config.vocab_size = 512;
  config.max_position = 64;
  return BuildBert(config);
}

// A 4-op linear chain: Input -> Conv(k, 3->c) -> Activation -> Output.
inline Model SmallChain(const std::string& name, int64_t kernel, int64_t channels) {
  Model model(name, "test");
  ChainBuilder chain(&model);
  chain.Append(OpKind::kInput);
  chain.Append(OpKind::kConv2D, ConvAttrs(kernel, 3, channels));
  chain.Append(OpKind::kActivation, ReluAttrs());
  chain.Append(OpKind::kOutput);
  return model;
}

}  // namespace optimus

#endif  // OPTIMUS_TESTS_TEST_UTIL_H_
