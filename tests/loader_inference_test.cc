#include "src/runtime/inference.h"

#include <gtest/gtest.h>

#include "src/graph/serialization.h"
#include "src/zoo/densenet.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

class LoaderTest : public testing::Test {
 protected:
  AnalyticCostModel costs_;
  Loader loader_{&costs_};
};

TEST_F(LoaderTest, InstantiateMaterializesWeights) {
  const ModelInstance instance = loader_.Instantiate(TinyResNet(18), 3);
  EXPECT_TRUE(instance.Loaded());
  for (const auto& [id, op] : instance.model.ops()) {
    if (OpKindHasWeights(op.kind)) {
      EXPECT_FALSE(op.weights.empty()) << op.ToString();
    } else {
      EXPECT_TRUE(op.weights.empty()) << op.ToString();
    }
  }
}

TEST_F(LoaderTest, InstantiateDeterministicPerSeed) {
  const ModelInstance a = loader_.Instantiate(TinyVgg(11), 42);
  const ModelInstance b = loader_.Instantiate(TinyVgg(11), 42);
  const ModelInstance c = loader_.Instantiate(TinyVgg(11), 43);
  EXPECT_TRUE(a.model.Identical(b.model));
  EXPECT_FALSE(a.model.Identical(c.model));
  EXPECT_TRUE(a.model.StructurallyEqual(c.model));
}

TEST_F(LoaderTest, BreakdownReported) {
  LoadBreakdown breakdown;
  loader_.Instantiate(TinyResNet(18), 1, &breakdown);
  EXPECT_GT(breakdown.structure, 0.0);
  EXPECT_GT(breakdown.weights, 0.0);
  EXPECT_GT(breakdown.deserialize, 0.0);
  EXPECT_GT(breakdown.Total(), breakdown.structure);
}

TEST_F(LoaderTest, LoadFromFileRoundTrips) {
  const ModelInstance original = loader_.Instantiate(TinyMobileNet(), 9);
  const ModelFile file = SerializeModel(original.model);
  LoadBreakdown breakdown;
  const ModelInstance loaded = loader_.LoadFromFile(file, 9, &breakdown);
  EXPECT_TRUE(loaded.model.Identical(original.model));
  EXPECT_GT(breakdown.Total(), 0.0);
}

TEST_F(LoaderTest, LoadFromFileFillsMissingWeightsDeterministically) {
  // A structure-only file gets seed-derived weights.
  const ModelFile file = SerializeModel(TinyVgg(11));
  const ModelInstance a = loader_.LoadFromFile(file, 5);
  const ModelInstance b = loader_.LoadFromFile(file, 5);
  EXPECT_TRUE(a.model.Identical(b.model));
}

class InferenceTest : public testing::Test {
 protected:
  AnalyticCostModel costs_;
  Loader loader_{&costs_};
  std::vector<float> input_ = std::vector<float>(8, 0.5f);
};

TEST_F(InferenceTest, OutputSizedByFinalDense) {
  const ModelInstance instance = loader_.Instantiate(TinyResNet(18), 1);
  const auto output = RunInference(instance, input_);
  EXPECT_EQ(output.size(), 1000u);  // num_classes.
}

TEST_F(InferenceTest, SoftmaxOutputIsDistribution) {
  const ModelInstance instance = loader_.Instantiate(TinyVgg(11), 1);
  const auto output = RunInference(instance, input_);
  double total = 0.0;
  for (const float v : output) {
    EXPECT_GE(v, 0.0f);
    total += v;
  }
  EXPECT_NEAR(total, 1.0, 1e-4);
}

TEST_F(InferenceTest, DeterministicGivenWeights) {
  const ModelInstance instance = loader_.Instantiate(TinyMobileNet(), 4);
  const auto a = RunInference(instance, input_);
  const auto b = RunInference(instance, input_);
  EXPECT_EQ(a, b);
}

TEST_F(InferenceTest, OutputDependsOnWeights) {
  const ModelInstance a = loader_.Instantiate(TinyMobileNet(), 4);
  const ModelInstance b = loader_.Instantiate(TinyMobileNet(), 5);
  EXPECT_NE(RunInference(a, input_), RunInference(b, input_));
}

TEST_F(InferenceTest, OutputDependsOnInput) {
  // A shallow model keeps input perturbations visible at the output (deep
  // stacks of small random weights attenuate them below float precision).
  const ModelInstance instance = loader_.Instantiate(SmallChain("probe", 3, 16), 4);
  const auto a = RunInference(instance, std::vector<float>(8, 0.5f));
  const auto b = RunInference(instance, std::vector<float>(8, -0.5f));
  EXPECT_NE(a, b);
}

TEST_F(InferenceTest, DenseNetConcatPathRuns) {
  // DenseNet exercises the Concat data path (dense connectivity).
  DenseNetOptions options;
  options.growth_rate = 4;
  const ModelInstance instance = loader_.Instantiate(BuildDenseNet(121, options), 1);
  const auto a = RunInference(instance, input_);
  const auto b = RunInference(instance, input_);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 1000u);
}

TEST_F(InferenceTest, RepresentativeZooModelsAllRunInference) {
  // Every representative model family's forward pass executes cleanly at
  // reduced scale (the per-kind ApplyOp switch is total).
  const Model models[] = {TinyVgg(11), TinyResNet(18), TinyMobileNet(), TinyBert(2, 64)};
  for (const Model& model : models) {
    const ModelInstance instance = loader_.Instantiate(model, 7);
    EXPECT_FALSE(RunInference(instance, input_).empty()) << model.name();
  }
}

TEST_F(InferenceTest, BertForwardPassRuns) {
  const ModelInstance instance = loader_.Instantiate(TinyBert(2, 64), 1);
  const auto output = RunInference(instance, input_);
  EXPECT_FALSE(output.empty());
}

TEST_F(InferenceTest, ArgMax) {
  EXPECT_EQ(ArgMax({0.1f, 0.7f, 0.2f}), 1);
  EXPECT_EQ(ArgMax({5.0f}), 0);
  EXPECT_EQ(ArgMax({}), -1);
}

}  // namespace
}  // namespace optimus
