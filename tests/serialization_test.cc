#include "src/graph/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include "src/runtime/loader.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

Model WeightedChain() {
  Model model = SmallChain("weighted", 3, 16);
  Rng rng(77);
  for (const OpId id : model.OpIds()) {
    Operation& op = model.mutable_op(id);
    if (OpKindHasWeights(op.kind)) {
      op.InitializeWeights(&rng);
    }
  }
  return model;
}

TEST(SerializationTest, RoundTripStructureOnly) {
  const Model original = SmallChain("plain", 3, 8);
  const Model restored = DeserializeModel(SerializeModel(original));
  EXPECT_TRUE(original.StructurallyEqual(restored));
  EXPECT_EQ(restored.name(), "plain");
  EXPECT_EQ(restored.family(), "test");
}

TEST(SerializationTest, RoundTripWithWeights) {
  const Model original = WeightedChain();
  const Model restored = DeserializeModel(SerializeModel(original));
  EXPECT_TRUE(original.Identical(restored));
}

TEST(SerializationTest, RoundTripLargeZooModel) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  const ModelInstance instance = loader.Instantiate(TinyResNet(18), /*weight_seed=*/5);
  const Model restored = DeserializeModel(SerializeModel(instance.model));
  EXPECT_TRUE(instance.model.Identical(restored));
}

TEST(SerializationTest, RoundTripBertModel) {
  AnalyticCostModel costs;
  Loader loader(&costs);
  const ModelInstance instance = loader.Instantiate(TinyBert(2, 64), /*weight_seed=*/5);
  const Model restored = DeserializeModel(SerializeModel(instance.model));
  EXPECT_TRUE(instance.model.Identical(restored));
}

TEST(SerializationTest, BadMagicRejected) {
  ModelFile file = SerializeModel(SmallChain("x", 3, 8));
  file[0] = 'X';
  EXPECT_THROW(DeserializeModel(file), std::runtime_error);
}

TEST(SerializationTest, TruncatedFileRejected) {
  ModelFile file = SerializeModel(WeightedChain());
  file.resize(file.size() / 2);
  EXPECT_THROW(DeserializeModel(file), std::runtime_error);
}

TEST(SerializationTest, TrailingBytesRejected) {
  ModelFile file = SerializeModel(SmallChain("x", 3, 8));
  file.push_back(0);
  EXPECT_THROW(DeserializeModel(file), std::runtime_error);
}

// Overwrites the trailing edge record: the file layout puts the edge list
// last, as consecutive (i32 from, i32 to) pairs.
void PatchLastEdge(ModelFile* file, int32_t from, int32_t to) {
  ASSERT_GE(file->size(), 8u);
  std::memcpy(file->data() + file->size() - 8, &from, sizeof(from));
  std::memcpy(file->data() + file->size() - 4, &to, sizeof(to));
}

TEST(SerializationTest, EdgeToMissingOpRejected) {
  ModelFile file = SerializeModel(SmallChain("x", 3, 8));
  PatchLastEdge(&file, 2, 1000000);
  try {
    DeserializeModel(file);
    FAIL() << "expected DeserializeModel to throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("out-of-range"), std::string::npos) << error.what();
  }
}

TEST(SerializationTest, CycleIntroducedByEdgeBytesRejected) {
  // SmallChain is 0 -> 1 -> 2 -> 3; rewriting the last edge to (2, 1) closes
  // the cycle 1 -> 2 -> 1. Both endpoints exist, so only the final
  // invariant gate can catch it.
  ModelFile file = SerializeModel(SmallChain("x", 3, 8));
  PatchLastEdge(&file, 2, 1);
  try {
    DeserializeModel(file);
    FAIL() << "expected DeserializeModel to throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("invariant violation"), std::string::npos)
        << error.what();
  }
}

TEST(SerializationTest, HostileOpCountRejectedBeforeParsing) {
  const Model model = SmallChain("x", 3, 8);
  ModelFile file = SerializeModel(model);
  // The op count sits after magic, version, and the two length-prefixed
  // strings.
  const size_t count_offset = 4 + 4 + (4 + model.name().size()) + (4 + model.family().size());
  const uint32_t hostile = 0x7fffffff;
  std::memcpy(file.data() + count_offset, &hostile, sizeof(hostile));
  try {
    DeserializeModel(file);
    FAIL() << "expected DeserializeModel to throw";
  } catch (const std::runtime_error& error) {
    EXPECT_NE(std::string(error.what()).find("exceeds the remaining"), std::string::npos)
        << error.what();
  }
}

TEST(SerializationTest, UnknownOpKindByteRejected) {
  const Model model = SmallChain("x", 3, 8);
  ModelFile file = SerializeModel(model);
  // First op record starts right after the u32 op count: i32 id, then the
  // kind byte.
  const size_t kind_offset =
      4 + 4 + (4 + model.name().size()) + (4 + model.family().size()) + 4 + 4;
  file[kind_offset] = 0xee;
  EXPECT_THROW(DeserializeModel(file), std::runtime_error);
}

TEST(SerializationTest, FileSizeTracksWeightBytes) {
  const Model small = WeightedChain();
  Model big = SmallChain("big", 3, 64);
  Rng rng(5);
  for (const OpId id : big.OpIds()) {
    Operation& op = big.mutable_op(id);
    if (OpKindHasWeights(op.kind)) {
      op.InitializeWeights(&rng);
    }
  }
  EXPECT_GT(SerializeModel(big).size(), SerializeModel(small).size());
}

TEST(SerializationTest, DiskRoundTrip) {
  const Model original = WeightedChain();
  const std::string path = testing::TempDir() + "/optimus_model.bin";
  WriteModelFile(SerializeModel(original), path);
  const Model restored = DeserializeModel(ReadModelFile(path));
  EXPECT_TRUE(original.Identical(restored));
  std::remove(path.c_str());
}

TEST(SerializationTest, ReadMissingFileThrows) {
  EXPECT_THROW(ReadModelFile("/nonexistent/path/model.bin"), std::runtime_error);
}

TEST(SerializationTest, DescribeModelMentionsOps) {
  const std::string description = DescribeModel(SmallChain("descr", 3, 8));
  EXPECT_NE(description.find("descr"), std::string::npos);
  EXPECT_NE(description.find("Conv2D"), std::string::npos);
  EXPECT_NE(description.find("Input"), std::string::npos);
}

}  // namespace
}  // namespace optimus
