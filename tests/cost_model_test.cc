#include "src/runtime/cost_model.h"

#include <gtest/gtest.h>

#include "src/zoo/bert.h"
#include "src/zoo/chain_builder.h"
#include "src/zoo/resnet.h"
#include "src/zoo/vgg.h"

namespace optimus {
namespace {

class CostModelTest : public testing::Test {
 protected:
  AnalyticCostModel costs_;
};

TEST_F(CostModelTest, StructureDominatesModelLoad) {
  // Insight 2 (§3.2): structure loading dominates (~90%), weights ~10%,
  // deserialization negligible.
  for (const Model& model : {BuildVgg(16), BuildResNet(50), BuildBert(BertBaseConfig())}) {
    const LoadBreakdown breakdown = costs_.ModelLoadBreakdown(model);
    EXPECT_GT(breakdown.structure / breakdown.Total(), 0.60) << model.name();
    EXPECT_LT(breakdown.weights / breakdown.Total(), 0.35) << model.name();
    EXPECT_LT(breakdown.deserialize / breakdown.Total(), 0.05) << model.name();
  }
}

TEST_F(CostModelTest, ConvScalesWithKernelAndChannels) {
  // Fig. 4 / Fig. 5c: a 3x3x512 CONV loads ~1.79x slower than 3x3x64.
  const double small = costs_.OpStructureCost(OpKind::kConv2D, ConvAttrs(3, 64, 64));
  const double large = costs_.OpStructureCost(OpKind::kConv2D, ConvAttrs(3, 512, 512));
  EXPECT_NEAR(large / small, 1.79, 0.25);
  // Larger kernels cost more at fixed channels.
  EXPECT_GT(costs_.OpStructureCost(OpKind::kConv2D, ConvAttrs(5, 64, 64)),
            costs_.OpStructureCost(OpKind::kConv2D, ConvAttrs(3, 64, 64)));
}

TEST_F(CostModelTest, ConvLoadsSlowerThanActivation) {
  // Fig. 4: CONV takes up to ~10x an activation's load time.
  const double conv = costs_.OpStructureCost(OpKind::kConv2D, ConvAttrs(3, 512, 512));
  const double activation = costs_.OpStructureCost(OpKind::kActivation, ReluAttrs());
  EXPECT_GT(conv / activation, 1.5);
  EXPECT_LT(conv / activation, 15.0);
}

TEST_F(CostModelTest, WeightedOpsLoadSlowerThanWeightFree) {
  const OpAttributes conv = ConvAttrs(3, 256, 256);
  EXPECT_GT(costs_.OpStructureCost(OpKind::kConv2D, conv),
            costs_.OpStructureCost(OpKind::kMaxPool, PoolAttrs(3, 2)));
  EXPECT_GT(costs_.OpStructureCost(OpKind::kDense, DenseAttrs(4096, 4096)),
            costs_.OpStructureCost(OpKind::kAdd, {}));
}

TEST_F(CostModelTest, ReplaceMuchCheaperThanAdd) {
  // Fig. 8: Replace (weight overwrite) is far cheaper than Add (full create).
  const OpAttributes conv = ConvAttrs(3, 256, 512);
  EXPECT_LT(costs_.ReplaceCost(OpKind::kConv2D, conv),
            costs_.AddCost(OpKind::kConv2D, conv) * 0.6);
}

TEST_F(CostModelTest, ReshapeCheaperThanScratchLoad) {
  // Fig. 5c: in-container scaling is ~1/3 of loading the op from scratch.
  const OpAttributes from = ConvAttrs(3, 256, 256);
  const OpAttributes to = ConvAttrs(5, 256, 256);
  const double reshape = costs_.ReshapeCost(OpKind::kConv2D, from, to);
  const double scratch = costs_.AddCost(OpKind::kConv2D, to);
  EXPECT_LT(reshape, scratch * 0.6);
}

TEST_F(CostModelTest, ReplaceScalesWithBytes) {
  EXPECT_GT(costs_.ReplaceCost(OpKind::kDense, DenseAttrs(4096, 4096)),
            costs_.ReplaceCost(OpKind::kDense, DenseAttrs(64, 64)));
}

TEST_F(CostModelTest, ReduceConstantAndEdgeNegligible) {
  EXPECT_GT(costs_.ReduceCost(), 0.0);
  EXPECT_LT(costs_.EdgeCost(), costs_.ReduceCost());
  EXPECT_LT(costs_.EdgeCost(), 1e-3);
}

TEST_F(CostModelTest, WeightAssignLinearInBytesAndTensors) {
  const double one_mb = costs_.WeightAssignCost(1 << 20, 1);
  const double four_mb = costs_.WeightAssignCost(4 << 20, 1);
  EXPECT_GT(four_mb, one_mb);
  // Per-tensor dispatch overhead.
  EXPECT_GT(costs_.WeightAssignCost(1 << 20, 8), costs_.WeightAssignCost(1 << 20, 2));
  EXPECT_EQ(costs_.WeightAssignCost(0, 0), 0.0);
}

TEST_F(CostModelTest, LoadGrowsWithDepthWithinFamily) {
  // Fig. 2: deeper family members load slower.
  EXPECT_LT(costs_.ScratchLoadCost(BuildVgg(11)), costs_.ScratchLoadCost(BuildVgg(19)));
  EXPECT_LT(costs_.ScratchLoadCost(BuildResNet(50)), costs_.ScratchLoadCost(BuildResNet(101)));
  EXPECT_LT(costs_.ScratchLoadCost(BuildResNet(101)), costs_.ScratchLoadCost(BuildResNet(152)));
}

TEST_F(CostModelTest, ParamsDoNotDetermineLoadLatency) {
  // Fig. 2's second observation: ResNet has ~5x fewer parameters than VGG yet
  // does not load ~5x faster (op count, not size, dominates).
  const Model vgg = BuildVgg(16);
  const Model resnet = BuildResNet(50);
  ASSERT_GT(vgg.ParamCount(), resnet.ParamCount() * 4);
  const double vgg_load = costs_.ScratchLoadCost(vgg);
  const double resnet_load = costs_.ScratchLoadCost(resnet);
  EXPECT_GT(resnet_load, vgg_load * 0.5);  // Same ballpark despite 5x params.
}

TEST_F(CostModelTest, SystemProfileCpuVsGpu) {
  const SystemProfile cpu = SystemProfile::Cpu();
  const SystemProfile gpu = SystemProfile::Gpu();
  const Model model = BuildResNet(50);
  // GPU initialization is more expensive (§8.5)...
  EXPECT_GT(gpu.InitCost(), cpu.InitCost());
  EXPECT_GT(gpu.DeviceTransferCost(model), cpu.DeviceTransferCost(model));
  // ...but compute is faster.
  EXPECT_LT(gpu.InferenceCost(model), cpu.InferenceCost(model));
}

TEST_F(CostModelTest, InferenceCostGrowsWithModelSize) {
  const SystemProfile profile = SystemProfile::Cpu();
  EXPECT_LT(profile.InferenceCost(BuildResNet(50)), profile.InferenceCost(BuildVgg(16)));
}

}  // namespace
}  // namespace optimus
