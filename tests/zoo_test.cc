#include "src/zoo/registry.h"

#include <gtest/gtest.h>

#include "src/zoo/bert.h"
#include "src/zoo/densenet.h"
#include "src/zoo/inception.h"
#include "src/zoo/mobilenet.h"
#include "src/zoo/nasbench.h"
#include "src/zoo/resnet.h"
#include "src/zoo/vgg.h"

namespace optimus {
namespace {

double MillionParams(const Model& model) {
  return static_cast<double>(model.ParamCount()) / 1e6;
}

// Parameter counts from the paper's Figure 2c, within 3%.
TEST(ZooVggTest, CanonicalParamCounts) {
  EXPECT_NEAR(MillionParams(BuildVgg(11)), 132.9, 132.9 * 0.03);
  EXPECT_NEAR(MillionParams(BuildVgg(16)), 138.4, 138.4 * 0.03);
  EXPECT_NEAR(MillionParams(BuildVgg(19)), 143.7, 143.7 * 0.03);
}

TEST(ZooResNetTest, CanonicalParamCounts) {
  EXPECT_NEAR(MillionParams(BuildResNet(50)), 25.6, 25.6 * 0.03);
  EXPECT_NEAR(MillionParams(BuildResNet(101)), 44.7, 44.7 * 0.03);
  EXPECT_NEAR(MillionParams(BuildResNet(152)), 60.4, 60.4 * 0.03);
}

TEST(ZooMobileNetTest, CanonicalParamCount) {
  // MobileNetV1 1.0x has ~4.2M parameters.
  EXPECT_NEAR(MillionParams(BuildMobileNet()), 4.2, 4.2 * 0.08);
}

TEST(ZooDenseNetTest, CanonicalParamCount) {
  // DenseNet-121 has ~8.0M parameters.
  EXPECT_NEAR(MillionParams(BuildDenseNet(121)), 8.0, 8.0 * 0.10);
}

TEST(ZooTest, MoreCanonicalParamCounts) {
  EXPECT_NEAR(MillionParams(BuildResNet(18)), 11.7, 11.7 * 0.05);
  // GoogLeNet-class Inception: ~6.6-7M parameters.
  EXPECT_NEAR(MillionParams(BuildInception()), 6.8, 6.8 * 0.10);
  // Xception: ~22.9M parameters.
  EXPECT_NEAR(MillionParams(BuildXception()), 22.9, 22.9 * 0.05);
  // BERT sizes: Tiny ~4.4M, Mini ~11.2M, Base ~110M.
  EXPECT_NEAR(MillionParams(BuildBert(BertTinyConfig())), 4.4, 4.4 * 0.05);
  EXPECT_NEAR(MillionParams(BuildBert(BertMiniConfig())), 11.2, 11.2 * 0.05);
}

TEST(ZooTest, AllCanonicalModelsValidate) {
  for (const int depth : {11, 13, 16, 19}) {
    BuildVgg(depth).Validate();
  }
  for (const int depth : {18, 34, 50, 101, 152}) {
    BuildResNet(depth).Validate();
  }
  for (const int depth : {121, 169, 201}) {
    BuildDenseNet(depth).Validate();
  }
  BuildMobileNet().Validate();
  BuildInception().Validate();
  BuildXception().Validate();
}

TEST(ZooTest, UnsupportedDepthsThrow) {
  EXPECT_THROW(BuildVgg(12), std::invalid_argument);
  EXPECT_THROW(BuildResNet(42), std::invalid_argument);
  EXPECT_THROW(BuildDenseNet(100), std::invalid_argument);
}

TEST(ZooTest, DepthIncreasesOpCountWithinFamily) {
  EXPECT_LT(BuildVgg(11).NumOps(), BuildVgg(16).NumOps());
  EXPECT_LT(BuildVgg(16).NumOps(), BuildVgg(19).NumOps());
  EXPECT_LT(BuildResNet(50).NumOps(), BuildResNet(101).NumOps());
  EXPECT_LT(BuildResNet(101).NumOps(), BuildResNet(152).NumOps());
}

TEST(ZooTest, ResNet101IsOperationRich) {
  // The paper notes ResNet101 has ~347 operations, most without weights.
  const Model model = BuildResNet(101);
  EXPECT_GT(model.NumOps(), 300u);
  EXPECT_LT(model.NumWeightedOps(), model.NumOps() / 2 + 60);
}

TEST(ZooTest, WidthMultiplierShrinksParams) {
  VggOptions narrow;
  narrow.width_multiplier = 0.5;
  EXPECT_LT(BuildVgg(16, narrow).ParamCount(), BuildVgg(16).ParamCount() / 3);
  // Structure (op sequence) is preserved.
  EXPECT_EQ(BuildVgg(16, narrow).NumOps(), BuildVgg(16).NumOps());
}

TEST(ZooNasBenchTest, DecodeRoundTrip) {
  for (const int64_t index : {0L, 1L, 77L, 5000L, kNasBenchSpaceSize - 1}) {
    const NasBenchCellSpec spec = DecodeNasBenchSpec(index);
    int64_t reencoded = 0;
    for (int e = kNasBenchCellEdges - 1; e >= 0; --e) {
      reencoded = reencoded * 5 + static_cast<int64_t>(spec[static_cast<size_t>(e)]);
    }
    EXPECT_EQ(reencoded, index);
  }
}

TEST(ZooNasBenchTest, OutOfRangeThrows) {
  EXPECT_THROW(DecodeNasBenchSpec(-1), std::invalid_argument);
  EXPECT_THROW(DecodeNasBenchSpec(kNasBenchSpaceSize), std::invalid_argument);
}

TEST(ZooNasBenchTest, ModelsValidateAcrossSpace) {
  for (const int64_t index : {0L, 1L, 624L, 3125L, 9999L, kNasBenchSpaceSize - 1}) {
    const Model model = BuildNasBenchModel(index);
    model.Validate();
    EXPECT_GT(model.NumOps(), 10u);
  }
}

TEST(ZooNasBenchTest, ModelsAreLightweight) {
  // NAS-Bench-201 models are small (< 2M parameters at width 16).
  const Model model = BuildNasBenchModel(12345);
  EXPECT_LT(model.ParamCount(), 2'000'000);
}

TEST(ZooNasBenchTest, DifferentIndicesDiffer) {
  // 100 and 102 differ in edge 0's choice (none vs conv1x1).
  const Model a = BuildNasBenchModel(100);
  const Model b = BuildNasBenchModel(102);
  EXPECT_FALSE(a.StructurallyEqual(b));
}

TEST(ZooNasBenchTest, NoneAndSkipDegenerateCellsCoincide) {
  // A 'none' edge into an otherwise unreachable node falls back to a skip
  // from the cell input, so indices 100 (none) and 101 (skip) coincide.
  EXPECT_TRUE(BuildNasBenchModel(100).StructurallyEqual(BuildNasBenchModel(101)));
}

TEST(ZooBertTest, SizesOrdered) {
  const Model tiny = BuildBert(BertTinyConfig());
  const Model mini = BuildBert(BertMiniConfig());
  const Model base = BuildBert(BertBaseConfig());
  tiny.Validate();
  mini.Validate();
  base.Validate();
  EXPECT_LT(tiny.ParamCount(), mini.ParamCount());
  EXPECT_LT(mini.ParamCount(), base.ParamCount());
  EXPECT_LT(tiny.NumOps(), base.NumOps());
}

TEST(ZooBertTest, BaseParamCountApproximatelyCanonical) {
  // BERT-Base has ~110M parameters.
  EXPECT_NEAR(MillionParams(BuildBert(BertBaseConfig())), 110.0, 110.0 * 0.05);
}

TEST(ZooBertTest, CasedAndUncasedDifferOnlyInEmbedding) {
  const Model cased = BuildBert(BertBaseCasedConfig());
  const Model uncased = BuildBert(BertBaseConfig());
  EXPECT_EQ(cased.NumOps(), uncased.NumOps());
  EXPECT_NE(cased.ParamCount(), uncased.ParamCount());
}

TEST(ZooBertTest, TaskHeadsAddOps) {
  const Model plain = BuildBert(BertBaseConfig());
  BertConfig qa = BertBaseConfig();
  qa.task = BertTask::kQuestionAnswering;
  qa.name = "bert_qa";
  const Model qa_model = BuildBert(qa);
  BertConfig sc = BertBaseConfig();
  sc.task = BertTask::kSequenceClassification;
  sc.name = "bert_sc";
  const Model sc_model = BuildBert(sc);
  EXPECT_GT(qa_model.NumOps(), plain.NumOps());
  EXPECT_GT(sc_model.NumOps(), plain.NumOps());
  // QA has one more dense layer than SC (the paper's Example 2).
  EXPECT_GT(qa_model.NumOps(), sc_model.NumOps());
}

TEST(ZooBertTest, AttentionOpsPresent) {
  const Model model = BuildBert(BertTinyConfig());
  int queries = 0;
  int logits = 0;
  for (const auto& [id, op] : model.ops()) {
    queries += op.kind == OpKind::kAttentionQuery ? 1 : 0;
    logits += op.kind == OpKind::kLogit ? 1 : 0;
  }
  EXPECT_EQ(queries, 2);  // One per layer.
  EXPECT_EQ(logits, 2);
}

TEST(RegistryTest, DuplicateNameRejected) {
  ModelRegistry registry;
  registry.Register("m", [] { return Model("m", "test"); });
  EXPECT_THROW(registry.Register("m", [] { return Model("m", "test"); }),
               std::invalid_argument);
}

TEST(RegistryTest, UnknownNameThrows) {
  const ModelRegistry registry;
  EXPECT_THROW(registry.Build("nope"), std::out_of_range);
}

TEST(RegistryTest, RepresentativeModelsMatchPaperCount) {
  const ModelRegistry registry = RepresentativeModels();
  const auto names = RepresentativeModelNames();
  EXPECT_EQ(names.size(), 21u);  // Figure 11: 21 representative models.
  for (const std::string& name : names) {
    EXPECT_TRUE(registry.Has(name)) << name;
  }
}

TEST(RegistryTest, BertZooHasTenVariations) {
  EXPECT_EQ(BertZoo().Size(), 10u);  // §8.1: 10 BERT variations.
}

TEST(RegistryTest, ImgclsmobZooDefaultSize) {
  const ModelRegistry zoo = ImgclsmobZoo();
  EXPECT_EQ(zoo.Size(), 389u);  // §8.1: 389 models.
}

TEST(RegistryTest, ImgclsmobModelsBuildAndValidate) {
  const ModelRegistry zoo = ImgclsmobZoo(40);
  for (const std::string& name : zoo.Names()) {
    const Model model = zoo.Build(name);
    model.Validate();
    EXPECT_EQ(model.name(), name);
  }
}

TEST(RegistryTest, NasBenchZooDeterministic) {
  const ModelRegistry a = NasBenchZoo(25, 3);
  const ModelRegistry b = NasBenchZoo(25, 3);
  EXPECT_EQ(a.Names(), b.Names());
  EXPECT_EQ(a.Size(), 25u);
}

}  // namespace
}  // namespace optimus
