#include "src/balancer/kmedoids.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"

namespace optimus {
namespace {

std::vector<std::vector<double>> DistanceFromPoints(const std::vector<double>& points) {
  const size_t n = points.size();
  std::vector<std::vector<double>> distance(n, std::vector<double>(n, 0.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      distance[i][j] = std::abs(points[i] - points[j]);
    }
  }
  return distance;
}

TEST(KMedoidsTest, SingleClusterPicksCentralPoint) {
  const KMedoidsResult result = KMedoids(DistanceFromPoints({0.0, 1.0, 2.0, 3.0, 10.0}), 1);
  ASSERT_EQ(result.medoids.size(), 1u);
  EXPECT_EQ(result.medoids[0], 2);  // Point 2.0 minimizes total distance.
}

TEST(KMedoidsTest, SeparatesTwoObviousClusters) {
  const std::vector<double> points = {0.0, 0.1, 0.2, 10.0, 10.1, 10.2};
  const KMedoidsResult result = KMedoids(DistanceFromPoints(points), 2);
  // All low points share a cluster, all high points the other.
  EXPECT_EQ(result.assignment[0], result.assignment[1]);
  EXPECT_EQ(result.assignment[1], result.assignment[2]);
  EXPECT_EQ(result.assignment[3], result.assignment[4]);
  EXPECT_EQ(result.assignment[4], result.assignment[5]);
  EXPECT_NE(result.assignment[0], result.assignment[3]);
}

TEST(KMedoidsTest, KEqualsNAssignsSelf) {
  const KMedoidsResult result = KMedoids(DistanceFromPoints({0.0, 5.0, 9.0}), 3);
  EXPECT_EQ(result.total_distance, 0.0);
}

TEST(KMedoidsTest, InvalidKThrows) {
  const auto distance = DistanceFromPoints({0.0, 1.0});
  EXPECT_THROW(KMedoids(distance, 0), std::invalid_argument);
  EXPECT_THROW(KMedoids(distance, 3), std::invalid_argument);
}

TEST(KMedoidsTest, AssignmentWithinRangeAndMedoidsSelfAssigned) {
  Rng rng(5);
  std::vector<double> points;
  for (int i = 0; i < 30; ++i) {
    points.push_back(rng.Uniform(0.0, 100.0));
  }
  const KMedoidsResult result = KMedoids(DistanceFromPoints(points), 4);
  ASSERT_EQ(result.assignment.size(), points.size());
  for (const int cluster : result.assignment) {
    EXPECT_GE(cluster, 0);
    EXPECT_LT(cluster, 4);
  }
  for (size_t c = 0; c < result.medoids.size(); ++c) {
    EXPECT_EQ(result.assignment[static_cast<size_t>(result.medoids[c])], static_cast<int>(c));
  }
}

TEST(KMedoidsTest, SwapImprovesOverArbitraryStart) {
  // Total distance of the PAM result is no worse than assigning everything to
  // k arbitrary medoids.
  Rng rng(11);
  std::vector<double> points;
  for (int i = 0; i < 24; ++i) {
    points.push_back(rng.Uniform(0.0, 50.0));
  }
  const auto distance = DistanceFromPoints(points);
  const KMedoidsResult result = KMedoids(distance, 3);
  double arbitrary = 0.0;
  for (size_t i = 0; i < points.size(); ++i) {
    double best = 1e18;
    for (const int medoid : {0, 1, 2}) {
      best = std::min(best, distance[i][static_cast<size_t>(medoid)]);
    }
    arbitrary += best;
  }
  EXPECT_LE(result.total_distance, arbitrary + 1e-9);
}

TEST(KMedoidsTest, Deterministic) {
  Rng rng(13);
  std::vector<double> points;
  for (int i = 0; i < 20; ++i) {
    points.push_back(rng.Uniform(0.0, 10.0));
  }
  const auto distance = DistanceFromPoints(points);
  const KMedoidsResult a = KMedoids(distance, 3, /*seed=*/1);
  const KMedoidsResult b = KMedoids(distance, 3, /*seed=*/1);
  EXPECT_EQ(a.medoids, b.medoids);
  EXPECT_EQ(a.assignment, b.assignment);
}

}  // namespace
}  // namespace optimus
