#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace optimus {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double value = rng.NextDouble();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(RngTest, UniformRespectsBounds) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.Uniform(-2.5, 4.5);
    EXPECT_GE(value, -2.5);
    EXPECT_LT(value, 4.5);
  }
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng rng(5);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t value = rng.UniformInt(0, 9);
    EXPECT_GE(value, 0);
    EXPECT_LE(value, 9);
    saw_lo = saw_lo || value == 0;
    saw_hi = saw_hi || value == 9;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(11);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double value = rng.Normal(3.0, 2.0);
    sum += value;
    sum_sq += value * value;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.15);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    sum += rng.Exponential(0.5);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.1);
}

TEST(RngTest, PoissonMeanSmall) {
  Rng rng(17);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(3.5));
  }
  EXPECT_NEAR(sum / n, 3.5, 0.1);
}

TEST(RngTest, PoissonMeanLargeUsesNormalApprox) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(rng.Poisson(200.0));
  }
  EXPECT_NEAR(sum / n, 200.0, 2.0);
}

TEST(RngTest, PoissonZeroMeanIsZero) {
  Rng rng(23);
  EXPECT_EQ(rng.Poisson(0.0), 0);
  EXPECT_EQ(rng.Poisson(-1.0), 0);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(29);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) {
      ++hits;
    }
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexProportional) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 3.0, 6.0};
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.02);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.02);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.6, 0.02);
}

TEST(RngTest, ForkedStreamsAreIndependentAndDeterministic) {
  Rng parent_a(99);
  Rng parent_b(99);
  Rng child_a = parent_a.Fork();
  Rng child_b = parent_b.Fork();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(child_a.NextU64(), child_b.NextU64());
  }
  // Parent and child streams differ.
  Rng parent_c(99);
  Rng child_c = parent_c.Fork();
  int equal = 0;
  for (int i = 0; i < 32; ++i) {
    if (parent_c.NextU64() == child_c.NextU64()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 2);
}

}  // namespace
}  // namespace optimus
