// Tests for the §6 fine-grained resource allocation extension: memory-aware
// container pools and memory-constrained simulation.

#include <gtest/gtest.h>

#include "src/container/container.h"
#include "src/sim/simulator.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

constexpr int64_t kGiB = 1LL << 30;

TEST(PoolMemoryTest, CanLaunchRespectsMemoryLimit) {
  ContainerPool pool(/*capacity=*/8, 60.0, 600.0, /*memory_limit=*/4 * kGiB);
  EXPECT_TRUE(pool.CanLaunch(3 * kGiB));
  pool.Launch("a", 0.0, 0.0, 3 * kGiB);
  EXPECT_EQ(pool.UsedMemory(), 3 * kGiB);
  EXPECT_FALSE(pool.CanLaunch(2 * kGiB));
  EXPECT_TRUE(pool.CanLaunch(1 * kGiB));
  EXPECT_THROW(pool.Launch("b", 0.0, 0.0, 2 * kGiB), std::runtime_error);
}

TEST(PoolMemoryTest, ZeroLimitDisablesAccounting) {
  ContainerPool pool(/*capacity=*/2, 60.0, 600.0);
  EXPECT_TRUE(pool.CanLaunch(100 * kGiB));
  pool.Launch("a", 0.0, 0.0, 100 * kGiB);
  EXPECT_TRUE(pool.CanLaunch(100 * kGiB));
}

TEST(PoolMemoryTest, RemoveReleasesMemory) {
  ContainerPool pool(/*capacity=*/4, 60.0, 600.0, /*memory_limit=*/4 * kGiB);
  const ContainerId id = pool.Launch("a", 0.0, 0.0, 4 * kGiB)->id;
  EXPECT_FALSE(pool.CanLaunch(1));
  pool.Remove(id);
  EXPECT_EQ(pool.UsedMemory(), 0);
  EXPECT_TRUE(pool.CanLaunch(4 * kGiB));
}

TEST(PoolMemoryTest, DonorsFilteredByMemory) {
  ContainerPool pool(/*capacity=*/4, 60.0, 600.0, /*memory_limit=*/16 * kGiB);
  Container* small = pool.Launch("small_fn", 0.0, 0.0, 1 * kGiB);
  small->state = ContainerState::kIdle;
  small->last_active = 0.0;
  Container* big = pool.Launch("big_fn", 0.0, 0.0, 8 * kGiB);
  big->state = ContainerState::kIdle;
  big->last_active = 0.0;

  // Unconstrained: both qualify after the idle threshold.
  EXPECT_EQ(pool.TransformCandidates("other", 100.0).size(), 2u);
  // Needing 2 GiB: only the big container can host the model.
  const auto candidates = pool.TransformCandidates("other", 100.0, 2 * kGiB);
  ASSERT_EQ(candidates.size(), 1u);
  EXPECT_EQ(candidates[0]->function, "big_fn");
}

TEST(FootprintTest, GrowsWithModelWeights) {
  const int64_t small = ContainerFootprintBytes(TinyMobileNet());
  const int64_t big = ContainerFootprintBytes(TinyVgg(19));
  EXPECT_GT(big, small);
  EXPECT_GT(small, 256LL << 20);  // At least the runtime baseline.
}

class MemorySimTest : public testing::Test {
 protected:
  MemorySimTest() {
    models_.push_back(TinyVgg(11));
    models_.push_back(TinyVgg(16));
    models_.push_back(TinyResNet(18));
    models_.push_back(TinyMobileNet());
    for (const Model& model : models_) {
      names_.push_back(model.name());
    }
    config_.system = SystemType::kOptimus;
    config_.num_nodes = 1;
    config_.containers_per_node = 8;
    config_.placement.kind = BalancerKind::kHash;
    config_.node_memory_bytes = 2 * kGiB;
    config_.uniform_container_bytes = 1 * kGiB;
  }

  Trace RoundRobinTrace(int rounds, double gap) {
    Trace trace;
    double t = 0.0;
    for (int round = 0; round < rounds; ++round) {
      for (const std::string& name : names_) {
        trace.push_back({t, name});
        t += gap;
      }
    }
    return trace;
  }

  std::vector<Model> models_;
  std::vector<std::string> names_;
  SimConfig config_;
  AnalyticCostModel costs_;
};

TEST_F(MemorySimTest, MemoryLimitCapsConcurrentContainers) {
  // 8 slots but only 2 GiB / 1 GiB-per-container: at most 2 containers, so a
  // 4-function round-robin can never keep everyone warm.
  const SimResult result = RunSimulation(models_, RoundRobinTrace(5, 90.0), config_, costs_);
  EXPECT_LT(result.FractionOf(StartType::kWarm), 0.55);
  // Without the memory cap the same workload stays mostly warm.
  SimConfig unlimited = config_;
  unlimited.node_memory_bytes = 0;
  const SimResult free_result =
      RunSimulation(models_, RoundRobinTrace(5, 90.0), unlimited, costs_);
  EXPECT_GT(free_result.FractionOf(StartType::kWarm),
            result.FractionOf(StartType::kWarm));
}

TEST_F(MemorySimTest, FineGrainedContainersFitMore) {
  // Tiny models have footprints well under 1 GiB, so fine-grained sizing fits
  // more containers into the same 2 GiB node and serves more warm starts.
  SimConfig fine = config_;
  fine.fine_grained_containers = true;
  const Trace trace = RoundRobinTrace(6, 90.0);
  const SimResult uniform_result = RunSimulation(models_, trace, config_, costs_);
  const SimResult fine_result = RunSimulation(models_, trace, fine, costs_);
  EXPECT_GT(fine_result.FractionOf(StartType::kWarm),
            uniform_result.FractionOf(StartType::kWarm));
  EXPECT_LT(fine_result.AvgServiceTime(), uniform_result.AvgServiceTime());
}

TEST_F(MemorySimTest, AllRequestsStillServedUnderMemoryPressure) {
  for (const bool fine_grained : {false, true}) {
    SimConfig config = config_;
    config.fine_grained_containers = fine_grained;
    const Trace trace = RoundRobinTrace(4, 45.0);
    const SimResult result = RunSimulation(models_, trace, config, costs_);
    EXPECT_EQ(result.records.size(), trace.size());
    EXPECT_EQ(result.CountOf(StartType::kWarm) + result.CountOf(StartType::kTransform) +
                  result.CountOf(StartType::kCold),
              trace.size());
  }
}

TEST_F(MemorySimTest, PercentilesOrdered) {
  const SimResult result = RunSimulation(models_, RoundRobinTrace(5, 60.0), config_, costs_);
  const double p50 = result.ServiceTimePercentile(0.5);
  const double p95 = result.ServiceTimePercentile(0.95);
  const double p99 = result.ServiceTimePercentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  EXPECT_GT(p50, 0.0);
}

}  // namespace
}  // namespace optimus
