#include "src/runtime/profiler.h"

#include <gtest/gtest.h>

#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/runtime/loader.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

class ProfilerTest : public testing::Test {
 protected:
  // Profiling runs real timing loops; do it once for the suite.
  static void SetUpTestSuite() { profile_ = new CostProfile(ProfileMachine(/*repetitions=*/3)); }
  static void TearDownTestSuite() {
    delete profile_;
    profile_ = nullptr;
  }

  static CostProfile* profile_;
};

CostProfile* ProfilerTest::profile_ = nullptr;

TEST_F(ProfilerTest, AllCostsNonNegative) {
  for (int i = 0; i < kNumOpKinds; ++i) {
    EXPECT_GE(profile_->structure[static_cast<size_t>(i)].base, 0.0);
    EXPECT_GE(profile_->structure[static_cast<size_t>(i)].per_element, 0.0);
  }
  EXPECT_GT(profile_->weight_assign_per_byte, 0.0);
  EXPECT_GT(profile_->deserialize_per_byte, 0.0);
  EXPECT_GE(profile_->reduce, 0.0);
  EXPECT_GE(profile_->edge, 0.0);
}

TEST_F(ProfilerTest, WeightedOpsCostMoreThanWeightFree) {
  MeasuredCostModel model(*profile_);
  const double conv = model.OpStructureCost(OpKind::kConv2D, ConvAttrs(3, 256, 256));
  const double activation = model.OpStructureCost(OpKind::kActivation, ReluAttrs());
  EXPECT_GT(conv, activation);
}

TEST_F(ProfilerTest, StructureCostMonotoneInSize) {
  MeasuredCostModel model(*profile_);
  EXPECT_LE(model.OpStructureCost(OpKind::kConv2D, ConvAttrs(3, 32, 32)),
            model.OpStructureCost(OpKind::kConv2D, ConvAttrs(3, 512, 512)));
  EXPECT_LE(model.WeightAssignCost(1 << 10, 1), model.WeightAssignCost(1 << 24, 1));
}

TEST_F(ProfilerTest, ToStringListsEveryKind) {
  const std::string text = profile_->ToString();
  for (int i = 0; i < kNumOpKinds; ++i) {
    EXPECT_NE(text.find(OpKindName(static_cast<OpKind>(i))), std::string::npos);
  }
}

TEST_F(ProfilerTest, MeasuredModelDrivesPlannerAndExecutor) {
  // The measured cost model is a drop-in replacement for the analytic one.
  MeasuredCostModel costs(*profile_);
  Loader loader(&costs);
  ModelInstance source = loader.Instantiate(TinyVgg(11), 1);
  const ModelInstance dest = loader.Instantiate(TinyVgg(16), 2);
  const TransformPlan plan = PlanTransform(source.model, dest.model, costs, PlannerKind::kGroup);
  EXPECT_GT(plan.total_cost, 0.0);
  ExecutePlan(&source, dest.model, plan);
  EXPECT_TRUE(source.model.Identical(dest.model));
}

TEST_F(ProfilerTest, RefreshReplacesProfile) {
  MeasuredCostModel model(*profile_);
  model.Refresh(/*repetitions=*/1);
  // Still sane after an online refresh (§6 extension).
  EXPECT_GT(model.profile().weight_assign_per_byte, 0.0);
  EXPECT_GT(model.WeightAssignCost(1 << 20, 1), 0.0);
}

TEST(LinearCostTest, Eval) {
  const LinearCost cost{0.5, 0.25};
  EXPECT_DOUBLE_EQ(cost.Eval(0), 0.5);
  EXPECT_DOUBLE_EQ(cost.Eval(4), 1.5);
}

}  // namespace
}  // namespace optimus
