#include "src/core/transformer.h"

#include <gtest/gtest.h>

#include "src/runtime/inference.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

class TransformerTest : public testing::Test {
 protected:
  AnalyticCostModel costs_;
  Transformer transformer_{&costs_};
  Loader loader_{&costs_};
};

TEST_F(TransformerTest, DecideFavorsTransformWithinFamily) {
  const TransformDecision decision = transformer_.Decide(TinyVgg(16), TinyVgg(19));
  EXPECT_TRUE(decision.use_transform);
  EXPECT_LT(decision.transform_cost, decision.scratch_cost);
  EXPECT_DOUBLE_EQ(decision.ChosenCost(), decision.transform_cost);
}

TEST_F(TransformerTest, SafeguardNeverWorseThanScratch) {
  // Worst-case guarantee (§4.4): the chosen path never exceeds a scratch load.
  const Model models[] = {TinyVgg(11),     TinyVgg(19),      TinyResNet(18),
                          TinyMobileNet(), TinyBert(2, 64),  TinyBert(4, 128)};
  for (const Model& source : models) {
    for (const Model& dest : models) {
      if (source.name() == dest.name()) {
        continue;
      }
      const TransformDecision decision = transformer_.Decide(source, dest);
      EXPECT_LE(decision.ChosenCost(), decision.scratch_cost)
          << source.name() << " -> " << dest.name();
    }
  }
}

TEST_F(TransformerTest, TransformOrLoadTransformPath) {
  ModelInstance instance = loader_.Instantiate(TinyVgg(16), 1);
  const ModelInstance dest = loader_.Instantiate(TinyVgg(19), 2);
  const TransformOutcome outcome = transformer_.TransformOrLoad(&instance, dest.model);
  EXPECT_TRUE(outcome.decision.use_transform);
  EXPECT_TRUE(instance.model.Identical(dest.model));
  EXPECT_GT(outcome.execution.total_seconds, 0.0);
}

TEST_F(TransformerTest, TransformOrLoadScratchPath) {
  // Force the safeguard: shrinking a large model into a trivial one costs
  // more in Reduce overhead than loading the trivial model from scratch.
  Model trivial("trivial", "test");
  const OpId in = trivial.AddOp(OpKind::kInput);
  const OpId out = trivial.AddOp(OpKind::kOutput);
  trivial.AddEdge(in, out);
  ModelInstance instance = loader_.Instantiate(TinyVgg(19), 1);
  const ModelInstance dest = loader_.Instantiate(trivial, 2);
  const TransformOutcome outcome = transformer_.TransformOrLoad(&instance, dest.model);
  EXPECT_FALSE(outcome.decision.use_transform);
  EXPECT_GT(outcome.decision.transform_cost, outcome.decision.scratch_cost);
  // Either path must end with the destination resident.
  EXPECT_TRUE(instance.model.Identical(dest.model));
}

TEST_F(TransformerTest, CacheHitsOnRepeatedDecisions) {
  const Model source = TinyVgg(16);
  const Model dest = TinyVgg(19);
  transformer_.Decide(source, dest);
  const size_t misses_after_first = transformer_.cache().misses();
  transformer_.Decide(source, dest);
  transformer_.Decide(source, dest);
  EXPECT_EQ(transformer_.cache().misses(), misses_after_first);
  EXPECT_GE(transformer_.cache().hits(), 2u);
}

TEST_F(TransformerTest, CacheWarmPrecomputesBothDirections) {
  PlanCache cache(&costs_);
  const std::vector<Model> repository = {TinyVgg(11), TinyVgg(16), TinyResNet(18)};
  cache.WarmFor(repository[0], repository);
  EXPECT_TRUE(cache.Contains("tiny_vgg11", "tiny_vgg16"));
  EXPECT_TRUE(cache.Contains("tiny_vgg16", "tiny_vgg11"));
  EXPECT_TRUE(cache.Contains("tiny_vgg11", "tiny_resnet18"));
  EXPECT_FALSE(cache.Contains("tiny_vgg16", "tiny_resnet18"));
  EXPECT_EQ(cache.Size(), 4u);
}

TEST_F(TransformerTest, TransformedInstanceServesCorrectly) {
  ModelInstance instance = loader_.Instantiate(TinyResNet(34), 5);
  const ModelInstance dest = loader_.Instantiate(TinyResNet(18), 6);
  transformer_.TransformOrLoad(&instance, dest.model);
  const std::vector<float> input(4, 1.0f);
  EXPECT_EQ(RunInference(instance, input), RunInference(dest, input));
}

}  // namespace
}  // namespace optimus
