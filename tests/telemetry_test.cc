// Tests for the telemetry subsystem (DESIGN.md §12): registry semantics,
// histogram bucket math and percentiles against a sorted reference,
// concurrent hammering (run under TSan in CI), the trace collector's ring,
// deterministic sampling, Chrome trace export, and the end-to-end guarantee
// that a traced transform-triggering Invoke records plan-lookup, per-meta-op,
// and inference spans with predicted-vs-actual costs.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <thread>
#include <vector>

#include "src/core/platform.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/trace.h"
#include "tests/test_util.h"

namespace optimus {
namespace telemetry {
namespace {

// ---- Bucket math ----------------------------------------------------------

TEST(HistogramBucketsTest, SmallValuesAreExact) {
  for (uint64_t nanos = 0; nanos < 4; ++nanos) {
    const size_t index = BucketIndexForNanos(nanos);
    EXPECT_EQ(index, nanos);
    EXPECT_EQ(BucketLowerBoundNanos(index), nanos);
    EXPECT_EQ(BucketUpperBoundNanos(index), nanos);
  }
}

TEST(HistogramBucketsTest, BoundsRoundTripAndCover) {
  // Every value must land in a bucket whose [lower, upper] range contains it,
  // buckets must tile the axis with no gaps, and the relative width must stay
  // within the documented 25%.
  uint64_t expected_next_lower = 4;
  for (size_t index = 4; index < 200; ++index) {
    const uint64_t lower = BucketLowerBoundNanos(index);
    const uint64_t upper = BucketUpperBoundNanos(index);
    EXPECT_EQ(lower, expected_next_lower) << "gap before bucket " << index;
    EXPECT_GE(upper, lower);
    EXPECT_EQ(BucketIndexForNanos(lower), index);
    EXPECT_EQ(BucketIndexForNanos(upper), index);
    const double width = static_cast<double>(upper - lower + 1);
    EXPECT_LE(width / static_cast<double>(lower), 0.25 + 1e-12)
        << "bucket " << index << " too wide";
    expected_next_lower = upper + 1;
  }
}

TEST(HistogramBucketsTest, BoundaryValuesMapConsistently) {
  for (const uint64_t nanos :
       {uint64_t{4}, uint64_t{5}, uint64_t{7}, uint64_t{8}, uint64_t{1023}, uint64_t{1024},
        uint64_t{1025}, uint64_t{1} << 40, (uint64_t{1} << 62) + 12345}) {
    const size_t index = BucketIndexForNanos(nanos);
    EXPECT_LE(BucketLowerBoundNanos(index), nanos);
    EXPECT_GE(BucketUpperBoundNanos(index), nanos);
  }
}

// ---- Histogram percentiles vs. a sorted reference -------------------------

TEST(HistogramTest, PercentilesTrackSortedReference) {
  Histogram histogram;
  std::vector<double> values;
  // Log-uniform-ish deterministic spread from 100ns to ~1s.
  for (int i = 0; i < 2000; ++i) {
    const double seconds = 1e-7 * std::pow(1.008, i);
    values.push_back(seconds);
    histogram.Observe(seconds);
  }
  std::sort(values.begin(), values.end());
  const HistogramSnapshot snapshot = histogram.Snapshot();
  ASSERT_EQ(snapshot.count, values.size());
  for (const double p : {0.5, 0.9, 0.95, 0.99}) {
    const double reference =
        values[static_cast<size_t>(std::ceil(p * static_cast<double>(values.size()))) - 1];
    const double estimate = snapshot.Percentile(p);
    // Bucket resolution bounds the error at 25% relative.
    EXPECT_NEAR(estimate, reference, reference * 0.25) << "p=" << p;
  }
  EXPECT_DOUBLE_EQ(snapshot.Percentile(1.0), snapshot.max_seconds);
  EXPECT_NEAR(snapshot.max_seconds, values.back(), values.back() * 1e-6);
  EXPECT_NEAR(snapshot.Mean(), snapshot.sum_seconds / static_cast<double>(snapshot.count),
              1e-12);
}

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram histogram;
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 0u);
  EXPECT_EQ(snapshot.Percentile(0.99), 0.0);
  EXPECT_EQ(snapshot.Mean(), 0.0);
}

TEST(HistogramTest, NegativeAndNanClampToZeroBucket) {
  Histogram histogram;
  histogram.Observe(-1.0);
  histogram.Observe(std::nan(""));
  const HistogramSnapshot snapshot = histogram.Snapshot();
  EXPECT_EQ(snapshot.count, 2u);
  EXPECT_EQ(snapshot.buckets[0], 2u);
}

// ---- Concurrent hammering (exercised under TSan in CI) --------------------

TEST(TelemetryConcurrencyTest, CountersAndHistogramsSurviveHammering) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("test_events_total");
  Histogram& histogram = registry.GetHistogram("test_seconds");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter, &histogram, t] {
      for (int i = 0; i < kPerThread; ++i) {
        counter.Inc();
        histogram.Observe(1e-6 * static_cast<double>(t + 1));
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(counter.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(histogram.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(TelemetryConcurrencyTest, RegistryLookupsRaceWithRecording) {
  MetricsRegistry registry;
  constexpr int kThreads = 6;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, t] {
      for (int i = 0; i < 2000; ++i) {
        registry.GetCounter("shared_total").Inc();
        registry
            .GetHistogram("latency_seconds", {{"phase", "p" + std::to_string(i % 4)}})
            .Observe(1e-6);
        if (t == 0 && i % 500 == 0) {
          (void)registry.RenderPrometheus();
        }
      }
    });
  }
  for (std::thread& thread : threads) {
    thread.join();
  }
  EXPECT_EQ(registry.GetCounter("shared_total").Value(), kThreads * 2000u);
}

// ---- Registry semantics ---------------------------------------------------

TEST(MetricsRegistryTest, SeriesReferencesAreStableAndShared) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("optimus_x_total", {{"k", "v"}});
  Counter& b = registry.GetCounter("optimus_x_total", {{"k", "v"}});
  EXPECT_EQ(&a, &b);
  Counter& other = registry.GetCounter("optimus_x_total", {{"k", "w"}});
  EXPECT_NE(&a, &other);
}

TEST(MetricsRegistryTest, TypeMismatchThrows) {
  MetricsRegistry registry;
  registry.GetCounter("optimus_thing");
  EXPECT_THROW(registry.GetHistogram("optimus_thing"), std::logic_error);
  EXPECT_THROW(registry.GetGauge("optimus_thing", {{"a", "b"}}), std::logic_error);
}

TEST(MetricsRegistryTest, KillSwitchDropsWritesButKeepsReads) {
  MetricsRegistry registry;
  Counter& counter = registry.GetCounter("optimus_kill_total");
  Histogram& histogram = registry.GetHistogram("optimus_kill_seconds");
  Gauge& gauge = registry.GetGauge("optimus_kill_gauge");
  counter.Inc();
  registry.set_enabled(false);
  counter.Inc();
  histogram.Observe(1.0);
  gauge.Set(5.0);
  EXPECT_EQ(counter.Value(), 1u);
  EXPECT_EQ(histogram.Count(), 0u);
  EXPECT_EQ(gauge.Value(), 0.0);
  registry.set_enabled(true);
  counter.Inc();
  EXPECT_EQ(counter.Value(), 2u);
}

TEST(MetricsRegistryTest, RenderPrometheusFormat) {
  MetricsRegistry registry;
  registry.GetCounter("optimus_events_total", {{"kind", "warm"}}, "Events by kind").Inc(3);
  registry.GetGauge("optimus_level", {}, "A level").Set(1.5);
  Histogram& histogram = registry.GetHistogram("optimus_lat_seconds", {}, "Latency");
  histogram.Observe(0.5);
  histogram.Observe(1.5);
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("# TYPE optimus_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("optimus_events_total{kind=\"warm\"} 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE optimus_level gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE optimus_lat_seconds summary"), std::string::npos);
  EXPECT_NE(text.find("optimus_lat_seconds{quantile=\"0.5\"}"), std::string::npos);
  EXPECT_NE(text.find("optimus_lat_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("optimus_lat_seconds_sum 2"), std::string::npos);
  EXPECT_NE(text.find("# HELP optimus_events_total Events by kind"), std::string::npos);
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  MetricsRegistry registry;
  registry.GetCounter("optimus_esc_total", {{"path", "a\"b\\c\nd"}}).Inc();
  const std::string text = registry.RenderPrometheus();
  EXPECT_NE(text.find("path=\"a\\\"b\\\\c\\nd\""), std::string::npos);
}

// ---- Trace collector ------------------------------------------------------

TEST(TraceCollectorTest, SamplingIsDeterministicForASeed) {
  MetricsRegistry registry_a;
  MetricsRegistry registry_b;
  TraceCollectorOptions options;
  options.sample_period = 8;
  options.seed = 42;
  TraceCollector collector_a(&registry_a, options);
  TraceCollector collector_b(&registry_b, options);
  std::vector<bool> decisions_a;
  std::vector<bool> decisions_b;
  size_t sampled = 0;
  for (int i = 0; i < 512; ++i) {
    auto trace_a = collector_a.MaybeStartTrace("fn");
    auto trace_b = collector_b.MaybeStartTrace("fn");
    decisions_a.push_back(trace_a != nullptr);
    decisions_b.push_back(trace_b != nullptr);
    sampled += trace_a != nullptr ? 1u : 0u;
  }
  EXPECT_EQ(decisions_a, decisions_b);
  // ~1/8 of 512 = 64 expected; allow generous slack for the seeded stream.
  EXPECT_GT(sampled, 20u);
  EXPECT_LT(sampled, 150u);
}

TEST(TraceCollectorTest, PeriodZeroDisablesAndOneTracesAll) {
  MetricsRegistry registry;
  TraceCollectorOptions options;
  options.sample_period = 0;
  TraceCollector collector(&registry, options);
  EXPECT_EQ(collector.MaybeStartTrace("fn"), nullptr);
  collector.set_sample_period(1);
  EXPECT_NE(collector.MaybeStartTrace("fn"), nullptr);
}

TEST(TraceCollectorTest, RingWrapsDroppingOldest) {
  MetricsRegistry registry;
  TraceCollectorOptions options;
  options.capacity = 4;
  TraceCollector collector(&registry, options);
  for (int i = 0; i < 10; ++i) {
    collector.Finish(collector.StartTrace("fn" + std::to_string(i)));
  }
  EXPECT_EQ(collector.TracesStarted(), 10u);
  EXPECT_EQ(collector.TracesCompleted(), 10u);
  EXPECT_EQ(collector.TracesDropped(), 6u);
  const auto drained = collector.Drain();
  ASSERT_EQ(drained.size(), 4u);
  std::set<std::string> roots;
  for (const auto& trace : drained) {
    roots.insert(trace->root());
  }
  // The four newest survive.
  EXPECT_EQ(roots, (std::set<std::string>{"fn6", "fn7", "fn8", "fn9"}));
  EXPECT_TRUE(collector.Drain().empty());
}

TEST(TraceCollectorTest, SpansCloseOnExceptionUnwind) {
  MetricsRegistry registry;
  TraceCollector collector(&registry);
  auto trace = collector.StartTrace("fn");
  try {
    ScopedSpan outer(trace.get(), "outer", "test");
    ScopedSpan inner(trace.get(), "inner", "test");
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(collector.SpansOpened(), 2u);
  EXPECT_EQ(collector.SpansClosed(), 2u);
  ASSERT_EQ(trace->spans().size(), 2u);
  // Inner unwinds first.
  EXPECT_EQ(trace->spans()[0].name, "inner");
  EXPECT_EQ(trace->spans()[1].name, "outer");
  collector.Finish(std::move(trace));
}

TEST(TraceCollectorTest, NullSpanIsInert) {
  ScopedSpan span(nullptr, "noop", "test");
  span.Arg("k", 1.0);  // Must not crash.
}

// ---- Chrome trace export --------------------------------------------------

TEST(ChromeTraceExportTest, EmitsValidEventsRoundTrip) {
  MetricsRegistry registry;
  TraceCollector collector(&registry);
  auto trace = collector.StartTrace("my_fn");
  {
    ScopedSpan span(trace.get(), "invoke", "platform");
    span.Arg("predicted_s", 0.125);
    span.Arg("actual_s", 0.25);
  }
  const uint64_t id = trace->id();
  collector.Finish(std::move(trace));
  const std::string json = ExportChromeTrace(collector.Drain());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"invoke\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"platform\""), std::string::npos);
  EXPECT_NE(json.find("\"predicted_s\":0.125"), std::string::npos);
  EXPECT_NE(json.find("\"actual_s\":0.25"), std::string::npos);
  EXPECT_NE(json.find("\"tid\":" + std::to_string(id)), std::string::npos);
  EXPECT_NE(json.find("my_fn"), std::string::npos);
  // Balanced braces/brackets — a cheap structural sanity check; the CI step
  // additionally parses the gateway's /trace body with a real JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

TEST(ChromeTraceExportTest, EmptyDrainIsValidEmptyDocument) {
  const std::string json = ExportChromeTrace({});
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
}

// ---- End-to-end: traced transform-triggering invoke -----------------------

TEST(PlatformTracingTest, TransformInvokeRecordsAllPhaseSpans) {
  AnalyticCostModel costs;
  PlatformOptions options;
  options.num_nodes = 1;
  options.containers_per_node = 1;  // Node saturates after one cold start.
  OptimusPlatform platform(&costs, options);
  platform.Deploy("vgg11", TinyVgg(11));
  platform.Deploy("vgg16", TinyVgg(16));
  const std::vector<float> input(8, 0.5f);

  // Cold-start vgg11, let it idle past the threshold, then invoke vgg16 on
  // the full node: the vgg11 container is the donor and must transform.
  platform.Invoke("vgg11", input, 0.0);
  auto trace = platform.traces().StartTrace("vgg16");
  const InvokeResult result = platform.Invoke("vgg16", input, 100.0, trace.get());
  ASSERT_EQ(result.start, StartType::kTransform);
  ASSERT_EQ(result.donor_function, "vgg11");

  std::multiset<std::string> names;
  size_t meta_op_spans = 0;
  for (const TraceSpan& span : trace->spans()) {
    names.insert(span.name);
    if (span.category == "meta_op") {
      ++meta_op_spans;
      bool has_predicted = false;
      bool has_actual = false;
      for (const auto& [key, value] : span.args) {
        has_predicted = has_predicted || key == std::string("predicted_s");
        has_actual = has_actual || key == std::string("actual_s");
      }
      EXPECT_TRUE(has_predicted) << span.name << " span missing predicted_s";
      EXPECT_TRUE(has_actual) << span.name << " span missing actual_s";
    }
  }
  EXPECT_GE(names.count("plan_lookup"), 1u);
  EXPECT_EQ(names.count("decide"), 1u);
  EXPECT_EQ(names.count("inference"), 1u);
  EXPECT_EQ(names.count("invoke"), 1u);
  // A VGG-11 -> VGG-16 transform executes Replace/Reshape/Add steps; every
  // executed step must have produced a span.
  EXPECT_GT(meta_op_spans, 0u);

  // The registry saw the same story: one transform start, drift recorded.
  EXPECT_EQ(platform.Transforms(), 1u);
  EXPECT_GE(platform.metrics()
                .GetHistogram("optimus_cost_drift_ratio", {{"phase", "transform"}})
                .Count(),
            1u);
  platform.traces().Finish(std::move(trace));
  EXPECT_EQ(platform.traces().SpansOpened(), platform.traces().SpansClosed());
}

TEST(PlatformTracingTest, ColdInvokeRecordsScratchLoadSpan) {
  AnalyticCostModel costs;
  PlatformOptions options;
  OptimusPlatform platform(&costs, options);
  platform.Deploy("mobilenet", TinyMobileNet());
  auto trace = platform.traces().StartTrace("mobilenet");
  const InvokeResult result =
      platform.Invoke("mobilenet", std::vector<float>(8, 0.5f), 0.0, trace.get());
  ASSERT_EQ(result.start, StartType::kCold);
  bool saw_scratch_load = false;
  for (const TraceSpan& span : trace->spans()) {
    saw_scratch_load = saw_scratch_load || span.name == std::string("scratch_load");
  }
  EXPECT_TRUE(saw_scratch_load);
  EXPECT_GE(platform.metrics()
                .GetHistogram("optimus_phase_seconds", {{"phase", "scratch_load"}})
                .Count(),
            1u);
}

}  // namespace
}  // namespace telemetry
}  // namespace optimus
