// Streaming discrete-event core (DESIGN.md §18): record-mode vs streaming
// equivalence, warming/churn counter parity across modes, histogram accuracy,
// and bit-for-bit determinism of streaming summaries at scale.

#include <algorithm>
#include <array>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/sim_stats.h"
#include "src/sim/simulator.h"
#include "src/workload/function_table.h"
#include "src/workload/poisson.h"
#include "src/workload/trace_source.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

class SimStreamTest : public testing::Test {
 protected:
  SimStreamTest() {
    models_.push_back(TinyVgg(11));
    models_.push_back(TinyVgg(16));
    models_.push_back(TinyVgg(19));
    models_.push_back(TinyResNet(18));
    for (const Model& model : models_) {
      names_.push_back(model.name());
    }
  }

  Trace MixedTrace(double horizon_seconds) {
    PoissonTraceOptions options;
    options.horizon_seconds = horizon_seconds;
    options.seed = 7;
    return GenerateMixedPoissonTrace(names_, options);
  }

  SimConfig BaseConfig(SystemType system) {
    SimConfig config;
    config.system = system;
    config.num_nodes = 2;
    config.containers_per_node = 3;
    config.placement.kind = BalancerKind::kHash;
    return config;
  }

  std::vector<Model> models_;
  std::vector<std::string> names_;
  AnalyticCostModel costs_;
};

// The streaming accumulators inside a records-on run must agree exactly with
// what the records themselves say — same requests folded, same start types.
TEST_F(SimStreamTest, StreamingCountersMatchRecords) {
  const Trace trace = MixedTrace(4000.0);
  ASSERT_GT(trace.size(), 100u);
  for (const SystemType system : {SystemType::kOpenWhisk, SystemType::kPagurus,
                                  SystemType::kTetris, SystemType::kOptimus}) {
    const SimResult result = RunSimulation(models_, trace, BaseConfig(system), costs_);
    ASSERT_EQ(result.records.size(), trace.size());
    // Every request was served (queues drain on completions), so the
    // streaming side saw exactly one Commit per record.
    ASSERT_EQ(result.total_requests, trace.size());
    std::array<uint64_t, 3> expected{};
    double sum_wait = 0.0, sum_init = 0.0, sum_load = 0.0, sum_compute = 0.0;
    for (const RequestRecord& record : result.records) {
      ++expected[static_cast<size_t>(record.start)];
      sum_wait += record.wait;
      sum_init += record.init;
      sum_load += record.load;
      sum_compute += record.compute;
    }
    EXPECT_EQ(result.start_counts, expected);
    // Streaming sums fold in serve order, records in trace order: equal up
    // to floating-point reassociation.
    EXPECT_NEAR(result.sum_wait, sum_wait, 1e-9 * (1.0 + sum_wait));
    EXPECT_NEAR(result.sum_init, sum_init, 1e-9 * (1.0 + sum_init));
    EXPECT_NEAR(result.sum_load, sum_load, 1e-9 * (1.0 + sum_load));
    EXPECT_NEAR(result.sum_compute, sum_compute, 1e-9 * (1.0 + sum_compute));
    EXPECT_EQ(result.service_hist.count(), trace.size());
    EXPECT_EQ(result.service_sample.seen(), trace.size());
  }
}

// Turning records off must not change the simulation — only the accounting
// representation. All integer counters are bit-identical across modes.
TEST_F(SimStreamTest, RecordModeOffMatchesOnBitForBit) {
  const Trace trace = MixedTrace(4000.0);
  for (const SystemType system : {SystemType::kOpenWhisk, SystemType::kOptimus}) {
    SimConfig on = BaseConfig(system);
    on.records = RecordMode::kOn;
    SimConfig off = BaseConfig(system);
    off.records = RecordMode::kOff;
    const SimResult with_records = RunSimulation(models_, trace, on, costs_);
    const SimResult streaming = RunSimulation(models_, trace, off, costs_);
    EXPECT_FALSE(with_records.records.empty());
    EXPECT_TRUE(streaming.records.empty());
    EXPECT_EQ(streaming.total_requests, with_records.total_requests);
    EXPECT_EQ(streaming.start_counts, with_records.start_counts);
    EXPECT_EQ(streaming.sum_wait, with_records.sum_wait);
    EXPECT_EQ(streaming.sum_compute, with_records.sum_compute);
    EXPECT_EQ(streaming.service_hist.buckets(), with_records.service_hist.buckets());
    EXPECT_EQ(streaming.service_hist.sum(), with_records.service_hist.sum());
    EXPECT_EQ(streaming.service_sample.samples(), with_records.service_sample.samples());
  }
}

// Histogram percentiles sit within one geometric bucket (~5% relative) of the
// exact record-based order statistic.
TEST_F(SimStreamTest, HistogramPercentilesWithinBucketTolerance) {
  const Trace trace = MixedTrace(4000.0);
  SimConfig config = BaseConfig(SystemType::kOptimus);
  const SimResult result = RunSimulation(models_, trace, config, costs_);
  ASSERT_FALSE(result.records.empty());
  SimResult streaming_view = result;
  streaming_view.records.clear();  // Force accessors onto the histogram path.
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    const double exact = result.ServiceTimePercentile(q);
    const double bucketed = streaming_view.ServiceTimePercentile(q);
    ASSERT_GT(exact, 0.0);
    // One 5% bucket of relative error, plus slack for the rank falling on a
    // bucket edge.
    EXPECT_NEAR(bucketed, exact, 0.06 * exact) << "q=" << q;
  }
  // Aggregate accessors agree across representations.
  EXPECT_NEAR(streaming_view.AvgServiceTime(), result.AvgServiceTime(),
              1e-9 * (1.0 + result.AvgServiceTime()));
  EXPECT_NEAR(streaming_view.AvgWait(), result.AvgWait(), 1e-9 * (1.0 + result.AvgWait()));
  EXPECT_EQ(streaming_view.CountOf(StartType::kCold), result.CountOf(StartType::kCold));
  EXPECT_EQ(streaming_view.CountOf(StartType::kWarm), result.CountOf(StartType::kWarm));
}

// Warming accounting must reconcile in both record modes, and the speculative
// counters must be identical across them:
//   prewarms_cold + prewarms_transform == hits + waste + unused.
TEST_F(SimStreamTest, WarmingReconciliationAcrossModes) {
  const Trace trace = MixedTrace(4000.0);
  std::vector<SimResult> results;
  for (const RecordMode mode : {RecordMode::kOn, RecordMode::kOff}) {
    SimConfig config = BaseConfig(SystemType::kOptimus);
    config.records = mode;
    config.warming.enabled = true;
    config.warming.interval = 120.0;
    results.push_back(RunSimulation(models_, trace, config, costs_));
    const SimResult& result = results.back();
    EXPECT_GT(result.warming_cycles, 0u);
    EXPECT_EQ(result.WarmingPrewarms(),
              result.warming_hits + result.warming_waste + result.warming_unused);
    EXPECT_EQ(result.warming_lead_seconds.size(), result.warming_hits);
  }
  EXPECT_EQ(results[0].warming_cycles, results[1].warming_cycles);
  EXPECT_EQ(results[0].warming_orders, results[1].warming_orders);
  EXPECT_EQ(results[0].warming_prewarms_cold, results[1].warming_prewarms_cold);
  EXPECT_EQ(results[0].warming_prewarms_transform, results[1].warming_prewarms_transform);
  EXPECT_EQ(results[0].warming_hits, results[1].warming_hits);
  EXPECT_EQ(results[0].warming_waste, results[1].warming_waste);
  EXPECT_EQ(results[0].warming_skipped, results[1].warming_skipped);
  EXPECT_EQ(results[0].warming_unused, results[1].warming_unused);
  EXPECT_EQ(results[0].warming_lead_seconds, results[1].warming_lead_seconds);
}

// Node churn produces the same lifecycle accounting whether or not records
// are kept.
TEST_F(SimStreamTest, ChurnCountersAcrossModes) {
  const Trace trace = MixedTrace(4000.0);
  std::vector<SimResult> results;
  for (const RecordMode mode : {RecordMode::kOn, RecordMode::kOff}) {
    SimConfig config = BaseConfig(SystemType::kOptimus);
    config.records = mode;
    config.churn.push_back({1000.0, 0, /*revive=*/false, /*grace=*/30.0});
    config.churn.push_back({2500.0, 0, /*revive=*/true, 0.0});
    results.push_back(RunSimulation(models_, trace, config, costs_));
  }
  EXPECT_EQ(results[0].revocations, 1u);
  EXPECT_EQ(results[0].revives, 1u);
  EXPECT_EQ(results[0].revocations, results[1].revocations);
  EXPECT_EQ(results[0].revives, results[1].revives);
  EXPECT_EQ(results[0].reclaimed_containers, results[1].reclaimed_containers);
  EXPECT_EQ(results[0].rehomed_requests, results[1].rehomed_requests);
  EXPECT_EQ(results[0].churn_rebalances, results[1].churn_rebalances);
  EXPECT_EQ(results[0].total_requests, results[1].total_requests);
  EXPECT_EQ(results[0].start_counts, results[1].start_counts);
}

// Two independent streaming runs of the same many-function workload (fresh
// sources, fresh tables) produce bit-identical summaries: sums, counts,
// histogram buckets, and reservoir contents.
TEST_F(SimStreamTest, StreamingDeterminismAtScale) {
  auto run_once = [this]() {
    FunctionTable functions;
    PoissonProcessSource::Options options;
    options.horizon_seconds = 400.0;
    options.seed = 97;
    PoissonProcessSource source(&functions, /*num_functions=*/2000, "fn_", options);
    SimWorkload workload;
    workload.models = &models_;
    workload.functions = &functions;
    for (size_t fn = 0; fn < functions.size(); ++fn) {
      workload.function_model.push_back(static_cast<int32_t>(fn % models_.size()));
    }
    SimConfig config = BaseConfig(SystemType::kOptimus);
    config.num_nodes = 50;
    config.containers_per_node = 8;
    return RunSimulationStream(workload, &source, config, costs_);
  };
  const SimResult a = run_once();
  const SimResult b = run_once();
  ASSERT_GT(a.total_requests, 5000u);  // ~2000 functions at the mixed rates.
  EXPECT_TRUE(a.records.empty());     // kAuto resolves to kOff when streaming.
  EXPECT_EQ(a.total_requests, b.total_requests);
  EXPECT_EQ(a.start_counts, b.start_counts);
  EXPECT_EQ(a.sum_wait, b.sum_wait);
  EXPECT_EQ(a.sum_init, b.sum_init);
  EXPECT_EQ(a.sum_load, b.sum_load);
  EXPECT_EQ(a.sum_compute, b.sum_compute);
  EXPECT_EQ(a.service_hist.buckets(), b.service_hist.buckets());
  EXPECT_EQ(a.service_hist.sum(), b.service_hist.sum());
  EXPECT_EQ(a.service_hist.min(), b.service_hist.min());
  EXPECT_EQ(a.service_hist.max(), b.service_hist.max());
  EXPECT_EQ(a.service_sample.seen(), b.service_sample.seen());
  EXPECT_EQ(a.service_sample.samples(), b.service_sample.samples());
  EXPECT_EQ(a.ServiceTimePercentile(0.95), b.ServiceTimePercentile(0.95));
}

// The streaming entry point honors an explicit records request — the
// small-workload debugging path through a TraceSource.
TEST_F(SimStreamTest, StreamingApiWithRecordsOn) {
  FunctionTable functions;
  const Trace trace = MixedTrace(2000.0);
  TraceVectorSource source(trace, &functions);
  // Pre-intern and map functions (normally the RunSimulation wrapper's job).
  SimWorkload workload;
  workload.models = &models_;
  workload.functions = &functions;
  for (const std::string& name : names_) {
    functions.Intern(name);
  }
  for (size_t fn = 0; fn < functions.size(); ++fn) {
    workload.function_model.push_back(static_cast<int32_t>(fn));
  }
  SimConfig config = BaseConfig(SystemType::kOptimus);
  config.records = RecordMode::kOn;
  const SimResult result = RunSimulationStream(workload, &source, config, costs_);
  ASSERT_EQ(result.records.size(), trace.size());
  EXPECT_EQ(result.total_requests, trace.size());
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(result.records[i].function, trace[i].function);
    EXPECT_DOUBLE_EQ(result.records[i].arrival, trace[i].arrival);
  }
}

// An arrival for a function with no model must throw exactly like the
// pre-streaming simulator did.
TEST_F(SimStreamTest, UnregisteredFunctionThrows) {
  Trace trace;
  trace.push_back({0.0, "no_such_model"});
  EXPECT_THROW(RunSimulation(models_, trace, BaseConfig(SystemType::kOptimus), costs_),
               std::runtime_error);
}

// --- sim_stats unit coverage. ----------------------------------------------

TEST(LatencyHistogramTest, PercentileWithinRelativeBucketWidth) {
  LatencyHistogram hist;
  std::vector<double> values;
  Rng rng(11);
  for (int i = 0; i < 20000; ++i) {
    const double v = 0.001 * std::exp(rng.Normal(0.0, 1.5));  // Log-normal spread.
    values.push_back(v);
    hist.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (const double q : {0.1, 0.5, 0.9, 0.99}) {
    const size_t rank = std::min(values.size() - 1,
                                 static_cast<size_t>(q * static_cast<double>(values.size())));
    const double exact = values[rank];
    EXPECT_NEAR(hist.Percentile(q), exact, 0.06 * exact) << "q=" << q;
  }
  EXPECT_EQ(hist.count(), values.size());
  EXPECT_DOUBLE_EQ(hist.min(), values.front());
  EXPECT_DOUBLE_EQ(hist.max(), values.back());
}

TEST(LatencyHistogramTest, ExtremesClampIntoRange) {
  LatencyHistogram hist;
  hist.Record(0.0);      // Non-positive folds into bucket 0.
  hist.Record(1e300);    // Far past the last bucket.
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_GE(hist.Percentile(0.0), 0.0);
  EXPECT_LE(hist.Percentile(1.0), 1e300);
}

TEST(ReservoirSampleTest, DeterministicAndBounded) {
  ReservoirSample a(/*capacity=*/64, /*seed=*/5);
  ReservoirSample b(/*capacity=*/64, /*seed=*/5);
  for (int i = 0; i < 10000; ++i) {
    const double v = static_cast<double>(i % 997);
    a.Add(v);
    b.Add(v);
  }
  EXPECT_EQ(a.seen(), 10000u);
  EXPECT_EQ(a.samples().size(), 64u);
  EXPECT_EQ(a.samples(), b.samples());
}

}  // namespace
}  // namespace optimus
