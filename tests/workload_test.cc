#include "src/workload/azure.h"
#include "src/workload/poisson.h"
#include "src/workload/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

namespace optimus {
namespace {

bool IsSorted(const Trace& trace) {
  return std::is_sorted(trace.begin(), trace.end(),
                        [](const Invocation& a, const Invocation& b) {
                          return a.arrival < b.arrival;
                        });
}

TEST(TraceTest, MergeSortsByArrival) {
  const Trace a = {{5.0, "f1"}, {10.0, "f1"}};
  const Trace b = {{1.0, "f2"}, {7.0, "f2"}};
  const Trace merged = MergeTraces({a, b});
  ASSERT_EQ(merged.size(), 4u);
  EXPECT_TRUE(IsSorted(merged));
  EXPECT_EQ(merged.front().function, "f2");
}

TEST(TraceTest, DemandHistoryBucketsCorrectly) {
  const Trace trace = {{0.5, "f"}, {1.5, "f"}, {1.7, "f"}, {9.9, "f"}};
  const auto history = DemandHistory(trace, /*horizon=*/10.0, /*slot_seconds=*/1.0);
  const DemandSeries& series = history.at("f");
  ASSERT_EQ(series.size(), 10u);
  EXPECT_EQ(series[0], 1.0);
  EXPECT_EQ(series[1], 2.0);
  EXPECT_EQ(series[9], 1.0);
}

TEST(TraceTest, CorrelationOfIdenticalSeriesIsOne) {
  const DemandSeries series = {1.0, 5.0, 2.0, 8.0, 3.0};
  EXPECT_NEAR(DemandCorrelation(series, series), 1.0, 1e-12);
}

TEST(TraceTest, CorrelationOfOppositeSeriesIsMinusOne) {
  const DemandSeries a = {1.0, 2.0, 3.0, 4.0};
  const DemandSeries b = {4.0, 3.0, 2.0, 1.0};
  EXPECT_NEAR(DemandCorrelation(a, b), -1.0, 1e-12);
}

TEST(TraceTest, CorrelationDegenerateSeriesIsZero) {
  EXPECT_EQ(DemandCorrelation({1.0, 1.0, 1.0}, {1.0, 2.0, 3.0}), 0.0);
  EXPECT_EQ(DemandCorrelation({1.0}, {2.0}), 0.0);
}

TEST(PoissonTest, RatesOrdered) {
  EXPECT_GT(RateFor(RateClass::kFrequent), RateFor(RateClass::kMiddle));
  EXPECT_GT(RateFor(RateClass::kMiddle), RateFor(RateClass::kInfrequent));
}

TEST(PoissonTest, ArrivalCountMatchesRate) {
  PoissonTraceOptions options;
  options.horizon_seconds = 200000.0;
  options.seed = 3;
  const Trace trace = GeneratePoissonTrace("f", RateClass::kMiddle, options);
  const double expected = RateFor(RateClass::kMiddle) * options.horizon_seconds;
  EXPECT_NEAR(static_cast<double>(trace.size()), expected, 4.0 * std::sqrt(expected));
  EXPECT_TRUE(IsSorted(trace));
}

TEST(PoissonTest, Deterministic) {
  PoissonTraceOptions options;
  options.seed = 9;
  const Trace a = GeneratePoissonTrace("f", RateClass::kFrequent, options);
  const Trace b = GeneratePoissonTrace("f", RateClass::kFrequent, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
  }
}

TEST(PoissonTest, MixedTraceCoversAllFunctions) {
  PoissonTraceOptions options;
  options.horizon_seconds = 100000.0;
  const Trace trace = GenerateMixedPoissonTrace({"a", "b", "c", "d"}, options);
  EXPECT_TRUE(IsSorted(trace));
  std::map<std::string, int> counts;
  for (const Invocation& invocation : trace) {
    ++counts[invocation.function];
  }
  EXPECT_EQ(counts.size(), 4u);
  // First class (frequent) fires much more often than the third (infrequent).
  EXPECT_GT(counts["a"], counts["c"] * 3);
}

TEST(AzureTest, TraceSortedAndDeterministic) {
  AzureTraceOptions options;
  options.horizon_seconds = 3600.0;
  const std::vector<std::string> functions = {"f0", "f1", "f2", "f3", "f4", "f5"};
  const Trace a = GenerateAzureTrace(functions, options);
  const Trace b = GenerateAzureTrace(functions, options);
  EXPECT_TRUE(IsSorted(a));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].function, b[i].function);
  }
}

TEST(AzureTest, PopularityIsHeavyTailed) {
  AzureTraceOptions options;
  options.horizon_seconds = 8.0 * 3600;
  std::vector<std::string> functions;
  for (int i = 0; i < 12; ++i) {
    functions.push_back(std::string("f").append(std::to_string(i)));
  }
  const Trace trace = GenerateAzureTrace(functions, options);
  std::map<std::string, size_t> counts;
  for (const Invocation& invocation : trace) {
    ++counts[invocation.function];
  }
  // The most popular function dominates the least popular by a wide margin.
  EXPECT_GT(counts["f0"], counts["f11"] * 2);
}

TEST(AzureTest, PatternAssignmentsCoverAllThree) {
  bool periodic = false;
  bool bursty = false;
  bool sporadic = false;
  for (size_t i = 0; i < 60; ++i) {
    switch (AzurePatternFor(i, /*seed=*/7)) {
      case AzurePattern::kPeriodic:
        periodic = true;
        break;
      case AzurePattern::kBursty:
        bursty = true;
        break;
      case AzurePattern::kSporadic:
        sporadic = true;
        break;
    }
  }
  EXPECT_TRUE(periodic);
  EXPECT_TRUE(bursty);
  EXPECT_TRUE(sporadic);
}

TEST(AzureTest, BurstyFunctionsHaveBurstGaps) {
  // A bursty function's inter-arrival distribution mixes very short (in-burst)
  // and long (between-burst) gaps.
  AzureTraceOptions options;
  options.horizon_seconds = 24.0 * 3600;
  options.seed = 7;
  std::vector<std::string> functions;
  for (int i = 0; i < 20; ++i) {
    functions.push_back(std::string("f").append(std::to_string(i)));
  }
  size_t bursty_index = 0;
  for (size_t i = 0; i < functions.size(); ++i) {
    if (AzurePatternFor(i, options.seed) == AzurePattern::kBursty) {
      bursty_index = i;
      break;
    }
  }
  const Trace trace = GenerateAzureTrace(functions, options);
  std::vector<double> arrivals;
  for (const Invocation& invocation : trace) {
    if (invocation.function == functions[bursty_index]) {
      arrivals.push_back(invocation.arrival);
    }
  }
  ASSERT_GT(arrivals.size(), 4u);
  double min_gap = 1e18;
  double max_gap = 0.0;
  for (size_t i = 1; i < arrivals.size(); ++i) {
    const double gap = arrivals[i] - arrivals[i - 1];
    min_gap = std::min(min_gap, gap);
    max_gap = std::max(max_gap, gap);
  }
  EXPECT_GT(max_gap / (min_gap + 1e-9), 50.0);
}

}  // namespace
}  // namespace optimus
