#include "src/sim/simulator.h"

#include <gtest/gtest.h>

#include "src/workload/poisson.h"
#include "tests/test_util.h"

namespace optimus {
namespace {

class SimulatorTest : public testing::Test {
 protected:
  SimulatorTest() {
    models_.push_back(TinyVgg(11));
    models_.push_back(TinyVgg(16));
    models_.push_back(TinyVgg(19));
    models_.push_back(TinyResNet(18));
    for (const Model& model : models_) {
      names_.push_back(model.name());
    }
    config_.num_nodes = 1;
    // Fewer container slots than functions, so some requests always find
    // their model missing — the regime where the systems differ.
    config_.containers_per_node = 2;
    config_.placement.kind = BalancerKind::kHash;
  }

  Trace SparseTrace() {
    // Arrivals spaced so containers go idle (>60 s) between requests.
    Trace trace;
    double t = 0.0;
    for (int round = 0; round < 6; ++round) {
      for (const std::string& name : names_) {
        trace.push_back({t, name});
        t += 90.0;
      }
    }
    return trace;
  }

  std::vector<Model> models_;
  std::vector<std::string> names_;
  SimConfig config_;
  AnalyticCostModel costs_;
};

TEST_F(SimulatorTest, EveryRequestServedExactlyOnce) {
  const Trace trace = SparseTrace();
  for (const SystemType system : {SystemType::kOpenWhisk, SystemType::kPagurus,
                                  SystemType::kTetris, SystemType::kOptimus}) {
    SimConfig config = config_;
    config.system = system;
    const SimResult result = RunSimulation(models_, trace, config, costs_);
    ASSERT_EQ(result.records.size(), trace.size());
    for (const RequestRecord& record : result.records) {
      EXPECT_FALSE(record.function.empty());
      EXPECT_GE(record.wait, 0.0);
      EXPECT_GE(record.init, 0.0);
      EXPECT_GE(record.load, 0.0);
      EXPECT_GT(record.compute, 0.0);
    }
    EXPECT_EQ(result.CountOf(StartType::kWarm) + result.CountOf(StartType::kTransform) +
                  result.CountOf(StartType::kCold),
              trace.size());
  }
}

TEST_F(SimulatorTest, FirstRequestIsColdLaterOnesWarm) {
  // Two quick requests to the same function: cold then warm.
  const Trace trace = {{0.0, names_[0]}, {30.0, names_[0]}};
  config_.system = SystemType::kOpenWhisk;
  const SimResult result = RunSimulation(models_, trace, config_, costs_);
  EXPECT_EQ(result.records[0].start, StartType::kCold);
  EXPECT_EQ(result.records[1].start, StartType::kWarm);
  EXPECT_EQ(result.records[1].init, 0.0);
  EXPECT_EQ(result.records[1].load, 0.0);
}

TEST_F(SimulatorTest, KeepAliveExpiryForcesColdStart) {
  // Second request arrives after the 10-minute keep-alive: cold again.
  const Trace trace = {{0.0, names_[0]}, {700.0, names_[0]}};
  config_.system = SystemType::kOpenWhisk;
  const SimResult result = RunSimulation(models_, trace, config_, costs_);
  EXPECT_EQ(result.records[1].start, StartType::kCold);
}

TEST_F(SimulatorTest, OptimusTransformsWhereOpenWhiskColdStarts) {
  const Trace trace = SparseTrace();
  SimConfig openwhisk = config_;
  openwhisk.system = SystemType::kOpenWhisk;
  SimConfig optimus = config_;
  optimus.system = SystemType::kOptimus;
  const SimResult ow_result = RunSimulation(models_, trace, openwhisk, costs_);
  const SimResult op_result = RunSimulation(models_, trace, optimus, costs_);
  EXPECT_GT(op_result.CountOf(StartType::kTransform), 0u);
  EXPECT_LT(op_result.FractionOf(StartType::kCold), ow_result.FractionOf(StartType::kCold));
  EXPECT_LT(op_result.AvgServiceTime(), ow_result.AvgServiceTime());
}

TEST_F(SimulatorTest, SystemOrderingOnPoissonWorkload) {
  PoissonTraceOptions options;
  options.horizon_seconds = 2.0 * 3600;
  options.seed = 5;
  const Trace trace = GenerateMixedPoissonTrace(names_, options);
  double service[4] = {};
  for (const SystemType system : {SystemType::kOpenWhisk, SystemType::kPagurus,
                                  SystemType::kTetris, SystemType::kOptimus}) {
    SimConfig config = config_;
    config.system = system;
    service[static_cast<size_t>(system)] = RunSimulation(models_, trace, config, costs_)
                                               .AvgServiceTime();
  }
  // The paper's headline ordering: Optimus fastest, OpenWhisk slowest.
  EXPECT_LT(service[3], service[1]);  // Optimus < Pagurus.
  EXPECT_LE(service[1], service[0] + 1e-9);  // Pagurus <= OpenWhisk.
  EXPECT_LT(service[3], service[0]);  // Optimus < OpenWhisk.
}

TEST_F(SimulatorTest, SaturatedNodeQueuesRequests) {
  // One container, burst of simultaneous requests: later ones wait.
  SimConfig config = config_;
  config.system = SystemType::kOpenWhisk;
  config.containers_per_node = 1;
  // Arrivals spaced below the per-request compute time, so the backlog grows.
  const Trace trace = {{0.0, names_[0]}, {0.005, names_[0]}, {0.010, names_[0]}};
  const SimResult result = RunSimulation(models_, trace, config, costs_);
  EXPECT_EQ(result.records[0].wait, 0.0);
  EXPECT_GT(result.records[1].wait, 0.0);
  EXPECT_GT(result.records[2].wait, result.records[1].wait);
}

TEST_F(SimulatorTest, DeterministicAcrossRuns) {
  const Trace trace = SparseTrace();
  config_.system = SystemType::kOptimus;
  const SimResult a = RunSimulation(models_, trace, config_, costs_);
  const SimResult b = RunSimulation(models_, trace, config_, costs_);
  ASSERT_EQ(a.records.size(), b.records.size());
  for (size_t i = 0; i < a.records.size(); ++i) {
    EXPECT_EQ(a.records[i].ServiceTime(), b.records[i].ServiceTime());
    EXPECT_EQ(a.records[i].start, b.records[i].start);
  }
}

TEST_F(SimulatorTest, GpuProfileRaisesServiceTimeUnderColdStarts) {
  // §8.5: GPU serving has longer service time due to init/load overheads.
  const Trace trace = SparseTrace();
  SimConfig cpu = config_;
  cpu.system = SystemType::kOpenWhisk;
  SimConfig gpu = cpu;
  gpu.profile = SystemProfile::Gpu();
  EXPECT_GT(RunSimulation(models_, trace, gpu, costs_).AvgServiceTime(),
            RunSimulation(models_, trace, cpu, costs_).AvgServiceTime());
}

TEST_F(SimulatorTest, GreedyDualEvictionKeepsExpensiveModels) {
  // One slot contention between a cheap-to-reload and an expensive model:
  // greedy-dual should cold-start the expensive model less often than LRU
  // when the cheap one is the more recently used.
  SimConfig config = config_;
  config.system = SystemType::kOpenWhisk;
  config.containers_per_node = 2;
  // vgg19 (expensive) is used, then two cheaper functions churn the slots.
  Trace trace;
  double t = 0.0;
  for (int round = 0; round < 8; ++round) {
    trace.push_back({t, names_[2]});        // tiny_vgg19 (largest).
    trace.push_back({t + 30.0, names_[3]}); // tiny_resnet18.
    trace.push_back({t + 60.0, names_[0]}); // tiny_vgg11.
    t += 90.0;
  }
  SimConfig greedy = config;
  greedy.eviction = EvictionPolicy::kGreedyDual;
  const SimResult lru_result = RunSimulation(models_, trace, config, costs_);
  const SimResult gd_result = RunSimulation(models_, trace, greedy, costs_);
  EXPECT_EQ(lru_result.records.size(), gd_result.records.size());
  EXPECT_LE(gd_result.AvgServiceTime(), lru_result.AvgServiceTime() + 1e-9);
}

TEST_F(SimulatorTest, UnknownFunctionThrows) {
  const Trace trace = {{0.0, "not_registered"}};
  EXPECT_THROW(RunSimulation(models_, trace, config_, costs_), std::runtime_error);
}

TEST_F(SimulatorTest, MultiNodePlacementRoutesAllRequests) {
  SimConfig config = config_;
  config.num_nodes = 2;
  config.system = SystemType::kOptimus;
  config.placement.kind = BalancerKind::kModelSharing;
  const Trace trace = SparseTrace();
  const SimResult result = RunSimulation(models_, trace, config, costs_);
  EXPECT_EQ(result.records.size(), trace.size());
}

TEST_F(SimulatorTest, AveragesConsistentWithRecords) {
  const Trace trace = SparseTrace();
  config_.system = SystemType::kPagurus;
  const SimResult result = RunSimulation(models_, trace, config_, costs_);
  double total = 0.0;
  for (const RequestRecord& record : result.records) {
    total += record.ServiceTime();
  }
  EXPECT_NEAR(result.AvgServiceTime(), total / static_cast<double>(result.records.size()), 1e-9);
  EXPECT_NEAR(result.AvgServiceTime(),
              result.AvgWait() + result.AvgInit() + result.AvgLoad() + result.AvgCompute(), 1e-9);
}

}  // namespace
}  // namespace optimus
