#include "src/tensor/tensor.h"

#include <gtest/gtest.h>

#include "src/tensor/tensor_ops.h"

namespace optimus {
namespace {

TEST(ShapeTest, NumElementsAndRank) {
  const Shape scalar{};
  EXPECT_EQ(scalar.Rank(), 0);
  EXPECT_EQ(scalar.NumElements(), 1);

  const Shape vector({5});
  EXPECT_EQ(vector.Rank(), 1);
  EXPECT_EQ(vector.NumElements(), 5);

  const Shape conv({3, 3, 64, 128});
  EXPECT_EQ(conv.Rank(), 4);
  EXPECT_EQ(conv.NumElements(), 3 * 3 * 64 * 128);
}

TEST(ShapeTest, EqualityAndToString) {
  EXPECT_EQ(Shape({2, 3}), Shape({2, 3}));
  EXPECT_NE(Shape({2, 3}), Shape({3, 2}));
  EXPECT_EQ(Shape({2, 3}).ToString(), "[2, 3]");
}

TEST(TensorTest, ZeroInitialized) {
  Tensor t(Shape({4, 4}));
  for (int64_t i = 0; i < t.NumElements(); ++i) {
    EXPECT_EQ(t.At(i), 0.0f);
  }
  EXPECT_EQ(t.SizeBytes(), 64);
}

TEST(TensorTest, FillConstant) {
  Tensor t(Shape({3}), 2.5f);
  EXPECT_EQ(t.Sum(), 7.5);
}

TEST(TensorTest, FillRandomDeterministic) {
  Rng rng_a(5);
  Rng rng_b(5);
  Tensor a(Shape({128}));
  Tensor b(Shape({128}));
  a.FillRandom(&rng_a);
  b.FillRandom(&rng_b);
  EXPECT_TRUE(a.ElementsEqual(b));
}

TEST(TensorOpsTest, CopyTensorIsDeep) {
  Rng rng(1);
  Tensor src(Shape({16}));
  src.FillRandom(&rng);
  Tensor copy = CopyTensor(src);
  EXPECT_TRUE(copy.ElementsEqual(src));
  copy.Set(0, 123.0f);
  EXPECT_FALSE(copy.ElementsEqual(src));
}

TEST(TensorOpsTest, OverwriteRequiresSameShape) {
  Tensor src(Shape({4}), 1.0f);
  Tensor dst(Shape({5}));
  EXPECT_THROW(OverwriteTensor(src, &dst), std::invalid_argument);
}

TEST(TensorOpsTest, OverwriteCopiesAll) {
  Rng rng(2);
  Tensor src(Shape({8, 8}));
  src.FillRandom(&rng);
  Tensor dst(Shape({8, 8}));
  OverwriteTensor(src, &dst);
  EXPECT_TRUE(dst.ElementsEqual(src));
}

TEST(TensorOpsTest, ResizeGrowZeroPads) {
  Tensor src(Shape({2, 2}), 1.0f);
  const Tensor out = ResizeToShape(src, Shape({3, 3}));
  // Overlap (2x2) preserved; the rest zero.
  EXPECT_EQ(out.At(0 * 3 + 0), 1.0f);
  EXPECT_EQ(out.At(0 * 3 + 1), 1.0f);
  EXPECT_EQ(out.At(1 * 3 + 0), 1.0f);
  EXPECT_EQ(out.At(1 * 3 + 1), 1.0f);
  EXPECT_EQ(out.At(0 * 3 + 2), 0.0f);
  EXPECT_EQ(out.At(2 * 3 + 2), 0.0f);
  EXPECT_EQ(out.Sum(), 4.0);
}

TEST(TensorOpsTest, ResizeShrinkCrops) {
  Tensor src(Shape({3, 3}));
  for (int64_t i = 0; i < 9; ++i) {
    src.Set(i, static_cast<float>(i));
  }
  const Tensor out = ResizeToShape(src, Shape({2, 2}));
  EXPECT_EQ(out.At(0), 0.0f);  // (0,0)
  EXPECT_EQ(out.At(1), 1.0f);  // (0,1)
  EXPECT_EQ(out.At(2), 3.0f);  // (1,0)
  EXPECT_EQ(out.At(3), 4.0f);  // (1,1)
}

TEST(TensorOpsTest, ResizeMixedGrowAndShrink) {
  Tensor src(Shape({2, 4}), 1.0f);
  const Tensor out = ResizeToShape(src, Shape({4, 2}));
  // Overlap is 2x2 = 4 ones.
  EXPECT_EQ(out.Sum(), 4.0);
  EXPECT_EQ(out.shape(), Shape({4, 2}));
}

TEST(TensorOpsTest, ResizeRankMismatchThrows) {
  Tensor src(Shape({2, 2}));
  EXPECT_THROW(ResizeToShape(src, Shape({4})), std::invalid_argument);
}

TEST(TensorOpsTest, ResizeScalar) {
  Tensor src(Shape{}, 3.0f);
  const Tensor out = ResizeToShape(src, Shape{});
  EXPECT_EQ(out.At(0), 3.0f);
}

TEST(TensorOpsTest, ResizeRank4ConvKernel) {
  Rng rng(3);
  Tensor src(Shape({3, 3, 4, 8}));
  src.FillRandom(&rng);
  const Tensor grown = ResizeToShape(src, Shape({5, 5, 4, 8}));
  // Shrinking back must recover the original exactly (overlap round trip).
  const Tensor back = ResizeToShape(grown, Shape({3, 3, 4, 8}));
  EXPECT_TRUE(back.ElementsEqual(src));
}

TEST(TensorOpsTest, ResizeZeroOverlapDimension) {
  Tensor src(Shape({0, 4}));
  const Tensor out = ResizeToShape(src, Shape({2, 4}));
  EXPECT_EQ(out.Sum(), 0.0);
}

TEST(TensorOpsTest, OverlapElements) {
  EXPECT_EQ(OverlapElements(Shape({3, 3}), Shape({2, 5})), 2 * 3);
  EXPECT_EQ(OverlapElements(Shape({3}), Shape({2, 2})), 0);  // Rank mismatch.
  EXPECT_EQ(OverlapElements(Shape({4, 4}), Shape({4, 4})), 16);
}

}  // namespace
}  // namespace optimus
